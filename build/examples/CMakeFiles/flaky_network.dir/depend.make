# Empty dependencies file for flaky_network.
# This may be replaced when dependencies are built.
