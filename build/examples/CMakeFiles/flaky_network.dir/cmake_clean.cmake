file(REMOVE_RECURSE
  "CMakeFiles/flaky_network.dir/flaky_network.cpp.o"
  "CMakeFiles/flaky_network.dir/flaky_network.cpp.o.d"
  "flaky_network"
  "flaky_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flaky_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
