# Empty dependencies file for slashdot_reader.
# This may be replaced when dependencies are built.
