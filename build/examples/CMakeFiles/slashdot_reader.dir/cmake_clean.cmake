file(REMOVE_RECURSE
  "CMakeFiles/slashdot_reader.dir/slashdot_reader.cpp.o"
  "CMakeFiles/slashdot_reader.dir/slashdot_reader.cpp.o.d"
  "slashdot_reader"
  "slashdot_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slashdot_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
