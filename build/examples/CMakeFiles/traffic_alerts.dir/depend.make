# Empty dependencies file for traffic_alerts.
# This may be replaced when dependencies are built.
