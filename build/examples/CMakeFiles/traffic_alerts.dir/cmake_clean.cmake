file(REMOVE_RECURSE
  "CMakeFiles/traffic_alerts.dir/traffic_alerts.cpp.o"
  "CMakeFiles/traffic_alerts.dir/traffic_alerts.cpp.o.d"
  "traffic_alerts"
  "traffic_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
