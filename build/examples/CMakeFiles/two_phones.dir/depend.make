# Empty dependencies file for two_phones.
# This may be replaced when dependencies are built.
