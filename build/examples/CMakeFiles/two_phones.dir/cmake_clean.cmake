file(REMOVE_RECURSE
  "CMakeFiles/two_phones.dir/two_phones.cpp.o"
  "CMakeFiles/two_phones.dir/two_phones.cpp.o.d"
  "two_phones"
  "two_phones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_phones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
