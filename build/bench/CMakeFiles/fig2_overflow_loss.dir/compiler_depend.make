# Empty compiler generated dependencies file for fig2_overflow_loss.
# This may be replaced when dependencies are built.
