file(REMOVE_RECURSE
  "CMakeFiles/fig2_overflow_loss.dir/fig2_overflow_loss.cpp.o"
  "CMakeFiles/fig2_overflow_loss.dir/fig2_overflow_loss.cpp.o.d"
  "fig2_overflow_loss"
  "fig2_overflow_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_overflow_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
