# Empty compiler generated dependencies file for scale_proxies.
# This may be replaced when dependencies are built.
