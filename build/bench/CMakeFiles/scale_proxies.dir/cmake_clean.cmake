file(REMOVE_RECURSE
  "CMakeFiles/scale_proxies.dir/scale_proxies.cpp.o"
  "CMakeFiles/scale_proxies.dir/scale_proxies.cpp.o.d"
  "scale_proxies"
  "scale_proxies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_proxies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
