
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/scale_proxies.cpp" "bench/CMakeFiles/scale_proxies.dir/scale_proxies.cpp.o" "gcc" "bench/CMakeFiles/scale_proxies.dir/scale_proxies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/waif_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/waif_core.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/waif_device.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/waif_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/waif_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/waif_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/waif_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/waif_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/waif_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
