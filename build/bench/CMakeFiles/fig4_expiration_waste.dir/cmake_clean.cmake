file(REMOVE_RECURSE
  "CMakeFiles/fig4_expiration_waste.dir/fig4_expiration_waste.cpp.o"
  "CMakeFiles/fig4_expiration_waste.dir/fig4_expiration_waste.cpp.o.d"
  "fig4_expiration_waste"
  "fig4_expiration_waste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_expiration_waste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
