# Empty compiler generated dependencies file for fig4_expiration_waste.
# This may be replaced when dependencies are built.
