# Empty compiler generated dependencies file for ablate_multidevice.
# This may be replaced when dependencies are built.
