file(REMOVE_RECURSE
  "CMakeFiles/ablate_multidevice.dir/ablate_multidevice.cpp.o"
  "CMakeFiles/ablate_multidevice.dir/ablate_multidevice.cpp.o.d"
  "ablate_multidevice"
  "ablate_multidevice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_multidevice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
