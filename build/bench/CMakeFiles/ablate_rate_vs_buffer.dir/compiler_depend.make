# Empty compiler generated dependencies file for ablate_rate_vs_buffer.
# This may be replaced when dependencies are built.
