file(REMOVE_RECURSE
  "CMakeFiles/ablate_rate_vs_buffer.dir/ablate_rate_vs_buffer.cpp.o"
  "CMakeFiles/ablate_rate_vs_buffer.dir/ablate_rate_vs_buffer.cpp.o.d"
  "ablate_rate_vs_buffer"
  "ablate_rate_vs_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rate_vs_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
