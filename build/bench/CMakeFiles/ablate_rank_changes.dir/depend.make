# Empty dependencies file for ablate_rank_changes.
# This may be replaced when dependencies are built.
