file(REMOVE_RECURSE
  "CMakeFiles/ablate_rank_changes.dir/ablate_rank_changes.cpp.o"
  "CMakeFiles/ablate_rank_changes.dir/ablate_rank_changes.cpp.o.d"
  "ablate_rank_changes"
  "ablate_rank_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rank_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
