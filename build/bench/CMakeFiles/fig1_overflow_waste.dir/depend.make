# Empty dependencies file for fig1_overflow_waste.
# This may be replaced when dependencies are built.
