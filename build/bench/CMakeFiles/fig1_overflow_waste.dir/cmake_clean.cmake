file(REMOVE_RECURSE
  "CMakeFiles/fig1_overflow_waste.dir/fig1_overflow_waste.cpp.o"
  "CMakeFiles/fig1_overflow_waste.dir/fig1_overflow_waste.cpp.o.d"
  "fig1_overflow_waste"
  "fig1_overflow_waste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_overflow_waste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
