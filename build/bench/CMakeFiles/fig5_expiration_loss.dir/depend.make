# Empty dependencies file for fig5_expiration_loss.
# This may be replaced when dependencies are built.
