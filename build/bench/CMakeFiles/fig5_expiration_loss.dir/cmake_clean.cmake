file(REMOVE_RECURSE
  "CMakeFiles/fig5_expiration_loss.dir/fig5_expiration_loss.cpp.o"
  "CMakeFiles/fig5_expiration_loss.dir/fig5_expiration_loss.cpp.o.d"
  "fig5_expiration_loss"
  "fig5_expiration_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_expiration_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
