# Empty dependencies file for ablate_replication.
# This may be replaced when dependencies are built.
