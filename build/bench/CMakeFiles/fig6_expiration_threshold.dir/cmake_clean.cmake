file(REMOVE_RECURSE
  "CMakeFiles/fig6_expiration_threshold.dir/fig6_expiration_threshold.cpp.o"
  "CMakeFiles/fig6_expiration_threshold.dir/fig6_expiration_threshold.cpp.o.d"
  "fig6_expiration_threshold"
  "fig6_expiration_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_expiration_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
