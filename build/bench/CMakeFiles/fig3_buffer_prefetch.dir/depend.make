# Empty dependencies file for fig3_buffer_prefetch.
# This may be replaced when dependencies are built.
