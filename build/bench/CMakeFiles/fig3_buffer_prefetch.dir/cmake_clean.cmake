file(REMOVE_RECURSE
  "CMakeFiles/fig3_buffer_prefetch.dir/fig3_buffer_prefetch.cpp.o"
  "CMakeFiles/fig3_buffer_prefetch.dir/fig3_buffer_prefetch.cpp.o.d"
  "fig3_buffer_prefetch"
  "fig3_buffer_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_buffer_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
