# Empty dependencies file for ablate_unified.
# This may be replaced when dependencies are built.
