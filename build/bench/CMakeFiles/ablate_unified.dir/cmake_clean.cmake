file(REMOVE_RECURSE
  "CMakeFiles/ablate_unified.dir/ablate_unified.cpp.o"
  "CMakeFiles/ablate_unified.dir/ablate_unified.cpp.o.d"
  "ablate_unified"
  "ablate_unified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_unified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
