file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/context_test.cpp.o"
  "CMakeFiles/test_core.dir/core/context_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/device_group_test.cpp.o"
  "CMakeFiles/test_core.dir/core/device_group_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/proxy_test.cpp.o"
  "CMakeFiles/test_core.dir/core/proxy_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ranked_queue_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ranked_queue_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/refinements_test.cpp.o"
  "CMakeFiles/test_core.dir/core/refinements_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/replication_test.cpp.o"
  "CMakeFiles/test_core.dir/core/replication_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sync_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sync_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/topic_state_test.cpp.o"
  "CMakeFiles/test_core.dir/core/topic_state_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
