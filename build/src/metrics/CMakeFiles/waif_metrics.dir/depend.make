# Empty dependencies file for waif_metrics.
# This may be replaced when dependencies are built.
