file(REMOVE_RECURSE
  "libwaif_metrics.a"
)
