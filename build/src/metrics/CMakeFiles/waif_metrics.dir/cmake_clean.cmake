file(REMOVE_RECURSE
  "CMakeFiles/waif_metrics.dir/inefficiency.cpp.o"
  "CMakeFiles/waif_metrics.dir/inefficiency.cpp.o.d"
  "CMakeFiles/waif_metrics.dir/table.cpp.o"
  "CMakeFiles/waif_metrics.dir/table.cpp.o.d"
  "libwaif_metrics.a"
  "libwaif_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waif_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
