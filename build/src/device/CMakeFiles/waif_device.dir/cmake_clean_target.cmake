file(REMOVE_RECURSE
  "libwaif_device.a"
)
