file(REMOVE_RECURSE
  "CMakeFiles/waif_device.dir/device.cpp.o"
  "CMakeFiles/waif_device.dir/device.cpp.o.d"
  "libwaif_device.a"
  "libwaif_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waif_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
