# Empty dependencies file for waif_device.
# This may be replaced when dependencies are built.
