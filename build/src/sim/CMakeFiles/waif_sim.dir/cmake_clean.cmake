file(REMOVE_RECURSE
  "CMakeFiles/waif_sim.dir/event_queue.cpp.o"
  "CMakeFiles/waif_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/waif_sim.dir/simulator.cpp.o"
  "CMakeFiles/waif_sim.dir/simulator.cpp.o.d"
  "libwaif_sim.a"
  "libwaif_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waif_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
