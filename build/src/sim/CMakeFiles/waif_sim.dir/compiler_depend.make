# Empty compiler generated dependencies file for waif_sim.
# This may be replaced when dependencies are built.
