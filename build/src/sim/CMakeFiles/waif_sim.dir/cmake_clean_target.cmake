file(REMOVE_RECURSE
  "libwaif_sim.a"
)
