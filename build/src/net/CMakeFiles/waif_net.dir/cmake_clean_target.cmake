file(REMOVE_RECURSE
  "libwaif_net.a"
)
