# Empty compiler generated dependencies file for waif_net.
# This may be replaced when dependencies are built.
