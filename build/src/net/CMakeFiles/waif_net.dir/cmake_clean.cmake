file(REMOVE_RECURSE
  "CMakeFiles/waif_net.dir/link.cpp.o"
  "CMakeFiles/waif_net.dir/link.cpp.o.d"
  "CMakeFiles/waif_net.dir/outage.cpp.o"
  "CMakeFiles/waif_net.dir/outage.cpp.o.d"
  "libwaif_net.a"
  "libwaif_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waif_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
