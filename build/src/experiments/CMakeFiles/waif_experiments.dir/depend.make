# Empty dependencies file for waif_experiments.
# This may be replaced when dependencies are built.
