file(REMOVE_RECURSE
  "libwaif_experiments.a"
)
