file(REMOVE_RECURSE
  "CMakeFiles/waif_experiments.dir/runner.cpp.o"
  "CMakeFiles/waif_experiments.dir/runner.cpp.o.d"
  "libwaif_experiments.a"
  "libwaif_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waif_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
