file(REMOVE_RECURSE
  "libwaif_pubsub.a"
)
