# Empty compiler generated dependencies file for waif_pubsub.
# This may be replaced when dependencies are built.
