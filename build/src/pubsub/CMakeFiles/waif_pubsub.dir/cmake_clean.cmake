file(REMOVE_RECURSE
  "CMakeFiles/waif_pubsub.dir/broker.cpp.o"
  "CMakeFiles/waif_pubsub.dir/broker.cpp.o.d"
  "CMakeFiles/waif_pubsub.dir/notification.cpp.o"
  "CMakeFiles/waif_pubsub.dir/notification.cpp.o.d"
  "CMakeFiles/waif_pubsub.dir/overlay.cpp.o"
  "CMakeFiles/waif_pubsub.dir/overlay.cpp.o.d"
  "CMakeFiles/waif_pubsub.dir/publisher.cpp.o"
  "CMakeFiles/waif_pubsub.dir/publisher.cpp.o.d"
  "CMakeFiles/waif_pubsub.dir/ranked_queue.cpp.o"
  "CMakeFiles/waif_pubsub.dir/ranked_queue.cpp.o.d"
  "libwaif_pubsub.a"
  "libwaif_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waif_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
