
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pubsub/broker.cpp" "src/pubsub/CMakeFiles/waif_pubsub.dir/broker.cpp.o" "gcc" "src/pubsub/CMakeFiles/waif_pubsub.dir/broker.cpp.o.d"
  "/root/repo/src/pubsub/notification.cpp" "src/pubsub/CMakeFiles/waif_pubsub.dir/notification.cpp.o" "gcc" "src/pubsub/CMakeFiles/waif_pubsub.dir/notification.cpp.o.d"
  "/root/repo/src/pubsub/overlay.cpp" "src/pubsub/CMakeFiles/waif_pubsub.dir/overlay.cpp.o" "gcc" "src/pubsub/CMakeFiles/waif_pubsub.dir/overlay.cpp.o.d"
  "/root/repo/src/pubsub/publisher.cpp" "src/pubsub/CMakeFiles/waif_pubsub.dir/publisher.cpp.o" "gcc" "src/pubsub/CMakeFiles/waif_pubsub.dir/publisher.cpp.o.d"
  "/root/repo/src/pubsub/ranked_queue.cpp" "src/pubsub/CMakeFiles/waif_pubsub.dir/ranked_queue.cpp.o" "gcc" "src/pubsub/CMakeFiles/waif_pubsub.dir/ranked_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/waif_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/waif_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
