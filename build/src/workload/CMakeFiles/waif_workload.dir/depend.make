# Empty dependencies file for waif_workload.
# This may be replaced when dependencies are built.
