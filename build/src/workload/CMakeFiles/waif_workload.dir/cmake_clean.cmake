file(REMOVE_RECURSE
  "CMakeFiles/waif_workload.dir/serialization.cpp.o"
  "CMakeFiles/waif_workload.dir/serialization.cpp.o.d"
  "CMakeFiles/waif_workload.dir/trace.cpp.o"
  "CMakeFiles/waif_workload.dir/trace.cpp.o.d"
  "libwaif_workload.a"
  "libwaif_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waif_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
