file(REMOVE_RECURSE
  "libwaif_workload.a"
)
