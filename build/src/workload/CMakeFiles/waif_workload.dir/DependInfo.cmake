
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/serialization.cpp" "src/workload/CMakeFiles/waif_workload.dir/serialization.cpp.o" "gcc" "src/workload/CMakeFiles/waif_workload.dir/serialization.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/waif_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/waif_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/waif_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/waif_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/waif_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
