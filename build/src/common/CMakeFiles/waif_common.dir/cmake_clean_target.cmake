file(REMOVE_RECURSE
  "libwaif_common.a"
)
