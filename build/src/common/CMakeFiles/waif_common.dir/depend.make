# Empty dependencies file for waif_common.
# This may be replaced when dependencies are built.
