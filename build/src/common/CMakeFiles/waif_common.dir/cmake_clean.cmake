file(REMOVE_RECURSE
  "CMakeFiles/waif_common.dir/distributions.cpp.o"
  "CMakeFiles/waif_common.dir/distributions.cpp.o.d"
  "CMakeFiles/waif_common.dir/flags.cpp.o"
  "CMakeFiles/waif_common.dir/flags.cpp.o.d"
  "CMakeFiles/waif_common.dir/logging.cpp.o"
  "CMakeFiles/waif_common.dir/logging.cpp.o.d"
  "CMakeFiles/waif_common.dir/moving_stats.cpp.o"
  "CMakeFiles/waif_common.dir/moving_stats.cpp.o.d"
  "CMakeFiles/waif_common.dir/rng.cpp.o"
  "CMakeFiles/waif_common.dir/rng.cpp.o.d"
  "CMakeFiles/waif_common.dir/time.cpp.o"
  "CMakeFiles/waif_common.dir/time.cpp.o.d"
  "libwaif_common.a"
  "libwaif_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waif_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
