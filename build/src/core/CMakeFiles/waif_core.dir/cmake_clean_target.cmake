file(REMOVE_RECURSE
  "libwaif_core.a"
)
