
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/channel.cpp" "src/core/CMakeFiles/waif_core.dir/channel.cpp.o" "gcc" "src/core/CMakeFiles/waif_core.dir/channel.cpp.o.d"
  "/root/repo/src/core/context.cpp" "src/core/CMakeFiles/waif_core.dir/context.cpp.o" "gcc" "src/core/CMakeFiles/waif_core.dir/context.cpp.o.d"
  "/root/repo/src/core/device_group.cpp" "src/core/CMakeFiles/waif_core.dir/device_group.cpp.o" "gcc" "src/core/CMakeFiles/waif_core.dir/device_group.cpp.o.d"
  "/root/repo/src/core/forwarding_policy.cpp" "src/core/CMakeFiles/waif_core.dir/forwarding_policy.cpp.o" "gcc" "src/core/CMakeFiles/waif_core.dir/forwarding_policy.cpp.o.d"
  "/root/repo/src/core/proxy.cpp" "src/core/CMakeFiles/waif_core.dir/proxy.cpp.o" "gcc" "src/core/CMakeFiles/waif_core.dir/proxy.cpp.o.d"
  "/root/repo/src/core/replication.cpp" "src/core/CMakeFiles/waif_core.dir/replication.cpp.o" "gcc" "src/core/CMakeFiles/waif_core.dir/replication.cpp.o.d"
  "/root/repo/src/core/topic_state.cpp" "src/core/CMakeFiles/waif_core.dir/topic_state.cpp.o" "gcc" "src/core/CMakeFiles/waif_core.dir/topic_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/waif_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/waif_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/waif_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/waif_net.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/waif_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
