file(REMOVE_RECURSE
  "CMakeFiles/waif_core.dir/channel.cpp.o"
  "CMakeFiles/waif_core.dir/channel.cpp.o.d"
  "CMakeFiles/waif_core.dir/context.cpp.o"
  "CMakeFiles/waif_core.dir/context.cpp.o.d"
  "CMakeFiles/waif_core.dir/device_group.cpp.o"
  "CMakeFiles/waif_core.dir/device_group.cpp.o.d"
  "CMakeFiles/waif_core.dir/forwarding_policy.cpp.o"
  "CMakeFiles/waif_core.dir/forwarding_policy.cpp.o.d"
  "CMakeFiles/waif_core.dir/proxy.cpp.o"
  "CMakeFiles/waif_core.dir/proxy.cpp.o.d"
  "CMakeFiles/waif_core.dir/replication.cpp.o"
  "CMakeFiles/waif_core.dir/replication.cpp.o.d"
  "CMakeFiles/waif_core.dir/topic_state.cpp.o"
  "CMakeFiles/waif_core.dir/topic_state.cpp.o.d"
  "libwaif_core.a"
  "libwaif_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waif_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
