# Empty compiler generated dependencies file for waif_core.
# This may be replaced when dependencies are built.
