#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace waif::sim {

void EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return;
  state_->cancelled = true;
  if (state_->live) --*state_->live;
}

bool EventHandle::active() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventQueue::EventQueue() : live_(std::make_shared<std::size_t>(0)) {}

EventHandle EventQueue::schedule(SimTime when, Callback fn) {
  WAIF_CHECK(fn != nullptr);
  auto state = std::make_shared<EventHandle::State>();
  state->live = live_;
  heap_.push(Entry{when, next_seq_++, std::move(fn), state});
  ++*live_;
  return EventHandle(std::move(state));
}

SimTime EventQueue::next_time() {
  skim();
  return heap_.empty() ? kNever : heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  WAIF_CHECK(!heap_.empty());
  const Entry& top = heap_.top();
  Fired fired{top.time, std::move(top.fn)};
  top.state->fired = true;
  --*live_;
  heap_.pop();
  return fired;
}

void EventQueue::clear() {
  while (!heap_.empty()) {
    heap_.top().state->cancelled = true;  // so outstanding handles go inert
    heap_.pop();
  }
  *live_ = 0;
}

void EventQueue::skim() {
  while (!heap_.empty() && heap_.top().state->cancelled) heap_.pop();
}

}  // namespace waif::sim
