#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/check.h"

namespace waif::sim {

namespace {

// Initial geometry: 16 buckets of ~1 simulated second. The first rebuild
// re-estimates the width from the live population.
constexpr std::size_t kInitialBuckets = 16;
constexpr int kInitialShift = 20;
constexpr std::size_t kMinBuckets = 16;
constexpr int kMaxShift = 42;  // ~52 simulated days per bucket
// Rebuild with a fresh width once this many pops in a row had to fall back
// to a full-calendar scan — the signature of a stale bucket width.
constexpr std::uint64_t kFallbackRebuildThreshold = 8;

}  // namespace

void EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return;
  state_->cancelled = true;
  if (state_->live) --*state_->live;
}

bool EventHandle::active() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventQueue::EventQueue()
    : buckets_(kInitialBuckets),
      shift_(kInitialShift),
      cursor_key_(0),
      live_(std::make_shared<std::size_t>(0)),
      state_arena_(std::make_shared<PoolArena>()) {}

EventHandle EventQueue::schedule(SimTime when, Callback fn) {
  WAIF_CHECK(fn != nullptr);
  auto state = std::allocate_shared<EventHandle::State>(
      PoolAllocator<EventHandle::State>(state_arena_));
  state->live = live_;

  const std::uint64_t key = key_of(when);
  if (entries_ == 0 || key < cursor_key_) cursor_key_ = key;
  Bucket& bucket = buckets_[key & (buckets_.size() - 1)];
  bucket.push_back(Entry{when, next_seq_++, std::move(fn), state});
  std::push_heap(bucket.begin(), bucket.end(), Later{});
  ++entries_;
  ++*live_;
  maybe_resize();
  return EventHandle(std::move(state));
}

SimTime EventQueue::next_time() {
  if (empty()) return kNever;
  const std::size_t index = find_min_bucket();
  return buckets_[index].front().time;
}

EventQueue::Fired EventQueue::pop() {
  WAIF_CHECK(!empty());
  const std::size_t index = find_min_bucket();
  Bucket& bucket = buckets_[index];
  std::pop_heap(bucket.begin(), bucket.end(), Later{});
  Entry entry = std::move(bucket.back());
  bucket.pop_back();
  --entries_;
  entry.state->fired = true;
  --*live_;
  // Draining far below capacity leaves long empty stretches between live
  // keys; shrink so the calendar scan stays proportional to the population.
  if (entries_ < buckets_.size() / 8 && buckets_.size() > kMinBuckets) {
    rebuild(std::max(kMinBuckets, std::bit_ceil(entries_ * 2)));
  }
  return Fired{entry.time, std::move(entry.fn)};
}

void EventQueue::clear() {
  for (Bucket& bucket : buckets_) {
    for (Entry& entry : bucket) {
      entry.state->cancelled = true;  // so outstanding handles go inert
    }
    bucket.clear();
  }
  entries_ = 0;
  *live_ = 0;
  cursor_key_ = 0;
}

void EventQueue::skim(Bucket& bucket) {
  while (!bucket.empty() && bucket.front().state->cancelled) {
    std::pop_heap(bucket.begin(), bucket.end(), Later{});
    bucket.pop_back();
    --entries_;
  }
}

std::size_t EventQueue::find_min_bucket() {
  const std::size_t mask = buckets_.size() - 1;
  // One calendar year: each bucket is visited at most once, and within the
  // scanned key window every bucket holds at most one key class, so the
  // first bucket whose (skimmed) front matches the key IS the global
  // minimum — no tie can hide in another bucket.
  std::uint64_t key = cursor_key_;
  for (std::size_t step = 0; step <= mask; ++step, ++key) {
    Bucket& bucket = buckets_[key & mask];
    skim(bucket);
    if (!bucket.empty() && key_of(bucket.front().time) == key) {
      cursor_key_ = key;
      fallback_scans_ = 0;
      return key & mask;
    }
  }

  // Nothing within a year of the cursor: jump straight to the earliest
  // entry across all buckets. Chronic fallbacks mean the bucket width no
  // longer fits the event spacing — re-estimate it.
  std::size_t best = buckets_.size();
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    Bucket& bucket = buckets_[i];
    skim(bucket);
    if (bucket.empty()) continue;
    if (best == buckets_.size() ||
        Later{}(buckets_[best].front(), bucket.front())) {
      best = i;
    }
  }
  WAIF_CHECK(best < buckets_.size());  // live_ > 0 guarantees a survivor
  cursor_key_ = key_of(buckets_[best].front().time);
  if (++fallback_scans_ >= kFallbackRebuildThreshold) {
    rebuild(buckets_.size());
    return find_min_bucket();
  }
  return best;
}

void EventQueue::rebuild(std::size_t bucket_count) {
  std::vector<Entry> entries;
  entries.reserve(entries_);
  for (Bucket& bucket : buckets_) {
    for (Entry& entry : bucket) {
      if (!entry.state->cancelled) entries.push_back(std::move(entry));
    }
    bucket.clear();
  }
  entries_ = entries.size();
  fallback_scans_ = 0;

  // Re-estimate the bucket width from up to 64 strided samples: the spacing
  // that spreads the (outlier-trimmed) span of the live population one
  // event per bucket. Deterministic — and free to vary, because pop order
  // never depends on the geometry.
  if (!entries.empty()) {
    std::vector<std::uint64_t> sample;
    const std::size_t stride = std::max<std::size_t>(1, entries.size() / 64);
    for (std::size_t i = 0; i < entries.size(); i += stride) {
      sample.push_back(biased(entries[i].time));
    }
    std::sort(sample.begin(), sample.end());
    // Trim the top eighth so one far-future sentinel cannot blow the width.
    const std::uint64_t low = sample.front();
    const std::uint64_t high = sample[(sample.size() - 1) * 7 / 8];
    const std::uint64_t gap = (high - low) / (entries.size() + 1);
    shift_ = std::min(kMaxShift,
                      gap == 0 ? 0 : static_cast<int>(std::bit_width(gap)) - 1);
  }

  buckets_.assign(bucket_count, Bucket{});
  const std::size_t mask = buckets_.size() - 1;
  cursor_key_ = ~std::uint64_t{0};
  for (Entry& entry : entries) {
    const std::uint64_t key = key_of(entry.time);
    cursor_key_ = std::min(cursor_key_, key);
    Bucket& bucket = buckets_[key & mask];
    bucket.push_back(std::move(entry));
    std::push_heap(bucket.begin(), bucket.end(), Later{});
  }
  if (entries_ == 0) cursor_key_ = 0;
}

void EventQueue::maybe_resize() {
  if (entries_ > buckets_.size() * 2) {
    rebuild(buckets_.size() * 2);
  }
}

}  // namespace waif::sim
