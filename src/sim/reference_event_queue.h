// The retired std::priority_queue implementation of the event queue, kept
// verbatim as the correctness oracle for the calendar queue.
//
// tests/sim/calendar_queue_diff_test.cpp drives randomized seeded
// interleavings of schedule/cancel/pop through both queues and asserts
// identical pop order and cancel semantics; bench/micro_core.cpp races the
// two so BENCH_micro_core.json carries the measured speedup. Keep this in
// lockstep with the EventQueue API, but do NOT "optimize" it — its value is
// being the obviously correct O(log n) baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.h"

namespace waif::sim {

/// Handle to an event scheduled on a ReferenceEventQueue; same contract as
/// EventHandle.
class ReferenceEventHandle {
 public:
  ReferenceEventHandle() = default;

  void cancel() {
    if (!state_ || state_->cancelled || state_->fired) return;
    state_->cancelled = true;
    if (state_->live) --*state_->live;
  }

  bool active() const { return state_ && !state_->cancelled && !state_->fired; }

 private:
  friend class ReferenceEventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
    std::shared_ptr<std::size_t> live;
  };
  explicit ReferenceEventHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Min-heap of (time, seq) -> callback; the pre-calendar EventQueue.
class ReferenceEventQueue {
 public:
  using Callback = std::function<void()>;

  ReferenceEventQueue() : live_(std::make_shared<std::size_t>(0)) {}

  ReferenceEventHandle schedule(SimTime when, Callback fn) {
    auto state = std::make_shared<ReferenceEventHandle::State>();
    state->live = live_;
    heap_.push(Entry{when, next_seq_++, std::move(fn), state});
    ++*live_;
    return ReferenceEventHandle(std::move(state));
  }

  SimTime next_time() {
    skim();
    return heap_.empty() ? kNever : heap_.top().time;
  }

  struct Fired {
    SimTime time;
    Callback fn;
  };

  Fired pop() {
    skim();
    const Entry& top = heap_.top();
    Fired fired{top.time, std::move(top.fn)};
    top.state->fired = true;
    --*live_;
    heap_.pop();
    return fired;
  }

  bool empty() const { return *live_ == 0; }
  std::size_t size() const { return *live_; }

  void clear() {
    while (!heap_.empty()) {
      heap_.top().state->cancelled = true;
      heap_.pop();
    }
    *live_ = 0;
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    mutable Callback fn;
    std::shared_ptr<ReferenceEventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void skim() {
    while (!heap_.empty() && heap_.top().state->cancelled) heap_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::shared_ptr<std::size_t> live_;
};

}  // namespace waif::sim
