// Cancellable time-ordered event queue for the discrete-event simulator.
//
// Events scheduled for the same instant fire in scheduling order (a strictly
// increasing sequence number breaks ties), which makes runs deterministic.
// Cancellation is lazy: a handle flips a shared flag and the entry is skipped
// when it reaches the top of its bucket — O(1) cancel, no heap surgery.
//
// Internally this is a calendar queue (Brown 1988) tuned for the simulator's
// access pattern: a power-of-two array of time buckets, each bucket a small
// binary heap ordered by (time, seq). schedule() drops an entry into the
// bucket of its time slice in O(1) (plus an O(log b) sift inside a bucket
// that is rarely more than a couple of entries deep); pop() walks the bucket
// calendar from a monotone cursor and pays O(1) amortized at high event
// rates. Because every bucket is itself ordered by exactly the comparator
// the old global binary heap used, the pop order is structurally identical
// to the heap's — (time, seq) lexicographic — for every interleaving of
// schedule, cancel and pop; tests/sim/calendar_queue_diff_test.cpp proves
// this differentially against ReferenceEventQueue (the retired heap), and
// the digest-checked benches prove it end to end.
//
// Handle states are carved from a free-list arena (common/pool_allocator.h)
// shared with the out-standing handles, so a steady-state schedule/pop cycle
// performs zero heap allocations after warm-up.
//
// Threading: one EventQueue (and its handles) belongs to one thread, as one
// Simulator always has. Handles may outlive the queue, but must be destroyed
// on the thread that owned the queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/pool_allocator.h"
#include "common/time.h"

namespace waif::sim {

/// Handle to a scheduled event; copyable, may outlive the queue safely.
/// Default-constructed handles refer to nothing.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Idempotent; no-op after it fired.
  void cancel();

  /// True while the event is scheduled and has neither fired nor been
  /// cancelled.
  bool active() const;

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
    // Live-event counter shared with the owning queue; keeps size() exact
    // even though cancelled entries are removed from the calendar lazily.
    std::shared_ptr<std::size_t> live;
  };
  explicit EventHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Calendar queue of (time, seq) -> callback.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue();

  /// Schedules `fn` at absolute time `when`.
  EventHandle schedule(SimTime when, Callback fn);

  /// Time of the earliest live event, or kNever when empty.
  SimTime next_time();

  /// Pops and returns the earliest live event. Pre: !empty().
  struct Fired {
    SimTime time;
    Callback fn;
  };
  Fired pop();

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return *live_ == 0; }

  /// Number of live events.
  std::size_t size() const { return *live_; }

  /// Drops every scheduled event.
  void clear();

  /// Calendar geometry, exposed for the white-box perf tests.
  std::size_t bucket_count() const { return buckets_.size(); }
  int bucket_shift() const { return shift_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<EventHandle::State> state;
  };
  /// Heap order: the comparator of the retired global binary heap. With
  /// std::push_heap/pop_heap ("max" heap by Later) the bucket front is the
  /// earliest (time, seq) — identical pop order to the old implementation.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  using Bucket = std::vector<Entry>;

  /// Order-preserving map of SimTime onto unsigned keys (INT64_MIN -> 0).
  static std::uint64_t biased(SimTime t) {
    return static_cast<std::uint64_t>(t) + (std::uint64_t{1} << 63);
  }
  std::uint64_t key_of(SimTime t) const { return biased(t) >> shift_; }

  /// Discards cancelled entries at the front of `bucket`.
  void skim(Bucket& bucket);
  /// Index of the bucket whose front is the earliest live event; advances
  /// the cursor to that event's key. Pre: !empty().
  std::size_t find_min_bucket();
  /// Rebuilds the calendar with `bucket_count` buckets and a bucket width
  /// re-estimated from the live population.
  void rebuild(std::size_t bucket_count);
  void maybe_resize();

  std::vector<Bucket> buckets_;
  int shift_;                    // bucket width = 2^shift_ microseconds
  std::uint64_t cursor_key_;     // <= key of every live entry
  std::size_t entries_ = 0;      // stored entries, including cancelled ones
  std::uint64_t next_seq_ = 0;
  std::uint64_t fallback_scans_ = 0;  // full-calendar scans since rebuild
  std::shared_ptr<std::size_t> live_;
  std::shared_ptr<PoolArena> state_arena_;
};

}  // namespace waif::sim
