// Cancellable time-ordered event queue for the discrete-event simulator.
//
// Events scheduled for the same instant fire in scheduling order (a strictly
// increasing sequence number breaks ties), which makes runs deterministic.
// Cancellation is lazy: a handle flips a shared flag and the entry is skipped
// when it reaches the top of the heap — O(1) cancel, no heap surgery.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.h"

namespace waif::sim {

/// Handle to a scheduled event; copyable, may outlive the queue safely.
/// Default-constructed handles refer to nothing.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Idempotent; no-op after it fired.
  void cancel();

  /// True while the event is scheduled and has neither fired nor been
  /// cancelled.
  bool active() const;

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
    // Live-event counter shared with the owning queue; keeps size() exact
    // even though cancelled entries are removed from the heap lazily.
    std::shared_ptr<std::size_t> live;
  };
  explicit EventHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Min-heap of (time, seq) -> callback.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue();

  /// Schedules `fn` at absolute time `when`.
  EventHandle schedule(SimTime when, Callback fn);

  /// Time of the earliest live event, or kNever when empty.
  SimTime next_time();

  /// Pops and returns the earliest live event. Pre: !empty().
  struct Fired {
    SimTime time;
    Callback fn;
  };
  Fired pop();

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return *live_ == 0; }

  /// Number of live events.
  std::size_t size() const { return *live_; }

  /// Drops every scheduled event.
  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    // mutable so fn can be moved out of the priority queue's const top().
    mutable Callback fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Discards cancelled entries at the top of the heap.
  void skim();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::shared_ptr<std::size_t> live_;
};

}  // namespace waif::sim
