#include "sim/simulator.h"

#include <utility>

namespace waif::sim {

EventHandle Simulator::schedule_at(SimTime when, Callback fn) {
  WAIF_CHECK(when >= now_);
  return queue_.schedule(when, std::move(fn));
}

EventHandle Simulator::schedule_after(SimDuration delay, Callback fn) {
  WAIF_CHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_) {
    const SimTime next = queue_.next_time();
    if (next == kNever || next > deadline) break;
    auto fired = queue_.pop();
    now_ = fired.time;
    ++fired_;
    fired.fn();
  }
  if (!stopped_ && deadline != kNever && now_ < deadline) {
    // All events up to the deadline have fired; the run covers [now, deadline]
    // so the clock advances to the deadline itself.
    now_ = deadline;
  }
}

void Simulator::run() { run_until(kNever); }

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  ++fired_;
  fired.fn();
  return true;
}

}  // namespace waif::sim
