#include "sim/simulator.h"

#include <atomic>
#include <utility>

namespace waif::sim {

namespace {
std::atomic<std::uint64_t> g_total_events_fired{0};
}  // namespace

std::uint64_t total_events_fired() {
  return g_total_events_fired.load(std::memory_order_relaxed);
}

Simulator::~Simulator() {
  g_total_events_fired.fetch_add(fired_, std::memory_order_relaxed);
}

EventHandle Simulator::schedule_at(SimTime when, Callback fn) {
  WAIF_CHECK(when >= now_);
  return queue_.schedule(when, std::move(fn));
}

EventHandle Simulator::schedule_after(SimDuration delay, Callback fn) {
  WAIF_CHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_) {
    const SimTime next = queue_.next_time();
    if (next == kNever || next > deadline) break;
    auto fired = queue_.pop();
    now_ = fired.time;
    ++fired_;
    fired.fn();
    if (!post_event_hooks_.empty()) run_post_event_hooks();
  }
  if (!stopped_ && deadline != kNever && now_ < deadline) {
    // All events up to the deadline have fired; the run covers [now, deadline]
    // so the clock advances to the deadline itself.
    now_ = deadline;
  }
}

void Simulator::run() { run_until(kNever); }

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  ++fired_;
  fired.fn();
  if (!post_event_hooks_.empty()) run_post_event_hooks();
  return true;
}

std::size_t Simulator::add_post_event_hook(Callback hook) {
  WAIF_CHECK(hook != nullptr);
  const std::size_t id = next_hook_id_++;
  post_event_hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Simulator::remove_post_event_hook(std::size_t id) {
  std::erase_if(post_event_hooks_,
                [id](const auto& entry) { return entry.first == id; });
}

}  // namespace waif::sim
