// The discrete-event simulator driving every experiment.
//
// Single-threaded by design: one virtual clock, one event queue. Components
// (broker, proxy, link, device, user) hold a Simulator& and schedule callbacks;
// the paper's `schedule()` primitive maps to schedule_after()/schedule_at().
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/time.h"
#include "sim/event_queue.h"

namespace waif::sim {

/// Events fired across every Simulator this process has *destroyed* plus
/// flush_events_fired() calls — the denominator of the BENCH_*.json
/// events-per-second figures. Thread-safe.
std::uint64_t total_events_fired();

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Folds this simulator's fired-event count into total_events_fired().
  ~Simulator();

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `when` (>= now()).
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` `delay` after the current time (delay >= 0).
  EventHandle schedule_after(SimDuration delay, Callback fn);

  /// Runs events until the queue empties or the clock would pass `deadline`.
  /// Events scheduled exactly at `deadline` do fire; afterwards the clock
  /// rests at `deadline` (unless stop() was called or deadline is kNever).
  void run_until(SimTime deadline);

  /// Runs until the queue is empty.
  void run();

  /// Fires exactly one event if any is pending; returns whether one fired.
  bool step();

  /// Stops the current run_until()/run() after the in-flight event returns.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return queue_.size(); }

  /// Total number of events fired since construction.
  std::uint64_t fired_events() const { return fired_; }

  /// Cancels everything scheduled; the clock is unchanged.
  void clear() { queue_.clear(); }

  /// Registers a hook that runs after every fired event's callback returns,
  /// before the next event is popped — the "end of event" boundary (the WAL
  /// group-commit flush hangs here). Returns an id for removal. Hooks must
  /// not add or remove hooks from inside a hook.
  std::size_t add_post_event_hook(std::function<void()> hook);
  void remove_post_event_hook(std::size_t id);

 private:
  void run_post_event_hooks() {
    for (auto& [id, hook] : post_event_hooks_) hook();
  }

  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t fired_ = 0;
  bool stopped_ = false;
  std::vector<std::pair<std::size_t, Callback>> post_event_hooks_;
  std::size_t next_hook_id_ = 1;
};

}  // namespace waif::sim
