// The discrete-event simulator driving every experiment.
//
// Single-threaded by design: one virtual clock, one event queue. Components
// (broker, proxy, link, device, user) hold a Simulator& and schedule callbacks;
// the paper's `schedule()` primitive maps to schedule_after()/schedule_at().
#pragma once

#include <cstddef>
#include <functional>

#include "common/check.h"
#include "common/time.h"
#include "sim/event_queue.h"

namespace waif::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `when` (>= now()).
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` `delay` after the current time (delay >= 0).
  EventHandle schedule_after(SimDuration delay, Callback fn);

  /// Runs events until the queue empties or the clock would pass `deadline`.
  /// Events scheduled exactly at `deadline` do fire; afterwards the clock
  /// rests at `deadline` (unless stop() was called or deadline is kNever).
  void run_until(SimTime deadline);

  /// Runs until the queue is empty.
  void run();

  /// Fires exactly one event if any is pending; returns whether one fired.
  bool step();

  /// Stops the current run_until()/run() after the in-flight event returns.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return queue_.size(); }

  /// Total number of events fired since construction.
  std::uint64_t fired_events() const { return fired_; }

  /// Cancels everything scheduled; the clock is unchanged.
  void clear() { queue_.clear(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t fired_ = 0;
  bool stopped_ = false;
};

}  // namespace waif::sim
