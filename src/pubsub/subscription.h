// Subscriber-side volume limits (Section 2.2 of the paper).
#pragma once

#include <limits>

#include "common/ids.h"
#include "pubsub/notification.h"

namespace waif::pubsub {

/// "Deliver at most Max highest-ranked notifications at a time" — the
/// quantitative limit. Unlimited by default.
inline constexpr int kUnlimitedMax = std::numeric_limits<int>::max();

struct SubscriptionOptions {
  /// Quantitative limit: at most this many highest-ranked notifications per
  /// read.
  int max = kUnlimitedMax;
  /// Qualitative limit: only notifications with rank >= threshold are
  /// acceptable.
  double threshold = kMinRank;

  /// True when `n` clears the qualitative limit.
  bool accepts(const Notification& n) const { return n.rank >= threshold; }
};

}  // namespace waif::pubsub
