// Event notifications and their volume-limiting attributes.
//
// Per the paper (Section 2.1), every notification may carry two publisher-
// assigned attributes: Rank (importance relative to other notifications on the
// same topic) and Expiration (the instant after which it is irrelevant).
// Notifications are immutable once published; a rank change is expressed as a
// fresh Notification carrying the same id (Section 3.4), exactly as the
// paper's NOTIFICATION handler expects.
#pragma once

#include <compare>
#include <memory>
#include <string>

#include "common/ids.h"
#include "common/time.h"

namespace waif::pubsub {

/// Ranks live on a fixed scale; the examples follow the paper's Slashdot
/// illustration (0 .. 5).
inline constexpr double kMinRank = 0.0;
inline constexpr double kMaxRank = 5.0;

struct Notification {
  NotificationId id;
  std::string topic;
  PublisherId publisher;
  /// Importance relative to other notifications on the topic, in
  /// [kMinRank, kMaxRank].
  double rank = kMinRank;
  /// Virtual time of the publish() call.
  SimTime published_at = 0;
  /// Instant after which the notification should be discarded; kNever if the
  /// publisher attached no expiration.
  SimTime expires_at = kNever;
  /// Application payload (opaque to the infrastructure).
  std::string payload;

  bool expired_at(SimTime now) const { return expires_at <= now; }
  bool expires() const { return expires_at != kNever; }
  /// Remaining lifetime at `now`; 0 if already expired, kNever if eternal.
  SimDuration remaining_lifetime(SimTime now) const;
};

/// Shared immutable notification as routed through the system. One allocation
/// per publish; every queue and device buffer holds a reference.
using NotificationPtr = std::shared_ptr<const Notification>;

/// Ordering used everywhere "highest-ranked" appears in the paper: by rank
/// descending, ties broken toward the more recent event, then by id for
/// total determinism.
struct RankHigher {
  bool operator()(const NotificationPtr& a, const NotificationPtr& b) const {
    if (a->rank != b->rank) return a->rank > b->rank;
    if (a->published_at != b->published_at)
      return a->published_at > b->published_at;
    return a->id.value > b->id.value;
  }
};

}  // namespace waif::pubsub
