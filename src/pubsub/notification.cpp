#include "pubsub/notification.h"

namespace waif::pubsub {

SimDuration Notification::remaining_lifetime(SimTime now) const {
  if (!expires()) return kNever;
  if (expires_at <= now) return 0;
  return expires_at - now;
}

}  // namespace waif::pubsub
