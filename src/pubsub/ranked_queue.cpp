#include "pubsub/ranked_queue.h"

#include <algorithm>

#include "common/check.h"

namespace waif::pubsub {

using pubsub::NotificationPtr;
using pubsub::RankHigher;

RankedQueue::RankedQueue()
    : ordered_arena_(std::make_shared<PoolArena>()),
      index_arena_(std::make_shared<PoolArena>()),
      ordered_(RankHigher{}, PoolAllocator<NotificationPtr>(ordered_arena_)),
      index_(0, std::hash<std::uint64_t>{}, std::equal_to<std::uint64_t>{},
             PoolAllocator<std::pair<const std::uint64_t, Ordered::iterator>>(
                 index_arena_)) {}

bool RankedQueue::insert(const NotificationPtr& notification) {
  WAIF_CHECK(notification != nullptr);
  auto indexed = index_.find(notification->id.value);
  if (indexed != index_.end()) {
    // Same id (e.g. a re-ranked copy): replace so ordering stays correct.
    ordered_.erase(indexed->second);
    indexed->second = ordered_.insert(notification).first;
    return false;
  }
  auto [it, inserted] = ordered_.insert(notification);
  WAIF_CHECK(inserted);  // RankHigher totally orders distinct ids
  index_.emplace(notification->id.value, it);
  return true;
}

NotificationPtr RankedQueue::erase(NotificationId id) {
  auto indexed = index_.find(id.value);
  if (indexed == index_.end()) return nullptr;
  NotificationPtr removed = *indexed->second;
  ordered_.erase(indexed->second);
  index_.erase(indexed);
  return removed;
}

NotificationPtr RankedQueue::find(NotificationId id) const {
  auto indexed = index_.find(id.value);
  return indexed == index_.end() ? nullptr : *indexed->second;
}

NotificationPtr RankedQueue::top() const {
  return ordered_.empty() ? nullptr : *ordered_.begin();
}

NotificationPtr RankedQueue::pop_top() {
  if (ordered_.empty()) return nullptr;
  NotificationPtr top = *ordered_.begin();
  index_.erase(top->id.value);
  ordered_.erase(ordered_.begin());
  return top;
}

NotificationPtr RankedQueue::bottom() const {
  return ordered_.empty() ? nullptr : *ordered_.rbegin();
}

NotificationPtr RankedQueue::pop_bottom() {
  if (ordered_.empty()) return nullptr;
  auto last = std::prev(ordered_.end());
  NotificationPtr lowest = *last;
  index_.erase(lowest->id.value);
  ordered_.erase(last);
  return lowest;
}

std::vector<NotificationPtr> RankedQueue::top_n(int n, double threshold) const {
  std::vector<NotificationPtr> result;
  if (n <= 0) return result;
  result.reserve(std::min<std::size_t>(static_cast<std::size_t>(n), size()));
  for (const NotificationPtr& notification : ordered_) {
    if (static_cast<int>(result.size()) >= n) break;
    if (notification->rank < threshold) break;  // ordered by rank: done
    result.push_back(notification);
  }
  return result;
}

void RankedQueue::clear() {
  ordered_.clear();
  index_.clear();
}

std::vector<NotificationPtr> top_n_across(
    std::initializer_list<const RankedQueue*> queues, int n, double threshold) {
  std::vector<NotificationPtr> merged;
  for (const RankedQueue* queue : queues) {
    auto part = queue->top_n(n, threshold);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(), RankHigher{});
  // De-duplicate by id (an event may appear in more than one queue only
  // transiently, but be safe).
  std::vector<NotificationPtr> result;
  result.reserve(merged.size());
  for (const NotificationPtr& notification : merged) {
    if (static_cast<int>(result.size()) >= n) break;
    const bool seen = std::any_of(
        result.begin(), result.end(), [&](const NotificationPtr& r) {
          return r->id == notification->id;
        });
    if (!seen) result.push_back(notification);
  }
  return result;
}

}  // namespace waif::pubsub
