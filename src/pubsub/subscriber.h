// Subscriber endpoint interface.
#pragma once

#include <string>

#include "pubsub/notification.h"

namespace waif::pubsub {

/// Anything that can receive notifications from a broker: a proxy acting for
/// a mobile device, a test probe, an overlay edge.
///
/// Rank changes arrive through the same entry point as fresh events — a
/// Notification whose id the receiver has already seen (paper Section 3.4).
class Subscriber {
 public:
  virtual ~Subscriber() = default;

  /// Delivery of a (possibly re-ranked) notification on a subscribed topic.
  virtual void on_notification(const NotificationPtr& notification) = 0;

  /// The last advertiser of `topic` withdrew it; no further notifications
  /// will arrive. Default: ignore.
  virtual void on_topic_withdrawn(const std::string& topic);
};

inline void Subscriber::on_topic_withdrawn(const std::string&) {}

}  // namespace waif::pubsub
