// A notification queue ordered by rank, with O(log n) id-based removal.
//
// The paper's pseudo-code manipulates its queues (outgoing, prefetch,
// holding) with set union/difference and a get_highest_ranked(N, ...)
// primitive; RankedQueue is that data structure: a set ordered by RankHigher
// (rank desc, recency, id — a total order) plus an id index.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/pool_allocator.h"
#include "pubsub/notification.h"

namespace waif::pubsub {

class RankedQueue {
 public:
  RankedQueue();
  // The id index holds iterators into ordered_; a memberwise copy/move would
  // leave them pointing into the source queue. Nothing copies whole queues —
  // callers copy contents (snapshot/restore) — so forbid it outright.
  RankedQueue(const RankedQueue&) = delete;
  RankedQueue& operator=(const RankedQueue&) = delete;

  /// Inserts or replaces (by id) a notification. Returns true when the id was
  /// not present before.
  bool insert(const pubsub::NotificationPtr& notification);

  /// Removes by id; returns the removed notification or nullptr.
  pubsub::NotificationPtr erase(NotificationId id);

  bool contains(NotificationId id) const { return index_.contains(id.value); }

  /// The held notification with this id, or nullptr.
  pubsub::NotificationPtr find(NotificationId id) const;

  /// Highest-ranked notification; nullptr when empty.
  pubsub::NotificationPtr top() const;

  /// Removes and returns the highest-ranked notification; nullptr when empty.
  pubsub::NotificationPtr pop_top();

  /// Lowest-ranked notification; nullptr when empty. Used for storage
  /// eviction on constrained devices.
  pubsub::NotificationPtr bottom() const;

  /// Removes and returns the lowest-ranked notification; nullptr when empty.
  pubsub::NotificationPtr pop_bottom();

  /// The up-to-`n` highest-ranked notifications with rank >= threshold
  /// (non-destructive) — the paper's get_highest_ranked(N, queue).
  std::vector<pubsub::NotificationPtr> top_n(int n, double threshold) const;

  std::size_t size() const { return ordered_.size(); }
  bool empty() const { return ordered_.empty(); }
  void clear();

  /// Iteration in rank order (highest first).
  auto begin() const { return ordered_.begin(); }
  auto end() const { return ordered_.end(); }

 private:
  // Both containers draw their (fixed-size) nodes from per-container slab
  // arenas, so a steady-state insert/erase cycle allocates nothing from the
  // global heap — see common/pool_allocator.h. Each container gets its OWN
  // arena because an arena serves exactly one size class.
  using Ordered = std::set<pubsub::NotificationPtr, pubsub::RankHigher,
                           PoolAllocator<pubsub::NotificationPtr>>;
  using Index = std::unordered_map<
      std::uint64_t, Ordered::iterator, std::hash<std::uint64_t>,
      std::equal_to<std::uint64_t>,
      PoolAllocator<std::pair<const std::uint64_t, Ordered::iterator>>>;

  std::shared_ptr<PoolArena> ordered_arena_;
  std::shared_ptr<PoolArena> index_arena_;
  Ordered ordered_;
  Index index_;
};

/// The up-to-`n` highest-ranked notifications (rank >= threshold) across
/// several queues, de-duplicated by id — get_highest_ranked(N, q1 ∪ q2 ∪ ...).
std::vector<pubsub::NotificationPtr> top_n_across(
    std::initializer_list<const RankedQueue*> queues, int n, double threshold);

}  // namespace waif::pubsub
