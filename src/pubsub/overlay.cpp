#include "pubsub/overlay.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/check.h"

namespace waif::pubsub {

// ---------------------------------------------------------------- OverlayNode

OverlayNode::OverlayNode(Overlay& overlay, BrokerId id, std::string name)
    : overlay_(overlay), id_(id), name_(std::move(name)) {}

PublisherId OverlayNode::register_publisher(std::string) {
  const PublisherId id{overlay_.next_publisher_++};
  publisher_topics_.emplace(id.value, std::unordered_set<std::string>{});
  return id;
}

void OverlayNode::advertise(PublisherId publisher, const std::string& topic) {
  auto it = publisher_topics_.find(publisher.value);
  if (it == publisher_topics_.end()) {
    throw std::invalid_argument("advertise: publisher not attached here");
  }
  it->second.insert(topic);
  advertised_.insert(topic);
}

bool OverlayNode::withdraw(PublisherId publisher, const std::string& topic) {
  auto it = publisher_topics_.find(publisher.value);
  if (it == publisher_topics_.end() || it->second.erase(topic) == 0) {
    return false;
  }
  // advertised_ keeps the topic while any local publisher still has it.
  const bool still = std::any_of(
      publisher_topics_.begin(), publisher_topics_.end(),
      [&](const auto& entry) { return entry.second.contains(topic); });
  if (!still) advertised_.erase(topic);
  return true;
}

NotificationPtr OverlayNode::publish(PublisherId publisher,
                                     const std::string& topic, double rank,
                                     SimDuration lifetime,
                                     std::string payload) {
  auto it = publisher_topics_.find(publisher.value);
  if (it == publisher_topics_.end() || !it->second.contains(topic)) {
    return nullptr;
  }
  auto notification = std::make_shared<Notification>();
  notification->id = NotificationId{overlay_.next_notification_++};
  notification->topic = topic;
  notification->publisher = publisher;
  notification->rank = std::clamp(rank, kMinRank, kMaxRank);
  notification->published_at = overlay_.sim_.now();
  notification->expires_at =
      lifetime == kNever ? kNever : overlay_.sim_.now() + lifetime;
  notification->payload = std::move(payload);

  ++overlay_.stats_.published;
  history_.push_back(notification);
  if (history_.size() > overlay_.history_limit_) history_.pop_front();
  receive(notification, /*from=*/nullptr);
  return notification;
}

bool OverlayNode::update_rank(PublisherId publisher, NotificationId id,
                              double new_rank) {
  auto it = std::find_if(history_.begin(), history_.end(),
                         [&](const NotificationPtr& n) { return n->id == id; });
  if (it == history_.end() || (*it)->publisher != publisher) return false;
  auto updated = std::make_shared<Notification>(**it);
  updated->rank = std::clamp(new_rank, kMinRank, kMaxRank);
  *it = updated;
  receive(updated, /*from=*/nullptr);
  return true;
}

SubscriptionId OverlayNode::subscribe(const std::string& topic,
                                      Subscriber& subscriber,
                                      SubscriptionOptions options) {
  const SubscriptionId id{overlay_.next_subscription_++};
  subscriptions_.push_back(SubscriptionRecord{id, topic, &subscriber, options});
  ++local_interest_[topic];
  refresh_interest(topic);
  return id;
}

bool OverlayNode::unsubscribe(SubscriptionId id) {
  auto it = std::find_if(
      subscriptions_.begin(), subscriptions_.end(),
      [&](const SubscriptionRecord& r) { return r.id == id; });
  if (it == subscriptions_.end()) return false;
  const std::string topic = it->topic;
  subscriptions_.erase(it);
  auto interest = local_interest_.find(topic);
  WAIF_CHECK(interest != local_interest_.end() && interest->second > 0);
  if (--interest->second == 0) local_interest_.erase(interest);
  refresh_interest(topic);
  return true;
}

bool OverlayNode::interested_neighbor(BrokerId neighbor,
                                      const std::string& topic) const {
  auto it = neighbor_interest_.find(topic);
  return it != neighbor_interest_.end() && it->second.contains(neighbor.value);
}

bool OverlayNode::has_interest(const std::string& topic) const {
  return local_interest_.contains(topic);
}

void OverlayNode::receive(const NotificationPtr& notification,
                          const OverlayNode* from) {
  const std::string& topic = notification->topic;
  if (notification->expired_at(overlay_.sim_.now())) {
    ++overlay_.stats_.dropped_expired;
    return;
  }
  // Local delivery. Iterate over a copy: callbacks may (un)subscribe.
  const auto subscriptions = subscriptions_;
  for (const auto& record : subscriptions) {
    if (record.topic != topic) continue;
    record.subscriber->on_notification(notification);
    ++overlay_.stats_.local_deliveries;
  }
  // Reverse-path forwarding along interested links, except back where the
  // notification came from.
  auto interested = neighbor_interest_.find(topic);
  if (interested == neighbor_interest_.end()) return;
  for (const Link& link : links_) {
    if (link.peer == from) continue;
    if (!interested->second.contains(link.peer->id_.value)) continue;
    OverlayNode* peer = link.peer;
    ++overlay_.stats_.forwarded;
    overlay_.sim_.schedule_after(link.latency, [peer, notification, this] {
      peer->receive(notification, this);
    });
  }
}

void OverlayNode::handle_interest(const std::string& topic, OverlayNode* from,
                                  bool add) {
  ++overlay_.stats_.interest_updates;
  auto& holders = neighbor_interest_[topic];
  if (add) {
    holders.insert(from->id_.value);
  } else {
    holders.erase(from->id_.value);
    if (holders.empty()) neighbor_interest_.erase(topic);
  }
  refresh_interest(topic);
}

bool OverlayNode::wants_from(const OverlayNode* neighbor,
                             const std::string& topic) const {
  if (local_interest_.contains(topic)) return true;
  // Interested on behalf of any *other* neighbor that asked us.
  auto it = neighbor_interest_.find(topic);
  if (it == neighbor_interest_.end()) return false;
  for (std::uint64_t holder : it->second) {
    if (holder != neighbor->id_.value) return true;
  }
  return false;
}

void OverlayNode::refresh_interest(const std::string& topic) {
  for (const Link& link : links_) {
    const bool want = wants_from(link.peer, topic);
    auto& announced = announced_interest_[topic];
    const bool told = announced.contains(link.peer->id_.value);
    if (want == told) continue;
    if (want) {
      announced.insert(link.peer->id_.value);
    } else {
      announced.erase(link.peer->id_.value);
    }
    link.peer->handle_interest(topic, this, want);
  }
  auto it = announced_interest_.find(topic);
  if (it != announced_interest_.end() && it->second.empty()) {
    announced_interest_.erase(it);
  }
}

// -------------------------------------------------------------------- Overlay

Overlay::Overlay(sim::Simulator& sim, std::size_t history_limit)
    : sim_(sim), history_limit_(history_limit) {
  WAIF_CHECK(history_limit > 0);
}

OverlayNode& Overlay::add_node(std::string name) {
  const BrokerId id{next_node_++};
  auto node = std::unique_ptr<OverlayNode>(
      new OverlayNode(*this, id, std::move(name)));
  OverlayNode* raw = node.get();
  nodes_.push_back(std::move(node));
  by_id_.emplace(id.value, raw);
  parent_.emplace(id.value, id.value);
  return *raw;
}

void Overlay::connect(BrokerId a, BrokerId b, SimDuration latency) {
  if (a == b) throw std::invalid_argument("connect: self-link");
  if (latency < 0) throw std::invalid_argument("connect: negative latency");
  OverlayNode& na = node(a);
  OverlayNode& nb = node(b);
  const std::uint64_t ra = find_root(a.value);
  const std::uint64_t rb = find_root(b.value);
  if (ra == rb) {
    throw std::invalid_argument("connect: edge would create a cycle");
  }
  parent_[ra] = rb;
  na.links_.push_back(OverlayNode::Link{&nb, latency});
  nb.links_.push_back(OverlayNode::Link{&na, latency});
  // Bring the new neighbors up to date on existing interest.
  for (const auto& [topic, count] : na.local_interest_) {
    (void)count;
    na.refresh_interest(topic);
  }
  for (const auto& [topic, holders] : na.neighbor_interest_) {
    (void)holders;
    na.refresh_interest(topic);
  }
  for (const auto& [topic, count] : nb.local_interest_) {
    (void)count;
    nb.refresh_interest(topic);
  }
  for (const auto& [topic, holders] : nb.neighbor_interest_) {
    (void)holders;
    nb.refresh_interest(topic);
  }
}

OverlayNode& Overlay::node(BrokerId id) {
  auto it = by_id_.find(id.value);
  if (it == by_id_.end()) throw std::invalid_argument("node: unknown broker id");
  return *it->second;
}

const OverlayNode& Overlay::node(BrokerId id) const {
  auto it = by_id_.find(id.value);
  if (it == by_id_.end()) throw std::invalid_argument("node: unknown broker id");
  return *it->second;
}

std::uint64_t Overlay::find_root(std::uint64_t id) {
  std::uint64_t root = id;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[id] != root) {
    const std::uint64_t next = parent_[id];
    parent_[id] = root;
    id = next;
  }
  return root;
}

}  // namespace waif::pubsub
