// A small wide-area routing substrate: a tree of broker nodes with
// subscription (interest) propagation and reverse-path forwarding.
//
// The paper treats the routing network as a black box offering the standard
// pub/sub operations; this overlay is a functional stand-in so the proxy can
// sit behind a real multi-hop substrate in examples and integration tests.
// Notifications travel link-by-link with per-link latency through the shared
// discrete-event simulator; interest updates propagate the same way but
// instantaneously (control traffic is negligible at the modeled scale).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "pubsub/notification.h"
#include "pubsub/subscriber.h"
#include "pubsub/subscription.h"
#include "sim/simulator.h"

namespace waif::pubsub {

class Overlay;

struct OverlayStats {
  std::uint64_t published = 0;
  std::uint64_t forwarded = 0;       // node-to-node notification transfers
  std::uint64_t local_deliveries = 0;
  std::uint64_t dropped_expired = 0;  // expired while in transit
  std::uint64_t interest_updates = 0;
};

/// One broker node in the overlay. Obtain from Overlay::add_node(); the
/// Overlay owns all nodes and they have stable addresses.
class OverlayNode {
 public:
  BrokerId id() const { return id_; }
  const std::string& name() const { return name_; }

  // --- publisher side (local attachment) ----------------------------------
  PublisherId register_publisher(std::string name = {});
  void advertise(PublisherId publisher, const std::string& topic);
  bool withdraw(PublisherId publisher, const std::string& topic);
  NotificationPtr publish(PublisherId publisher, const std::string& topic,
                          double rank, SimDuration lifetime = kNever,
                          std::string payload = {});
  /// Re-rank an event originally published at this node.
  bool update_rank(PublisherId publisher, NotificationId id, double new_rank);

  // --- subscriber side (local attachment) ---------------------------------
  SubscriptionId subscribe(const std::string& topic, Subscriber& subscriber,
                           SubscriptionOptions options = {});
  bool unsubscribe(SubscriptionId id);

  // --- introspection -------------------------------------------------------
  /// True when this node would forward `topic` traffic toward `neighbor`.
  bool interested_neighbor(BrokerId neighbor, const std::string& topic) const;
  /// True when this node itself must receive `topic` traffic.
  bool has_interest(const std::string& topic) const;
  std::size_t link_count() const { return links_.size(); }

 private:
  friend class Overlay;
  struct Link {
    OverlayNode* peer;
    SimDuration latency;
  };
  struct SubscriptionRecord {
    SubscriptionId id;
    std::string topic;
    Subscriber* subscriber;
    SubscriptionOptions options;
  };

  OverlayNode(Overlay& overlay, BrokerId id, std::string name);

  /// Notification arriving over the link from `from` (nullptr = published
  /// locally).
  void receive(const NotificationPtr& notification, const OverlayNode* from);

  /// Neighbor `from` declared (add=true) or retracted interest in `topic`.
  void handle_interest(const std::string& topic, OverlayNode* from, bool add);

  /// Recomputes, for every neighbor, whether we should appear interested to
  /// them, and sends the delta.
  void refresh_interest(const std::string& topic);

  bool wants_from(const OverlayNode* neighbor, const std::string& topic) const;

  Overlay& overlay_;
  BrokerId id_;
  std::string name_;
  std::vector<Link> links_;
  std::vector<SubscriptionRecord> subscriptions_;
  std::unordered_map<std::string, std::size_t> local_interest_;  // topic -> #subs
  /// topic -> neighbors that asked us for it.
  std::unordered_map<std::string, std::unordered_set<std::uint64_t>>
      neighbor_interest_;
  /// topic -> neighbors we have told we are interested.
  std::unordered_map<std::string, std::unordered_set<std::uint64_t>>
      announced_interest_;
  std::unordered_set<std::string> advertised_;  // by any local publisher
  std::unordered_map<std::uint64_t, std::unordered_set<std::string>>
      publisher_topics_;
  /// Origin-node history for rank updates, bounded like Broker's.
  std::deque<NotificationPtr> history_;
};

class Overlay {
 public:
  explicit Overlay(sim::Simulator& sim, std::size_t history_limit = 4096);

  Overlay(const Overlay&) = delete;
  Overlay& operator=(const Overlay&) = delete;

  /// Creates a new, initially isolated node.
  OverlayNode& add_node(std::string name);

  /// Connects two nodes with a symmetric link. Throws std::invalid_argument
  /// if the edge would create a cycle (the overlay must stay a tree) or
  /// duplicate an existing link.
  void connect(BrokerId a, BrokerId b, SimDuration latency);

  OverlayNode& node(BrokerId id);
  const OverlayNode& node(BrokerId id) const;
  std::size_t node_count() const { return nodes_.size(); }

  const OverlayStats& stats() const { return stats_; }
  sim::Simulator& simulator() { return sim_; }

 private:
  friend class OverlayNode;

  /// Union-find for cycle detection on connect().
  std::uint64_t find_root(std::uint64_t id);

  sim::Simulator& sim_;
  std::size_t history_limit_;
  std::vector<std::unique_ptr<OverlayNode>> nodes_;
  std::unordered_map<std::uint64_t, OverlayNode*> by_id_;
  std::unordered_map<std::uint64_t, std::uint64_t> parent_;  // union-find
  std::uint64_t next_node_ = 1;
  std::uint64_t next_publisher_ = 1;
  std::uint64_t next_notification_ = 1;
  std::uint64_t next_subscription_ = 1;
  OverlayStats stats_;
};

}  // namespace waif::pubsub
