// In-process topic-based broker: the routing substrate the paper treats as a
// black box offering advertise/withdraw, publish, subscribe/unsubscribe.
//
// Volume-limiting parameters (Max/Threshold) are carried on subscriptions but
// deliberately NOT enforced here: the paper applies them on the last hop (the
// proxy), and rank-drop retractions must reach subscribers even when the new
// rank falls below their threshold. The broker therefore fans every topic
// event out to every topic subscriber.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "pubsub/notification.h"
#include "pubsub/subscriber.h"
#include "pubsub/subscription.h"
#include "sim/simulator.h"

namespace waif::pubsub {

struct BrokerStats {
  std::uint64_t published = 0;
  std::uint64_t rank_updates = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t expired_swept = 0;
  std::uint64_t rejected_publishes = 0;
};

class Broker {
 public:
  /// `history_limit` bounds the per-topic event history retained for rank
  /// updates — the "garbage collection" the paper's pseudo-code omits.
  explicit Broker(sim::Simulator& sim, std::size_t history_limit = 4096);

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // --- publisher side -----------------------------------------------------

  /// Registers a publisher endpoint and returns its identity.
  PublisherId register_publisher(std::string name = {});

  /// Announces that `publisher` will publish on `topic`.
  void advertise(PublisherId publisher, const std::string& topic);

  /// Retracts the advertisement. When the last advertiser leaves, topic
  /// subscribers are told via on_topic_withdrawn(). Returns false if the
  /// publisher had not advertised the topic.
  bool withdraw(PublisherId publisher, const std::string& topic);

  /// Publishes a notification on an advertised topic. `lifetime` of kNever
  /// means no expiration. Returns the routed notification (with its assigned
  /// id), or nullptr if the topic was not advertised by `publisher` (counted
  /// in stats().rejected_publishes).
  NotificationPtr publish(PublisherId publisher, const std::string& topic,
                          double rank, SimDuration lifetime = kNever,
                          std::string payload = {});

  /// Changes the rank of a previously published notification (Section 3.4):
  /// routes a copy of the original carrying the new rank and the same id.
  /// Only the original publisher may re-rank. Returns false when the event is
  /// unknown (e.g. already garbage-collected) or the publisher mismatches.
  bool update_rank(PublisherId publisher, NotificationId id, double new_rank);

  // --- subscriber side ----------------------------------------------------

  /// Subscribes `subscriber` to `topic`; the subscriber must outlive the
  /// subscription. Subscribing to a not-yet-advertised topic is allowed.
  SubscriptionId subscribe(const std::string& topic, Subscriber& subscriber,
                           SubscriptionOptions options = {});

  /// Removes a subscription; returns false if the id is unknown.
  bool unsubscribe(SubscriptionId id);

  // --- introspection ------------------------------------------------------

  bool is_advertised(const std::string& topic) const;
  std::size_t subscriber_count(const std::string& topic) const;
  /// Looks up a retained notification by id; nullptr if never seen or GC'd.
  NotificationPtr find(NotificationId id) const;
  /// Options recorded for a live subscription; throws if unknown.
  const SubscriptionOptions& options(SubscriptionId id) const;
  const BrokerStats& stats() const { return stats_; }
  sim::Simulator& simulator() { return sim_; }

 private:
  struct SubscriptionRecord {
    SubscriptionId id;
    std::string topic;
    Subscriber* subscriber;
    SubscriptionOptions options;
  };
  struct TopicEntry {
    std::unordered_set<std::uint64_t> advertisers;
    std::vector<SubscriptionRecord> subscriptions;
    std::deque<NotificationPtr> history;
  };

  void route(TopicEntry& entry, const NotificationPtr& notification);
  void remember(TopicEntry& entry, const NotificationPtr& notification);
  void sweep_expired(TopicEntry& entry);

  sim::Simulator& sim_;
  std::size_t history_limit_;
  std::unordered_map<std::string, TopicEntry> topics_;
  std::unordered_map<std::uint64_t, std::string> publisher_names_;
  /// id -> topic, for rank-update lookup across topics.
  std::unordered_map<std::uint64_t, std::string> id_to_topic_;
  std::uint64_t next_publisher_ = 1;
  std::uint64_t next_notification_ = 1;
  std::uint64_t next_subscription_ = 1;
  BrokerStats stats_;
};

}  // namespace waif::pubsub
