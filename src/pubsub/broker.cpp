#include "pubsub/broker.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace waif::pubsub {

Broker::Broker(sim::Simulator& sim, std::size_t history_limit)
    : sim_(sim), history_limit_(history_limit) {
  WAIF_CHECK(history_limit > 0);
}

PublisherId Broker::register_publisher(std::string name) {
  const PublisherId id{next_publisher_++};
  publisher_names_.emplace(id.value, std::move(name));
  return id;
}

void Broker::advertise(PublisherId publisher, const std::string& topic) {
  if (!publisher_names_.contains(publisher.value)) {
    throw std::invalid_argument("advertise: unregistered publisher");
  }
  topics_[topic].advertisers.insert(publisher.value);
}

bool Broker::withdraw(PublisherId publisher, const std::string& topic) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) return false;
  TopicEntry& entry = it->second;
  if (entry.advertisers.erase(publisher.value) == 0) return false;
  if (entry.advertisers.empty()) {
    // Last advertiser left: tell subscribers. Iterate over a copy because a
    // callback may unsubscribe.
    const auto subscriptions = entry.subscriptions;
    for (const auto& record : subscriptions) {
      record.subscriber->on_topic_withdrawn(topic);
    }
  }
  return true;
}

NotificationPtr Broker::publish(PublisherId publisher, const std::string& topic,
                                double rank, SimDuration lifetime,
                                std::string payload) {
  auto it = topics_.find(topic);
  if (it == topics_.end() || !it->second.advertisers.contains(publisher.value)) {
    ++stats_.rejected_publishes;
    log_message(LogLevel::kWarn, sim_.now(), "broker",
                "publish on unadvertised topic '" + topic + "' rejected");
    return nullptr;
  }
  auto notification = std::make_shared<Notification>();
  notification->id = NotificationId{next_notification_++};
  notification->topic = topic;
  notification->publisher = publisher;
  notification->rank = std::clamp(rank, kMinRank, kMaxRank);
  notification->published_at = sim_.now();
  notification->expires_at =
      lifetime == kNever ? kNever : sim_.now() + lifetime;
  notification->payload = std::move(payload);

  ++stats_.published;
  NotificationPtr routed = notification;
  remember(it->second, routed);
  route(it->second, routed);
  return routed;
}

bool Broker::update_rank(PublisherId publisher, NotificationId id,
                         double new_rank) {
  auto topic_it = id_to_topic_.find(id.value);
  if (topic_it == id_to_topic_.end()) return false;
  auto entry_it = topics_.find(topic_it->second);
  WAIF_CHECK(entry_it != topics_.end());
  TopicEntry& entry = entry_it->second;

  auto original_it =
      std::find_if(entry.history.begin(), entry.history.end(),
                   [&](const NotificationPtr& n) { return n->id == id; });
  if (original_it == entry.history.end()) return false;
  if ((*original_it)->publisher != publisher) return false;
  if ((*original_it)->expired_at(sim_.now())) return false;  // too late

  auto updated = std::make_shared<Notification>(**original_it);
  updated->rank = std::clamp(new_rank, kMinRank, kMaxRank);
  *original_it = updated;  // history reflects the latest rank

  ++stats_.rank_updates;
  route(entry, updated);
  return true;
}

SubscriptionId Broker::subscribe(const std::string& topic,
                                 Subscriber& subscriber,
                                 SubscriptionOptions options) {
  const SubscriptionId id{next_subscription_++};
  topics_[topic].subscriptions.push_back(
      SubscriptionRecord{id, topic, &subscriber, options});
  return id;
}

bool Broker::unsubscribe(SubscriptionId id) {
  for (auto& [topic, entry] : topics_) {
    auto& subs = entry.subscriptions;
    auto it = std::find_if(subs.begin(), subs.end(),
                           [&](const SubscriptionRecord& r) { return r.id == id; });
    if (it != subs.end()) {
      subs.erase(it);
      return true;
    }
  }
  return false;
}

bool Broker::is_advertised(const std::string& topic) const {
  auto it = topics_.find(topic);
  return it != topics_.end() && !it->second.advertisers.empty();
}

std::size_t Broker::subscriber_count(const std::string& topic) const {
  auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.subscriptions.size();
}

NotificationPtr Broker::find(NotificationId id) const {
  auto topic_it = id_to_topic_.find(id.value);
  if (topic_it == id_to_topic_.end()) return nullptr;
  auto entry_it = topics_.find(topic_it->second);
  if (entry_it == topics_.end()) return nullptr;
  const auto& history = entry_it->second.history;
  auto it = std::find_if(history.begin(), history.end(),
                         [&](const NotificationPtr& n) { return n->id == id; });
  return it == history.end() ? nullptr : *it;
}

const SubscriptionOptions& Broker::options(SubscriptionId id) const {
  for (const auto& [topic, entry] : topics_) {
    for (const auto& record : entry.subscriptions) {
      if (record.id == id) return record.options;
    }
  }
  throw std::invalid_argument("options: unknown subscription");
}

void Broker::route(TopicEntry& entry, const NotificationPtr& notification) {
  // Iterate over a copy: a subscriber callback may (un)subscribe reentrantly.
  const auto subscriptions = entry.subscriptions;
  for (const auto& record : subscriptions) {
    record.subscriber->on_notification(notification);
    ++stats_.deliveries;
  }
}

void Broker::remember(TopicEntry& entry, const NotificationPtr& notification) {
  entry.history.push_back(notification);
  id_to_topic_.emplace(notification->id.value, notification->topic);
  if (entry.history.size() > history_limit_) {
    id_to_topic_.erase(entry.history.front()->id.value);
    entry.history.pop_front();
  }
  // Periodically drop expired events so rank updates cannot resurrect them
  // and the id map stays bounded.
  if ((stats_.published & 0xFF) == 0) sweep_expired(entry);
}

void Broker::sweep_expired(TopicEntry& entry) {
  const SimTime now = sim_.now();
  auto& history = entry.history;
  auto kept = history.begin();
  for (auto it = history.begin(); it != history.end(); ++it) {
    if ((*it)->expired_at(now)) {
      id_to_topic_.erase((*it)->id.value);
      ++stats_.expired_swept;
    } else {
      if (kept != it) *kept = std::move(*it);
      ++kept;
    }
  }
  history.erase(kept, history.end());
}

}  // namespace waif::pubsub
