#include "pubsub/publisher.h"

#include <utility>

namespace waif::pubsub {

Publisher::Publisher(Broker& broker, std::string name)
    : broker_(broker), id_(broker.register_publisher(name)), name_(std::move(name)) {}

Publisher::~Publisher() {
  for (const auto& topic : advertised_) broker_.withdraw(id_, topic);
}

void Publisher::advertise(const std::string& topic) {
  if (advertised_.insert(topic).second) broker_.advertise(id_, topic);
}

bool Publisher::withdraw(const std::string& topic) {
  if (advertised_.erase(topic) == 0) return false;
  return broker_.withdraw(id_, topic);
}

NotificationPtr Publisher::publish(const std::string& topic, double rank,
                                   SimDuration lifetime, std::string payload) {
  advertise(topic);
  return broker_.publish(id_, topic, rank, lifetime, std::move(payload));
}

bool Publisher::update_rank(NotificationId id, double new_rank) {
  return broker_.update_rank(id_, id, new_rank);
}

}  // namespace waif::pubsub
