// Convenience publisher handle bound to one broker.
//
// Wraps register/advertise/publish/update_rank/withdraw so example code and
// workload drivers read like the paper's publisher interface (Section 2.1).
#pragma once

#include <string>
#include <unordered_set>

#include "common/ids.h"
#include "pubsub/broker.h"

namespace waif::pubsub {

class Publisher {
 public:
  /// Registers with the broker under `name`.
  Publisher(Broker& broker, std::string name);

  /// Withdraws every topic still advertised by this publisher.
  ~Publisher();

  Publisher(const Publisher&) = delete;
  Publisher& operator=(const Publisher&) = delete;

  /// Starts advertising `topic` (idempotent).
  void advertise(const std::string& topic);

  /// Stops advertising `topic`; returns false if it was not advertised.
  bool withdraw(const std::string& topic);

  /// Publishes on a topic, advertising it first if needed. `lifetime` of
  /// kNever attaches no expiration.
  NotificationPtr publish(const std::string& topic, double rank,
                          SimDuration lifetime = kNever,
                          std::string payload = {});

  /// Re-ranks a previously published notification (Section 3.4).
  bool update_rank(NotificationId id, double new_rank);

  PublisherId id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  Broker& broker_;
  PublisherId id_;
  std::string name_;
  std::unordered_set<std::string> advertised_;
};

}  // namespace waif::pubsub
