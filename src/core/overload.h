// Overload-protection knobs and the canonical shed order.
//
// The paper's premise is operating under volume limits; this header extends
// that to the proxy's own memory. Budgets bound the number of events parked
// across a topic's outgoing/prefetch/holding queues (the delay stage is
// deliberately excluded — a delayed event re-enters through the prefetch
// queue, where the budget catches it at release); watermarks gate publisher
// admission at the proxy. Every knob defaults to 0 = disabled, so an
// unconfigured proxy is byte-identical to one that never saw this header.
#pragma once

#include <cstddef>

#include "pubsub/notification.h"

namespace waif::core {

/// Budgets and watermarks; all zero by default (= no overload protection).
struct OverloadConfig {
  /// Max events across one topic's outgoing+prefetch+holding queues.
  /// Exceeding it sheds in canonical order (see shed_before). 0 = unbounded.
  std::size_t topic_queue_budget = 0;
  /// Max events summed over all topics of one proxy. Enforced after the
  /// per-topic budget; sheds the globally worst event. 0 = unbounded.
  std::size_t proxy_queue_budget = 0;
  /// Admission control: once the proxy-wide queue total reaches this
  /// high-watermark, new NOTIFICATIONs are rejected at the door (counted,
  /// never journaled) until the total drains to admission_low. 0 = open.
  std::size_t admission_high = 0;
  /// Low-watermark at which a closed admission gate reopens.
  std::size_t admission_low = 0;
};

/// The canonical shed order — semantically faithful to the paper's Rank and
/// Expiration treatment (Section 3): lower rank goes first; among equal
/// ranks the soonest-expiring event goes first (it was about to be purged
/// anyway; never-expiring events are last); ids break the remaining ties so
/// shedding is deterministic. `a` sheds before `b` when this returns true.
inline bool shed_before(const pubsub::Notification& a,
                        const pubsub::Notification& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  if (a.expires_at != b.expires_at) return a.expires_at < b.expires_at;
  return a.id.value < b.id.value;
}

}  // namespace waif::core
