// Context-driven re-subscription (Section 2.3).
//
// "Upon a context update from a GPS-enabled mobile device, the proxy detects
// a change in context and re-subscribes the user to the traffic updates topic
// with the new location as a parameter." A ContextRouter holds rules mapping
// a context key (e.g. "city") and a parameterized topic pattern (e.g.
// "traffic/{city}") to a TopicConfig; update_context() performs the standard
// unsubscribe()/subscribe() pair against the broker and re-targets the proxy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/forwarding_policy.h"
#include "core/proxy.h"
#include "pubsub/broker.h"

namespace waif::core {

struct ContextRouterStats {
  std::uint64_t context_updates = 0;
  std::uint64_t resubscriptions = 0;
};

class ContextRouter {
 public:
  ContextRouter(pubsub::Broker& broker, Proxy& proxy);

  /// Every change of context `key` re-subscribes the proxy to the topic
  /// obtained by substituting "{<key>}" in `pattern` with the new value.
  /// Throws std::invalid_argument when the pattern lacks the placeholder.
  void add_rule(const std::string& key, const std::string& pattern,
                TopicConfig config);

  /// Applies a context update (e.g. key="city", value="tromso"). Rules whose
  /// key matches are re-targeted; updates carrying an unchanged value are
  /// no-ops. Returns the list of topics now subscribed for this key.
  std::vector<std::string> update_context(const std::string& key,
                                          const std::string& value);

  /// The currently subscribed topic for a rule, if the rule's key has seen a
  /// context value yet. `pattern` identifies the rule.
  std::optional<std::string> current_topic(const std::string& pattern) const;

  const ContextRouterStats& stats() const { return stats_; }

 private:
  struct Rule {
    std::string key;
    std::string pattern;
    TopicConfig config;
    std::optional<std::string> active_topic;
    std::optional<SubscriptionId> subscription;
  };

  static std::string expand(const std::string& pattern, const std::string& key,
                            const std::string& value);

  pubsub::Broker& broker_;
  Proxy& proxy_;
  std::vector<Rule> rules_;
  ContextRouterStats stats_;
};

}  // namespace waif::core
