// Value-type snapshots of the proxy's per-topic state and of the reliable
// channel's delivery window — what the storage layer checkpoints and what
// recovery restores.
//
// Everything here is plain data (notification copies, ids, doubles): a
// snapshot can be serialized, diffed in tests, and applied to a freshly
// constructed TopicState/ReliableDeviceChannel. Collections are kept in a
// canonical order (queues by rank, id sets sorted) so equal states always
// produce byte-equal serializations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/moving_stats.h"
#include "common/time.h"
#include "pubsub/notification.h"

namespace waif::core {

/// An event sitting in the delay stage, with its release instant.
struct DelayedSnapshot {
  pubsub::Notification event;
  SimTime release_at = 0;
};

/// An armed expiration timer. Kept separately from queue membership because
/// the two diverge: a forwarded event keeps its timer, and an event pushed
/// straight to outgoing never had one.
struct ArmedExpiration {
  std::uint64_t id = 0;
  SimTime expires_at = 0;
};

/// Full durable state of one TopicState (stats excluded — counters are
/// observability, not behaviour; the day budget, which *is* behaviour, is
/// included).
struct TopicSnapshot {
  std::vector<pubsub::Notification> outgoing;  // rank order
  std::vector<pubsub::Notification> prefetch;  // rank order
  std::vector<pubsub::Notification> holding;   // rank order
  std::vector<DelayedSnapshot> delayed;        // sorted by id
  std::vector<pubsub::Notification> history;   // insertion (FIFO) order
  std::vector<std::uint64_t> forwarded;        // sorted
  std::vector<ArmedExpiration> expiration_armed;  // sorted by id
  std::vector<std::uint64_t> seen_read_ids;    // sorted
  std::vector<std::uint64_t> seen_sync_ids;    // sorted
  AverageSnapshot old_reads;
  IntervalSnapshot read_times;
  AverageSnapshot exp_times;
  IntervalSnapshot arrival_times;
  std::uint64_t queue_size_view = 0;
  double rate_credit = 0.0;
  std::int64_t current_day = 0;
  std::uint64_t forwarded_today = 0;
};

/// Durable state of the proxy side of a ReliableDeviceChannel: the sequence
/// counter (so a recovered proxy never reuses a seq the device has seen) and
/// the device-side dedup window, captured so the in-sim recovery hand-off
/// can rebuild a channel pair wholesale.
struct ChannelSnapshot {
  std::uint64_t next_seq = 1;
  std::vector<std::uint64_t> seen;  // device dedup window, insertion order
};

}  // namespace waif::core
