// Cooperation among multiple devices belonging to one user (the paper's
// first future-work item, Section 4): "Their interaction, perhaps with the
// aid of an ad-hoc network, has the potential for reducing both loss and
// waste by allowing one device to use the cache of another."
//
// A DeviceGroup ties together several last-hop sessions (each with its own
// proxy, link and device). A group read on one device first drains that
// device, then — when the ad-hoc network is available — tops up from the
// peers' caches: messages another device prefetched count as read instead of
// rotting as waste, and reads during one device's outage are served by a
// peer that was luckier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/channel.h"
#include "core/proxy.h"
#include "pubsub/notification.h"
#include "sim/simulator.h"

namespace waif::core {

struct DeviceGroupStats {
  std::uint64_t group_reads = 0;
  /// Messages served from the reading device's own cache.
  std::uint64_t local_reads = 0;
  /// Messages pulled from a peer's cache over the ad-hoc network.
  std::uint64_t peer_reads = 0;
  /// Ad-hoc transfers (one per peer-read message).
  std::uint64_t adhoc_transfers = 0;
  /// Peer-held duplicates of messages already seen by the user, dropped
  /// during a group read.
  std::uint64_t duplicates_discarded = 0;
  /// Peer top-ups skipped because the peer was marked degraded (its
  /// channel's circuit breaker tripped).
  std::uint64_t degraded_peer_skips = 0;
};

class DeviceGroup {
 public:
  /// `adhoc_available` models the ad-hoc network among the user's devices;
  /// it can be toggled over time (e.g. the laptop is only reachable at
  /// home). Devices cooperate only while it is true.
  explicit DeviceGroup(sim::Simulator& sim);

  DeviceGroup(const DeviceGroup&) = delete;
  DeviceGroup& operator=(const DeviceGroup&) = delete;

  /// Adds one member (a proxy bound to its device channel). Both must
  /// outlive the group. Returns the member index.
  std::size_t add_member(Proxy& proxy, SimDeviceChannel& channel);

  std::size_t size() const { return members_.size(); }

  void set_adhoc_available(bool available) { adhoc_available_ = available; }
  bool adhoc_available() const { return adhoc_available_; }

  /// Marks a member as degraded (its reliable channel's circuit breaker
  /// tripped into hold-only mode): group reads stop topping up from its
  /// cache and stop asking it to refill. Wire a breaker observer to this —
  /// degraded = (state != BreakerState::kClosed).
  void set_member_degraded(std::size_t member, bool degraded);
  bool member_degraded(std::size_t member) const;

  /// One user read on `topic`, performed at device `member`: behaves like
  /// LastHopSession::user_read on that member, then tops up to the
  /// subscription Max from peer caches while the ad-hoc network is up.
  /// Messages the user has already read in this group are deduplicated.
  std::vector<pubsub::NotificationPtr> user_read(std::size_t member,
                                                 const std::string& topic);

  const DeviceGroupStats& stats() const { return stats_; }

  /// The underlying per-member session (for tests and examples).
  LastHopSession& session(std::size_t member);

 private:
  struct Member {
    Proxy* proxy;
    SimDeviceChannel* channel;
    std::unique_ptr<LastHopSession> session;
    /// Hold-only peer: excluded from peer top-ups until it recovers.
    bool degraded = false;
  };

  sim::Simulator& sim_;
  std::vector<Member> members_;
  bool adhoc_available_ = true;
  /// Every id the user has read on any device, to drop duplicates held by
  /// several caches.
  std::unordered_set<std::uint64_t> read_ids_;
  DeviceGroupStats stats_;
};

}  // namespace waif::core
