// Forwarding-policy configuration for the last hop (Section 3 of the paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/time.h"
#include "pubsub/subscription.h"

namespace waif::core {

/// How a topic's notifications reach the device (Section 2.2).
enum class DeliveryMode : std::uint8_t {
  /// Forward as soon as the connection allows; the user is interrupted.
  kOnLine,
  /// Accumulate at the proxy/device for on-demand display; the last hop is
  /// optimized with the volume-limiting parameters.
  kOnDemand,
};

std::string to_string(DeliveryMode mode);

/// Which forwarding algorithm governs an on-demand topic.
enum class PolicyKind : std::uint8_t {
  /// Forward everything as soon as the network allows (zero loss, maximal
  /// waste under overflow) — the paper's quality-of-service baseline.
  kOnline,
  /// Forward nothing until the user asks (zero waste, lossy under outages).
  kOnDemand,
  /// Keep at most a fixed number of notifications buffered on the device
  /// (Section 3.2, buffer-based approach).
  kBufferPrefetch,
  /// Forward a fraction of arrivals matching the consumption/production
  /// ratio (Section 3.2, rate-based approach).
  kRatePrefetch,
  /// The unified algorithm of Figure 7: buffer-based with the limit tracking
  /// 2x the moving average of read sizes, plus the adaptive expiration
  /// threshold and the optional rank-change delay stage.
  kAdaptive,
};

std::string to_string(PolicyKind kind);

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kAdaptive;

  /// kBufferPrefetch: the fixed prefetch limit (Figure 3's x axis).
  std::size_t prefetch_limit = 16;

  /// kAdaptive: prefetch limit used until the first READ trains the moving
  /// average (the paper's proxy starts with an empty old_reads history).
  std::size_t initial_prefetch_limit = 0;

  /// kRatePrefetch: fixed consumption/production ratio; 0 = derive it
  /// dynamically from the observed arrival and read rates.
  double rate_ratio = 0.0;

  /// Static prefetch expiration threshold (Figure 6's x axis): on-demand
  /// events that expire sooner than this are held, not prefetched.
  /// 0 disables the holding stage. kAdaptive overrides this with the moving
  /// average interval between reads once reads are observed.
  SimDuration expiration_threshold = 0;

  /// kAdaptive: only apply the adaptive expiration threshold when the
  /// average event lifetime exceeds `auto_threshold_safety` times the average
  /// interval between reads — the Section 3.3 guidance that the automatic
  /// threshold is safe only when expirations are much longer than reads.
  /// 0 = always apply (faithful to the Figure 7 pseudo-code).
  double auto_threshold_safety = 0.0;

  /// Rank-change delay stage (Section 3.4): on-demand events only become
  /// prefetchable after this long, giving rank drops time to arrive.
  /// 0 disables the stage.
  SimDuration delay = 0;

  /// Window (in samples) of the moving averages over read sizes, read
  /// intervals and event lifetimes.
  std::size_t moving_average_window = 8;

  /// Factor applied to the moving average of read sizes to obtain the
  /// adaptive prefetch limit. The paper: "It is safe to set the prefetch
  /// limit to twice that amount."
  double prefetch_limit_factor = 2.0;

  /// Convenience factories for the common configurations.
  static PolicyConfig online();
  static PolicyConfig on_demand();
  static PolicyConfig buffer(std::size_t limit,
                             SimDuration expiration_threshold = 0);
  static PolicyConfig rate(double ratio = 0.0);
  static PolicyConfig adaptive();
};

/// A daily window (times-of-day) during which an on-line topic goes quiet.
struct QuietWindow {
  SimDuration start = 0;  // time of day, [0, kDay)
  SimDuration end = 0;    // time of day, exclusive; must be > start
};

/// The Section 2.2 hybrid-model refinements: "one can envision a hybrid model
/// in which an on-line topic goes quiet (e.g. during a meeting) or an
/// on-demand topic interrupts (e.g. a tornado warning on a weather topic).
/// On-line topics could be configured to only deliver events at specific
/// points during the day with a certain Max number of messages per day."
struct DeliveryRefinements {
  /// On-demand events with rank at or above this are forwarded immediately,
  /// interrupting the user. Default: disabled (nothing interrupts).
  double interrupt_threshold = std::numeric_limits<double>::infinity();

  /// Daily windows during which an on-line topic holds its deliveries
  /// (meetings, nights). Drained when the window closes.
  std::vector<QuietWindow> quiet_windows;

  /// When non-empty, an on-line topic delivers only at these times of day
  /// (digest mode); events accumulate in between.
  std::vector<SimDuration> digest_times;

  /// Maximum on-line deliveries per day; 0 = unlimited. Excess events wait
  /// for the next day.
  std::size_t max_per_day = 0;
};

/// Everything the proxy needs to manage one topic for one device.
struct TopicConfig {
  DeliveryMode mode = DeliveryMode::kOnDemand;
  pubsub::SubscriptionOptions options;
  PolicyConfig policy;
  DeliveryRefinements refinements;
};

}  // namespace waif::core
