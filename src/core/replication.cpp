#include "core/replication.h"

#include <stdexcept>
#include <utility>

#include "common/check.h"

namespace waif::core {

using pubsub::NotificationPtr;

ReplicatedProxy::ReplicatedProxy(sim::Simulator& sim, net::Link& link,
                                 device::Device& device,
                                 ReplicationConfig config)
    : sim_(sim),
      link_(link),
      device_(device),
      real_channel_(link, device),
      config_(config) {
  for (std::size_t i = 0; i < 2; ++i) {
    replicas_[i].channel = std::make_unique<ReplicaChannel>(*this, i);
    replicas_[i].proxy = std::make_unique<Proxy>(
        sim_, *replicas_[i].channel,
        i == 0 ? "replica-primary" : "replica-standby");
  }
  link_.on_state_change([this](net::LinkState state) {
    if (state != net::LinkState::kUp) return;
    // Wake the active replica, then flush device-side syncs to it.
    active_proxy().handle_network(state);
    flush_pending_syncs();
  });
}

void ReplicatedProxy::add_topic(const std::string& topic, TopicConfig config) {
  for (Replica& replica : replicas_) replica.proxy->add_topic(topic, config);
  device_.set_topic_threshold(topic, config.options.threshold);
}

void ReplicatedProxy::on_notification(const NotificationPtr& notification) {
  // Both replicas sit in the fixed infrastructure and receive the feed
  // directly; a crashed replica is gone.
  for (Replica& replica : replicas_) {
    if (replica.alive) replica.proxy->on_notification(notification);
  }
}

std::vector<NotificationPtr> ReplicatedProxy::user_read(
    const std::string& topic) {
  Proxy& proxy = active_proxy();
  TopicState* state = proxy.topic(topic);
  if (state == nullptr) {
    throw std::invalid_argument("user_read: unmanaged topic: " + topic);
  }
  const auto& options = state->config().options;

  const bool online = real_channel_.link_up() && !device_.battery_dead();
  if (online) {
    send_read(topic, *state);
  } else if (!device_.battery_dead()) {
    pending_sync_[topic].push_back(ReadRecord{sim_.now(), options.max});
  }
  return device_.read(topic, options.max, options.threshold,
                      /*charge_uplink=*/online);
}

void ReplicatedProxy::send_read(const std::string& topic, TopicState& state) {
  const auto& options = state.config().options;
  ReadRequest request;
  request.n = options.max;
  request.queue_size = device_.queue_size(topic);
  request.client_events = device_.top_ids(topic, options.max, options.threshold);
  constexpr std::size_t kRequestHeaderBytes = 32;
  constexpr std::size_t kBytesPerId = 8;
  link_.record_uplink(kRequestHeaderBytes +
                      kBytesPerId * request.client_events.size());
  active_proxy().handle_read(topic, request);
  replicate_read(active_, topic, request.queue_size,
                 ReadRecord{sim_.now(), request.n});
}

void ReplicatedProxy::flush_pending_syncs() {
  const auto pending = std::move(pending_sync_);
  pending_sync_.clear();
  for (const auto& [topic, offline_reads] : pending) {
    Proxy& proxy = active_proxy();
    if (proxy.topic(topic) == nullptr) continue;
    constexpr std::size_t kSyncBytes = 16;
    constexpr std::size_t kBytesPerRecord = 12;
    link_.record_uplink(kSyncBytes + kBytesPerRecord * offline_reads.size());
    const std::size_t queue_size = device_.queue_size(topic);
    proxy.handle_sync(topic, queue_size, offline_reads);
    for (const ReadRecord& record : offline_reads) {
      replicate_read(active_, topic, queue_size, record);
    }
  }
}

void ReplicatedProxy::replicate_forward(std::size_t from,
                                        const NotificationPtr& notification) {
  const std::size_t peer_index = 1 - from;
  if (!replicas_[peer_index].alive) return;
  ++stats_.replicated_forwards;
  sim_.schedule_after(config_.replication_latency, [this, peer_index,
                                                    notification] {
    Replica& peer = replicas_[peer_index];
    if (!peer.alive) return;
    if (active_ == peer_index) {
      // The record chased a replica that has already been promoted.
      ++stats_.late_records;
    }
    if (TopicState* state = peer.proxy->topic(notification->topic)) {
      state->apply_replicated_forward(notification);
    }
  });
}

void ReplicatedProxy::replicate_read(std::size_t from, const std::string& topic,
                                     std::size_t queue_size,
                                     const ReadRecord& record) {
  const std::size_t peer_index = 1 - from;
  if (!replicas_[peer_index].alive) return;
  ++stats_.replicated_reads;
  sim_.schedule_after(
      config_.replication_latency,
      [this, peer_index, topic, queue_size, record] {
        Replica& peer = replicas_[peer_index];
        if (!peer.alive) return;
        if (active_ == peer_index) ++stats_.late_records;
        if (peer.proxy->topic(topic) != nullptr) {
          peer.proxy->handle_sync(topic, queue_size, {record});
        }
      });
}

void ReplicatedProxy::fail_active() {
  Replica& failed = replicas_[active_];
  WAIF_CHECK(failed.alive);
  const std::size_t survivor = 1 - active_;
  if (!replicas_[survivor].alive) {
    throw std::logic_error("fail_active: no replica left to promote");
  }
  failed.alive = false;
  active_ = survivor;
  ++stats_.failovers;
  // The promoted replica starts forwarding immediately if the link allows;
  // anything the old active forwarded but did not replicate in time will be
  // sent again (duplicate receives on the device).
  replicas_[survivor].proxy->handle_network(
      link_.is_up() ? net::LinkState::kUp : net::LinkState::kDown);
}

std::size_t ReplicatedProxy::live_replicas() const {
  std::size_t live = 0;
  for (const Replica& replica : replicas_) live += replica.alive ? 1 : 0;
  return live;
}

}  // namespace waif::core
