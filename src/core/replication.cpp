#include "core/replication.h"

#include <stdexcept>
#include <utility>

#include "common/check.h"

namespace waif::core {

using pubsub::NotificationPtr;

ReplicatedProxy::ReplicatedProxy(sim::Simulator& sim, net::Link& link,
                                 device::Device& device,
                                 ReplicationConfig config)
    : sim_(sim),
      link_(link),
      device_(device),
      owned_channel_(std::make_unique<SimDeviceChannel>(link, device)),
      real_channel_(*owned_channel_),
      config_(config) {
  init();
}

ReplicatedProxy::ReplicatedProxy(sim::Simulator& sim, net::Link& link,
                                 device::Device& device, DeviceChannel& channel,
                                 ReplicationConfig config)
    : sim_(sim),
      link_(link),
      device_(device),
      real_channel_(channel),
      config_(config) {
  init();
}

ReplicatedProxy::~ReplicatedProxy() {
  heartbeat_timer_.cancel();
  detector_timer_.cancel();
}

void ReplicatedProxy::init() {
  for (std::size_t i = 0; i < 2; ++i) {
    replicas_[i].channel = std::make_unique<ReplicaChannel>(*this, i);
    replicas_[i].proxy = std::make_unique<Proxy>(
        sim_, *replicas_[i].channel,
        i == 0 ? "replica-primary" : "replica-standby");
  }
  link_.on_state_change([this](net::LinkState state) {
    if (state != net::LinkState::kUp) return;
    // Wake the active replica, then flush device-side syncs to it.
    active_proxy().handle_network(state);
    flush_pending_syncs();
  });
  start_failure_detector();
}

void ReplicatedProxy::add_topic(const std::string& topic, TopicConfig config) {
  for (Replica& replica : replicas_) replica.proxy->add_topic(topic, config);
  device_.set_topic_threshold(topic, config.options.threshold);
  topic_configs_.emplace_back(topic, config);
}

void ReplicatedProxy::on_notification(const NotificationPtr& notification) {
  // Both replicas sit in the fixed infrastructure and receive the feed
  // directly; a crashed replica is gone.
  for (Replica& replica : replicas_) {
    if (replica.alive) replica.proxy->on_notification(notification);
  }
}

std::vector<NotificationPtr> ReplicatedProxy::user_read(
    const std::string& topic) {
  Proxy& proxy = active_proxy();
  TopicState* state = proxy.topic(topic);
  if (state == nullptr) {
    throw std::invalid_argument("user_read: unmanaged topic: " + topic);
  }
  const auto& options = state->config().options;

  // A crashed-but-not-yet-replaced active replica leaves the hop headless:
  // the read is served from the device's local queue only, like an outage.
  const bool online = replicas_[active_].alive && real_channel_.link_up() &&
                      !device_.battery_dead();
  if (online) {
    send_read(topic, *state);
  } else if (!device_.battery_dead()) {
    pending_sync_[topic].push_back(ReadRecord{sim_.now(), options.max});
  }
  return device_.read(topic, options.max, options.threshold,
                      /*charge_uplink=*/online);
}

void ReplicatedProxy::send_read(const std::string& topic, TopicState& state) {
  const auto& options = state.config().options;
  ReadRequest request;
  request.n = options.max;
  request.queue_size = device_.queue_size(topic);
  request.client_events = device_.top_ids(topic, options.max, options.threshold);
  constexpr std::size_t kRequestHeaderBytes = 32;
  constexpr std::size_t kBytesPerId = 8;
  link_.record_uplink(kRequestHeaderBytes +
                      kBytesPerId * request.client_events.size());
  active_proxy().handle_read(topic, request);
  replicate_read(active_, topic, request.queue_size,
                 ReadRecord{sim_.now(), request.n});
}

void ReplicatedProxy::flush_pending_syncs() {
  const auto pending = std::move(pending_sync_);
  pending_sync_.clear();
  for (const auto& [topic, offline_reads] : pending) {
    Proxy& proxy = active_proxy();
    if (proxy.topic(topic) == nullptr) continue;
    constexpr std::size_t kSyncBytes = 16;
    constexpr std::size_t kBytesPerRecord = 12;
    link_.record_uplink(kSyncBytes + kBytesPerRecord * offline_reads.size());
    const std::size_t queue_size = device_.queue_size(topic);
    proxy.handle_sync(topic, queue_size, offline_reads);
    for (const ReadRecord& record : offline_reads) {
      replicate_read(active_, topic, queue_size, record);
    }
  }
}

void ReplicatedProxy::replicate_forward(std::size_t from,
                                        const NotificationPtr& notification) {
  const std::size_t peer_index = 1 - from;
  if (!replicas_[peer_index].alive) return;
  ++stats_.replicated_forwards;
  sim_.schedule_after(config_.replication_latency, [this, peer_index,
                                                    notification] {
    Replica& peer = replicas_[peer_index];
    if (!peer.alive) return;
    if (active_ == peer_index) {
      // The record chased a replica that has already been promoted.
      ++stats_.late_records;
    }
    if (TopicState* state = peer.proxy->topic(notification->topic)) {
      state->apply_replicated_forward(notification);
    }
  });
}

void ReplicatedProxy::replicate_read(std::size_t from, const std::string& topic,
                                     std::size_t queue_size,
                                     const ReadRecord& record) {
  const std::size_t peer_index = 1 - from;
  if (!replicas_[peer_index].alive) return;
  ++stats_.replicated_reads;
  sim_.schedule_after(
      config_.replication_latency,
      [this, peer_index, topic, queue_size, record] {
        Replica& peer = replicas_[peer_index];
        if (!peer.alive) return;
        if (active_ == peer_index) ++stats_.late_records;
        if (peer.proxy->topic(topic) != nullptr) {
          peer.proxy->handle_sync(topic, queue_size, {record});
        }
      });
}

void ReplicatedProxy::fail_active() {
  if (!replicas_[1 - active_].alive) {
    throw std::logic_error("fail_active: no replica left to promote");
  }
  crash_active();
  promote_standby();
}

void ReplicatedProxy::crash_active() {
  Replica& failed = replicas_[active_];
  WAIF_CHECK(failed.alive);
  failed.alive = false;
  ++stats_.crashes;
}

void ReplicatedProxy::restart_replica(std::size_t index) {
  WAIF_CHECK(index < 2);
  Replica& replica = replicas_[index];
  WAIF_CHECK(!replica.alive);
  // A fresh process: empty queues, no memory of the device. It re-learns
  // what the device holds through replication records and future reads.
  replica.channel = std::make_unique<ReplicaChannel>(*this, index);
  replica.proxy = std::make_unique<Proxy>(
      sim_, *replica.channel,
      index == 0 ? "replica-primary" : "replica-standby");
  for (const auto& [topic, config] : topic_configs_) {
    replica.proxy->add_topic(topic, config);
  }
  // With a durability layer attached the replica catches up from
  // snapshot+WAL instead of rejoining cold.
  if (recovery_ != nullptr) recovery_->warm_restart(*replica.proxy);
  replica.alive = true;
  ++stats_.restarts;
  if (index == active_) {
    // The crashed active came back before the detector promoted anyone:
    // it resumes the active role from a cold start.
    last_active_heartbeat_ = sim_.now();
    replica.proxy->handle_network(link_.is_up() ? net::LinkState::kUp
                                                : net::LinkState::kDown);
  }
}

void ReplicatedProxy::promote_standby() {
  const std::size_t survivor = 1 - active_;
  WAIF_CHECK(replicas_[survivor].alive);
  active_ = survivor;
  ++stats_.failovers;
  last_active_heartbeat_ = sim_.now();
  // Let the durability layer follow the active role (journal + snapshot the
  // promoted replica) before it starts forwarding.
  if (recovery_ != nullptr) recovery_->on_promoted(*replicas_[survivor].proxy);
  // The promoted replica starts forwarding immediately if the link allows;
  // anything the old active forwarded but did not replicate in time will be
  // sent again (duplicate receives on the device).
  replicas_[survivor].proxy->handle_network(
      link_.is_up() ? net::LinkState::kUp : net::LinkState::kDown);
}

void ReplicatedProxy::start_failure_detector() {
  if (config_.heartbeat_interval <= 0) return;
  WAIF_CHECK(config_.suspicion_timeout >
             config_.heartbeat_interval + config_.replication_latency);
  last_active_heartbeat_ = sim_.now();
  schedule_heartbeat();
  schedule_detector();
}

void ReplicatedProxy::schedule_heartbeat() {
  heartbeat_timer_ =
      sim_.schedule_after(config_.heartbeat_interval, [this] {
        if (replicas_[active_].alive) {
          ++stats_.heartbeats;
          // The heartbeat rides the same asynchronous channel as replication
          // records; the detector sees it one latency later.
          sim_.schedule_after(config_.replication_latency, [this] {
            last_active_heartbeat_ = sim_.now();
          });
        }
        schedule_heartbeat();
      });
}

void ReplicatedProxy::schedule_detector() {
  detector_timer_ = sim_.schedule_after(config_.heartbeat_interval, [this] {
    check_active_liveness();
    schedule_detector();
  });
}

void ReplicatedProxy::check_active_liveness() {
  if (!replicas_[1 - active_].alive) return;  // nobody to promote
  if (sim_.now() - last_active_heartbeat_ < config_.suspicion_timeout) return;
  // Sustained silence: the active replica crashed (or is half-open and its
  // heartbeats are not getting through). Either way the standby takes over.
  ++stats_.auto_promotions;
  promote_standby();
}

std::size_t ReplicatedProxy::live_replicas() const {
  std::size_t live = 0;
  for (const Replica& replica : replicas_) live += replica.alive ? 1 : 0;
  return live;
}

}  // namespace waif::core
