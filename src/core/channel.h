// The proxy's view of the last hop toward one device.
#pragma once

#include "device/device.h"
#include "net/link.h"
#include "pubsub/notification.h"

namespace waif::core {

/// Abstracts "send this notification over the last hop". The proxy only ever
/// forwards when the link is up; implementations report whether the device
/// accepted the transfer (a dead battery rejects it).
class DeviceChannel {
 public:
  virtual ~DeviceChannel() = default;

  /// True when the last hop can currently carry traffic.
  virtual bool link_up() const = 0;

  /// True when the channel is willing to take on new transfers. A channel
  /// whose circuit breaker tripped (see ReliableDeviceChannel) reports false
  /// here; the proxy then holds events instead of forwarding — a degraded
  /// hold-only mode — until the breaker probes half-open and recloses.
  virtual bool accepting() const { return true; }

  /// Transfers one notification proxy -> device. Pre: link_up().
  virtual bool deliver(const pubsub::NotificationPtr& notification) = 0;
};

/// Production binding used by simulations and examples: a net::Link for
/// connectivity/accounting plus a device::Device as the receiving end.
class SimDeviceChannel final : public DeviceChannel {
 public:
  SimDeviceChannel(net::Link& link, device::Device& device);

  bool link_up() const override;
  bool deliver(const pubsub::NotificationPtr& notification) override;

  net::Link& link() { return link_; }
  device::Device& device() { return device_; }

 private:
  net::Link& link_;
  device::Device& device_;
};

}  // namespace waif::core
