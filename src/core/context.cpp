#include "core/context.h"

#include <stdexcept>

namespace waif::core {

ContextRouter::ContextRouter(pubsub::Broker& broker, Proxy& proxy)
    : broker_(broker), proxy_(proxy) {}

void ContextRouter::add_rule(const std::string& key, const std::string& pattern,
                             TopicConfig config) {
  const std::string placeholder = "{" + key + "}";
  if (pattern.find(placeholder) == std::string::npos) {
    throw std::invalid_argument("add_rule: pattern '" + pattern +
                                "' lacks placeholder " + placeholder);
  }
  rules_.push_back(Rule{key, pattern, config, std::nullopt, std::nullopt});
}

std::vector<std::string> ContextRouter::update_context(const std::string& key,
                                                       const std::string& value) {
  ++stats_.context_updates;
  std::vector<std::string> active;
  for (Rule& rule : rules_) {
    if (rule.key != key) continue;
    const std::string topic = expand(rule.pattern, key, value);
    if (rule.active_topic == topic) {
      active.push_back(topic);
      continue;  // context unchanged for this rule
    }
    // The simple context-update handler of Section 2.3: standard
    // unsubscribe() followed by subscribe() with the new parameter.
    if (rule.subscription.has_value()) {
      broker_.unsubscribe(*rule.subscription);
      proxy_.remove_topic(*rule.active_topic);
    }
    proxy_.add_topic(topic, rule.config);
    rule.subscription = broker_.subscribe(topic, proxy_, rule.config.options);
    rule.active_topic = topic;
    ++stats_.resubscriptions;
    active.push_back(topic);
  }
  return active;
}

std::optional<std::string> ContextRouter::current_topic(
    const std::string& pattern) const {
  for (const Rule& rule : rules_) {
    if (rule.pattern == pattern) return rule.active_topic;
  }
  return std::nullopt;
}

std::string ContextRouter::expand(const std::string& pattern,
                                  const std::string& key,
                                  const std::string& value) {
  const std::string placeholder = "{" + key + "}";
  std::string result = pattern;
  for (std::size_t pos = result.find(placeholder); pos != std::string::npos;
       pos = result.find(placeholder, pos + value.size())) {
    result.replace(pos, placeholder.size(), value);
  }
  return result;
}

}  // namespace waif::core
