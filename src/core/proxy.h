// The proxy: the fixed-infrastructure agent that collects notifications on
// behalf of one mobile device and optimizes the last hop (Sections 2-3).
//
// A Proxy is a pubsub::Subscriber, so it plugs directly into a Broker or an
// OverlayNode. Per topic it keeps a TopicState running the Figure-7
// algorithm; Proxy itself only dispatches NOTIFICATION/READ/NETWORK events
// and aggregates statistics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/channel.h"
#include "core/forwarding_policy.h"
#include "core/overload.h"
#include "device/device.h"
#include "core/read_protocol.h"
#include "core/topic_state.h"
#include "net/link.h"
#include "pubsub/notification.h"
#include "pubsub/subscriber.h"
#include "sim/simulator.h"

namespace waif::core {

struct ProxyStats {
  std::uint64_t notifications = 0;
  std::uint64_t unknown_topic_drops = 0;
  std::uint64_t reads = 0;
  std::uint64_t network_changes = 0;
  std::uint64_t topics_withdrawn = 0;
  std::uint64_t admission_rejects = 0;  // turned away at the high-watermark
  std::uint64_t rejected_reads = 0;     // try_read protocol errors
  std::uint64_t rejected_syncs = 0;     // try_sync protocol errors
};

class Proxy final : public pubsub::Subscriber {
 public:
  Proxy(sim::Simulator& sim, DeviceChannel& channel, std::string name = "proxy");

  const std::string& name() const { return name_; }

  /// Starts managing `topic` for the device with the given mode, volume
  /// limits and forwarding policy. Throws std::invalid_argument when the
  /// topic is already managed.
  TopicState& add_topic(const std::string& topic, TopicConfig config);

  /// Stops managing `topic`, dropping all queued state. Returns false when
  /// the topic was not managed.
  bool remove_topic(const std::string& topic);

  /// The managed topic's state, or nullptr.
  TopicState* topic(const std::string& topic);
  const TopicState* topic(const std::string& topic) const;
  std::size_t topic_count() const { return topics_.size(); }
  /// Names of every managed topic, sorted — the canonical iteration order
  /// for snapshots and recovery.
  std::vector<std::string> topic_names() const;

  /// Attaches `journal` to every managed topic, present and future (nullptr
  /// detaches). The journal pointer must outlive the proxy or be detached
  /// first.
  void set_journal(ProxyJournal* journal);

  /// Arms overload protection for every managed topic, present and future:
  /// the per-topic budget, the proxy-wide budget (enforced through each
  /// topic's overflow hook) and the admission watermarks. The default
  /// all-zero config disarms everything — behaviour is then byte-identical
  /// to a proxy that never heard of overload.
  void set_overload(const OverloadConfig& config);
  const OverloadConfig& overload() const { return overload_; }

  /// Events queued across all topics (outgoing+prefetch+holding sums — what
  /// the proxy-wide budget and the admission watermarks gate on).
  std::size_t total_queued() const;

  /// Admission gate with hysteresis: once the queue total reaches
  /// admission_high, new notifications are rejected until the total drains
  /// to admission_low. Not persisted — a recovered proxy re-evaluates the
  /// gate from its (restored) queue sizes on the first arrival.
  bool accepting();

  /// Wires this proxy's NETWORK handler to the link's state changes.
  /// Call once at setup.
  void attach_to_link(net::Link& link);

  // --- substrate side -------------------------------------------------------

  void on_notification(const pubsub::NotificationPtr& notification) override;
  void on_topic_withdrawn(const std::string& topic) override;

  // --- device side ------------------------------------------------------

  /// READ arriving from the device for one topic; returns the forwarded
  /// difference. Throws std::invalid_argument for an unmanaged topic.
  std::vector<pubsub::NotificationPtr> handle_read(const std::string& topic,
                                                   const ReadRequest& request);

  /// Validated READ entry for untrusted device input: a malformed request
  /// or an unmanaged topic yields a protocol error instead of an abort or
  /// exception. On kOk fills `difference` (when non-null) with the forwarded
  /// events.
  ReadStatus try_read(const std::string& topic, const ReadRequest& request,
                      std::vector<pubsub::NotificationPtr>* difference = nullptr);

  /// Validated sync entry, same contract as try_read.
  ReadStatus try_sync(const std::string& topic, std::size_t queue_size,
                      const std::vector<ReadRecord>& offline_reads = {},
                      std::uint64_t sync_id = 0);

  /// Queue-state sync from the device (sent at reconnection after offline
  /// reads). `sync_id` (0 = unstamped) makes retransmitted syncs idempotent.
  /// Throws std::invalid_argument for an unmanaged topic.
  void handle_sync(const std::string& topic, std::size_t queue_size,
                   const std::vector<ReadRecord>& offline_reads = {},
                   std::uint64_t sync_id = 0);

  /// NETWORK(status) for every managed topic.
  void handle_network(net::LinkState status);

  const ProxyStats& stats() const { return stats_; }
  sim::Simulator& simulator() { return sim_; }

 private:
  /// Sheds the globally worst queued event (across topics, in sorted-name
  /// order for determinism) until the proxy-wide budget holds. Hung on every
  /// topic's overflow hook; shedding itself never grows a queue, so this
  /// cannot re-enter.
  void enforce_proxy_budget();
  /// Applies the current overload config to one topic.
  void arm_topic_overload(TopicState& state);

  sim::Simulator& sim_;
  DeviceChannel& channel_;
  std::string name_;
  // unique_ptr: TopicState is immovable (timers capture `this`).
  std::unordered_map<std::string, std::unique_ptr<TopicState>> topics_;
  ProxyJournal* journal_ = nullptr;
  OverloadConfig overload_;
  /// Admission-gate hysteresis state (deliberately not snapshotted).
  bool admission_closed_ = false;
  ProxyStats stats_;
};

/// Ties a proxy and its device together to execute complete user reads: the
/// uplink READ request (when the link allows), the proxy's difference
/// forwarding, then the local device read. This is the piece of the last hop
/// that lives on the device side in a deployment.
///
/// A read attempted during an outage is served from the device's local queue
/// and the READ request is *deferred*: it is transmitted as soon as the link
/// recovers, carrying the device's then-current queue contents. This is what
/// corrects the proxy's drifting queue-size view after offline reads and
/// lets prefetching refill the buffer (without it, the buffer would starve
/// after two offline reads and prefetching would lose most of its value).
class LastHopSession {
 public:
  /// Registers a link-state listener; construct after Proxy::attach_to_link
  /// so the proxy forwards before the deferred READs are replayed. The
  /// session only needs the link (uplink accounting, outage state) and the
  /// device — it works identically over a plain SimDeviceChannel or a
  /// ReliableDeviceChannel.
  LastHopSession(Proxy& proxy, net::Link& link, device::Device& device);

  /// Convenience overload for the common plain-channel wiring.
  LastHopSession(Proxy& proxy, SimDeviceChannel& channel);

  /// One user read on `topic`: returns the notifications the user saw.
  /// While the link is down the device serves the read from its local queue
  /// only — exactly the situation prefetching exists for.
  std::vector<pubsub::NotificationPtr> user_read(const std::string& topic);

  /// Total messages the user has read through this session.
  std::uint64_t total_read() const { return total_read_; }

  /// Informs the proxy that the device's queue for `topic` changed outside a
  /// read (e.g. a peer device pulled from this cache over the ad-hoc
  /// network): syncs immediately when the link is up, else defers the sync
  /// to the next reconnection.
  void request_sync(const std::string& topic);

  /// READs waiting for the link to recover.
  std::size_t pending_syncs() const { return pending_sync_.size(); }

 private:
  /// Sends a READ for `topic` reflecting the device's current contents.
  void send_read(const std::string& topic);

  Proxy& proxy_;
  net::Link& link_;
  device::Device& device_;
  std::uint64_t total_read_ = 0;
  /// Stamps READs and syncs so the proxy can absorb retransmissions.
  std::uint64_t next_request_id_ = 1;
  /// Per topic: offline reads awaiting a deferred sync at reconnection.
  std::map<std::string, std::vector<ReadRecord>> pending_sync_;
};

}  // namespace waif::core
