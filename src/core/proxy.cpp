#include "core/proxy.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace waif::core {

using pubsub::NotificationPtr;

Proxy::Proxy(sim::Simulator& sim, DeviceChannel& channel, std::string name)
    : sim_(sim), channel_(channel), name_(std::move(name)) {}

TopicState& Proxy::add_topic(const std::string& topic, TopicConfig config) {
  auto [it, inserted] = topics_.try_emplace(
      topic, std::make_unique<TopicState>(sim_, channel_, topic, config));
  if (!inserted) {
    throw std::invalid_argument("add_topic: topic already managed: " + topic);
  }
  it->second->set_journal(journal_);
  arm_topic_overload(*it->second);
  return *it->second;
}

bool Proxy::remove_topic(const std::string& topic) {
  return topics_.erase(topic) > 0;
}

TopicState* Proxy::topic(const std::string& topic) {
  auto it = topics_.find(topic);
  return it == topics_.end() ? nullptr : it->second.get();
}

const TopicState* Proxy::topic(const std::string& topic) const {
  auto it = topics_.find(topic);
  return it == topics_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Proxy::topic_names() const {
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [topic, state] : topics_) names.push_back(topic);
  std::sort(names.begin(), names.end());
  return names;
}

void Proxy::set_journal(ProxyJournal* journal) {
  journal_ = journal;
  for (auto& [topic, state] : topics_) state->set_journal(journal);
}

void Proxy::attach_to_link(net::Link& link) {
  link.on_state_change([this](net::LinkState state) { handle_network(state); });
}

// ------------------------------------------------------- overload protection

void Proxy::arm_topic_overload(TopicState& state) {
  state.set_queue_budget(overload_.topic_queue_budget);
  if (overload_.proxy_queue_budget > 0) {
    state.set_overflow_hook([this] { enforce_proxy_budget(); });
  } else {
    state.set_overflow_hook(nullptr);
  }
}

void Proxy::set_overload(const OverloadConfig& config) {
  WAIF_CHECK(config.admission_low <= config.admission_high ||
             config.admission_high == 0);
  overload_ = config;
  admission_closed_ = false;
  for (auto& [topic, state] : topics_) arm_topic_overload(*state);
}

std::size_t Proxy::total_queued() const {
  std::size_t total = 0;
  for (const auto& [topic, state] : topics_) total += state->queued_total();
  return total;
}

bool Proxy::accepting() {
  if (overload_.admission_high == 0) return true;
  const std::size_t total = total_queued();
  if (admission_closed_) {
    if (total > overload_.admission_low) return false;
    admission_closed_ = false;  // drained to the low-watermark: reopen
    return true;
  }
  if (total >= overload_.admission_high) {
    admission_closed_ = true;
    return false;
  }
  return true;
}

void Proxy::enforce_proxy_budget() {
  if (overload_.proxy_queue_budget == 0) return;
  while (total_queued() > overload_.proxy_queue_budget) {
    // The globally worst event is, by definition, also the worst within its
    // own topic, so shedding through that topic keeps the canonical order.
    // Topics are walked in sorted-name order for determinism.
    TopicState* worst_topic = nullptr;
    pubsub::NotificationPtr worst;
    for (const std::string& name : topic_names()) {
      TopicState* state = topics_.at(name).get();
      const NotificationPtr candidate = state->shed_candidate();
      if (candidate == nullptr) continue;
      if (worst == nullptr || shed_before(*candidate, *worst)) {
        worst = candidate;
        worst_topic = state;
      }
    }
    if (worst_topic == nullptr) return;  // nothing left to shed
    worst_topic->shed_one();
  }
}

void Proxy::on_notification(const NotificationPtr& notification) {
  ++stats_.notifications;
  if (!accepting()) {
    // Admission control (backpressure toward the substrate): past the
    // high-watermark arrivals are turned away at the door, before any queue
    // or journal sees them — a rejected event needs no shed record for
    // recovery to stay exact, because it never existed here.
    ++stats_.admission_rejects;
    return;
  }
  auto it = topics_.find(notification->topic);
  if (it == topics_.end()) {
    // Subscribed at the broker but not configured here (or recently removed).
    ++stats_.unknown_topic_drops;
    log_message(LogLevel::kDebug, sim_.now(), name_,
                "dropping notification on unmanaged topic " +
                    notification->topic);
    return;
  }
  it->second->handle_notification(notification);
}

void Proxy::on_topic_withdrawn(const std::string& topic) {
  ++stats_.topics_withdrawn;
  log_message(LogLevel::kInfo, sim_.now(), name_,
              "topic withdrawn upstream: " + topic);
}

std::vector<NotificationPtr> Proxy::handle_read(const std::string& topic,
                                                const ReadRequest& request) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    throw std::invalid_argument("handle_read: unmanaged topic: " + topic);
  }
  ++stats_.reads;
  return it->second->handle_read(request);
}

void Proxy::handle_sync(const std::string& topic, std::size_t queue_size,
                        const std::vector<ReadRecord>& offline_reads,
                        std::uint64_t sync_id) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    throw std::invalid_argument("handle_sync: unmanaged topic: " + topic);
  }
  it->second->handle_sync(queue_size, offline_reads, sync_id);
}

ReadStatus Proxy::try_read(const std::string& topic, const ReadRequest& request,
                           std::vector<NotificationPtr>* difference) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    ++stats_.rejected_reads;
    return ReadStatus::kUnknownTopic;
  }
  const ReadStatus status = it->second->handle_read_checked(request, difference);
  if (status == ReadStatus::kOk) {
    ++stats_.reads;
  } else {
    ++stats_.rejected_reads;
  }
  return status;
}

ReadStatus Proxy::try_sync(const std::string& topic, std::size_t queue_size,
                           const std::vector<ReadRecord>& offline_reads,
                           std::uint64_t sync_id) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    ++stats_.rejected_syncs;
    return ReadStatus::kUnknownTopic;
  }
  const ReadStatus status =
      it->second->handle_sync_checked(queue_size, offline_reads, sync_id);
  if (status != ReadStatus::kOk) ++stats_.rejected_syncs;
  return status;
}

void Proxy::handle_network(net::LinkState status) {
  ++stats_.network_changes;
  for (auto& [topic, state] : topics_) state->handle_network(status);
}

// ------------------------------------------------------------ LastHopSession

LastHopSession::LastHopSession(Proxy& proxy, SimDeviceChannel& channel)
    : LastHopSession(proxy, channel.link(), channel.device()) {}

LastHopSession::LastHopSession(Proxy& proxy, net::Link& link,
                               device::Device& device)
    : proxy_(proxy), link_(link), device_(device) {
  link_.on_state_change([this](net::LinkState state) {
    if (state != net::LinkState::kUp) return;
    // Flush syncs deferred during the outage: the device reports how much it
    // now holds, correcting the proxy's queue-size view so the forwarding
    // policy can refill the buffer. No data is pulled — that only happens on
    // a live READ.
    const auto pending = std::move(pending_sync_);
    pending_sync_.clear();
    for (const auto& [topic, offline_reads] : pending) {
      if (proxy_.topic(topic) == nullptr) continue;
      constexpr std::size_t kSyncBytes = 16;
      constexpr std::size_t kBytesPerRecord = 12;
      link_.record_uplink(kSyncBytes +
                          kBytesPerRecord * offline_reads.size());
      proxy_.handle_sync(topic, device_.queue_size(topic), offline_reads,
                         next_request_id_++);
    }
  });
}

void LastHopSession::send_read(const std::string& topic) {
  TopicState* state = proxy_.topic(topic);
  const auto& options = state->config().options;

  // Uplink READ request: N, queue_size, and the device's best ids.
  ReadRequest request;
  request.request_id = next_request_id_++;
  request.n = options.max;
  request.queue_size = device_.queue_size(topic);
  request.client_events =
      device_.top_ids(topic, options.max, options.threshold);
  constexpr std::size_t kRequestHeaderBytes = 32;
  constexpr std::size_t kBytesPerId = 8;
  link_.record_uplink(kRequestHeaderBytes +
                      kBytesPerId * request.client_events.size());
  proxy_.handle_read(topic, request);  // difference arrives via the channel
}

void LastHopSession::request_sync(const std::string& topic) {
  if (proxy_.topic(topic) == nullptr) return;
  if (link_.is_up()) {
    constexpr std::size_t kSyncBytes = 16;
    link_.record_uplink(kSyncBytes);
    proxy_.handle_sync(topic, device_.queue_size(topic), {},
                       next_request_id_++);
  } else {
    pending_sync_.try_emplace(topic);  // an empty read log still syncs size
  }
}

std::vector<NotificationPtr> LastHopSession::user_read(
    const std::string& topic) {
  TopicState* state = proxy_.topic(topic);
  if (state == nullptr) {
    throw std::invalid_argument("user_read: unmanaged topic: " + topic);
  }
  const auto& options = state->config().options;
  device::Device& device = device_;

  const bool online = link_.is_up() && !device.battery_dead();
  const PolicyKind kind = state->config().policy.kind;
  const bool prefetching = kind == PolicyKind::kBufferPrefetch ||
                           kind == PolicyKind::kRatePrefetch ||
                           kind == PolicyKind::kAdaptive;
  if (online) {
    send_read(topic);
  } else if (prefetching && !device.battery_dead()) {
    // Log the offline read and defer a sync until the link recovers. Only
    // prefetching policies do this: the deferred sync is how the proxy
    // learns that buffer room opened (and what the user's true read cadence
    // is). A *pure* on-demand topic transfers only what a live read
    // explicitly pulls (its losses under outages are the paper's Figure 2),
    // and an on-line topic has everything on the device already.
    pending_sync_[topic].push_back(
        ReadRecord{proxy_.simulator().now(), options.max});
  }

  // The user reads from the (possibly just replenished) device queue. The
  // uplink energy cost is charged here when a request was sent.
  auto read = device.read(topic, options.max, options.threshold,
                          /*charge_uplink=*/online);
  total_read_ += read.size();
  return read;
}

}  // namespace waif::core
