#include "core/reliable_channel.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"

namespace waif::core {

using pubsub::NotificationPtr;

namespace {
// A reliable frame carries the SimDeviceChannel header plus a sequence
// number; an ACK is a bare sequence number with transport framing.
constexpr std::size_t kFrameHeaderBytes = 72;
constexpr std::size_t kAckBytes = 16;
}  // namespace

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

ReliableDeviceChannel::ReliableDeviceChannel(sim::Simulator& sim,
                                             net::Link& link,
                                             device::Device& device,
                                             ReliableChannelConfig config,
                                             std::uint64_t seed)
    : sim_(sim), link_(link), device_(device), config_(config), rng_(seed) {
  WAIF_CHECK(config.ack_timeout > 0);
  WAIF_CHECK(config.backoff_factor >= 1.0);
  WAIF_CHECK(config.max_backoff >= config.ack_timeout);
  WAIF_CHECK(config.jitter >= 0.0 && config.jitter < 1.0);
  WAIF_CHECK(config.max_attempts > 0);
  WAIF_CHECK(config.window > 0);
  WAIF_CHECK(config.dedup_window > 0);
  if (config.breaker_failure_threshold > 0) {
    WAIF_CHECK(config.breaker_cooldown > 0);
    WAIF_CHECK(config.breaker_half_open_probes > 0);
  }
  link_.on_state_change([this](net::LinkState state) {
    if (state != net::LinkState::kUp) return;
    // Retransmit every transfer that timed out during the outage, in
    // sequence order for determinism.
    std::vector<std::uint64_t> deferred;
    for (const auto& [seq, transfer] : in_flight_) {
      if (transfer.waiting_for_link) deferred.push_back(seq);
    }
    for (std::uint64_t seq : deferred) {
      auto it = in_flight_.find(seq);
      if (it == in_flight_.end()) continue;
      it->second.waiting_for_link = false;
      transmit(seq);
    }
  });
}

void ReliableDeviceChannel::set_failure_handler(
    std::function<void(const NotificationPtr&)> handler) {
  failure_handler_ = std::move(handler);
}

void ReliableDeviceChannel::set_delivery_observer(
    std::function<void(const NotificationPtr&)> observer) {
  delivery_observer_ = std::move(observer);
}

void ReliableDeviceChannel::set_ack_observer(
    std::function<void(const NotificationPtr&)> observer) {
  ack_observer_ = std::move(observer);
}

void ReliableDeviceChannel::set_breaker_observer(
    std::function<void(BreakerState)> observer) {
  breaker_observer_ = std::move(observer);
}

ChannelSnapshot ReliableDeviceChannel::snapshot() const {
  ChannelSnapshot snap;
  snap.next_seq = next_seq_;
  snap.seen.assign(seen_order_.begin(), seen_order_.end());
  return snap;
}

void ReliableDeviceChannel::restore(const ChannelSnapshot& state) {
  next_seq_ = std::max(next_seq_, state.next_seq);
  for (std::uint64_t seq : state.seen) {
    if (!seen_.insert(seq).second) continue;
    seen_order_.push_back(seq);
    if (seen_order_.size() > config_.dedup_window) {
      seen_.erase(seen_order_.front());
      seen_order_.pop_front();
    }
  }
}

void ReliableDeviceChannel::crash_proxy_side() {
  for (auto& [seq, transfer] : in_flight_) transfer.timer.cancel();
  in_flight_.clear();
  backlog_.clear();
  // The breaker is process-transient state, like the connection itself: the
  // recovered proxy re-learns a slow device from fresh evidence.
  cooldown_timer_.cancel();
  breaker_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  probes_left_ = 0;
}

bool ReliableDeviceChannel::accepting() const {
  if (breaker_ == BreakerState::kOpen) return false;
  if (breaker_ == BreakerState::kHalfOpen && probes_left_ == 0) return false;
  if (config_.max_backlog > 0 && backlog_.size() >= config_.max_backlog) {
    return false;
  }
  return true;
}

bool ReliableDeviceChannel::deliver(const NotificationPtr& notification) {
  ++stats_.accepted;
  if (breaker_ == BreakerState::kHalfOpen && probes_left_ > 0) {
    --probes_left_;
    ++stats_.breaker_probes;
  }
  if (in_flight_.size() >= config_.window) {
    backlog_.push_back(notification);
    return true;
  }
  const std::uint64_t seq = next_seq_++;
  Transfer transfer;
  transfer.event = notification;
  transfer.timeout = config_.ack_timeout;
  in_flight_.emplace(seq, std::move(transfer));
  transmit(seq);
  return true;
}

void ReliableDeviceChannel::transmit(std::uint64_t seq) {
  auto it = in_flight_.find(seq);
  WAIF_CHECK(it != in_flight_.end());
  Transfer& transfer = it->second;

  // Never push an expired notification onto the air — retries must not
  // deliver past expiration.
  if (transfer.event->expired_at(sim_.now())) {
    Transfer abandoned = std::move(transfer);
    abandoned.timer.cancel();
    in_flight_.erase(it);
    fail(std::move(abandoned), /*expired=*/true);
    return;
  }
  if (!link_.is_up()) {
    // The radio is visibly down; retry the moment it recovers.
    transfer.waiting_for_link = true;
    return;
  }

  ++transfer.attempts;
  ++stats_.transmissions;
  if (transfer.attempts > 1) ++stats_.retries;
  link_.record_downlink(kFrameHeaderBytes + transfer.event->payload.size());
  if (link_.downlink_passes()) {
    const NotificationPtr event = transfer.event;
    sim_.schedule_after(link_.draw_downlink_latency(),
                        [this, seq, event] { on_arrival(seq, event); });
  } else {
    ++stats_.link_drops;
  }
  arm_timer(seq, transfer);
}

void ReliableDeviceChannel::arm_timer(std::uint64_t seq, Transfer& transfer) {
  SimDuration timeout = transfer.timeout;
  if (config_.jitter > 0.0) {
    const double factor =
        1.0 + config_.jitter * (2.0 * rng_.next_double() - 1.0);
    timeout = std::max<SimDuration>(
        1, static_cast<SimDuration>(static_cast<double>(timeout) * factor));
  }
  transfer.timer =
      sim_.schedule_after(timeout, [this, seq] { on_timeout(seq); });
}

void ReliableDeviceChannel::on_arrival(std::uint64_t seq,
                                       const NotificationPtr& event) {
  if (!link_.is_up()) {
    // The link dropped while the frame was in the air.
    ++stats_.outage_losses;
    return;
  }
  // A frame that outlived its notification is discarded at the device's
  // transport layer: an expired event is never delivered, and never ACKed
  // (the sender's expiry check will abandon the transfer).
  if (event->expired_at(sim_.now())) return;

  if (seen_.contains(seq)) {
    // The original made it but its ACK did not: absorb the retransmission
    // and re-ACK.
    ++stats_.duplicates_suppressed;
  } else {
    device_.receive(event);
    ++stats_.delivered;
    seen_.insert(seq);
    seen_order_.push_back(seq);
    if (seen_order_.size() > config_.dedup_window) {
      seen_.erase(seen_order_.front());
      seen_order_.pop_front();
    }
    if (delivery_observer_) delivery_observer_(event);
  }

  // ACK on the uplink, subject to the same fault process.
  ++stats_.acks_sent;
  link_.record_uplink(kAckBytes);
  if (!link_.uplink_passes()) {
    ++stats_.ack_losses;
    return;
  }
  sim_.schedule_after(link_.draw_downlink_latency(),
                      [this, seq] { on_ack(seq); });
}

void ReliableDeviceChannel::on_ack(std::uint64_t seq) {
  if (!link_.is_up()) {
    ++stats_.ack_losses;
    return;
  }
  auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) return;  // late ACK after a give-up
  it->second.timer.cancel();
  const NotificationPtr event = std::move(it->second.event);
  in_flight_.erase(it);
  ++stats_.acked;
  // Any completed round trip proves the device responsive: the breaker's
  // failure streak resets, and an open/half-open breaker recloses.
  consecutive_failures_ = 0;
  if (breaker_ != BreakerState::kClosed) close_breaker();
  if (ack_observer_) ack_observer_(event);
  admit_from_backlog();
}

void ReliableDeviceChannel::on_timeout(std::uint64_t seq) {
  auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) return;
  Transfer& transfer = it->second;
  if (!link_.is_up()) {
    // No point retransmitting into a visible outage; park until recovery
    // (the attempt is not charged — nothing was sent).
    transfer.waiting_for_link = true;
    return;
  }
  if (transfer.attempts >= config_.max_attempts) {
    Transfer abandoned = std::move(transfer);
    in_flight_.erase(it);
    fail(std::move(abandoned), /*expired=*/false);
    return;
  }
  // Clamp in double space *before* converting back: past ~62 doublings the
  // product exceeds SimDuration's range and the float->int cast would be
  // undefined behaviour. Comparing as doubles first keeps the stepwise
  // multiply semantics bit-identical for every in-range config.
  const double next = static_cast<double>(transfer.timeout) *
                      config_.backoff_factor;
  transfer.timeout = next >= static_cast<double>(config_.max_backoff)
                         ? config_.max_backoff
                         : static_cast<SimDuration>(next);
  transmit(seq);
}

void ReliableDeviceChannel::fail(Transfer transfer, bool expired) {
  if (expired) {
    // Expirations say nothing about the device's health; only exhausted
    // retry ladders (ACK starvation on a live link) feed the breaker.
    ++stats_.expired_abandoned;
  } else {
    ++stats_.attempts_exhausted;
    note_exhaustion();
    if (failure_handler_) {
      ++stats_.requeued;
      failure_handler_(transfer.event);
    }
  }
  admit_from_backlog();
}

// ------------------------------------------------------------ circuit breaker

void ReliableDeviceChannel::note_exhaustion() {
  if (config_.breaker_failure_threshold == 0) return;
  switch (breaker_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.breaker_failure_threshold) {
        trip_breaker();
      }
      break;
    case BreakerState::kHalfOpen:
      // A probe died on the vine: the device is still unresponsive.
      trip_breaker();
      break;
    case BreakerState::kOpen:
      // A transfer admitted before the trip finished its retry ladder while
      // the breaker was already open; the cooldown is already running.
      break;
  }
}

void ReliableDeviceChannel::trip_breaker() {
  breaker_ = BreakerState::kOpen;
  consecutive_failures_ = 0;
  probes_left_ = 0;
  ++stats_.breaker_trips;
  cooldown_timer_.cancel();
  cooldown_timer_ = sim_.schedule_after(config_.breaker_cooldown,
                                        [this] { enter_half_open(); });
  if (breaker_observer_) breaker_observer_(breaker_);
}

void ReliableDeviceChannel::enter_half_open() {
  breaker_ = BreakerState::kHalfOpen;
  probes_left_ = config_.breaker_half_open_probes;
  if (breaker_observer_) breaker_observer_(breaker_);
}

void ReliableDeviceChannel::close_breaker() {
  breaker_ = BreakerState::kClosed;
  probes_left_ = 0;
  cooldown_timer_.cancel();
  ++stats_.breaker_closes;
  if (breaker_observer_) breaker_observer_(breaker_);
}

void ReliableDeviceChannel::admit_from_backlog() {
  while (!backlog_.empty() && in_flight_.size() < config_.window) {
    NotificationPtr event = std::move(backlog_.front());
    backlog_.pop_front();
    const std::uint64_t seq = next_seq_++;
    Transfer transfer;
    transfer.event = std::move(event);
    transfer.timeout = config_.ack_timeout;
    in_flight_.emplace(seq, std::move(transfer));
    transmit(seq);
  }
}

}  // namespace waif::core
