// Observer interfaces that let a durability layer witness every proxy
// mutation (the storage subsystem's write-ahead log) and rebuild a proxy
// after a crash.
//
// TopicState calls the journal at each state transition with enough context
// to replay the transition as pure data — no live handlers involved. The
// hooks are no-ops by default and the journal pointer is optional, so a
// proxy without persistence behaves byte-identically to one that never
// heard of this header.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "core/read_protocol.h"
#include "pubsub/notification.h"

namespace waif::core {

class Proxy;

/// The exact queue transition an enqueue record encodes. Each tag maps to
/// one live code path, so replay can reproduce precisely the erasures and
/// the insertion that path performed (an id can legitimately sit in the
/// delay stage *and* outgoing after an interrupt, so "erase everywhere then
/// insert" would be wrong for some paths):
///   kOutgoing       insert/replace in outgoing, touch nothing else
///                   (on-line branch, rank refresh of an outgoing or
///                   already-forwarded event)
///   kWithdrawn      rank dropped below threshold on a forwarded event:
///                   erase holding/prefetch/delay, insert outgoing
///   kDropped        rank below threshold, never forwarded: erase every
///                   stage, insert nowhere (also fresh sub-threshold drops)
///   kInterrupt      hybrid-model interrupt: erase holding/prefetch,
///                   insert outgoing (delay untouched)
///   kReadDifference READ moved the event to outgoing: erase
///                   prefetch/holding, insert outgoing (no history write)
///   kPrefetch       insert/replace in prefetch (fresh placement or rank
///                   refresh)
///   kDelayRelease   the delay stage released the event: erase delay,
///                   insert prefetch (no history write)
///   kHolding        insert/replace in holding
///   kDelay          insert/replace in the delay stage (release_at below)
enum class JournalStage : std::uint8_t {
  kOutgoing = 0,
  kWithdrawn = 1,
  kDropped = 2,
  kInterrupt = 3,
  kReadDifference = 4,
  kPrefetch = 5,
  kDelayRelease = 6,
  kHolding = 7,
  kDelay = 8,
};

/// One surviving NOTIFICATION (or READ-difference move), as journaled.
struct EnqueueRecord {
  pubsub::Notification event;
  JournalStage stage = JournalStage::kDropped;
  /// Simulation instant of the mutation.
  SimTime at = 0;
  /// For kDelay: when the delay stage releases the event. A rank refresh of
  /// an event already delayed carries the *original* release instant.
  SimTime release_at = 0;
  /// True when the id was not in history yet (trains the arrival-interval
  /// average).
  bool fresh = false;
  /// True when track_expiration ran for this placement (trains the lifetime
  /// average and arms the expiration timer when the event expires).
  bool exp_tracked = false;
  /// rate_credit_ after this mutation (kRatePrefetch bookkeeping).
  double rate_credit = 0.0;
};

/// Witnesses proxy mutations. All hooks are optional no-ops.
class ProxyJournal {
 public:
  virtual ~ProxyJournal() = default;

  virtual void on_enqueue(const std::string& topic, const EnqueueRecord& record) {
    (void)topic;
    (void)record;
  }

  /// Called *before* the event is handed to the device channel — the
  /// write-ahead contract. Returning false means the record could not be
  /// made durable (failed fsync); the caller must then NOT deliver the
  /// event, so recovery can never observe a delivery the log missed.
  /// `replicated` marks apply_replicated_forward (peer already delivered).
  virtual bool on_forward(const std::string& topic,
                          const pubsub::NotificationPtr& event, SimTime at,
                          double rate_credit, bool replicated) {
    (void)topic;
    (void)event;
    (void)at;
    (void)rate_credit;
    (void)replicated;
    return true;
  }

  virtual void on_read(const std::string& topic, std::uint64_t request_id,
                       int n, std::size_t queue_size, SimTime at) {
    (void)topic;
    (void)request_id;
    (void)n;
    (void)queue_size;
    (void)at;
  }

  /// A queue-state sync from the device, with its offline-read log. Fires
  /// for duplicate syncs too (replay mirrors the sync_id dedup itself).
  virtual void on_sync(const std::string& topic, std::size_t queue_size,
                       std::uint64_t sync_id,
                       const std::vector<ReadRecord>& offline_reads,
                       SimTime at) {
    (void)topic;
    (void)queue_size;
    (void)sync_id;
    (void)offline_reads;
    (void)at;
  }

  /// An event was purged as expired. `timer_fired` distinguishes the
  /// expiration timer (which also disarms itself) from the delay stage
  /// releasing an already-expired event (the timer stays armed).
  virtual void on_expire(const std::string& topic, NotificationId id,
                         bool timer_fired, SimTime at) {
    (void)topic;
    (void)id;
    (void)timer_fired;
    (void)at;
  }

  /// The reliable channel abandoned a transfer; the event went back to
  /// holding (see TopicState::requeue_undelivered).
  virtual void on_requeue(const std::string& topic,
                          const pubsub::NotificationPtr& event, SimTime at) {
    (void)topic;
    (void)event;
    (void)at;
  }

  /// An event was shed by the overload budget (see core/overload.h). Fires
  /// while the victim is still in the queues — the erasure follows the
  /// journal write, so the WAL always orders the enqueue before its shed.
  virtual void on_shed(const std::string& topic,
                       const pubsub::NotificationPtr& event, SimTime at) {
    (void)topic;
    (void)event;
    (void)at;
  }
};

/// Recovery hooks for ReplicatedProxy: invoked when a replica needs to be
/// (re)filled with durable state instead of rejoining cold.
class ProxyRecovery {
 public:
  virtual ~ProxyRecovery() = default;

  /// The standby was promoted; `active` is the new active proxy. Called
  /// before the promoted proxy is told the network state.
  virtual void on_promoted(Proxy& active) { (void)active; }

  /// restart_replica built a fresh proxy; fill it from durable state.
  virtual void warm_restart(Proxy& fresh) { (void)fresh; }
};

}  // namespace waif::core
