// Per-topic last-hop scheduling state — the paper's Figure 7 made concrete.
//
// One TopicState manages one topic for one device. It owns the three queues
// of the paper's pseudo-code:
//   outgoing — events that must be forwarded as soon as possible;
//   prefetch — events that passed the expiration check and the delay stage,
//              okay to push whenever the device has buffer room;
//   holding  — events expiring too soon to be worth prefetching; still
//              available to explicit reads.
// plus the adaptive state: the moving average of read sizes (driving the
// prefetch limit), the moving average interval between reads (driving the
// expiration threshold) and the moving average of event lifetimes.
//
// Entry points mirror the paper exactly: handle_notification() is
// NOTIFICATION, handle_read() is READ, handle_network() is NETWORK, and
// try_forwarding()/expiration/delay timeouts are the auxiliary routines.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/moving_stats.h"
#include "common/time.h"
#include "core/channel.h"
#include "core/forwarding_policy.h"
#include "core/journal.h"
#include "core/ranked_queue.h"
#include "core/read_protocol.h"
#include "core/snapshot.h"
#include "net/link.h"
#include "pubsub/notification.h"
#include "sim/simulator.h"

namespace waif::core {

/// Default bound on the per-topic history ("garbage collection" limit).
inline constexpr std::size_t kDefaultHistoryLimit = 1 << 16;

struct TopicStats {
  std::uint64_t arrivals = 0;              // NOTIFICATION invocations
  std::uint64_t rank_update_arrivals = 0;  // id already known (Section 3.4)
  std::uint64_t below_threshold_drops = 0; // fresh sub-threshold arrivals
  std::uint64_t forwarded = 0;             // downlink transfers
  std::uint64_t prefetch_forwards = 0;
  std::uint64_t outgoing_forwards = 0;
  std::uint64_t read_difference_forwards = 0;
  std::uint64_t rank_change_notices = 0;   // re-sends of already-forwarded ids
  std::uint64_t read_requests = 0;
  std::uint64_t sync_requests = 0;         // deferred offline-read syncs
  std::uint64_t expired_at_proxy = 0;      // expired while queued here
  std::uint64_t expired_on_arrival = 0;    // already expired when delivered
  std::uint64_t held = 0;                  // entered the holding queue
  std::uint64_t delayed = 0;               // entered the delay stage
  std::uint64_t delay_drops = 0;           // removed from the delay stage by a rank drop
  std::uint64_t interrupts = 0;            // on-demand events that interrupted
  std::uint64_t digest_deliveries = 0;     // forwarded from a digest instant
  std::uint64_t requeued_undelivered = 0;  // transport gave up; back to holding
  std::uint64_t duplicate_reads = 0;       // retried READs absorbed by id
  std::uint64_t duplicate_syncs = 0;       // retried syncs absorbed by id
  std::uint64_t forward_aborts = 0;        // journal refused (failed fsync)
  std::uint64_t shed = 0;                  // dropped by the overload budget
  std::uint64_t protocol_errors = 0;       // malformed READ/sync rejected
};

class TopicState {
 public:
  TopicState(sim::Simulator& sim, DeviceChannel& channel, std::string topic,
             TopicConfig config, std::size_t history_limit = kDefaultHistoryLimit);

  TopicState(const TopicState&) = delete;
  TopicState& operator=(const TopicState&) = delete;

  /// Cancels every timer this state scheduled (expiration, delay, digest,
  /// gate wake-ups), so removing a topic mid-run is safe.
  ~TopicState();

  const std::string& topic() const { return topic_; }
  const TopicConfig& config() const { return config_; }
  const TopicStats& stats() const { return stats_; }

  /// Attaches (or detaches, with nullptr) a durability journal. With no
  /// journal the behaviour is bit-identical to a build without one.
  void set_journal(ProxyJournal* journal) { journal_ = journal; }

  // --- overload protection (core/overload.h) -------------------------------

  /// Caps the events across outgoing+prefetch+holding (the delay stage is
  /// excluded — its events re-enter through prefetch, where the budget
  /// catches them at release). 0 = unbounded (the default: byte-identical
  /// behaviour). When a mutation pushes the total past the budget, events
  /// are shed in canonical order (overload.h shed_before), each journaled
  /// via ProxyJournal::on_shed before erasure.
  void set_queue_budget(std::size_t budget) { queue_budget_ = budget; }
  std::size_t queue_budget() const { return queue_budget_; }

  /// Hook invoked after any mutation that grew the queues (and after the
  /// topic budget was enforced) — the proxy hangs its proxy-wide budget
  /// here. Must not re-enter this topic's entry points.
  void set_overflow_hook(std::function<void()> hook) {
    overflow_hook_ = std::move(hook);
  }

  /// Events currently across outgoing+prefetch+holding (what the budget
  /// bounds; the delay stage is excluded by design).
  std::size_t queued_total() const {
    return outgoing_.size() + prefetch_.size() + holding_.size();
  }

  /// All budget-visible events (outgoing ∪ prefetch ∪ holding), deduplicated
  /// by id, in unspecified order. For overload verification in tests and the
  /// chaos harness.
  std::vector<pubsub::NotificationPtr> queued_events() const;

  /// The event the budget would shed next (the canonical worst across the
  /// three queues), or nullptr when they are empty.
  pubsub::NotificationPtr shed_candidate() const;

  /// Sheds the canonical worst event: journals on_shed, then erases it from
  /// every queue and cancels its timers. Returns false when nothing is
  /// queued. The proxy's global-budget enforcement calls this directly.
  bool shed_one();

  /// Captures the full durable state (see core/snapshot.h).
  TopicSnapshot snapshot() const;

  /// Fills a freshly constructed TopicState from a snapshot: rebuilds the
  /// queues, history, averages and day budget, and re-arms the recorded
  /// expiration timers (instants already in the past are clamped to now and
  /// fire immediately, purging entries that expired while the proxy was
  /// down). Does not forward anything — the caller drives handle_network/
  /// try_forwarding once wiring is complete. Must be called before any
  /// other entry point.
  void restore(const TopicSnapshot& state);

  // --- the paper's three main routines -------------------------------------

  /// NOTIFICATION(event): a new outside event, or a re-ranked copy of a known
  /// one, arrives from the routing substrate.
  void handle_notification(const pubsub::NotificationPtr& event);

  /// READ(N, queue_size, client_events): the user triggered a read on the
  /// device and the link carried the request here. Returns the `difference`
  /// set that was moved to outgoing and forwarded — the events the device
  /// lacked. Pre: the request is well-formed (trusted callers); untrusted
  /// input goes through handle_read_checked.
  std::vector<pubsub::NotificationPtr> handle_read(const ReadRequest& request);

  /// READ with protocol-boundary validation: a malformed request (negative
  /// or absurd N, oversized queue_size, duplicate client_events) is counted
  /// as a protocol error and rejected without touching any state — no
  /// journal record, no average trained, nothing forwarded. On kOk behaves
  /// exactly like handle_read, filling `difference` when non-null.
  ReadStatus handle_read_checked(const ReadRequest& request,
                                 std::vector<pubsub::NotificationPtr>* difference);

  /// Queue-state sync from the device: after reads performed while the link
  /// was down, the device reports its true queue size and the log of offline
  /// reads at reconnection. This corrects the drifting queue_size view so
  /// prefetching can refill the buffer, and trains the same moving averages
  /// a live READ would — but unlike READ it pulls no data.
  ///
  /// `sync_id` (0 = unstamped) makes retried syncs idempotent: a repeated id
  /// refreshes the queue-size view but trains the averages only once.
  void handle_sync(std::size_t queue_size,
                   const std::vector<ReadRecord>& offline_reads = {},
                   std::uint64_t sync_id = 0);

  /// handle_sync with protocol-boundary validation (untrusted device input):
  /// an oversized queue_size or an out-of-range offline-read N rejects the
  /// whole sync as a protocol error, touching no state.
  ReadStatus handle_sync_checked(std::size_t queue_size,
                                 const std::vector<ReadRecord>& offline_reads = {},
                                 std::uint64_t sync_id = 0);

  /// NETWORK(status): the last hop changed state.
  void handle_network(net::LinkState status);

  /// Drains outgoing, then prefetches within the policy's budget. Callable
  /// any time; a no-op while the link is down.
  void try_forwarding();

  /// Replication support: records that a peer replica already transferred
  /// `event` to the device — marks it forwarded, drops any queued copy and
  /// bumps the queue-size view — without touching this replica's channel.
  void apply_replicated_forward(const pubsub::NotificationPtr& event);

  /// Graceful degradation for a reliable transport: the channel abandoned a
  /// transfer after exhausting its retries, so the event never reached the
  /// device. Reverses do_forward's bookkeeping (forwarded set, queue-size
  /// view) and parks the still-live event in the holding queue, where an
  /// explicit read can still pull it. Wire this to
  /// ReliableDeviceChannel::set_failure_handler.
  void requeue_undelivered(const pubsub::NotificationPtr& event);

  // --- adaptive state, exposed for tests/benches ---------------------------

  /// Effective prefetch limit right now (policy-dependent).
  std::size_t effective_prefetch_limit() const;
  /// Effective expiration threshold right now (policy-dependent).
  SimDuration effective_expiration_threshold() const;
  /// Moving average of event lifetimes (topic.avg_exp), in sim duration.
  SimDuration average_lifetime() const;
  /// Moving average interval between reads, if two reads have been seen.
  std::optional<SimDuration> average_read_interval() const;
  /// Consumption/production ratio used by the rate-based policy.
  double current_ratio() const;

  /// On-line deliveries made today (Section 2.2 max_per_day budget).
  std::size_t forwarded_today();
  /// True when the Section 2.2 refinements currently hold back on-line
  /// deliveries (quiet window, digest mode between instants, or an exhausted
  /// daily budget).
  bool online_delivery_gated();

  std::size_t outgoing_size() const { return outgoing_.size(); }
  std::size_t prefetch_size() const { return prefetch_.size(); }
  std::size_t holding_size() const { return holding_.size(); }
  std::size_t delay_stage_size() const { return pending_delay_.size(); }
  /// The proxy's (possibly stale) view of the device queue size.
  std::size_t queue_size_view() const { return queue_size_view_; }
  bool was_forwarded(NotificationId id) const {
    return forwarded_.contains(id.value);
  }
  /// Distinct notification ids ever transferred to the device.
  std::size_t forwarded_unique() const { return forwarded_.size(); }

 private:
  struct DelayedEvent {
    pubsub::NotificationPtr event;  // latest copy (rank updates refresh it)
    sim::EventHandle timer;
    SimTime release_at = 0;
  };

  struct ExpirationTimer {
    sim::EventHandle timer;
    SimTime expires_at = 0;
  };

  /// Where handle_notification left an event, for the journal.
  struct Placement {
    JournalStage stage = JournalStage::kDropped;
    SimTime release_at = 0;
    bool exp_tracked = false;
  };

  /// Fresh or re-ranked event with rank >= threshold on an on-demand topic:
  /// route through expiration check -> delay stage -> prefetch queue.
  Placement place_on_demand(const pubsub::NotificationPtr& event, bool known);

  /// Resets the daily delivery budget when the day rolls over.
  void roll_day();
  /// Schedules a try_forwarding wake-up when a delivery gate will lift
  /// (quiet-window end or next-day budget reset).
  void schedule_gate_wake();
  /// Arms the daily timer for one digest instant (time of day).
  void schedule_digest(SimDuration time_of_day);
  /// Registers expiration bookkeeping (average, timer) for an event.
  void track_expiration(const pubsub::NotificationPtr& event);
  /// (Re-)arms the expiration timer only, without retraining the lifetime
  /// average — for events re-entering a queue (requeue_undelivered).
  void arm_expiration_timer(const pubsub::NotificationPtr& event);

  /// A known event was re-ranked (still above threshold): refresh whichever
  /// stage holds it, or notify the device if it was already forwarded.
  /// Returns nullopt when the event is in no stage (fall through to fresh
  /// placement).
  std::optional<Placement> refresh_known(const pubsub::NotificationPtr& event);

  /// expiration_timeout(event): purge an expired event from every queue.
  void on_expiration(NotificationId id);

  /// delay_timeout(event): the delay stage released an event to prefetch.
  void on_delay_elapsed(NotificationId id);

  /// Called after any mutation that grew the budget-visible queues: sheds
  /// down to the topic budget, then gives the proxy's overflow hook a turn.
  void after_queue_growth();

  /// Transfers one event over the channel and updates the bookkeeping.
  /// Returns false when the event was dropped instead (expired).
  bool do_forward(const pubsub::NotificationPtr& event,
                  std::uint64_t TopicStats::* counter);

  void record_history(const pubsub::NotificationPtr& event);
  bool known(NotificationId id) const { return history_.contains(id.value); }
  /// Latest rank the proxy has seen for a (possibly device-held) id.
  std::optional<double> history_rank(NotificationId id) const;

  sim::Simulator& sim_;
  DeviceChannel& channel_;
  std::string topic_;
  TopicConfig config_;
  std::size_t history_limit_;

  RankedQueue outgoing_;
  RankedQueue prefetch_;
  RankedQueue holding_;
  std::unordered_map<std::uint64_t, DelayedEvent> pending_delay_;

  /// topic.history: every event seen, id -> latest copy (bounded FIFO).
  std::unordered_map<std::uint64_t, pubsub::NotificationPtr> history_;
  std::deque<std::uint64_t> history_order_;
  /// topic.forwarded: ids ever sent to the device.
  std::unordered_set<std::uint64_t> forwarded_;
  /// Pending expiration timers, cancelled when an event leaves all queues.
  std::unordered_map<std::uint64_t, ExpirationTimer> expiration_timers_;
  /// READ/sync ids already processed (idempotence under retransmission).
  std::unordered_set<std::uint64_t> seen_read_ids_;
  std::unordered_set<std::uint64_t> seen_sync_ids_;

  MovingAverage old_reads_;        // sizes (N) of recent reads
  IntervalAverage read_times_;     // -> average interval between reads
  MovingAverage exp_times_;        // lifetimes of recent expiring events
  IntervalAverage arrival_times_;  // -> arrival rate, for the rate policy

  std::size_t queue_size_view_ = 0;
  double rate_credit_ = 0.0;

  // Section 2.2 refinement state.
  std::int64_t current_day_ = 0;
  std::size_t forwarded_today_ = 0;
  bool in_digest_ = false;
  sim::EventHandle gate_wake_;
  std::vector<sim::EventHandle> digest_timers_;

  // Overload protection: 0 = unbounded; see core/overload.h.
  std::size_t queue_budget_ = 0;
  std::function<void()> overflow_hook_;

  ProxyJournal* journal_ = nullptr;
  TopicStats stats_;
};

}  // namespace waif::core
