#include "core/device_group.h"

#include <stdexcept>

#include "common/check.h"

namespace waif::core {

using pubsub::NotificationPtr;

DeviceGroup::DeviceGroup(sim::Simulator& sim) : sim_(sim) {}

std::size_t DeviceGroup::add_member(Proxy& proxy, SimDeviceChannel& channel) {
  members_.push_back(
      Member{&proxy, &channel, std::make_unique<LastHopSession>(proxy, channel)});
  return members_.size() - 1;
}

LastHopSession& DeviceGroup::session(std::size_t member) {
  WAIF_CHECK(member < members_.size());
  return *members_[member].session;
}

void DeviceGroup::set_member_degraded(std::size_t member, bool degraded) {
  WAIF_CHECK(member < members_.size());
  members_[member].degraded = degraded;
}

bool DeviceGroup::member_degraded(std::size_t member) const {
  WAIF_CHECK(member < members_.size());
  return members_[member].degraded;
}

std::vector<NotificationPtr> DeviceGroup::user_read(std::size_t member,
                                                    const std::string& topic) {
  if (member >= members_.size()) {
    throw std::invalid_argument("user_read: no such group member");
  }
  Member& reader = members_[member];
  TopicState* state = reader.proxy->topic(topic);
  if (state == nullptr) {
    throw std::invalid_argument("user_read: unmanaged topic: " + topic);
  }
  const auto& options = state->config().options;
  ++stats_.group_reads;

  // First the device's own last hop, exactly as a lone device would read.
  std::vector<NotificationPtr> result;
  for (const NotificationPtr& notification : reader.session->user_read(topic)) {
    if (read_ids_.insert(notification->id.value).second) {
      result.push_back(notification);
      ++stats_.local_reads;
    } else {
      // Another device already served this message to the user.
      ++stats_.duplicates_discarded;
    }
  }

  if (!adhoc_available_) return result;

  // Top up from the peers' caches over the ad-hoc network: one device uses
  // the cache of another (Section 4).
  for (std::size_t i = 0;
       i < members_.size() && static_cast<int>(result.size()) < options.max;
       ++i) {
    if (i == member) continue;
    Member& peer = members_[i];
    if (peer.degraded) {
      // A hold-only peer: its cache may be stale and its proxy would only
      // pile a refill request onto an already-struggling channel.
      ++stats_.degraded_peer_skips;
      continue;
    }
    device::Device& peer_device = peer.channel->device();
    while (static_cast<int>(result.size()) < options.max) {
      auto batch = peer_device.read(topic, 1, options.threshold);
      if (batch.empty()) break;
      ++stats_.adhoc_transfers;  // the copy crossed the ad-hoc network
      const NotificationPtr& notification = batch.front();
      if (read_ids_.insert(notification->id.value).second) {
        result.push_back(notification);
        ++stats_.peer_reads;
      } else {
        ++stats_.duplicates_discarded;
      }
    }
    // Tell the peer's proxy that its buffer shrank so prefetching refills
    // it — immediately if the peer's link is up, else at its reconnection.
    peer.session->request_sync(topic);
  }
  return result;
}

}  // namespace waif::core
