#include "core/topic_state.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "core/overload.h"

namespace waif::core {

using pubsub::NotificationPtr;
using pubsub::RankHigher;

TopicState::TopicState(sim::Simulator& sim, DeviceChannel& channel,
                       std::string topic, TopicConfig config,
                       std::size_t history_limit)
    : sim_(sim),
      channel_(channel),
      topic_(std::move(topic)),
      config_(config),
      history_limit_(history_limit),
      old_reads_(config.policy.moving_average_window),
      read_times_(config.policy.moving_average_window),
      exp_times_(config.policy.moving_average_window),
      arrival_times_(config.policy.moving_average_window) {
  WAIF_CHECK(history_limit > 0);
  WAIF_CHECK(config.options.max > 0);
  for (const QuietWindow& window : config_.refinements.quiet_windows) {
    WAIF_CHECK(window.start >= 0 && window.start < kDay);
    WAIF_CHECK(window.end > window.start && window.end <= kDay);
  }
  if (config_.mode == DeliveryMode::kOnLine) {
    for (SimDuration time_of_day : config_.refinements.digest_times) {
      WAIF_CHECK(time_of_day >= 0 && time_of_day < kDay);
      schedule_digest(time_of_day);
    }
  }
}

TopicState::~TopicState() {
  for (auto& [id, armed] : expiration_timers_) armed.timer.cancel();
  for (auto& [id, delayed] : pending_delay_) delayed.timer.cancel();
  for (sim::EventHandle& timer : digest_timers_) timer.cancel();
  gate_wake_.cancel();
}

// --------------------------------------------------------------- NOTIFICATION

void TopicState::handle_notification(const NotificationPtr& event) {
  ++stats_.arrivals;
  if (event->expired_at(sim_.now())) {
    // E.g. a rank update routed for an event that just expired; any queued
    // copy has already been purged by the expiration timer.
    ++stats_.expired_on_arrival;
    return;
  }
  const bool was_known = known(event->id);
  if (was_known) ++stats_.rank_update_arrivals;

  Placement placement;  // defaults to kDropped
  const double threshold = config_.options.threshold;
  if (event->rank < threshold) {
    if (was_known) {
      // Rank has been lowered below the threshold (Figure 7, first branch):
      // withdraw it from the prefetch pipeline.
      holding_.erase(event->id);
      prefetch_.erase(event->id);
      if (auto it = pending_delay_.find(event->id.value);
          it != pending_delay_.end()) {
        it->second.timer.cancel();
        pending_delay_.erase(it);
        ++stats_.delay_drops;
      }
      if (forwarded_.contains(event->id.value)) {
        outgoing_.insert(event);  // tell the client of the rank drop
        placement.stage = JournalStage::kWithdrawn;
      } else {
        outgoing_.erase(event->id);  // don't bother the client
      }
    } else {
      ++stats_.below_threshold_drops;
    }
  } else {
    // Rank is above (or at) the threshold.
    if (config_.mode == DeliveryMode::kOnLine ||
        config_.policy.kind == PolicyKind::kOnline) {
      // Arm the expiration timer even here: a gate (day budget, quiet
      // window) or outage can strand the event in outgoing past its
      // lifetime, and an unjournaled lazy skip at forward time would
      // diverge from the recovery mirror.
      track_expiration(event);
      outgoing_.insert(event);  // send to client ASAP
      placement.stage = JournalStage::kOutgoing;
      placement.exp_tracked = event->expires();
    } else if (event->rank >= config_.refinements.interrupt_threshold &&
               !forwarded_.contains(event->id.value)) {
      // Hybrid model (Section 2.2): an on-demand topic interrupts for events
      // important enough (the tornado warning on a weather topic).
      track_expiration(event);
      holding_.erase(event->id);
      prefetch_.erase(event->id);
      outgoing_.insert(event);
      ++stats_.interrupts;
      placement.stage = JournalStage::kInterrupt;
      placement.exp_tracked = event->expires();
    } else {
      std::optional<Placement> refreshed;
      if (was_known) refreshed = refresh_known(event);
      placement = refreshed.has_value() ? *refreshed
                                        : place_on_demand(event, was_known);
      if (config_.policy.kind == PolicyKind::kRatePrefetch && !was_known) {
        rate_credit_ += current_ratio();
      }
    }
  }

  if (!was_known) {
    arrival_times_.add(to_seconds(sim_.now()));
  }
  record_history(event);  // record all events
  if (journal_ != nullptr) {
    EnqueueRecord record;
    record.event = *event;
    record.stage = placement.stage;
    record.at = sim_.now();
    record.release_at = placement.release_at;
    record.fresh = !was_known;
    record.exp_tracked = placement.exp_tracked;
    record.rate_credit = rate_credit_;
    journal_->on_enqueue(topic_, record);
  }
  after_queue_growth();
  try_forwarding();
}

void TopicState::track_expiration(const NotificationPtr& event) {
  if (!event->expires()) return;
  exp_times_.add(to_seconds(event->remaining_lifetime(sim_.now())));
  arm_expiration_timer(event);
}

void TopicState::arm_expiration_timer(const NotificationPtr& event) {
  if (!event->expires()) return;
  // schedule(&expiration_timeout, event.expires, event)
  if (auto it = expiration_timers_.find(event->id.value);
      it != expiration_timers_.end()) {
    it->second.timer.cancel();
    expiration_timers_.erase(it);
  }
  const NotificationId id = event->id;
  expiration_timers_.emplace(
      id.value,
      ExpirationTimer{
          sim_.schedule_at(event->expires_at, [this, id] { on_expiration(id); }),
          event->expires_at});
}

TopicState::Placement TopicState::place_on_demand(const NotificationPtr& event,
                                                  bool known_id) {
  track_expiration(event);
  const bool exp_tracked = event->expires();

  const SimDuration threshold = effective_expiration_threshold();
  if (event->expires() &&
      event->remaining_lifetime(sim_.now()) < threshold) {
    holding_.insert(event);
    ++stats_.held;
    return {JournalStage::kHolding, 0, exp_tracked};
  }
  if (config_.policy.delay > 0 && !known_id) {
    // Delay stage (Section 3.4): give rank drops time to arrive before the
    // event becomes prefetchable.
    const NotificationId id = event->id;
    const SimTime release_at = sim_.now() + config_.policy.delay;
    auto timer = sim_.schedule_after(config_.policy.delay,
                                     [this, id] { on_delay_elapsed(id); });
    pending_delay_.insert_or_assign(
        id.value, DelayedEvent{event, std::move(timer), release_at});
    ++stats_.delayed;
    return {JournalStage::kDelay, release_at, exp_tracked};
  }
  prefetch_.insert(event);
  return {JournalStage::kPrefetch, 0, exp_tracked};
}

std::optional<TopicState::Placement> TopicState::refresh_known(
    const NotificationPtr& event) {
  if (outgoing_.contains(event->id)) {
    outgoing_.insert(event);  // replace with the re-ranked copy
    return Placement{JournalStage::kOutgoing, 0, false};
  }
  if (holding_.contains(event->id)) {
    holding_.insert(event);
    return Placement{JournalStage::kHolding, 0, false};
  }
  if (prefetch_.contains(event->id)) {
    prefetch_.insert(event);
    return Placement{JournalStage::kPrefetch, 0, false};
  }
  if (auto it = pending_delay_.find(event->id.value);
      it != pending_delay_.end()) {
    it->second.event = event;  // the delay stage will release the new copy
    return Placement{JournalStage::kDelay, it->second.release_at, false};
  }
  if (forwarded_.contains(event->id.value)) {
    // Already on the device: push the new rank so the device reorders.
    outgoing_.insert(event);
    return Placement{JournalStage::kOutgoing, 0, false};
  }
  return std::nullopt;  // known id, but expired/garbage-collected: place afresh
}

// ----------------------------------------------------------------------- READ

ReadStatus TopicState::handle_read_checked(
    const ReadRequest& request, std::vector<NotificationPtr>* difference) {
  const ReadStatus status = validate_read(request);
  if (status != ReadStatus::kOk) {
    // A malformed request from an untrusted device: reject at the boundary.
    // Nothing is journaled and no average trains — a flood of garbage READs
    // cannot skew the adaptive state or the durable log.
    ++stats_.protocol_errors;
    return status;
  }
  std::vector<NotificationPtr> moved = handle_read(request);
  if (difference != nullptr) *difference = std::move(moved);
  return ReadStatus::kOk;
}

std::vector<NotificationPtr> TopicState::handle_read(const ReadRequest& request) {
  WAIF_CHECK(request.n >= 0);
  ++stats_.read_requests;

  if (request.request_id != 0 &&
      !seen_read_ids_.insert(request.request_id).second) {
    // A retransmitted READ (the request or its effects were lost on an
    // unreliable hop). The queue-size report is current, so refresh the
    // view — but the moving averages must train once per *user* read, and
    // the first attempt already moved the difference into outgoing, so a
    // forwarding pass is all that is still needed.
    ++stats_.duplicate_reads;
    queue_size_view_ = request.queue_size;
    if (journal_ != nullptr) {
      journal_->on_read(topic_, request.request_id, request.n,
                        request.queue_size, sim_.now());
    }
    try_forwarding();
    return {};
  }

  // topic.old_reads ∪ N ; prefetch_limit = moving_average(old_reads) * 2
  old_reads_.add(static_cast<double>(request.n));
  // topic.old_times ∪ gettimeofday(); expiration_threshold =
  //   moving_average_difference(old_times)
  read_times_.add(to_seconds(sim_.now()));
  // topic.queue_size = queue_size  (the proxy's drifting view is corrected)
  queue_size_view_ = request.queue_size;

  // best = get_highest_ranked(N, outgoing ∪ prefetch ∪ holding)
  const double threshold = config_.options.threshold;
  auto best = top_n_across({&outgoing_, &prefetch_, &holding_}, request.n,
                           threshold);

  // difference = get_highest_ranked(N, best ∪ client_events) \ client_events.
  // The client sends only ids; ranks for them come from our history (the
  // proxy has seen every event it ever forwarded). Unknown ids — evicted from
  // history — are treated as top-ranked, which can only make us forward less.
  struct Candidate {
    double rank;
    SimTime published_at;
    std::uint64_t id;
    NotificationPtr event;  // null for client-held entries
  };
  std::vector<Candidate> candidates;
  candidates.reserve(best.size() + request.client_events.size());
  for (const NotificationPtr& event : best) {
    candidates.push_back(
        {event->rank, event->published_at, event->id.value, event});
  }
  for (NotificationId id : request.client_events) {
    // Skip duplicates: an id both on the client and in our queues competes
    // as the client's copy (no transfer needed).
    std::erase_if(candidates,
                  [&](const Candidate& c) { return c.id == id.value; });
    const auto rank = history_rank(id);
    candidates.push_back({rank.value_or(pubsub::kMaxRank), 0, id.value, nullptr});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.rank != b.rank) return a.rank > b.rank;
              if (a.published_at != b.published_at)
                return a.published_at > b.published_at;
              return a.id > b.id;
            });

  std::vector<NotificationPtr> difference;
  for (std::size_t i = 0;
       i < candidates.size() && i < static_cast<std::size_t>(request.n); ++i) {
    if (candidates[i].event != nullptr) difference.push_back(candidates[i].event);
  }

  // q.outgoing ← q.outgoing ∪ difference. We also remove the events from
  // prefetch/holding so a later prefetch pass cannot transfer them twice
  // (the pseudo-code's set notation leaves them behind).
  if (journal_ != nullptr) {
    journal_->on_read(topic_, request.request_id, request.n,
                      request.queue_size, sim_.now());
  }
  for (const NotificationPtr& event : difference) {
    prefetch_.erase(event->id);
    holding_.erase(event->id);
    outgoing_.insert(event);
    if (journal_ != nullptr) {
      EnqueueRecord record;
      record.event = *event;
      record.stage = JournalStage::kReadDifference;
      record.at = sim_.now();
      record.rate_credit = rate_credit_;
      journal_->on_enqueue(topic_, record);
    }
  }
  stats_.read_difference_forwards += difference.size();

  try_forwarding();
  return difference;
}

ReadStatus TopicState::handle_sync_checked(
    std::size_t queue_size, const std::vector<ReadRecord>& offline_reads,
    std::uint64_t sync_id) {
  if (queue_size > kMaxReadQueueSize) {
    ++stats_.protocol_errors;
    return ReadStatus::kBadQueueSize;
  }
  for (const ReadRecord& record : offline_reads) {
    if (record.n < 0 || record.n > kMaxReadN) {
      ++stats_.protocol_errors;
      return ReadStatus::kBadN;
    }
  }
  handle_sync(queue_size, offline_reads, sync_id);
  return ReadStatus::kOk;
}

void TopicState::handle_sync(std::size_t queue_size,
                             const std::vector<ReadRecord>& offline_reads,
                             std::uint64_t sync_id) {
  ++stats_.sync_requests;
  if (sync_id != 0 && !seen_sync_ids_.insert(sync_id).second) {
    // A retransmitted sync: the queue-size report is refreshed but the
    // offline-read log trains the averages exactly once.
    ++stats_.duplicate_syncs;
    queue_size_view_ = queue_size;
    if (journal_ != nullptr) {
      journal_->on_sync(topic_, queue_size, sync_id, offline_reads, sim_.now());
    }
    try_forwarding();
    return;
  }
  for (const ReadRecord& record : offline_reads) {
    old_reads_.add(static_cast<double>(record.n));
    read_times_.add(to_seconds(record.time));
  }
  queue_size_view_ = queue_size;
  if (journal_ != nullptr) {
    journal_->on_sync(topic_, queue_size, sync_id, offline_reads, sim_.now());
  }
  try_forwarding();
}

// -------------------------------------------------------------------- NETWORK

void TopicState::handle_network(net::LinkState status) {
  if (status == net::LinkState::kUp) try_forwarding();
}

// ------------------------------------------------------------- try_forwarding

void TopicState::try_forwarding() {
  if (!channel_.link_up()) return;
  // A channel whose circuit breaker tripped holds everything: events stay
  // queued (hold-only degraded mode) until the breaker recloses and the
  // observer nudges try_forwarding again.
  if (!channel_.accepting()) return;

  // First empty the outgoing queue — unless a Section 2.2 gate (quiet
  // window, digest schedule, daily budget) holds an on-line topic back.
  while (!outgoing_.empty()) {
    if (online_delivery_gated()) {
      schedule_gate_wake();
      break;
    }
    const bool digest = in_digest_;
    if (do_forward(outgoing_.pop_top(), &TopicStats::outgoing_forwards) &&
        digest) {
      ++stats_.digest_deliveries;
    }
  }

  // Then see if anything should be prefetched.
  switch (config_.policy.kind) {
    case PolicyKind::kOnline:
    case PolicyKind::kOnDemand:
      break;  // nothing beyond outgoing
    case PolicyKind::kBufferPrefetch:
    case PolicyKind::kAdaptive: {
      const std::size_t limit = effective_prefetch_limit();
      while (queue_size_view_ < limit && !prefetch_.empty()) {
        do_forward(prefetch_.pop_top(), &TopicStats::prefetch_forwards);
      }
      break;
    }
    case PolicyKind::kRatePrefetch:
      while (rate_credit_ >= 1.0 && !prefetch_.empty()) {
        rate_credit_ -= 1.0;
        do_forward(prefetch_.pop_top(), &TopicStats::prefetch_forwards);
      }
      break;
  }
}

bool TopicState::do_forward(const NotificationPtr& event,
                            std::uint64_t TopicStats::* counter) {
  if (event->expired_at(sim_.now())) {
    ++stats_.expired_at_proxy;
    return false;
  }
  if (journal_ != nullptr &&
      !journal_->on_forward(topic_, event, sim_.now(), rate_credit_,
                            /*replicated=*/false)) {
    // The write-ahead record could not be made durable. Delivering anyway
    // would let a recovered proxy — which never learns of this transfer —
    // re-send the event, a duplicate. Park it in holding instead, where an
    // explicit read can still pull it (bounded loss, never duplication).
    ++stats_.forward_aborts;
    arm_expiration_timer(event);
    holding_.insert(event);
    ++stats_.held;
    return false;
  }
  const bool repeat = forwarded_.contains(event->id.value);
  channel_.deliver(event);
  ++stats_.forwarded;
  stats_.*counter += 1;
  if (repeat) ++stats_.rank_change_notices;
  ++queue_size_view_;
  forwarded_.insert(event->id.value);
  if (config_.mode == DeliveryMode::kOnLine) {
    roll_day();
    ++forwarded_today_;
  }
  return true;
}

// ------------------------------------------------- Section 2.2 refinements

void TopicState::roll_day() {
  const std::int64_t day = sim_.now() / kDay;
  if (day != current_day_) {
    current_day_ = day;
    forwarded_today_ = 0;
  }
}

std::size_t TopicState::forwarded_today() {
  roll_day();
  return forwarded_today_;
}

bool TopicState::online_delivery_gated() {
  if (config_.mode != DeliveryMode::kOnLine) return false;
  const DeliveryRefinements& refinements = config_.refinements;
  const SimDuration time_of_day = sim_.now() % kDay;
  for (const QuietWindow& window : refinements.quiet_windows) {
    if (time_of_day >= window.start && time_of_day < window.end) return true;
  }
  if (!refinements.digest_times.empty() && !in_digest_) return true;
  if (refinements.max_per_day > 0 &&
      forwarded_today() >= refinements.max_per_day) {
    return true;
  }
  return false;
}

void TopicState::schedule_gate_wake() {
  if (gate_wake_.active()) return;
  const DeliveryRefinements& refinements = config_.refinements;
  const SimTime day_start = (sim_.now() / kDay) * kDay;
  const SimDuration time_of_day = sim_.now() % kDay;
  SimTime wake = kNever;
  for (const QuietWindow& window : refinements.quiet_windows) {
    if (time_of_day >= window.start && time_of_day < window.end) {
      wake = std::min(wake, day_start + window.end);
    }
  }
  if (refinements.max_per_day > 0 &&
      forwarded_today() >= refinements.max_per_day) {
    wake = std::min(wake, day_start + kDay);
  }
  // A digest gate needs no wake: the digest timers fire on their own.
  if (wake == kNever) return;
  gate_wake_ = sim_.schedule_at(wake, [this] { try_forwarding(); });
}

void TopicState::schedule_digest(SimDuration time_of_day) {
  const SimTime day_start = (sim_.now() / kDay) * kDay;
  SimTime next = day_start + time_of_day;
  if (next <= sim_.now()) next += kDay;
  // One live timer per digest instant; each firing re-arms itself. Handles
  // of already-fired timers are pruned so the vector stays small.
  std::erase_if(digest_timers_,
                [](const sim::EventHandle& handle) { return !handle.active(); });
  digest_timers_.push_back(sim_.schedule_at(next, [this, time_of_day] {
    in_digest_ = true;
    try_forwarding();
    in_digest_ = false;
    schedule_digest(time_of_day);
  }));
}

void TopicState::apply_replicated_forward(const NotificationPtr& event) {
  if (journal_ != nullptr) {
    // The peer already delivered; the transfer cannot be aborted, so a
    // failed fsync here only widens the bounded-loss window.
    (void)journal_->on_forward(topic_, event, sim_.now(), rate_credit_,
                               /*replicated=*/true);
  }
  outgoing_.erase(event->id);
  prefetch_.erase(event->id);
  holding_.erase(event->id);
  if (auto it = pending_delay_.find(event->id.value);
      it != pending_delay_.end()) {
    it->second.timer.cancel();
    pending_delay_.erase(it);
  }
  forwarded_.insert(event->id.value);
  ++queue_size_view_;
  record_history(event);
}

void TopicState::requeue_undelivered(const NotificationPtr& event) {
  ++stats_.requeued_undelivered;
  if (journal_ != nullptr) journal_->on_requeue(topic_, event, sim_.now());
  // Reverse do_forward's bookkeeping: the transfer never completed, so the
  // event is not on the device and occupies no device queue slot.
  forwarded_.erase(event->id.value);
  if (queue_size_view_ > 0) --queue_size_view_;
  if (event->expired_at(sim_.now())) {
    ++stats_.expired_at_proxy;
    return;
  }
  // Park in holding rather than outgoing: the link just proved itself unable
  // to carry the event, so it should not be re-pushed blindly — but an
  // explicit read can still pull it. The expiration timer is re-armed
  // without retraining the lifetime average (the event is not new).
  arm_expiration_timer(event);
  holding_.insert(event);
  ++stats_.held;
  after_queue_growth();
}

// ------------------------------------------------------------------- timeouts

void TopicState::on_expiration(NotificationId id) {
  expiration_timers_.erase(id.value);
  if (journal_ != nullptr) {
    journal_->on_expire(topic_, id, /*timer_fired=*/true, sim_.now());
  }
  bool removed = false;
  removed |= holding_.erase(id) != nullptr;
  removed |= prefetch_.erase(id) != nullptr;
  removed |= outgoing_.erase(id) != nullptr;
  if (auto it = pending_delay_.find(id.value); it != pending_delay_.end()) {
    it->second.timer.cancel();
    pending_delay_.erase(it);
    removed = true;
  }
  if (removed) ++stats_.expired_at_proxy;
}

void TopicState::on_delay_elapsed(NotificationId id) {
  auto it = pending_delay_.find(id.value);
  if (it == pending_delay_.end()) return;
  NotificationPtr event = std::move(it->second.event);
  pending_delay_.erase(it);
  if (event->expired_at(sim_.now())) {
    ++stats_.expired_at_proxy;
    if (journal_ != nullptr) {
      journal_->on_expire(topic_, id, /*timer_fired=*/false, sim_.now());
    }
    return;
  }
  prefetch_.insert(event);
  if (journal_ != nullptr) {
    EnqueueRecord record;
    record.event = *event;
    record.stage = JournalStage::kDelayRelease;
    record.at = sim_.now();
    record.rate_credit = rate_credit_;
    journal_->on_enqueue(topic_, record);
  }
  after_queue_growth();
  try_forwarding();
}

// ------------------------------------------------------- overload protection

std::vector<NotificationPtr> TopicState::queued_events() const {
  std::vector<NotificationPtr> events;
  events.reserve(queued_total());
  std::unordered_set<std::uint64_t> seen;
  for (const RankedQueue* queue : {&outgoing_, &prefetch_, &holding_}) {
    for (const NotificationPtr& event : *queue) {
      if (seen.insert(event->id.value).second) events.push_back(event);
    }
  }
  return events;
}

NotificationPtr TopicState::shed_candidate() const {
  NotificationPtr worst;
  for (const RankedQueue* queue : {&outgoing_, &prefetch_, &holding_}) {
    for (const NotificationPtr& event : *queue) {
      if (worst == nullptr || shed_before(*event, *worst)) worst = event;
    }
  }
  return worst;
}

bool TopicState::shed_one() {
  const NotificationPtr victim = shed_candidate();
  if (victim == nullptr) return false;
  // Journal while the victim is still queued (mirrors on_expiration): the
  // WAL then always orders an event's enqueue before its shed, and an
  // observing journal can verify the canonical order against the live
  // queues.
  if (journal_ != nullptr) journal_->on_shed(topic_, victim, sim_.now());
  const NotificationId id = victim->id;
  outgoing_.erase(id);
  prefetch_.erase(id);
  holding_.erase(id);
  // An interrupt leaves a copy in the delay stage; shedding must free that
  // too, or the memory the budget exists to bound is not actually released.
  if (auto it = pending_delay_.find(id.value); it != pending_delay_.end()) {
    it->second.timer.cancel();
    pending_delay_.erase(it);
  }
  if (auto it = expiration_timers_.find(id.value);
      it != expiration_timers_.end()) {
    it->second.timer.cancel();
    expiration_timers_.erase(it);
  }
  ++stats_.shed;
  return true;
}

void TopicState::after_queue_growth() {
  if (queue_budget_ > 0) {
    while (queued_total() > queue_budget_ && shed_one()) {
    }
  }
  if (overflow_hook_) overflow_hook_();
}

// ------------------------------------------------------------ adaptive state

std::size_t TopicState::effective_prefetch_limit() const {
  switch (config_.policy.kind) {
    case PolicyKind::kOnline:
      return std::numeric_limits<std::size_t>::max();
    case PolicyKind::kOnDemand:
    case PolicyKind::kRatePrefetch:
      return 0;
    case PolicyKind::kBufferPrefetch:
      return config_.policy.prefetch_limit;
    case PolicyKind::kAdaptive: {
      if (old_reads_.empty()) return config_.policy.initial_prefetch_limit;
      const double limit =
          old_reads_.value() * config_.policy.prefetch_limit_factor;
      return static_cast<std::size_t>(limit + 0.5);
    }
  }
  return 0;
}

SimDuration TopicState::effective_expiration_threshold() const {
  if (config_.policy.kind != PolicyKind::kAdaptive) {
    return config_.policy.expiration_threshold;
  }
  const auto interval = read_times_.value();
  if (!interval.has_value()) return config_.policy.expiration_threshold;
  const SimDuration adaptive = seconds(*interval);
  if (config_.policy.auto_threshold_safety > 0.0) {
    // Section 3.3: the automatic threshold is only safe when events live an
    // order of magnitude longer than the interval between reads.
    const double avg_exp = static_cast<double>(average_lifetime());
    if (avg_exp <= config_.policy.auto_threshold_safety *
                       static_cast<double>(adaptive)) {
      return config_.policy.expiration_threshold;
    }
  }
  return adaptive;
}

SimDuration TopicState::average_lifetime() const {
  return seconds(exp_times_.value());
}

std::optional<SimDuration> TopicState::average_read_interval() const {
  const auto interval = read_times_.value();
  if (!interval.has_value()) return std::nullopt;
  return seconds(*interval);
}

double TopicState::current_ratio() const {
  if (config_.policy.rate_ratio > 0.0) return config_.policy.rate_ratio;
  const auto read_interval = read_times_.value();
  const auto arrival_interval = arrival_times_.value();
  if (!read_interval.has_value() || !arrival_interval.has_value() ||
      *read_interval <= 0.0 || old_reads_.empty()) {
    return 0.0;
  }
  const double consumption = old_reads_.value() / *read_interval;  // msgs/s
  if (*arrival_interval <= 0.0) return 1.0;
  const double production = 1.0 / *arrival_interval;  // msgs/s
  if (production <= 0.0) return 1.0;
  return std::min(consumption / production, 1.0);
}

// ------------------------------------------------------------------- history

void TopicState::record_history(const NotificationPtr& event) {
  auto [it, inserted] = history_.try_emplace(event->id.value, event);
  if (!inserted) {
    it->second = event;  // keep the latest rank
    return;
  }
  history_order_.push_back(event->id.value);
  if (history_order_.size() > history_limit_) {
    // The "garbage collection" the paper's pseudo-code omits.
    history_.erase(history_order_.front());
    history_order_.pop_front();
  }
}

std::optional<double> TopicState::history_rank(NotificationId id) const {
  auto it = history_.find(id.value);
  if (it == history_.end()) return std::nullopt;
  return it->second->rank;
}

// ---------------------------------------------------------- snapshot/restore

TopicSnapshot TopicState::snapshot() const {
  TopicSnapshot snap;
  const auto copy_queue = [](const RankedQueue& queue,
                             std::vector<pubsub::Notification>& out) {
    out.reserve(queue.size());
    for (const NotificationPtr& event : queue) out.push_back(*event);
  };
  copy_queue(outgoing_, snap.outgoing);
  copy_queue(prefetch_, snap.prefetch);
  copy_queue(holding_, snap.holding);

  snap.delayed.reserve(pending_delay_.size());
  for (const auto& [id, delayed] : pending_delay_) {
    snap.delayed.push_back({*delayed.event, delayed.release_at});
  }
  std::sort(snap.delayed.begin(), snap.delayed.end(),
            [](const DelayedSnapshot& a, const DelayedSnapshot& b) {
              return a.event.id.value < b.event.id.value;
            });

  snap.history.reserve(history_order_.size());
  for (std::uint64_t id : history_order_) {
    snap.history.push_back(*history_.at(id));
  }

  snap.forwarded.assign(forwarded_.begin(), forwarded_.end());
  std::sort(snap.forwarded.begin(), snap.forwarded.end());

  snap.expiration_armed.reserve(expiration_timers_.size());
  for (const auto& [id, armed] : expiration_timers_) {
    snap.expiration_armed.push_back({id, armed.expires_at});
  }
  std::sort(snap.expiration_armed.begin(), snap.expiration_armed.end(),
            [](const ArmedExpiration& a, const ArmedExpiration& b) {
              return a.id < b.id;
            });

  snap.seen_read_ids.assign(seen_read_ids_.begin(), seen_read_ids_.end());
  std::sort(snap.seen_read_ids.begin(), snap.seen_read_ids.end());
  snap.seen_sync_ids.assign(seen_sync_ids_.begin(), seen_sync_ids_.end());
  std::sort(snap.seen_sync_ids.begin(), snap.seen_sync_ids.end());

  snap.old_reads = old_reads_.snapshot();
  snap.read_times = read_times_.snapshot();
  snap.exp_times = exp_times_.snapshot();
  snap.arrival_times = arrival_times_.snapshot();
  snap.queue_size_view = queue_size_view_;
  snap.rate_credit = rate_credit_;
  snap.current_day = current_day_;
  snap.forwarded_today = forwarded_today_;
  return snap;
}

void TopicState::restore(const TopicSnapshot& state) {
  // Only a freshly constructed TopicState may be restored into.
  WAIF_CHECK(stats_.arrivals == 0 && history_.empty() && outgoing_.empty() &&
             forwarded_.empty());

  const auto fill_queue = [](const std::vector<pubsub::Notification>& in,
                             RankedQueue& queue) {
    for (const pubsub::Notification& event : in) {
      queue.insert(std::make_shared<const pubsub::Notification>(event));
    }
  };
  fill_queue(state.outgoing, outgoing_);
  fill_queue(state.prefetch, prefetch_);
  fill_queue(state.holding, holding_);

  for (const DelayedSnapshot& delayed : state.delayed) {
    auto event = std::make_shared<const pubsub::Notification>(delayed.event);
    const NotificationId id = event->id;
    // A release instant that passed while the proxy was down fires now.
    const SimTime release = std::max(delayed.release_at, sim_.now());
    auto timer = sim_.schedule_at(release, [this, id] { on_delay_elapsed(id); });
    pending_delay_.insert_or_assign(
        id.value,
        DelayedEvent{std::move(event), std::move(timer), delayed.release_at});
  }

  for (const pubsub::Notification& event : state.history) {
    record_history(std::make_shared<const pubsub::Notification>(event));
  }

  forwarded_.insert(state.forwarded.begin(), state.forwarded.end());

  for (const ArmedExpiration& armed : state.expiration_armed) {
    const NotificationId id{armed.id};
    const SimTime when = std::max(armed.expires_at, sim_.now());
    expiration_timers_.insert_or_assign(
        armed.id,
        ExpirationTimer{
            sim_.schedule_at(when, [this, id] { on_expiration(id); }),
            armed.expires_at});
  }

  seen_read_ids_.insert(state.seen_read_ids.begin(), state.seen_read_ids.end());
  seen_sync_ids_.insert(state.seen_sync_ids.begin(), state.seen_sync_ids.end());

  old_reads_.restore(state.old_reads);
  read_times_.restore(state.read_times);
  exp_times_.restore(state.exp_times);
  arrival_times_.restore(state.arrival_times);
  queue_size_view_ = static_cast<std::size_t>(state.queue_size_view);
  rate_credit_ = state.rate_credit;
  current_day_ = state.current_day;
  forwarded_today_ = static_cast<std::size_t>(state.forwarded_today);
}

}  // namespace waif::core
