#include "core/forwarding_policy.h"

namespace waif::core {

std::string to_string(DeliveryMode mode) {
  switch (mode) {
    case DeliveryMode::kOnLine: return "on-line";
    case DeliveryMode::kOnDemand: return "on-demand";
  }
  return "unknown";
}

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kOnline: return "online";
    case PolicyKind::kOnDemand: return "on-demand";
    case PolicyKind::kBufferPrefetch: return "buffer-prefetch";
    case PolicyKind::kRatePrefetch: return "rate-prefetch";
    case PolicyKind::kAdaptive: return "adaptive";
  }
  return "unknown";
}

PolicyConfig PolicyConfig::online() {
  PolicyConfig config;
  config.kind = PolicyKind::kOnline;
  return config;
}

PolicyConfig PolicyConfig::on_demand() {
  PolicyConfig config;
  config.kind = PolicyKind::kOnDemand;
  return config;
}

PolicyConfig PolicyConfig::buffer(std::size_t limit,
                                  SimDuration expiration_threshold) {
  PolicyConfig config;
  config.kind = PolicyKind::kBufferPrefetch;
  config.prefetch_limit = limit;
  config.expiration_threshold = expiration_threshold;
  return config;
}

PolicyConfig PolicyConfig::rate(double ratio) {
  PolicyConfig config;
  config.kind = PolicyKind::kRatePrefetch;
  config.rate_ratio = ratio;
  return config;
}

PolicyConfig PolicyConfig::adaptive() {
  PolicyConfig config;
  config.kind = PolicyKind::kAdaptive;
  return config;
}

}  // namespace waif::core
