// Reliable delivery over an unreliable last hop.
//
// SimDeviceChannel is fire-and-forget: on a faulty link (net/fault.h) a
// forwarded notification can silently vanish and the proxy's bookkeeping
// (forwarded set, queue-size view) drifts from reality for good.
// ReliableDeviceChannel adds the transport machinery real push pipelines
// run on the device connection:
//
//   * per-message sequence numbers;
//   * device-side ACKs on the uplink (themselves droppable);
//   * per-message delivery timeouts with capped exponential backoff and
//     deterministic jitter;
//   * a bounded in-flight window (excess transfers queue in a backlog);
//   * device-side duplicate suppression over a sliding sequence window, so
//     a retransmission whose original did arrive is absorbed silently;
//   * graceful degradation — a transfer that exhausts its attempts (or
//     expires in flight) is handed to the failure handler, which re-queues
//     it into the proxy's holding queue instead of losing the event.
//
// Determinism: the only randomness is retry jitter, drawn from the
// channel's own seeded RNG in simulation event order; together with the
// link's seeded FaultModel a chaos run replays bit-identically at any
// --jobs count. An expired notification is never delivered: every
// transmission and every arrival re-checks expiration.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_set>

#include "common/rng.h"
#include "common/time.h"
#include "core/channel.h"
#include "core/snapshot.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/notification.h"
#include "sim/simulator.h"

namespace waif::core {

struct ReliableChannelConfig {
  /// First-attempt ACK timeout.
  SimDuration ack_timeout = 30 * kSecond;
  /// Timeout multiplier per retry.
  double backoff_factor = 2.0;
  /// Ceiling on the per-attempt timeout.
  SimDuration max_backoff = 10 * kMinute;
  /// Deterministic jitter: each armed timeout is scaled by a factor drawn
  /// uniformly from [1 - jitter, 1 + jitter]. 0 disables jitter.
  double jitter = 0.1;
  /// Transmissions per message before the transfer is abandoned.
  std::size_t max_attempts = 6;
  /// Maximum concurrently in-flight transfers; excess waits in a backlog.
  std::size_t window = 32;
  /// Device-side duplicate-suppression memory, in sequence numbers.
  std::size_t dedup_window = 4096;
  /// Backpressure: once the backlog holds this many waiting transfers the
  /// channel stops accepting() new ones (the proxy then holds events in its
  /// own rank-ordered queues, which shed canonically under a budget, rather
  /// than in this FIFO). 0 = unbounded (the default; byte-identical).
  std::size_t max_backlog = 0;
  /// Circuit breaker: consecutive exhausted transfers (ACK starvation on a
  /// live link) before the breaker trips into hold-only mode. 0 disables
  /// the breaker entirely (the default; byte-identical behaviour).
  std::size_t breaker_failure_threshold = 0;
  /// How long a tripped breaker stays open before probing half-open.
  SimDuration breaker_cooldown = 5 * kMinute;
  /// Transfers admitted while half-open; an ACK on any recloses the
  /// breaker, another exhaustion re-opens it for a fresh cooldown.
  std::size_t breaker_half_open_probes = 1;
};

/// Circuit-breaker state of a ReliableDeviceChannel: kClosed is normal
/// operation; kOpen is hold-only (the device looked persistently
/// unresponsive, nothing new is admitted); kHalfOpen admits a few probes to
/// test whether the device recovered.
enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

/// Human-readable name for logs and tables.
const char* breaker_state_name(BreakerState state);

struct ReliableChannelStats {
  /// deliver() calls admitted into the pipeline.
  std::uint64_t accepted = 0;
  /// Physical downlink transmissions, including retries.
  std::uint64_t transmissions = 0;
  /// Retransmissions (transmissions beyond each message's first).
  std::uint64_t retries = 0;
  /// Transmissions the fault model silently swallowed.
  std::uint64_t link_drops = 0;
  /// Messages/ACKs in flight when the link went down (lost mid-air).
  std::uint64_t outage_losses = 0;
  /// First-time arrivals handed to the device.
  std::uint64_t delivered = 0;
  /// Retransmission arrivals absorbed by the dedup window.
  std::uint64_t duplicates_suppressed = 0;
  /// ACKs the device transmitted.
  std::uint64_t acks_sent = 0;
  /// ACKs lost (fault model or link-down mid-flight).
  std::uint64_t ack_losses = 0;
  /// Transfers completed (ACK received by the proxy side).
  std::uint64_t acked = 0;
  /// Transfers abandoned because the notification expired undelivered.
  std::uint64_t expired_abandoned = 0;
  /// Transfers abandoned after max_attempts unacknowledged transmissions.
  std::uint64_t attempts_exhausted = 0;
  /// Abandoned transfers handed back to the failure handler.
  std::uint64_t requeued = 0;
  /// Circuit-breaker transitions: closed/half-open -> open.
  std::uint64_t breaker_trips = 0;
  /// Recoveries back to closed (an ACK while open or half-open).
  std::uint64_t breaker_closes = 0;
  /// Transfers admitted as half-open probes.
  std::uint64_t breaker_probes = 0;
};

class ReliableDeviceChannel final : public DeviceChannel {
 public:
  ReliableDeviceChannel(sim::Simulator& sim, net::Link& link,
                        device::Device& device,
                        ReliableChannelConfig config = {},
                        std::uint64_t seed = 0x52E11AB1Eull);

  /// Called with each abandoned notification (attempts exhausted); wire it
  /// to TopicState::requeue_undelivered so the event degrades into the
  /// holding queue instead of vanishing. Expired abandonments are not
  /// reported (there is nothing left to save).
  void set_failure_handler(
      std::function<void(const pubsub::NotificationPtr&)> handler);

  /// Called on every first-time delivery to the device, after the device
  /// accepted the transfer — chaos harnesses record the delivered set here
  /// to check reads against it.
  void set_delivery_observer(
      std::function<void(const pubsub::NotificationPtr&)> observer);

  /// Called when the proxy side receives the ACK completing a transfer —
  /// the durability layer journals device ACKs here, so recovery can tell
  /// confirmed deliveries from in-doubt ones.
  void set_ack_observer(
      std::function<void(const pubsub::NotificationPtr&)> observer);

  /// Durable transport state: the sequence counter and the device-side
  /// dedup window (see core/snapshot.h).
  ChannelSnapshot snapshot() const;

  /// Restores snapshot state into a fresh channel (no transfers admitted
  /// yet). The sequence counter never goes backwards.
  void restore(const ChannelSnapshot& state);

  /// Models the proxy process dying while the channel object (and any
  /// frames already in the air) survives: every in-flight transfer and the
  /// backlog are dropped — their retry timers cancelled — while the
  /// device-side dedup window and the sequence counter stay, exactly like a
  /// connection teardown. Late arrivals still land on the device (and are
  /// ACKed into the void); the recovered proxy re-drives delivery from its
  /// own durable state.
  void crash_proxy_side();

  /// Observes circuit-breaker transitions; wire a try_forwarding nudge here
  /// so held events flow again the moment the breaker recloses (the proxy
  /// is otherwise only woken by arrivals, reads and link changes).
  void set_breaker_observer(std::function<void(BreakerState)> observer);

  BreakerState breaker_state() const { return breaker_; }
  /// Exhausted transfers since the last ACK (the breaker's trip counter).
  std::size_t consecutive_failures() const { return consecutive_failures_; }

  bool link_up() const override { return link_.is_up(); }

  /// False while the breaker is open (or out of half-open probes), or while
  /// the bounded backlog is full — the hold-only degraded mode: the proxy
  /// keeps events queued on its side instead of handing them over.
  bool accepting() const override;

  /// Admits one notification into the reliable pipeline. Returns true: the
  /// transfer is now the channel's responsibility (delivery, retry, or a
  /// failure-handler callback — exactly one of these eventually happens).
  /// Callers are expected to consult accepting() first; the breaker gates
  /// admission there, never mid-delivery (do_forward's bookkeeping must
  /// match what the channel took on).
  bool deliver(const pubsub::NotificationPtr& notification) override;

  std::size_t in_flight() const { return in_flight_.size(); }
  std::size_t backlog() const { return backlog_.size(); }

  const ReliableChannelStats& stats() const { return stats_; }
  net::Link& link() { return link_; }
  device::Device& device() { return device_; }

 private:
  struct Transfer {
    pubsub::NotificationPtr event;
    std::size_t attempts = 0;          // transmissions so far
    SimDuration timeout = 0;           // current backoff stage
    bool waiting_for_link = false;     // retry deferred until link recovery
    sim::EventHandle timer;
  };

  /// Starts (or defers) the next transmission of `seq`.
  void transmit(std::uint64_t seq);
  /// Device-side arrival of transmission `seq`.
  void on_arrival(std::uint64_t seq, const pubsub::NotificationPtr& event);
  /// Proxy-side ACK arrival.
  void on_ack(std::uint64_t seq);
  /// ACK timer fired without an ACK.
  void on_timeout(std::uint64_t seq);
  /// Abandons the transfer (already erased from in_flight_ by the caller).
  void fail(Transfer transfer, bool expired);
  /// Moves backlog entries into the window while there is room.
  void admit_from_backlog();
  /// Arms the ACK timer for the transfer's current backoff stage.
  void arm_timer(std::uint64_t seq, Transfer& transfer);
  /// One exhausted transfer: counts toward the breaker threshold and trips
  /// it (or re-opens a half-open probe that failed).
  void note_exhaustion();
  /// Trips the breaker open and arms the cooldown timer.
  void trip_breaker();
  /// Cooldown elapsed: admit probes.
  void enter_half_open();
  /// ACK observed: the device is alive — reclose from any state.
  void close_breaker();

  sim::Simulator& sim_;
  net::Link& link_;
  device::Device& device_;
  ReliableChannelConfig config_;
  Rng rng_;
  std::function<void(const pubsub::NotificationPtr&)> failure_handler_;
  std::function<void(const pubsub::NotificationPtr&)> delivery_observer_;
  std::function<void(const pubsub::NotificationPtr&)> ack_observer_;
  std::function<void(BreakerState)> breaker_observer_;

  // Circuit-breaker state (transient: not snapshotted — a recovered proxy
  // re-learns a slow device from fresh evidence).
  BreakerState breaker_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
  std::size_t probes_left_ = 0;
  sim::EventHandle cooldown_timer_;

  std::uint64_t next_seq_ = 1;
  // Ordered map: link-recovery retransmissions walk it in sequence order,
  // which keeps replays deterministic.
  std::map<std::uint64_t, Transfer> in_flight_;
  std::deque<pubsub::NotificationPtr> backlog_;

  /// Device-side transport state: sequences already delivered (bounded FIFO).
  std::unordered_set<std::uint64_t> seen_;
  std::deque<std::uint64_t> seen_order_;

  ReliableChannelStats stats_;
};

}  // namespace waif::core
