// Reliable delivery over an unreliable last hop.
//
// SimDeviceChannel is fire-and-forget: on a faulty link (net/fault.h) a
// forwarded notification can silently vanish and the proxy's bookkeeping
// (forwarded set, queue-size view) drifts from reality for good.
// ReliableDeviceChannel adds the transport machinery real push pipelines
// run on the device connection:
//
//   * per-message sequence numbers;
//   * device-side ACKs on the uplink (themselves droppable);
//   * per-message delivery timeouts with capped exponential backoff and
//     deterministic jitter;
//   * a bounded in-flight window (excess transfers queue in a backlog);
//   * device-side duplicate suppression over a sliding sequence window, so
//     a retransmission whose original did arrive is absorbed silently;
//   * graceful degradation — a transfer that exhausts its attempts (or
//     expires in flight) is handed to the failure handler, which re-queues
//     it into the proxy's holding queue instead of losing the event.
//
// Determinism: the only randomness is retry jitter, drawn from the
// channel's own seeded RNG in simulation event order; together with the
// link's seeded FaultModel a chaos run replays bit-identically at any
// --jobs count. An expired notification is never delivered: every
// transmission and every arrival re-checks expiration.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_set>

#include "common/rng.h"
#include "common/time.h"
#include "core/channel.h"
#include "core/snapshot.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/notification.h"
#include "sim/simulator.h"

namespace waif::core {

struct ReliableChannelConfig {
  /// First-attempt ACK timeout.
  SimDuration ack_timeout = 30 * kSecond;
  /// Timeout multiplier per retry.
  double backoff_factor = 2.0;
  /// Ceiling on the per-attempt timeout.
  SimDuration max_backoff = 10 * kMinute;
  /// Deterministic jitter: each armed timeout is scaled by a factor drawn
  /// uniformly from [1 - jitter, 1 + jitter]. 0 disables jitter.
  double jitter = 0.1;
  /// Transmissions per message before the transfer is abandoned.
  std::size_t max_attempts = 6;
  /// Maximum concurrently in-flight transfers; excess waits in a backlog.
  std::size_t window = 32;
  /// Device-side duplicate-suppression memory, in sequence numbers.
  std::size_t dedup_window = 4096;
};

struct ReliableChannelStats {
  /// deliver() calls admitted into the pipeline.
  std::uint64_t accepted = 0;
  /// Physical downlink transmissions, including retries.
  std::uint64_t transmissions = 0;
  /// Retransmissions (transmissions beyond each message's first).
  std::uint64_t retries = 0;
  /// Transmissions the fault model silently swallowed.
  std::uint64_t link_drops = 0;
  /// Messages/ACKs in flight when the link went down (lost mid-air).
  std::uint64_t outage_losses = 0;
  /// First-time arrivals handed to the device.
  std::uint64_t delivered = 0;
  /// Retransmission arrivals absorbed by the dedup window.
  std::uint64_t duplicates_suppressed = 0;
  /// ACKs the device transmitted.
  std::uint64_t acks_sent = 0;
  /// ACKs lost (fault model or link-down mid-flight).
  std::uint64_t ack_losses = 0;
  /// Transfers completed (ACK received by the proxy side).
  std::uint64_t acked = 0;
  /// Transfers abandoned because the notification expired undelivered.
  std::uint64_t expired_abandoned = 0;
  /// Transfers abandoned after max_attempts unacknowledged transmissions.
  std::uint64_t attempts_exhausted = 0;
  /// Abandoned transfers handed back to the failure handler.
  std::uint64_t requeued = 0;
};

class ReliableDeviceChannel final : public DeviceChannel {
 public:
  ReliableDeviceChannel(sim::Simulator& sim, net::Link& link,
                        device::Device& device,
                        ReliableChannelConfig config = {},
                        std::uint64_t seed = 0x52E11AB1Eull);

  /// Called with each abandoned notification (attempts exhausted); wire it
  /// to TopicState::requeue_undelivered so the event degrades into the
  /// holding queue instead of vanishing. Expired abandonments are not
  /// reported (there is nothing left to save).
  void set_failure_handler(
      std::function<void(const pubsub::NotificationPtr&)> handler);

  /// Called on every first-time delivery to the device, after the device
  /// accepted the transfer — chaos harnesses record the delivered set here
  /// to check reads against it.
  void set_delivery_observer(
      std::function<void(const pubsub::NotificationPtr&)> observer);

  /// Called when the proxy side receives the ACK completing a transfer —
  /// the durability layer journals device ACKs here, so recovery can tell
  /// confirmed deliveries from in-doubt ones.
  void set_ack_observer(
      std::function<void(const pubsub::NotificationPtr&)> observer);

  /// Durable transport state: the sequence counter and the device-side
  /// dedup window (see core/snapshot.h).
  ChannelSnapshot snapshot() const;

  /// Restores snapshot state into a fresh channel (no transfers admitted
  /// yet). The sequence counter never goes backwards.
  void restore(const ChannelSnapshot& state);

  /// Models the proxy process dying while the channel object (and any
  /// frames already in the air) survives: every in-flight transfer and the
  /// backlog are dropped — their retry timers cancelled — while the
  /// device-side dedup window and the sequence counter stay, exactly like a
  /// connection teardown. Late arrivals still land on the device (and are
  /// ACKed into the void); the recovered proxy re-drives delivery from its
  /// own durable state.
  void crash_proxy_side();

  bool link_up() const override { return link_.is_up(); }

  /// Admits one notification into the reliable pipeline. Returns true: the
  /// transfer is now the channel's responsibility (delivery, retry, or a
  /// failure-handler callback — exactly one of these eventually happens).
  bool deliver(const pubsub::NotificationPtr& notification) override;

  std::size_t in_flight() const { return in_flight_.size(); }
  std::size_t backlog() const { return backlog_.size(); }

  const ReliableChannelStats& stats() const { return stats_; }
  net::Link& link() { return link_; }
  device::Device& device() { return device_; }

 private:
  struct Transfer {
    pubsub::NotificationPtr event;
    std::size_t attempts = 0;          // transmissions so far
    SimDuration timeout = 0;           // current backoff stage
    bool waiting_for_link = false;     // retry deferred until link recovery
    sim::EventHandle timer;
  };

  /// Starts (or defers) the next transmission of `seq`.
  void transmit(std::uint64_t seq);
  /// Device-side arrival of transmission `seq`.
  void on_arrival(std::uint64_t seq, const pubsub::NotificationPtr& event);
  /// Proxy-side ACK arrival.
  void on_ack(std::uint64_t seq);
  /// ACK timer fired without an ACK.
  void on_timeout(std::uint64_t seq);
  /// Abandons the transfer (already erased from in_flight_ by the caller).
  void fail(Transfer transfer, bool expired);
  /// Moves backlog entries into the window while there is room.
  void admit_from_backlog();
  /// Arms the ACK timer for the transfer's current backoff stage.
  void arm_timer(std::uint64_t seq, Transfer& transfer);

  sim::Simulator& sim_;
  net::Link& link_;
  device::Device& device_;
  ReliableChannelConfig config_;
  Rng rng_;
  std::function<void(const pubsub::NotificationPtr&)> failure_handler_;
  std::function<void(const pubsub::NotificationPtr&)> delivery_observer_;
  std::function<void(const pubsub::NotificationPtr&)> ack_observer_;

  std::uint64_t next_seq_ = 1;
  // Ordered map: link-recovery retransmissions walk it in sequence order,
  // which keeps replays deterministic.
  std::map<std::uint64_t, Transfer> in_flight_;
  std::deque<pubsub::NotificationPtr> backlog_;

  /// Device-side transport state: sequences already delivered (bounded FIFO).
  std::unordered_set<std::uint64_t> seen_;
  std::deque<std::uint64_t> seen_order_;

  ReliableChannelStats stats_;
};

}  // namespace waif::core
