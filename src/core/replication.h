// Proxy replication (the paper's second future-work item, Section 4): "to
// avoid making the proxy a single point of failure, we will consider
// approaches to replicating it."
//
// A ReplicatedProxy runs two warm replicas. Both receive every notification
// from the routing substrate (they are both in the fixed infrastructure), so
// their queues track each other; only the *active* replica forwards over the
// last hop. The active replica asynchronously replicates two kinds of state
// the standby cannot observe on its own:
//   - forward records ("id X is on the device"), captured by intercepting
//     the device channel;
//   - read records (queue size + read log), captured from READ/sync traffic.
// Replication is asynchronous with a configurable latency, so a failover can
// lose in-flight records; the promoted replica then re-forwards a few
// messages the device already holds — visible as duplicate receives, the
// price of asynchrony.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/channel.h"
#include "core/forwarding_policy.h"
#include "core/proxy.h"
#include "core/read_protocol.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/subscriber.h"
#include "sim/simulator.h"

namespace waif::core {

struct ReplicationConfig {
  /// One-way delay of the replication channel between the replicas.
  SimDuration replication_latency = 50 * kMillisecond;
  /// Interval between heartbeats from the active replica to the failure
  /// detector. 0 disables the detector (manual failover only): no recurring
  /// events are scheduled, so existing run-to-completion setups never block.
  SimDuration heartbeat_interval = 0;
  /// Heartbeat silence after which the detector suspects the active replica
  /// and promotes the standby. Must exceed heartbeat_interval (plus the
  /// replication latency the heartbeat rides on) when the detector is on.
  SimDuration suspicion_timeout = 0;
};

struct ReplicationStats {
  std::uint64_t replicated_forwards = 0;
  std::uint64_t replicated_reads = 0;
  std::uint64_t failovers = 0;
  /// Replication records that arrived at a replica after it had already
  /// been promoted (the asynchrony window made them redundant-or-late).
  std::uint64_t late_records = 0;
  /// Heartbeats the active replica sent.
  std::uint64_t heartbeats = 0;
  /// Failovers triggered by the failure detector (subset of `failovers`).
  std::uint64_t auto_promotions = 0;
  /// Replica crashes injected (fail_active or crash_active).
  std::uint64_t crashes = 0;
  /// Dead replicas brought back by restart_replica.
  std::uint64_t restarts = 0;
};

/// Two-replica proxy with manual or heartbeat-driven failover. Subscribe the
/// ReplicatedProxy itself at the broker; it relays notifications to every
/// live replica.
class ReplicatedProxy final : public pubsub::Subscriber {
 public:
  ReplicatedProxy(sim::Simulator& sim, net::Link& link, device::Device& device,
                  ReplicationConfig config = {});

  /// Same, but forwarding over a caller-owned channel (e.g. a
  /// ReliableDeviceChannel layered on a faulty link) instead of an internal
  /// SimDeviceChannel. `channel` must outlive the ReplicatedProxy.
  ReplicatedProxy(sim::Simulator& sim, net::Link& link, device::Device& device,
                  DeviceChannel& channel, ReplicationConfig config = {});

  /// Cancels the detector/heartbeat timers so a ReplicatedProxy can be torn
  /// down while its simulator still runs.
  ~ReplicatedProxy() override;

  /// Configures a topic on both replicas and registers the device-side
  /// threshold for retraction handling.
  void add_topic(const std::string& topic, TopicConfig config);

  // --- substrate side -------------------------------------------------------
  void on_notification(const pubsub::NotificationPtr& notification) override;

  // --- device side -----------------------------------------------------------
  /// One user read, served by the active replica (deferring a sync while the
  /// link is down, like LastHopSession).
  std::vector<pubsub::NotificationPtr> user_read(const std::string& topic);

  // --- failure injection -----------------------------------------------------
  /// Crashes the active replica and promotes the standby immediately
  /// (manual failover). Throws std::logic_error with no live standby.
  void fail_active();

  /// Crashes the active replica *without* promoting anyone: the crashed
  /// replica just goes silent. With the failure detector enabled the standby
  /// is promoted automatically once heartbeat silence reaches the suspicion
  /// timeout; until then the last hop is headless (reads are served from the
  /// device's local queue only).
  void crash_active();

  /// Brings a crashed replica back as a fresh standby: a new Proxy with the
  /// recorded topic configuration. Without a recovery hook it rejoins cold
  /// (empty queues, re-warming from the live feed); with set_recovery the
  /// hook's warm_restart fills it from durable snapshot+WAL state first.
  void restart_replica(std::size_t index);

  /// Wires a durability layer (storage::ProxyPersistence) into failover:
  /// on_promoted runs when the standby takes the active role (so the journal
  /// can follow the active replica), warm_restart runs inside
  /// restart_replica after the topics are configured. Pass nullptr to
  /// detach; the hook must outlive the proxy otherwise.
  void set_recovery(ProxyRecovery* recovery) { recovery_ = recovery; }

  bool primary_is_active() const { return active_ == 0; }
  bool active_is_alive() const { return replicas_[active_].alive; }
  bool replica_alive(std::size_t index) const {
    return index < 2 && replicas_[index].alive;
  }
  /// Live replicas remaining.
  std::size_t live_replicas() const;

  Proxy& active_proxy() { return *replicas_[active_].proxy; }
  Proxy& standby_proxy() { return *replicas_[1 - active_].proxy; }

  const ReplicationStats& stats() const { return stats_; }

 private:
  /// Channel wrapper: only the active replica's channel passes traffic; every
  /// successful delivery is captured for replication.
  class ReplicaChannel final : public DeviceChannel {
   public:
    ReplicaChannel(ReplicatedProxy& owner, std::size_t index)
        : owner_(owner), index_(index) {}

    bool link_up() const override {
      return owner_.active_ == index_ && owner_.real_channel_.link_up();
    }
    bool accepting() const override {
      // The standby never transfers, so it must not hold its queues when the
      // real channel's breaker opens; only the active mirrors the breaker.
      return owner_.active_ != index_ || owner_.real_channel_.accepting();
    }
    bool deliver(const pubsub::NotificationPtr& notification) override {
      const bool accepted = owner_.real_channel_.deliver(notification);
      owner_.replicate_forward(index_, notification);
      return accepted;
    }

   private:
    ReplicatedProxy& owner_;
    std::size_t index_;
  };

  struct Replica {
    std::unique_ptr<ReplicaChannel> channel;
    std::unique_ptr<Proxy> proxy;
    bool alive = true;
  };

  void replicate_forward(std::size_t from,
                         const pubsub::NotificationPtr& notification);
  void replicate_read(std::size_t from, const std::string& topic,
                      std::size_t queue_size, const ReadRecord& record);
  void send_read(const std::string& topic, TopicState& state);
  void flush_pending_syncs();
  /// Shared constructor body: builds the replicas and wires the link.
  void init();
  /// Switches the active role to the standby and wakes it.
  void promote_standby();
  /// Starts the recurring heartbeat/detector events (detector enabled only).
  void start_failure_detector();
  void schedule_heartbeat();
  void schedule_detector();
  /// Detector tick: promotes the standby after sustained heartbeat silence.
  void check_active_liveness();

  sim::Simulator& sim_;
  net::Link& link_;
  device::Device& device_;
  /// Set when this ReplicatedProxy owns its forwarding channel (the plain
  /// SimDeviceChannel constructor); null when the caller supplied one.
  std::unique_ptr<DeviceChannel> owned_channel_;
  DeviceChannel& real_channel_;
  ReplicationConfig config_;
  Replica replicas_[2];
  std::size_t active_ = 0;
  /// Topic configuration, recorded so restart_replica can rebuild a proxy.
  std::vector<std::pair<std::string, TopicConfig>> topic_configs_;
  /// Failure-detector state: when the last heartbeat *arrived*.
  SimTime last_active_heartbeat_ = 0;
  sim::EventHandle heartbeat_timer_;
  sim::EventHandle detector_timer_;
  /// Device-side log of offline reads per topic (survives failovers: it
  /// lives on the device, not on a proxy).
  std::map<std::string, std::vector<ReadRecord>> pending_sync_;
  ProxyRecovery* recovery_ = nullptr;
  ReplicationStats stats_;
};

}  // namespace waif::core
