// Proxy replication (the paper's second future-work item, Section 4): "to
// avoid making the proxy a single point of failure, we will consider
// approaches to replicating it."
//
// A ReplicatedProxy runs two warm replicas. Both receive every notification
// from the routing substrate (they are both in the fixed infrastructure), so
// their queues track each other; only the *active* replica forwards over the
// last hop. The active replica asynchronously replicates two kinds of state
// the standby cannot observe on its own:
//   - forward records ("id X is on the device"), captured by intercepting
//     the device channel;
//   - read records (queue size + read log), captured from READ/sync traffic.
// Replication is asynchronous with a configurable latency, so a failover can
// lose in-flight records; the promoted replica then re-forwards a few
// messages the device already holds — visible as duplicate receives, the
// price of asynchrony.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/channel.h"
#include "core/forwarding_policy.h"
#include "core/proxy.h"
#include "core/read_protocol.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/subscriber.h"
#include "sim/simulator.h"

namespace waif::core {

struct ReplicationConfig {
  /// One-way delay of the replication channel between the replicas.
  SimDuration replication_latency = 50 * kMillisecond;
};

struct ReplicationStats {
  std::uint64_t replicated_forwards = 0;
  std::uint64_t replicated_reads = 0;
  std::uint64_t failovers = 0;
  /// Replication records that arrived at a replica after it had already
  /// been promoted (the asynchrony window made them redundant-or-late).
  std::uint64_t late_records = 0;
};

/// Two-replica proxy with manual failover. Subscribe the ReplicatedProxy
/// itself at the broker; it relays notifications to every live replica.
class ReplicatedProxy final : public pubsub::Subscriber {
 public:
  ReplicatedProxy(sim::Simulator& sim, net::Link& link, device::Device& device,
                  ReplicationConfig config = {});

  /// Configures a topic on both replicas and registers the device-side
  /// threshold for retraction handling.
  void add_topic(const std::string& topic, TopicConfig config);

  // --- substrate side -------------------------------------------------------
  void on_notification(const pubsub::NotificationPtr& notification) override;

  // --- device side -----------------------------------------------------------
  /// One user read, served by the active replica (deferring a sync while the
  /// link is down, like LastHopSession).
  std::vector<pubsub::NotificationPtr> user_read(const std::string& topic);

  // --- failure injection -----------------------------------------------------
  /// Crashes the active replica and promotes the standby. The crashed
  /// replica stops receiving notifications and never comes back.
  void fail_active();

  bool primary_is_active() const { return active_ == 0; }
  /// Live replicas remaining (2, then 1 after a failover).
  std::size_t live_replicas() const;

  Proxy& active_proxy() { return *replicas_[active_].proxy; }
  Proxy& standby_proxy() { return *replicas_[1 - active_].proxy; }

  const ReplicationStats& stats() const { return stats_; }

 private:
  /// Channel wrapper: only the active replica's channel passes traffic; every
  /// successful delivery is captured for replication.
  class ReplicaChannel final : public DeviceChannel {
   public:
    ReplicaChannel(ReplicatedProxy& owner, std::size_t index)
        : owner_(owner), index_(index) {}

    bool link_up() const override {
      return owner_.active_ == index_ && owner_.real_channel_.link_up();
    }
    bool deliver(const pubsub::NotificationPtr& notification) override {
      const bool accepted = owner_.real_channel_.deliver(notification);
      owner_.replicate_forward(index_, notification);
      return accepted;
    }

   private:
    ReplicatedProxy& owner_;
    std::size_t index_;
  };

  struct Replica {
    std::unique_ptr<ReplicaChannel> channel;
    std::unique_ptr<Proxy> proxy;
    bool alive = true;
  };

  void replicate_forward(std::size_t from,
                         const pubsub::NotificationPtr& notification);
  void replicate_read(std::size_t from, const std::string& topic,
                      std::size_t queue_size, const ReadRecord& record);
  void send_read(const std::string& topic, TopicState& state);
  void flush_pending_syncs();

  sim::Simulator& sim_;
  net::Link& link_;
  device::Device& device_;
  SimDeviceChannel real_channel_;
  ReplicationConfig config_;
  Replica replicas_[2];
  std::size_t active_ = 0;
  /// Device-side log of offline reads per topic (survives failovers: it
  /// lives on the device, not on a proxy).
  std::map<std::string, std::vector<ReadRecord>> pending_sync_;
  ReplicationStats stats_;
};

}  // namespace waif::core
