#include "core/channel.h"

#include "common/check.h"

namespace waif::core {

SimDeviceChannel::SimDeviceChannel(net::Link& link, device::Device& device)
    : link_(link), device_(device) {}

bool SimDeviceChannel::link_up() const { return link_.is_up(); }

bool SimDeviceChannel::deliver(const pubsub::NotificationPtr& notification) {
  WAIF_CHECK(link_.is_up());
  // A notification transfer is one downlink message; size is the payload
  // plus a small fixed header.
  constexpr std::size_t kHeaderBytes = 64;
  link_.record_downlink(kHeaderBytes + notification->payload.size());
  // On a faulty link the bytes are spent either way, but the message may
  // silently vanish — this channel is fire-and-forget (no retransmission;
  // fault latency is ignored because nobody waits for an acknowledgement).
  // ReliableDeviceChannel is the layer that survives this.
  if (!link_.downlink_passes()) return false;
  return device_.receive(notification);
}

}  // namespace waif::core
