// The rank-ordered queue lives in pubsub (device buffers use it too); the
// proxy's code and tests refer to it through this alias.
#pragma once

#include "pubsub/ranked_queue.h"

namespace waif::core {

using pubsub::RankedQueue;
using pubsub::top_n_across;

}  // namespace waif::core
