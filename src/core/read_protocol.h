// The device -> proxy READ protocol (Section 3.5).
//
// "Essentially, a read is not a request for more data, but a request for
// 'better' data if it exists": the device reports what it already holds and
// the proxy forwards only the difference that improves the device's set.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace waif::core {

struct ReadRequest {
  /// Protocol-level request id (0 = unstamped). On an unreliable uplink the
  /// same READ may be retransmitted; the proxy uses the id to make handling
  /// idempotent (moving averages train once, the difference is computed
  /// once) while still refreshing the queue-size view.
  std::uint64_t request_id = 0;
  /// Number of items the user wants to read (usually the subscription Max).
  int n = 0;
  /// Messages currently in the queue on the client device, including any of
  /// the n it is requesting.
  std::size_t queue_size = 0;
  /// Between 0 and n ids: the highest-ranked events already on the device.
  std::vector<NotificationId> client_events;
};

/// One read the device performed while the link was down, reported to the
/// proxy at reconnection so its moving averages (prefetch limit, expiration
/// threshold, consumption rate) keep tracking the user's true behaviour.
struct ReadRecord {
  SimTime time = 0;
  int n = 0;
};

/// Why a READ (or sync) was rejected at the protocol boundary. The proxy
/// faces an untrusted device: a malformed request must produce a protocol
/// error, not a crashed proxy. Unknown ids in client_events stay tolerated
/// by design — the proxy treats them as top-ranked, which only *reduces*
/// what it forwards, so they cannot be used to extract extra data.
enum class ReadStatus : std::uint8_t {
  kOk = 0,
  /// n negative or past kMaxReadN.
  kBadN = 1,
  /// queue_size past kMaxReadQueueSize (no real device holds that many).
  kBadQueueSize = 2,
  /// More client_events than the n the request asks for.
  kTooManyClientEvents = 3,
  /// The same id listed twice in client_events.
  kDuplicateClientEvent = 4,
  /// The proxy does not manage the addressed topic (Proxy::try_read).
  kUnknownTopic = 5,
};

/// Largest n a READ may request; far above any real subscription Max.
inline constexpr int kMaxReadN = 1 << 16;
/// Largest queue_size a device may report.
inline constexpr std::size_t kMaxReadQueueSize = std::size_t{1} << 24;

/// Validates the wire-level fields of a READ. Pure; no proxy state touched.
inline ReadStatus validate_read(const ReadRequest& request) {
  if (request.n < 0 || request.n > kMaxReadN) return ReadStatus::kBadN;
  if (request.queue_size > kMaxReadQueueSize) return ReadStatus::kBadQueueSize;
  if (request.client_events.size() > static_cast<std::size_t>(request.n))
    return ReadStatus::kTooManyClientEvents;
  if (request.client_events.size() > 1) {
    std::vector<std::uint64_t> ids;
    ids.reserve(request.client_events.size());
    for (const NotificationId& id : request.client_events)
      ids.push_back(id.value);
    std::sort(ids.begin(), ids.end());
    if (std::adjacent_find(ids.begin(), ids.end()) != ids.end())
      return ReadStatus::kDuplicateClientEvent;
  }
  return ReadStatus::kOk;
}

/// Human-readable name for logs and tests.
inline const char* read_status_name(ReadStatus status) {
  switch (status) {
    case ReadStatus::kOk: return "ok";
    case ReadStatus::kBadN: return "bad-n";
    case ReadStatus::kBadQueueSize: return "bad-queue-size";
    case ReadStatus::kTooManyClientEvents: return "too-many-client-events";
    case ReadStatus::kDuplicateClientEvent: return "duplicate-client-event";
    case ReadStatus::kUnknownTopic: return "unknown-topic";
  }
  return "?";
}

}  // namespace waif::core
