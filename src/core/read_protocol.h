// The device -> proxy READ protocol (Section 3.5).
//
// "Essentially, a read is not a request for more data, but a request for
// 'better' data if it exists": the device reports what it already holds and
// the proxy forwards only the difference that improves the device's set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace waif::core {

struct ReadRequest {
  /// Protocol-level request id (0 = unstamped). On an unreliable uplink the
  /// same READ may be retransmitted; the proxy uses the id to make handling
  /// idempotent (moving averages train once, the difference is computed
  /// once) while still refreshing the queue-size view.
  std::uint64_t request_id = 0;
  /// Number of items the user wants to read (usually the subscription Max).
  int n = 0;
  /// Messages currently in the queue on the client device, including any of
  /// the n it is requesting.
  std::size_t queue_size = 0;
  /// Between 0 and n ids: the highest-ranked events already on the device.
  std::vector<NotificationId> client_events;
};

/// One read the device performed while the link was down, reported to the
/// proxy at reconnection so its moving averages (prefetch limit, expiration
/// threshold, consumption rate) keep tracking the user's true behaviour.
struct ReadRecord {
  SimTime time = 0;
  int n = 0;
};

}  // namespace waif::core
