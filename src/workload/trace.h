// Replayable event traces.
//
// A Trace is the fully materialized randomness of one scenario: every
// notification arrival (with rank and lifetime), every user read instant,
// every outage interval and every later rank change. The experiment harness
// generates ONE trace per (config, seed) and replays it under each forwarding
// policy, which is how the paper compares a policy's read set against the
// on-line baseline "for each randomized set of discrete events".
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "net/outage.h"
#include "workload/scenario.h"

namespace waif::workload {

struct Arrival {
  SimTime time = 0;
  double rank = 0.0;
  /// kNever when the publisher attached no expiration.
  SimDuration lifetime = kNever;
};

struct RankChange {
  SimTime time = 0;
  /// Index into Trace::arrivals of the affected event.
  std::size_t arrival_index = 0;
  double new_rank = 0.0;
};

struct Trace {
  std::vector<Arrival> arrivals;        // sorted by time
  std::vector<SimTime> reads;           // sorted
  std::vector<RankChange> rank_changes; // sorted by time
  net::OutageSchedule outages;
  SimTime horizon = 0;
};

/// Poisson arrivals at config.event_frequency per day with ranks and
/// (optionally) expirations.
std::vector<Arrival> generate_arrivals(const ScenarioConfig& config, Rng& rng);

/// Daily read instants inside the awake window; see ScenarioConfig.
std::vector<SimTime> generate_reads(const ScenarioConfig& config, Rng& rng);

/// Alternating up/down renewal process calibrated to config.outage_fraction.
net::OutageSchedule generate_outages(const ScenarioConfig& config, Rng& rng);

/// Later rank drops/raises for a subset of `arrivals`.
std::vector<RankChange> generate_rank_changes(const ScenarioConfig& config,
                                              const std::vector<Arrival>& arrivals,
                                              Rng& rng);

/// The full trace. Each component draws from an independent RNG stream split
/// off `seed`, so e.g. changing the outage parameters does not perturb the
/// arrival sequence.
Trace generate_trace(const ScenarioConfig& config, std::uint64_t seed);

}  // namespace waif::workload
