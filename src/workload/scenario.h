// Scenario configuration: the knobs of the paper's simulator (Section 3).
//
// "During initialization the simulator is populated with three types of
// events: notification arrivals, user reads, network outages." A
// ScenarioConfig captures the parameters of all three plus the subscription's
// volume limits; trace.h turns one into a concrete, replayable event trace.
#pragma once

#include <cstdint>

#include "common/distributions.h"
#include "common/time.h"
#include "net/fault.h"
#include "pubsub/notification.h"

namespace waif::workload {

struct ScenarioConfig {
  // --- notification arrivals ---------------------------------------------
  /// Events per day on the topic, arriving as a Poisson process.
  double event_frequency = 32.0;
  /// Publisher ranks are uniform on [rank_lo, rank_hi].
  double rank_lo = pubsub::kMinRank;
  double rank_hi = pubsub::kMaxRank;
  /// Portion of events carrying an expiration (0 disables expirations even
  /// when mean_expiration is set).
  double expiring_fraction = 1.0;
  /// Mean lifetime of expiring events; 0 means no event ever expires.
  SimDuration mean_expiration = 0;
  DurationShape expiration_shape = DurationShape::kExponential;

  // --- rank changes (Section 3.4) -----------------------------------------
  /// Portion of events whose rank later drops (e.g. retracted spam).
  double rank_drop_fraction = 0.0;
  /// Mean delay from publish to the rank drop (exponential).
  SimDuration mean_rank_drop_delay = kHour;
  /// The rank assigned by a drop.
  double dropped_rank = pubsub::kMinRank;
  /// Portion of events whose rank is later boosted by recommendations.
  double rank_raise_fraction = 0.0;
  SimDuration mean_rank_raise_delay = kHour;

  // --- user reads ----------------------------------------------------------
  /// Reads per day; per-day counts are normal around this (sigma = uf/4),
  /// fractional frequencies accumulate across days (0.25 = every 4th day).
  double user_frequency = 2.0;
  /// Reads fall in a daily awake window of [16h, 17h], starting around 7am
  /// (start jittered by +-30 min) — "the 16- to 17-hour period, also slightly
  /// randomized, that the user is awake".
  SimDuration awake_start_mean = 7 * kHour;
  SimDuration awake_start_jitter = 30 * kMinute;

  // --- subscription volume limits ------------------------------------------
  /// Max: at most this many messages are read at a time.
  int max = 8;
  /// Threshold: only messages with rank at or above this are read.
  double threshold = pubsub::kMinRank;

  // --- network outages -------------------------------------------------------
  /// Target fraction of the run spent down, 0..1.
  double outage_fraction = 0.0;
  /// Mean outage duration; starts are Poisson, durations log-normal
  /// ("Poisson distribution with high variance").
  SimDuration mean_outage = 4 * kHour;
  /// Sigma of the log-normal outage duration.
  double outage_sigma = 1.0;

  // --- last-hop faults (net/fault.h) ---------------------------------------
  /// Silent loss, burst loss, half-open windows and delivery latency on the
  /// last hop. All-zero (the default) disables the fault model entirely and
  /// the run takes the exact fire-and-forget path it took before faults
  /// existed; any non-zero parameter switches the experiment runner to the
  /// reliable delivery channel (core/reliable_channel.h).
  net::FaultConfig fault;
  /// Seed splitmix-derived into the fault model's RNG stream and the
  /// reliable channel's retry-jitter stream.
  std::uint64_t fault_seed = 0x0FA17B175ull;

  // --- run ------------------------------------------------------------------
  /// "Each experimental run lasted for one 'virtual' year."
  SimTime horizon = kYear;
};

}  // namespace waif::workload
