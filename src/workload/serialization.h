// Text serialization for scenarios and traces.
//
// A Trace written to disk pins an experiment's exact inputs — every arrival,
// read, outage and rank change — so a run can be shared and replayed
// bit-for-bit elsewhere. Scenario configs use a simple `key value` line
// format for the same reason.
//
// Trace format (line-oriented, '#' comments):
//   waif-trace v1
//   horizon <microseconds>
//   arrival <time> <rank> <lifetime|never>
//   read <time>
//   outage <start> <end>
//   rankchange <time> <arrival-index> <new-rank>
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "workload/scenario.h"
#include "workload/trace.h"

namespace waif::workload {

/// Writes `trace` in the text format above.
void write_trace(std::ostream& out, const Trace& trace);

/// Parses a trace; throws std::invalid_argument with a line number on
/// malformed input. Events are normalized (sorted) on load.
Trace read_trace(std::istream& in);

/// Writes a scenario as `key value` lines (all fields, defaults included).
void write_scenario(std::ostream& out, const ScenarioConfig& config);

/// Parses a scenario written by write_scenario (unknown keys, duplicate
/// keys, trailing garbage and out-of-range values are errors; missing keys
/// keep their defaults). Durations are in microseconds. Throws
/// std::invalid_argument with a line number on malformed input.
ScenarioConfig read_scenario(std::istream& in);

/// Rejects a scenario whose values a generated trace could not honor
/// (negative rates or durations, fractions outside [0, 1], ranks outside
/// [kMinRank, kMaxRank], a non-positive horizon) by throwing
/// std::invalid_argument. read_scenario calls this; flag-built configs can
/// call it directly.
void validate_scenario(const ScenarioConfig& config);

/// Canonical byte encoding folded into a 64-bit FNV-1a digest.
///
/// The encoding is platform-independent by construction: integers feed the
/// hash little-endian byte by byte, doubles feed their IEEE-754 bit pattern
/// (so 0.1 + 0.2 and 0.3 digest differently — "close enough" is exactly what
/// a determinism check must reject), strings are length-prefixed. Callers
/// define a fixed field order and sort any unordered containers; equal
/// digests then certify byte-identical values. Used by the parallel sweep
/// executor to compare parallel results against sequential ones.
class CanonicalDigest {
 public:
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void f64(double value);
  void str(std::string_view text);

  /// The digest of everything fed so far.
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;  // FNV-1a offset basis
};

/// Digest of a trace's full event content (arrivals, reads, outages, rank
/// changes, horizon) — pins a generated workload across platforms.
std::uint64_t digest_trace(const Trace& trace);

}  // namespace waif::workload
