// Text serialization for scenarios and traces.
//
// A Trace written to disk pins an experiment's exact inputs — every arrival,
// read, outage and rank change — so a run can be shared and replayed
// bit-for-bit elsewhere. Scenario configs use a simple `key value` line
// format for the same reason.
//
// Trace format (line-oriented, '#' comments):
//   waif-trace v1
//   horizon <microseconds>
//   arrival <time> <rank> <lifetime|never>
//   read <time>
//   outage <start> <end>
//   rankchange <time> <arrival-index> <new-rank>
#pragma once

#include <iosfwd>
#include <string>

#include "workload/scenario.h"
#include "workload/trace.h"

namespace waif::workload {

/// Writes `trace` in the text format above.
void write_trace(std::ostream& out, const Trace& trace);

/// Parses a trace; throws std::invalid_argument with a line number on
/// malformed input. Events are normalized (sorted) on load.
Trace read_trace(std::istream& in);

/// Writes a scenario as `key value` lines (all fields, defaults included).
void write_scenario(std::ostream& out, const ScenarioConfig& config);

/// Parses a scenario written by write_scenario (unknown keys are errors,
/// missing keys keep their defaults). Durations are in microseconds.
ScenarioConfig read_scenario(std::istream& in);

}  // namespace waif::workload
