#include "workload/serialization.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/distributions.h"
#include "pubsub/notification.h"

namespace waif::workload {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + message);
}

/// A line must be fully consumed by its keyword's fields; leftover tokens
/// mean the file is not what it claims to be.
void expect_consumed(std::istringstream& fields, std::size_t line) {
  std::string extra;
  if (fields >> extra) fail(line, "trailing garbage '" + extra + "'");
}

bool valid_rank(double rank) {
  return rank >= pubsub::kMinRank && rank <= pubsub::kMaxRank;  // NaN fails both
}

}  // namespace

void write_trace(std::ostream& out, const Trace& trace) {
  // Full round-trip precision for ranks.
  const std::streamsize old_precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  out << "waif-trace v1\n";
  out << "horizon " << trace.horizon << "\n";
  for (const Arrival& arrival : trace.arrivals) {
    out << "arrival " << arrival.time << ' ' << arrival.rank << ' ';
    if (arrival.lifetime == kNever) {
      out << "never";
    } else {
      out << arrival.lifetime;
    }
    out << "\n";
  }
  for (SimTime read : trace.reads) out << "read " << read << "\n";
  for (const net::Outage& outage : trace.outages.outages()) {
    out << "outage " << outage.start << ' ' << outage.end << "\n";
  }
  for (const RankChange& change : trace.rank_changes) {
    out << "rankchange " << change.time << ' ' << change.arrival_index << ' '
        << change.new_rank << "\n";
  }
  out.precision(old_precision);
}

Trace read_trace(std::istream& in) {
  Trace trace;
  std::vector<net::Outage> outages;
  std::string line;
  std::size_t line_number = 0;
  bool have_header = false;
  bool have_horizon = false;

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (!have_header) {
      std::string version;
      fields >> version;
      if (keyword != "waif-trace" || version != "v1") {
        fail(line_number, "expected header 'waif-trace v1'");
      }
      have_header = true;
      expect_consumed(fields, line_number);
      continue;
    }
    if (keyword == "horizon") {
      if (have_horizon) fail(line_number, "duplicate horizon");
      if (!(fields >> trace.horizon) || trace.horizon < 0) {
        fail(line_number, "bad horizon");
      }
      have_horizon = true;
    } else if (keyword == "arrival") {
      Arrival arrival;
      std::string lifetime;
      if (!(fields >> arrival.time >> arrival.rank >> lifetime)) {
        fail(line_number, "bad arrival");
      }
      if (arrival.time < 0) fail(line_number, "negative arrival time");
      if (!valid_rank(arrival.rank)) {
        fail(line_number, "arrival rank outside [0, 5]");
      }
      if (lifetime == "never") {
        arrival.lifetime = kNever;
      } else {
        try {
          arrival.lifetime = std::stoll(lifetime);
        } catch (const std::exception&) {
          fail(line_number, "bad arrival lifetime");
        }
        if (arrival.lifetime < 0) {
          fail(line_number, "negative arrival lifetime");
        }
      }
      trace.arrivals.push_back(arrival);
    } else if (keyword == "read") {
      SimTime at = 0;
      if (!(fields >> at)) fail(line_number, "bad read");
      if (at < 0) fail(line_number, "negative read time");
      trace.reads.push_back(at);
    } else if (keyword == "outage") {
      net::Outage outage{};
      if (!(fields >> outage.start >> outage.end)) {
        fail(line_number, "bad outage");
      }
      if (outage.start < 0) fail(line_number, "negative outage start");
      if (outage.end <= outage.start) {
        fail(line_number, "outage must end after it starts");
      }
      outages.push_back(outage);
    } else if (keyword == "rankchange") {
      RankChange change;
      if (!(fields >> change.time >> change.arrival_index >> change.new_rank)) {
        fail(line_number, "bad rankchange");
      }
      if (change.time < 0) fail(line_number, "negative rankchange time");
      if (!valid_rank(change.new_rank)) {
        fail(line_number, "rankchange rank outside [0, 5]");
      }
      trace.rank_changes.push_back(change);
    } else {
      fail(line_number, "unknown keyword '" + keyword + "'");
    }
    expect_consumed(fields, line_number);
  }
  if (!have_header) fail(line_number, "missing header");
  if (!have_horizon) fail(line_number, "missing horizon");

  std::sort(trace.arrivals.begin(), trace.arrivals.end(),
            [](const Arrival& a, const Arrival& b) { return a.time < b.time; });
  std::sort(trace.reads.begin(), trace.reads.end());
  std::sort(trace.rank_changes.begin(), trace.rank_changes.end(),
            [](const RankChange& a, const RankChange& b) {
              return a.time < b.time;
            });
  for (const RankChange& change : trace.rank_changes) {
    if (change.arrival_index >= trace.arrivals.size()) {
      throw std::invalid_argument("rankchange index out of range");
    }
  }
  trace.outages = net::OutageSchedule(std::move(outages), trace.horizon);
  return trace;
}

void write_scenario(std::ostream& out, const ScenarioConfig& config) {
  const std::streamsize old_precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  out << "event_frequency " << config.event_frequency << "\n";
  out << "rank_lo " << config.rank_lo << "\n";
  out << "rank_hi " << config.rank_hi << "\n";
  out << "expiring_fraction " << config.expiring_fraction << "\n";
  out << "mean_expiration " << config.mean_expiration << "\n";
  out << "expiration_shape " << to_string(config.expiration_shape) << "\n";
  out << "rank_drop_fraction " << config.rank_drop_fraction << "\n";
  out << "mean_rank_drop_delay " << config.mean_rank_drop_delay << "\n";
  out << "dropped_rank " << config.dropped_rank << "\n";
  out << "rank_raise_fraction " << config.rank_raise_fraction << "\n";
  out << "mean_rank_raise_delay " << config.mean_rank_raise_delay << "\n";
  out << "user_frequency " << config.user_frequency << "\n";
  out << "awake_start_mean " << config.awake_start_mean << "\n";
  out << "awake_start_jitter " << config.awake_start_jitter << "\n";
  out << "max " << config.max << "\n";
  out << "threshold " << config.threshold << "\n";
  out << "outage_fraction " << config.outage_fraction << "\n";
  out << "mean_outage " << config.mean_outage << "\n";
  out << "outage_sigma " << config.outage_sigma << "\n";
  out << "fault_drop_probability " << config.fault.drop_probability << "\n";
  out << "fault_burst_start_probability "
      << config.fault.burst_start_probability << "\n";
  out << "fault_mean_burst_length " << config.fault.mean_burst_length << "\n";
  out << "fault_half_open_probability " << config.fault.half_open_probability
      << "\n";
  out << "fault_mean_half_open " << config.fault.mean_half_open << "\n";
  out << "fault_base_latency " << config.fault.base_latency << "\n";
  out << "fault_mean_latency_jitter " << config.fault.mean_latency_jitter
      << "\n";
  out << "fault_uplink_drop_probability "
      << config.fault.uplink_drop_probability << "\n";
  out << "fault_seed " << config.fault_seed << "\n";
  out << "horizon " << config.horizon << "\n";
  out.precision(old_precision);
}

ScenarioConfig read_scenario(std::istream& in) {
  ScenarioConfig config;
  std::map<std::string, std::function<void(std::istringstream&)>> setters;
  auto set_double = [](double* target) {
    return [target](std::istringstream& fields) { fields >> *target; };
  };
  auto set_int64 = [](std::int64_t* target) {
    return [target](std::istringstream& fields) { fields >> *target; };
  };
  auto set_int = [](int* target) {
    return [target](std::istringstream& fields) { fields >> *target; };
  };
  setters["event_frequency"] = set_double(&config.event_frequency);
  setters["rank_lo"] = set_double(&config.rank_lo);
  setters["rank_hi"] = set_double(&config.rank_hi);
  setters["expiring_fraction"] = set_double(&config.expiring_fraction);
  setters["mean_expiration"] = set_int64(&config.mean_expiration);
  setters["expiration_shape"] = [&config](std::istringstream& fields) {
    std::string shape;
    fields >> shape;
    config.expiration_shape = parse_duration_shape(shape);
  };
  setters["rank_drop_fraction"] = set_double(&config.rank_drop_fraction);
  setters["mean_rank_drop_delay"] = set_int64(&config.mean_rank_drop_delay);
  setters["dropped_rank"] = set_double(&config.dropped_rank);
  setters["rank_raise_fraction"] = set_double(&config.rank_raise_fraction);
  setters["mean_rank_raise_delay"] = set_int64(&config.mean_rank_raise_delay);
  setters["user_frequency"] = set_double(&config.user_frequency);
  setters["awake_start_mean"] = set_int64(&config.awake_start_mean);
  setters["awake_start_jitter"] = set_int64(&config.awake_start_jitter);
  setters["max"] = set_int(&config.max);
  setters["threshold"] = set_double(&config.threshold);
  setters["outage_fraction"] = set_double(&config.outage_fraction);
  setters["mean_outage"] = set_int64(&config.mean_outage);
  setters["outage_sigma"] = set_double(&config.outage_sigma);
  setters["fault_drop_probability"] =
      set_double(&config.fault.drop_probability);
  setters["fault_burst_start_probability"] =
      set_double(&config.fault.burst_start_probability);
  setters["fault_mean_burst_length"] =
      set_double(&config.fault.mean_burst_length);
  setters["fault_half_open_probability"] =
      set_double(&config.fault.half_open_probability);
  setters["fault_mean_half_open"] = set_int64(&config.fault.mean_half_open);
  setters["fault_base_latency"] = set_int64(&config.fault.base_latency);
  setters["fault_mean_latency_jitter"] =
      set_int64(&config.fault.mean_latency_jitter);
  setters["fault_uplink_drop_probability"] =
      set_double(&config.fault.uplink_drop_probability);
  setters["fault_seed"] = [&config](std::istringstream& fields) {
    fields >> config.fault_seed;
  };
  setters["horizon"] = set_int64(&config.horizon);

  std::string line;
  std::size_t line_number = 0;
  std::set<std::string> seen;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    auto setter = setters.find(key);
    if (setter == setters.end()) {
      fail(line_number, "unknown scenario key '" + key + "'");
    }
    if (!seen.insert(key).second) {
      fail(line_number, "duplicate scenario key '" + key + "'");
    }
    try {
      setter->second(fields);
    } catch (const std::invalid_argument& error) {
      fail(line_number, error.what());
    }
    if (fields.fail()) fail(line_number, "bad value for '" + key + "'");
    expect_consumed(fields, line_number);
  }
  validate_scenario(config);
  return config;
}

void validate_scenario(const ScenarioConfig& config) {
  auto require = [](bool ok, const std::string& message) {
    if (!ok) throw std::invalid_argument("scenario: " + message);
  };
  auto fraction = [&require](double value, const std::string& name) {
    require(value >= 0.0 && value <= 1.0, name + " must be in [0, 1]");
  };
  auto rank = [&require](double value, const std::string& name) {
    require(valid_rank(value), name + " must be in [0, 5]");
  };
  require(config.event_frequency >= 0.0, "event_frequency must be >= 0");
  require(config.user_frequency >= 0.0, "user_frequency must be >= 0");
  rank(config.rank_lo, "rank_lo");
  rank(config.rank_hi, "rank_hi");
  require(config.rank_lo <= config.rank_hi, "rank_lo must be <= rank_hi");
  rank(config.dropped_rank, "dropped_rank");
  rank(config.threshold, "threshold");
  fraction(config.expiring_fraction, "expiring_fraction");
  fraction(config.rank_drop_fraction, "rank_drop_fraction");
  fraction(config.rank_raise_fraction, "rank_raise_fraction");
  fraction(config.outage_fraction, "outage_fraction");
  fraction(config.fault.drop_probability, "fault_drop_probability");
  fraction(config.fault.burst_start_probability,
           "fault_burst_start_probability");
  fraction(config.fault.half_open_probability, "fault_half_open_probability");
  fraction(config.fault.uplink_drop_probability,
           "fault_uplink_drop_probability");
  require(config.max >= 1, "max must be >= 1");
  require(config.mean_expiration >= 0, "mean_expiration must be >= 0");
  require(config.mean_rank_drop_delay >= 0,
          "mean_rank_drop_delay must be >= 0");
  require(config.mean_rank_raise_delay >= 0,
          "mean_rank_raise_delay must be >= 0");
  require(config.awake_start_mean >= 0, "awake_start_mean must be >= 0");
  require(config.awake_start_jitter >= 0, "awake_start_jitter must be >= 0");
  require(config.mean_outage >= 0, "mean_outage must be >= 0");
  require(config.outage_sigma >= 0.0, "outage_sigma must be >= 0");
  require(config.fault.mean_burst_length >= 0.0,
          "fault_mean_burst_length must be >= 0");
  require(config.fault.mean_half_open >= 0,
          "fault_mean_half_open must be >= 0");
  require(config.fault.base_latency >= 0, "fault_base_latency must be >= 0");
  require(config.fault.mean_latency_jitter >= 0,
          "fault_mean_latency_jitter must be >= 0");
  require(config.horizon > 0, "horizon must be > 0");
}

void CanonicalDigest::u64(std::uint64_t value) {
  // FNV-1a over the value's little-endian bytes.
  for (int byte = 0; byte < 8; ++byte) {
    hash_ ^= (value >> (8 * byte)) & 0xFFu;
    hash_ *= 1099511628211ull;  // FNV-1a 64-bit prime
  }
}

void CanonicalDigest::i64(std::int64_t value) {
  u64(static_cast<std::uint64_t>(value));
}

void CanonicalDigest::f64(double value) {
  u64(std::bit_cast<std::uint64_t>(value));
}

void CanonicalDigest::str(std::string_view text) {
  u64(text.size());
  for (char c : text) {
    hash_ ^= static_cast<unsigned char>(c);
    hash_ *= 1099511628211ull;
  }
}

std::uint64_t digest_trace(const Trace& trace) {
  CanonicalDigest digest;
  digest.i64(trace.horizon);
  digest.u64(trace.arrivals.size());
  for (const Arrival& arrival : trace.arrivals) {
    digest.i64(arrival.time);
    digest.f64(arrival.rank);
    digest.i64(arrival.lifetime);
  }
  digest.u64(trace.reads.size());
  for (SimTime read : trace.reads) digest.i64(read);
  digest.u64(trace.outages.outages().size());
  for (const net::Outage& outage : trace.outages.outages()) {
    digest.i64(outage.start);
    digest.i64(outage.end);
  }
  digest.u64(trace.rank_changes.size());
  for (const RankChange& change : trace.rank_changes) {
    digest.i64(change.time);
    digest.u64(change.arrival_index);
    digest.f64(change.new_rank);
  }
  return digest.value();
}

}  // namespace waif::workload
