#include "workload/trace.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/distributions.h"

namespace waif::workload {

std::vector<Arrival> generate_arrivals(const ScenarioConfig& config, Rng& rng) {
  std::vector<Arrival> arrivals;
  if (config.event_frequency <= 0.0) return arrivals;
  WAIF_CHECK(config.rank_lo <= config.rank_hi);

  const double mean_gap =
      static_cast<double>(kDay) / config.event_frequency;  // microseconds
  const Exponential gap(mean_gap);
  const UniformReal rank(config.rank_lo, config.rank_hi);
  const Bernoulli expires(config.expiring_fraction);
  const DurationDistribution lifetime(config.expiration_shape,
                                      config.mean_expiration);

  arrivals.reserve(static_cast<std::size_t>(
      config.event_frequency * to_days(config.horizon) * 1.1));
  double t = gap(rng);
  while (static_cast<SimTime>(t) < config.horizon) {
    Arrival arrival;
    arrival.time = static_cast<SimTime>(t);
    arrival.rank = rank(rng);
    if (config.mean_expiration > 0 && expires(rng)) {
      arrival.lifetime = lifetime(rng);
    }
    arrivals.push_back(arrival);
    t += gap(rng);
  }
  return arrivals;
}

std::vector<SimTime> generate_reads(const ScenarioConfig& config, Rng& rng) {
  std::vector<SimTime> reads;
  if (config.user_frequency <= 0.0) return reads;

  const Normal start_jitter(static_cast<double>(config.awake_start_mean),
                            static_cast<double>(config.awake_start_jitter));
  const UniformReal awake_hours(16.0, 17.0);
  const Normal per_day(config.user_frequency, config.user_frequency / 4.0);

  const auto total_days = static_cast<std::int64_t>(to_days(config.horizon));
  double credit = 0.0;
  for (std::int64_t day = 0; day < total_days; ++day) {
    // "The user checks for new messages a certain number of times per day
    // chosen from a normal distribution (user frequency)". Fractional
    // frequencies (0.25 = once every four days) accumulate as credit.
    credit += std::max(0.0, per_day(rng));
    auto count = static_cast<std::int64_t>(std::floor(credit));
    credit -= static_cast<double>(count);
    if (count == 0) continue;

    const double awake_start =
        std::max(0.0, start_jitter(rng));  // around 7am, jittered
    const double awake_len = awake_hours(rng) * static_cast<double>(kHour);
    const UniformReal within(awake_start, awake_start + awake_len);
    for (std::int64_t i = 0; i < count; ++i) {
      const double offset = within(rng);
      const SimTime at =
          day * kDay + static_cast<SimTime>(std::min(
                           offset, static_cast<double>(kDay) - 1.0));
      if (at < config.horizon) reads.push_back(at);
    }
  }
  std::sort(reads.begin(), reads.end());
  return reads;
}

net::OutageSchedule generate_outages(const ScenarioConfig& config, Rng& rng) {
  const double p = config.outage_fraction;
  if (p <= 0.0) return net::OutageSchedule::always_up(config.horizon);
  if (p >= 1.0) return net::OutageSchedule::always_down(config.horizon);
  WAIF_CHECK(config.mean_outage > 0);

  // Alternating renewal process: up durations exponential (Poisson outage
  // starts), down durations log-normal with sigma = outage_sigma (the
  // paper's "high variance"). Means chosen so E[down]/(E[up]+E[down]) = p.
  const double mean_down = static_cast<double>(config.mean_outage);
  const double mean_up = mean_down * (1.0 - p) / p;
  const Exponential up(mean_up);
  const LogNormal down(mean_down, config.outage_sigma);

  std::vector<net::Outage> outages;
  double t = up(rng);
  while (static_cast<SimTime>(t) < config.horizon) {
    const double duration = down(rng);
    outages.push_back(net::Outage{static_cast<SimTime>(t),
                                  static_cast<SimTime>(t + duration)});
    t += duration + up(rng);
  }
  return net::OutageSchedule(std::move(outages), config.horizon);
}

std::vector<RankChange> generate_rank_changes(
    const ScenarioConfig& config, const std::vector<Arrival>& arrivals,
    Rng& rng) {
  std::vector<RankChange> changes;
  if (config.rank_drop_fraction <= 0.0 && config.rank_raise_fraction <= 0.0) {
    return changes;
  }
  const Bernoulli drops(config.rank_drop_fraction);
  const Bernoulli raises(config.rank_raise_fraction);
  const Exponential drop_delay(static_cast<double>(config.mean_rank_drop_delay));
  const Exponential raise_delay(
      static_cast<double>(config.mean_rank_raise_delay));

  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Arrival& arrival = arrivals[i];
    if (drops(rng)) {
      const SimTime at = arrival.time + static_cast<SimTime>(drop_delay(rng));
      if (at < config.horizon) {
        changes.push_back(RankChange{at, i, config.dropped_rank});
      }
    } else if (raises(rng)) {
      const SimTime at = arrival.time + static_cast<SimTime>(raise_delay(rng));
      const double boosted =
          std::min(pubsub::kMaxRank, arrival.rank + 1.0);
      if (at < config.horizon) changes.push_back(RankChange{at, i, boosted});
    }
  }
  std::sort(changes.begin(), changes.end(),
            [](const RankChange& a, const RankChange& b) {
              return a.time < b.time;
            });
  return changes;
}

Trace generate_trace(const ScenarioConfig& config, std::uint64_t seed) {
  Rng root(seed);
  Rng arrivals_rng = root.split();
  Rng reads_rng = root.split();
  Rng outages_rng = root.split();
  Rng changes_rng = root.split();

  Trace trace;
  trace.horizon = config.horizon;
  trace.arrivals = generate_arrivals(config, arrivals_rng);
  trace.reads = generate_reads(config, reads_rng);
  trace.outages = generate_outages(config, outages_rng);
  trace.rank_changes =
      generate_rank_changes(config, trace.arrivals, changes_rng);
  return trace;
}

}  // namespace waif::workload
