#include "storage/backend.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "common/check.h"

namespace waif::storage {

namespace fs = std::filesystem;

// --- MemBackend --------------------------------------------------------------

std::vector<std::string> MemBackend::list() const {
  std::vector<std::string> names;
  names.reserve(blobs_.size());
  for (const auto& [name, blob] : blobs_) names.push_back(name);
  return names;
}

bool MemBackend::exists(const std::string& name) const {
  return blobs_.contains(name);
}

bool MemBackend::read(const std::string& name,
                      std::vector<std::uint8_t>* out) const {
  auto it = blobs_.find(name);
  if (it == blobs_.end()) return false;
  *out = it->second.data;
  return true;
}

void MemBackend::write(const std::string& name,
                       const std::vector<std::uint8_t>& data) {
  Blob& blob = blobs_[name];
  blob.data = data;
  // A full rewrite invalidates the old durable prefix: nothing of the new
  // content is on disk until the next successful sync.
  blob.durable = 0;
}

void MemBackend::append(const std::string& name,
                        const std::vector<std::uint8_t>& data) {
  Blob& blob = blobs_[name];
  blob.data.insert(blob.data.end(), data.begin(), data.end());
}

bool MemBackend::sync(const std::string& name) {
  auto it = blobs_.find(name);
  if (it == blobs_.end()) return true;  // nothing to make durable
  if (fault_ != nullptr && !fault_->sync_passes()) return false;
  it->second.durable = it->second.data.size();
  it->second.ever_synced = true;
  return true;
}

void MemBackend::truncate(const std::string& name, std::size_t size) {
  auto it = blobs_.find(name);
  if (it == blobs_.end()) return;
  Blob& blob = it->second;
  if (blob.data.size() <= size) return;
  blob.data.resize(size);
  blob.durable = std::min(blob.durable, size);
}

void MemBackend::remove(const std::string& name) { blobs_.erase(name); }

void MemBackend::crash() {
  for (auto it = blobs_.begin(); it != blobs_.end();) {
    Blob& blob = it->second;
    const std::size_t unsynced = blob.data.size() - blob.durable;
    std::size_t surviving = 0;
    if (unsynced > 0 && fault_ != nullptr) {
      surviving = fault_->surviving_tail(unsynced);
      std::size_t bit = 0;
      if (fault_->draw_bit_flip(surviving, &bit)) {
        blob.data[blob.durable + bit / 8] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
      }
    }
    blob.data.resize(blob.durable + surviving);
    blob.durable = blob.data.size();
    if (blob.data.empty() && !blob.ever_synced) {
      // The file never reached the directory: after the crash it is gone.
      it = blobs_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t MemBackend::durable_size(const std::string& name) const {
  auto it = blobs_.find(name);
  return it == blobs_.end() ? 0 : it->second.durable;
}

std::size_t MemBackend::size(const std::string& name) const {
  auto it = blobs_.find(name);
  return it == blobs_.end() ? 0 : it->second.data.size();
}

// --- FileBackend -------------------------------------------------------------

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

FileBackend::FileBackend(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("cannot create storage directory " + dir_ + ": " +
                             ec.message());
  }
}

std::string FileBackend::path_of(const std::string& name) const {
  WAIF_CHECK(name.find('/') == std::string::npos);  // flat namespace only
  return dir_ + "/" + name;
}

void FileBackend::write_file(const std::string& path,
                             const std::vector<std::uint8_t>& data,
                             const char* mode) {
  // ENOSPC injection: a full filesystem takes part of the write (the torn
  // tail lands on disk) and the error surfaces to the caller — here latched
  // into write_failed_ and reported at the next sync(), which is where the
  // durability contract checks for it.
  std::size_t allowed = data.size();
  if (allowed > write_budget_) {
    allowed = write_budget_;
    write_failed_ = true;
  }
  write_budget_ -= allowed;

  std::FILE* file = std::fopen(path.c_str(), mode);
  if (file == nullptr) throw_errno("cannot open", path);
  if (allowed > 0 &&
      std::fwrite(data.data(), 1, allowed, file) != allowed) {
    std::fclose(file);
    throw_errno("short write to", path);
  }
  if (std::fclose(file) != 0) throw_errno("cannot close", path);
}

std::vector<std::string> FileBackend::list() const {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename());
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool FileBackend::exists(const std::string& name) const {
  return fs::exists(path_of(name));
}

bool FileBackend::read(const std::string& name,
                       std::vector<std::uint8_t>* out) const {
  const std::string path = path_of(name);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  out->clear();
  std::uint8_t buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->insert(out->end(), buffer, buffer + got);
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) throw_errno("cannot read", path);
  return true;
}

void FileBackend::write(const std::string& name,
                        const std::vector<std::uint8_t>& data) {
  write_file(path_of(name), data, "wb");
}

void FileBackend::append(const std::string& name,
                         const std::vector<std::uint8_t>& data) {
  write_file(path_of(name), data, "ab");
}

bool FileBackend::sync(const std::string& name) {
  // A short write means part of the record never reached the file; the
  // durability boundary must not advance past it.
  if (write_failed_) return false;
  if (fault_ != nullptr && !fault_->sync_passes()) return false;
  const std::string path = path_of(name);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("cannot open for fsync", path);
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

void FileBackend::truncate(const std::string& name, std::size_t size) {
  const std::string path = path_of(name);
  std::error_code ec;
  const auto current = fs::file_size(path, ec);
  if (ec || current <= size) return;
  fs::resize_file(path, size, ec);
  if (ec) {
    throw std::runtime_error("cannot truncate " + path + ": " + ec.message());
  }
}

void FileBackend::remove(const std::string& name) {
  std::error_code ec;
  fs::remove(path_of(name), ec);
}

}  // namespace waif::storage
