#include "storage/codec.h"

#include <array>
#include <bit>
#include <cstring>
#include <utility>

namespace waif::storage {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::vector<std::uint8_t>& data) {
  return crc32(data.data(), data.size());
}

void ByteWriter::u8(std::uint8_t value) { bytes_.push_back(value); }

void ByteWriter::u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFFu));
  }
}

void ByteWriter::u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFFu));
  }
}

void ByteWriter::i64(std::int64_t value) {
  u64(static_cast<std::uint64_t>(value));
}

void ByteWriter::f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

void ByteWriter::str(const std::string& value) {
  u32(static_cast<std::uint32_t>(value.size()));
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}

void ByteWriter::raw(const std::uint8_t* data, std::size_t size) {
  bytes_.insert(bytes_.end(), data, data + size);
}

bool ByteReader::take(std::size_t count, const std::uint8_t** out) {
  if (failed_ || size_ - offset_ < count) {
    failed_ = true;
    return false;
  }
  *out = data_ + offset_;
  offset_ += count;
  return true;
}

std::uint8_t ByteReader::u8() {
  const std::uint8_t* p = nullptr;
  if (!take(1, &p)) return 0;
  return p[0];
}

std::uint32_t ByteReader::u32() {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return 0;
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return value;
}

std::uint64_t ByteReader::u64() {
  const std::uint8_t* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return value;
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint32_t length = u32();
  const std::uint8_t* p = nullptr;
  if (!take(length, &p)) return {};
  return std::string(reinterpret_cast<const char*>(p), length);
}

}  // namespace waif::storage
