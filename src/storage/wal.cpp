#include "storage/wal.h"

#include <utility>

namespace waif::storage {

using pubsub::Notification;

void encode_notification(ByteWriter& writer, const Notification& event) {
  writer.u64(event.id.value);
  writer.str(event.topic);
  writer.u64(event.publisher.value);
  writer.f64(event.rank);
  writer.i64(event.published_at);
  writer.i64(event.expires_at);
  writer.str(event.payload);
}

Notification decode_notification(ByteReader& reader) {
  Notification event;
  event.id = NotificationId(reader.u64());
  event.topic = reader.str();
  event.publisher = PublisherId(reader.u64());
  event.rank = reader.f64();
  event.published_at = reader.i64();
  event.expires_at = reader.i64();
  event.payload = reader.str();
  return event;
}

namespace {

void encode_payload_into(ByteWriter& writer, const WalRecord& record) {
  writer.u8(static_cast<std::uint8_t>(record.type));
  writer.str(record.topic);
  writer.i64(record.at);
  switch (record.type) {
    case WalRecordType::kEnqueue:
      encode_notification(writer, record.event);
      writer.u8(static_cast<std::uint8_t>(record.stage));
      writer.i64(record.release_at);
      writer.u8(record.fresh ? 1 : 0);
      writer.u8(record.exp_tracked ? 1 : 0);
      writer.f64(record.rate_credit);
      break;
    case WalRecordType::kForward:
      encode_notification(writer, record.event);
      writer.u8(record.replicated ? 1 : 0);
      writer.f64(record.rate_credit);
      break;
    case WalRecordType::kRead:
      writer.u64(record.request_id);
      writer.i64(record.n);
      writer.u64(record.queue_size);
      break;
    case WalRecordType::kSync:
      writer.u64(record.sync_id);
      writer.u64(record.queue_size);
      writer.u32(static_cast<std::uint32_t>(record.offline_reads.size()));
      for (const core::ReadRecord& read : record.offline_reads) {
        writer.i64(read.time);
        writer.i64(read.n);
      }
      break;
    case WalRecordType::kExpire:
      writer.u64(record.id);
      writer.u8(record.timer_fired ? 1 : 0);
      break;
    case WalRecordType::kRequeue:
    case WalRecordType::kShed:
      encode_notification(writer, record.event);
      break;
    case WalRecordType::kAck:
      writer.u64(record.id);
      break;
  }
}

/// Decodes one payload. False when the payload is malformed (unknown type,
/// short fields, trailing bytes) — treated exactly like a CRC failure.
bool decode_payload(const std::vector<std::uint8_t>& payload,
                    WalRecord* record) {
  ByteReader reader(payload);
  record->type = static_cast<WalRecordType>(reader.u8());
  record->topic = reader.str();
  record->at = reader.i64();
  switch (record->type) {
    case WalRecordType::kEnqueue: {
      record->event = decode_notification(reader);
      const std::uint8_t stage = reader.u8();
      if (stage > static_cast<std::uint8_t>(core::JournalStage::kDelay)) {
        return false;
      }
      record->stage = static_cast<core::JournalStage>(stage);
      record->release_at = reader.i64();
      record->fresh = reader.u8() != 0;
      record->exp_tracked = reader.u8() != 0;
      record->rate_credit = reader.f64();
      break;
    }
    case WalRecordType::kForward:
      record->event = decode_notification(reader);
      record->replicated = reader.u8() != 0;
      record->rate_credit = reader.f64();
      break;
    case WalRecordType::kRead:
      record->request_id = reader.u64();
      record->n = static_cast<int>(reader.i64());
      record->queue_size = reader.u64();
      break;
    case WalRecordType::kSync: {
      record->sync_id = reader.u64();
      record->queue_size = reader.u64();
      const std::uint32_t count = reader.u32();
      if (reader.failed()) return false;
      // Each offline read is 16 encoded bytes; an absurd count means a
      // corrupt frame, not a huge sync.
      if (count > reader.remaining() / 16) return false;
      record->offline_reads.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        core::ReadRecord read;
        read.time = reader.i64();
        read.n = static_cast<int>(reader.i64());
        record->offline_reads.push_back(read);
      }
      break;
    }
    case WalRecordType::kExpire:
      record->id = reader.u64();
      record->timer_fired = reader.u8() != 0;
      break;
    case WalRecordType::kRequeue:
    case WalRecordType::kShed:
      record->event = decode_notification(reader);
      break;
    case WalRecordType::kAck:
      record->id = reader.u64();
      break;
    default:
      return false;
  }
  return reader.exhausted();
}

}  // namespace

std::vector<std::uint8_t> encode_wal_record(const WalRecord& record) {
  ByteWriter payload_scratch;
  ByteWriter frame;
  encode_wal_record_into(record, payload_scratch, frame);
  return frame.take();
}

void encode_wal_record_into(const WalRecord& record, ByteWriter& payload_scratch,
                            ByteWriter& out) {
  payload_scratch.clear();
  encode_payload_into(payload_scratch, record);
  const std::vector<std::uint8_t>& payload = payload_scratch.bytes();
  out.u32(static_cast<std::uint32_t>(payload.size()));
  out.u32(crc32(payload));
  out.raw(payload.data(), payload.size());
}

void WalWriter::append(const WalRecord& record) {
  if (group_commit_) {
    encode_wal_record_into(record, payload_scratch_, staging_);
    ++staged_;
  } else {
    frame_scratch_.clear();
    encode_wal_record_into(record, payload_scratch_, frame_scratch_);
    backend_.append(blob_, frame_scratch_.bytes());
  }
  ++count_;
  ++unsynced_;
}

void WalWriter::set_group_commit(bool on) {
  if (!on) flush();
  group_commit_ = on;
}

void WalWriter::flush() {
  if (staged_ == 0) return;
  backend_.append(blob_, staging_.bytes());
  staging_.clear();
  staged_ = 0;
}

bool WalWriter::sync() {
  flush();
  if (!backend_.sync(blob_)) return false;
  unsynced_ = 0;
  return true;
}

WalReadResult read_wal(const StorageBackend& backend, const std::string& blob) {
  WalReadResult result;
  std::vector<std::uint8_t> bytes;
  if (!backend.read(blob, &bytes)) return result;
  result.total_bytes = bytes.size();

  std::size_t offset = 0;
  constexpr std::size_t kHeaderBytes = 8;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kHeaderBytes) {
      result.torn_tail = true;
      break;
    }
    ByteReader header(bytes.data() + offset, kHeaderBytes);
    const std::uint32_t length = header.u32();
    const std::uint32_t expected_crc = header.u32();
    if (bytes.size() - offset - kHeaderBytes < length) {
      result.torn_tail = true;
      break;
    }
    const std::uint8_t* payload = bytes.data() + offset + kHeaderBytes;
    if (crc32(payload, length) != expected_crc) {
      ++result.crc_failures;
      break;
    }
    WalRecord record;
    if (!decode_payload(std::vector<std::uint8_t>(payload, payload + length),
                        &record)) {
      ++result.crc_failures;
      break;
    }
    result.records.push_back(std::move(record));
    offset += kHeaderBytes + length;
    result.valid_bytes = offset;
  }
  return result;
}

}  // namespace waif::storage
