// Pluggable blob storage for the durability layer.
//
// A StorageBackend is a flat namespace of named byte blobs (the WAL, the
// snapshot files) with an explicit durability boundary: append() and
// write() land in a volatile cache, and only sync() moves the boundary —
// exactly the contract POSIX gives a process via write(2)+fsync(2).
//
// Two implementations:
//   * MemBackend — the in-simulation backend. It tracks the durable prefix
//     of every blob and models a machine crash (crash()): unsynced bytes
//     vanish, or — under a StorageFaultModel — partially survive as a torn
//     tail, possibly with a flipped bit. Deterministic, no I/O.
//   * FileBackend — a real directory of files with real fsync, so the same
//     recovery code can be exercised against an actual filesystem (and so
//     waif_fsck has something to check outside the simulator).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "storage/fault.h"

namespace waif::storage {

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Blob names, sorted (deterministic iteration).
  virtual std::vector<std::string> list() const = 0;
  virtual bool exists(const std::string& name) const = 0;
  /// Reads the whole blob; false if it does not exist.
  virtual bool read(const std::string& name,
                    std::vector<std::uint8_t>* out) const = 0;
  /// Replaces the blob (creates it if absent). Not durable until sync().
  virtual void write(const std::string& name,
                     const std::vector<std::uint8_t>& data) = 0;
  /// Appends to the blob (creates it if absent). Not durable until sync().
  virtual void append(const std::string& name,
                      const std::vector<std::uint8_t>& data) = 0;
  /// Makes every byte of the blob durable. Returns false when the fsync
  /// failed — the durability boundary did not move and the caller must not
  /// act as if it had.
  virtual bool sync(const std::string& name) = 0;
  /// Truncates the blob to `size` bytes (used by recovery to repair a torn
  /// WAL tail). No-op if the blob is already at most that long.
  virtual void truncate(const std::string& name, std::size_t size) = 0;
  virtual void remove(const std::string& name) = 0;
};

/// Deterministic in-memory backend with crash semantics.
class MemBackend final : public StorageBackend {
 public:
  MemBackend() = default;

  /// Attaches a fault model; sync failures, torn tails and bit flips are
  /// drawn from it. nullptr (the default) = perfect hardware. The model
  /// must outlive the backend.
  void set_fault_model(StorageFaultModel* model) { fault_ = model; }

  std::vector<std::string> list() const override;
  bool exists(const std::string& name) const override;
  bool read(const std::string& name,
            std::vector<std::uint8_t>* out) const override;
  void write(const std::string& name,
             const std::vector<std::uint8_t>& data) override;
  void append(const std::string& name,
              const std::vector<std::uint8_t>& data) override;
  bool sync(const std::string& name) override;
  void truncate(const std::string& name, std::size_t size) override;
  void remove(const std::string& name) override;

  /// Models the machine dying. For every blob the unsynced tail is
  /// discarded — unless the fault model keeps a torn prefix of it, possibly
  /// with one bit flipped. A blob with no durable bytes left disappears
  /// entirely (the file never reached the directory). Whatever survives is
  /// then durable: the next incarnation starts from it.
  void crash();

  /// Bytes of `name` guaranteed to survive a crash (0 if absent).
  std::size_t durable_size(const std::string& name) const;
  /// Total size of `name` including unsynced bytes (0 if absent).
  std::size_t size(const std::string& name) const;

 private:
  struct Blob {
    std::vector<std::uint8_t> data;
    std::size_t durable = 0;     // prefix guaranteed to survive a crash
    bool ever_synced = false;    // has any sync() succeeded for this blob?
  };

  std::map<std::string, Blob> blobs_;
  StorageFaultModel* fault_ = nullptr;
};

/// Files in a real directory, with real fsync. An attached fault model can
/// still fail sync() (torn tails and bit flips need a real power cut, which
/// this class cannot inject).
class FileBackend final : public StorageBackend {
 public:
  /// Creates `dir` (and parents) if missing. Throws std::runtime_error when
  /// the directory cannot be created.
  explicit FileBackend(std::string dir);

  void set_fault_model(StorageFaultModel* model) { fault_ = model; }

  std::vector<std::string> list() const override;
  bool exists(const std::string& name) const override;
  bool read(const std::string& name,
            std::vector<std::uint8_t>* out) const override;
  void write(const std::string& name,
             const std::vector<std::uint8_t>& data) override;
  void append(const std::string& name,
              const std::vector<std::uint8_t>& data) override;
  bool sync(const std::string& name) override;
  void truncate(const std::string& name, std::size_t size) override;
  void remove(const std::string& name) override;

  const std::string& dir() const { return dir_; }

  /// ENOSPC injection: after `bytes` more bytes have been written, further
  /// writes are cut short mid-record — the truncated data still lands on
  /// disk (the torn tail a full filesystem leaves) and the failure sticks:
  /// every sync() reports false until clear_write_failure(), exactly the
  /// error-at-fsync contract the write-ahead discipline relies on.
  /// SIZE_MAX (the default) disables the limit.
  void set_write_limit(std::size_t bytes) { write_budget_ = bytes; }
  /// True once a write was cut short by the limit.
  bool write_failed() const { return write_failed_; }
  /// Clears the sticky failure (models space being freed); the budget stays
  /// wherever set_write_limit last put it.
  void clear_write_failure() { write_failed_ = false; }

 private:
  std::string path_of(const std::string& name) const;
  /// Writes `data` to `path` honouring the byte budget: a write past the
  /// budget lands truncated and latches write_failed_.
  void write_file(const std::string& path,
                  const std::vector<std::uint8_t>& data, const char* mode);

  std::string dir_;
  StorageFaultModel* fault_ = nullptr;
  std::size_t write_budget_ = static_cast<std::size_t>(-1);
  bool write_failed_ = false;
};

}  // namespace waif::storage
