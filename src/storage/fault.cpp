#include "storage/fault.h"

#include "common/check.h"

namespace waif::storage {

StorageFaultModel::StorageFaultModel(StorageFaultConfig config,
                                     std::uint64_t seed)
    : config_(config), rng_(seed) {
  WAIF_CHECK(config.fsync_failure_probability >= 0.0 &&
             config.fsync_failure_probability <= 1.0);
  WAIF_CHECK(config.torn_write_probability >= 0.0 &&
             config.torn_write_probability <= 1.0);
  WAIF_CHECK(config.bit_flip_probability >= 0.0 &&
             config.bit_flip_probability <= 1.0);
}

bool StorageFaultModel::sync_passes() {
  if (config_.fsync_failure_probability <= 0.0) return true;
  if (rng_.next_double() < config_.fsync_failure_probability) {
    ++stats_.fsync_failures;
    return false;
  }
  return true;
}

std::size_t StorageFaultModel::surviving_tail(std::size_t unsynced) {
  if (unsynced == 0 || config_.torn_write_probability <= 0.0) return 0;
  if (rng_.next_double() >= config_.torn_write_probability) return 0;
  ++stats_.torn_writes;
  // A strict prefix: the crash happened somewhere inside the tail.
  return static_cast<std::size_t>(
      rng_.next_below(static_cast<std::uint64_t>(unsynced)));
}

bool StorageFaultModel::draw_bit_flip(std::size_t surviving,
                                      std::size_t* bit_offset) {
  if (surviving == 0 || config_.bit_flip_probability <= 0.0) return false;
  if (rng_.next_double() >= config_.bit_flip_probability) return false;
  ++stats_.bit_flips;
  *bit_offset = static_cast<std::size_t>(
      rng_.next_below(static_cast<std::uint64_t>(surviving * 8)));
  return true;
}

}  // namespace waif::storage
