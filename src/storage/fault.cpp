#include "storage/fault.h"

#include <stdexcept>
#include <string>

namespace waif::storage {

namespace {

/// Same construction-time validation contract as net::FaultModel: a
/// malformed probability (NaN, negative, above 1) throws a descriptive
/// std::invalid_argument instead of aborting the process. NaN fails the
/// range comparison by design.
void require_probability(double value, const char* field) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(
        std::string("storage fault config: ") + field +
        " must be a probability in [0, 1], got " + std::to_string(value));
  }
}

}  // namespace

StorageFaultModel::StorageFaultModel(StorageFaultConfig config,
                                     std::uint64_t seed)
    : config_(config), rng_(seed) {
  require_probability(config.fsync_failure_probability,
                      "fsync_failure_probability");
  require_probability(config.torn_write_probability, "torn_write_probability");
  require_probability(config.bit_flip_probability, "bit_flip_probability");
}

bool StorageFaultModel::sync_passes() {
  if (config_.fsync_failure_probability <= 0.0) return true;
  if (rng_.next_double() < config_.fsync_failure_probability) {
    ++stats_.fsync_failures;
    return false;
  }
  return true;
}

std::size_t StorageFaultModel::surviving_tail(std::size_t unsynced) {
  if (unsynced == 0 || config_.torn_write_probability <= 0.0) return 0;
  if (rng_.next_double() >= config_.torn_write_probability) return 0;
  ++stats_.torn_writes;
  // A strict prefix: the crash happened somewhere inside the tail.
  return static_cast<std::size_t>(
      rng_.next_below(static_cast<std::uint64_t>(unsynced)));
}

bool StorageFaultModel::draw_bit_flip(std::size_t surviving,
                                      std::size_t* bit_offset) {
  if (surviving == 0 || config_.bit_flip_probability <= 0.0) return false;
  if (rng_.next_double() >= config_.bit_flip_probability) return false;
  ++stats_.bit_flips;
  *bit_offset = static_cast<std::size_t>(
      rng_.next_below(static_cast<std::uint64_t>(surviving * 8)));
  return true;
}

}  // namespace waif::storage
