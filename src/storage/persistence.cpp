#include "storage/persistence.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "core/topic_state.h"

namespace waif::storage {

using core::JournalStage;
using pubsub::Notification;
using pubsub::NotificationPtr;

// --- journaling --------------------------------------------------------------

ProxyPersistence::ProxyPersistence(sim::Simulator& sim, StorageBackend& backend,
                                   PersistenceConfig config)
    : sim_(sim),
      backend_(backend),
      config_(config),
      writer_(backend, kWalBlobName) {
  if (config_.group_commit) {
    writer_.set_group_commit(true);
    flush_hook_id_ =
        sim_.add_post_event_hook([this] { flush_group(); });
  }
}

ProxyPersistence::~ProxyPersistence() {
  detach();
  if (flush_hook_id_ != 0) sim_.remove_post_event_hook(flush_hook_id_);
}

void ProxyPersistence::resume_from(const RecoveryResult& recovery) {
  writer_.reset_count(recovery.wal_records);
  // Replay started at the newest snapshot's watermark (0 without one).
  last_snapshot_watermark_ = recovery.wal_records - recovery.replayed;
  if (recovery.from_snapshot) next_snapshot_seq_ = recovery.snapshot_seq + 1;
}

void ProxyPersistence::attach(core::Proxy& proxy) {
  if (attached_ == &proxy) return;
  detach();
  attached_ = &proxy;
  proxy.set_journal(this);
}

void ProxyPersistence::detach() {
  if (attached_ != nullptr) attached_->set_journal(nullptr);
  forget();
}

void ProxyPersistence::forget() {
  attached_ = nullptr;
  snapshot_event_.cancel();
  snapshot_pending_ = false;
}

void ProxyPersistence::set_channel(core::ReliableDeviceChannel* channel) {
  if (channel_ != nullptr) channel_->set_ack_observer({});
  channel_ = channel;
  if (channel_ != nullptr) {
    channel_->set_ack_observer(
        [this](const NotificationPtr& event) { on_device_ack(event); });
  }
}

void ProxyPersistence::set_record_hook(
    std::function<void(std::uint64_t)> hook) {
  record_hook_ = std::move(hook);
}

void ProxyPersistence::append(const WalRecord& record) {
  writer_.append(record);
  ++stats_.records;
}

void ProxyPersistence::flush_group() {
  if (writer_.unsynced_records() == 0) return;
  if (writer_.sync()) {
    ++stats_.syncs;
  } else {
    ++stats_.failed_syncs;
  }
}

void ProxyPersistence::maybe_sync() {
  // Group commit replaces the per-record interval policy: the whole batch
  // is fsynced once by the deferred flush event.
  if (config_.group_commit) return;
  if (config_.sync_interval == 0) return;
  if (writer_.unsynced_records() < config_.sync_interval) return;
  if (writer_.sync()) {
    ++stats_.syncs;
  } else {
    ++stats_.failed_syncs;
  }
}

void ProxyPersistence::maybe_request_snapshot() {
  if (config_.snapshot_interval == 0 || attached_ == nullptr ||
      snapshot_pending_) {
    return;
  }
  if (writer_.record_count() - last_snapshot_watermark_ <
      config_.snapshot_interval) {
    return;
  }
  // Defer to a fresh event at the current instant: snapshots must never run
  // in the middle of a TopicState callback.
  snapshot_pending_ = true;
  snapshot_event_ = sim_.schedule_at(sim_.now(), [this] {
    snapshot_pending_ = false;
    snapshot_now();
  });
}

bool ProxyPersistence::snapshot_now() {
  if (attached_ == nullptr) return false;
  // The WAL must be durable up to the watermark the snapshot claims —
  // otherwise a crash could leave a snapshot covering records the log lost,
  // and the record indices of the next incarnation would collide with it.
  if (!writer_.sync()) {
    ++stats_.failed_syncs;
    ++stats_.failed_snapshots;
    return false;
  }
  ++stats_.syncs;

  ProxySnapshot snapshot;
  snapshot.watermark = writer_.record_count();
  snapshot.taken_at = sim_.now();
  if (channel_ != nullptr) {
    snapshot.has_channel = true;
    snapshot.channel = channel_->snapshot();
  }
  for (const std::string& name : attached_->topic_names()) {
    snapshot.topics.emplace_back(name, attached_->topic(name)->snapshot());
  }

  const std::string blob = snapshot_blob_name(next_snapshot_seq_);
  backend_.write(blob, encode_snapshot(snapshot));
  if (!backend_.sync(blob)) {
    // A snapshot that may not survive a crash is worse than none: a torn
    // blob would be rejected at recovery anyway, so drop it now.
    backend_.remove(blob);
    ++stats_.failed_syncs;
    ++stats_.failed_snapshots;
    return false;
  }
  ++stats_.snapshots;
  last_snapshot_watermark_ = snapshot.watermark;
  ++next_snapshot_seq_;

  // Prune all but the newest keep_snapshots checkpoints.
  std::vector<std::uint64_t> seqs;
  for (const std::string& name : backend_.list()) {
    std::uint64_t seq = 0;
    if (parse_snapshot_name(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  const std::uint64_t keep = std::max<std::uint64_t>(1, config_.keep_snapshots);
  if (seqs.size() > keep) {
    for (std::size_t i = 0; i + keep < seqs.size(); ++i) {
      backend_.remove(snapshot_blob_name(seqs[i]));
    }
  }
  return true;
}

void ProxyPersistence::on_enqueue(const std::string& topic,
                                  const core::EnqueueRecord& record) {
  WalRecord wal;
  wal.type = WalRecordType::kEnqueue;
  wal.topic = topic;
  wal.at = record.at;
  wal.event = record.event;
  wal.stage = record.stage;
  wal.release_at = record.release_at;
  wal.fresh = record.fresh;
  wal.exp_tracked = record.exp_tracked;
  wal.rate_credit = record.rate_credit;
  append(wal);
  maybe_sync();
  maybe_request_snapshot();
  if (record_hook_) record_hook_(writer_.record_count());
}

bool ProxyPersistence::on_forward(const std::string& topic,
                                  const NotificationPtr& event, SimTime at,
                                  double rate_credit, bool replicated) {
  WalRecord wal;
  wal.type = WalRecordType::kForward;
  wal.topic = topic;
  wal.at = at;
  wal.event = *event;
  wal.replicated = replicated;
  wal.rate_credit = rate_credit;
  append(wal);
  bool durable = true;
  if (config_.sync_on_forward) {
    durable = writer_.sync();
    if (durable) {
      ++stats_.syncs;
    } else {
      // The record stays in the unsynced tail. If a later sync lands it, it
      // describes a delivery that never happened — recovery then counts the
      // event as forwarded and the device never receives it: a loss inside
      // the documented window, never a duplicate.
      ++stats_.failed_syncs;
      ++stats_.forward_refusals;
    }
  } else {
    maybe_sync();
  }
  maybe_request_snapshot();
  if (record_hook_) record_hook_(writer_.record_count());
  // A replicated forward cannot be aborted (the peer already delivered);
  // the caller ignores the return value there.
  return durable;
}

void ProxyPersistence::on_read(const std::string& topic,
                               std::uint64_t request_id, int n,
                               std::size_t queue_size, SimTime at) {
  WalRecord wal;
  wal.type = WalRecordType::kRead;
  wal.topic = topic;
  wal.at = at;
  wal.request_id = request_id;
  wal.n = n;
  wal.queue_size = queue_size;
  append(wal);
  maybe_sync();
  maybe_request_snapshot();
  if (record_hook_) record_hook_(writer_.record_count());
}

void ProxyPersistence::on_sync(const std::string& topic, std::size_t queue_size,
                               std::uint64_t sync_id,
                               const std::vector<core::ReadRecord>& offline_reads,
                               SimTime at) {
  WalRecord wal;
  wal.type = WalRecordType::kSync;
  wal.topic = topic;
  wal.at = at;
  wal.queue_size = queue_size;
  wal.sync_id = sync_id;
  wal.offline_reads = offline_reads;
  append(wal);
  maybe_sync();
  maybe_request_snapshot();
  if (record_hook_) record_hook_(writer_.record_count());
}

void ProxyPersistence::on_expire(const std::string& topic, NotificationId id,
                                 bool timer_fired, SimTime at) {
  WalRecord wal;
  wal.type = WalRecordType::kExpire;
  wal.topic = topic;
  wal.at = at;
  wal.id = id.value;
  wal.timer_fired = timer_fired;
  append(wal);
  maybe_sync();
  maybe_request_snapshot();
  if (record_hook_) record_hook_(writer_.record_count());
}

void ProxyPersistence::on_requeue(const std::string& topic,
                                  const NotificationPtr& event, SimTime at) {
  WalRecord wal;
  wal.type = WalRecordType::kRequeue;
  wal.topic = topic;
  wal.at = at;
  wal.event = *event;
  append(wal);
  maybe_sync();
  maybe_request_snapshot();
  if (record_hook_) record_hook_(writer_.record_count());
}

void ProxyPersistence::on_shed(const std::string& topic,
                               const NotificationPtr& event, SimTime at) {
  WalRecord wal;
  wal.type = WalRecordType::kShed;
  wal.topic = topic;
  wal.at = at;
  wal.event = *event;
  append(wal);
  maybe_sync();
  maybe_request_snapshot();
  if (record_hook_) record_hook_(writer_.record_count());
}

void ProxyPersistence::on_device_ack(const NotificationPtr& event) {
  WalRecord wal;
  wal.type = WalRecordType::kAck;
  wal.topic = event->topic;
  wal.at = sim_.now();
  wal.id = event->id.value;
  append(wal);
  maybe_sync();
  maybe_request_snapshot();
  if (record_hook_) record_hook_(writer_.record_count());
}

void ProxyPersistence::on_promoted(core::Proxy& active) {
  // Follow the active role: journal the promoted replica and re-base the log
  // on its state (its history differs from the crashed active's tail).
  attach(active);
  snapshot_now();
}

void ProxyPersistence::warm_restart(core::Proxy& fresh) {
  std::map<std::string, core::TopicConfig> configs;
  for (const std::string& name : fresh.topic_names()) {
    configs.emplace(name, fresh.topic(name)->config());
  }
  const RecoveryResult recovery = recover(backend_, configs);
  restore_into(fresh, recovery, RecoverUnacked::kTrustForwarded);
}

// --- recovery replay ---------------------------------------------------------

namespace {

/// Mutable per-topic image the WAL tail is folded into: the same state as a
/// TopicSnapshot, in map form so record replay can erase/insert by id.
struct TopicImage {
  std::unordered_map<std::uint64_t, Notification> outgoing;
  std::unordered_map<std::uint64_t, Notification> prefetch;
  std::unordered_map<std::uint64_t, Notification> holding;
  struct Delayed {
    Notification event;
    SimTime release_at = 0;
  };
  std::unordered_map<std::uint64_t, Delayed> delayed;
  std::unordered_map<std::uint64_t, Notification> history;
  std::deque<std::uint64_t> history_order;
  std::set<std::uint64_t> forwarded;
  std::map<std::uint64_t, SimTime> armed;
  std::set<std::uint64_t> seen_read_ids;
  std::set<std::uint64_t> seen_sync_ids;
  AverageSnapshot old_reads;
  IntervalSnapshot read_times;
  AverageSnapshot exp_times;
  IntervalSnapshot arrival_times;
  std::uint64_t queue_size_view = 0;
  double rate_credit = 0.0;
  std::int64_t current_day = 0;
  std::uint64_t forwarded_today = 0;

  // Replay inputs from the topic's configuration.
  std::size_t window = 8;
  bool online_mode = false;

  void record_history(const Notification& event) {
    auto [it, inserted] = history.try_emplace(event.id.value, event);
    if (!inserted) {
      it->second = event;
      return;
    }
    history_order.push_back(event.id.value);
    if (history_order.size() > core::kDefaultHistoryLimit) {
      history.erase(history_order.front());
      history_order.pop_front();
    }
  }

  void erase_delayed(std::uint64_t id) { delayed.erase(id); }

  void erase_everywhere(std::uint64_t id) {
    outgoing.erase(id);
    prefetch.erase(id);
    holding.erase(id);
    delayed.erase(id);
  }
};

TopicImage image_from_snapshot(const core::TopicSnapshot& snap) {
  TopicImage image;
  for (const Notification& event : snap.outgoing) {
    image.outgoing.emplace(event.id.value, event);
  }
  for (const Notification& event : snap.prefetch) {
    image.prefetch.emplace(event.id.value, event);
  }
  for (const Notification& event : snap.holding) {
    image.holding.emplace(event.id.value, event);
  }
  for (const core::DelayedSnapshot& delayed : snap.delayed) {
    image.delayed.emplace(delayed.event.id.value,
                          TopicImage::Delayed{delayed.event, delayed.release_at});
  }
  for (const Notification& event : snap.history) image.record_history(event);
  image.forwarded.insert(snap.forwarded.begin(), snap.forwarded.end());
  for (const core::ArmedExpiration& armed : snap.expiration_armed) {
    image.armed.emplace(armed.id, armed.expires_at);
  }
  image.seen_read_ids.insert(snap.seen_read_ids.begin(),
                             snap.seen_read_ids.end());
  image.seen_sync_ids.insert(snap.seen_sync_ids.begin(),
                             snap.seen_sync_ids.end());
  image.old_reads = snap.old_reads;
  image.read_times = snap.read_times;
  image.exp_times = snap.exp_times;
  image.arrival_times = snap.arrival_times;
  image.queue_size_view = snap.queue_size_view;
  image.rate_credit = snap.rate_credit;
  image.current_day = snap.current_day;
  image.forwarded_today = snap.forwarded_today;
  return image;
}

/// RankHigher for notification values (rank order of the snapshot queues).
bool rank_higher(const Notification& a, const Notification& b) {
  if (a.rank != b.rank) return a.rank > b.rank;
  if (a.published_at != b.published_at) return a.published_at > b.published_at;
  return a.id.value > b.id.value;
}

std::vector<Notification> queue_to_vector(
    const std::unordered_map<std::uint64_t, Notification>& queue) {
  std::vector<Notification> events;
  events.reserve(queue.size());
  for (const auto& [id, event] : queue) events.push_back(event);
  std::sort(events.begin(), events.end(), rank_higher);
  return events;
}

core::TopicSnapshot image_to_snapshot(const TopicImage& image) {
  core::TopicSnapshot snap;
  snap.outgoing = queue_to_vector(image.outgoing);
  snap.prefetch = queue_to_vector(image.prefetch);
  snap.holding = queue_to_vector(image.holding);
  snap.delayed.reserve(image.delayed.size());
  for (const auto& [id, delayed] : image.delayed) {
    snap.delayed.push_back({delayed.event, delayed.release_at});
  }
  std::sort(snap.delayed.begin(), snap.delayed.end(),
            [](const core::DelayedSnapshot& a, const core::DelayedSnapshot& b) {
              return a.event.id.value < b.event.id.value;
            });
  snap.history.reserve(image.history_order.size());
  for (std::uint64_t id : image.history_order) {
    snap.history.push_back(image.history.at(id));
  }
  snap.forwarded.assign(image.forwarded.begin(), image.forwarded.end());
  snap.expiration_armed.reserve(image.armed.size());
  for (const auto& [id, expires_at] : image.armed) {
    snap.expiration_armed.push_back({id, expires_at});
  }
  snap.seen_read_ids.assign(image.seen_read_ids.begin(),
                            image.seen_read_ids.end());
  snap.seen_sync_ids.assign(image.seen_sync_ids.begin(),
                            image.seen_sync_ids.end());
  snap.old_reads = image.old_reads;
  snap.read_times = image.read_times;
  snap.exp_times = image.exp_times;
  snap.arrival_times = image.arrival_times;
  snap.queue_size_view = image.queue_size_view;
  snap.rate_credit = image.rate_credit;
  snap.current_day = image.current_day;
  snap.forwarded_today = image.forwarded_today;
  return snap;
}

/// Pure-data mirror of handle_notification's queue transition (the
/// JournalStage contract in core/journal.h).
void replay_enqueue(TopicImage& image, const WalRecord& record) {
  const std::uint64_t id = record.event.id.value;
  if (record.fresh) {
    image.arrival_times.add(to_seconds(record.at), image.window);
  }
  if (record.exp_tracked) {
    // track_expiration: train the lifetime average, arm the timer.
    image.exp_times.add(to_seconds(record.event.expires_at - record.at),
                        image.window);
    image.armed.insert_or_assign(id, record.event.expires_at);
  }
  switch (record.stage) {
    case JournalStage::kOutgoing:
      image.outgoing.insert_or_assign(id, record.event);
      break;
    case JournalStage::kWithdrawn:
      image.holding.erase(id);
      image.prefetch.erase(id);
      image.erase_delayed(id);
      image.outgoing.insert_or_assign(id, record.event);
      break;
    case JournalStage::kDropped:
      image.erase_everywhere(id);
      break;
    case JournalStage::kInterrupt:
      image.holding.erase(id);
      image.prefetch.erase(id);
      image.outgoing.insert_or_assign(id, record.event);
      break;
    case JournalStage::kReadDifference:
      image.prefetch.erase(id);
      image.holding.erase(id);
      image.outgoing.insert_or_assign(id, record.event);
      break;
    case JournalStage::kPrefetch:
      image.prefetch.insert_or_assign(id, record.event);
      break;
    case JournalStage::kDelayRelease:
      image.erase_delayed(id);
      image.prefetch.insert_or_assign(id, record.event);
      break;
    case JournalStage::kHolding:
      image.holding.insert_or_assign(id, record.event);
      break;
    case JournalStage::kDelay:
      image.delayed.insert_or_assign(
          id, TopicImage::Delayed{record.event, record.release_at});
      break;
  }
  // handle_notification records history for every arrival; the two stages
  // emitted from other code paths (READ difference, delay release) do not.
  if (record.stage != JournalStage::kReadDifference &&
      record.stage != JournalStage::kDelayRelease) {
    image.record_history(record.event);
  }
  image.rate_credit = record.rate_credit;
}

void replay_forward(TopicImage& image, const WalRecord& record) {
  const std::uint64_t id = record.event.id.value;
  if (record.replicated) {
    // apply_replicated_forward: purge every stage, record history.
    image.erase_everywhere(id);
    image.record_history(record.event);
  } else {
    // do_forward popped the event from outgoing or prefetch.
    image.outgoing.erase(id);
    image.prefetch.erase(id);
    if (image.online_mode) {
      const std::int64_t day = record.at / kDay;
      if (day != image.current_day) {
        image.current_day = day;
        image.forwarded_today = 0;
      }
      ++image.forwarded_today;
    }
  }
  image.forwarded.insert(id);
  ++image.queue_size_view;
  image.rate_credit = record.rate_credit;
}

void replay_read(TopicImage& image, const WalRecord& record) {
  if (record.request_id != 0 &&
      !image.seen_read_ids.insert(record.request_id).second) {
    // Duplicate READ: only the queue-size view refreshes.
    image.queue_size_view = record.queue_size;
    return;
  }
  image.old_reads.add(static_cast<double>(record.n), image.window);
  image.read_times.add(to_seconds(record.at), image.window);
  image.queue_size_view = record.queue_size;
}

void replay_sync(TopicImage& image, const WalRecord& record) {
  if (record.sync_id != 0 &&
      !image.seen_sync_ids.insert(record.sync_id).second) {
    image.queue_size_view = record.queue_size;
    return;
  }
  for (const core::ReadRecord& read : record.offline_reads) {
    image.old_reads.add(static_cast<double>(read.n), image.window);
    image.read_times.add(to_seconds(read.time), image.window);
  }
  image.queue_size_view = record.queue_size;
}

void replay_expire(TopicImage& image, const WalRecord& record) {
  if (record.timer_fired) {
    image.armed.erase(record.id);
    image.erase_everywhere(record.id);
  } else {
    // The delay stage released an already-expired event; only the delay
    // entry goes (the expiration timer stays armed, as in the live path).
    image.erase_delayed(record.id);
  }
}

void replay_shed(TopicImage& image, const WalRecord& record) {
  // Mirrors TopicState::shed_one: the victim leaves every queue (including
  // any delay-stage copy an interrupt left behind) and its expiration timer
  // disarms.
  const std::uint64_t id = record.event.id.value;
  image.armed.erase(id);
  image.erase_everywhere(id);
}

void replay_requeue(TopicImage& image, const WalRecord& record) {
  const std::uint64_t id = record.event.id.value;
  image.forwarded.erase(id);
  if (image.queue_size_view > 0) --image.queue_size_view;
  if (record.event.expired_at(record.at)) return;
  if (record.event.expires()) {
    image.armed.insert_or_assign(id, record.event.expires_at);
  }
  image.holding.insert_or_assign(id, record.event);
}

}  // namespace

RecoveryResult ProxyPersistence::recover(
    StorageBackend& backend,
    const std::map<std::string, core::TopicConfig>& configs) {
  RecoveryResult result;

  ProxySnapshot base;
  std::uint64_t seq = 0;
  result.from_snapshot =
      load_latest_snapshot(backend, &base, &seq, &result.damaged_snapshots);
  if (result.from_snapshot) result.snapshot_seq = seq;

  WalReadResult wal = read_wal(backend);
  result.wal_records = wal.records.size();
  result.crc_failures = wal.crc_failures;
  result.torn_tail = wal.torn_tail;
  if (!wal.clean()) {
    // Repair: everything past the last valid frame is noise from the crash.
    backend.truncate(kWalBlobName, wal.valid_bytes);
    result.repaired = true;
  }

  // Start from the snapshot image (or empty), then fold in the tail.
  std::map<std::string, TopicImage> images;
  for (const auto& [name, topic] : base.topics) {
    images.emplace(name, image_from_snapshot(topic));
  }
  for (const auto& [name, config] : configs) {
    TopicImage& image = images[name];  // creates empty images for new topics
    image.window = config.policy.moving_average_window;
    image.online_mode = config.mode == core::DeliveryMode::kOnLine;
  }

  const std::uint64_t watermark =
      result.from_snapshot ? base.watermark : 0;
  WAIF_CHECK(watermark <= wal.records.size());
  for (std::size_t i = watermark; i < wal.records.size(); ++i) {
    const WalRecord& record = wal.records[i];
    if (record.type == WalRecordType::kAck) continue;  // handled below
    TopicImage& image = images[record.topic];
    switch (record.type) {
      case WalRecordType::kEnqueue:
        replay_enqueue(image, record);
        break;
      case WalRecordType::kForward:
        replay_forward(image, record);
        break;
      case WalRecordType::kRead:
        replay_read(image, record);
        break;
      case WalRecordType::kSync:
        replay_sync(image, record);
        break;
      case WalRecordType::kExpire:
        replay_expire(image, record);
        break;
      case WalRecordType::kRequeue:
        replay_requeue(image, record);
        break;
      case WalRecordType::kShed:
        replay_shed(image, record);
        break;
      case WalRecordType::kAck:
        break;
    }
    ++result.replayed;
  }

  // The in-doubt set spans the whole log: an event is unacked if its last
  // forward was never followed by an ACK (or a requeue, which reclaimed it).
  std::map<std::uint64_t, Notification> in_doubt;
  for (const WalRecord& record : wal.records) {
    switch (record.type) {
      case WalRecordType::kForward:
        if (!record.replicated) {
          in_doubt.insert_or_assign(record.event.id.value, record.event);
        }
        break;
      case WalRecordType::kAck:
        in_doubt.erase(record.id);
        break;
      case WalRecordType::kRequeue:
        in_doubt.erase(record.event.id.value);
        break;
      default:
        break;
    }
  }
  // Only meaningful when ACKs were journaled at all (reliable channel).
  const bool has_acks = std::any_of(
      wal.records.begin(), wal.records.end(),
      [](const WalRecord& r) { return r.type == WalRecordType::kAck; });
  if (has_acks) {
    result.unacked.reserve(in_doubt.size());
    for (const auto& [id, event] : in_doubt) result.unacked.push_back(event);
  }

  result.state.watermark = wal.records.size();
  result.state.taken_at = base.taken_at;
  result.state.has_channel = base.has_channel;
  result.state.channel = base.channel;
  for (const auto& [name, image] : images) {
    result.state.topics.emplace_back(name, image_to_snapshot(image));
  }
  return result;
}

void ProxyPersistence::restore_into(core::Proxy& proxy,
                                    const RecoveryResult& recovery,
                                    RecoverUnacked mode) {
  for (const auto& [name, snapshot] : recovery.state.topics) {
    core::TopicState* topic = proxy.topic(name);
    WAIF_CHECK(topic != nullptr);
    topic->restore(snapshot);
  }
  if (mode == RecoverUnacked::kRequeueHolding) {
    const SimTime now = proxy.simulator().now();
    for (const Notification& event : recovery.unacked) {
      if (event.expired_at(now)) continue;
      core::TopicState* topic = proxy.topic(event.topic);
      if (topic == nullptr) continue;
      topic->requeue_undelivered(std::make_shared<const Notification>(event));
    }
  }
}

}  // namespace waif::storage
