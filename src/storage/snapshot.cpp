#include "storage/snapshot.h"

#include <cstdio>
#include <utility>

#include "storage/codec.h"
#include "storage/wal.h"

namespace waif::storage {

namespace {

constexpr char kMagic[8] = {'W', 'A', 'I', 'F', 'S', 'N', 'P', '1'};

void encode_average(ByteWriter& writer, const AverageSnapshot& average) {
  writer.u32(static_cast<std::uint32_t>(average.samples.size()));
  for (double sample : average.samples) writer.f64(sample);
  writer.f64(average.sum);
}

bool decode_average(ByteReader& reader, AverageSnapshot* average) {
  const std::uint32_t count = reader.u32();
  if (reader.failed() || count > reader.remaining() / 8) return false;
  average->samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    average->samples.push_back(reader.f64());
  }
  average->sum = reader.f64();
  return !reader.failed();
}

void encode_interval(ByteWriter& writer, const IntervalSnapshot& interval) {
  encode_average(writer, interval.diffs);
  writer.u8(interval.last.has_value() ? 1 : 0);
  if (interval.last.has_value()) writer.f64(*interval.last);
}

bool decode_interval(ByteReader& reader, IntervalSnapshot* interval) {
  if (!decode_average(reader, &interval->diffs)) return false;
  if (reader.u8() != 0) interval->last = reader.f64();
  return !reader.failed();
}

void encode_ids(ByteWriter& writer, const std::vector<std::uint64_t>& ids) {
  writer.u32(static_cast<std::uint32_t>(ids.size()));
  for (std::uint64_t id : ids) writer.u64(id);
}

bool decode_ids(ByteReader& reader, std::vector<std::uint64_t>* ids) {
  const std::uint32_t count = reader.u32();
  if (reader.failed() || count > reader.remaining() / 8) return false;
  ids->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) ids->push_back(reader.u64());
  return !reader.failed();
}

void encode_events(ByteWriter& writer,
                   const std::vector<pubsub::Notification>& events) {
  writer.u32(static_cast<std::uint32_t>(events.size()));
  for (const pubsub::Notification& event : events) {
    encode_notification(writer, event);
  }
}

bool decode_events(ByteReader& reader,
                   std::vector<pubsub::Notification>* events) {
  const std::uint32_t count = reader.u32();
  // The smallest encoded notification is 48 bytes (six fixed words plus two
  // empty strings).
  if (reader.failed() || count > reader.remaining() / 48) return false;
  events->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    events->push_back(decode_notification(reader));
  }
  return !reader.failed();
}

void encode_topic(ByteWriter& writer, const core::TopicSnapshot& topic) {
  encode_events(writer, topic.outgoing);
  encode_events(writer, topic.prefetch);
  encode_events(writer, topic.holding);
  writer.u32(static_cast<std::uint32_t>(topic.delayed.size()));
  for (const core::DelayedSnapshot& delayed : topic.delayed) {
    encode_notification(writer, delayed.event);
    writer.i64(delayed.release_at);
  }
  encode_events(writer, topic.history);
  encode_ids(writer, topic.forwarded);
  writer.u32(static_cast<std::uint32_t>(topic.expiration_armed.size()));
  for (const core::ArmedExpiration& armed : topic.expiration_armed) {
    writer.u64(armed.id);
    writer.i64(armed.expires_at);
  }
  encode_ids(writer, topic.seen_read_ids);
  encode_ids(writer, topic.seen_sync_ids);
  encode_average(writer, topic.old_reads);
  encode_interval(writer, topic.read_times);
  encode_average(writer, topic.exp_times);
  encode_interval(writer, topic.arrival_times);
  writer.u64(topic.queue_size_view);
  writer.f64(topic.rate_credit);
  writer.i64(topic.current_day);
  writer.u64(topic.forwarded_today);
}

bool decode_topic(ByteReader& reader, core::TopicSnapshot* topic) {
  if (!decode_events(reader, &topic->outgoing)) return false;
  if (!decode_events(reader, &topic->prefetch)) return false;
  if (!decode_events(reader, &topic->holding)) return false;
  const std::uint32_t delayed_count = reader.u32();
  if (reader.failed() || delayed_count > reader.remaining() / 56) return false;
  topic->delayed.reserve(delayed_count);
  for (std::uint32_t i = 0; i < delayed_count; ++i) {
    core::DelayedSnapshot delayed;
    delayed.event = decode_notification(reader);
    delayed.release_at = reader.i64();
    topic->delayed.push_back(std::move(delayed));
  }
  if (!decode_events(reader, &topic->history)) return false;
  if (!decode_ids(reader, &topic->forwarded)) return false;
  const std::uint32_t armed_count = reader.u32();
  if (reader.failed() || armed_count > reader.remaining() / 16) return false;
  topic->expiration_armed.reserve(armed_count);
  for (std::uint32_t i = 0; i < armed_count; ++i) {
    core::ArmedExpiration armed;
    armed.id = reader.u64();
    armed.expires_at = reader.i64();
    topic->expiration_armed.push_back(armed);
  }
  if (!decode_ids(reader, &topic->seen_read_ids)) return false;
  if (!decode_ids(reader, &topic->seen_sync_ids)) return false;
  if (!decode_average(reader, &topic->old_reads)) return false;
  if (!decode_interval(reader, &topic->read_times)) return false;
  if (!decode_average(reader, &topic->exp_times)) return false;
  if (!decode_interval(reader, &topic->arrival_times)) return false;
  topic->queue_size_view = reader.u64();
  topic->rate_credit = reader.f64();
  topic->current_day = reader.i64();
  topic->forwarded_today = reader.u64();
  return !reader.failed();
}

}  // namespace

std::string snapshot_blob_name(std::uint64_t seq) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "snap-%06llu",
                static_cast<unsigned long long>(seq));
  return buffer;
}

bool parse_snapshot_name(const std::string& name, std::uint64_t* seq) {
  constexpr const char* kPrefix = "snap-";
  if (name.size() <= 5 || name.compare(0, 5, kPrefix) != 0) return false;
  std::uint64_t value = 0;
  for (std::size_t i = 5; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

std::vector<std::uint8_t> encode_snapshot(const ProxySnapshot& snapshot) {
  ByteWriter body;
  body.u64(snapshot.watermark);
  body.i64(snapshot.taken_at);
  body.u8(snapshot.has_channel ? 1 : 0);
  if (snapshot.has_channel) {
    body.u64(snapshot.channel.next_seq);
    encode_ids(body, snapshot.channel.seen);
  }
  body.u32(static_cast<std::uint32_t>(snapshot.topics.size()));
  for (const auto& [name, topic] : snapshot.topics) {
    body.str(name);
    encode_topic(body, topic);
  }

  ByteWriter blob;
  for (char c : kMagic) blob.u8(static_cast<std::uint8_t>(c));
  blob.u32(static_cast<std::uint32_t>(body.size()));
  blob.u32(crc32(body.bytes()));
  std::vector<std::uint8_t> bytes = blob.take();
  const std::vector<std::uint8_t>& payload = body.bytes();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

bool decode_snapshot(const std::vector<std::uint8_t>& bytes,
                     ProxySnapshot* out) {
  constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 8;
  if (bytes.size() < kHeaderBytes) return false;
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) {
    if (bytes[i] != static_cast<std::uint8_t>(kMagic[i])) return false;
  }
  ByteReader header(bytes.data() + sizeof(kMagic), 8);
  const std::uint32_t length = header.u32();
  const std::uint32_t expected_crc = header.u32();
  if (bytes.size() - kHeaderBytes < length) return false;  // torn
  const std::uint8_t* body = bytes.data() + kHeaderBytes;
  if (crc32(body, length) != expected_crc) return false;

  ByteReader reader(body, length);
  out->watermark = reader.u64();
  out->taken_at = reader.i64();
  out->has_channel = reader.u8() != 0;
  if (out->has_channel) {
    out->channel.next_seq = reader.u64();
    if (!decode_ids(reader, &out->channel.seen)) return false;
  }
  const std::uint32_t topic_count = reader.u32();
  if (reader.failed()) return false;
  for (std::uint32_t i = 0; i < topic_count; ++i) {
    std::string name = reader.str();
    core::TopicSnapshot topic;
    if (!decode_topic(reader, &topic)) return false;
    out->topics.emplace_back(std::move(name), std::move(topic));
  }
  return reader.exhausted();
}

bool load_latest_snapshot(const StorageBackend& backend, ProxySnapshot* out,
                          std::uint64_t* seq, std::uint64_t* damaged) {
  // Sorted blob names and fixed-width sequence numbers: walking the list
  // backwards visits snapshots newest-first.
  const std::vector<std::string> names = backend.list();
  *damaged = 0;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    std::uint64_t candidate = 0;
    if (!parse_snapshot_name(*it, &candidate)) continue;
    std::vector<std::uint8_t> bytes;
    if (!backend.read(*it, &bytes)) continue;
    ProxySnapshot snapshot;
    if (!decode_snapshot(bytes, &snapshot)) {
      ++*damaged;
      continue;
    }
    *out = std::move(snapshot);
    *seq = candidate;
    return true;
  }
  return false;
}

}  // namespace waif::storage
