// Fault injection for the durability layer — the storage twin of
// net::FaultModel.
//
// Disks fail differently from radios: an fsync can return an error while
// earlier writes sit in the page cache, a crash can tear the last appended
// frame mid-record, and cold data can rot a bit at a time. A
// StorageFaultModel layers those failure modes over a StorageBackend,
// drawing every decision from its own seeded RNG so a chaos run replays
// bit-identically at any --jobs count.
//
// With every probability at zero the model is disabled and the backend
// behaves like perfect hardware.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace waif::storage {

struct StorageFaultConfig {
  /// Probability that a sync() call fails: nothing new becomes durable and
  /// the caller is told so (the WAL then refuses the dependent delivery).
  double fsync_failure_probability = 0.0;

  /// Probability that a crash tears the unsynced tail instead of discarding
  /// it cleanly: a uniformly-drawn prefix of the unsynced bytes survives,
  /// possibly cutting a record frame in half. 0 = crashes always discard
  /// the whole unsynced tail.
  double torn_write_probability = 0.0;

  /// Probability that a crash flips one random bit in whatever part of the
  /// unsynced tail survived it (latent corruption the CRC must catch).
  double bit_flip_probability = 0.0;

  /// Any fault parameter non-zero?
  bool enabled() const {
    return fsync_failure_probability > 0.0 || torn_write_probability > 0.0 ||
           bit_flip_probability > 0.0;
  }
};

struct StorageFaultStats {
  /// sync() calls the model failed.
  std::uint64_t fsync_failures = 0;
  /// Crashes that left a torn (partial) unsynced tail behind.
  std::uint64_t torn_writes = 0;
  /// Bits flipped in surviving unsynced data.
  std::uint64_t bit_flips = 0;
};

/// Seeded, deterministic fault process for one storage backend. All
/// randomness comes from the model's own RNG, consumed in simulation event
/// order, so a run is reproducible from (StorageFaultConfig, seed) alone.
class StorageFaultModel {
 public:
  /// Throws std::invalid_argument (naming the offending field) for NaN,
  /// negative, or above-1 probabilities.
  StorageFaultModel(StorageFaultConfig config, std::uint64_t seed);

  const StorageFaultConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  /// One sync() attempt; false = the fsync failed.
  bool sync_passes();

  /// Crash semantics for `unsynced` trailing bytes of one blob: how many of
  /// them survive the crash (0 = clean discard; a torn write keeps a
  /// uniformly-drawn strict prefix).
  std::size_t surviving_tail(std::size_t unsynced);

  /// Should the crash flip a bit in the surviving unsynced region? If so,
  /// returns the bit offset to flip within `surviving` bytes.
  bool draw_bit_flip(std::size_t surviving, std::size_t* bit_offset);

  const StorageFaultStats& stats() const { return stats_; }

 private:
  StorageFaultConfig config_;
  Rng rng_;
  StorageFaultStats stats_;
};

}  // namespace waif::storage
