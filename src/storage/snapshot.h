// The checkpoint blob: a full proxy image, written periodically so recovery
// replays only the WAL tail past the snapshot's watermark.
//
// Layout: an 8-byte magic ("WAIFSNP1"), then one CRC-framed body using the
// same [u32 length][u32 crc32] frame as the WAL. A snapshot is valid only if
// the magic matches, the frame is whole and the CRC passes — a snapshot torn
// by a crash (snapshots go through the same volatile-until-sync backend) is
// rejected wholesale and recovery falls back to the previous one.
//
// Blobs are named "snap-NNNNNN"; the sequence number orders them, newest
// last.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "core/snapshot.h"
#include "storage/backend.h"

namespace waif::storage {

/// One durable proxy image.
struct ProxySnapshot {
  /// WAL records covered by this image: recovery replays records
  /// [watermark, end) on top of it.
  std::uint64_t watermark = 0;
  /// Simulation instant the image was taken.
  SimTime taken_at = 0;
  /// Reliable-channel transport state, when a channel is attached.
  bool has_channel = false;
  core::ChannelSnapshot channel;
  /// Per-topic durable state, sorted by topic name.
  std::vector<std::pair<std::string, core::TopicSnapshot>> topics;
};

/// "snap-000042" for seq 42.
std::string snapshot_blob_name(std::uint64_t seq);

/// Parses a snapshot blob name; false when `name` is not one.
bool parse_snapshot_name(const std::string& name, std::uint64_t* seq);

std::vector<std::uint8_t> encode_snapshot(const ProxySnapshot& snapshot);

/// Decodes a snapshot blob. False on any damage (bad magic, torn frame,
/// CRC mismatch, malformed body) — the caller falls back to an older one.
bool decode_snapshot(const std::vector<std::uint8_t>& bytes,
                     ProxySnapshot* out);

/// Newest valid snapshot in the backend, if any. Damaged snapshots are
/// skipped (and reported via `damaged`, for fsck-style accounting).
bool load_latest_snapshot(const StorageBackend& backend, ProxySnapshot* out,
                          std::uint64_t* seq, std::uint64_t* damaged);

}  // namespace waif::storage
