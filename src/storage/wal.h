// The write-ahead log of proxy mutations.
//
// Every record is one framed entry appended to a single blob:
//
//     [u32 payload_length][u32 crc32(payload)][payload...]
//
// The payload is the little-endian encoding of a WalRecord. On recovery the
// log is scanned front to back; the scan stops at the first frame that is
// torn (fewer bytes than the header promises) or fails its CRC — everything
// before that point is trusted, everything after is discarded (a repair
// truncates the blob back to the last valid frame boundary). Appends are
// not durable until sync(); the writer tracks how many records sit in the
// unsynced window, which bounds what a crash can lose.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/journal.h"
#include "core/read_protocol.h"
#include "pubsub/notification.h"
#include "storage/backend.h"
#include "storage/codec.h"

namespace waif::storage {

/// Default blob name of the proxy WAL.
inline constexpr const char* kWalBlobName = "wal";

enum class WalRecordType : std::uint8_t {
  kEnqueue = 1,  // a NOTIFICATION (or READ-difference move) placed in a queue
  kForward = 2,  // an event handed to the device channel (write-ahead!)
  kRead = 3,     // an online READ request handled
  kSync = 4,     // a device sync (queue size + offline-read log) handled
  kExpire = 5,   // an event purged as expired
  kRequeue = 6,  // the reliable channel handed an abandoned transfer back
  kAck = 7,      // the device ACKed a forwarded event (reliable channel)
  kShed = 8,     // an event dropped by the overload budget (core/overload.h)
};

/// One WAL entry. A flat union-style struct: `type` says which fields are
/// meaningful (the encoding only stores those).
struct WalRecord {
  WalRecordType type = WalRecordType::kEnqueue;
  std::string topic;
  SimTime at = 0;

  // kEnqueue / kForward / kRequeue / kShed
  pubsub::Notification event;

  // kEnqueue
  core::JournalStage stage = core::JournalStage::kDropped;
  SimTime release_at = 0;
  bool fresh = false;
  bool exp_tracked = false;

  // kEnqueue / kForward
  double rate_credit = 0.0;

  // kForward
  bool replicated = false;

  // kRead
  std::uint64_t request_id = 0;
  int n = 0;

  // kRead / kSync
  std::uint64_t queue_size = 0;

  // kSync
  std::uint64_t sync_id = 0;
  std::vector<core::ReadRecord> offline_reads;

  // kExpire / kAck
  std::uint64_t id = 0;

  // kExpire
  bool timer_fired = false;
};

/// Shared notification codec (the snapshot blob uses the same encoding).
void encode_notification(ByteWriter& writer, const pubsub::Notification& event);
pubsub::Notification decode_notification(ByteReader& reader);

/// Encodes one record as a complete frame (header + payload).
std::vector<std::uint8_t> encode_wal_record(const WalRecord& record);

/// Appends one record's frame to `out`, reusing `payload_scratch` for the
/// payload encoding. Byte-for-byte identical to encode_wal_record, without
/// the two temporary vectors — the allocation-free framing path.
void encode_wal_record_into(const WalRecord& record, ByteWriter& payload_scratch,
                            ByteWriter& out);

/// Appender for one WAL blob.
///
/// Two commit modes:
///   * per-record (default): every append() hands one framed record to the
///     backend immediately — the original behavior, byte-identical logs.
///   * group commit (set_group_commit(true)): append() stages frames in a
///     reusable buffer; flush() splices the whole batch into the backend
///     with ONE append call, and sync() fsyncs once for the batch. The log
///     bytes are identical either way — only the backend call pattern (and
///     the fsync count) changes.
class WalWriter {
 public:
  /// `initial_count` seeds the record counter when an incarnation continues
  /// an existing log (the count recovered from it).
  WalWriter(StorageBackend& backend, std::string blob,
            std::uint64_t initial_count = 0)
      : backend_(backend), blob_(std::move(blob)), count_(initial_count) {}

  /// Appends one frame (volatile until sync(); with group commit on, not
  /// even in the backend's cache until flush()).
  void append(const WalRecord& record);

  /// Batch staged frames instead of handing each to the backend. Turning
  /// the mode off flushes whatever is staged.
  void set_group_commit(bool on);
  bool group_commit() const { return group_commit_; }

  /// Splices every staged frame into the backend in one append. No-op when
  /// nothing is staged.
  void flush();
  /// Frames staged but not yet handed to the backend.
  std::uint64_t staged_records() const { return staged_; }

  /// Makes every appended frame durable (flushing staged frames first).
  /// False = the fsync failed and the unsynced window is still at risk.
  bool sync();

  /// Records appended over the lifetime of the log (all incarnations).
  std::uint64_t record_count() const { return count_; }
  /// Re-seeds the counter from a recovered log (nothing unsynced yet).
  void reset_count(std::uint64_t count) {
    count_ = count;
    unsynced_ = 0;
    staging_.clear();
    staged_ = 0;
  }
  /// Records appended since the last successful sync (staged ones included).
  std::uint64_t unsynced_records() const { return unsynced_; }

 private:
  StorageBackend& backend_;
  std::string blob_;
  std::uint64_t count_ = 0;
  std::uint64_t unsynced_ = 0;
  bool group_commit_ = false;
  std::uint64_t staged_ = 0;
  // Reusable scratch: payload encoding, the single-record frame (per-record
  // mode) and the staged batch (group-commit mode). clear() keeps capacity,
  // so steady-state framing never touches the heap.
  ByteWriter payload_scratch_;
  ByteWriter frame_scratch_;
  ByteWriter staging_;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  /// Bytes covered by valid frames — the repair truncation point.
  std::size_t valid_bytes = 0;
  /// Total blob size (valid_bytes < total_bytes means a damaged tail).
  std::size_t total_bytes = 0;
  /// Frames rejected by their CRC (bit flips; 0 or 1 — the scan stops).
  std::uint64_t crc_failures = 0;
  /// True when the blob ends in a partial frame (torn final write).
  bool torn_tail = false;

  bool clean() const { return valid_bytes == total_bytes; }
};

/// Scans the WAL blob, returning every record up to the first damage. A
/// missing blob yields an empty, clean result.
WalReadResult read_wal(const StorageBackend& backend,
                       const std::string& blob = kWalBlobName);

}  // namespace waif::storage
