#include "storage/fsck.h"

#include <cstdio>

#include "storage/snapshot.h"
#include "storage/wal.h"

namespace waif::storage {

FsckReport waif_fsck(const StorageBackend& backend) {
  FsckReport report;

  const WalReadResult wal = read_wal(backend);
  report.wal_records = wal.records.size();
  report.wal_valid_bytes = wal.valid_bytes;
  report.wal_total_bytes = wal.total_bytes;
  report.wal_torn_tail = wal.torn_tail;
  report.wal_crc_failures = wal.crc_failures;

  bool have_latest = false;
  for (const std::string& name : backend.list()) {
    if (name == kWalBlobName) continue;
    std::uint64_t seq = 0;
    if (!parse_snapshot_name(name, &seq)) {
      ++report.unknown_blobs;
      continue;
    }
    std::vector<std::uint8_t> bytes;
    ProxySnapshot snapshot;
    if (!backend.read(name, &bytes) || !decode_snapshot(bytes, &snapshot)) {
      ++report.damaged_snapshots;
      continue;
    }
    ++report.valid_snapshots;
    if (!have_latest || seq > report.latest_snapshot_seq) {
      have_latest = true;
      report.latest_snapshot_seq = seq;
      report.latest_watermark = snapshot.watermark;
    }
  }
  if (have_latest && report.latest_watermark > report.wal_records) {
    report.watermark_beyond_log = true;
  }
  return report;
}

std::string format_report(const FsckReport& report) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "wal: %llu records, %zu/%zu bytes valid%s%s\n"
      "snapshots: %llu valid, %llu damaged%s\n"
      "unknown blobs: %llu\n"
      "verdict: %s\n",
      static_cast<unsigned long long>(report.wal_records),
      report.wal_valid_bytes, report.wal_total_bytes,
      report.wal_torn_tail ? ", torn tail" : "",
      report.wal_crc_failures > 0 ? ", crc failure" : "",
      static_cast<unsigned long long>(report.valid_snapshots),
      static_cast<unsigned long long>(report.damaged_snapshots),
      report.watermark_beyond_log ? ", watermark beyond log!" : "",
      static_cast<unsigned long long>(report.unknown_blobs),
      report.clean()        ? "clean"
      : report.recoverable() ? "damaged (recoverable)"
                             : "inconsistent (unrecoverable)");
  return buffer;
}

}  // namespace waif::storage
