// waif_fsck: offline integrity checker for a proxy storage directory.
//
// Walks every blob a ProxyPersistence writes — the WAL and the snapshot
// checkpoints — and reports what a recovery would find: how much of the WAL
// is valid, whether the tail is torn or CRC-damaged, which snapshots decode,
// and whether the newest snapshot's watermark is consistent with the log
// (a snapshot claiming to cover more records than the log holds means the
// write-ahead discipline was violated — the one corruption recovery cannot
// repair silently).
#pragma once

#include <cstdint>
#include <string>

#include "storage/backend.h"

namespace waif::storage {

struct FsckReport {
  // WAL
  std::uint64_t wal_records = 0;
  std::size_t wal_valid_bytes = 0;
  std::size_t wal_total_bytes = 0;
  bool wal_torn_tail = false;
  std::uint64_t wal_crc_failures = 0;

  // Snapshots
  std::uint64_t valid_snapshots = 0;
  std::uint64_t damaged_snapshots = 0;
  std::uint64_t latest_snapshot_seq = 0;
  std::uint64_t latest_watermark = 0;
  /// The newest valid snapshot covers records the log does not hold —
  /// unrecoverable inconsistency (should be impossible: snapshots sync the
  /// WAL before claiming a watermark).
  bool watermark_beyond_log = false;

  /// Blobs that are neither the WAL nor a snapshot.
  std::uint64_t unknown_blobs = 0;

  /// Repairable damage only? (A torn tail or a trailing CRC failure is
  /// expected after a crash; recovery truncates it away.)
  bool recoverable() const { return !watermark_beyond_log; }
  /// No damage at all.
  bool clean() const {
    return wal_valid_bytes == wal_total_bytes && wal_crc_failures == 0 &&
           !wal_torn_tail && damaged_snapshots == 0 && !watermark_beyond_log;
  }
};

/// Checks every blob in `backend`. Read-only: never repairs.
FsckReport waif_fsck(const StorageBackend& backend);

/// Human-readable multi-line report.
std::string format_report(const FsckReport& report);

}  // namespace waif::storage
