// Crash-consistent proxy persistence: the glue between core's journal hooks
// and the WAL/snapshot blobs.
//
// A ProxyPersistence attaches to one Proxy as its journal. Every mutation
// becomes one WAL record; forwards follow the write-ahead discipline — the
// record is made durable *before* the event is handed to the device channel
// (on_forward returns false on a failed fsync and the proxy parks the event
// instead of delivering it), so recovery can never observe a delivery the
// log missed, and therefore never re-delivers: duplicates are structurally
// impossible. What a crash *can* lose is bounded by the sync policy: at most
// `sync_interval` unsynced non-forward records (plus every record after the
// last successful sync when sync_on_forward is off).
//
// Periodically (every `snapshot_interval` records) the full proxy image is
// checkpointed so recovery replays only the WAL tail past the snapshot's
// watermark. Snapshots are deferred to a fresh simulator event at the
// current instant — never taken in the middle of a TopicState callback —
// and the WAL is synced first so a snapshot can never cover records that
// are not themselves durable.
//
// recover() is the other half: load the newest valid snapshot, replay the
// WAL tail through a pure-data mirror of TopicState's transition rules (the
// JournalStage table in core/journal.h), repair a damaged WAL tail by
// truncating it, and hand back a RecoveryResult that restore_into() applies
// to a freshly built Proxy.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/forwarding_policy.h"
#include "core/journal.h"
#include "core/proxy.h"
#include "core/reliable_channel.h"
#include "sim/simulator.h"
#include "storage/backend.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace waif::storage {

struct PersistenceConfig {
  /// Take a checkpoint every this many WAL records; 0 = never (recovery
  /// replays the whole log).
  std::uint64_t snapshot_interval = 256;
  /// Sync the WAL once this many records are unsynced. 1 = sync every
  /// record (smallest loss window, most fsyncs).
  std::uint64_t sync_interval = 1;
  /// Sync the WAL inside on_forward, before the delivery is allowed — the
  /// write-ahead discipline that makes duplicates structurally impossible.
  /// Turning this off widens the loss window to the whole unsynced tail and
  /// weakens that guarantee: a forward record lost in a crash leaves the
  /// event in the recovered queues, so it is delivered again — harmless
  /// while the device still holds the copy (re-delivery replaces it), but
  /// an event the user already read surfaces a second time.
  bool sync_on_forward = true;
  /// Keep this many newest snapshots; older ones are pruned.
  std::uint64_t keep_snapshots = 2;
  /// Batch WAL framing with one fsync per producing simulator event instead
  /// of one per record. Appends stage in the writer; a post-event hook on
  /// the simulator flushes the whole batch with one backend append and one
  /// fsync the moment the producing callback returns — before ANY later
  /// event (a second arrival at the same instant, a deferred snapshot, a
  /// crash) can run, so nothing observable ever sees the staged window.
  /// Forwards still flush+fsync inline (the write-ahead discipline is
  /// untouched). Off by default: the per-record call pattern (and every
  /// digest) is byte-identical to the pre-group-commit code.
  bool group_commit = false;
};

struct PersistenceStats {
  std::uint64_t records = 0;          // WAL records appended
  std::uint64_t syncs = 0;            // successful WAL syncs
  std::uint64_t failed_syncs = 0;     // fsync failures (WAL or snapshot)
  std::uint64_t snapshots = 0;        // checkpoints made durable
  std::uint64_t failed_snapshots = 0; // checkpoints aborted by a failed sync
  std::uint64_t forward_refusals = 0; // on_forward returned false
};

/// What recover() found, ready to be applied to a fresh proxy.
struct RecoveryResult {
  /// The rebuilt image (topics sorted by name). `state.watermark` is the
  /// total valid WAL record count — seed a continuing ProxyPersistence from
  /// it via resume_from().
  ProxySnapshot state;
  /// Events logged as forwarded but never ACKed by the device (reliable
  /// channel deployments only — empty without kAck records). In doubt: the
  /// crash may have hit before or after the device got them.
  std::vector<pubsub::Notification> unacked;
  std::uint64_t wal_records = 0;       // valid records in the log
  std::uint64_t replayed = 0;          // records applied past the watermark
  bool from_snapshot = false;
  std::uint64_t snapshot_seq = 0;
  std::uint64_t damaged_snapshots = 0; // snapshots skipped as invalid
  bool repaired = false;               // damaged WAL tail truncated away
  std::uint64_t crc_failures = 0;      // WAL frames rejected by CRC
  bool torn_tail = false;              // WAL ended mid-frame
};

/// Policy for the in-doubt (forwarded, never ACKed) events at restore time.
enum class RecoverUnacked : std::uint8_t {
  /// Trust the log: treat them as delivered. A transfer the crash actually
  /// killed surfaces as a loss the next READ can repair.
  kTrustForwarded,
  /// Distrust the transport: requeue each still-live in-doubt event into
  /// the holding queue (TopicState::requeue_undelivered). The device-side
  /// dedup window absorbs the re-send if the original did arrive.
  kRequeueHolding,
};

class ProxyPersistence final : public core::ProxyJournal,
                               public core::ProxyRecovery {
 public:
  ProxyPersistence(sim::Simulator& sim, StorageBackend& backend,
                   PersistenceConfig config = {});
  ~ProxyPersistence() override;

  ProxyPersistence(const ProxyPersistence&) = delete;
  ProxyPersistence& operator=(const ProxyPersistence&) = delete;

  /// Continues an existing log: seeds the record counter, the snapshot
  /// watermark and the snapshot sequence from what recover() found. Call
  /// before attach().
  /// (recovery.wal_records seeds the counter; a snapshot's watermark and
  /// sequence carry over so pruning and intervals continue seamlessly.)
  void resume_from(const RecoveryResult& recovery);

  /// Starts journaling `proxy` (proxy.set_journal(this)). One proxy at a
  /// time; attaching to another detaches the first.
  void attach(core::Proxy& proxy);
  /// Stops journaling and cancels any pending deferred snapshot.
  void detach();
  /// Drops the attachment without touching the proxy — for when the proxy
  /// object was already destroyed (e.g. ReplicatedProxy::restart_replica
  /// rebuilds the replica it crashed).
  void forget();

  /// Registers the reliable channel whose ACKs should be journaled; wires
  /// its ack observer to on_device_ack. nullptr detaches.
  void set_channel(core::ReliableDeviceChannel* channel);

  /// Called after every appended record with the lifetime record count —
  /// the chaos harness's "kill at the Nth record" trigger.
  void set_record_hook(std::function<void(std::uint64_t)> hook);

  /// Takes a checkpoint now (WAL sync, snapshot blob, prune). False when a
  /// failed sync aborted it. No-op (false) while detached.
  bool snapshot_now();

  /// The device ACKed `event` (reliable channel): journal it so recovery
  /// can tell confirmed deliveries from in-doubt ones.
  void on_device_ack(const pubsub::NotificationPtr& event);

  const PersistenceStats& stats() const { return stats_; }
  std::uint64_t record_count() const { return writer_.record_count(); }
  std::uint64_t unsynced_records() const { return writer_.unsynced_records(); }

  // --- core::ProxyJournal ---------------------------------------------------
  void on_enqueue(const std::string& topic,
                  const core::EnqueueRecord& record) override;
  bool on_forward(const std::string& topic, const pubsub::NotificationPtr& event,
                  SimTime at, double rate_credit, bool replicated) override;
  void on_read(const std::string& topic, std::uint64_t request_id, int n,
               std::size_t queue_size, SimTime at) override;
  void on_sync(const std::string& topic, std::size_t queue_size,
               std::uint64_t sync_id,
               const std::vector<core::ReadRecord>& offline_reads,
               SimTime at) override;
  void on_expire(const std::string& topic, NotificationId id, bool timer_fired,
                 SimTime at) override;
  void on_requeue(const std::string& topic, const pubsub::NotificationPtr& event,
                  SimTime at) override;
  void on_shed(const std::string& topic, const pubsub::NotificationPtr& event,
               SimTime at) override;

  // --- core::ProxyRecovery --------------------------------------------------
  /// Failover: follow the active role — journal the promoted proxy and
  /// immediately re-base the log with a checkpoint of its state.
  void on_promoted(core::Proxy& active) override;
  /// restart_replica built a fresh proxy: fill it from the durable state
  /// (recover + restore_into with kTrustForwarded). Does not attach.
  void warm_restart(core::Proxy& fresh) override;

  // --- recovery (static: no live ProxyPersistence needed) -------------------
  /// Loads the newest valid snapshot and replays the WAL tail. `configs`
  /// supplies per-topic delivery mode and moving-average window — the two
  /// config inputs the replay rules depend on. A damaged WAL tail is
  /// repaired (truncated) in `backend`.
  static RecoveryResult recover(
      StorageBackend& backend,
      const std::map<std::string, core::TopicConfig>& configs);

  /// Applies a RecoveryResult to a proxy whose topics are already added but
  /// untouched. Restores every topic image; with kRequeueHolding also
  /// requeues the still-live in-doubt events. Does not call handle_network
  /// or try_forwarding — the caller drives those once wiring is complete.
  static void restore_into(core::Proxy& proxy, const RecoveryResult& recovery,
                           RecoverUnacked mode = RecoverUnacked::kTrustForwarded);

 private:
  /// Appends one record and runs the sync/snapshot/hook policy chain.
  void append(const WalRecord& record);
  void maybe_sync();
  void maybe_request_snapshot();
  /// Group commit: the end-of-event flush+fsync of the staged batch (runs
  /// as a simulator post-event hook).
  void flush_group();

  sim::Simulator& sim_;
  StorageBackend& backend_;
  PersistenceConfig config_;
  WalWriter writer_;
  core::Proxy* attached_ = nullptr;
  core::ReliableDeviceChannel* channel_ = nullptr;
  std::function<void(std::uint64_t)> record_hook_;
  std::uint64_t last_snapshot_watermark_ = 0;
  std::uint64_t next_snapshot_seq_ = 1;
  bool snapshot_pending_ = false;
  sim::EventHandle snapshot_event_;
  std::size_t flush_hook_id_ = 0;  // post-event hook id (group commit only)
  PersistenceStats stats_;
};

}  // namespace waif::storage
