// Byte-level serialization primitives for the durability layer.
//
// Everything the storage subsystem writes — WAL frames, snapshot blobs — is
// encoded little-endian with explicit widths, so a log written on one
// platform replays bit-identically on another. CRC32 (the IEEE 802.3
// polynomial) frames detect torn writes and bit flips.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace waif::storage {

/// CRC32 (IEEE, reflected 0xEDB88320) of `data`.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);
std::uint32_t crc32(const std::vector<std::uint8_t>& data);

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  /// Doubles travel by bit pattern — exact round-trip, no locale, no
  /// formatting loss.
  void f64(double value);
  /// Length-prefixed (u32) byte string.
  void str(const std::string& value);
  /// Raw bytes, no length prefix — for splicing an already-encoded payload
  /// into a frame.
  void raw(const std::uint8_t* data, std::size_t size);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  /// Drops the content but keeps the capacity — the reuse primitive the WAL
  /// writer's scratch buffers rely on to stay allocation-free.
  void clear() { bytes_.clear(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian decoder. Decoding past the end or a length
/// prefix overrunning the buffer sets failed(); all reads after a failure
/// return zero values, so a decoder can run to completion and be checked
/// once.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& data)
      : ByteReader(data.data(), data.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();

  bool failed() const { return failed_; }
  /// All bytes consumed and no read ever overran?
  bool exhausted() const { return !failed_ && offset_ == size_; }
  std::size_t remaining() const { return size_ - offset_; }

 private:
  bool take(std::size_t count, const std::uint8_t** out);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
  bool failed_ = false;
};

}  // namespace waif::storage
