// Network-outage schedules for the last hop.
//
// The paper models outages as a Poisson-started process with high-variance
// durations whose cumulative downtime covers a configurable 0..100% of the
// run ("periods of unacceptably slow network performance" count as outages
// too). A schedule is a precomputed, sorted list of down intervals so that
// the identical outage pattern can be replayed under every forwarding policy.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.h"

namespace waif::net {

/// Half-open down interval [start, end).
struct Outage {
  SimTime start;
  SimTime end;

  SimDuration duration() const { return end - start; }
};

class OutageSchedule {
 public:
  OutageSchedule() = default;

  /// `outages` must be within [0, horizon); overlapping or unsorted input is
  /// normalized (sorted and merged).
  OutageSchedule(std::vector<Outage> outages, SimTime horizon);

  /// Convenience: the link is down for the whole run.
  static OutageSchedule always_down(SimTime horizon);
  /// Convenience: no outages at all.
  static OutageSchedule always_up(SimTime horizon);

  bool is_down(SimTime at) const;
  bool is_up(SimTime at) const { return !is_down(at); }

  /// Fraction of [0, horizon) spent down.
  double downtime_fraction() const;

  SimTime horizon() const { return horizon_; }
  const std::vector<Outage>& outages() const { return outages_; }
  std::size_t count() const { return outages_.size(); }

  /// Start of the first outage at or after `at`, or kNever.
  SimTime next_down(SimTime at) const;
  /// First instant at or after `at` when the link is up, or kNever if the
  /// schedule is down through the horizon and beyond.
  SimTime next_up(SimTime at) const;

 private:
  std::vector<Outage> outages_;  // sorted, disjoint
  SimTime horizon_ = 0;
};

}  // namespace waif::net
