#include "net/fault.h"

#include "common/check.h"
#include "common/distributions.h"

namespace waif::net {

FaultModel::FaultModel(FaultConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  WAIF_CHECK(config.drop_probability >= 0.0 && config.drop_probability <= 1.0);
  WAIF_CHECK(config.burst_start_probability >= 0.0 &&
             config.burst_start_probability <= 1.0);
  WAIF_CHECK(config.mean_burst_length >= 1.0);
  WAIF_CHECK(config.half_open_probability >= 0.0 &&
             config.half_open_probability <= 1.0);
  WAIF_CHECK(config.mean_half_open > 0);
  WAIF_CHECK(config.base_latency >= 0);
  WAIF_CHECK(config.mean_latency_jitter >= 0);
  WAIF_CHECK(config.uplink_drop_probability >= 0.0 &&
             config.uplink_drop_probability <= 1.0);
}

bool FaultModel::downlink_passes(SimTime now) {
  if (half_open(now)) {
    ++stats_.half_open_drops;
    return false;
  }
  if (in_burst_) {
    ++stats_.burst_drops;
    // Geometric burst length: each swallowed message ends the burst with
    // probability 1/mean.
    if (rng_.next_double() < 1.0 / config_.mean_burst_length) {
      in_burst_ = false;
    }
    return false;
  }
  if (config_.burst_start_probability > 0.0 &&
      rng_.next_double() < config_.burst_start_probability) {
    in_burst_ = true;
    ++stats_.bursts;
    ++stats_.burst_drops;
    return false;
  }
  if (config_.drop_probability > 0.0 &&
      rng_.next_double() < config_.drop_probability) {
    ++stats_.independent_drops;
    return false;
  }
  return true;
}

bool FaultModel::uplink_passes() {
  if (config_.uplink_drop_probability > 0.0 &&
      rng_.next_double() < config_.uplink_drop_probability) {
    ++stats_.uplink_drops;
    return false;
  }
  return true;
}

SimDuration FaultModel::draw_downlink_latency() {
  SimDuration latency = config_.base_latency;
  if (config_.mean_latency_jitter > 0) {
    latency += seconds(
        Exponential(to_seconds(config_.mean_latency_jitter))(rng_));
  }
  return latency;
}

void FaultModel::on_link_up(SimTime now) {
  if (config_.half_open_probability > 0.0 &&
      rng_.next_double() < config_.half_open_probability) {
    const SimDuration window =
        seconds(Exponential(to_seconds(config_.mean_half_open))(rng_));
    half_open_until_ = now + std::max<SimDuration>(window, 1);
    ++stats_.half_open_windows;
  }
}

}  // namespace waif::net
