#include "net/fault.h"

#include <stdexcept>
#include <string>

#include "common/distributions.h"

namespace waif::net {

namespace {

/// Rejects bad fault parameters at construction with a message naming the
/// field, mirroring workload::validate_scenario: a malformed config (NaN,
/// negative, probability above 1) is a caller bug worth a real diagnostic,
/// not a WAIF_CHECK abort. The comparisons are written so NaN fails them.
void require(bool ok, const std::string& message) {
  if (!ok) throw std::invalid_argument("fault config: " + message);
}

void require_probability(double value, const char* field) {
  require(value >= 0.0 && value <= 1.0,
          std::string(field) + " must be a probability in [0, 1], got " +
              std::to_string(value));
}

}  // namespace

FaultModel::FaultModel(FaultConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  require_probability(config.drop_probability, "drop_probability");
  require_probability(config.burst_start_probability,
                      "burst_start_probability");
  require(config.mean_burst_length >= 1.0,
          "mean_burst_length must be >= 1, got " +
              std::to_string(config.mean_burst_length));
  require_probability(config.half_open_probability, "half_open_probability");
  require(config.mean_half_open > 0,
          "mean_half_open must be a positive duration");
  require(config.base_latency >= 0, "base_latency must be non-negative");
  require(config.mean_latency_jitter >= 0,
          "mean_latency_jitter must be non-negative");
  require_probability(config.uplink_drop_probability,
                      "uplink_drop_probability");
}

bool FaultModel::downlink_passes(SimTime now) {
  if (half_open(now)) {
    ++stats_.half_open_drops;
    return false;
  }
  if (in_burst_) {
    ++stats_.burst_drops;
    // Geometric burst length: each swallowed message ends the burst with
    // probability 1/mean.
    if (rng_.next_double() < 1.0 / config_.mean_burst_length) {
      in_burst_ = false;
    }
    return false;
  }
  if (config_.burst_start_probability > 0.0 &&
      rng_.next_double() < config_.burst_start_probability) {
    in_burst_ = true;
    ++stats_.bursts;
    ++stats_.burst_drops;
    return false;
  }
  if (config_.drop_probability > 0.0 &&
      rng_.next_double() < config_.drop_probability) {
    ++stats_.independent_drops;
    return false;
  }
  return true;
}

bool FaultModel::uplink_passes() {
  if (config_.uplink_drop_probability > 0.0 &&
      rng_.next_double() < config_.uplink_drop_probability) {
    ++stats_.uplink_drops;
    return false;
  }
  return true;
}

SimDuration FaultModel::draw_downlink_latency() {
  SimDuration latency = config_.base_latency;
  if (config_.mean_latency_jitter > 0) {
    latency += seconds(
        Exponential(to_seconds(config_.mean_latency_jitter))(rng_));
  }
  return latency;
}

void FaultModel::on_link_up(SimTime now) {
  if (config_.half_open_probability > 0.0 &&
      rng_.next_double() < config_.half_open_probability) {
    const SimDuration window =
        seconds(Exponential(to_seconds(config_.mean_half_open))(rng_));
    half_open_until_ = now + std::max<SimDuration>(window, 1);
    ++stats_.half_open_windows;
  }
}

}  // namespace waif::net
