#include "net/link.h"

#include <utility>

#include "common/check.h"

namespace waif::net {

Link::Link(sim::Simulator& sim) : sim_(sim) {}

void Link::set_state(LinkState state) {
  if (state == state_) return;
  if (state_ == LinkState::kDown) {
    accumulated_downtime_ += sim_.now() - last_transition_;
  }
  state_ = state;
  last_transition_ = sim_.now();
  ++stats_.transitions;
  if (state == LinkState::kUp && fault_) fault_->on_link_up(sim_.now());
  for (const auto& listener : listeners_) listener(state);
}

void Link::on_state_change(std::function<void(LinkState)> listener) {
  WAIF_CHECK(listener != nullptr);
  listeners_.push_back(std::move(listener));
}

void Link::apply_schedule(const OutageSchedule& schedule) {
  // A second schedule would interleave its transitions with the first one's,
  // double-counting transitions and corrupting downtime accounting.
  WAIF_CHECK(!schedule_applied_);
  schedule_applied_ = true;
  set_state(schedule.is_down(sim_.now()) ? LinkState::kDown : LinkState::kUp);
  for (const Outage& outage : schedule.outages()) {
    if (outage.end <= sim_.now()) continue;
    if (outage.start > sim_.now()) {
      sim_.schedule_at(outage.start, [this] { set_state(LinkState::kDown); });
    }
    // A schedule covers [0, horizon); an outage truncated at the horizon has
    // no recovery inside the modeled run, so no up-transition is scheduled
    // (it would fire exactly at the horizon and leak traffic into the last
    // instant of the run).
    if (outage.end < schedule.horizon()) {
      sim_.schedule_at(outage.end, [this] { set_state(LinkState::kUp); });
    }
  }
}

void Link::record_downlink(std::size_t bytes) {
  WAIF_CHECK(is_up());
  ++stats_.downlink_messages;
  stats_.downlink_bytes += bytes;
}

void Link::record_uplink(std::size_t bytes) {
  WAIF_CHECK(is_up());
  ++stats_.uplink_messages;
  stats_.uplink_bytes += bytes;
}

SimDuration Link::downtime() const {
  SimDuration total = accumulated_downtime_;
  if (state_ == LinkState::kDown) total += sim_.now() - last_transition_;
  return total;
}

void Link::set_fault_model(FaultConfig config, std::uint64_t seed) {
  fault_.emplace(config, seed);
}

bool Link::downlink_passes() {
  WAIF_CHECK(is_up());
  return !fault_ || fault_->downlink_passes(sim_.now());
}

bool Link::uplink_passes() {
  WAIF_CHECK(is_up());
  return !fault_ || fault_->uplink_passes();
}

SimDuration Link::draw_downlink_latency() {
  return fault_ ? fault_->draw_downlink_latency() : 0;
}

}  // namespace waif::net
