// The last hop: the link between the proxy (wired infrastructure) and the
// mobile device.
//
// The link is a two-state (up/down) machine with change listeners — the
// proxy's NETWORK(status) handler in the paper is exactly such a listener —
// plus transfer accounting, since waste on this link is what the whole paper
// is about.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/time.h"
#include "net/fault.h"
#include "net/outage.h"
#include "sim/simulator.h"

namespace waif::net {

enum class LinkState : std::uint8_t { kDown, kUp };

struct LinkStats {
  /// Notification transfers proxy -> device.
  std::uint64_t downlink_messages = 0;
  /// READ requests and context updates device -> proxy.
  std::uint64_t uplink_messages = 0;
  std::uint64_t downlink_bytes = 0;
  std::uint64_t uplink_bytes = 0;
  std::uint64_t transitions = 0;
};

class Link {
 public:
  /// Links start up; apply_schedule() or set_state() changes that.
  explicit Link(sim::Simulator& sim);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  LinkState state() const { return state_; }
  bool is_up() const { return state_ == LinkState::kUp; }

  /// Changes the state, notifying listeners on an actual change.
  void set_state(LinkState state);

  /// Registers a state-change listener (never removed; components live as
  /// long as the link in every simulation).
  void on_state_change(std::function<void(LinkState)> listener);

  /// Schedules every transition of `schedule` on the simulator and applies
  /// the state at the current instant. Pre: called at most once per link.
  void apply_schedule(const OutageSchedule& schedule);

  /// Accounts one proxy->device message. Pre: is_up().
  void record_downlink(std::size_t bytes);
  /// Accounts one device->proxy message. Pre: is_up().
  void record_uplink(std::size_t bytes);

  const LinkStats& stats() const { return stats_; }

  /// Cumulative time spent down up to now().
  SimDuration downtime() const;

  // --- fault injection -------------------------------------------------------

  /// Arms the seeded fault process (chaos runs). Replaces any earlier model.
  void set_fault_model(FaultConfig config, std::uint64_t seed);

  /// The armed fault model, or nullptr on a clean link.
  FaultModel* fault_model() { return fault_ ? &*fault_ : nullptr; }
  const FaultModel* fault_model() const { return fault_ ? &*fault_ : nullptr; }

  /// Draws the fate of one downlink transmission: false = the message
  /// silently vanished (never true on a clean link). Pre: is_up().
  bool downlink_passes();
  /// Draws the fate of one uplink transmission.
  bool uplink_passes();
  /// Delivery latency of one surviving downlink message (0 on a clean link).
  SimDuration draw_downlink_latency();

 private:
  sim::Simulator& sim_;
  LinkState state_ = LinkState::kUp;
  std::vector<std::function<void(LinkState)>> listeners_;
  LinkStats stats_;
  SimTime last_transition_ = 0;
  SimDuration accumulated_downtime_ = 0;
  bool schedule_applied_ = false;
  std::optional<FaultModel> fault_;
};

}  // namespace waif::net
