#include "net/outage.h"

#include <algorithm>

#include "common/check.h"

namespace waif::net {

OutageSchedule::OutageSchedule(std::vector<Outage> outages, SimTime horizon)
    : horizon_(horizon) {
  WAIF_CHECK(horizon >= 0);
  std::erase_if(outages, [](const Outage& o) { return o.end <= o.start; });
  std::sort(outages.begin(), outages.end(),
            [](const Outage& a, const Outage& b) { return a.start < b.start; });
  for (Outage o : outages) {
    WAIF_CHECK(o.start >= 0);
    o.end = std::min(o.end, horizon);
    if (o.start >= horizon) break;
    if (!outages_.empty() && o.start <= outages_.back().end) {
      outages_.back().end = std::max(outages_.back().end, o.end);
    } else {
      outages_.push_back(o);
    }
  }
}

OutageSchedule OutageSchedule::always_down(SimTime horizon) {
  return OutageSchedule({Outage{0, horizon}}, horizon);
}

OutageSchedule OutageSchedule::always_up(SimTime horizon) {
  return OutageSchedule({}, horizon);
}

bool OutageSchedule::is_down(SimTime at) const {
  // First outage starting after `at`; the candidate is its predecessor.
  auto it = std::upper_bound(
      outages_.begin(), outages_.end(), at,
      [](SimTime t, const Outage& o) { return t < o.start; });
  if (it == outages_.begin()) return false;
  --it;
  return at < it->end;
}

double OutageSchedule::downtime_fraction() const {
  if (horizon_ == 0) return 0.0;
  SimDuration down = 0;
  for (const Outage& o : outages_) down += o.duration();
  return static_cast<double>(down) / static_cast<double>(horizon_);
}

SimTime OutageSchedule::next_down(SimTime at) const {
  auto it = std::lower_bound(
      outages_.begin(), outages_.end(), at,
      [](const Outage& o, SimTime t) { return o.start < t; });
  return it == outages_.end() ? kNever : it->start;
}

SimTime OutageSchedule::next_up(SimTime at) const {
  if (!is_down(at)) return at;
  auto it = std::upper_bound(
      outages_.begin(), outages_.end(), at,
      [](SimTime t, const Outage& o) { return t < o.start; });
  --it;  // the outage containing `at`
  return it->end;
}

}  // namespace waif::net
