// Fault injection for the last hop.
//
// The clean two-state Link models outages the device can *see* (the radio
// reports "no signal"). Real push pipelines additionally suffer faults the
// endpoints cannot see: individual packets vanish, losses arrive in bursts,
// and connections go half-open — the link looks up, uplink traffic still
// flows, but downlink messages silently disappear until the window passes.
// A FaultModel layers exactly those failure modes over a Link, drawing every
// decision from its own deterministic RNG stream so that a pinned scenario
// (workload/scenario.h serializes FaultConfig) replays the identical fault
// pattern on any platform at any --jobs count.
//
// With every probability and latency at zero the model is disabled and the
// link behaves exactly as before — the reliability layer built on top
// (core/reliable_channel.h) is a strict superset, not a behaviour change.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/time.h"

namespace waif::net {

struct FaultConfig {
  /// Independent per-downlink-message drop probability (good state of the
  /// Gilbert–Elliott channel below).
  double drop_probability = 0.0;

  /// Probability that any downlink message tips the channel into a loss
  /// burst (the Gilbert–Elliott bad state), during which every message is
  /// dropped. 0 disables burst loss.
  double burst_start_probability = 0.0;
  /// Mean number of messages a burst swallows; each bursty message ends the
  /// burst with probability 1/mean (geometric lengths). Must be >= 1.
  double mean_burst_length = 4.0;

  /// Probability that a down->up transition comes back *half-open*: is_up()
  /// reports true and uplink traffic passes, but every downlink message
  /// silently vanishes until the window ends. 0 disables half-open failures.
  double half_open_probability = 0.0;
  /// Mean duration of a half-open window (exponentially distributed).
  SimDuration mean_half_open = 5 * kMinute;

  /// Fixed one-way delivery latency added to every surviving downlink
  /// message. 0 keeps delivery synchronous.
  SimDuration base_latency = 0;
  /// Mean of an additional exponential latency jitter; 0 disables jitter.
  SimDuration mean_latency_jitter = 0;

  /// Independent drop probability for uplink messages (ACKs, READ requests).
  double uplink_drop_probability = 0.0;

  /// Any fault parameter non-zero?
  bool enabled() const {
    return drop_probability > 0.0 || burst_start_probability > 0.0 ||
           half_open_probability > 0.0 || base_latency > 0 ||
           mean_latency_jitter > 0 || uplink_drop_probability > 0.0;
  }
};

struct FaultStats {
  /// Downlink messages dropped by the independent (good-state) coin.
  std::uint64_t independent_drops = 0;
  /// Downlink messages swallowed by a loss burst.
  std::uint64_t burst_drops = 0;
  /// Downlink messages lost inside a half-open window.
  std::uint64_t half_open_drops = 0;
  /// Uplink messages dropped.
  std::uint64_t uplink_drops = 0;
  /// Loss bursts started.
  std::uint64_t bursts = 0;
  /// Half-open windows opened.
  std::uint64_t half_open_windows = 0;

  std::uint64_t downlink_drops() const {
    return independent_drops + burst_drops + half_open_drops;
  }
};

/// Seeded, deterministic fault process for one link. All randomness comes
/// from the model's own RNG, consumed in simulation event order, so a run is
/// reproducible from (FaultConfig, seed) alone.
class FaultModel {
 public:
  /// Throws std::invalid_argument (naming the offending field) for NaN or
  /// out-of-range probabilities, mean_burst_length < 1, or negative
  /// durations.
  FaultModel(FaultConfig config, std::uint64_t seed);

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  /// One downlink transmission attempt at `now`; false = the message
  /// silently vanished (burst, half-open window, or independent drop).
  bool downlink_passes(SimTime now);

  /// One uplink transmission attempt; false = dropped.
  bool uplink_passes();

  /// Latency to add to a surviving downlink message.
  SimDuration draw_downlink_latency();

  /// Called by the Link on every down->up transition; may open a half-open
  /// window starting at `now`.
  void on_link_up(SimTime now);

  /// True while a half-open window covers `now`.
  bool half_open(SimTime now) const { return now < half_open_until_; }

  /// True while the Gilbert–Elliott channel is in its loss burst state.
  bool in_burst() const { return in_burst_; }

  const FaultStats& stats() const { return stats_; }

 private:
  FaultConfig config_;
  Rng rng_;
  bool in_burst_ = false;
  SimTime half_open_until_ = 0;
  FaultStats stats_;
};

}  // namespace waif::net
