// The paper's two inefficiency metrics (Section 3.1).
//
//   waste — messages sent to the device but never read by the user;
//   loss  — messages that would have been read under an on-line forwarding
//           policy (the best possible service) but never reached the user
//           under the policy in effect.
//
// Waste is a property of one run; loss is a set difference between a run and
// its on-line baseline over the identical trace.
#pragma once

#include <cstdint>
#include <unordered_set>

namespace waif::metrics {

/// Ids of the messages the user read during one run.
using ReadSet = std::unordered_set<std::uint64_t>;

/// Percentage [0,100] of uniquely forwarded messages never read.
/// `forwarded_unique` counts distinct notification ids transferred to the
/// device; `read` counts how many of them the user read. 0 when nothing was
/// forwarded.
double waste_percent(std::uint64_t forwarded_unique, std::uint64_t read);

/// Percentage [0,100] of the baseline's read messages missing from the
/// policy run's read set. 0 when the baseline read nothing (e.g. 100%
/// outage: "on-line and on-demand policies are equally powerless").
double loss_percent(const ReadSet& baseline, const ReadSet& policy);

/// |baseline \ policy| — the lost messages themselves.
std::uint64_t lost_count(const ReadSet& baseline, const ReadSet& policy);

/// Percentage [0,100] of arrivals dropped by the overload budget
/// (core/overload.h). `arrivals` counts NOTIFICATION invocations, `shed`
/// counts budget-shed events. 0 when nothing arrived.
double shed_percent(std::uint64_t arrivals, std::uint64_t shed);

}  // namespace waif::metrics
