// Plain-text series tables: each bench binary prints the rows/series of the
// corresponding paper figure in this format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace waif::metrics {

/// A column-aligned table with a caption: row labels down the side (the
/// figure's x axis), one column per series (the figure's curve family).
class Table {
 public:
  Table(std::string caption, std::string row_header,
        std::vector<std::string> series_names);

  /// Appends a row of one value per series. Values are rendered with
  /// `precision` decimal digits; NaN renders as "-".
  void add_row(std::string label, const std::vector<double>& values);

  void set_precision(int precision) { precision_ = precision; }

  /// Renders with aligned columns.
  void print(std::ostream& out) const;

  /// Renders as CSV (caption omitted), for plotting.
  void print_csv(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t series() const { return series_names_.size(); }
  double value(std::size_t row, std::size_t series) const;

 private:
  std::string caption_;
  std::string row_header_;
  std::vector<std::string> series_names_;
  struct Row {
    std::string label;
    std::vector<double> values;
  };
  std::vector<Row> rows_;
  int precision_ = 1;
};

}  // namespace waif::metrics
