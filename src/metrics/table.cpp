#include "metrics/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "common/check.h"

namespace waif::metrics {

namespace {

std::string render(double value, int precision) {
  if (std::isnan(value)) return "-";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

}  // namespace

Table::Table(std::string caption, std::string row_header,
             std::vector<std::string> series_names)
    : caption_(std::move(caption)),
      row_header_(std::move(row_header)),
      series_names_(std::move(series_names)) {
  WAIF_CHECK(!series_names_.empty());
}

void Table::add_row(std::string label, const std::vector<double>& values) {
  if (values.size() != series_names_.size()) {
    throw std::invalid_argument("add_row: wrong number of values");
  }
  rows_.push_back(Row{std::move(label), values});
}

double Table::value(std::size_t row, std::size_t series) const {
  WAIF_CHECK(row < rows_.size());
  WAIF_CHECK(series < series_names_.size());
  return rows_[row].values[series];
}

void Table::print(std::ostream& out) const {
  out << caption_ << "\n";
  // Column widths: row header column, then one per series.
  std::size_t label_width = row_header_.size();
  for (const Row& row : rows_) label_width = std::max(label_width, row.label.size());
  std::vector<std::size_t> widths(series_names_.size());
  for (std::size_t s = 0; s < series_names_.size(); ++s) {
    widths[s] = series_names_[s].size();
    for (const Row& row : rows_) {
      widths[s] = std::max(widths[s], render(row.values[s], precision_).size());
    }
  }

  auto pad = [&out](const std::string& text, std::size_t width) {
    out << text;
    for (std::size_t i = text.size(); i < width; ++i) out << ' ';
  };

  pad(row_header_, label_width + 2);
  for (std::size_t s = 0; s < series_names_.size(); ++s) {
    pad(series_names_[s], widths[s] + 2);
  }
  out << "\n";
  for (const Row& row : rows_) {
    pad(row.label, label_width + 2);
    for (std::size_t s = 0; s < series_names_.size(); ++s) {
      pad(render(row.values[s], precision_), widths[s] + 2);
    }
    out << "\n";
  }
}

void Table::print_csv(std::ostream& out) const {
  out << row_header_;
  for (const std::string& name : series_names_) out << ',' << name;
  out << "\n";
  for (const Row& row : rows_) {
    out << row.label;
    for (double value : row.values) out << ',' << render(value, precision_);
    out << "\n";
  }
}

}  // namespace waif::metrics
