#include "metrics/inefficiency.h"

#include "common/check.h"

namespace waif::metrics {

double waste_percent(std::uint64_t forwarded_unique, std::uint64_t read) {
  WAIF_CHECK(read <= forwarded_unique);
  if (forwarded_unique == 0) return 0.0;
  return 100.0 * static_cast<double>(forwarded_unique - read) /
         static_cast<double>(forwarded_unique);
}

std::uint64_t lost_count(const ReadSet& baseline, const ReadSet& policy) {
  std::uint64_t lost = 0;
  for (std::uint64_t id : baseline) {
    if (!policy.contains(id)) ++lost;
  }
  return lost;
}

double loss_percent(const ReadSet& baseline, const ReadSet& policy) {
  if (baseline.empty()) return 0.0;
  return 100.0 * static_cast<double>(lost_count(baseline, policy)) /
         static_cast<double>(baseline.size());
}

double shed_percent(std::uint64_t arrivals, std::uint64_t shed) {
  WAIF_CHECK(shed <= arrivals);
  if (arrivals == 0) return 0.0;
  return 100.0 * static_cast<double>(shed) / static_cast<double>(arrivals);
}

}  // namespace waif::metrics
