// The mobile device: a bounded notification buffer with the hardware
// constraints of Section 2.3 — finite storage (full buffers evict low-ranked
// unread messages, which is pure waste) and finite battery (every transfer
// costs energy; a drained device is inoperable).
//
// Notifications are kept per topic, so a read on one subscription never
// drains another; the cross-topic read()/top_ids() overloads serve
// inbox-style displays. The device is passive: *when* the user reads and
// *how much* is driven by the workload's read schedule; the device only
// stores, expires, evicts and hands over its highest-ranked messages.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "pubsub/notification.h"
#include "pubsub/ranked_queue.h"
#include "sim/simulator.h"

namespace waif::device {

inline constexpr std::size_t kUnlimitedStorage =
    std::numeric_limits<std::size_t>::max();
inline constexpr double kUnlimitedBattery =
    std::numeric_limits<double>::infinity();

struct DeviceConfig {
  /// Maximum number of unread notifications held across all topics; beyond
  /// it the lowest-ranked unread message is deleted to make room
  /// (Section 2.3).
  std::size_t storage_limit = kUnlimitedStorage;
  /// Total energy budget in abstract units; infinity = mains-powered.
  double battery_capacity = kUnlimitedBattery;
  /// Energy per received (downlink) message.
  double receive_cost = 1.0;
  /// Energy per sent (uplink) message, e.g. a READ request.
  double send_cost = 1.0;
};

struct DeviceStats {
  std::uint64_t received = 0;
  std::uint64_t duplicate_receives = 0;
  std::uint64_t rank_updates = 0;
  std::uint64_t retracted = 0;  // deleted by a sub-threshold rank drop
  std::uint64_t read = 0;
  std::uint64_t expired_unread = 0;
  std::uint64_t evicted = 0;
  std::uint64_t rejected_dead_battery = 0;
  double energy_used = 0.0;
};

class Device {
 public:
  explicit Device(sim::Simulator& sim, DeviceId id, DeviceConfig config = {});

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  DeviceId id() const { return id_; }
  const DeviceConfig& config() const { return config_; }

  /// Registers the user's qualitative limit for a topic. A later rank-drop
  /// notice that takes a held message below this threshold *retracts* it:
  /// the copy is deleted from the buffer ("a negative change can help
  /// retract the notifications of malicious users after they reach the
  /// mailboxes of subscribers, but before the messages are read").
  void set_topic_threshold(const std::string& topic, double threshold);

  /// Stores a notification arriving over the downlink. Re-delivery of a held
  /// id replaces the stored copy (that is how rank updates reach the device)
  /// or deletes it when the new rank falls below the topic's threshold.
  /// Returns false when the battery is dead — the transfer never happens.
  bool receive(const pubsub::NotificationPtr& notification);

  /// Removes and returns up to `n` highest-ranked unexpired notifications on
  /// `topic` with rank >= threshold — one user read. Drains battery for the
  /// uplink request when `charge_uplink` is set; returns empty if the
  /// battery is dead.
  std::vector<pubsub::NotificationPtr> read(const std::string& topic, int n,
                                            double threshold,
                                            bool charge_uplink = false);

  /// Cross-topic read: the inbox view, highest-ranked first.
  std::vector<pubsub::NotificationPtr> read(int n, double threshold,
                                            bool charge_uplink = false);

  /// Ids of the up-to-`n` highest-ranked acceptable notifications on
  /// `topic` — the `client_events` field of the paper's READ request.
  std::vector<NotificationId> top_ids(const std::string& topic, int n,
                                      double threshold);

  /// Unread, unexpired notifications held on `topic` — the `queue_size`
  /// field of the READ request.
  std::size_t queue_size(const std::string& topic);

  /// Unread, unexpired notifications across all topics.
  std::size_t queue_size();

  bool contains(NotificationId id) const { return topic_of_.contains(id.value); }

  /// Rank of a held notification, if present.
  std::optional<double> rank_of(NotificationId id) const;

  bool battery_dead() const;
  double battery_remaining() const;

  const DeviceStats& stats() const { return stats_; }

 private:
  /// Drops expired messages; O(1) when nothing has reached its expiry yet.
  void purge_expired();
  /// Enforces the storage limit by deleting lowest-ranked messages.
  void enforce_storage_limit();
  bool drain(double energy);
  void forget_expiry(const pubsub::NotificationPtr& notification);
  /// Removes one notification from its queue and the indexes.
  void remove(const pubsub::NotificationPtr& notification);
  pubsub::RankedQueue* queue_for(const std::string& topic);
  /// Takes up to n acceptable messages out of `queue`.
  std::vector<pubsub::NotificationPtr> take_top(pubsub::RankedQueue& queue,
                                                int n, double threshold);

  sim::Simulator& sim_;
  DeviceId id_;
  DeviceConfig config_;
  /// Unread notifications, one rank-ordered queue per topic.
  std::map<std::string, pubsub::RankedQueue> held_;
  /// id -> topic, for O(1) membership and rank updates.
  std::map<std::uint64_t, std::string> topic_of_;
  /// (expires_at, id) for every held expiring message; the front is the next
  /// message to expire, making the lazy purge cheap.
  std::set<std::pair<SimTime, std::uint64_t>> expiry_index_;
  /// Per-topic qualitative limits for retraction handling.
  std::map<std::string, double> topic_thresholds_;
  std::size_t total_held_ = 0;
  DeviceStats stats_;
};

}  // namespace waif::device
