#include "device/device.h"

#include <algorithm>

#include "common/check.h"

namespace waif::device {

using pubsub::NotificationPtr;
using pubsub::RankedQueue;

Device::Device(sim::Simulator& sim, DeviceId id, DeviceConfig config)
    : sim_(sim), id_(id), config_(config) {
  WAIF_CHECK(config.storage_limit > 0);
  WAIF_CHECK(config.receive_cost >= 0.0);
  WAIF_CHECK(config.send_cost >= 0.0);
}

void Device::set_topic_threshold(const std::string& topic, double threshold) {
  topic_thresholds_[topic] = threshold;
}

bool Device::receive(const NotificationPtr& notification) {
  if (!drain(config_.receive_cost)) {
    ++stats_.rejected_dead_battery;
    return false;
  }
  ++stats_.received;
  auto threshold = topic_thresholds_.find(notification->topic);
  const bool below_threshold = threshold != topic_thresholds_.end() &&
                               notification->rank < threshold->second;
  auto held_topic = topic_of_.find(notification->id.value);
  if (held_topic != topic_of_.end()) {
    ++stats_.rank_updates;
    ++stats_.duplicate_receives;
    RankedQueue* queue = queue_for(held_topic->second);
    WAIF_CHECK(queue != nullptr);
    if (below_threshold) {
      // Retraction: the earlier transfer is now pure waste; free the buffer.
      NotificationPtr removed = queue->erase(notification->id);
      WAIF_CHECK(removed != nullptr);
      forget_expiry(removed);
      topic_of_.erase(held_topic);
      --total_held_;
      ++stats_.retracted;
    } else {
      // Replace the stored copy (the expiry is unchanged, so the expiry
      // index needs no touch-up).
      queue->insert(notification);
    }
    return true;
  }
  if (below_threshold) {
    // E.g. a rank-drop notice for a message the user already read: nothing
    // sub-threshold is worth buffer space.
    ++stats_.retracted;
    return true;
  }
  held_[notification->topic].insert(notification);
  topic_of_.emplace(notification->id.value, notification->topic);
  ++total_held_;
  if (notification->expires()) {
    expiry_index_.emplace(notification->expires_at, notification->id.value);
  }
  enforce_storage_limit();
  return true;
}

std::vector<NotificationPtr> Device::take_top(RankedQueue& queue, int n,
                                              double threshold) {
  std::vector<NotificationPtr> result = queue.top_n(n, threshold);
  for (const NotificationPtr& notification : result) {
    remove(notification);
    ++stats_.read;
  }
  return result;
}

std::vector<NotificationPtr> Device::read(const std::string& topic, int n,
                                          double threshold,
                                          bool charge_uplink) {
  WAIF_CHECK(n >= 0);
  if (charge_uplink && !drain(config_.send_cost)) {
    ++stats_.rejected_dead_battery;
    return {};
  }
  purge_expired();
  RankedQueue* queue = queue_for(topic);
  if (queue == nullptr) return {};
  return take_top(*queue, n, threshold);
}

std::vector<NotificationPtr> Device::read(int n, double threshold,
                                          bool charge_uplink) {
  WAIF_CHECK(n >= 0);
  if (charge_uplink && !drain(config_.send_cost)) {
    ++stats_.rejected_dead_battery;
    return {};
  }
  purge_expired();
  // Merge the per-topic tops, take the global best n.
  std::vector<const RankedQueue*> queues;
  queues.reserve(held_.size());
  for (const auto& [topic, queue] : held_) queues.push_back(&queue);
  std::vector<NotificationPtr> merged;
  for (const RankedQueue* queue : queues) {
    auto part = queue->top_n(n, threshold);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(), pubsub::RankHigher{});
  if (static_cast<int>(merged.size()) > n) {
    merged.resize(static_cast<std::size_t>(n));
  }
  for (const NotificationPtr& notification : merged) {
    remove(notification);
    ++stats_.read;
  }
  return merged;
}

std::vector<NotificationId> Device::top_ids(const std::string& topic, int n,
                                            double threshold) {
  WAIF_CHECK(n >= 0);
  purge_expired();
  RankedQueue* queue = queue_for(topic);
  std::vector<NotificationId> ids;
  if (queue == nullptr || n <= 0) return ids;
  auto top = queue->top_n(n, threshold);
  ids.reserve(top.size());
  for (const NotificationPtr& notification : top) ids.push_back(notification->id);
  return ids;
}

std::size_t Device::queue_size(const std::string& topic) {
  purge_expired();
  const RankedQueue* queue = queue_for(topic);
  return queue == nullptr ? 0 : queue->size();
}

std::size_t Device::queue_size() {
  purge_expired();
  return total_held_;
}

std::optional<double> Device::rank_of(NotificationId id) const {
  auto held_topic = topic_of_.find(id.value);
  if (held_topic == topic_of_.end()) return std::nullopt;
  auto queue = held_.find(held_topic->second);
  WAIF_CHECK(queue != held_.end());
  const NotificationPtr notification = queue->second.find(id);
  WAIF_CHECK(notification != nullptr);
  return notification->rank;
}

bool Device::battery_dead() const {
  return stats_.energy_used >= config_.battery_capacity;
}

double Device::battery_remaining() const {
  if (config_.battery_capacity == kUnlimitedBattery) return kUnlimitedBattery;
  return std::max(0.0, config_.battery_capacity - stats_.energy_used);
}

void Device::purge_expired() {
  const SimTime now = sim_.now();
  while (!expiry_index_.empty() && expiry_index_.begin()->first <= now) {
    const NotificationId id{expiry_index_.begin()->second};
    expiry_index_.erase(expiry_index_.begin());
    auto held_topic = topic_of_.find(id.value);
    if (held_topic == topic_of_.end()) continue;
    RankedQueue* queue = queue_for(held_topic->second);
    WAIF_CHECK(queue != nullptr);
    if (queue->erase(id) != nullptr) {
      topic_of_.erase(held_topic);
      --total_held_;
      ++stats_.expired_unread;
    }
  }
}

void Device::enforce_storage_limit() {
  while (total_held_ > config_.storage_limit) {
    // Evict the globally lowest-ranked unread message (scan of per-topic
    // bottoms; topic counts are small).
    NotificationPtr candidate;
    for (auto& [topic, queue] : held_) {
      if (queue.empty()) continue;
      NotificationPtr bottom = queue.bottom();
      if (candidate == nullptr || pubsub::RankHigher{}(candidate, bottom)) {
        candidate = bottom;
      }
    }
    WAIF_CHECK(candidate != nullptr);
    remove(candidate);
    ++stats_.evicted;
  }
}

bool Device::drain(double energy) {
  if (battery_dead()) return false;
  stats_.energy_used += energy;
  return true;
}

void Device::forget_expiry(const NotificationPtr& notification) {
  if (notification->expires()) {
    expiry_index_.erase({notification->expires_at, notification->id.value});
  }
}

void Device::remove(const NotificationPtr& notification) {
  auto held_topic = topic_of_.find(notification->id.value);
  if (held_topic == topic_of_.end()) return;
  RankedQueue* queue = queue_for(held_topic->second);
  WAIF_CHECK(queue != nullptr);
  if (queue->erase(notification->id) != nullptr) {
    forget_expiry(notification);
    topic_of_.erase(held_topic);
    --total_held_;
  }
}

pubsub::RankedQueue* Device::queue_for(const std::string& topic) {
  auto it = held_.find(topic);
  return it == held_.end() ? nullptr : &it->second;
}

}  // namespace waif::device
