#include "experiments/invariant_monitor.h"

#include <utility>

namespace waif::experiments {

namespace {

/// Cap on stored violations: enough to diagnose, bounded under a run that
/// trips an invariant on every event.
constexpr std::size_t kMaxStored = 64;

const char* breaker_name(core::BreakerState state) {
  switch (state) {
    case core::BreakerState::kClosed:
      return "closed";
    case core::BreakerState::kOpen:
      return "open";
    case core::BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

/// The legal transition set, straight from ReliableDeviceChannel:
/// trip_breaker (closed/half-open -> open), enter_half_open
/// (open -> half-open), close_breaker (open/half-open -> closed).
bool legal_breaker_transition(core::BreakerState from, core::BreakerState to) {
  using core::BreakerState;
  switch (from) {
    case BreakerState::kClosed:
      return to == BreakerState::kOpen;
    case BreakerState::kOpen:
      return to == BreakerState::kHalfOpen || to == BreakerState::kClosed;
    case BreakerState::kHalfOpen:
      return to == BreakerState::kOpen || to == BreakerState::kClosed;
  }
  return false;
}

}  // namespace

InvariantMonitor::InvariantMonitor() : InvariantMonitor(Expectations{}) {}

InvariantMonitor::InvariantMonitor(Expectations expectations)
    : expectations_(expectations) {}

void InvariantMonitor::record(std::string invariant, std::string detail,
                              SimTime at) {
  ++total_;
  if (violations_.size() < kMaxStored) {
    violations_.push_back({std::move(invariant), std::move(detail), at});
  }
}

void InvariantMonitor::note_breaker(core::BreakerState state, SimTime at) {
  if (!legal_breaker_transition(breaker_, state)) {
    record("breaker-legality",
           std::string("illegal transition ") + breaker_name(breaker_) +
               " -> " + breaker_name(state),
           at);
  }
  breaker_ = state;
}

void InvariantMonitor::reset_breaker(core::BreakerState state) {
  breaker_ = state;
}

void InvariantMonitor::note_channel(std::uint64_t next_seq,
                                    const core::ReliableChannelStats& stats,
                                    SimTime at) {
  auto monotone = [&](std::uint64_t last, std::uint64_t now,
                      const char* name) {
    if (now < last) {
      record("channel-monotone",
             std::string(name) + " went backwards: " + std::to_string(last) +
                 " -> " + std::to_string(now),
             at);
    }
  };
  monotone(last_next_seq_, next_seq, "next_seq");
  monotone(last_stats_.accepted, stats.accepted, "accepted");
  monotone(last_stats_.acked, stats.acked, "acked");
  monotone(last_stats_.transmissions, stats.transmissions, "transmissions");
  monotone(last_stats_.delivered, stats.delivered, "delivered");
  if (stats.acked > stats.accepted) {
    record("channel-monotone",
           "acked " + std::to_string(stats.acked) + " exceeds accepted " +
               std::to_string(stats.accepted),
           at);
  }
  last_next_seq_ = next_seq;
  last_stats_ = stats;
}

void InvariantMonitor::note_queue(const std::string& topic, std::size_t queued,
                                  SimTime at) {
  if (expectations_.topic_budget > 0 && queued > expectations_.topic_budget) {
    record("queue-bound",
           topic + " holds " + std::to_string(queued) + " > budget " +
               std::to_string(expectations_.topic_budget),
           at);
  }
}

void InvariantMonitor::note_proxy_total(std::size_t total, SimTime at) {
  if (expectations_.proxy_budget > 0 && total > expectations_.proxy_budget) {
    record("queue-bound",
           "proxy holds " + std::to_string(total) + " > budget " +
               std::to_string(expectations_.proxy_budget),
           at);
  }
}

void InvariantMonitor::note_admission_rejects(std::uint64_t rejects,
                                              SimTime at) {
  if (!expectations_.admission_armed && rejects > 0) {
    record("admission-legality",
           std::to_string(rejects) + " rejects with admission unarmed", at);
  }
}

}  // namespace waif::experiments
