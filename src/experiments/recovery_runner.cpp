#include "experiments/recovery_runner.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "core/channel.h"
#include "core/proxy.h"
#include "core/read_protocol.h"
#include "core/reliable_channel.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "pubsub/subscriber.h"
#include "sim/simulator.h"
#include "storage/fsck.h"
#include "workload/serialization.h"
#include "workload/trace.h"

namespace waif::experiments {

namespace {

constexpr char kAdaptiveTopic[] = "recovery/adaptive";
constexpr char kBufferTopic[] = "recovery/buffer";
constexpr char kOnlineTopic[] = "recovery/online";

/// Three deliberately different topic configurations, so a crash-point sweep
/// crosses every journal stage: delay release, holding/expiration, interrupt
/// promotion and the on-line per-day budget.
std::map<std::string, core::TopicConfig> topic_configs(
    const workload::ScenarioConfig& scenario) {
  std::map<std::string, core::TopicConfig> configs;
  {
    core::TopicConfig config;
    config.options.max = scenario.max;
    config.options.threshold = scenario.threshold;
    config.policy = core::PolicyConfig::adaptive();
    config.policy.delay = 30 * kMinute;  // rank-change delay stage
    configs.emplace(kAdaptiveTopic, config);
  }
  {
    core::TopicConfig config;
    config.options.max = scenario.max;
    config.options.threshold = scenario.threshold;
    config.policy = core::PolicyConfig::buffer(8, 2 * kHour);
    config.refinements.interrupt_threshold = 4.8;
    configs.emplace(kBufferTopic, config);
  }
  {
    core::TopicConfig config;
    config.mode = core::DeliveryMode::kOnLine;
    config.options.max = scenario.max;
    config.options.threshold = scenario.threshold;
    config.policy = core::PolicyConfig::online();
    config.refinements.max_per_day = 16;
    configs.emplace(kOnlineTopic, config);
  }
  return configs;
}

struct TopicTrace {
  std::string topic;
  workload::Trace trace;
};

/// One trace per topic from independent RNG substreams. Only the adaptive
/// topic's outage schedule drives the link (there is one link); the other
/// variants generate none. Rank changes are disabled everywhere — see
/// RecoveryOutcome::duplicate_user_reads.
std::vector<TopicTrace> build_traces(const RecoveryPlan& plan) {
  workload::ScenarioConfig adaptive = plan.scenario;
  adaptive.rank_drop_fraction = 0.0;
  adaptive.rank_raise_fraction = 0.0;

  workload::ScenarioConfig buffer = adaptive;
  buffer.event_frequency = adaptive.event_frequency * 0.75;
  buffer.expiring_fraction = 1.0;
  buffer.mean_expiration = 4 * kHour;
  buffer.outage_fraction = 0.0;

  workload::ScenarioConfig online = adaptive;
  online.event_frequency = adaptive.event_frequency * 0.5;
  online.expiring_fraction = 0.0;
  online.mean_expiration = 0;
  online.outage_fraction = 0.0;

  std::uint64_t state = plan.seed;
  std::vector<TopicTrace> traces;
  traces.push_back(
      {kAdaptiveTopic, workload::generate_trace(adaptive, splitmix64(state))});
  traces.push_back(
      {kBufferTopic, workload::generate_trace(buffer, splitmix64(state))});
  traces.push_back(
      {kOnlineTopic, workload::generate_trace(online, splitmix64(state))});
  return traces;
}

/// A stable pubsub endpoint: the broker holds a Subscriber& for the whole
/// run, but the proxy behind it is destroyed and rebuilt at every crash.
class Relay final : public pubsub::Subscriber {
 public:
  explicit Relay(std::function<void(const pubsub::NotificationPtr&)> fn)
      : fn_(std::move(fn)) {}

  void on_notification(const pubsub::NotificationPtr& notification) override {
    fn_(notification);
  }

 private:
  std::function<void(const pubsub::NotificationPtr&)> fn_;
};

/// Guards the proxy -> channel boundary: an expired notification handed to
/// the transport is a recovery bug, whatever else happens.
class CheckedChannel final : public core::DeviceChannel {
 public:
  CheckedChannel(sim::Simulator& sim, core::DeviceChannel& inner,
                 std::uint64_t* expired_deliveries)
      : sim_(sim), inner_(inner), expired_deliveries_(expired_deliveries) {}

  bool link_up() const override { return inner_.link_up(); }

  bool deliver(const pubsub::NotificationPtr& notification) override {
    if (notification->expired_at(sim_.now())) ++*expired_deliveries_;
    return inner_.deliver(notification);
  }

 private:
  sim::Simulator& sim_;
  core::DeviceChannel& inner_;
  std::uint64_t* expired_deliveries_;
};

class RecoveryHarness {
 public:
  explicit RecoveryHarness(const RecoveryPlan& plan)
      : plan_(plan),
        configs_(topic_configs(plan.scenario)),
        traces_(build_traces(plan)),
        sim_(),
        broker_(sim_, std::max<std::size_t>(total_arrivals(), 1)),
        link_(sim_),
        device_(sim_, DeviceId{1}),
        relay_([this](const pubsub::NotificationPtr& notification) {
          // Events published while the proxy is down are lost upstream — in
          // a deployment the broker's redelivery would cover this window;
          // here a zero restart_delay closes it entirely.
          if (proxy_ != nullptr) proxy_->on_notification(notification);
        }),
        publisher_(broker_, "workload") {
    if (plan_.storage_fault.enabled()) {
      fault_.emplace(plan_.storage_fault, plan_.storage_fault_seed);
      backend_.set_fault_model(&*fault_);
    }

    if (plan_.reliable_channel) {
      std::uint64_t state = plan_.seed ^ 0x52E11AB1Eull;
      reliable_.emplace(sim_, link_, device_, core::ReliableChannelConfig{},
                        splitmix64(state));
      reliable_->set_delivery_observer(
          [this](const pubsub::NotificationPtr& event) {
            WAIF_CHECK(!event->expired_at(sim_.now()));
          });
      reliable_->set_failure_handler(
          [this](const pubsub::NotificationPtr& event) {
            if (proxy_ == nullptr) return;
            if (core::TopicState* topic = proxy_->topic(event->topic)) {
              topic->requeue_undelivered(event);
            }
          });
      checked_.emplace(sim_, *reliable_, &outcome_.expired_deliveries);
    } else {
      sim_channel_.emplace(link_, device_);
      checked_.emplace(sim_, *sim_channel_, &outcome_.expired_deliveries);
    }

    if (plan_.persist) {
      persistence_.emplace(sim_, backend_, plan_.persistence);
      if (reliable_) persistence_->set_channel(&*reliable_);
      if (plan_.crash_at_record >= 0) {
        const auto target =
            static_cast<std::uint64_t>(plan_.crash_at_record);
        persistence_->set_record_hook([this, target](std::uint64_t count) {
          if (crash_armed_ || count < target) return;
          crash_armed_ = true;
          // Never kill mid-callback: the "process" dies between events.
          sim_.schedule_at(sim_.now(), [this] { do_crash(); });
        });
      }
    }

    build_proxy();
    if (persistence_) persistence_->attach(*proxy_);

    for (const auto& [topic, config] : configs_) {
      device_.set_topic_threshold(topic, config.options.threshold);
      broker_.subscribe(topic, relay_, config.options);
      publisher_.advertise(topic);
    }

    // Mirrors the production wiring order: the proxy reacts to the link
    // first (attach_to_link), then the session flushes deferred syncs.
    link_.on_state_change([this](net::LinkState state) {
      if (proxy_ != nullptr) proxy_->handle_network(state);
      if (state == net::LinkState::kUp) flush_pending_syncs();
    });
    link_.apply_schedule(traces_[0].trace.outages);

    for (const TopicTrace& entry : traces_) {
      const std::string& topic = entry.topic;
      for (const workload::Arrival& arrival : entry.trace.arrivals) {
        sim_.schedule_at(arrival.time, [this, &topic, arrival] {
          publisher_.publish(topic, arrival.rank, arrival.lifetime);
        });
      }
      for (SimTime read_at : entry.trace.reads) {
        sim_.schedule_at(read_at, [this, &topic] { do_read(topic); });
      }
    }
  }

  ~RecoveryHarness() {
    if (persistence_) persistence_->detach();
    proxy_.reset();
  }

  RecoveryOutcome run() {
    sim_.run_until(plan_.scenario.horizon);

    outcome_.read_digest = digest_.value();
    if (persistence_) {
      outcome_.records_logged = persistence_->record_count();
      outcome_.wal_syncs = persistence_->stats().syncs;
      outcome_.snapshots = persistence_->stats().snapshots;
      outcome_.forward_refusals = persistence_->stats().forward_refusals;
    }
    if (fault_) outcome_.storage_faults = fault_->stats();
    if (plan_.persist) {
      outcome_.fsck_recoverable = storage::waif_fsck(backend_).recoverable();
    }
    // Safety: nothing expired ever reaches the channel, crash or no crash.
    WAIF_CHECK(outcome_.expired_deliveries == 0);
    // No duplicate user reads — guaranteed whenever the write-ahead
    // discipline is on (every forward durable before delivery) and in-doubt
    // events are trusted rather than re-sent. Without those, a crash may
    // legitimately re-deliver an event whose forward record was lost, and
    // an already-read event surfaces again; the count reports that cost.
    const bool no_duplicates_guaranteed =
        !plan_.persist || outcome_.crashes == 0 ||
        (plan_.persistence.sync_on_forward &&
         plan_.unacked == storage::RecoverUnacked::kTrustForwarded);
    if (no_duplicates_guaranteed) {
      WAIF_CHECK(outcome_.duplicate_user_reads == 0);
    }
    return outcome_;
  }

 private:
  std::size_t total_arrivals() const {
    std::size_t total = 0;
    for (const TopicTrace& entry : traces_) {
      total += entry.trace.arrivals.size();
    }
    return total;
  }

  void build_proxy() {
    proxy_ = std::make_unique<core::Proxy>(sim_, *checked_, "proxy");
    for (const auto& [topic, config] : configs_) {
      proxy_->add_topic(topic, config);
    }
  }

  // --- the device-side session (survives crashes) --------------------------
  // A LastHopSession holds a Proxy& for life, so the harness re-implements
  // its exact semantics over a replaceable proxy pointer.

  void send_read(const std::string& topic,
                 const pubsub::SubscriptionOptions& options) {
    core::ReadRequest request;
    request.request_id = next_request_id_++;
    request.n = options.max;
    request.queue_size = device_.queue_size(topic);
    request.client_events =
        device_.top_ids(topic, options.max, options.threshold);
    constexpr std::size_t kRequestHeaderBytes = 32;
    constexpr std::size_t kBytesPerId = 8;
    link_.record_uplink(kRequestHeaderBytes +
                        kBytesPerId * request.client_events.size());
    proxy_->handle_read(topic, request);
  }

  void flush_pending_syncs() {
    if (proxy_ == nullptr || !link_.is_up()) return;
    const auto pending = std::move(pending_sync_);
    pending_sync_.clear();
    for (const auto& [topic, offline_reads] : pending) {
      constexpr std::size_t kSyncBytes = 16;
      constexpr std::size_t kBytesPerRecord = 12;
      link_.record_uplink(kSyncBytes + kBytesPerRecord * offline_reads.size());
      proxy_->handle_sync(topic, device_.queue_size(topic), offline_reads,
                          next_request_id_++);
    }
  }

  void do_read(const std::string& topic) {
    const core::TopicConfig& config = configs_.at(topic);
    const pubsub::SubscriptionOptions& options = config.options;
    // A crashed proxy behaves like an outage: the READ goes unanswered and
    // the device serves the user from its local queue.
    const bool online =
        proxy_ != nullptr && link_.is_up() && !device_.battery_dead();
    const core::PolicyKind kind = config.policy.kind;
    const bool prefetching = kind == core::PolicyKind::kBufferPrefetch ||
                             kind == core::PolicyKind::kRatePrefetch ||
                             kind == core::PolicyKind::kAdaptive;
    if (online) {
      send_read(topic, options);
    } else if (prefetching && !device_.battery_dead()) {
      pending_sync_[topic].push_back(
          core::ReadRecord{sim_.now(), options.max});
    }
    const auto read =
        device_.read(topic, options.max, options.threshold,
                     /*charge_uplink=*/online);
    ++outcome_.read_operations;
    outcome_.total_read += read.size();

    std::vector<std::uint64_t> ids;
    ids.reserve(read.size());
    for (const pubsub::NotificationPtr& event : read) {
      ids.push_back(event->id.value);
    }
    std::sort(ids.begin(), ids.end());
    digest_.i64(sim_.now());
    digest_.str(topic);
    digest_.u64(ids.size());
    std::unordered_set<std::uint64_t>& seen = ever_read_[topic];
    for (std::uint64_t id : ids) {
      digest_.u64(id);
      if (!seen.insert(id).second) ++outcome_.duplicate_user_reads;
    }
  }

  // --- crash and recovery ---------------------------------------------------

  void do_crash() {
    if (proxy_ == nullptr) return;
    ++outcome_.crashes;
    outcome_.lost_window += persistence_->unsynced_records();
    persistence_->detach();
    proxy_.reset();
    // The channel object models both endpoints: the proxy side dies with
    // the process, the device side (dedup window) survives.
    if (reliable_) reliable_->crash_proxy_side();
    backend_.crash();
    sim_.schedule_at(sim_.now() + plan_.restart_delay, [this] { do_recover(); });
  }

  void do_recover() {
    storage::RecoveryResult recovery =
        storage::ProxyPersistence::recover(backend_, configs_);
    outcome_.records_recovered = recovery.wal_records;
    outcome_.replayed = recovery.replayed;
    outcome_.recovered_from_snapshot = recovery.from_snapshot;
    outcome_.damaged_snapshots += recovery.damaged_snapshots;
    if (recovery.repaired) ++outcome_.wal_repairs;

    persistence_->resume_from(recovery);
    build_proxy();
    // Restore before attach: rebuilding state must not journal itself.
    storage::ProxyPersistence::restore_into(*proxy_, recovery, plan_.unacked);
    if (reliable_ && recovery.state.has_channel) {
      reliable_->restore(recovery.state.channel);
    }
    persistence_->attach(*proxy_);
    proxy_->handle_network(link_.state());
    flush_pending_syncs();
  }

  RecoveryPlan plan_;
  std::map<std::string, core::TopicConfig> configs_;
  std::vector<TopicTrace> traces_;
  sim::Simulator sim_;
  pubsub::Broker broker_;
  net::Link link_;
  device::Device device_;
  Relay relay_;
  pubsub::Publisher publisher_;
  storage::MemBackend backend_;
  std::optional<storage::StorageFaultModel> fault_;
  std::optional<core::SimDeviceChannel> sim_channel_;
  std::optional<core::ReliableDeviceChannel> reliable_;
  std::optional<CheckedChannel> checked_;
  std::optional<storage::ProxyPersistence> persistence_;
  std::unique_ptr<core::Proxy> proxy_;

  std::uint64_t next_request_id_ = 1;
  std::map<std::string, std::vector<core::ReadRecord>> pending_sync_;
  std::map<std::string, std::unordered_set<std::uint64_t>> ever_read_;
  workload::CanonicalDigest digest_;
  bool crash_armed_ = false;
  RecoveryOutcome outcome_;
};

}  // namespace

std::vector<std::string> recovery_topics() {
  return {kAdaptiveTopic, kBufferTopic, kOnlineTopic};
}

workload::ScenarioConfig recovery_scenario() {
  workload::ScenarioConfig config;
  config.event_frequency = 24.0;
  config.user_frequency = 4.0;
  config.max = 8;
  config.threshold = 1.0;
  config.expiring_fraction = 0.75;
  config.mean_expiration = 8 * kHour;
  config.outage_fraction = 0.2;
  config.mean_outage = 3 * kHour;
  config.horizon = 3 * kDay;
  return config;
}

RecoveryOutcome run_recovery_plan(const RecoveryPlan& plan) {
  RecoveryHarness harness(plan);
  return harness.run();
}

}  // namespace waif::experiments
