// The single reusable invariant checker behind the chaos orchestrator.
//
// Each siloed harness (recovery, overload, last-hop) bakes its safety
// checks into WAIF_CHECK aborts, which is right for a targeted sweep but
// useless for delta-debugging: the shrinker needs "did this schedule
// violate?" as a value, not a crashed process. The monitor therefore
// *records* violations — each one a named invariant, a detail string and a
// sim timestamp — and the orchestrator (or a test fixture) decides what to
// do with them.
//
// Stateful invariants live here (breaker state-machine legality, monotone
// seq/ACK counters, queue bounds vs the armed budgets); whole-run checks
// that need the harness's wiring (live-vs-recovered image equality,
// duplicate reads after failover) are evaluated by the orchestrator, which
// reports failures through record().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/reliable_channel.h"

namespace waif::experiments {

struct ChaosViolation {
  /// Short invariant name ("breaker-legality", "image-equality", ...).
  std::string invariant;
  std::string detail;
  SimTime at = 0;
};

class InvariantMonitor {
 public:
  /// What the schedule armed; zero budgets disable the bound checks.
  struct Expectations {
    std::size_t topic_budget = 0;
    std::size_t proxy_budget = 0;
    /// When false, any admission reject is itself a violation.
    bool admission_armed = false;
  };

  InvariantMonitor();
  explicit InvariantMonitor(Expectations expectations);

  /// Records one violation (deduplicated by invariant name beyond a cap so
  /// a broken run cannot allocate without bound).
  void record(std::string invariant, std::string detail, SimTime at);

  // --- breaker state machine -------------------------------------------------

  /// Feed every observer callback; verifies the transition against the
  /// legal set (closed->open, open->half-open, half-open->open,
  /// open->closed, half-open->closed).
  void note_breaker(core::BreakerState state, SimTime at);

  /// Re-syncs the tracked state after a legal out-of-band reset the
  /// observer never sees (crash_proxy_side closes the breaker silently).
  void reset_breaker(core::BreakerState state);

  // --- monotone channel state ------------------------------------------------

  /// Feed periodically; verifies the sequence counter and the cumulative
  /// channel counters never go backwards, and acked never exceeds accepted.
  void note_channel(std::uint64_t next_seq,
                    const core::ReliableChannelStats& stats, SimTime at);

  // --- queue occupancy -------------------------------------------------------

  /// Feed settled queue totals (never mid-mutation); verifies them against
  /// the armed budgets.
  void note_queue(const std::string& topic, std::size_t queued, SimTime at);
  void note_proxy_total(std::size_t total, SimTime at);

  /// Feed the proxy's cumulative admission-reject counter; with admission
  /// unarmed any reject is a violation.
  void note_admission_rejects(std::uint64_t rejects, SimTime at);

  bool ok() const { return violations_.empty(); }
  const std::vector<ChaosViolation>& violations() const { return violations_; }
  /// Violations recorded, including those past the storage cap.
  std::uint64_t total_violations() const { return total_; }

 private:
  Expectations expectations_;
  core::BreakerState breaker_ = core::BreakerState::kClosed;
  std::uint64_t last_next_seq_ = 0;
  core::ReliableChannelStats last_stats_;
  std::vector<ChaosViolation> violations_;
  std::uint64_t total_ = 0;
};

}  // namespace waif::experiments
