// Overload-protection harness: one deterministic last-hop run driven past
// its capacity on purpose — a publisher storm on top of the base workload,
// device-stall windows that starve the reliable channel of ACKs — with the
// overload layer (core/overload.h) armed: per-topic and proxy-wide queue
// budgets, admission watermarks on the proxy, and the slow-device circuit
// breaker in the reliable channel.
//
// The harness measures what the protection layer promises:
//   - peak queue occupancy, sampled after every mutation the harness drives
//     (arrival, read, sync, requeue) — with a budget armed the samples never
//     exceed it;
//   - every shed event journaled (a tee between the proxy and the
//     persistence layer counts on_shed firings and verifies each victim is
//     the canonical worst of its topic under overload.h shed_before);
//   - no unjournaled drops: at the horizon the WAL is replayed from scratch
//     through the recovery mirror and the rebuilt per-topic images must be
//     byte-identical to the live proxy's snapshots — an event dropped
//     without a shed record would survive in the replayed image and break
//     the comparison;
//   - breaker behaviour: ACK-starvation windows trip it into hold-only
//     mode, the cooldown probes half-open, and an ACK recloses it.
//
// Everything is seeded; a plan replays bit-identically at any --jobs count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/overload.h"
#include "core/reliable_channel.h"
#include "storage/persistence.h"
#include "workload/scenario.h"

namespace waif::experiments {

/// One overload experiment: workload, storm, stall windows, budgets.
struct OverloadPlan {
  /// Base workload knobs; the three topics derive per-topic variants from
  /// it (same shape as the recovery harness: adaptive + buffer + on-line).
  workload::ScenarioConfig scenario;
  std::uint64_t seed = 1;

  /// Budgets and watermarks; the all-zero default arms nothing.
  core::OverloadConfig overload;

  /// Publisher storm: `storm_bursts` bursts of `storm_size` events each,
  /// `storm_spacing` apart, starting a quarter into the horizon, spread
  /// round-robin over the topics. 0 bursts = no storm.
  std::size_t storm_bursts = 0;
  std::size_t storm_size = 0;
  SimDuration storm_spacing = kHour;

  /// Device stalls: windows during which every uplink message (ACKs) is
  /// dropped — the device looks alive but never confirms, which is exactly
  /// what the circuit breaker exists for. Windows are spread evenly across
  /// the horizon. 0 windows = healthy device.
  std::size_t stall_count = 0;
  SimDuration stall_duration = 0;

  /// Reliable-channel knobs (breaker threshold, backlog bound, backoff).
  core::ReliableChannelConfig channel;

  /// Journal through storage::ProxyPersistence? Off = the byte-identity
  /// control. The default config never snapshots (snapshot_interval 0), so
  /// the end-of-run verification replays the entire WAL through the
  /// recovery mirror instead of shortcutting through a checkpoint.
  bool persist = true;
  storage::PersistenceConfig persistence = {.snapshot_interval = 0};
};

/// Everything measured in one overload run.
struct OverloadOutcome {
  /// Canonical digest over every user read (instant, topic, sorted ids).
  std::uint64_t read_digest = 0;
  std::uint64_t total_read = 0;
  std::uint64_t read_operations = 0;

  /// NOTIFICATION invocations (includes admission-rejected arrivals).
  std::uint64_t arrivals = 0;
  /// Events dropped by the budgets (sum of per-topic shed counters).
  std::uint64_t shed = 0;
  /// on_shed journal firings seen by the tee (must equal `shed`).
  std::uint64_t journaled_sheds = 0;
  /// Shed victims that were NOT the canonical worst of their topic
  /// (overload.h shed_before) at journal time. Asserted 0 by the bench.
  std::uint64_t shed_order_violations = 0;
  /// Arrivals turned away at the admission high-watermark.
  std::uint64_t admission_rejects = 0;
  /// Percentage of arrivals shed (metrics::shed_percent).
  double shed_pct = 0.0;

  /// Peak proxy-wide queue occupancy (outgoing+prefetch+holding over all
  /// topics), sampled after every harness-driven mutation.
  std::size_t peak_queued = 0;
  /// Peak single-topic occupancy — what the per-topic budget bounds.
  std::size_t peak_topic_queued = 0;
  std::size_t final_queued = 0;

  // Circuit breaker / reliable transport.
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t breaker_probes = 0;
  std::uint64_t attempts_exhausted = 0;
  std::uint64_t requeued = 0;

  std::uint64_t records_logged = 0;
  /// Full-WAL replay rebuilt per-topic images byte-identical to the live
  /// snapshots (always true when persist was off — nothing to compare).
  bool recovery_image_match = true;
};

/// The three topic names of the overload scenario.
std::vector<std::string> overload_topics();

/// The canonical base scenario for overload experiments: outage-laced and
/// busy enough that budgets actually bind under a storm.
workload::ScenarioConfig overload_scenario();

/// Runs one plan start to finish. Aborts (via WAIF_CHECK) if an expired
/// notification ever reaches the channel or a READ the harness itself
/// built is rejected as malformed.
OverloadOutcome run_overload_plan(const OverloadPlan& plan);

}  // namespace waif::experiments
