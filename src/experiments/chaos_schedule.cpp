#include "experiments/chaos_schedule.h"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "workload/serialization.h"

namespace waif::experiments {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + message);
}

void expect_consumed(std::istringstream& fields, std::size_t line) {
  std::string extra;
  if (fields >> extra) fail(line, "trailing garbage '" + extra + "'");
}

constexpr struct {
  ChaosFaultKind kind;
  std::string_view name;
} kKindNames[] = {
    {ChaosFaultKind::kLinkFault, "link-fault"},
    {ChaosFaultKind::kOutage, "outage"},
    {ChaosFaultKind::kStorageFault, "storage-fault"},
    {ChaosFaultKind::kCrashActive, "crash-active"},
    {ChaosFaultKind::kCrashAtRecord, "crash-at-record"},
    {ChaosFaultKind::kStorm, "storm"},
    {ChaosFaultKind::kDeviceStall, "device-stall"},
};

std::string_view chaos_bug_name(ChaosBug bug) {
  switch (bug) {
    case ChaosBug::kNone:
      return "none";
    case ChaosBug::kSwallowShedJournal:
      return "swallow-shed";
  }
  return "none";
}

bool parse_chaos_bug(std::string_view token, ChaosBug* bug) {
  if (token == "none") {
    *bug = ChaosBug::kNone;
    return true;
  }
  if (token == "swallow-shed") {
    *bug = ChaosBug::kSwallowShedJournal;
    return true;
  }
  return false;
}

}  // namespace

std::string_view chaos_fault_kind_name(ChaosFaultKind kind) {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "link-fault";
}

bool parse_chaos_fault_kind(std::string_view token, ChaosFaultKind* kind) {
  for (const auto& entry : kKindNames) {
    if (entry.name == token) {
      *kind = entry.kind;
      return true;
    }
  }
  return false;
}

void write_chaos(std::ostream& out, const ChaosSchedule& schedule) {
  const std::streamsize old_precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  out << "waif-chaos v1\n";
  out << "seed " << schedule.seed << "\n";
  out << "horizon " << schedule.horizon << "\n";
  out << "topic-budget " << schedule.topic_budget << "\n";
  out << "proxy-budget " << schedule.proxy_budget << "\n";
  out << "admission " << schedule.admission_high << ' '
      << schedule.admission_low << "\n";
  out << "breaker-threshold " << schedule.breaker_threshold << "\n";
  out << "bug " << chaos_bug_name(schedule.bug) << "\n";
  for (const ChaosFault& fault : schedule.faults) {
    out << "fault " << chaos_fault_kind_name(fault.kind) << ' ' << fault.at
        << ' ' << fault.duration << ' ' << fault.magnitude << ' '
        << fault.param << ' ' << fault.seed << "\n";
  }
  out.precision(old_precision);
}

ChaosSchedule read_chaos(std::istream& in) {
  ChaosSchedule schedule;
  schedule.faults.clear();
  std::string line;
  std::size_t line_number = 0;
  bool have_header = false;

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (!have_header) {
      std::string version;
      if (keyword != "waif-chaos" || !(fields >> version) || version != "v1") {
        fail(line_number, "expected header 'waif-chaos v1'");
      }
      have_header = true;
      expect_consumed(fields, line_number);
      continue;
    }
    if (keyword == "seed") {
      if (!(fields >> schedule.seed)) fail(line_number, "bad seed");
    } else if (keyword == "horizon") {
      if (!(fields >> schedule.horizon)) fail(line_number, "bad horizon");
    } else if (keyword == "topic-budget") {
      if (!(fields >> schedule.topic_budget)) {
        fail(line_number, "bad topic-budget");
      }
    } else if (keyword == "proxy-budget") {
      if (!(fields >> schedule.proxy_budget)) {
        fail(line_number, "bad proxy-budget");
      }
    } else if (keyword == "admission") {
      if (!(fields >> schedule.admission_high >> schedule.admission_low)) {
        fail(line_number, "bad admission watermarks");
      }
    } else if (keyword == "breaker-threshold") {
      if (!(fields >> schedule.breaker_threshold)) {
        fail(line_number, "bad breaker-threshold");
      }
    } else if (keyword == "bug") {
      std::string token;
      if (!(fields >> token) || !parse_chaos_bug(token, &schedule.bug)) {
        fail(line_number, "unknown bug '" + token + "'");
      }
    } else if (keyword == "fault") {
      ChaosFault fault;
      std::string kind;
      if (!(fields >> kind) || !parse_chaos_fault_kind(kind, &fault.kind)) {
        fail(line_number, "unknown fault kind '" + kind + "'");
      }
      if (!(fields >> fault.at >> fault.duration >> fault.magnitude >>
            fault.param >> fault.seed)) {
        fail(line_number, "bad fault fields");
      }
      schedule.faults.push_back(fault);
    } else {
      fail(line_number, "unknown keyword '" + keyword + "'");
    }
    expect_consumed(fields, line_number);
  }
  if (!have_header) fail(line_number, "missing header");
  try {
    validate_chaos(schedule);
  } catch (const std::invalid_argument& error) {
    fail(line_number, error.what());
  }
  return schedule;
}

void validate_chaos(const ChaosSchedule& schedule) {
  auto require = [](bool ok, const std::string& message) {
    if (!ok) throw std::invalid_argument("chaos: " + message);
  };
  require(schedule.horizon > 0, "horizon must be positive");
  require(schedule.admission_low <= schedule.admission_high,
          "admission_low must not exceed admission_high");
  for (const ChaosFault& fault : schedule.faults) {
    const std::string name(chaos_fault_kind_name(fault.kind));
    require(fault.at >= 0, name + " start must be non-negative");
    require(fault.duration >= 0, name + " duration must be non-negative");
    require(!std::isnan(fault.magnitude) && fault.magnitude >= 0.0 &&
                fault.magnitude <= 1.0,
            name + " magnitude must be in [0, 1]");
  }
}

std::uint64_t digest_chaos(const ChaosSchedule& schedule) {
  workload::CanonicalDigest digest;
  digest.str("waif-chaos v1");
  digest.u64(schedule.seed);
  digest.i64(schedule.horizon);
  digest.u64(schedule.topic_budget);
  digest.u64(schedule.proxy_budget);
  digest.u64(schedule.admission_high);
  digest.u64(schedule.admission_low);
  digest.u64(schedule.breaker_threshold);
  digest.u64(static_cast<std::uint64_t>(schedule.bug));
  digest.u64(schedule.faults.size());
  for (const ChaosFault& fault : schedule.faults) {
    digest.u64(static_cast<std::uint64_t>(fault.kind));
    digest.i64(fault.at);
    digest.i64(fault.duration);
    digest.f64(fault.magnitude);
    digest.u64(fault.param);
    digest.u64(fault.seed);
  }
  return digest.value();
}

ChaosSchedule draw_chaos(const ChaosDrawConfig& config, std::uint64_t seed) {
  ChaosSchedule schedule;
  std::uint64_t state = seed ^ 0xC5A0Dull;
  schedule.seed = splitmix64(state);
  schedule.horizon = config.horizon;
  schedule.topic_budget = config.topic_budget;
  schedule.proxy_budget = config.proxy_budget;
  schedule.admission_high = config.admission_high;
  schedule.admission_low = config.admission_low;
  schedule.breaker_threshold = config.breaker_threshold;

  Rng rng(splitmix64(state));
  // Faults start inside the middle of the run, so the workload has state to
  // damage and time to recover before the horizon check.
  const SimTime first = config.horizon / 16;
  const SimTime last = config.horizon - config.horizon / 8;
  for (std::size_t i = 0; i < config.faults; ++i) {
    ChaosFault fault;
    const std::size_t kinds = config.allow_crashes ? 7 : 5;
    switch (rng.next_below(kinds)) {
      case 0:
        fault.kind = ChaosFaultKind::kLinkFault;
        break;
      case 1:
        fault.kind = ChaosFaultKind::kOutage;
        break;
      case 2:
        fault.kind = ChaosFaultKind::kStorageFault;
        break;
      case 3:
        fault.kind = ChaosFaultKind::kStorm;
        break;
      case 4:
        fault.kind = ChaosFaultKind::kDeviceStall;
        break;
      case 5:
        fault.kind = ChaosFaultKind::kCrashActive;
        break;
      default:
        fault.kind = ChaosFaultKind::kCrashAtRecord;
        break;
    }
    fault.at = first + static_cast<SimTime>(rng.next_below(
                           static_cast<std::uint64_t>(last - first)));
    fault.duration =
        5 * kMinute +
        static_cast<SimDuration>(rng.next_below(
            static_cast<std::uint64_t>(4 * kHour - 5 * kMinute)));
    fault.magnitude = config.intensity * (0.25 + 0.75 * rng.next_double());
    if (fault.kind == ChaosFaultKind::kStorm) {
      fault.param = config.storm_size / 2 +
                    rng.next_below(config.storm_size / 2 + 1);
    } else if (fault.kind == ChaosFaultKind::kCrashAtRecord) {
      fault.param = 24 + rng.next_below(512);
    }
    fault.seed = rng();
    schedule.faults.push_back(fault);
  }
  return schedule;
}

}  // namespace waif::experiments
