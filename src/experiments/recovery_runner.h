// Crash-point recovery harness: one deterministic last-hop run whose proxy
// journals every mutation through storage::ProxyPersistence, is killed when
// the WAL reaches a chosen record index, and is rebuilt from the durable
// state (newest valid snapshot + WAL-tail replay) to continue the run.
//
// The harness drives three topics with deliberately different configurations
// so a crash exercises every journal stage: an adaptive on-demand topic with
// a rank-change delay stage, a buffer-prefetch topic with an expiration
// threshold (holding queue) and an interrupt refinement, and an on-line
// topic with a per-day delivery cap. The device, the link schedule and the
// arrival/read traces live outside the proxy and survive the crash — exactly
// the paper's deployment, where only the fixed-infrastructure agent dies.
//
// What it proves (see run_recovery_plan):
//   - with sync-every-record persistence and no storage faults, the read
//     digest of (run, crash at record N, recover, continue) equals the
//     uninterrupted run's digest for EVERY N — recovery is exact;
//   - under batched syncs or injected storage faults the run may lose at
//     most the unflushed window and never delivers an expired notification;
//     as long as the write-ahead discipline stays on (sync_on_forward, the
//     forward record durable before the device can see the event) and
//     in-doubt events are trusted, it also never delivers a duplicate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "storage/fault.h"
#include "storage/persistence.h"
#include "workload/scenario.h"

namespace waif::experiments {

/// One recovery experiment: workload, persistence policy, injected storage
/// faults and the crash point.
struct RecoveryPlan {
  /// Base workload knobs (horizon, volume limits, outage fraction); the
  /// three topics derive per-topic variants from it. Rank changes are
  /// always disabled so any duplicate user read is a recovery bug.
  workload::ScenarioConfig scenario;
  std::uint64_t seed = 1;

  /// Journal at all? Off = the exact pre-persistence code path (the
  /// byte-identity control for the existing benches).
  bool persist = true;
  storage::PersistenceConfig persistence;

  /// Storage fault injection (torn writes, bit flips, failed fsyncs).
  storage::StorageFaultConfig storage_fault;
  std::uint64_t storage_fault_seed = 0xD15C;

  /// Kill the proxy once the WAL holds this many records; -1 = never.
  std::int64_t crash_at_record = -1;
  /// Downtime between the crash and the rebuilt proxy coming back.
  SimDuration restart_delay = 0;

  /// Run the last hop over the reliable transport (ACKs journaled, in-doubt
  /// events resolved by `unacked`) instead of fire-and-forget.
  bool reliable_channel = false;
  storage::RecoverUnacked unacked = storage::RecoverUnacked::kTrustForwarded;
};

/// Everything measured in one recovery run.
struct RecoveryOutcome {
  /// Canonical digest over every user read (instant, topic, sorted ids) —
  /// the byte-level identity check between crashed and uninterrupted runs.
  std::uint64_t read_digest = 0;
  std::uint64_t total_read = 0;
  std::uint64_t read_operations = 0;
  /// User reads returning an id this user already read. Rank changes are
  /// disabled, so in a correct run this is zero — crash or no crash.
  std::uint64_t duplicate_user_reads = 0;
  /// Deliveries handed to the channel past their expiration (asserted 0).
  std::uint64_t expired_deliveries = 0;

  std::uint64_t records_logged = 0;     // WAL records at the horizon
  std::uint64_t wal_syncs = 0;          // successful fsyncs over the run
  std::uint64_t records_recovered = 0;  // valid WAL records at recovery
  std::uint64_t replayed = 0;           // records replayed past the snapshot
  std::uint64_t crashes = 0;
  bool recovered_from_snapshot = false;
  std::uint64_t snapshots = 0;          // checkpoints made durable
  std::uint64_t damaged_snapshots = 0;  // snapshots rejected at recovery
  std::uint64_t wal_repairs = 0;        // damaged WAL tails truncated
  /// Unsynced records discarded by the crash — the bounded loss window.
  std::uint64_t lost_window = 0;
  /// Deliveries refused because the write-ahead fsync failed.
  std::uint64_t forward_refusals = 0;
  storage::StorageFaultStats storage_faults;
  bool fsck_recoverable = true;
};

/// The three topic names of the recovery scenario.
std::vector<std::string> recovery_topics();

/// The canonical base scenario for recovery experiments: outage-laced,
/// expiration-heavy, small enough that a crash-point sweep over every record
/// index stays cheap. Callers adjust `horizon` (and anything else) freely.
workload::ScenarioConfig recovery_scenario();

/// Runs one plan start to finish and returns the measurements. Aborts (via
/// WAIF_CHECK) if an expired notification ever reaches the channel.
RecoveryOutcome run_recovery_plan(const RecoveryPlan& plan);

}  // namespace waif::experiments
