// The experiment harness: replay one trace under a forwarding policy, and
// compare policies against the on-line baseline over identical traces —
// exactly the paper's methodology ("we configured the simulator to execute
// two scenarios for each randomized set of discrete events").
#pragma once

#include <cstdint>
#include <vector>

#include "core/forwarding_policy.h"
#include "core/proxy.h"
#include "core/reliable_channel.h"
#include "device/device.h"
#include "metrics/inefficiency.h"
#include "net/fault.h"
#include "net/link.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace waif::experiments {

/// Everything measured in one replay of a trace under one policy.
struct RunOutcome {
  /// Ids the user read during the run.
  metrics::ReadSet read_ids;
  /// NotificationId assigned to each trace arrival (index-aligned); used to
  /// relate rank-change records back to routed ids.
  std::vector<NotificationId> published;
  /// Distinct notification ids transferred proxy -> device.
  std::uint64_t forwarded_unique = 0;
  /// Total reads the user performed (read instants that returned >= 0 msgs).
  std::uint64_t read_operations = 0;
  core::TopicStats topic;
  device::DeviceStats device;
  net::LinkStats link;
  /// Fault process counters; all-zero unless the scenario enables faults.
  net::FaultStats faults;
  /// Reliable-transport counters; all-zero unless the scenario enables
  /// faults (the fire-and-forget channel is used otherwise).
  core::ReliableChannelStats reliable;

  /// waste% of this run: forwarded-but-never-read / forwarded.
  double waste_percent() const;
};

/// Optional device-constraint overrides for a run (Section 2.3 experiments).
struct DeviceOverrides {
  std::size_t storage_limit = device::kUnlimitedStorage;
  double battery_capacity = device::kUnlimitedBattery;
  double receive_cost = 1.0;
  double send_cost = 1.0;
};

/// Replays `trace` with the subscription limits of `config` under `policy`.
RunOutcome run_trace(const workload::Trace& trace,
                     const workload::ScenarioConfig& config,
                     const core::PolicyConfig& policy,
                     const DeviceOverrides& device_overrides = {});

/// A policy run paired with its on-line baseline over the same trace.
struct Comparison {
  RunOutcome baseline;  // on-line forwarding: zero loss by definition
  RunOutcome policy;
  double waste_percent = 0.0;  // of the policy run
  /// Baseline-read messages the policy user never saw, as a percentage of
  /// the baseline read set. Messages whose rank was later retracted below
  /// the subscription threshold are excluded: not delivering retracted
  /// content is the point of rank changes (Section 3.4), not a loss.
  double loss_percent = 0.0;
  /// Same set difference without the retraction exclusion.
  double raw_loss_percent = 0.0;
};

/// Generates the trace for (config, seed) and runs baseline + policy on it.
Comparison compare_policies(const workload::ScenarioConfig& config,
                            const core::PolicyConfig& policy,
                            std::uint64_t seed,
                            const DeviceOverrides& device_overrides = {});

/// Mean waste/loss of `policy` across seeds [first_seed, first_seed+seeds).
struct Aggregate {
  double waste_percent = 0.0;
  double loss_percent = 0.0;
  double waste_stddev = 0.0;
  double loss_stddev = 0.0;
  std::uint64_t seeds = 0;
};

Aggregate evaluate(const workload::ScenarioConfig& config,
                   const core::PolicyConfig& policy, std::uint64_t seeds = 3,
                   std::uint64_t first_seed = 1,
                   const DeviceOverrides& device_overrides = {});

/// The topic name the harness publishes on.
inline constexpr const char* kTopic = "experiment/topic";

}  // namespace waif::experiments
