// The unified chaos orchestrator: runs one composed fault schedule against
// the full stack — two warm replicas over one faulty last hop, a reliable
// channel with breaker and budgets, and a crash-consistent WAL — checking
// the reusable InvariantMonitor at every step, and delta-debugging any
// violating schedule down to a minimal replayable repro.
//
// The harness composes every injector the siloed sweeps exercise one at a
// time (recovery_runner, overload_runner, chaos_lasthop) so their
// *interactions* get explored: a machine crash mid-shed-storm while the
// device is half-open is one drawn schedule here, not three separate
// benches. run_chaos is deterministic: equal schedules produce equal
// outcomes byte for byte, which is what makes shrink_chaos and `.chaos`
// replay files (chaos_schedule.h) trustworthy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiments/chaos_schedule.h"
#include "experiments/invariant_monitor.h"
#include "net/fault.h"
#include "storage/fault.h"
#include "workload/scenario.h"

namespace waif::experiments {

struct ChaosOutcome {
  /// Digest over every user read (time, topic, sorted ids).
  std::uint64_t read_digest = 0;

  // --- workload ---------------------------------------------------------------
  std::uint64_t arrivals = 0;
  std::uint64_t total_read = 0;
  std::uint64_t read_operations = 0;
  std::uint64_t duplicate_user_reads = 0;

  // --- faults -----------------------------------------------------------------
  /// Faults that fired; guarded crash faults that found no healthy pair to
  /// kill are counted in faults_skipped instead.
  std::uint64_t faults_applied = 0;
  std::uint64_t faults_skipped = 0;
  std::uint64_t crashes = 0;
  /// Crashes that also lost the machine (WAL tail damage + channel reset).
  std::uint64_t machine_crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t failovers = 0;
  std::uint64_t wal_repairs = 0;

  // --- protection machinery ------------------------------------------------
  std::uint64_t shed = 0;
  std::uint64_t journaled_sheds = 0;
  std::uint64_t admission_rejects = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t records_logged = 0;

  // --- monitor coverage ------------------------------------------------------
  /// Periodic checkpoints evaluated.
  std::uint64_t checks = 0;
  /// Live-vs-recovered image comparisons performed / skipped (a check
  /// skips while the journal is detached or re-basing under fsync faults).
  std::uint64_t image_checks = 0;
  std::uint64_t image_skips = 0;

  net::FaultStats link_faults;
  storage::StorageFaultStats storage_faults;
  std::vector<ChaosViolation> violations;

  bool ok() const { return violations.empty(); }

  /// Canonical digest of the headline fields and every violation — two
  /// replays of the same schedule must agree on this byte for byte.
  std::uint64_t digest() const;
};

/// The topics the harness manages (same three-way policy split as the
/// recovery and overload harnesses, so chaos crosses every journal stage).
std::vector<std::string> chaos_topics();

/// The base workload behind every chaos run. Outages come from the
/// schedule, not the trace (outage_fraction = 0).
workload::ScenarioConfig chaos_scenario();

/// Runs one schedule to its horizon and returns the outcome; never throws
/// on invariant violations (they are data, for the shrinker). Validates the
/// schedule first (validate_chaos).
ChaosOutcome run_chaos(const ChaosSchedule& schedule);

struct ChaosShrinkResult {
  /// The minimal schedule that still violates.
  ChaosSchedule minimized;
  /// run_chaos(minimized), for reporting.
  ChaosOutcome outcome;
  std::size_t original_faults = 0;
  /// run_chaos invocations the shrink spent.
  std::size_t replays = 0;
};

/// Shrinks a violating schedule: ddmin over the fault list (drop whole
/// segments while the violation reproduces), then per-fault minimization
/// (halve duration, magnitude and param). Precondition: run_chaos(schedule)
/// reports at least one violation; throws std::invalid_argument otherwise.
ChaosShrinkResult shrink_chaos(const ChaosSchedule& schedule);

}  // namespace waif::experiments
