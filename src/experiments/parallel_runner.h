// Deterministic parallel sweep execution.
//
// Every figure and ablation replays dozens of independent (trace, policy)
// pairs; ParallelRunner fans them out over a work-stealing thread pool
// (common/thread_pool.h) while preserving the paper's methodology bit for
// bit. The determinism contract:
//
//   * one Simulator per job — run_trace()/compare_policies() build a private
//     simulator, broker, link and device, so jobs share no virtual clock and
//     no notification-id counter;
//   * each job's randomness comes only from its own seed (job_rng() derives
//     further non-overlapping substreams when a replay needs extra streams);
//   * results are returned in submission order, never completion order.
//
// Identical inputs therefore yield byte-identical RunOutcome/Comparison
// values at ANY thread count, which digest() (built on
// workload::CanonicalDigest) makes cheap to assert in tests and benches.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "experiments/runner.h"
#include "workload/serialization.h"

namespace waif::experiments {

/// One cell of a sweep: replay the trace of (scenario, seed) under `policy`.
struct SweepPoint {
  workload::ScenarioConfig scenario;
  core::PolicyConfig policy;
  DeviceOverrides device;
  std::uint64_t seed = 1;
};

/// One aggregate cell: `seeds` paired replays starting at `first_seed`,
/// reduced exactly like the sequential evaluate().
struct EvalPoint {
  workload::ScenarioConfig scenario;
  core::PolicyConfig policy;
  DeviceOverrides device;
  std::uint64_t seeds = 3;
  std::uint64_t first_seed = 1;
};

/// Wall-clock accounting of the most recent sweep. `task_seconds` sums the
/// per-job thread CPU times, i.e. what a sequential run of the same jobs
/// would have cost on one core (CPU, not wall, so oversubscribed workers do
/// not inflate each other's numbers); speedup() is that divided by the
/// observed wall time.
struct SweepStats {
  double wall_seconds = 0.0;
  double task_seconds = 0.0;
  std::size_t jobs = 0;
  std::size_t threads = 1;

  double speedup() const {
    return wall_seconds > 0.0 ? task_seconds / wall_seconds : 0.0;
  }
};

/// CPU time consumed by the calling thread, in seconds. Used for the
/// sequential-equivalent accounting: unlike wall time it is immune to
/// workers timesharing fewer cores than there are threads.
double thread_cpu_seconds();

class ParallelRunner {
 public:
  /// `jobs` = number of worker threads; 0 selects all hardware threads.
  explicit ParallelRunner(std::size_t jobs = 0);

  std::size_t thread_count() const { return pool_.thread_count(); }

  /// compare_policies() for every point, results in submission order.
  std::vector<Comparison> compare(const std::vector<SweepPoint>& points);

  /// run_trace() of the policy run only (no baseline), submission order.
  std::vector<RunOutcome> run(const std::vector<SweepPoint>& points);

  /// The sequential evaluate() with its seeds fanned out over the pool.
  Aggregate evaluate(const workload::ScenarioConfig& config,
                     const core::PolicyConfig& policy, std::uint64_t seeds = 3,
                     std::uint64_t first_seed = 1,
                     const DeviceOverrides& device_overrides = {});

  /// A whole sweep grid in one batch: every (point, seed) replay runs as its
  /// own job, then each point is reduced in seed order so the Aggregate is
  /// bit-identical to calling the sequential evaluate() per point.
  std::vector<Aggregate> evaluate_many(const std::vector<EvalPoint>& points);

  /// Generic escape hatch for replays the harness does not know how to
  /// build (multi-device groups, replicated proxies, custom timing loops):
  /// runs fn(0)..fn(count-1) on the pool and returns the results indexed by
  /// job. `fn` must depend only on its index for determinism to hold.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
    using Result = std::invoke_result_t<Fn, std::size_t>;
    std::vector<std::optional<Result>> slots(count);
    const auto started = std::chrono::steady_clock::now();
    std::vector<double> task_seconds(count, 0.0);
    parallel_for(pool_, count, [&fn, &slots, &task_seconds](std::size_t i) {
      const double job_started = thread_cpu_seconds();
      slots[i].emplace(fn(i));
      task_seconds[i] = thread_cpu_seconds() - job_started;
    });
    finish_stats(started, task_seconds);
    std::vector<Result> results;
    results.reserve(count);
    for (auto& slot : slots) results.push_back(std::move(*slot));
    return results;
  }

  /// Accounting of the most recent compare/run/evaluate/map call.
  const SweepStats& last_stats() const { return stats_; }

 private:
  void finish_stats(std::chrono::steady_clock::time_point started,
                    const std::vector<double>& task_seconds);

  ThreadPool pool_;
  SweepStats stats_;
};

/// An Rng substream for job `job_index` of a sweep seeded with `sweep_seed`.
/// Mixes both values through splitmix64 so neighbouring jobs get unrelated
/// streams (the generator's own split()/jump() then provide further
/// per-component streams inside the job).
Rng job_rng(std::uint64_t sweep_seed, std::uint64_t job_index);

/// Canonical digests of outcomes: field order is fixed, read sets are
/// sorted, doubles hash their IEEE-754 bit patterns. Equal digests at
/// different thread counts are the determinism contract's test surface.
void canonicalize(workload::CanonicalDigest& digest, const RunOutcome& outcome);
void canonicalize(workload::CanonicalDigest& digest,
                  const Comparison& comparison);
std::uint64_t digest(const RunOutcome& outcome);
std::uint64_t digest(const Comparison& comparison);
std::uint64_t digest(const std::vector<Comparison>& comparisons);
std::uint64_t digest(const std::vector<Aggregate>& aggregates);

}  // namespace waif::experiments
