#include "experiments/overload_runner.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "core/channel.h"
#include "core/proxy.h"
#include "core/read_protocol.h"
#include "device/device.h"
#include "metrics/inefficiency.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "pubsub/subscriber.h"
#include "sim/simulator.h"
#include "storage/backend.h"
#include "storage/snapshot.h"
#include "workload/serialization.h"
#include "workload/trace.h"

namespace waif::experiments {

namespace {

constexpr char kAdaptiveTopic[] = "overload/adaptive";
constexpr char kBufferTopic[] = "overload/buffer";
constexpr char kOnlineTopic[] = "overload/online";

/// Same three-way split as the recovery harness: an adaptive topic with a
/// delay stage, a buffer topic with a holding queue and interrupts, and an
/// on-line topic — so shedding crosses every queue and journal stage.
std::map<std::string, core::TopicConfig> topic_configs(
    const workload::ScenarioConfig& scenario) {
  std::map<std::string, core::TopicConfig> configs;
  {
    core::TopicConfig config;
    config.options.max = scenario.max;
    config.options.threshold = scenario.threshold;
    config.policy = core::PolicyConfig::adaptive();
    config.policy.delay = 30 * kMinute;
    configs.emplace(kAdaptiveTopic, config);
  }
  {
    core::TopicConfig config;
    config.options.max = scenario.max;
    config.options.threshold = scenario.threshold;
    config.policy = core::PolicyConfig::buffer(8, 2 * kHour);
    config.refinements.interrupt_threshold = 4.8;
    configs.emplace(kBufferTopic, config);
  }
  {
    core::TopicConfig config;
    config.mode = core::DeliveryMode::kOnLine;
    config.options.max = scenario.max;
    config.options.threshold = scenario.threshold;
    config.policy = core::PolicyConfig::online();
    config.refinements.max_per_day = 16;
    configs.emplace(kOnlineTopic, config);
  }
  return configs;
}

struct TopicTrace {
  std::string topic;
  workload::Trace trace;
};

/// One trace per topic from independent RNG substreams; only the adaptive
/// topic's outage schedule drives the (single) link. Rank changes stay off —
/// the overload sweep measures shedding, not rank churn.
std::vector<TopicTrace> build_traces(const OverloadPlan& plan) {
  workload::ScenarioConfig adaptive = plan.scenario;
  adaptive.rank_drop_fraction = 0.0;
  adaptive.rank_raise_fraction = 0.0;

  workload::ScenarioConfig buffer = adaptive;
  buffer.event_frequency = adaptive.event_frequency * 0.75;
  buffer.expiring_fraction = 1.0;
  buffer.mean_expiration = 4 * kHour;
  buffer.outage_fraction = 0.0;

  workload::ScenarioConfig online = adaptive;
  online.event_frequency = adaptive.event_frequency * 0.5;
  online.expiring_fraction = 0.0;
  online.mean_expiration = 0;
  online.outage_fraction = 0.0;

  std::uint64_t state = plan.seed;
  std::vector<TopicTrace> traces;
  traces.push_back(
      {kAdaptiveTopic, workload::generate_trace(adaptive, splitmix64(state))});
  traces.push_back(
      {kBufferTopic, workload::generate_trace(buffer, splitmix64(state))});
  traces.push_back(
      {kOnlineTopic, workload::generate_trace(online, splitmix64(state))});
  return traces;
}

class Relay final : public pubsub::Subscriber {
 public:
  explicit Relay(std::function<void(const pubsub::NotificationPtr&)> fn)
      : fn_(std::move(fn)) {}

  void on_notification(const pubsub::NotificationPtr& notification) override {
    fn_(notification);
  }

 private:
  std::function<void(const pubsub::NotificationPtr&)> fn_;
};

/// Guards the proxy -> channel boundary. Unlike the recovery harness's
/// wrapper this one forwards accepting(): the breaker's hold-only mode only
/// works if the proxy can see it through whatever channel it holds.
class GuardChannel final : public core::DeviceChannel {
 public:
  GuardChannel(sim::Simulator& sim, core::DeviceChannel& inner,
               std::uint64_t* expired_deliveries)
      : sim_(sim), inner_(inner), expired_deliveries_(expired_deliveries) {}

  bool link_up() const override { return inner_.link_up(); }
  bool accepting() const override { return inner_.accepting(); }

  bool deliver(const pubsub::NotificationPtr& notification) override {
    if (notification->expired_at(sim_.now())) ++*expired_deliveries_;
    return inner_.deliver(notification);
  }

 private:
  sim::Simulator& sim_;
  core::DeviceChannel& inner_;
  std::uint64_t* expired_deliveries_;
};

/// Sits between the proxy and the persistence layer: forwards every hook
/// unchanged, counts on_shed firings, and verifies each shed victim is the
/// canonical worst of its topic (overload.h shed_before) at journal time —
/// on_shed fires while the victim is still queued, so the check sees the
/// victim among the candidates.
class JournalTee final : public core::ProxyJournal {
 public:
  void wire(core::Proxy* proxy, storage::ProxyPersistence* inner,
            OverloadOutcome* outcome) {
    proxy_ = proxy;
    inner_ = inner;
    outcome_ = outcome;
  }

  void on_enqueue(const std::string& topic,
                  const core::EnqueueRecord& record) override {
    if (inner_ != nullptr) inner_->on_enqueue(topic, record);
  }

  bool on_forward(const std::string& topic,
                  const pubsub::NotificationPtr& event, SimTime at,
                  double rate_credit, bool replicated) override {
    return inner_ == nullptr ||
           inner_->on_forward(topic, event, at, rate_credit, replicated);
  }

  void on_read(const std::string& topic, std::uint64_t request_id, int n,
               std::size_t queue_size, SimTime at) override {
    if (inner_ != nullptr) inner_->on_read(topic, request_id, n, queue_size, at);
  }

  void on_sync(const std::string& topic, std::size_t queue_size,
               std::uint64_t sync_id,
               const std::vector<core::ReadRecord>& offline_reads,
               SimTime at) override {
    if (inner_ != nullptr) {
      inner_->on_sync(topic, queue_size, sync_id, offline_reads, at);
    }
  }

  void on_expire(const std::string& topic, NotificationId id, bool timer_fired,
                 SimTime at) override {
    if (inner_ != nullptr) inner_->on_expire(topic, id, timer_fired, at);
  }

  void on_requeue(const std::string& topic,
                  const pubsub::NotificationPtr& event, SimTime at) override {
    if (inner_ != nullptr) inner_->on_requeue(topic, event, at);
  }

  void on_shed(const std::string& topic, const pubsub::NotificationPtr& event,
               SimTime at) override {
    ++outcome_->journaled_sheds;
    if (const core::TopicState* state = proxy_->topic(topic)) {
      for (const pubsub::NotificationPtr& candidate : state->queued_events()) {
        if (candidate->id.value != event->id.value &&
            core::shed_before(*candidate, *event)) {
          ++outcome_->shed_order_violations;
        }
      }
    }
    if (inner_ != nullptr) inner_->on_shed(topic, event, at);
  }

 private:
  core::Proxy* proxy_ = nullptr;
  storage::ProxyPersistence* inner_ = nullptr;
  OverloadOutcome* outcome_ = nullptr;
};

/// A TopicSnapshot's canonical serialization, for byte-comparisons.
std::vector<std::uint8_t> canonical_bytes(const std::string& topic,
                                          const core::TopicSnapshot& state) {
  storage::ProxySnapshot wrapper;
  wrapper.topics.emplace_back(topic, state);
  return storage::encode_snapshot(wrapper);
}

class OverloadHarness {
 public:
  explicit OverloadHarness(const OverloadPlan& plan)
      : plan_(plan),
        configs_(topic_configs(plan.scenario)),
        traces_(build_traces(plan)),
        sim_(),
        broker_(sim_, std::max<std::size_t>(
                          total_arrivals() +
                              plan.storm_bursts * plan.storm_size,
                          1)),
        link_(sim_),
        device_(sim_, DeviceId{1}),
        relay_([this](const pubsub::NotificationPtr& notification) {
          proxy_.on_notification(notification);
          sample_queues();
        }),
        publisher_(broker_, "workload"),
        reliable_(sim_, link_, device_, plan.channel,
                  channel_seed(plan.seed)),
        guard_(sim_, reliable_, &expired_deliveries_),
        proxy_(sim_, guard_, "overload-proxy") {
    for (const auto& [topic, config] : configs_) proxy_.add_topic(topic, config);
    proxy_.set_overload(plan_.overload);

    if (plan_.persist) {
      persistence_.emplace(sim_, backend_, plan_.persistence);
      persistence_->set_channel(&reliable_);
      persistence_->attach(proxy_);
    }
    // The tee interposes on whatever attach() installed.
    tee_.wire(&proxy_, persistence_ ? &*persistence_ : nullptr, &outcome_);
    proxy_.set_journal(&tee_);

    reliable_.set_delivery_observer(
        [this](const pubsub::NotificationPtr& event) {
          WAIF_CHECK(!event->expired_at(sim_.now()));
        });
    reliable_.set_failure_handler(
        [this](const pubsub::NotificationPtr& event) {
          if (core::TopicState* topic = proxy_.topic(event->topic)) {
            topic->requeue_undelivered(event);
            sample_queues();
          }
        });
    // Held events flow again the moment the breaker admits transfers.
    reliable_.set_breaker_observer([this](core::BreakerState state) {
      if (state != core::BreakerState::kOpen) wake_forwarding();
    });

    for (const auto& [topic, config] : configs_) {
      device_.set_topic_threshold(topic, config.options.threshold);
      broker_.subscribe(topic, relay_, config.options);
      publisher_.advertise(topic);
    }

    link_.on_state_change([this](net::LinkState state) {
      proxy_.handle_network(state);
      if (state == net::LinkState::kUp) flush_pending_syncs();
    });
    link_.apply_schedule(traces_[0].trace.outages);

    for (const TopicTrace& entry : traces_) {
      const std::string& topic = entry.topic;
      for (const workload::Arrival& arrival : entry.trace.arrivals) {
        sim_.schedule_at(arrival.time, [this, &topic, arrival] {
          publisher_.publish(topic, arrival.rank, arrival.lifetime);
        });
      }
      for (SimTime read_at : entry.trace.reads) {
        sim_.schedule_at(read_at, [this, &topic] { do_read(topic); });
      }
    }

    schedule_storm();
    schedule_stalls();
  }

  ~OverloadHarness() {
    if (persistence_) persistence_->detach();
  }

  OverloadOutcome run() {
    sim_.run_until(plan_.scenario.horizon);

    outcome_.read_digest = digest_.value();
    outcome_.arrivals = proxy_.stats().notifications;
    outcome_.admission_rejects = proxy_.stats().admission_rejects;
    for (const std::string& name : proxy_.topic_names()) {
      outcome_.shed += proxy_.topic(name)->stats().shed;
    }
    const core::ReliableChannelStats& channel = reliable_.stats();
    outcome_.breaker_trips = channel.breaker_trips;
    outcome_.breaker_closes = channel.breaker_closes;
    outcome_.breaker_probes = channel.breaker_probes;
    outcome_.attempts_exhausted = channel.attempts_exhausted;
    outcome_.requeued = channel.requeued;
    outcome_.final_queued = proxy_.total_queued();
    outcome_.shed_pct =
        outcome_.shed <= outcome_.arrivals
            ? metrics::shed_percent(outcome_.arrivals, outcome_.shed)
            : 100.0;

    // Safety: nothing expired ever reached the transport, and every shed the
    // topics counted went through the journal hook.
    WAIF_CHECK(expired_deliveries_ == 0);
    WAIF_CHECK(outcome_.journaled_sheds == outcome_.shed);

    if (plan_.persist) {
      outcome_.records_logged = persistence_->record_count();
      verify_recovery_image();
    }
    return outcome_;
  }

 private:
  static std::uint64_t channel_seed(std::uint64_t seed) {
    std::uint64_t state = seed ^ 0x52E11AB1Eull;
    return splitmix64(state);
  }

  std::size_t total_arrivals() const {
    std::size_t total = 0;
    for (const TopicTrace& entry : traces_) {
      total += entry.trace.arrivals.size();
    }
    return total;
  }

  void schedule_storm() {
    if (plan_.storm_bursts == 0 || plan_.storm_size == 0) return;
    std::uint64_t state = plan_.seed ^ 0x5702u;
    Rng rng(splitmix64(state));
    const std::vector<std::string> topics = overload_topics();
    const SimTime start = plan_.scenario.horizon / 4;
    for (std::size_t burst = 0; burst < plan_.storm_bursts; ++burst) {
      const SimTime at =
          start + static_cast<SimDuration>(burst) * plan_.storm_spacing;
      if (at >= plan_.scenario.horizon) break;
      for (std::size_t k = 0; k < plan_.storm_size; ++k) {
        const std::string topic =
            topics[(burst * plan_.storm_size + k) % topics.size()];
        const double rank = 1.0 + 4.0 * rng.next_double();
        // Half the storm expires quickly — shedding then has both orderings
        // (rank first, soonest expiration second) to exercise.
        const SimDuration lifetime =
            (k % 2 == 0)
                ? 2 * kHour + static_cast<SimDuration>(rng.next_below(
                                  static_cast<std::uint64_t>(2 * kHour)))
                : kNever;
        sim_.schedule_at(at + static_cast<SimDuration>(k) * kSecond,
                         [this, topic, rank, lifetime] {
                           publisher_.publish(topic, rank, lifetime);
                         });
      }
    }
  }

  void schedule_stalls() {
    if (plan_.stall_count == 0 || plan_.stall_duration <= 0) return;
    std::uint64_t state = plan_.seed ^ 0x57A11u;
    for (std::size_t i = 0; i < plan_.stall_count; ++i) {
      const SimTime start = plan_.scenario.horizon *
                            static_cast<SimTime>(i + 1) /
                            static_cast<SimTime>(plan_.stall_count + 1);
      const std::uint64_t stall_seed = splitmix64(state);
      const std::uint64_t clear_seed = splitmix64(state);
      sim_.schedule_at(start, [this, stall_seed] {
        net::FaultConfig fault;
        fault.uplink_drop_probability = 1.0;  // every ACK vanishes
        link_.set_fault_model(fault, stall_seed);
      });
      sim_.schedule_at(start + plan_.stall_duration, [this, clear_seed] {
        link_.set_fault_model(net::FaultConfig{}, clear_seed);
      });
    }
  }

  void wake_forwarding() {
    for (const std::string& name : proxy_.topic_names()) {
      proxy_.topic(name)->try_forwarding();
    }
    sample_queues();
  }

  /// Samples queue occupancy. Called only after a mutation fully settled
  /// (budgets enforced), never from inside one — on_enqueue fires before
  /// enforcement and may legitimately see budget+1.
  void sample_queues() {
    std::size_t total = 0;
    std::size_t worst = 0;
    for (const std::string& name : proxy_.topic_names()) {
      const std::size_t queued = proxy_.topic(name)->queued_total();
      total += queued;
      worst = std::max(worst, queued);
    }
    outcome_.peak_queued = std::max(outcome_.peak_queued, total);
    outcome_.peak_topic_queued = std::max(outcome_.peak_topic_queued, worst);
  }

  void send_read(const std::string& topic,
                 const pubsub::SubscriptionOptions& options) {
    core::ReadRequest request;
    request.request_id = next_request_id_++;
    request.n = options.max;
    request.queue_size = device_.queue_size(topic);
    request.client_events =
        device_.top_ids(topic, options.max, options.threshold);
    constexpr std::size_t kRequestHeaderBytes = 32;
    constexpr std::size_t kBytesPerId = 8;
    link_.record_uplink(kRequestHeaderBytes +
                        kBytesPerId * request.client_events.size());
    // The harness builds well-formed requests; a rejection here would mean
    // the validation layer broke.
    WAIF_CHECK(proxy_.try_read(topic, request) == core::ReadStatus::kOk);
  }

  void flush_pending_syncs() {
    if (!link_.is_up()) return;
    const auto pending = std::move(pending_sync_);
    pending_sync_.clear();
    for (const auto& [topic, offline_reads] : pending) {
      constexpr std::size_t kSyncBytes = 16;
      constexpr std::size_t kBytesPerRecord = 12;
      link_.record_uplink(kSyncBytes + kBytesPerRecord * offline_reads.size());
      WAIF_CHECK(proxy_.try_sync(topic, device_.queue_size(topic),
                                 offline_reads, next_request_id_++) ==
                 core::ReadStatus::kOk);
    }
    sample_queues();
  }

  void do_read(const std::string& topic) {
    const core::TopicConfig& config = configs_.at(topic);
    const pubsub::SubscriptionOptions& options = config.options;
    const bool online = link_.is_up() && !device_.battery_dead();
    const core::PolicyKind kind = config.policy.kind;
    const bool prefetching = kind == core::PolicyKind::kBufferPrefetch ||
                             kind == core::PolicyKind::kRatePrefetch ||
                             kind == core::PolicyKind::kAdaptive;
    if (online) {
      send_read(topic, options);
    } else if (prefetching && !device_.battery_dead()) {
      pending_sync_[topic].push_back(core::ReadRecord{sim_.now(), options.max});
    }
    const auto read = device_.read(topic, options.max, options.threshold,
                                   /*charge_uplink=*/online);
    ++outcome_.read_operations;
    outcome_.total_read += read.size();

    std::vector<std::uint64_t> ids;
    ids.reserve(read.size());
    for (const pubsub::NotificationPtr& event : read) {
      ids.push_back(event->id.value);
    }
    std::sort(ids.begin(), ids.end());
    digest_.i64(sim_.now());
    digest_.str(topic);
    digest_.u64(ids.size());
    for (std::uint64_t id : ids) digest_.u64(id);
    sample_queues();
  }

  /// No unjournaled drops: replay the whole WAL from scratch through the
  /// recovery mirror and byte-compare the rebuilt per-topic images with the
  /// live proxy's snapshots. An event shed without its on_shed record would
  /// survive in the replayed image and break the comparison.
  void verify_recovery_image() {
    const storage::RecoveryResult recovery =
        storage::ProxyPersistence::recover(backend_, configs_);
    std::map<std::string, core::TopicSnapshot> replayed;
    for (const auto& [name, image] : recovery.state.topics) {
      replayed.emplace(name, image);
    }
    bool match = true;
    for (const auto& [name, config] : configs_) {
      core::TopicSnapshot recovered;  // empty when nothing was logged
      if (auto it = replayed.find(name); it != replayed.end()) {
        recovered = it->second;
      }
      const core::TopicSnapshot live = proxy_.topic(name)->snapshot();
      if (canonical_bytes(name, recovered) != canonical_bytes(name, live)) {
        match = false;
      }
    }
    outcome_.recovery_image_match = match;
  }

  OverloadPlan plan_;
  std::map<std::string, core::TopicConfig> configs_;
  std::vector<TopicTrace> traces_;
  sim::Simulator sim_;
  pubsub::Broker broker_;
  net::Link link_;
  device::Device device_;
  Relay relay_;
  pubsub::Publisher publisher_;
  storage::MemBackend backend_;
  std::uint64_t expired_deliveries_ = 0;
  core::ReliableDeviceChannel reliable_;
  GuardChannel guard_;
  core::Proxy proxy_;
  JournalTee tee_;
  std::optional<storage::ProxyPersistence> persistence_;

  std::uint64_t next_request_id_ = 1;
  std::map<std::string, std::vector<core::ReadRecord>> pending_sync_;
  workload::CanonicalDigest digest_;
  OverloadOutcome outcome_;
};

}  // namespace

std::vector<std::string> overload_topics() {
  return {kAdaptiveTopic, kBufferTopic, kOnlineTopic};
}

workload::ScenarioConfig overload_scenario() {
  workload::ScenarioConfig config;
  config.event_frequency = 32.0;
  config.user_frequency = 4.0;
  config.max = 8;
  config.threshold = 1.0;
  config.expiring_fraction = 0.5;
  config.mean_expiration = 6 * kHour;
  config.outage_fraction = 0.1;
  config.mean_outage = 2 * kHour;
  config.horizon = 4 * kDay;
  return config;
}

OverloadOutcome run_overload_plan(const OverloadPlan& plan) {
  OverloadHarness harness(plan);
  return harness.run();
}

}  // namespace waif::experiments
