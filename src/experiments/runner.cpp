#include "experiments/runner.h"

#include <algorithm>
#include <optional>

#include "common/check.h"
#include "common/moving_stats.h"
#include "common/rng.h"
#include "core/channel.h"
#include "core/reliable_channel.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"

namespace waif::experiments {

double RunOutcome::waste_percent() const {
  // Under a faulty link a requeued-then-reread message can push reads past
  // the unique-forward count (the forward record was erased when the
  // transfer was abandoned, but the device still held the copy). Clamp:
  // reading at least everything forwarded means zero waste.
  return metrics::waste_percent(forwarded_unique,
                                std::min<std::uint64_t>(forwarded_unique,
                                                        read_ids.size()));
}

RunOutcome run_trace(const workload::Trace& trace,
                     const workload::ScenarioConfig& config,
                     const core::PolicyConfig& policy,
                     const DeviceOverrides& device_overrides) {
  sim::Simulator sim;

  // Broker history must be able to hold the whole run so late rank changes
  // can still find their original (the paper's GC concern does not bind at
  // this scale).
  pubsub::Broker broker(sim, std::max<std::size_t>(trace.arrivals.size(), 1));

  net::Link link(sim);

  device::DeviceConfig device_config;
  device_config.storage_limit = device_overrides.storage_limit;
  device_config.battery_capacity = device_overrides.battery_capacity;
  device_config.receive_cost = device_overrides.receive_cost;
  device_config.send_cost = device_overrides.send_cost;
  device::Device device(sim, DeviceId{1}, device_config);

  // With any fault parameter non-zero the last hop becomes lossy and the
  // run switches to the reliable transport; with all parameters zero this
  // block is skipped entirely and the run takes the exact fire-and-forget
  // path (same RNG streams, same event sequence) it always took.
  core::SimDeviceChannel channel(link, device);
  std::optional<core::ReliableDeviceChannel> reliable;
  if (config.fault.enabled()) {
    std::uint64_t seed_state = config.fault_seed;
    const std::uint64_t fault_seed = splitmix64(seed_state);
    const std::uint64_t jitter_seed = splitmix64(seed_state);
    link.set_fault_model(config.fault, fault_seed);
    reliable.emplace(sim, link, device, core::ReliableChannelConfig{},
                     jitter_seed);
  }
  core::DeviceChannel& active_channel =
      reliable ? static_cast<core::DeviceChannel&>(*reliable) : channel;
  core::Proxy proxy(sim, active_channel);
  proxy.attach_to_link(link);

  core::TopicConfig topic_config;
  topic_config.mode = core::DeliveryMode::kOnDemand;
  topic_config.options.max = config.max;
  topic_config.options.threshold = config.threshold;
  topic_config.policy = policy;
  // History must cover the run for correct READ rank comparison.
  core::TopicState& topic_state = proxy.add_topic(kTopic, topic_config);
  if (reliable) {
    // Graceful degradation: a transfer the transport gave up on re-enters
    // the holding queue, where an explicit read can still pull it.
    reliable->set_failure_handler(
        [&topic_state](const pubsub::NotificationPtr& event) {
          topic_state.requeue_undelivered(event);
        });
  }
  // The device knows the user's qualitative limit, so rank-drop notices can
  // retract held copies instead of letting them clog the buffer.
  device.set_topic_threshold(kTopic, config.threshold);

  pubsub::Publisher publisher(broker, "workload");
  publisher.advertise(kTopic);
  broker.subscribe(kTopic, proxy, topic_config.options);

  core::LastHopSession session(proxy, link, device);

  // --- populate the simulator with the trace's three event types -----------

  link.apply_schedule(trace.outages);

  RunOutcome outcome;
  outcome.published.resize(trace.arrivals.size());
  std::vector<NotificationId>& published = outcome.published;

  for (std::size_t i = 0; i < trace.arrivals.size(); ++i) {
    const workload::Arrival& arrival = trace.arrivals[i];
    sim.schedule_at(arrival.time, [&publisher, &published, arrival, i] {
      auto notification =
          publisher.publish(kTopic, arrival.rank, arrival.lifetime);
      WAIF_CHECK(notification != nullptr);
      published[i] = notification->id;
    });
  }

  for (const workload::RankChange& change : trace.rank_changes) {
    // Arrivals are scheduled before rank changes, so at equal instants the
    // publish fires first and `published[...]` is valid.
    WAIF_CHECK(change.arrival_index < trace.arrivals.size());
    WAIF_CHECK(change.time >= trace.arrivals[change.arrival_index].time);
    sim.schedule_at(change.time, [&publisher, &published, change] {
      publisher.update_rank(published[change.arrival_index], change.new_rank);
    });
  }

  for (SimTime read_at : trace.reads) {
    sim.schedule_at(read_at, [&session, &outcome] {
      ++outcome.read_operations;
      for (const auto& notification : session.user_read(kTopic)) {
        outcome.read_ids.insert(notification->id.value);
      }
    });
  }

  sim.run_until(trace.horizon);

  const core::TopicState* state = proxy.topic(kTopic);
  WAIF_CHECK(state != nullptr);
  outcome.topic = state->stats();
  outcome.device = device.stats();
  outcome.link = link.stats();
  outcome.forwarded_unique = state->forwarded_unique();
  if (reliable) outcome.reliable = reliable->stats();
  if (const net::FaultModel* fault = link.fault_model()) {
    outcome.faults = fault->stats();
  }
  if (!config.fault.enabled()) {
    // On a perfect hop every read id was forwarded by this proxy. A faulty
    // hop breaks the set relation in one legal corner: a message can be
    // delivered while all of its ACKs are lost, after which the transport
    // gives up and requeue_undelivered removes the id from the forwarded
    // set even though the device (and hence a read) still has it.
    WAIF_CHECK(outcome.read_ids.size() <= outcome.forwarded_unique);
  }
  return outcome;
}

Comparison compare_policies(const workload::ScenarioConfig& config,
                            const core::PolicyConfig& policy,
                            std::uint64_t seed,
                            const DeviceOverrides& device_overrides) {
  const workload::Trace trace = workload::generate_trace(config, seed);

  Comparison comparison;
  comparison.baseline =
      run_trace(trace, config, core::PolicyConfig::online(), device_overrides);
  comparison.policy = run_trace(trace, config, policy, device_overrides);
  comparison.waste_percent = comparison.policy.waste_percent();
  comparison.raw_loss_percent = metrics::loss_percent(
      comparison.baseline.read_ids, comparison.policy.read_ids);

  // Exclude retracted content from loss: a message whose final rank fell
  // below the subscription threshold is exactly what volume limiting is
  // supposed to withhold (Section 3.4).
  metrics::ReadSet wanted = comparison.baseline.read_ids;
  for (const workload::RankChange& change : trace.rank_changes) {
    if (change.new_rank < config.threshold) {
      wanted.erase(comparison.baseline.published[change.arrival_index].value);
    }
  }
  comparison.loss_percent =
      metrics::loss_percent(wanted, comparison.policy.read_ids);
  return comparison;
}

Aggregate evaluate(const workload::ScenarioConfig& config,
                   const core::PolicyConfig& policy, std::uint64_t seeds,
                   std::uint64_t first_seed,
                   const DeviceOverrides& device_overrides) {
  WAIF_CHECK(seeds > 0);
  OnlineStats waste;
  OnlineStats loss;
  for (std::uint64_t seed = first_seed; seed < first_seed + seeds; ++seed) {
    const Comparison comparison =
        compare_policies(config, policy, seed, device_overrides);
    waste.add(comparison.waste_percent);
    loss.add(comparison.loss_percent);
  }
  Aggregate aggregate;
  aggregate.waste_percent = waste.mean();
  aggregate.loss_percent = loss.mean();
  aggregate.waste_stddev = waste.stddev();
  aggregate.loss_stddev = loss.stddev();
  aggregate.seeds = seeds;
  return aggregate;
}

}  // namespace waif::experiments
