#include "experiments/chaos_orchestrator.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/channel.h"
#include "core/overload.h"
#include "core/proxy.h"
#include "core/replication.h"
#include "core/reliable_channel.h"
#include "core/snapshot.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"
#include "storage/backend.h"
#include "storage/fsck.h"
#include "storage/persistence.h"
#include "storage/snapshot.h"
#include "workload/serialization.h"
#include "workload/trace.h"

namespace waif::experiments {

namespace {

constexpr char kAdaptiveTopic[] = "chaos/adaptive";
constexpr char kBufferTopic[] = "chaos/buffer";
constexpr char kOnlineTopic[] = "chaos/online";

/// Floor on a crash fault's restart delay. The failure detector (30 s
/// heartbeats, 5 min suspicion) promotes the standby well inside this
/// window, so a dead replica is never still carrying the active role — and
/// the attached journal — when restart_replica replaces its proxy object.
constexpr SimDuration kMinRestartDelay = 8 * kMinute;

/// Same three-way policy split as the recovery/overload harnesses, so a
/// composed schedule crosses every queue and journal stage.
std::map<std::string, core::TopicConfig> topic_configs(
    const workload::ScenarioConfig& scenario) {
  std::map<std::string, core::TopicConfig> configs;
  {
    core::TopicConfig config;
    config.options.max = scenario.max;
    config.options.threshold = scenario.threshold;
    config.policy = core::PolicyConfig::adaptive();
    config.policy.delay = 30 * kMinute;
    configs.emplace(kAdaptiveTopic, config);
  }
  {
    core::TopicConfig config;
    config.options.max = scenario.max;
    config.options.threshold = scenario.threshold;
    config.policy = core::PolicyConfig::buffer(8, 2 * kHour);
    config.refinements.interrupt_threshold = 4.8;
    configs.emplace(kBufferTopic, config);
  }
  {
    core::TopicConfig config;
    config.mode = core::DeliveryMode::kOnLine;
    config.options.max = scenario.max;
    config.options.threshold = scenario.threshold;
    config.policy = core::PolicyConfig::online();
    config.refinements.max_per_day = 16;
    configs.emplace(kOnlineTopic, config);
  }
  return configs;
}

struct TopicTrace {
  std::string topic;
  workload::Trace trace;
};

/// One trace per topic from independent substreams of the schedule seed.
/// No trace outages and no rank churn: the link belongs to the schedule's
/// kOutage faults, and chaos measures fault composition, not rank changes.
std::vector<TopicTrace> build_traces(const ChaosSchedule& schedule) {
  workload::ScenarioConfig adaptive = chaos_scenario();
  adaptive.horizon = schedule.horizon;

  workload::ScenarioConfig buffer = adaptive;
  buffer.event_frequency = adaptive.event_frequency * 0.75;
  buffer.expiring_fraction = 1.0;
  buffer.mean_expiration = 4 * kHour;

  workload::ScenarioConfig online = adaptive;
  online.event_frequency = adaptive.event_frequency * 0.5;
  online.expiring_fraction = 0.0;
  online.mean_expiration = 0;

  std::uint64_t state = schedule.seed;
  std::vector<TopicTrace> traces;
  traces.push_back(
      {kAdaptiveTopic, workload::generate_trace(adaptive, splitmix64(state))});
  traces.push_back(
      {kBufferTopic, workload::generate_trace(buffer, splitmix64(state))});
  traces.push_back(
      {kOnlineTopic, workload::generate_trace(online, splitmix64(state))});
  return traces;
}

/// Compact shape summary of a topic image, for violation details.
std::string image_shape(const core::TopicSnapshot& state) {
  auto ids = [](const std::vector<pubsub::Notification>& events) {
    std::string out;
    for (const pubsub::Notification& event : events) {
      if (!out.empty()) out += ',';
      out += std::to_string(event.id.value);
    }
    return out.empty() ? std::string("-") : out;
  };
  return "out[" + ids(state.outgoing) + "] pre[" + ids(state.prefetch) +
         "] hold[" + ids(state.holding) + "] delayed:" +
         std::to_string(state.delayed.size()) + " hist:" +
         std::to_string(state.history.size()) + " fwd:" +
         std::to_string(state.forwarded.size()) + " credit:" +
         std::to_string(state.rate_credit);
}

/// A TopicSnapshot's canonical serialization, for byte-comparisons.
std::vector<std::uint8_t> canonical_bytes(const std::string& topic,
                                          const core::TopicSnapshot& state) {
  storage::ProxySnapshot wrapper;
  wrapper.topics.emplace_back(topic, state);
  return storage::encode_snapshot(wrapper);
}

/// Guards the proxy -> channel boundary: an expired notification handed to
/// the transport is a violation (recorded, not aborted — the shrinker needs
/// violations as data). Forwards accepting() so the breaker's hold-only
/// mode stays visible through the wrapper.
class GuardChannel final : public core::DeviceChannel {
 public:
  GuardChannel(sim::Simulator& sim, core::DeviceChannel& inner,
               InvariantMonitor& monitor)
      : sim_(sim), inner_(inner), monitor_(monitor) {}

  bool link_up() const override { return inner_.link_up(); }
  bool accepting() const override { return inner_.accepting(); }

  bool deliver(const pubsub::NotificationPtr& notification) override {
    if (notification->expired_at(sim_.now())) {
      monitor_.record("expired-delivery",
                      "expired event " +
                          std::to_string(notification->id.value) +
                          " handed to the transport",
                      sim_.now());
    }
    return inner_.deliver(notification);
  }

 private:
  sim::Simulator& sim_;
  core::DeviceChannel& inner_;
  InvariantMonitor& monitor_;
};

/// Sits between the active proxy and the persistence layer, and doubles as
/// the ReplicatedProxy's recovery hook so the journal follows the active
/// role across failovers. Forwards every journal hook, counts sheds and
/// verifies each victim is the canonical worst of its topic; with the
/// kSwallowShedJournal bug armed it drops on_shed records on the floor —
/// the intentional invariant bug the acceptance tests shrink.
class ChaosTee final : public core::ProxyJournal, public core::ProxyRecovery {
 public:
  void wire(storage::ProxyPersistence* inner, ChaosOutcome* outcome,
            InvariantMonitor* monitor, sim::Simulator* sim,
            bool swallow_sheds) {
    inner_ = inner;
    outcome_ = outcome;
    monitor_ = monitor;
    sim_ = sim;
    swallow_sheds_ = swallow_sheds;
  }

  /// The proxy the journal is attached to; null while detached (between a
  /// machine crash and the next promotion).
  core::Proxy* proxy() const { return proxy_; }
  void set_proxy(core::Proxy* proxy) { proxy_ = proxy; }

  /// Runs after a promotion re-based the journal on the new active.
  void set_promoted_hook(std::function<void()> hook) {
    promoted_hook_ = std::move(hook);
  }

  // --- ProxyJournal ----------------------------------------------------------

  void on_enqueue(const std::string& topic,
                  const core::EnqueueRecord& record) override {
    inner_->on_enqueue(topic, record);
  }

  bool on_forward(const std::string& topic,
                  const pubsub::NotificationPtr& event, SimTime at,
                  double rate_credit, bool replicated) override {
    return inner_->on_forward(topic, event, at, rate_credit, replicated);
  }

  void on_read(const std::string& topic, std::uint64_t request_id, int n,
               std::size_t queue_size, SimTime at) override {
    inner_->on_read(topic, request_id, n, queue_size, at);
  }

  void on_sync(const std::string& topic, std::size_t queue_size,
               std::uint64_t sync_id,
               const std::vector<core::ReadRecord>& offline_reads,
               SimTime at) override {
    inner_->on_sync(topic, queue_size, sync_id, offline_reads, at);
  }

  void on_expire(const std::string& topic, NotificationId id, bool timer_fired,
                 SimTime at) override {
    inner_->on_expire(topic, id, timer_fired, at);
  }

  void on_requeue(const std::string& topic,
                  const pubsub::NotificationPtr& event, SimTime at) override {
    inner_->on_requeue(topic, event, at);
  }

  void on_shed(const std::string& topic, const pubsub::NotificationPtr& event,
               SimTime at) override {
    ++outcome_->journaled_sheds;
    if (proxy_ != nullptr) {
      if (const core::TopicState* state = proxy_->topic(topic)) {
        for (const pubsub::NotificationPtr& candidate :
             state->queued_events()) {
          if (candidate->id.value != event->id.value &&
              core::shed_before(*candidate, *event)) {
            monitor_->record("shed-order",
                             topic + " shed " +
                                 std::to_string(event->id.value) +
                                 " before worse candidate " +
                                 std::to_string(candidate->id.value),
                             at);
          }
        }
      }
    }
    if (swallow_sheds_) return;  // the armed bug: the WAL never learns
    inner_->on_shed(topic, event, at);
  }

  // --- ProxyRecovery ---------------------------------------------------------

  void on_promoted(core::Proxy& active) override {
    inner_->on_promoted(active);
    // Re-interpose on whatever attach() installed.
    active.set_journal(this);
    proxy_ = &active;
    if (promoted_hook_) promoted_hook_();
  }

  void warm_restart(core::Proxy& fresh) override {
    inner_->warm_restart(fresh);
  }

 private:
  storage::ProxyPersistence* inner_ = nullptr;
  ChaosOutcome* outcome_ = nullptr;
  InvariantMonitor* monitor_ = nullptr;
  sim::Simulator* sim_ = nullptr;
  core::Proxy* proxy_ = nullptr;
  std::function<void()> promoted_hook_;
  bool swallow_sheds_ = false;
};

class ChaosHarness {
 public:
  explicit ChaosHarness(const ChaosSchedule& schedule)
      : schedule_(schedule),
        configs_(topic_configs(chaos_scenario())),
        traces_(build_traces(schedule)),
        sim_(),
        broker_(sim_, std::max<std::size_t>(
                          total_arrivals() + total_storm_events(), 1)),
        link_(sim_),
        device_(sim_, DeviceId{1}),
        publisher_(broker_, "workload"),
        monitor_(expectations(schedule)),
        reliable_(sim_, link_, device_, channel_config(schedule),
                  channel_seed(schedule.seed)),
        guard_(sim_, reliable_, monitor_),
        replicated_(sim_, link_, device_, guard_, replication_config()),
        persistence_(sim_, backend_, storage::PersistenceConfig{}),
        link_seed_state_(schedule.seed ^ 0xC4A05FA17ull),
        storage_seed_state_(schedule.seed ^ 0xC4A05D15Cull) {
    for (const auto& [topic, config] : configs_) {
      replicated_.add_topic(topic, config);
    }
    arm_overload();

    persistence_.set_channel(&reliable_);
    persistence_.attach(replicated_.active_proxy());
    tee_.wire(&persistence_, &outcome_, &monitor_, &sim_,
              schedule_.bug == ChaosBug::kSwallowShedJournal);
    tee_.set_proxy(&replicated_.active_proxy());
    tee_.set_promoted_hook([this] {
      // on_promoted re-based the WAL with a fresh checkpoint, but that
      // snapshot can fail under an fsync-fault window; treat the lineage as
      // dirty until a checkpoint provably lands.
      lineage_clean_ = false;
      arm_overload();
    });
    replicated_.active_proxy().set_journal(&tee_);
    replicated_.set_recovery(&tee_);

    reliable_.set_delivery_observer(
        [this](const pubsub::NotificationPtr& event) {
          if (event->expired_at(sim_.now())) {
            monitor_.record("expired-delivery",
                            "expired event " +
                                std::to_string(event->id.value) +
                                " arrived at the device",
                            sim_.now());
          }
        });
    reliable_.set_failure_handler(
        [this](const pubsub::NotificationPtr& event) {
          core::Proxy& active = replicated_.active_proxy();
          if (core::TopicState* topic = active.topic(event->topic)) {
            topic->requeue_undelivered(event);
          }
        });
    // One observer, two jobs: invariant-check the transition and wake the
    // held queues the moment the breaker admits transfers again.
    reliable_.set_breaker_observer([this](core::BreakerState state) {
      monitor_.note_breaker(state, sim_.now());
      if (state != core::BreakerState::kOpen) wake_forwarding();
    });

    for (const auto& [topic, config] : configs_) {
      broker_.subscribe(topic, replicated_, config.options);
      publisher_.advertise(topic);
    }

    for (const TopicTrace& entry : traces_) {
      const std::string& topic = entry.topic;
      for (const workload::Arrival& arrival : entry.trace.arrivals) {
        sim_.schedule_at(arrival.time, [this, &topic, arrival] {
          ++outcome_.arrivals;
          publisher_.publish(topic, arrival.rank, arrival.lifetime);
        });
      }
      for (SimTime read_at : entry.trace.reads) {
        sim_.schedule_at(read_at, [this, &topic] { do_read(topic); });
      }
    }

    for (const ChaosFault& fault : schedule_.faults) schedule_fault(fault);
    if (!crash_targets_.empty()) {
      std::sort(crash_targets_.begin(), crash_targets_.end(),
                [](const ChaosFault& a, const ChaosFault& b) {
                  return a.param < b.param;
                });
      persistence_.set_record_hook(
          [this](std::uint64_t count) { on_record(count); });
    }

    // The monitor's heartbeat: periodic checkpoints across the whole run,
    // plus dense ones after each storm (sheds concentrate there, and the
    // live-vs-recovered comparison must look before the next snapshot
    // absorbs the divergence).
    const SimDuration step = std::max<SimDuration>(schedule_.horizon / 24, 1);
    for (SimTime at = step; at < schedule_.horizon; at += step) {
      sim_.schedule_at(at, [this] { checkpoint(); });
    }
    for (const ChaosFault& fault : schedule_.faults) {
      if (fault.kind != ChaosFaultKind::kStorm) continue;
      for (SimDuration offset : {2 * kMinute, 7 * kMinute, 20 * kMinute}) {
        const SimTime at = fault.at + offset;
        if (at < schedule_.horizon) {
          sim_.schedule_at(at, [this] { checkpoint(); });
        }
      }
    }
  }

  ~ChaosHarness() { persistence_.detach(); }

  ChaosOutcome run() {
    sim_.run_until(schedule_.horizon);
    checkpoint();
    finish();
    return outcome_;
  }

 private:
  static InvariantMonitor::Expectations expectations(
      const ChaosSchedule& schedule) {
    InvariantMonitor::Expectations expectations;
    expectations.topic_budget = schedule.topic_budget;
    expectations.proxy_budget = schedule.proxy_budget;
    expectations.admission_armed = schedule.admission_high > 0;
    return expectations;
  }

  static core::ReliableChannelConfig channel_config(
      const ChaosSchedule& schedule) {
    core::ReliableChannelConfig config;
    config.max_backlog = 64;
    config.breaker_failure_threshold = schedule.breaker_threshold;
    return config;
  }

  static core::ReplicationConfig replication_config() {
    core::ReplicationConfig config;
    config.replication_latency = 50 * kMillisecond;
    config.heartbeat_interval = 30 * kSecond;
    config.suspicion_timeout = 5 * kMinute;
    return config;
  }

  static std::uint64_t channel_seed(std::uint64_t seed) {
    std::uint64_t state = seed ^ 0x52E11AB1Eull;
    return splitmix64(state);
  }

  std::size_t total_arrivals() const {
    std::size_t total = 0;
    for (const TopicTrace& entry : traces_) {
      total += entry.trace.arrivals.size();
    }
    return total;
  }

  std::size_t total_storm_events() const {
    std::size_t total = 0;
    for (const ChaosFault& fault : schedule_.faults) {
      if (fault.kind == ChaosFaultKind::kStorm) total += fault.param;
    }
    return total;
  }

  void arm_overload() {
    core::OverloadConfig config;
    config.topic_queue_budget = schedule_.topic_budget;
    config.proxy_queue_budget = schedule_.proxy_budget;
    config.admission_high = schedule_.admission_high;
    config.admission_low = schedule_.admission_low;
    replicated_.active_proxy().set_overload(config);
    replicated_.standby_proxy().set_overload(config);
  }

  void wake_forwarding() {
    core::Proxy& active = replicated_.active_proxy();
    for (const std::string& name : active.topic_names()) {
      active.topic(name)->try_forwarding();
    }
  }

  std::size_t active_index() const {
    return replicated_.primary_is_active() ? 0 : 1;
  }

  // --- fault application -----------------------------------------------------

  void schedule_fault(const ChaosFault& fault) {
    if (fault.at >= schedule_.horizon) {
      ++outcome_.faults_skipped;
      return;
    }
    const SimTime end = fault.at + fault.duration;
    switch (fault.kind) {
      case ChaosFaultKind::kLinkFault:
        sim_.schedule_at(fault.at, [this, fault] {
          ++outcome_.faults_applied;
          link_windows_.push_back(fault.magnitude);
          refresh_link_faults();
        });
        if (end < schedule_.horizon) {
          sim_.schedule_at(end, [this, fault] {
            const auto it = std::find(link_windows_.begin(),
                                      link_windows_.end(), fault.magnitude);
            if (it != link_windows_.end()) link_windows_.erase(it);
            refresh_link_faults();
          });
        }
        break;
      case ChaosFaultKind::kOutage:
        sim_.schedule_at(fault.at, [this] {
          ++outcome_.faults_applied;
          if (outage_depth_++ == 0) link_.set_state(net::LinkState::kDown);
        });
        if (end < schedule_.horizon) {
          sim_.schedule_at(end, [this] {
            if (--outage_depth_ == 0) link_.set_state(net::LinkState::kUp);
          });
        }
        break;
      case ChaosFaultKind::kStorageFault:
        sim_.schedule_at(fault.at, [this, fault] {
          ++outcome_.faults_applied;
          storage_windows_.push_back(fault.magnitude);
          refresh_storage_faults();
        });
        if (end < schedule_.horizon) {
          sim_.schedule_at(end, [this, fault] {
            const auto it =
                std::find(storage_windows_.begin(), storage_windows_.end(),
                          fault.magnitude);
            if (it != storage_windows_.end()) storage_windows_.erase(it);
            refresh_storage_faults();
          });
        }
        break;
      case ChaosFaultKind::kCrashActive:
        sim_.schedule_at(fault.at,
                         [this, fault] { do_crash(fault, /*machine=*/false); });
        break;
      case ChaosFaultKind::kCrashAtRecord:
        crash_targets_.push_back(fault);
        break;
      case ChaosFaultKind::kStorm:
        schedule_storm(fault);
        break;
      case ChaosFaultKind::kDeviceStall:
        sim_.schedule_at(fault.at, [this] {
          ++outcome_.faults_applied;
          ++stall_depth_;
          refresh_link_faults();
        });
        if (end < schedule_.horizon) {
          sim_.schedule_at(end, [this] {
            --stall_depth_;
            refresh_link_faults();
          });
        }
        break;
    }
  }

  /// Recomputes the composite link fault model from every active window
  /// (strongest drop magnitude wins) plus any device stall. Each refresh
  /// installs a fresh model with a fresh substream seed — deterministic
  /// because window edges are schedule events, identical across runs.
  void refresh_link_faults() {
    net::FaultConfig config;
    double drop = 0.0;
    for (double magnitude : link_windows_) drop = std::max(drop, magnitude);
    if (drop > 0.0) {
      config.drop_probability = drop;
      config.burst_start_probability = drop / 8.0;
      config.mean_burst_length = 4.0;
      config.half_open_probability = drop / 4.0;
      config.mean_half_open = 2 * kMinute;
      config.uplink_drop_probability = drop / 2.0;
    }
    if (stall_depth_ > 0) config.uplink_drop_probability = 1.0;
    if (!config.enabled() && !link_fault_armed_) return;
    accumulate_link_stats();
    link_.set_fault_model(config, splitmix64(link_seed_state_));
    link_fault_armed_ = config.enabled();
  }

  void accumulate_link_stats() {
    const net::FaultModel* model = link_.fault_model();
    if (model == nullptr) return;
    const net::FaultStats& stats = model->stats();
    outcome_.link_faults.independent_drops += stats.independent_drops;
    outcome_.link_faults.burst_drops += stats.burst_drops;
    outcome_.link_faults.half_open_drops += stats.half_open_drops;
    outcome_.link_faults.uplink_drops += stats.uplink_drops;
    outcome_.link_faults.bursts += stats.bursts;
    outcome_.link_faults.half_open_windows += stats.half_open_windows;
  }

  void refresh_storage_faults() {
    accumulate_storage_stats();
    backend_.set_fault_model(nullptr);
    storage_fault_.reset();
    double magnitude = 0.0;
    for (double window : storage_windows_) {
      magnitude = std::max(magnitude, window);
    }
    if (magnitude <= 0.0) return;
    storage::StorageFaultConfig config;
    config.fsync_failure_probability = magnitude;
    config.torn_write_probability = std::min(1.0, magnitude * 2.0);
    config.bit_flip_probability = magnitude / 2.0;
    storage_fault_.emplace(config, splitmix64(storage_seed_state_));
    backend_.set_fault_model(&*storage_fault_);
  }

  void accumulate_storage_stats() {
    if (!storage_fault_) return;
    const storage::StorageFaultStats& stats = storage_fault_->stats();
    outcome_.storage_faults.fsync_failures += stats.fsync_failures;
    outcome_.storage_faults.torn_writes += stats.torn_writes;
    outcome_.storage_faults.bit_flips += stats.bit_flips;
  }

  void schedule_storm(const ChaosFault& fault) {
    sim_.schedule_at(fault.at, [this] { ++outcome_.faults_applied; });
    Rng rng(fault.seed);
    const std::vector<std::string> topics = chaos_topics();
    for (std::uint64_t k = 0; k < fault.param; ++k) {
      const SimTime at = fault.at + static_cast<SimDuration>(k) * kSecond;
      if (at >= schedule_.horizon) break;
      const std::string topic = topics[k % topics.size()];
      const double rank = 1.0 + 4.0 * rng.next_double();
      // Half the storm expires quickly, so shedding exercises both of its
      // orderings (rank first, soonest expiration second).
      const SimDuration lifetime =
          (k % 2 == 0) ? 2 * kHour + static_cast<SimDuration>(rng.next_below(
                                         static_cast<std::uint64_t>(2 * kHour)))
                       : kNever;
      sim_.schedule_at(at, [this, topic, rank, lifetime] {
        ++outcome_.arrivals;
        publisher_.publish(topic, rank, lifetime);
      });
    }
  }

  // --- crashes ---------------------------------------------------------------

  void on_record(std::uint64_t count) {
    if (crash_pending_ || next_crash_ >= crash_targets_.size()) return;
    const ChaosFault fault = crash_targets_[next_crash_];
    if (count < fault.param) return;
    ++next_crash_;
    crash_pending_ = true;
    // Never kill mid-callback: the "machine" dies between events.
    sim_.schedule_at(sim_.now(), [this, fault] {
      crash_pending_ = false;
      do_crash(fault, /*machine=*/true);
    });
  }

  void do_crash(const ChaosFault& fault, bool machine) {
    // Only a healthy pair absorbs a kill: the detector needs a live standby
    // to promote, and back-to-back kills would leave the hop permanently
    // headless instead of exploring recovery.
    if (replicated_.live_replicas() < 2 || !replicated_.active_is_alive()) {
      ++outcome_.faults_skipped;
      return;
    }
    ++outcome_.faults_applied;
    ++outcome_.crashes;
    const std::size_t dead = active_index();
    if (machine) {
      ++outcome_.machine_crashes;
      // The active's machine dies: the journal loses its writer, the disk
      // loses (or tears) the unsynced tail, and the proxy-side connection
      // state evaporates with the process.
      persistence_.detach();
      tee_.set_proxy(nullptr);
      lineage_clean_ = false;
      backend_.crash();
      if (storage_fault_) accumulate_crash_stats();
      const storage::RecoveryResult recovery =
          storage::ProxyPersistence::recover(backend_, configs_);
      if (recovery.repaired) ++outcome_.wal_repairs;
      if (!storage::waif_fsck(backend_).recoverable()) {
        monitor_.record("fsck", "backend unrecoverable after machine crash",
                        sim_.now());
      }
      persistence_.resume_from(recovery);
      reliable_.crash_proxy_side();
      // crash_proxy_side resets the breaker without notifying the observer;
      // re-sync the monitor so the next real transition checks correctly.
      monitor_.reset_breaker(core::BreakerState::kClosed);
    }
    replicated_.crash_active();
    const SimDuration delay = std::max(fault.duration, kMinRestartDelay);
    sim_.schedule_at(sim_.now() + delay, [this, dead] { do_restart(dead); });
  }

  /// Torn writes / bit flips are drawn inside backend_.crash(); fold the
  /// deltas into the outcome before the model is replaced or dropped.
  void accumulate_crash_stats() {
    // accumulate_storage_stats adds the *cumulative* stats of the current
    // model exactly once, when the model is retired; nothing extra needed
    // here beyond keeping the model alive until refresh/finish.
  }

  void do_restart(std::size_t index) {
    if (replicated_.replica_alive(index)) return;
    if (index == active_index()) {
      // Promotion has not happened (the pair was already degraded when the
      // detector looked): restarting the active index would destroy the
      // journaled proxy object out from under the persistence layer.
      ++outcome_.faults_skipped;
      return;
    }
    replicated_.restart_replica(index);
    ++outcome_.restarts;
    // A fresh proxy process needs the budgets re-armed.
    arm_overload();
  }

  // --- reads -----------------------------------------------------------------

  void do_read(const std::string& topic) {
    const auto read = replicated_.user_read(topic);
    ++outcome_.read_operations;
    outcome_.total_read += read.size();

    std::vector<std::uint64_t> ids;
    ids.reserve(read.size());
    for (const pubsub::NotificationPtr& event : read) {
      ids.push_back(event->id.value);
    }
    std::sort(ids.begin(), ids.end());
    digest_.i64(sim_.now());
    digest_.str(topic);
    digest_.u64(ids.size());
    std::unordered_set<std::uint64_t>& seen = ever_read_[topic];
    for (std::uint64_t id : ids) {
      digest_.u64(id);
      if (!seen.insert(id).second) ++outcome_.duplicate_user_reads;
    }
  }

  // --- the monitor's checkpoint ----------------------------------------------

  void checkpoint() {
    ++outcome_.checks;
    const SimTime now = sim_.now();
    monitor_.note_channel(reliable_.snapshot().next_seq, reliable_.stats(),
                          now);
    sample_queues(now);
    monitor_.note_admission_rejects(
        replicated_.active_proxy().stats().admission_rejects +
            replicated_.standby_proxy().stats().admission_rejects,
        now);
    check_image(now);
  }

  void sample_queues(SimTime now) {
    core::Proxy* proxies[2] = {&replicated_.active_proxy(),
                               &replicated_.standby_proxy()};
    for (core::Proxy* proxy : proxies) {
      std::size_t total = 0;
      for (const std::string& name : proxy->topic_names()) {
        const std::size_t queued = proxy->topic(name)->queued_total();
        monitor_.note_queue(name, queued, now);
        total += queued;
      }
      monitor_.note_proxy_total(total, now);
    }
  }

  /// Live-vs-recovered digest equality: replay the durable snapshot+WAL
  /// through the recovery mirror and byte-compare the rebuilt images with
  /// the journaled proxy's snapshots. An event shed (or expired, or moved)
  /// without its journal record survives in the replayed image and breaks
  /// the comparison. Skipped while the journal is detached or while a
  /// promotion's re-base checkpoint has not provably landed.
  void check_image(SimTime now) {
    core::Proxy* attached = tee_.proxy();
    if (attached == nullptr) {
      ++outcome_.image_skips;
      return;
    }
    // A failed WAL fsync leaves live and durable state *legitimately* apart:
    // the proxy aborts the forward to holding (bounded loss, never
    // duplication) while the written-but-unsynced record vanishes at a
    // crash. Equality is only promised on clean lineage, so any fsync
    // failure or forward abort since the last checkpoint dirties it.
    std::uint64_t aborts = 0;
    for (const std::string& name : attached->topic_names()) {
      aborts += attached->topic(name)->stats().forward_aborts;
    }
    std::uint64_t fsync_failures = outcome_.storage_faults.fsync_failures;
    if (storage_fault_) {
      fsync_failures += storage_fault_->stats().fsync_failures;
    }
    if (aborts != last_forward_aborts_ ||
        fsync_failures != last_fsync_failures_) {
      lineage_clean_ = false;
    }
    last_forward_aborts_ = aborts;
    last_fsync_failures_ = fsync_failures;

    if (!lineage_clean_) {
      // Heal with a fresh checkpoint; compare from the next checkpoint on.
      if (persistence_.snapshot_now()) lineage_clean_ = true;
      ++outcome_.image_skips;
      return;
    }
    // Recover from a crash-consistent view: a fault-free copy of the
    // backend, crashed so only durable bytes remain. The copy keeps the
    // check free of side effects — recover()'s tail repair truncates the
    // copy, never the live WAL, and the null fault model keeps the live
    // model's random stream untouched.
    storage::MemBackend copy = backend_;
    copy.set_fault_model(nullptr);
    copy.crash();
    const storage::RecoveryResult recovery =
        storage::ProxyPersistence::recover(copy, configs_);
    if (recovery.repaired || recovery.crc_failures > 0) {
      // Bit-flip damage in the durable image: repair is recovery's promise,
      // equality is not. Re-base on a fresh checkpoint.
      lineage_clean_ = false;
      ++outcome_.image_skips;
      return;
    }
    std::map<std::string, core::TopicSnapshot> replayed;
    for (const auto& [name, image] : recovery.state.topics) {
      replayed.emplace(name, image);
    }
    for (const auto& [name, config] : configs_) {
      core::TopicSnapshot recovered;  // empty when nothing was logged
      if (auto it = replayed.find(name); it != replayed.end()) {
        recovered = it->second;
      }
      const core::TopicSnapshot live = attached->topic(name)->snapshot();
      if (canonical_bytes(name, recovered) != canonical_bytes(name, live)) {
        monitor_.record("image-equality",
                        name + ": durable image diverged from live state (" +
                            image_shape(recovered) + " vs " +
                            image_shape(live) + ")",
                        now);
      }
    }
    ++outcome_.image_checks;
  }

  // --- end of run ------------------------------------------------------------

  void finish() {
    outcome_.read_digest = digest_.value();
    outcome_.records_logged = persistence_.record_count();
    const core::ReliableChannelStats& channel = reliable_.stats();
    outcome_.breaker_trips = channel.breaker_trips;
    outcome_.breaker_closes = channel.breaker_closes;
    const core::ReplicationStats& replication = replicated_.stats();
    outcome_.failovers = replication.failovers;
    core::Proxy* proxies[2] = {&replicated_.active_proxy(),
                               &replicated_.standby_proxy()};
    for (core::Proxy* proxy : proxies) {
      outcome_.admission_rejects += proxy->stats().admission_rejects;
      for (const std::string& name : proxy->topic_names()) {
        outcome_.shed += proxy->topic(name)->stats().shed;
      }
    }
    accumulate_link_stats();
    accumulate_storage_stats();

    // Post-recovery duplicate reads: with the write-ahead discipline on and
    // no failovers, machine losses or requeues, a repeated id in the user's
    // reads has no legitimate source.
    if (outcome_.duplicate_user_reads > 0 && outcome_.failovers == 0 &&
        outcome_.machine_crashes == 0 && channel.requeued == 0) {
      monitor_.record("duplicate-read",
                      std::to_string(outcome_.duplicate_user_reads) +
                          " duplicate user reads without failover/requeue",
                      sim_.now());
    }
    if (!storage::waif_fsck(backend_).recoverable()) {
      monitor_.record("fsck", "backend unrecoverable at end of run",
                      sim_.now());
    }
    outcome_.violations = monitor_.violations();
  }

  ChaosSchedule schedule_;
  std::map<std::string, core::TopicConfig> configs_;
  std::vector<TopicTrace> traces_;
  sim::Simulator sim_;
  pubsub::Broker broker_;
  net::Link link_;
  device::Device device_;
  pubsub::Publisher publisher_;
  storage::MemBackend backend_;
  ChaosOutcome outcome_;
  InvariantMonitor monitor_;
  core::ReliableDeviceChannel reliable_;
  GuardChannel guard_;
  core::ReplicatedProxy replicated_;
  storage::ProxyPersistence persistence_;
  ChaosTee tee_;

  // Fault-window state.
  std::vector<double> link_windows_;
  std::vector<double> storage_windows_;
  std::optional<storage::StorageFaultModel> storage_fault_;
  std::uint64_t link_seed_state_;
  std::uint64_t storage_seed_state_;
  std::size_t outage_depth_ = 0;
  std::size_t stall_depth_ = 0;
  bool link_fault_armed_ = false;

  // Crash state.
  std::vector<ChaosFault> crash_targets_;
  std::size_t next_crash_ = 0;
  bool crash_pending_ = false;

  // Image-equality lineage: true while every WAL byte since the newest
  // checkpoint came from the currently attached proxy and made it to disk.
  bool lineage_clean_ = true;
  std::uint64_t last_forward_aborts_ = 0;
  std::uint64_t last_fsync_failures_ = 0;

  std::map<std::string, std::unordered_set<std::uint64_t>> ever_read_;
  workload::CanonicalDigest digest_;
};

}  // namespace

std::vector<std::string> chaos_topics() {
  return {kAdaptiveTopic, kBufferTopic, kOnlineTopic};
}

workload::ScenarioConfig chaos_scenario() {
  workload::ScenarioConfig config;
  config.event_frequency = 24.0;
  config.user_frequency = 4.0;
  config.max = 8;
  config.threshold = 1.0;
  config.expiring_fraction = 0.5;
  config.mean_expiration = 6 * kHour;
  config.outage_fraction = 0.0;
  config.mean_outage = 0;
  config.horizon = 3 * kDay;
  return config;
}

std::uint64_t ChaosOutcome::digest() const {
  workload::CanonicalDigest digest;
  digest.u64(read_digest);
  digest.u64(arrivals);
  digest.u64(total_read);
  digest.u64(read_operations);
  digest.u64(duplicate_user_reads);
  digest.u64(faults_applied);
  digest.u64(faults_skipped);
  digest.u64(crashes);
  digest.u64(machine_crashes);
  digest.u64(restarts);
  digest.u64(failovers);
  digest.u64(wal_repairs);
  digest.u64(shed);
  digest.u64(journaled_sheds);
  digest.u64(admission_rejects);
  digest.u64(breaker_trips);
  digest.u64(breaker_closes);
  digest.u64(records_logged);
  digest.u64(checks);
  digest.u64(image_checks);
  digest.u64(image_skips);
  digest.u64(link_faults.downlink_drops());
  digest.u64(link_faults.uplink_drops);
  digest.u64(storage_faults.fsync_failures);
  digest.u64(storage_faults.torn_writes);
  digest.u64(storage_faults.bit_flips);
  digest.u64(violations.size());
  for (const ChaosViolation& violation : violations) {
    digest.str(violation.invariant);
    digest.str(violation.detail);
    digest.i64(violation.at);
  }
  return digest.value();
}

ChaosOutcome run_chaos(const ChaosSchedule& schedule) {
  validate_chaos(schedule);
  ChaosHarness harness(schedule);
  return harness.run();
}

ChaosShrinkResult shrink_chaos(const ChaosSchedule& schedule) {
  ChaosShrinkResult result;
  result.original_faults = schedule.faults.size();
  auto violates = [&result](const ChaosSchedule& candidate) {
    ++result.replays;
    return !run_chaos(candidate).ok();
  };
  if (!violates(schedule)) {
    throw std::invalid_argument(
        "shrink_chaos: the schedule does not violate any invariant");
  }

  // Phase 1: ddmin over the fault list — drop whole segments while the
  // violation still reproduces, refining the segment size down to 1.
  ChaosSchedule current = schedule;
  std::size_t granularity = 2;
  while (current.faults.size() >= 2) {
    const std::size_t chunk =
        (current.faults.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < current.faults.size();
         start += chunk) {
      ChaosSchedule candidate = current;
      const auto first =
          candidate.faults.begin() + static_cast<std::ptrdiff_t>(start);
      const auto last =
          candidate.faults.begin() +
          static_cast<std::ptrdiff_t>(
              std::min(start + chunk, candidate.faults.size()));
      candidate.faults.erase(first, last);
      if (violates(candidate)) {
        current = candidate;
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk <= 1) break;
      granularity = std::min(current.faults.size(), granularity * 2);
    }
  }

  // Phase 2: per-fault minimization — halve the window, the intensity and
  // the count while the violation survives.
  for (std::size_t i = 0; i < current.faults.size(); ++i) {
    while (current.faults[i].duration >= 2 * kMinute) {
      ChaosSchedule candidate = current;
      candidate.faults[i].duration /= 2;
      if (!violates(candidate)) break;
      current = candidate;
    }
    while (current.faults[i].magnitude >= 0.02) {
      ChaosSchedule candidate = current;
      candidate.faults[i].magnitude /= 2;
      if (!violates(candidate)) break;
      current = candidate;
    }
    while (current.faults[i].param >= 2) {
      ChaosSchedule candidate = current;
      candidate.faults[i].param /= 2;
      if (!violates(candidate)) break;
      current = candidate;
    }
  }

  result.minimized = current;
  ++result.replays;
  result.outcome = run_chaos(current);
  return result;
}

}  // namespace waif::experiments
