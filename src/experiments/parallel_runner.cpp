#include "experiments/parallel_runner.h"

#include <algorithm>
#include <ctime>

#include "common/check.h"
#include "common/moving_stats.h"

namespace waif::experiments {

double thread_cpu_seconds() {
#ifdef CLOCK_THREAD_CPUTIME_ID
  timespec now{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &now) == 0) {
    return static_cast<double>(now.tv_sec) +
           static_cast<double>(now.tv_nsec) * 1e-9;
  }
#endif
  // Fallback: wall clock — correct when workers are not oversubscribed.
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

/// Sorted copy of a read set, so digests do not depend on hash iteration
/// order (which varies with the container's history, not just its content).
std::vector<std::uint64_t> sorted_ids(const metrics::ReadSet& ids) {
  std::vector<std::uint64_t> sorted(ids.begin(), ids.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

ParallelRunner::ParallelRunner(std::size_t jobs) : pool_(jobs) {
  stats_.threads = pool_.thread_count();
}

void ParallelRunner::finish_stats(
    std::chrono::steady_clock::time_point started,
    const std::vector<double>& task_seconds) {
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  stats_.task_seconds = 0.0;
  for (double seconds : task_seconds) stats_.task_seconds += seconds;
  stats_.jobs = task_seconds.size();
  stats_.threads = pool_.thread_count();
}

std::vector<Comparison> ParallelRunner::compare(
    const std::vector<SweepPoint>& points) {
  return map(points.size(), [&points](std::size_t i) {
    const SweepPoint& point = points[i];
    return compare_policies(point.scenario, point.policy, point.seed,
                            point.device);
  });
}

std::vector<RunOutcome> ParallelRunner::run(
    const std::vector<SweepPoint>& points) {
  return map(points.size(), [&points](std::size_t i) {
    const SweepPoint& point = points[i];
    const workload::Trace trace =
        workload::generate_trace(point.scenario, point.seed);
    return run_trace(trace, point.scenario, point.policy, point.device);
  });
}

Aggregate ParallelRunner::evaluate(const workload::ScenarioConfig& config,
                                   const core::PolicyConfig& policy,
                                   std::uint64_t seeds,
                                   std::uint64_t first_seed,
                                   const DeviceOverrides& device_overrides) {
  EvalPoint point;
  point.scenario = config;
  point.policy = policy;
  point.device = device_overrides;
  point.seeds = seeds;
  point.first_seed = first_seed;
  return evaluate_many({point}).front();
}

std::vector<Aggregate> ParallelRunner::evaluate_many(
    const std::vector<EvalPoint>& points) {
  // Flatten every (point, seed) replay into one batch so the pool stays busy
  // across cells whose runs have very different costs.
  std::vector<SweepPoint> jobs;
  for (const EvalPoint& point : points) {
    WAIF_CHECK(point.seeds > 0);
    for (std::uint64_t s = 0; s < point.seeds; ++s) {
      SweepPoint job;
      job.scenario = point.scenario;
      job.policy = point.policy;
      job.device = point.device;
      job.seed = point.first_seed + s;
      jobs.push_back(job);
    }
  }

  const std::vector<Comparison> comparisons = compare(jobs);

  // Reduce each point in seed order — the same OnlineStats::add() sequence
  // as the sequential evaluate(), hence bit-identical aggregates.
  std::vector<Aggregate> aggregates;
  aggregates.reserve(points.size());
  std::size_t cursor = 0;
  for (const EvalPoint& point : points) {
    OnlineStats waste;
    OnlineStats loss;
    for (std::uint64_t s = 0; s < point.seeds; ++s, ++cursor) {
      waste.add(comparisons[cursor].waste_percent);
      loss.add(comparisons[cursor].loss_percent);
    }
    Aggregate aggregate;
    aggregate.waste_percent = waste.mean();
    aggregate.loss_percent = loss.mean();
    aggregate.waste_stddev = waste.stddev();
    aggregate.loss_stddev = loss.stddev();
    aggregate.seeds = point.seeds;
    aggregates.push_back(aggregate);
  }
  return aggregates;
}

Rng job_rng(std::uint64_t sweep_seed, std::uint64_t job_index) {
  // Two splitmix64 steps decorrelate (seed, index) pairs even when both
  // change by small deltas between neighbouring jobs.
  std::uint64_t state = sweep_seed;
  std::uint64_t mixed = splitmix64(state);
  state = mixed ^ (job_index * 0x9E3779B97F4A7C15ull + 0x8E9D5AB1AC53DA33ull);
  return Rng(splitmix64(state));
}

void canonicalize(workload::CanonicalDigest& digest,
                  const RunOutcome& outcome) {
  const std::vector<std::uint64_t> reads = sorted_ids(outcome.read_ids);
  digest.u64(reads.size());
  for (std::uint64_t id : reads) digest.u64(id);
  digest.u64(outcome.published.size());
  for (NotificationId id : outcome.published) digest.u64(id.value);
  digest.u64(outcome.forwarded_unique);
  digest.u64(outcome.read_operations);

  const core::TopicStats& topic = outcome.topic;
  digest.u64(topic.arrivals);
  digest.u64(topic.rank_update_arrivals);
  digest.u64(topic.below_threshold_drops);
  digest.u64(topic.forwarded);
  digest.u64(topic.prefetch_forwards);
  digest.u64(topic.outgoing_forwards);
  digest.u64(topic.read_difference_forwards);
  digest.u64(topic.rank_change_notices);
  digest.u64(topic.read_requests);
  digest.u64(topic.sync_requests);
  digest.u64(topic.expired_at_proxy);
  digest.u64(topic.expired_on_arrival);
  digest.u64(topic.held);
  digest.u64(topic.delayed);
  digest.u64(topic.delay_drops);
  digest.u64(topic.interrupts);
  digest.u64(topic.digest_deliveries);
  digest.u64(topic.requeued_undelivered);
  digest.u64(topic.duplicate_reads);
  digest.u64(topic.duplicate_syncs);

  const device::DeviceStats& device = outcome.device;
  digest.u64(device.received);
  digest.u64(device.duplicate_receives);
  digest.u64(device.rank_updates);
  digest.u64(device.retracted);
  digest.u64(device.read);
  digest.u64(device.expired_unread);
  digest.u64(device.evicted);
  digest.u64(device.rejected_dead_battery);
  digest.f64(device.energy_used);

  const net::LinkStats& link = outcome.link;
  digest.u64(link.downlink_messages);
  digest.u64(link.uplink_messages);
  digest.u64(link.downlink_bytes);
  digest.u64(link.uplink_bytes);
  digest.u64(link.transitions);

  const net::FaultStats& faults = outcome.faults;
  digest.u64(faults.independent_drops);
  digest.u64(faults.burst_drops);
  digest.u64(faults.half_open_drops);
  digest.u64(faults.uplink_drops);
  digest.u64(faults.bursts);
  digest.u64(faults.half_open_windows);

  const core::ReliableChannelStats& reliable = outcome.reliable;
  digest.u64(reliable.accepted);
  digest.u64(reliable.transmissions);
  digest.u64(reliable.retries);
  digest.u64(reliable.link_drops);
  digest.u64(reliable.outage_losses);
  digest.u64(reliable.delivered);
  digest.u64(reliable.duplicates_suppressed);
  digest.u64(reliable.acks_sent);
  digest.u64(reliable.ack_losses);
  digest.u64(reliable.acked);
  digest.u64(reliable.expired_abandoned);
  digest.u64(reliable.attempts_exhausted);
  digest.u64(reliable.requeued);
}

void canonicalize(workload::CanonicalDigest& digest,
                  const Comparison& comparison) {
  canonicalize(digest, comparison.baseline);
  canonicalize(digest, comparison.policy);
  digest.f64(comparison.waste_percent);
  digest.f64(comparison.loss_percent);
  digest.f64(comparison.raw_loss_percent);
}

std::uint64_t digest(const RunOutcome& outcome) {
  workload::CanonicalDigest canonical;
  canonicalize(canonical, outcome);
  return canonical.value();
}

std::uint64_t digest(const Comparison& comparison) {
  workload::CanonicalDigest canonical;
  canonicalize(canonical, comparison);
  return canonical.value();
}

std::uint64_t digest(const std::vector<Comparison>& comparisons) {
  workload::CanonicalDigest canonical;
  canonical.u64(comparisons.size());
  for (const Comparison& comparison : comparisons) {
    canonicalize(canonical, comparison);
  }
  return canonical.value();
}

std::uint64_t digest(const std::vector<Aggregate>& aggregates) {
  workload::CanonicalDigest canonical;
  canonical.u64(aggregates.size());
  for (const Aggregate& aggregate : aggregates) {
    canonical.f64(aggregate.waste_percent);
    canonical.f64(aggregate.loss_percent);
    canonical.f64(aggregate.waste_stddev);
    canonical.f64(aggregate.loss_stddev);
    canonical.u64(aggregate.seeds);
  }
  return canonical.value();
}

}  // namespace waif::experiments
