// Composed fault schedules: the unit the chaos orchestrator draws, runs,
// shrinks and replays.
//
// A ChaosSchedule is a complete, self-contained description of one chaos
// run: the workload seed, the horizon, the overload/breaker arming, an
// optional test-only bug hook, and a list of timed faults spanning every
// injector the repo has grown — link faults, forced outages, storage faults,
// replica kills, machine crashes at a WAL record index, publish storms and
// device stalls. Two runs of the same schedule are byte-identical, which is
// what makes delta-debugging (chaos_orchestrator.h) and `.chaos` replay
// files meaningful.
//
// `.chaos` format (line-oriented, '#' comments):
//   waif-chaos v1
//   seed <u64>
//   horizon <simtime>
//   topic-budget <n>
//   proxy-budget <n>
//   admission <high> <low>
//   breaker-threshold <n>
//   bug <none|swallow-shed>
//   fault <kind> <at> <duration> <magnitude> <param> <seed>
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"

namespace waif::experiments {

/// One fault injector the orchestrator knows how to apply. The shared
/// {at, duration, magnitude, param, seed} tuple keeps serialization and
/// per-fault minimization uniform; unused fields stay zero.
enum class ChaosFaultKind : std::uint8_t {
  /// Windowed net::FaultModel on the last hop: drop_probability = magnitude,
  /// plus proportional burst/half-open/uplink loss.
  kLinkFault = 0,
  /// Forced link-down window (composes with concurrent outages by depth).
  kOutage = 1,
  /// Windowed storage::StorageFaultModel on the WAL backend:
  /// fsync failures at `magnitude`, torn writes and bit flips in tow.
  kStorageFault = 2,
  /// Kill the active replica's process at `at` (state lost to peers only;
  /// durable image intact); the failure detector promotes the standby and
  /// the dead replica warm-restarts after the (clamped) duration.
  kCrashActive = 3,
  /// Machine crash of the active replica once the WAL holds `param`
  /// records: journal detached, backend crashed (torn tail / bit flips
  /// apply), WAL repaired and resumed, in-flight transfers lost.
  kCrashAtRecord = 4,
  /// Publish storm: `param` extra notifications from `at`, one per second
  /// round-robin across the topics, half of them short-lived.
  kStorm = 5,
  /// Device stall window: every ACK vanishes (uplink drop 1.0), the
  /// breaker's food.
  kDeviceStall = 6,
};

/// Stable lower-case token for serialization ("link-fault", "storm", ...).
std::string_view chaos_fault_kind_name(ChaosFaultKind kind);

/// Inverse of chaos_fault_kind_name; false when the token is unknown.
bool parse_chaos_fault_kind(std::string_view token, ChaosFaultKind* kind);

struct ChaosFault {
  ChaosFaultKind kind = ChaosFaultKind::kLinkFault;
  /// When the fault begins.
  SimTime at = 0;
  /// Window length for windowed kinds; restart delay for crash kinds.
  SimDuration duration = 0;
  /// Kind-specific intensity in [0, 1] (drop / fsync-failure probability).
  double magnitude = 0.0;
  /// Kind-specific count: storm size, or the WAL record index to crash at.
  std::uint64_t param = 0;
  /// Seed for the fault's own randomness (fault models, storm ranks).
  std::uint64_t seed = 1;
};

/// A test-only invariant bug the orchestrator can arm, so the shrinker has
/// a real violation to minimize (the acceptance path for this subsystem).
enum class ChaosBug : std::uint8_t {
  kNone = 0,
  /// Swallow on_shed journal records: the durable image keeps events the
  /// live proxy shed, breaking live-vs-recovered digest equality.
  kSwallowShedJournal = 1,
};

struct ChaosSchedule {
  /// Seeds the workload traces and the channel.
  std::uint64_t seed = 1;
  /// Run length; faults at or beyond it never fire.
  SimTime horizon = 3 * kDay;
  /// Overload arming for both replicas (0 = off, as in core/overload.h).
  std::size_t topic_budget = 0;
  std::size_t proxy_budget = 0;
  std::size_t admission_high = 0;
  std::size_t admission_low = 0;
  /// Circuit-breaker failure threshold (0 = breaker disabled).
  std::size_t breaker_threshold = 0;
  ChaosBug bug = ChaosBug::kNone;
  std::vector<ChaosFault> faults;
};

/// Writes `schedule` in the `.chaos` text format above (full double
/// precision; round-trips exactly).
void write_chaos(std::ostream& out, const ChaosSchedule& schedule);

/// Parses a `.chaos` file; throws std::invalid_argument with a line number
/// on malformed input (bad header, unknown kind, out-of-range values).
ChaosSchedule read_chaos(std::istream& in);

/// Rejects a schedule run_chaos could not honor (negative times, magnitudes
/// outside [0, 1], admission_low above admission_high, non-positive
/// horizon) by throwing std::invalid_argument. read_chaos calls this.
void validate_chaos(const ChaosSchedule& schedule);

/// Canonical digest over every field — equal digests certify byte-identical
/// schedules across platforms.
std::uint64_t digest_chaos(const ChaosSchedule& schedule);

/// Knobs for drawing a composed schedule.
struct ChaosDrawConfig {
  /// Faults to draw.
  std::size_t faults = 8;
  /// Upper bound on drawn magnitudes (each fault draws in (0, intensity]).
  double intensity = 0.35;
  SimTime horizon = 3 * kDay;
  /// Overload arming copied into the schedule.
  std::size_t topic_budget = 24;
  std::size_t proxy_budget = 56;
  std::size_t admission_high = 48;
  std::size_t admission_low = 24;
  std::size_t breaker_threshold = 3;
  /// Allow replica-kill / machine-crash kinds (off for crash-free sweeps).
  bool allow_crashes = true;
  /// Storm size ceiling (each storm draws in [ceiling/2, ceiling]).
  std::size_t storm_size = 96;
};

/// Draws a composed schedule from `seed`: fault kinds, start times, window
/// lengths, magnitudes and per-fault seeds all come from one splitmix64
/// stream, so equal (config, seed) pairs draw identical schedules.
ChaosSchedule draw_chaos(const ChaosDrawConfig& config, std::uint64_t seed);

}  // namespace waif::experiments
