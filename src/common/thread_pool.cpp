#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace waif {

namespace {
// True on threads owned by a pool's worker_loop. Lets submit() distinguish a
// drained task enqueueing follow-up work (legal during shutdown) from an
// external thread submitting into a pool that is being destroyed (a bug).
thread_local bool t_in_worker = false;
}  // namespace

std::size_t ThreadPool::hardware_threads() {
  const unsigned reported = std::thread::hardware_concurrency();
  return std::max(1u, reported);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(wake_mutex_);
    // Queued tasks still run: shutdown is a drain, not a discard. Workers
    // only exit once stopping_ is set AND every queue is empty.
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(Task task) {
  WAIF_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(wake_mutex_);
    // Worker threads may submit follow-up work even while the destructor is
    // draining; such tasks still run before shutdown completes because
    // pending_ stays nonzero. Submission from any other thread after the
    // destructor has started is a use-after-free in the making, so fail loud.
    WAIF_CHECK(!stopping_ || t_in_worker);
    const std::size_t target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
    // Push while holding wake_mutex_ (queue lock nested inside, matching the
    // order in the wait predicate below): a waiter evaluating its predicate
    // under wake_mutex_ either sees this task or blocks before we get here,
    // so the notify cannot fall into its predicate-to-block window.
    std::unique_lock<std::mutex> queue_lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, Task& task) {
  {
    Worker& own = *queues_[self];
    std::unique_lock<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  // Steal from the back of a sibling's deque, scanning from the next index
  // so contention spreads instead of piling on worker 0.
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    Worker& victim = *queues_[(self + offset) % queues_.size()];
    std::unique_lock<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_in_worker = true;
  for (;;) {
    Task task;
    if (!try_pop(self, task)) {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      if (pending_ == 0 && stopping_) return;
      // pending_ > 0 covers tasks either queued or mid-execution elsewhere;
      // re-check the queues after any submit or completion.
      wake_.wait(lock, [this, self, &task] {
        return (stopping_ && pending_ == 0) || try_pop(self, task);
      });
      if (task == nullptr) return;  // woke to stop, queues drained
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      --pending_;
      if (pending_ == 0) {
        idle_.notify_all();
        if (stopping_) wake_.notify_all();
      }
    }
  }
}

void ThreadPool::wait_idle() {
  {
    std::unique_lock<std::mutex> lock(wake_mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(error_mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace waif
