#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/check.h"

namespace waif {

namespace {

std::string format_default(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", value);
  return buf;
}

}  // namespace

FlagSet::FlagSet(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagSet::add(Flag flag) {
  WAIF_CHECK(find(flag.name) == nullptr);
  flags_.push_back(std::move(flag));
}

void FlagSet::add_double(const std::string& name, double* target,
                         const std::string& help) {
  WAIF_CHECK(target != nullptr);
  add(Flag{name, Kind::kDouble, target, help, format_default(*target)});
}

void FlagSet::add_int(const std::string& name, std::int64_t* target,
                      const std::string& help) {
  WAIF_CHECK(target != nullptr);
  add(Flag{name, Kind::kInt, target, help, std::to_string(*target)});
}

void FlagSet::add_int(const std::string& name, std::int64_t* target,
                      const std::string& help, std::int64_t min_value,
                      std::int64_t max_value) {
  WAIF_CHECK(target != nullptr);
  WAIF_CHECK(min_value <= max_value);
  Flag flag{name, Kind::kInt, target, help, std::to_string(*target)};
  flag.min_int = min_value;
  flag.max_int = max_value;
  flag.bounded = true;
  add(std::move(flag));
}

void FlagSet::add_bool(const std::string& name, bool* target,
                       const std::string& help) {
  WAIF_CHECK(target != nullptr);
  add(Flag{name, Kind::kBool, target, help, *target ? "true" : "false"});
}

void FlagSet::add_string(const std::string& name, std::string* target,
                         const std::string& help) {
  WAIF_CHECK(target != nullptr);
  add(Flag{name, Kind::kString, target, help, *target});
}

void FlagSet::add_duration(const std::string& name, SimDuration* target,
                           const std::string& help) {
  WAIF_CHECK(target != nullptr);
  add(Flag{name, Kind::kDuration, target, help, format_duration(*target)});
}

const FlagSet::Flag* FlagSet::find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

std::optional<SimDuration> FlagSet::parse_duration(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const std::string unit = text.substr(consumed);
  if (unit == "us") return static_cast<SimDuration>(value);
  if (unit == "ms") return static_cast<SimDuration>(value * static_cast<double>(kMillisecond));
  if (unit == "s" || unit.empty()) return seconds(value);
  if (unit == "min") return minutes(value);
  if (unit == "h") return hours(value);
  if (unit == "d") return days(value);
  return std::nullopt;
}

std::optional<std::int64_t> FlagSet::parse_int(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::size_t consumed = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(text, &consumed);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (consumed != text.size()) return std::nullopt;  // trailing garbage
  return value;
}

std::optional<double> FlagSet::parse_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (consumed != text.size()) return std::nullopt;  // trailing garbage
  return value;
}

bool FlagSet::assign(const Flag& flag, const std::string& value,
                     std::string* error) {
  switch (flag.kind) {
    case Kind::kDouble: {
      const auto parsed = parse_double(value);
      if (!parsed.has_value()) {
        *error = "expected a number";
        return false;
      }
      *static_cast<double*>(flag.target) = *parsed;
      return true;
    }
    case Kind::kInt: {
      const auto parsed = parse_int(value);
      if (!parsed.has_value()) {
        *error = "expected an integer";
        return false;
      }
      if (flag.bounded && (*parsed < flag.min_int || *parsed > flag.max_int)) {
        *error = "out of range [" + std::to_string(flag.min_int) + ", " +
                 std::to_string(flag.max_int) + "]";
        return false;
      }
      *static_cast<std::int64_t*>(flag.target) = *parsed;
      return true;
    }
    case Kind::kBool:
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        *error = "expected true/false/1/0";
        return false;
      }
      return true;
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      return true;
    case Kind::kDuration: {
      const auto parsed = parse_duration(value);
      if (!parsed.has_value()) {
        *error = "expected a duration like 30s, 4.2h, 250ms";
        return false;
      }
      *static_cast<SimDuration*>(flag.target) = *parsed;
      return true;
    }
  }
  *error = "unsupported flag kind";
  return false;
}

bool FlagSet::parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (token.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", token.c_str());
      return false;
    }
    token = token.substr(2);
    std::string value;
    bool have_value = false;
    if (const std::size_t eq = token.find('='); eq != std::string::npos) {
      value = token.substr(eq + 1);
      token = token.substr(0, eq);
      have_value = true;
    }
    const Flag* flag = find(token);
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag: --%s\n", token.c_str());
      return false;
    }
    if (!have_value) {
      if (flag->kind == Kind::kBool) {
        value = "true";  // bare --flag
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s needs a value\n", token.c_str());
        return false;
      }
    }
    std::string error;
    if (!assign(*flag, value, &error)) {
      std::fprintf(stderr, "bad value for --%s: '%s' (%s)\n", token.c_str(),
                   value.c_str(), error.c_str());
      return false;
    }
  }
  return true;
}

std::string FlagSet::help() const {
  std::string out;
  if (!description_.empty()) {
    out += description_;
    out += "\n\n";
  }
  out += "Flags:\n";
  for (const Flag& flag : flags_) {
    out += "  --" + flag.name;
    out += "  (default " + flag.default_text + ")\n      " + flag.help + "\n";
  }
  return out;
}

}  // namespace waif
