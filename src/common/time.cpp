#include "common/time.h"

#include <cstdio>

namespace waif {

std::string format_duration(SimDuration d) {
  char buf[48];
  const double abs = d < 0 ? -static_cast<double>(d) : static_cast<double>(d);
  const char* sign = d < 0 ? "-" : "";
  if (abs >= static_cast<double>(kDay)) {
    std::snprintf(buf, sizeof buf, "%s%.3gd", sign, abs / static_cast<double>(kDay));
  } else if (abs >= static_cast<double>(kHour)) {
    std::snprintf(buf, sizeof buf, "%s%.3gh", sign, abs / static_cast<double>(kHour));
  } else if (abs >= static_cast<double>(kMinute)) {
    std::snprintf(buf, sizeof buf, "%s%.3gmin", sign, abs / static_cast<double>(kMinute));
  } else if (abs >= static_cast<double>(kSecond)) {
    std::snprintf(buf, sizeof buf, "%s%.3gs", sign, abs / static_cast<double>(kSecond));
  } else if (abs >= static_cast<double>(kMillisecond)) {
    std::snprintf(buf, sizeof buf, "%s%.3gms", sign, abs / static_cast<double>(kMillisecond));
  } else {
    std::snprintf(buf, sizeof buf, "%s%.3gus", sign, abs);
  }
  return buf;
}

}  // namespace waif
