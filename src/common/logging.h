// Minimal leveled logging for library diagnostics.
//
// Logging is off by default (level kOff) so simulations stay quiet and fast;
// examples and debugging sessions raise the level. Messages carry the
// simulated timestamp when the caller provides one.
#pragma once

#include <cstdint>
#include <string>

#include "common/time.h"

namespace waif {

enum class LogLevel : std::uint8_t { kOff = 0, kError, kWarn, kInfo, kDebug };

/// Sets the global log level. Thread-safe: the level is an atomic and
/// concurrent log_message() calls are serialized, so parallel sweep workers
/// (experiments::ParallelRunner) can log without tearing lines. Each
/// simulator is still single-threaded; only the logging sink is shared.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True when a message at `level` would be emitted; use to skip formatting.
bool log_enabled(LogLevel level);

/// Writes one line to stderr: "[LEVEL t=<sim time>] component: message".
/// Pass `when < 0` for wall-clock-less messages outside a simulation.
void log_message(LogLevel level, SimTime when, const std::string& component,
                 const std::string& message);

/// Flushes the logging sink. Called by WAIF_CHECK before aborting so crash
/// tests capture the final record even through a buffered stderr.
void flush_logging();

}  // namespace waif
