// Simulated-time types shared by every module.
//
// All simulation code measures time in integer microseconds since the start of
// the run (`SimTime`), which keeps event ordering exact and runs reproducible
// across platforms. Durations share the representation; the helpers below
// construct them from human units.
#pragma once

#include <cstdint>
#include <string>

namespace waif {

/// A point in simulated time, in microseconds since the start of the run.
using SimTime = std::int64_t;

/// A span of simulated time, in microseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;
inline constexpr SimDuration kYear = 365 * kDay;

/// Sentinel meaning "no deadline / never".
inline constexpr SimTime kNever = INT64_MAX;

constexpr SimDuration microseconds(std::int64_t n) { return n; }
constexpr SimDuration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr SimDuration seconds(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kSecond));
}
constexpr SimDuration minutes(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kMinute));
}
constexpr SimDuration hours(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kHour));
}
constexpr SimDuration days(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kDay));
}

constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double to_hours(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kHour);
}
constexpr double to_days(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kDay);
}

/// Renders a duration as a compact human string, e.g. "4.2h", "17min", "54d".
std::string format_duration(SimDuration d);

}  // namespace waif
