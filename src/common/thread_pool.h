// A work-stealing thread pool for embarrassingly parallel sweeps.
//
// Each worker owns a deque of tasks; submit() distributes round-robin, a
// worker pops from the front of its own deque and, when empty, steals from
// the back of a sibling's. The pool is a plumbing layer only: it makes no
// determinism promises by itself — callers that need reproducible results
// (experiments::ParallelRunner) must keep each job independent and collect
// results by submission index, never by completion order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace waif {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers; 0 selects hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains every queued task, then joins the workers. Errors captured from
  /// plain submit() tasks are discarded (destructors must not throw).
  ~ThreadPool();

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues one task. If the task throws, the first such exception is
  /// captured and rethrown by the next wait_idle() call. A running task may
  /// submit follow-up work at any time — including while the destructor is
  /// draining, in which case the follow-up still runs before shutdown
  /// completes. Submitting from a non-worker thread once destruction has
  /// begun is a usage error and aborts.
  void submit(Task task);

  /// Enqueues a callable and returns a future for its result; an exception
  /// thrown by the callable propagates through the future instead of
  /// wait_idle().
  template <typename Fn>
  auto async(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until every submitted task has finished, then rethrows the first
  /// exception captured from a plain submit() task (if any).
  void wait_idle();

  /// The number of workers a default-constructed pool would spawn.
  static std::size_t hardware_threads();

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, Task& task);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::size_t pending_ = 0;      // submitted but not yet finished
  std::size_t next_queue_ = 0;   // round-robin submission cursor
  bool stopping_ = false;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

/// Runs fn(0) .. fn(count-1) on the pool and blocks until all complete.
/// The first exception thrown by any invocation is rethrown to the caller.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t count, Fn&& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.async([&fn, i] { fn(i); }));
  }
  std::exception_ptr error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace waif
