// Process-wide heap allocation counters, fed by an optional link-in hook.
//
// The counters live here in waif_common so any code can query them, but
// they only move when the replacement operator new/delete in
// common/alloc_hooks.cpp is linked into the binary (CMake target
// waif::alloc_hooks). Bench binaries and the allocation-regression tests
// link the hook; everything else pays nothing.
//
// Counting is exact, not sampled: every operator new/new[] bumps count and
// bytes, every delete bumps frees. AllocProbe measures the delta across a
// scope — the primitive the zero-allocation steady-state assertions and the
// BENCH_*.json "allocs" block are built on. Counters are atomic (relaxed)
// so multi-threaded sweeps count correctly; the probe itself is meant for
// single-threaded measurement windows.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace waif::alloc_stats {

/// True when the counting operator new/delete is linked into this binary.
bool hooks_installed();

/// Totals since process start (all zero without the hook).
std::uint64_t allocation_count();
std::uint64_t allocation_bytes();
std::uint64_t free_count();

/// Internal: the hook TU calls these. Not for general use.
void record_alloc(std::size_t bytes);
void record_free();
void mark_installed();

/// Measures allocations across a scope:
///
///     AllocProbe probe;
///     ... hot path ...
///     EXPECT_EQ(probe.allocations(), 0u);
class AllocProbe {
 public:
  AllocProbe()
      : start_count_(allocation_count()), start_bytes_(allocation_bytes()) {}

  std::uint64_t allocations() const {
    return allocation_count() - start_count_;
  }
  std::uint64_t bytes() const { return allocation_bytes() - start_bytes_; }

 private:
  std::uint64_t start_count_;
  std::uint64_t start_bytes_;
};

}  // namespace waif::alloc_stats
