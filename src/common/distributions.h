// Random-variate distributions over the deterministic Rng.
//
// All samplers are small value types: construct with parameters, call with an
// Rng. Implemented by hand (not std::*_distribution) so results are identical
// on every platform for a given seed.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/time.h"

namespace waif {

/// Uniform real on [lo, hi).
class UniformReal {
 public:
  UniformReal(double lo, double hi);
  double operator()(Rng& rng) const;

 private:
  double lo_;
  double hi_;
};

/// Uniform integer on [lo, hi] inclusive.
class UniformInt {
 public:
  UniformInt(std::int64_t lo, std::int64_t hi);
  std::int64_t operator()(Rng& rng) const;

 private:
  std::int64_t lo_;
  std::uint64_t span_;  // hi - lo + 1
};

/// Bernoulli trial with success probability p in [0, 1].
class Bernoulli {
 public:
  explicit Bernoulli(double p);
  bool operator()(Rng& rng) const;

 private:
  double p_;
};

/// Exponential with the given mean (= 1 / rate). Mean 0 yields constant 0.
class Exponential {
 public:
  explicit Exponential(double mean);
  double operator()(Rng& rng) const;
  double mean() const { return mean_; }

 private:
  double mean_;
};

/// Normal(mean, stddev) via the Marsaglia polar method (no cached spare, so
/// copies of the sampler are stateless and reproducible).
class Normal {
 public:
  Normal(double mean, double stddev);
  double operator()(Rng& rng) const;

 private:
  double mean_;
  double stddev_;
};

/// Log-normal parameterized by the *target* mean and the sigma of the
/// underlying normal. Used for heavy-tailed ("high variance") outage
/// durations: sigma around 1 gives a coefficient of variation of ~1.3.
class LogNormal {
 public:
  LogNormal(double mean, double sigma);
  double operator()(Rng& rng) const;

 private:
  double mu_;  // derived so that E[X] == mean
  double sigma_;
};

/// Poisson(mean). Inversion by sequential search for small means, the
/// Atkinson/normal-rejection hybrid for large ones.
class Poisson {
 public:
  explicit Poisson(double mean);
  std::int64_t operator()(Rng& rng) const;

 private:
  double mean_;
};

/// Shape of a duration distribution, selectable from configuration.
/// The paper's simulator supports exponential, uniform and normal expiration
/// lifetimes (Section 3); constant is added for deterministic tests.
enum class DurationShape : std::uint8_t {
  kConstant,
  kExponential,
  kUniform,  // uniform on [0, 2*mean]
  kNormal,   // Normal(mean, mean/4), truncated at 0
};

/// Parses "constant" | "exponential" | "uniform" | "normal".
DurationShape parse_duration_shape(const std::string& name);
std::string to_string(DurationShape shape);

/// A configurable non-negative duration sampler with a given mean.
class DurationDistribution {
 public:
  DurationDistribution(DurationShape shape, SimDuration mean);

  /// Samples a duration >= 0 (values are clamped at 0).
  SimDuration operator()(Rng& rng) const;

  DurationShape shape() const { return shape_; }
  SimDuration mean() const { return mean_; }

 private:
  DurationShape shape_;
  SimDuration mean_;
};

}  // namespace waif
