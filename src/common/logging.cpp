#include "common/logging.h"

#include <cstdio>

namespace waif {

namespace {

LogLevel g_level = LogLevel::kOff;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff: return "OFF";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(g_level) &&
         level != LogLevel::kOff;
}

void log_message(LogLevel level, SimTime when, const std::string& component,
                 const std::string& message) {
  if (!log_enabled(level)) return;
  if (when >= 0) {
    std::fprintf(stderr, "[%s t=%s] %s: %s\n", level_name(level),
                 format_duration(when).c_str(), component.c_str(),
                 message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
                 message.c_str());
  }
}

}  // namespace waif
