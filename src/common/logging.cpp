#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace waif {

namespace {

// Relaxed ordering suffices: the level is a filter, not a synchronization
// point — a worker observing a stale level for a few calls only changes
// which lines appear, never their integrity.
std::atomic<LogLevel> g_level{LogLevel::kOff};

// Serializes writes so concurrent sweep workers cannot interleave torn
// lines. One fprintf is usually atomic for short lines, but POSIX only
// guarantees that for pipes below PIPE_BUF; the mutex makes it a contract.
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff: return "OFF";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level()) &&
         level != LogLevel::kOff;
}

void log_message(LogLevel level, SimTime when, const std::string& component,
                 const std::string& message) {
  if (!log_enabled(level)) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (when >= 0) {
    std::fprintf(stderr, "[%s t=%s] %s: %s\n", level_name(level),
                 format_duration(when).c_str(), component.c_str(),
                 message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
                 message.c_str());
  }
}

void flush_logging() {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fflush(stderr);
}

}  // namespace waif
