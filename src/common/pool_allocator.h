// A free-list slab arena and a std-compatible allocator on top of it.
//
// The hot paths of the engine (event scheduling, the ranked queues) churn
// through millions of identically sized container nodes per simulated year.
// PoolArena carves those nodes out of geometrically growing slabs and
// recycles freed ones through a free list, so after warm-up a steady-state
// insert/erase (or schedule/pop) cycle touches the global heap zero times —
// the property tests/perf/alloc_regression_test.cpp pins.
//
// Design constraints, in order:
//   * single-threaded — every arena belongs to one simulator/proxy, which
//     is confined to one thread (the parallel sweep runner gives each job
//     its own);
//   * one size class — the first allocation fixes the node size; requests
//     of any other size (e.g. a hash table's bucket array) fall through to
//     the global heap, so the arena never has to split or coalesce;
//   * shared ownership — PoolAllocator holds the arena via shared_ptr, so
//     allocator copies inside containers and out-living handles keep the
//     slabs alive until the last node is gone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace waif {

class PoolArena {
 public:
  /// `slab_nodes` is the number of nodes carved per slab; slabs double in
  /// size up to a cap so small queues stay small and hot ones stop asking
  /// the heap quickly.
  explicit PoolArena(std::size_t slab_nodes = 64) : next_slab_nodes_(slab_nodes) {}

  PoolArena(const PoolArena&) = delete;
  PoolArena& operator=(const PoolArena&) = delete;

  void* allocate(std::size_t bytes) {
    bytes = padded(bytes);
    if (node_size_ == 0) node_size_ = bytes;
    if (bytes != node_size_) {
      ++foreign_allocs_;
      return ::operator new(bytes);
    }
    if (free_list_ == nullptr) grow();
    FreeNode* node = free_list_;
    free_list_ = node->next;
    ++pooled_allocs_;
    return node;
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    bytes = padded(bytes);
    if (bytes != node_size_) {
      ::operator delete(p);
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_list_;
    free_list_ = node;
  }

  /// Nodes served from the pool / requests that missed the size class.
  std::uint64_t pooled_allocs() const { return pooled_allocs_; }
  std::uint64_t foreign_allocs() const { return foreign_allocs_; }
  /// The size class, once fixed by the first allocation (0 before).
  std::size_t node_size() const { return node_size_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static std::size_t padded(std::size_t bytes) {
    const std::size_t unit = sizeof(FreeNode) > alignof(std::max_align_t)
                                 ? sizeof(FreeNode)
                                 : alignof(std::max_align_t);
    return ((bytes + unit - 1) / unit) * unit;
  }

  void grow() {
    const std::size_t nodes = next_slab_nodes_;
    if (next_slab_nodes_ < kMaxSlabNodes) next_slab_nodes_ *= 2;
    slabs_.emplace_back(new std::byte[nodes * node_size_]);
    std::byte* base = slabs_.back().get();
    // Thread the fresh slab onto the free list back to front so nodes hand
    // out in address order.
    for (std::size_t i = nodes; i > 0; --i) {
      auto* node = reinterpret_cast<FreeNode*>(base + (i - 1) * node_size_);
      node->next = free_list_;
      free_list_ = node;
    }
  }

  static constexpr std::size_t kMaxSlabNodes = 1 << 16;

  std::size_t node_size_ = 0;
  std::size_t next_slab_nodes_;
  FreeNode* free_list_ = nullptr;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::uint64_t pooled_allocs_ = 0;
  std::uint64_t foreign_allocs_ = 0;
};

/// std allocator over a shared PoolArena. Containers rebind it per node
/// type; every rebound copy shares the same arena.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(std::shared_ptr<PoolArena> arena)
      : arena_(std::move(arena)) {}

  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    arena_->deallocate(p, n * sizeof(T));
  }

  const std::shared_ptr<PoolArena>& arena() const { return arena_; }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  std::shared_ptr<PoolArena> arena_;
};

}  // namespace waif
