#include "common/distributions.h"

#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace waif {

UniformReal::UniformReal(double lo, double hi) : lo_(lo), hi_(hi) {
  WAIF_CHECK(lo <= hi);
}

double UniformReal::operator()(Rng& rng) const {
  return lo_ + (hi_ - lo_) * rng.next_double();
}

UniformInt::UniformInt(std::int64_t lo, std::int64_t hi) : lo_(lo) {
  WAIF_CHECK(lo <= hi);
  span_ = static_cast<std::uint64_t>(hi - lo) + 1;
}

std::int64_t UniformInt::operator()(Rng& rng) const {
  // span_ of 0 means the full 64-bit range (hi - lo wrapped); next_below
  // treats 0 as "no bound" only because we never construct that case for
  // simulation parameters.
  return lo_ + static_cast<std::int64_t>(rng.next_below(span_));
}

Bernoulli::Bernoulli(double p) : p_(p) {
  WAIF_CHECK(p >= 0.0 && p <= 1.0);
}

bool Bernoulli::operator()(Rng& rng) const { return rng.next_double() < p_; }

Exponential::Exponential(double mean) : mean_(mean) { WAIF_CHECK(mean >= 0.0); }

double Exponential::operator()(Rng& rng) const {
  if (mean_ == 0.0) return 0.0;
  // next_double() is in [0, 1); use 1 - u in (0, 1] so log() is finite.
  return -mean_ * std::log(1.0 - rng.next_double());
}

Normal::Normal(double mean, double stddev) : mean_(mean), stddev_(stddev) {
  WAIF_CHECK(stddev >= 0.0);
}

double Normal::operator()(Rng& rng) const {
  // Marsaglia polar method; the spare variate is discarded to keep the
  // sampler stateless (determinism is worth the extra uniform draws here).
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * rng.next_double() - 1.0;
    v = 2.0 * rng.next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  return mean_ + stddev_ * u * factor;
}

LogNormal::LogNormal(double mean, double sigma) : sigma_(sigma) {
  WAIF_CHECK(mean > 0.0);
  WAIF_CHECK(sigma >= 0.0);
  // E[exp(N(mu, sigma^2))] = exp(mu + sigma^2/2); solve for mu.
  mu_ = std::log(mean) - sigma * sigma / 2.0;
}

double LogNormal::operator()(Rng& rng) const {
  return std::exp(Normal(mu_, sigma_)(rng));
}

Poisson::Poisson(double mean) : mean_(mean) { WAIF_CHECK(mean >= 0.0); }

std::int64_t Poisson::operator()(Rng& rng) const {
  if (mean_ == 0.0) return 0;
  if (mean_ < 30.0) {
    // Inversion by sequential search (Devroye, p. 505).
    const double limit = std::exp(-mean_);
    std::int64_t k = 0;
    double product = rng.next_double();
    while (product > limit) {
      ++k;
      product *= rng.next_double();
    }
    return k;
  }
  // For large means, a normal approximation with continuity correction is
  // accurate to well under the noise floor of the simulations that use it.
  const double sample = Normal(mean_, std::sqrt(mean_))(rng);
  return sample <= 0.0 ? 0 : static_cast<std::int64_t>(std::llround(sample));
}

DurationShape parse_duration_shape(const std::string& name) {
  if (name == "constant") return DurationShape::kConstant;
  if (name == "exponential") return DurationShape::kExponential;
  if (name == "uniform") return DurationShape::kUniform;
  if (name == "normal") return DurationShape::kNormal;
  throw std::invalid_argument("unknown duration shape: " + name);
}

std::string to_string(DurationShape shape) {
  switch (shape) {
    case DurationShape::kConstant: return "constant";
    case DurationShape::kExponential: return "exponential";
    case DurationShape::kUniform: return "uniform";
    case DurationShape::kNormal: return "normal";
  }
  return "unknown";
}

DurationDistribution::DurationDistribution(DurationShape shape, SimDuration mean)
    : shape_(shape), mean_(mean) {
  WAIF_CHECK(mean >= 0);
}

SimDuration DurationDistribution::operator()(Rng& rng) const {
  const double mean = static_cast<double>(mean_);
  double value = 0.0;
  switch (shape_) {
    case DurationShape::kConstant:
      value = mean;
      break;
    case DurationShape::kExponential:
      value = Exponential(mean)(rng);
      break;
    case DurationShape::kUniform:
      value = UniformReal(0.0, 2.0 * mean)(rng);
      break;
    case DurationShape::kNormal:
      value = Normal(mean, mean / 4.0)(rng);
      break;
  }
  if (value < 0.0) value = 0.0;
  return static_cast<SimDuration>(value);
}

}  // namespace waif
