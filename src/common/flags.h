// A small command-line flag parser for the example and tool binaries.
//
// Supports --name=value and --name value forms, plus bare --bool-flag.
// Durations accept unit suffixes: us, ms, s, min, h, d (e.g. --expiry=4.2h).
// Unknown flags are errors; --help prints the registered table.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"

namespace waif {

class FlagSet {
 public:
  explicit FlagSet(std::string program_description = {});

  /// Registers one flag; `target` must outlive parse(). The current value of
  /// the target is shown as the default in help output.
  void add_double(const std::string& name, double* target,
                  const std::string& help);
  void add_int(const std::string& name, std::int64_t* target,
               const std::string& help);
  /// Integer flag with an inclusive accepted range; values outside it are
  /// rejected at parse time with a message naming the bounds.
  void add_int(const std::string& name, std::int64_t* target,
               const std::string& help, std::int64_t min_value,
               std::int64_t max_value);
  void add_bool(const std::string& name, bool* target, const std::string& help);
  void add_string(const std::string& name, std::string* target,
                  const std::string& help);
  /// Duration flags take values like "30s", "4.2h", "5d", "250ms".
  void add_duration(const std::string& name, SimDuration* target,
                    const std::string& help);

  /// Parses argv (excluding argv[0]). Returns false (after printing a
  /// message to stderr/stdout) when parsing failed or --help was requested;
  /// the caller should exit.
  bool parse(int argc, const char* const* argv);

  /// Renders the help table.
  std::string help() const;

  /// Parses a duration literal ("90s", "1.5h", ...); nullopt when malformed.
  static std::optional<SimDuration> parse_duration(const std::string& text);

  /// Strict numeric literal parsers: the whole string must be consumed, so
  /// trailing garbage ("8x", "3.5.2") is rejected rather than truncated.
  static std::optional<std::int64_t> parse_int(const std::string& text);
  static std::optional<double> parse_double(const std::string& text);

 private:
  enum class Kind : std::uint8_t { kDouble, kInt, kBool, kString, kDuration };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_text;
    std::int64_t min_int = 0;
    std::int64_t max_int = 0;
    bool bounded = false;
  };

  const Flag* find(const std::string& name) const;
  static bool assign(const Flag& flag, const std::string& value,
                     std::string* error);
  void add(Flag flag);

  std::string description_;
  std::vector<Flag> flags_;
};

}  // namespace waif
