// Strongly-typed identifiers used across the pub/sub system.
//
// Each id wraps a 64-bit integer; distinct wrapper types prevent a
// NotificationId from being passed where a DeviceId is expected. All ids are
// ordered and hashable so they can key standard containers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace waif {

namespace detail {

/// CRTP-free tagged 64-bit id. `Tag` only differentiates the types.
template <typename Tag>
struct TaggedId {
  std::uint64_t value = 0;

  constexpr TaggedId() = default;
  explicit constexpr TaggedId(std::uint64_t v) : value(v) {}

  friend constexpr auto operator<=>(TaggedId, TaggedId) = default;
};

}  // namespace detail

struct NotificationTag;
struct SubscriptionTag;
struct DeviceTag;
struct PublisherTag;
struct BrokerTag;

/// Identity of a published event notification; unique per publish call.
using NotificationId = detail::TaggedId<NotificationTag>;
/// Identity of one (subscriber, topic) subscription.
using SubscriptionId = detail::TaggedId<SubscriptionTag>;
/// Identity of a client device attached to a proxy.
using DeviceId = detail::TaggedId<DeviceTag>;
/// Identity of a publisher endpoint.
using PublisherId = detail::TaggedId<PublisherTag>;
/// Identity of a broker node in the overlay.
using BrokerId = detail::TaggedId<BrokerTag>;

}  // namespace waif

namespace std {

template <typename Tag>
struct hash<waif::detail::TaggedId<Tag>> {
  size_t operator()(waif::detail::TaggedId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};

}  // namespace std
