#include "common/moving_stats.h"

#include <cmath>

#include "common/check.h"

namespace waif {

void AverageSnapshot::add(double sample, std::size_t window) {
  samples.push_back(sample);
  sum += sample;
  if (samples.size() > window) {
    sum -= samples.front();
    samples.erase(samples.begin());
  }
}

void IntervalSnapshot::add(double timestamp, std::size_t window) {
  if (last.has_value()) diffs.add(timestamp - *last, window);
  last = timestamp;
}

MovingAverage::MovingAverage(std::size_t window) : window_(window) {
  WAIF_CHECK(window > 0);
}

void MovingAverage::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  if (samples_.size() > window_) {
    sum_ -= samples_.front();
    samples_.pop_front();
  }
}

double MovingAverage::value() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

void MovingAverage::reset() {
  samples_.clear();
  sum_ = 0.0;
}

AverageSnapshot MovingAverage::snapshot() const {
  return AverageSnapshot{{samples_.begin(), samples_.end()}, sum_};
}

void MovingAverage::restore(const AverageSnapshot& state) {
  samples_.assign(state.samples.begin(), state.samples.end());
  sum_ = state.sum;
  while (samples_.size() > window_) {
    sum_ -= samples_.front();
    samples_.pop_front();
  }
}

IntervalAverage::IntervalAverage(std::size_t window) : diffs_(window) {}

void IntervalAverage::add(double timestamp) {
  if (last_.has_value()) diffs_.add(timestamp - *last_);
  last_ = timestamp;
}

std::optional<double> IntervalAverage::value() const {
  if (diffs_.empty()) return std::nullopt;
  return diffs_.value();
}

void IntervalAverage::reset() {
  diffs_.reset();
  last_.reset();
}

IntervalSnapshot IntervalAverage::snapshot() const {
  return IntervalSnapshot{diffs_.snapshot(), last_};
}

void IntervalAverage::restore(const IntervalSnapshot& state) {
  diffs_.restore(state.diffs);
  last_ = state.last;
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  WAIF_CHECK(alpha > 0.0 && alpha <= 1.0);
}

void Ewma::add(double sample) {
  if (!seeded_) {
    value_ = sample;
    seeded_ = true;
  } else {
    value_ += alpha_ * (sample - value_);
  }
}

double Ewma::value() const { return value_; }

void Ewma::reset() {
  value_ = 0.0;
  seeded_ = false;
}

void OnlineStats::add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    if (sample < min_) min_ = sample;
    if (sample > max_) max_ = sample;
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double OnlineStats::mean() const { return mean_; }

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return min_; }

double OnlineStats::max() const { return max_; }

}  // namespace waif
