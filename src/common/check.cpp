#include "common/check.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace waif::detail {

void check_failed(const char* expr, const char* file, int line) {
  // Drain any buffered log lines first: when a crash-point test kills the
  // process here, the final records are what explain the failure.
  flush_logging();
  std::fprintf(stderr, "WAIF_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace waif::detail
