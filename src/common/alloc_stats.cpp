#include "common/alloc_stats.h"

namespace waif::alloc_stats {

namespace {

std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<bool> g_installed{false};

}  // namespace

bool hooks_installed() { return g_installed.load(std::memory_order_relaxed); }

std::uint64_t allocation_count() {
  return g_count.load(std::memory_order_relaxed);
}

std::uint64_t allocation_bytes() {
  return g_bytes.load(std::memory_order_relaxed);
}

std::uint64_t free_count() { return g_frees.load(std::memory_order_relaxed); }

void record_alloc(std::size_t bytes) {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void record_free() { g_frees.fetch_add(1, std::memory_order_relaxed); }

void mark_installed() { g_installed.store(true, std::memory_order_relaxed); }

}  // namespace waif::alloc_stats
