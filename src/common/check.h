// Internal invariant checking.
//
// WAIF_CHECK aborts with a message when a library invariant is violated; it is
// active in all build types because the simulations are cheap relative to the
// cost of silently corrupt statistics. Use for programmer errors, not for
// validating user-supplied configuration (that throws std::invalid_argument).
#pragma once

namespace waif::detail {

/// Flushes the logging sink, prints the failed expression, and aborts.
/// Out of line so the abort path can drain buffered diagnostics (crash-point
/// and death tests rely on seeing the final log record).
[[noreturn]] void check_failed(const char* expr, const char* file, int line);

}  // namespace waif::detail

#define WAIF_CHECK(expr)                                         \
  do {                                                           \
    if (!(expr)) ::waif::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (false)
