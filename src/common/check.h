// Internal invariant checking.
//
// WAIF_CHECK aborts with a message when a library invariant is violated; it is
// active in all build types because the simulations are cheap relative to the
// cost of silently corrupt statistics. Use for programmer errors, not for
// validating user-supplied configuration (that throws std::invalid_argument).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace waif::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "WAIF_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace waif::detail

#define WAIF_CHECK(expr)                                         \
  do {                                                           \
    if (!(expr)) ::waif::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (false)
