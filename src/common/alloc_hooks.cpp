// The counting allocator hook: replacement global operator new/delete that
// report every heap allocation to common/alloc_stats.h.
//
// This TU is deliberately NOT part of waif_common — it is its own static
// library (waif::alloc_hooks) so only binaries that opt in (the benches,
// the allocation-regression tests) get the replaced operators. The
// replacements forward to malloc/free, which keeps them compatible with the
// sanitizer interceptors (ASan still sees every allocation through its
// malloc hook).
#include <cstdlib>
#include <new>

#include "common/alloc_stats.h"

namespace {

struct InstallFlag {
  InstallFlag() { waif::alloc_stats::mark_installed(); }
};
InstallFlag g_install_flag;

void* counted_alloc(std::size_t size) {
  waif::alloc_stats::record_alloc(size);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  waif::alloc_stats::record_alloc(size);
  const auto alignment = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  waif::alloc_stats::record_alloc(size);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  waif::alloc_stats::record_alloc(size);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept {
  if (p != nullptr) waif::alloc_stats::record_free();
  std::free(p);
}
void operator delete[](void* p) noexcept {
  if (p != nullptr) waif::alloc_stats::record_free();
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete[](p); }
void operator delete(void* p, std::align_val_t) noexcept {
  if (p != nullptr) waif::alloc_stats::record_free();
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  if (p != nullptr) waif::alloc_stats::record_free();
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  if (p != nullptr) waif::alloc_stats::record_free();
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  if (p != nullptr) waif::alloc_stats::record_free();
  std::free(p);
}
