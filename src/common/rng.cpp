#include "common/rng.h"

namespace waif {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed; splitmix64 guarantees the state is not all-zero.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // Top 53 bits scaled into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless rejection method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Rng Rng::split() {
  std::uint64_t s = (*this)();
  return Rng(splitmix64(s));
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull,
      0xA9582618E03FC9AAull, 0x39ABDC4529B1661Cull};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ull << bit)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

}  // namespace waif
