// Streaming statistics used by the proxy's adaptive heuristics and by the
// experiment harness.
//
// The paper's pseudo-code (Figure 7) relies on `moving_average()` over the
// sizes of recent reads and `moving_average_difference()` over their
// timestamps; MovingAverage and IntervalAverage implement exactly those.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

namespace waif {

/// Arithmetic mean over the most recent `window` samples.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);

  void add(double sample);
  /// Mean of the retained samples; 0 when no sample has been added.
  double value() const;
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  void reset();

 private:
  std::size_t window_;
  std::deque<double> samples_;
  double sum_ = 0.0;
};

/// Mean difference between consecutive values of a monotone series — the
/// paper's moving_average_difference() over read timestamps, yielding the
/// average interval between user reads.
class IntervalAverage {
 public:
  /// `window` counts retained *differences* (so window+1 timestamps).
  explicit IntervalAverage(std::size_t window);

  void add(double timestamp);
  /// Mean interval; nullopt until two timestamps have been observed.
  std::optional<double> value() const;
  void reset();

 private:
  MovingAverage diffs_;
  std::optional<double> last_;
};

/// Exponentially-weighted moving average with smoothing factor alpha in (0,1].
class Ewma {
 public:
  explicit Ewma(double alpha);

  void add(double sample);
  double value() const;
  bool empty() const { return !seeded_; }
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Welford's online mean/variance, for aggregating results across seeds.
class OnlineStats {
 public:
  void add(double sample);
  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace waif
