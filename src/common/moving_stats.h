// Streaming statistics used by the proxy's adaptive heuristics and by the
// experiment harness.
//
// The paper's pseudo-code (Figure 7) relies on `moving_average()` over the
// sizes of recent reads and `moving_average_difference()` over their
// timestamps; MovingAverage and IntervalAverage implement exactly those.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

namespace waif {

/// Value snapshot of a MovingAverage, suitable for serialization. `sum` is
/// captured verbatim rather than recomputed: the rolling add/subtract in
/// MovingAverage::add leaves a rounding residue that re-summing the retained
/// samples would not reproduce, and recovery must restore the average
/// bit-for-bit for replayed runs to stay byte-identical.
struct AverageSnapshot {
  std::vector<double> samples;
  double sum = 0.0;

  /// Mirrors MovingAverage::add exactly (same FP operation order) so WAL
  /// replay can advance a snapshot without a live MovingAverage.
  void add(double sample, std::size_t window);
};

/// Value snapshot of an IntervalAverage.
struct IntervalSnapshot {
  AverageSnapshot diffs;
  std::optional<double> last;

  /// Mirrors IntervalAverage::add.
  void add(double timestamp, std::size_t window);
};

/// Arithmetic mean over the most recent `window` samples.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);

  void add(double sample);
  /// Mean of the retained samples; 0 when no sample has been added.
  double value() const;
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  void reset();

  std::size_t window() const { return window_; }
  AverageSnapshot snapshot() const;
  /// Replaces the retained samples with `state` (truncated to the window).
  void restore(const AverageSnapshot& state);

 private:
  std::size_t window_;
  std::deque<double> samples_;
  double sum_ = 0.0;
};

/// Mean difference between consecutive values of a monotone series — the
/// paper's moving_average_difference() over read timestamps, yielding the
/// average interval between user reads.
class IntervalAverage {
 public:
  /// `window` counts retained *differences* (so window+1 timestamps).
  explicit IntervalAverage(std::size_t window);

  void add(double timestamp);
  /// Mean interval; nullopt until two timestamps have been observed.
  std::optional<double> value() const;
  void reset();

  std::size_t window() const { return diffs_.window(); }
  IntervalSnapshot snapshot() const;
  void restore(const IntervalSnapshot& state);

 private:
  MovingAverage diffs_;
  std::optional<double> last_;
};

/// Exponentially-weighted moving average with smoothing factor alpha in (0,1].
class Ewma {
 public:
  explicit Ewma(double alpha);

  void add(double sample);
  double value() const;
  bool empty() const { return !seeded_; }
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Welford's online mean/variance, for aggregating results across seeds.
class OnlineStats {
 public:
  void add(double sample);
  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace waif
