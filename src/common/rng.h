// Deterministic pseudo-random number generation.
//
// The standard library's distribution objects are implementation-defined, so
// the same seed can produce different workloads on different platforms. To
// keep every experiment bit-reproducible we implement the generator
// (xoshiro256++) and all distributions (distributions.h) ourselves.
#pragma once

#include <array>
#include <cstdint>

namespace waif {

/// splitmix64 step; used to expand a single seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ 1.0 by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full state from one 64-bit value via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Returns an independent generator seeded from this one's stream.
  /// Use to give each workload component (arrivals, reads, outages, ...) its
  /// own stream so that changing one sweep parameter does not perturb the
  /// random choices of unrelated components.
  Rng split();

  /// Advances the state as if 2^128 calls were made; yields non-overlapping
  /// subsequences for parallel streams.
  void jump();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace waif
