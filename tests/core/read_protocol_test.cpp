// Protocol hardening at the device boundary: a malformed READ or sync from
// an untrusted device must surface as a protocol error — never an abort, an
// exception, or a state mutation. Includes a seeded randomized sweep over
// malformed inputs.
#include "core/read_protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "core/channel.h"
#include "core/proxy.h"
#include "core/topic_state.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/notification.h"
#include "sim/simulator.h"

namespace waif::core {
namespace {

using pubsub::Notification;
using pubsub::NotificationPtr;

ReadRequest well_formed(int n = 4) {
  ReadRequest request;
  request.n = n;
  request.queue_size = 2;
  request.client_events = {NotificationId{7}, NotificationId{9}};
  return request;
}

// ------------------------------------------------------------ validate_read

TEST(ValidateRead, AcceptsWellFormedRequests) {
  EXPECT_EQ(validate_read(well_formed()), ReadStatus::kOk);
  EXPECT_EQ(validate_read(ReadRequest{}), ReadStatus::kOk);  // empty is fine
}

TEST(ValidateRead, RejectsNegativeN) {
  ReadRequest request = well_formed();
  request.n = -1;
  request.client_events.clear();
  EXPECT_EQ(validate_read(request), ReadStatus::kBadN);
}

TEST(ValidateRead, RejectsAbsurdN) {
  ReadRequest request = well_formed();
  request.n = kMaxReadN + 1;
  EXPECT_EQ(validate_read(request), ReadStatus::kBadN);
  request.n = kMaxReadN;  // the boundary itself is legal
  EXPECT_EQ(validate_read(request), ReadStatus::kOk);
}

TEST(ValidateRead, RejectsOversizedQueueSize) {
  ReadRequest request = well_formed();
  request.queue_size = kMaxReadQueueSize + 1;
  EXPECT_EQ(validate_read(request), ReadStatus::kBadQueueSize);
}

TEST(ValidateRead, RejectsMoreClientEventsThanN) {
  ReadRequest request = well_formed(/*n=*/1);
  EXPECT_EQ(validate_read(request), ReadStatus::kTooManyClientEvents);
}

TEST(ValidateRead, RejectsDuplicateClientEvents) {
  ReadRequest request = well_formed();
  request.client_events = {NotificationId{7}, NotificationId{3},
                           NotificationId{7}};
  EXPECT_EQ(validate_read(request), ReadStatus::kDuplicateClientEvent);
}

// --------------------------------------------------- checked proxy entries

class ReadProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TopicConfig config;
    config.mode = DeliveryMode::kOnDemand;
    config.options.max = 8;
    config.options.threshold = 0.0;
    config.policy = PolicyConfig::on_demand();
    proxy.add_topic("t", config);
    for (std::uint64_t id = 1; id <= 3; ++id) {
      auto n = std::make_shared<Notification>();
      n->id = NotificationId{id};
      n->topic = "t";
      n->rank = static_cast<double>(id);
      n->published_at = sim.now();
      n->expires_at = kNever;
      proxy.on_notification(n);
    }
  }

  /// The observables a rejected request must leave untouched.
  struct StateProbe {
    std::size_t queued;
    std::uint64_t reads;
    std::uint64_t syncs;
    std::uint64_t forwarded;
    std::size_t device_queue;

    bool operator==(const StateProbe&) const = default;
  };

  StateProbe probe() {
    const TopicState* state = proxy.topic("t");
    return {state->queued_total(), state->stats().read_requests,
            state->stats().sync_requests, state->stats().forwarded,
            device.queue_size()};
  }

  sim::Simulator sim;
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
  SimDeviceChannel channel{link, device};
  Proxy proxy{sim, channel, "proxy"};
};

TEST_F(ReadProtocolTest, MalformedReadIsRejectedWithoutStateChange) {
  const StateProbe before = probe();
  std::vector<NotificationPtr> difference;

  ReadRequest negative;
  negative.n = -5;
  EXPECT_EQ(proxy.try_read("t", negative, &difference),
            ReadStatus::kBadN);
  ReadRequest oversized;
  oversized.n = 1;
  oversized.queue_size = kMaxReadQueueSize + 1;
  EXPECT_EQ(proxy.try_read("t", oversized, &difference),
            ReadStatus::kBadQueueSize);
  ReadRequest duplicated = well_formed();
  duplicated.client_events = {NotificationId{1}, NotificationId{1}};
  EXPECT_EQ(proxy.try_read("t", duplicated, &difference),
            ReadStatus::kDuplicateClientEvent);

  EXPECT_TRUE(difference.empty());
  EXPECT_EQ(probe(), before);
  EXPECT_EQ(proxy.stats().rejected_reads, 3u);
  EXPECT_EQ(proxy.topic("t")->stats().protocol_errors, 3u);
  EXPECT_EQ(proxy.stats().reads, 0u);
}

TEST_F(ReadProtocolTest, UnknownTopicIsAnErrorNotAnException) {
  EXPECT_EQ(proxy.try_read("nowhere", well_formed()),
            ReadStatus::kUnknownTopic);
  EXPECT_EQ(proxy.try_sync("nowhere", 0), ReadStatus::kUnknownTopic);
  EXPECT_EQ(proxy.stats().rejected_reads, 1u);
  EXPECT_EQ(proxy.stats().rejected_syncs, 1u);
}

TEST_F(ReadProtocolTest, MalformedSyncIsRejectedWithoutStateChange) {
  const StateProbe before = probe();
  EXPECT_EQ(proxy.try_sync("t", kMaxReadQueueSize + 1),
            ReadStatus::kBadQueueSize);
  EXPECT_EQ(proxy.try_sync("t", 0, {ReadRecord{kHour, -3}}),
            ReadStatus::kBadN);
  EXPECT_EQ(proxy.try_sync("t", 0, {ReadRecord{kHour, kMaxReadN + 1}}),
            ReadStatus::kBadN);
  EXPECT_EQ(probe(), before);
  EXPECT_EQ(proxy.stats().rejected_syncs, 3u);
  // A rejected sync must not refresh the queue-size view either.
  EXPECT_EQ(proxy.topic("t")->queue_size_view(), 0u);
}

TEST_F(ReadProtocolTest, ValidRequestsStillWorkThroughTheCheckedEntry) {
  std::vector<NotificationPtr> difference;
  ReadRequest request;
  request.n = 2;
  EXPECT_EQ(proxy.try_read("t", request, &difference), ReadStatus::kOk);
  EXPECT_EQ(difference.size(), 2u);
  EXPECT_EQ(proxy.stats().reads, 1u);
  EXPECT_EQ(proxy.try_sync("t", device.queue_size()), ReadStatus::kOk);
}

TEST_F(ReadProtocolTest, RandomizedMalformedRequestsNeverAbort) {
  // A seeded sweep of malformed requests: every one must come back as a
  // protocol error with the proxy state untouched — no WAIF_CHECK abort, no
  // exception, no accidental forward.
  Rng rng(0xBADC0DEull);
  const StateProbe before = probe();
  std::uint64_t rejects = 0;

  for (int i = 0; i < 1000; ++i) {
    const std::string topic = rng.next_below(8) == 0 ? "nowhere" : "t";
    if (rng.next_below(2) == 0) {
      ReadRequest request;
      switch (rng.next_below(4)) {
        case 0:  // negative or absurd n
          request.n = rng.next_below(2) == 0
                          ? -1 - static_cast<int>(rng.next_below(1 << 20))
                          : kMaxReadN + 1 +
                                static_cast<int>(rng.next_below(1 << 10));
          break;
        case 1:  // oversized queue_size
          request.n = static_cast<int>(rng.next_below(8));
          request.queue_size = kMaxReadQueueSize + 1 + rng.next_below(1 << 20);
          break;
        case 2: {  // duplicate ids in client_events
          request.n = 4;
          const std::uint64_t id = rng.next_below(100);
          request.client_events = {NotificationId{id}, NotificationId{id}};
          break;
        }
        default:  // more client_events than n admits
          request.n = 1;
          request.client_events = {NotificationId{rng.next_below(100)},
                                   NotificationId{rng.next_below(100) + 100}};
          break;
      }
      EXPECT_NE(proxy.try_read(topic, request), ReadStatus::kOk);
    } else {
      std::size_t queue_size = 0;
      std::vector<ReadRecord> offline;
      if (rng.next_below(2) == 0) {
        queue_size = kMaxReadQueueSize + 1 + rng.next_below(1 << 16);
      } else {
        offline.push_back(
            ReadRecord{static_cast<SimTime>(rng.next_below(
                           static_cast<std::uint64_t>(kDay))),
                       -1 - static_cast<int>(rng.next_below(1 << 16))});
      }
      EXPECT_NE(proxy.try_sync(topic, queue_size, offline),
                ReadStatus::kOk);
    }
    ++rejects;
  }

  EXPECT_EQ(probe(), before);
  EXPECT_EQ(proxy.stats().reads, 0u);
  EXPECT_EQ(proxy.stats().rejected_reads + proxy.stats().rejected_syncs,
            rejects);
}

}  // namespace
}  // namespace waif::core
