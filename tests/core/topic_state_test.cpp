#include "core/topic_state.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/time.h"
#include "core/channel.h"
#include "device/device.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace waif::core {
namespace {

using pubsub::Notification;
using pubsub::NotificationPtr;

class TopicStateTest : public ::testing::Test {
 protected:
  NotificationPtr make(std::uint64_t id, double rank,
                       SimDuration lifetime = kNever) {
    auto n = std::make_shared<Notification>();
    n->id = NotificationId{id};
    n->topic = "t";
    n->rank = rank;
    n->published_at = sim.now();
    n->expires_at = lifetime == kNever ? kNever : sim.now() + lifetime;
    return n;
  }

  std::unique_ptr<TopicState> make_state(TopicConfig config) {
    return std::make_unique<TopicState>(sim, channel, "t", config);
  }

  static TopicConfig config_with(PolicyConfig policy, int max = 8,
                                 double threshold = 0.0) {
    TopicConfig config;
    config.mode = DeliveryMode::kOnDemand;
    config.options.max = max;
    config.options.threshold = threshold;
    config.policy = policy;
    return config;
  }

  /// A read request reflecting the device's actual contents.
  ReadRequest request_from_device(int n, double threshold = 0.0) {
    ReadRequest request;
    request.n = n;
    request.queue_size = device.queue_size("t");
    request.client_events = device.top_ids("t", n, threshold);
    return request;
  }

  sim::Simulator sim;
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
  SimDeviceChannel channel{link, device};
};

// ------------------------------------------------------------ online policy

TEST_F(TopicStateTest, OnlineForwardsImmediately) {
  auto state = make_state(config_with(PolicyConfig::online()));
  state->handle_notification(make(1, 3.0));
  EXPECT_TRUE(device.contains(NotificationId{1}));
  EXPECT_EQ(state->stats().forwarded, 1u);
  EXPECT_EQ(state->outgoing_size(), 0u);
}

TEST_F(TopicStateTest, OnlineQueuesDuringOutageAndFlushesOnLinkUp) {
  auto state = make_state(config_with(PolicyConfig::online()));
  link.set_state(net::LinkState::kDown);
  state->handle_notification(make(1, 3.0));
  state->handle_notification(make(2, 1.0));
  EXPECT_EQ(device.queue_size(), 0u);
  EXPECT_EQ(state->outgoing_size(), 2u);

  link.set_state(net::LinkState::kUp);
  state->handle_network(net::LinkState::kUp);
  EXPECT_EQ(device.queue_size(), 2u);
  EXPECT_EQ(state->outgoing_size(), 0u);
}

TEST_F(TopicStateTest, OnLineModeBypassesPolicy) {
  // An on-line *topic* forwards ASAP even under an on-demand policy.
  TopicConfig config = config_with(PolicyConfig::on_demand());
  config.mode = DeliveryMode::kOnLine;
  auto state = make_state(config);
  state->handle_notification(make(1, 3.0));
  EXPECT_TRUE(device.contains(NotificationId{1}));
}

// --------------------------------------------------------- on-demand policy

TEST_F(TopicStateTest, OnDemandNeverForwardsOnArrival) {
  auto state = make_state(config_with(PolicyConfig::on_demand()));
  for (std::uint64_t i = 1; i <= 5; ++i) {
    state->handle_notification(make(i, static_cast<double>(i) / 2.0));
  }
  EXPECT_EQ(device.queue_size(), 0u);
  EXPECT_EQ(state->prefetch_size(), 5u);
  EXPECT_EQ(state->stats().forwarded, 0u);
}

TEST_F(TopicStateTest, ReadForwardsTheDifference) {
  auto state = make_state(config_with(PolicyConfig::on_demand(), /*max=*/2));
  state->handle_notification(make(1, 1.0));
  state->handle_notification(make(2, 5.0));
  state->handle_notification(make(3, 3.0));

  auto difference = state->handle_read(request_from_device(2));
  ASSERT_EQ(difference.size(), 2u);
  EXPECT_EQ(difference[0]->id.value, 2u);
  EXPECT_EQ(difference[1]->id.value, 3u);
  EXPECT_TRUE(device.contains(NotificationId{2}));
  EXPECT_TRUE(device.contains(NotificationId{3}));
  EXPECT_FALSE(device.contains(NotificationId{1}));
}

TEST_F(TopicStateTest, ReadSkipsWhatTheClientAlreadyHas) {
  auto state = make_state(config_with(PolicyConfig::on_demand(), /*max=*/2));
  // The device already holds the two best events.
  auto a = make(1, 5.0);
  auto b = make(2, 4.0);
  state->handle_notification(a);
  state->handle_notification(b);
  state->handle_read(request_from_device(2));
  ASSERT_EQ(device.queue_size(), 2u);
  const auto downlink_before = link.stats().downlink_messages;

  // Proxy now has only worse events; a read must transfer nothing: "with
  // effective prefetching this set may be better than anything available in
  // queues on the server, making any transfer unnecessary".
  state->handle_notification(make(3, 1.0));
  auto difference = state->handle_read(request_from_device(2));
  EXPECT_TRUE(difference.empty());
  EXPECT_EQ(link.stats().downlink_messages, downlink_before);
}

TEST_F(TopicStateTest, ReadForwardsOnlyBetterEvents) {
  auto state = make_state(config_with(PolicyConfig::on_demand(), /*max=*/2));
  auto mediocre = make(1, 3.0);
  state->handle_notification(mediocre);
  state->handle_read(request_from_device(2));
  ASSERT_TRUE(device.contains(NotificationId{1}));

  // One better, one worse event at the proxy; N=2 -> only the better one
  // displaces nothing the client has (client keeps its copy, gains #2).
  state->handle_notification(make(2, 4.0));
  state->handle_notification(make(3, 1.0));
  auto difference = state->handle_read(request_from_device(2));
  ASSERT_EQ(difference.size(), 1u);
  EXPECT_EQ(difference[0]->id.value, 2u);
}

TEST_F(TopicStateTest, ReadDuringOutageTransfersNothing) {
  auto state = make_state(config_with(PolicyConfig::on_demand()));
  state->handle_notification(make(1, 3.0));
  link.set_state(net::LinkState::kDown);
  // (The session layer would not even send the READ; if one arrives, the
  // difference is queued in outgoing but cannot be transferred.)
  auto difference = state->handle_read(request_from_device(8));
  EXPECT_EQ(device.queue_size(), 0u);
  EXPECT_EQ(state->outgoing_size(), difference.size());
}

// --------------------------------------------------------------- threshold

TEST_F(TopicStateTest, FreshSubThresholdArrivalsAreDropped) {
  auto state =
      make_state(config_with(PolicyConfig::online(), 8, /*threshold=*/4.5));
  state->handle_notification(make(1, 4.4));
  EXPECT_EQ(device.queue_size(), 0u);
  EXPECT_EQ(state->stats().below_threshold_drops, 1u);
  state->handle_notification(make(2, 4.5));  // at threshold: accepted
  EXPECT_TRUE(device.contains(NotificationId{2}));
}

// ------------------------------------------------------------- rank changes

TEST_F(TopicStateTest, RankDropBeforeForwardingSilentlyRemoves) {
  auto state = make_state(
      config_with(PolicyConfig::buffer(0), 8, /*threshold=*/2.0));
  state->handle_notification(make(1, 3.0));  // into prefetch, limit 0: no send
  EXPECT_EQ(state->prefetch_size(), 1u);

  state->handle_notification(make(1, 1.0));  // dropped below threshold
  EXPECT_EQ(state->prefetch_size(), 0u);
  EXPECT_EQ(state->stats().forwarded, 0u);
  EXPECT_EQ(device.queue_size(), 0u);
}

TEST_F(TopicStateTest, RankDropAfterForwardingSendsNotice) {
  auto state = make_state(
      config_with(PolicyConfig::buffer(10), 8, /*threshold=*/2.0));
  state->handle_notification(make(1, 3.0));
  ASSERT_TRUE(device.contains(NotificationId{1}));

  state->handle_notification(make(1, 0.5));  // drop below threshold
  EXPECT_EQ(state->stats().rank_change_notices, 1u);
  // The device's copy now carries the dropped rank, so a thresholded read
  // will not show it.
  EXPECT_DOUBLE_EQ(*device.rank_of(NotificationId{1}), 0.5);
  EXPECT_TRUE(device.read(8, /*threshold=*/2.0).empty());
}

TEST_F(TopicStateTest, RankRaiseReordersPrefetchQueue) {
  auto state = make_state(config_with(PolicyConfig::buffer(0)));
  state->handle_notification(make(1, 2.0));
  state->handle_notification(make(2, 3.0));
  state->handle_notification(make(1, 4.0));  // raise
  EXPECT_EQ(state->prefetch_size(), 2u);
  auto difference = state->handle_read(request_from_device(1));
  ASSERT_EQ(difference.size(), 1u);
  EXPECT_EQ(difference[0]->id.value, 1u);
  EXPECT_DOUBLE_EQ(difference[0]->rank, 4.0);
}

TEST_F(TopicStateTest, RankUpdateOnForwardedEventRefreshesDevice) {
  auto state = make_state(config_with(PolicyConfig::buffer(10)));
  state->handle_notification(make(1, 2.0));
  ASSERT_TRUE(device.contains(NotificationId{1}));
  state->handle_notification(make(1, 4.5));  // raise after forwarding
  EXPECT_DOUBLE_EQ(*device.rank_of(NotificationId{1}), 4.5);
  EXPECT_EQ(state->stats().rank_change_notices, 1u);
}

// -------------------------------------------------------------- expirations

TEST_F(TopicStateTest, ExpiredEventLeavesAllQueues) {
  auto state = make_state(config_with(PolicyConfig::buffer(0)));
  state->handle_notification(make(1, 3.0, seconds(10.0)));
  EXPECT_EQ(state->prefetch_size(), 1u);
  sim.run_until(seconds(11.0));
  EXPECT_EQ(state->prefetch_size(), 0u);
  EXPECT_EQ(state->stats().expired_at_proxy, 1u);
  // A later read finds nothing.
  auto difference = state->handle_read(request_from_device(8));
  EXPECT_TRUE(difference.empty());
}

TEST_F(TopicStateTest, ExpiredOutgoingDroppedAtForwardTime) {
  auto state = make_state(config_with(PolicyConfig::online()));
  link.set_state(net::LinkState::kDown);
  // Online policy events skip the expiration timer; the lazy check at
  // forward time must drop them.
  state->handle_notification(make(1, 3.0, seconds(5.0)));
  sim.run_until(seconds(10.0));
  link.set_state(net::LinkState::kUp);
  state->handle_network(net::LinkState::kUp);
  EXPECT_EQ(device.queue_size(), 0u);
  EXPECT_EQ(state->stats().expired_at_proxy, 1u);
  EXPECT_EQ(state->stats().forwarded, 0u);
}

TEST_F(TopicStateTest, HoldingQueueKeepsShortLivedEventsFromPrefetch) {
  auto state = make_state(config_with(
      PolicyConfig::buffer(10, /*expiration_threshold=*/hours(1.0))));
  state->handle_notification(make(1, 3.0, minutes(10.0)));  // too short
  state->handle_notification(make(2, 2.0, hours(5.0)));     // long enough
  state->handle_notification(make(3, 1.0));                 // never expires
  EXPECT_EQ(state->holding_size(), 1u);
  EXPECT_EQ(state->stats().held, 1u);
  // Only the prefetchable ones were transferred.
  EXPECT_FALSE(device.contains(NotificationId{1}));
  EXPECT_TRUE(device.contains(NotificationId{2}));
  EXPECT_TRUE(device.contains(NotificationId{3}));
}

TEST_F(TopicStateTest, HeldEventsStillServeReads) {
  auto state = make_state(config_with(
      PolicyConfig::buffer(0, /*expiration_threshold=*/hours(1.0))));
  state->handle_notification(make(1, 3.0, minutes(10.0)));
  EXPECT_EQ(state->holding_size(), 1u);
  auto difference = state->handle_read(request_from_device(8));
  ASSERT_EQ(difference.size(), 1u);
  EXPECT_TRUE(device.contains(NotificationId{1}));
}

// -------------------------------------------------------------- delay stage

TEST_F(TopicStateTest, DelayStagePostponesPrefetch) {
  PolicyConfig policy = PolicyConfig::buffer(10);
  policy.delay = minutes(30.0);
  auto state = make_state(config_with(policy));
  state->handle_notification(make(1, 3.0));
  EXPECT_EQ(state->delay_stage_size(), 1u);
  EXPECT_FALSE(device.contains(NotificationId{1}));

  sim.run_until(minutes(31.0));
  EXPECT_EQ(state->delay_stage_size(), 0u);
  EXPECT_TRUE(device.contains(NotificationId{1}));
  EXPECT_EQ(state->stats().delayed, 1u);
}

TEST_F(TopicStateTest, RankDropDuringDelayPreventsTransfer) {
  PolicyConfig policy = PolicyConfig::buffer(10);
  policy.delay = minutes(30.0);
  auto state = make_state(config_with(policy, 8, /*threshold=*/2.0));
  state->handle_notification(make(1, 3.0));
  state->handle_notification(make(1, 0.0));  // retracted while delayed
  sim.run_until(hours(1.0));
  EXPECT_FALSE(device.contains(NotificationId{1}));
  EXPECT_EQ(state->stats().forwarded, 0u);
  EXPECT_EQ(state->stats().delay_drops, 1u);
}

TEST_F(TopicStateTest, DelayedEventsServeReadsImmediately) {
  // A read taps outgoing ∪ prefetch ∪ holding; delayed events are in none of
  // them, mirroring the paper (they are invisible until released).
  PolicyConfig policy = PolicyConfig::buffer(0);
  policy.delay = minutes(30.0);
  auto state = make_state(config_with(policy));
  state->handle_notification(make(1, 3.0));
  auto difference = state->handle_read(request_from_device(8));
  EXPECT_TRUE(difference.empty());
}

// ---------------------------------------------------- buffer-based prefetch

TEST_F(TopicStateTest, BufferPrefetchStopsAtLimit) {
  auto state = make_state(config_with(PolicyConfig::buffer(3)));
  for (std::uint64_t i = 1; i <= 10; ++i) {
    state->handle_notification(make(i, static_cast<double>(i) * 0.4));
  }
  // Forwarding is eager: the first three arrivals fill the buffer; later
  // (higher-ranked) events wait in the prefetch queue for a read.
  EXPECT_EQ(device.queue_size(), 3u);
  EXPECT_EQ(state->prefetch_size(), 7u);
  EXPECT_TRUE(device.contains(NotificationId{1}));
  EXPECT_TRUE(device.contains(NotificationId{2}));
  EXPECT_TRUE(device.contains(NotificationId{3}));
}

TEST_F(TopicStateTest, BufferPrefetchPicksHighestRankedWhenRoomOpens) {
  auto state = make_state(config_with(PolicyConfig::buffer(0)));
  for (std::uint64_t i = 1; i <= 10; ++i) {
    state->handle_notification(make(i, static_cast<double>(i) * 0.4));
  }
  EXPECT_EQ(device.queue_size(), 0u);
  // When transfers do happen, the highest-ranked pending events go first —
  // verified through the read difference.
  auto difference = state->handle_read(request_from_device(3));
  ASSERT_EQ(difference.size(), 3u);
  EXPECT_EQ(difference[0]->id.value, 10u);
  EXPECT_EQ(difference[1]->id.value, 9u);
  EXPECT_EQ(difference[2]->id.value, 8u);
}

TEST_F(TopicStateTest, BufferPrefetchRefillsAfterRead) {
  auto state = make_state(config_with(PolicyConfig::buffer(3), /*max=*/2));
  for (std::uint64_t i = 1; i <= 10; ++i) {
    state->handle_notification(make(i, static_cast<double>(i) * 0.4));
  }
  EXPECT_EQ(device.queue_size(), 3u);

  // User reads 2; READ corrects queue_size; prefetch refills toward 3.
  auto request = request_from_device(2);
  state->handle_read(request);
  device.read(2, 0.0);
  // Simulate the next read cycle to let the proxy observe the smaller queue.
  state->handle_read(request_from_device(2));
  EXPECT_GE(device.queue_size(), 2u);
  EXPECT_EQ(state->stats().read_requests, 2u);
}

TEST_F(TopicStateTest, QueueSizeViewDriftsUpAndCorrectsOnRead) {
  auto state = make_state(config_with(PolicyConfig::buffer(5)));
  for (std::uint64_t i = 1; i <= 5; ++i) state->handle_notification(make(i, 1.0));
  EXPECT_EQ(state->queue_size_view(), 5u);
  device.read(5, 0.0);  // user reads locally; proxy cannot see it
  EXPECT_EQ(state->queue_size_view(), 5u);
  state->handle_read(request_from_device(1));
  EXPECT_LE(state->queue_size_view(), 1u);
}

// ----------------------------------------------------------- adaptive policy

TEST_F(TopicStateTest, AdaptiveStartsWithInitialLimit) {
  auto state = make_state(config_with(PolicyConfig::adaptive()));
  EXPECT_EQ(state->effective_prefetch_limit(), 0u);
  state->handle_notification(make(1, 3.0));
  EXPECT_EQ(device.queue_size(), 0u);  // nothing prefetched yet
}

TEST_F(TopicStateTest, AdaptiveLimitIsTwiceMeanReadSize) {
  auto state = make_state(config_with(PolicyConfig::adaptive(), /*max=*/4));
  state->handle_read(request_from_device(4));
  EXPECT_EQ(state->effective_prefetch_limit(), 8u);  // 2 * 4
  for (std::uint64_t i = 1; i <= 20; ++i) state->handle_notification(make(i, 1.0));
  EXPECT_EQ(device.queue_size(), 8u);
}

TEST_F(TopicStateTest, AdaptiveExpirationThresholdTracksReadInterval) {
  auto state = make_state(config_with(PolicyConfig::adaptive(), /*max=*/4));
  EXPECT_EQ(state->effective_expiration_threshold(), 0);
  sim.schedule_at(hours(1.0), [&] { state->handle_read(request_from_device(4)); });
  sim.schedule_at(hours(9.0), [&] { state->handle_read(request_from_device(4)); });
  sim.run();
  ASSERT_TRUE(state->average_read_interval().has_value());
  EXPECT_EQ(*state->average_read_interval(), hours(8.0));
  EXPECT_EQ(state->effective_expiration_threshold(), hours(8.0));

  // An event expiring sooner than 8h is now held, not prefetched.
  state->handle_notification(make(1, 3.0, hours(2.0)));
  EXPECT_EQ(state->holding_size(), 1u);
  state->handle_notification(make(2, 3.0, hours(20.0)));
  EXPECT_TRUE(device.contains(NotificationId{2}));
}

TEST_F(TopicStateTest, AutoThresholdSafetySuppressesWhenLifetimesShort) {
  PolicyConfig policy = PolicyConfig::adaptive();
  policy.auto_threshold_safety = 10.0;
  auto state = make_state(config_with(policy, /*max=*/4));
  sim.schedule_at(hours(1.0), [&] { state->handle_read(request_from_device(4)); });
  sim.schedule_at(hours(9.0), [&] { state->handle_read(request_from_device(4)); });
  sim.run();
  // Lifetimes comparable to the read interval: threshold must NOT engage.
  state->handle_notification(make(1, 3.0, hours(9.0)));
  EXPECT_EQ(state->effective_expiration_threshold(), 0);
  EXPECT_EQ(state->holding_size(), 0u);
}

TEST_F(TopicStateTest, AutoThresholdSafetyEngagesWhenLifetimesLong) {
  PolicyConfig policy = PolicyConfig::adaptive();
  policy.auto_threshold_safety = 10.0;
  auto state = make_state(config_with(policy, /*max=*/4));
  sim.schedule_at(hours(1.0), [&] { state->handle_read(request_from_device(4)); });
  sim.schedule_at(hours(9.0), [&] { state->handle_read(request_from_device(4)); });
  sim.run();
  // An order of magnitude longer than the 8h read interval.
  state->handle_notification(make(1, 3.0, days(30.0)));
  EXPECT_EQ(state->effective_expiration_threshold(), hours(8.0));
}

// -------------------------------------------------------------- rate policy

TEST_F(TopicStateTest, FixedRateForwardsEveryOtherArrival) {
  auto state = make_state(config_with(PolicyConfig::rate(0.5)));
  for (std::uint64_t i = 1; i <= 10; ++i) state->handle_notification(make(i, 1.0));
  EXPECT_EQ(device.queue_size(), 5u);
}

TEST_F(TopicStateTest, FixedRateOneFiveForwardsFifth) {
  auto state = make_state(config_with(PolicyConfig::rate(0.2)));
  for (std::uint64_t i = 1; i <= 10; ++i) state->handle_notification(make(i, 1.0));
  EXPECT_EQ(device.queue_size(), 2u);
}

TEST_F(TopicStateTest, RateForwardsHighestRankedAvailable) {
  auto state = make_state(config_with(PolicyConfig::rate(0.5)));
  state->handle_notification(make(1, 1.0));
  state->handle_notification(make(2, 5.0));  // credit reaches 1 here
  ASSERT_EQ(device.queue_size(), 1u);
  EXPECT_TRUE(device.contains(NotificationId{2}));
}

TEST_F(TopicStateTest, DynamicRateIsZeroWithoutReadHistory) {
  auto state = make_state(config_with(PolicyConfig::rate(0.0)));
  EXPECT_DOUBLE_EQ(state->current_ratio(), 0.0);
  for (std::uint64_t i = 1; i <= 10; ++i) state->handle_notification(make(i, 1.0));
  EXPECT_EQ(device.queue_size(), 0u);
}

TEST_F(TopicStateTest, RateCreditFlushesOnLinkUp) {
  auto state = make_state(config_with(PolicyConfig::rate(1.0)));
  link.set_state(net::LinkState::kDown);
  for (std::uint64_t i = 1; i <= 4; ++i) state->handle_notification(make(i, 1.0));
  EXPECT_EQ(device.queue_size(), 0u);
  link.set_state(net::LinkState::kUp);
  state->handle_network(net::LinkState::kUp);
  EXPECT_EQ(device.queue_size(), 4u);
}

// -------------------------------------------------------------- bookkeeping

TEST_F(TopicStateTest, ForwardedUniqueCountsDistinctIds) {
  auto state = make_state(config_with(PolicyConfig::buffer(10)));
  state->handle_notification(make(1, 3.0));
  state->handle_notification(make(1, 4.0));  // rank change: re-send
  state->handle_notification(make(2, 2.0));
  EXPECT_EQ(state->stats().forwarded, 3u);
  EXPECT_EQ(state->forwarded_unique(), 2u);
  EXPECT_TRUE(state->was_forwarded(NotificationId{1}));
  EXPECT_FALSE(state->was_forwarded(NotificationId{3}));
}

TEST_F(TopicStateTest, StatsCountArrivalKinds) {
  auto state = make_state(config_with(PolicyConfig::buffer(0), 8, 2.0));
  state->handle_notification(make(1, 3.0));
  state->handle_notification(make(1, 3.5));
  state->handle_notification(make(2, 1.0));
  EXPECT_EQ(state->stats().arrivals, 3u);
  EXPECT_EQ(state->stats().rank_update_arrivals, 1u);
  EXPECT_EQ(state->stats().below_threshold_drops, 1u);
}

}  // namespace
}  // namespace waif::core
