// The reliable delivery layer over a faulty last hop: ACKs, capped
// exponential backoff, the in-flight window, device-side dedup, and graceful
// degradation through the failure handler.
#include "core/reliable_channel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.h"
#include "device/device.h"
#include "net/fault.h"
#include "net/link.h"
#include "pubsub/notification.h"
#include "sim/simulator.h"

namespace waif::core {
namespace {

pubsub::NotificationPtr make(std::uint64_t id, double rank = 3.0,
                             SimTime published = 0, SimTime expires = kNever) {
  auto n = std::make_shared<pubsub::Notification>();
  n->id = NotificationId{id};
  n->topic = "t";
  n->rank = rank;
  n->published_at = published;
  n->expires_at = expires;
  return n;
}

/// Deterministic config: no retry jitter, so every timer instant is exact.
ReliableChannelConfig exact_config() {
  ReliableChannelConfig config;
  config.jitter = 0.0;
  return config;
}

class ReliableChannelTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
};

TEST_F(ReliableChannelTest, DeliversAndAcksOnHealthyLink) {
  ReliableDeviceChannel channel(sim, link, device, exact_config());
  std::vector<std::uint64_t> observed;
  channel.set_delivery_observer(
      [&observed](const pubsub::NotificationPtr& n) {
        observed.push_back(n->id.value);
      });
  for (std::uint64_t id = 1; id <= 3; ++id) {
    EXPECT_TRUE(channel.deliver(make(id)));
  }
  sim.run();

  const ReliableChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.transmissions, 3u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.delivered, 3u);
  EXPECT_EQ(stats.acks_sent, 3u);
  EXPECT_EQ(stats.acked, 3u);
  EXPECT_EQ(channel.in_flight(), 0u);
  EXPECT_EQ(channel.backlog(), 0u);
  EXPECT_EQ(device.stats().received, 3u);
  EXPECT_EQ(observed, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(ReliableChannelTest, LostAcksRetryAndDedupAbsorbsTheCopies) {
  // Every ACK vanishes on the uplink: the device keeps receiving copies the
  // dedup window must absorb, and the sender eventually gives up and hands
  // the event to the failure handler even though the device holds it.
  net::FaultConfig fault;
  fault.uplink_drop_probability = 1.0;
  link.set_fault_model(fault, 7);
  ReliableChannelConfig config = exact_config();
  config.max_attempts = 3;
  ReliableDeviceChannel channel(sim, link, device, config);
  std::vector<std::uint64_t> requeued;
  channel.set_failure_handler(
      [&requeued](const pubsub::NotificationPtr& n) {
        requeued.push_back(n->id.value);
      });
  channel.deliver(make(42));
  sim.run();

  const ReliableChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.transmissions, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.duplicates_suppressed, 2u);
  EXPECT_EQ(stats.acks_sent, 3u);  // re-ACKed on every duplicate
  EXPECT_EQ(stats.ack_losses, 3u);
  EXPECT_EQ(stats.acked, 0u);
  EXPECT_EQ(stats.attempts_exhausted, 1u);
  EXPECT_EQ(stats.requeued, 1u);
  EXPECT_EQ(requeued, (std::vector<std::uint64_t>{42}));
  // The dedup window kept the device clean: one receive, no duplicates.
  EXPECT_EQ(device.stats().received, 1u);
  EXPECT_EQ(device.stats().duplicate_receives, 0u);
}

TEST_F(ReliableChannelTest, OutageParksTransfersUntilRecovery) {
  ReliableDeviceChannel channel(sim, link, device, exact_config());
  std::vector<std::uint64_t> observed;
  channel.set_delivery_observer(
      [&observed](const pubsub::NotificationPtr& n) {
        observed.push_back(n->id.value);
      });
  link.set_state(net::LinkState::kDown);
  for (std::uint64_t id = 1; id <= 3; ++id) channel.deliver(make(id));
  sim.run_until(kHour);
  // Nothing moved: no transmissions, no timers burning attempts.
  EXPECT_EQ(channel.stats().transmissions, 0u);
  EXPECT_EQ(channel.in_flight(), 3u);

  link.set_state(net::LinkState::kUp);
  sim.run();
  const ReliableChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.transmissions, 3u);
  EXPECT_EQ(stats.retries, 0u);  // deferral is not a retry
  EXPECT_EQ(stats.acked, 3u);
  // Recovery retransmits in sequence order.
  EXPECT_EQ(observed, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(ReliableChannelTest, HalfOpenDropIsRecoveredByTimeoutRetry) {
  // The link reports up but the downlink silently eats the first copy; only
  // the ACK timeout can discover this, and the retry lands once the
  // half-open window has closed.
  net::FaultConfig fault;
  fault.half_open_probability = 1.0;
  fault.mean_half_open = 10;  // microseconds: closes long before the retry
  link.set_fault_model(fault, 3);
  link.set_state(net::LinkState::kDown);
  link.set_state(net::LinkState::kUp);  // opens the half-open window
  ReliableDeviceChannel channel(sim, link, device, exact_config());
  channel.deliver(make(1));
  sim.run();

  const ReliableChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.transmissions, 2u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.link_drops, 1u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.acked, 1u);
  EXPECT_EQ(link.fault_model()->stats().half_open_drops, 1u);
}

TEST_F(ReliableChannelTest, BackoffDoublesAndIsCappedAtMaxBackoff) {
  // With every transmission dropped the attempt instants are fully
  // determined by the backoff schedule: 0, 30, 90, 210, 450, 930s, with the
  // sixth timeout capped at max_backoff (600s < 960s), so the transfer is
  // abandoned at exactly 1530s.
  net::FaultConfig fault;
  fault.drop_probability = 1.0;
  link.set_fault_model(fault, 11);
  ReliableChannelConfig config = exact_config();  // 30s start, x2, 10min cap
  ReliableDeviceChannel channel(sim, link, device, config);
  SimTime abandoned_at = kNever;
  channel.set_failure_handler(
      [&abandoned_at, this](const pubsub::NotificationPtr&) {
        abandoned_at = sim.now();
      });
  channel.deliver(make(1));
  sim.run();

  const ReliableChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.transmissions, 6u);
  EXPECT_EQ(stats.link_drops, 6u);
  EXPECT_EQ(stats.attempts_exhausted, 1u);
  EXPECT_EQ(abandoned_at, 1530 * kSecond);
  EXPECT_EQ(device.stats().received, 0u);
}

TEST_F(ReliableChannelTest, ExpiredTransferIsAbandonedSilently) {
  ReliableDeviceChannel channel(sim, link, device, exact_config());
  int handler_calls = 0;
  channel.set_failure_handler(
      [&handler_calls](const pubsub::NotificationPtr&) { ++handler_calls; });
  link.set_state(net::LinkState::kDown);
  channel.deliver(make(1, 3.0, 0, /*expires=*/kMinute));
  sim.schedule_at(2 * kMinute,
                  [this] { link.set_state(net::LinkState::kUp); });
  sim.run();

  const ReliableChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.transmissions, 0u);  // it died parked, never on the air
  EXPECT_EQ(stats.expired_abandoned, 1u);
  EXPECT_EQ(stats.requeued, 0u);
  EXPECT_EQ(handler_calls, 0);  // nothing left to save
  EXPECT_EQ(device.stats().received, 0u);
  EXPECT_EQ(channel.in_flight(), 0u);
}

TEST_F(ReliableChannelTest, WindowBoundsInFlightAndBacklogDrains) {
  ReliableChannelConfig config = exact_config();
  config.window = 2;
  ReliableDeviceChannel channel(sim, link, device, config);
  link.set_state(net::LinkState::kDown);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    EXPECT_TRUE(channel.deliver(make(id)));
  }
  EXPECT_EQ(channel.in_flight(), 2u);
  EXPECT_EQ(channel.backlog(), 3u);

  link.set_state(net::LinkState::kUp);
  sim.run();
  const ReliableChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.accepted, 5u);
  EXPECT_EQ(stats.delivered, 5u);
  EXPECT_EQ(stats.acked, 5u);
  EXPECT_EQ(channel.in_flight(), 0u);
  EXPECT_EQ(channel.backlog(), 0u);
  EXPECT_EQ(device.stats().received, 5u);
}

TEST_F(ReliableChannelTest, FrameLostToOutageIsRetransmitted) {
  // The frame is in the air when the link dies: it is lost, the timeout
  // parks the transfer, and recovery retransmits it.
  net::FaultConfig fault;
  fault.base_latency = kSecond;  // give the outage something to interrupt
  link.set_fault_model(fault, 5);
  ReliableDeviceChannel channel(sim, link, device, exact_config());
  channel.deliver(make(1));
  sim.schedule_at(kSecond / 2,
                  [this] { link.set_state(net::LinkState::kDown); });
  sim.schedule_at(kMinute, [this] { link.set_state(net::LinkState::kUp); });
  sim.run();

  const ReliableChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.outage_losses, 1u);  // the frame died mid-air
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.duplicates_suppressed, 0u);
  EXPECT_EQ(stats.acked, 1u);
  EXPECT_EQ(device.stats().received, 1u);
}

TEST_F(ReliableChannelTest, AckLostToOutageIsRetriedWithoutDuplicateDelivery) {
  // The message lands, the ACK is in flight when the link dies: the sender
  // must retry after recovery and the dedup window must absorb the copy.
  net::FaultConfig fault;
  fault.base_latency = kSecond;  // give the outage something to interrupt
  link.set_fault_model(fault, 5);
  ReliableDeviceChannel channel(sim, link, device, exact_config());
  channel.deliver(make(1));
  // Arrival at 1s; the ACK then needs another second. Kill the link between.
  sim.schedule_at(kSecond + kMillisecond,
                  [this] { link.set_state(net::LinkState::kDown); });
  sim.schedule_at(kMinute, [this] { link.set_state(net::LinkState::kUp); });
  sim.run();

  const ReliableChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.ack_losses, 1u);  // the ACK died mid-air
  EXPECT_EQ(stats.duplicates_suppressed, 1u);
  EXPECT_EQ(stats.acked, 1u);  // the retry's ACK completed the transfer
  EXPECT_EQ(device.stats().received, 1u);
  EXPECT_EQ(device.stats().duplicate_receives, 0u);
}

TEST(ReliableChannelDeathTest, RejectsInvalidConfig) {
  sim::Simulator sim;
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  ReliableChannelConfig bad;
  bad.ack_timeout = 0;
  EXPECT_DEATH(ReliableDeviceChannel(sim, link, device, bad),
               "WAIF_CHECK failed");
}

}  // namespace
}  // namespace waif::core
