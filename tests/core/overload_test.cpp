// Overload protection (core/overload.h): the canonical rank-then-expiration
// shed order, the per-topic and proxy-wide queue budgets, admission
// hysteresis at the proxy, and the enqueue-before-shed journal ordering the
// recovery mirror depends on.
#include "core/overload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "core/channel.h"
#include "core/journal.h"
#include "core/proxy.h"
#include "core/topic_state.h"
#include "device/device.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace waif::core {
namespace {

using pubsub::Notification;
using pubsub::NotificationPtr;

Notification event_with(double rank, SimTime expires_at = kNever,
                        std::uint64_t id = 1) {
  Notification n;
  n.id = NotificationId{id};
  n.rank = rank;
  n.expires_at = expires_at;
  return n;
}

// ------------------------------------------------------------- shed_before

TEST(ShedOrder, LowerRankShedsFirst) {
  EXPECT_TRUE(shed_before(event_with(1.0), event_with(2.0)));
  EXPECT_FALSE(shed_before(event_with(2.0), event_with(1.0)));
}

TEST(ShedOrder, SoonerExpiryBreaksRankTies) {
  EXPECT_TRUE(shed_before(event_with(2.0, kHour), event_with(2.0, kDay)));
  EXPECT_FALSE(shed_before(event_with(2.0, kDay), event_with(2.0, kHour)));
}

TEST(ShedOrder, NeverExpiringShedsLast) {
  // kNever sorts after any finite instant: a never-expiring event of equal
  // rank outlives every expiring one.
  EXPECT_TRUE(shed_before(event_with(2.0, kDay), event_with(2.0, kNever)));
  EXPECT_FALSE(shed_before(event_with(2.0, kNever), event_with(2.0, kDay)));
}

TEST(ShedOrder, IdBreaksRemainingTies) {
  EXPECT_TRUE(shed_before(event_with(2.0, kNever, 1),
                          event_with(2.0, kNever, 2)));
  EXPECT_FALSE(shed_before(event_with(2.0, kNever, 2),
                           event_with(2.0, kNever, 1)));
}

TEST(ShedOrder, IsAStrictWeakOrder) {
  const Notification a = event_with(2.0, kHour, 3);
  EXPECT_FALSE(shed_before(a, a));
}

// -------------------------------------------------------- per-topic budget

/// Journal that records hook firings in order, and checks that every shed
/// victim is still queued (and canonically worst) at journal time.
class RecordingJournal final : public ProxyJournal {
 public:
  void watch(TopicState* state) { state_ = state; }

  void on_enqueue(const std::string& topic,
                  const EnqueueRecord& record) override {
    (void)topic;
    log_.emplace_back("enqueue", record.event.id.value);
  }

  void on_shed(const std::string& topic, const NotificationPtr& event,
               SimTime at) override {
    (void)topic;
    (void)at;
    log_.emplace_back("shed", event->id.value);
    if (state_ == nullptr) return;
    bool queued = false;
    bool worst = true;
    for (const NotificationPtr& candidate : state_->queued_events()) {
      if (candidate->id.value == event->id.value) queued = true;
      else if (shed_before(*candidate, *event)) worst = false;
    }
    victim_was_queued_ &= queued;
    victim_was_worst_ &= worst;
  }

  const std::vector<std::pair<std::string, std::uint64_t>>& log() const {
    return log_;
  }
  bool victim_was_queued() const { return victim_was_queued_; }
  bool victim_was_worst() const { return victim_was_worst_; }

 private:
  TopicState* state_ = nullptr;
  std::vector<std::pair<std::string, std::uint64_t>> log_;
  bool victim_was_queued_ = true;
  bool victim_was_worst_ = true;
};

class OverloadTopicTest : public ::testing::Test {
 protected:
  NotificationPtr make(std::uint64_t id, double rank,
                       SimDuration lifetime = kNever) {
    auto n = std::make_shared<Notification>();
    n->id = NotificationId{id};
    n->topic = "t";
    n->rank = rank;
    n->published_at = sim.now();
    n->expires_at = lifetime == kNever ? kNever : sim.now() + lifetime;
    return n;
  }

  std::unique_ptr<TopicState> make_state(PolicyConfig policy) {
    TopicConfig config;
    config.mode = DeliveryMode::kOnDemand;
    config.options.max = 8;
    config.options.threshold = 0.0;
    config.policy = policy;
    return std::make_unique<TopicState>(sim, channel, "t", config);
  }

  std::vector<std::uint64_t> queued_ids(const TopicState& state) {
    std::vector<std::uint64_t> ids;
    for (const NotificationPtr& event : state.queued_events()) {
      ids.push_back(event->id.value);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  sim::Simulator sim;
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
  SimDeviceChannel channel{link, device};
};

TEST_F(OverloadTopicTest, TopicBudgetShedsWorstRanksFirst) {
  auto state = make_state(PolicyConfig::on_demand());
  state->set_queue_budget(3);
  state->handle_notification(make(1, 5.0));
  state->handle_notification(make(2, 1.0));
  state->handle_notification(make(3, 4.0));
  state->handle_notification(make(4, 2.0));  // sheds rank 1.0 (id 2)
  state->handle_notification(make(5, 3.0));  // sheds rank 2.0 (id 4)

  EXPECT_EQ(state->stats().shed, 2u);
  EXPECT_EQ(state->queued_total(), 3u);
  EXPECT_EQ(queued_ids(*state), (std::vector<std::uint64_t>{1, 3, 5}));
}

TEST_F(OverloadTopicTest, ExpirationThenIdBreakEqualRankTies) {
  auto state = make_state(PolicyConfig::on_demand());
  state->set_queue_budget(1);
  state->handle_notification(make(1, 2.0));         // never expires
  state->handle_notification(make(2, 2.0, kHour));  // sooner expiry: sheds
  EXPECT_EQ(queued_ids(*state), (std::vector<std::uint64_t>{1}));

  state->handle_notification(make(3, 2.0));  // id tiebreak: 1 sheds before 3
  EXPECT_EQ(queued_ids(*state), (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(state->stats().shed, 2u);
}

TEST_F(OverloadTopicTest, ZeroBudgetIsUnbounded) {
  auto state = make_state(PolicyConfig::on_demand());
  for (std::uint64_t id = 1; id <= 64; ++id) {
    state->handle_notification(make(id, 1.0));
  }
  EXPECT_EQ(state->stats().shed, 0u);
  EXPECT_EQ(state->queued_total(), 64u);
}

TEST_F(OverloadTopicTest, ShedJournalsVictimBeforeErasure) {
  RecordingJournal journal;
  auto state = make_state(PolicyConfig::on_demand());
  journal.watch(state.get());
  state->set_journal(&journal);
  state->set_queue_budget(2);
  state->handle_notification(make(1, 3.0));
  state->handle_notification(make(2, 1.0));
  state->handle_notification(make(3, 2.0));  // sheds id 2

  // The WAL orders the victim's enqueue before its shed, and the on_shed
  // hook fires while the victim is still queued (write-ahead erasure).
  ASSERT_EQ(journal.log().size(), 4u);
  EXPECT_EQ(journal.log()[2],
            (std::pair<std::string, std::uint64_t>{"enqueue", 3}));
  EXPECT_EQ(journal.log()[3],
            (std::pair<std::string, std::uint64_t>{"shed", 2}));
  EXPECT_TRUE(journal.victim_was_queued());
  EXPECT_TRUE(journal.victim_was_worst());
}

TEST_F(OverloadTopicTest, ShedPurgesDelayCopyAndExpirationTimer) {
  // An interrupt promotes a delayed event to outgoing but leaves the delay
  // copy behind; shedding the event must purge both and disarm its
  // expiration timer, or the event would re-enter through the delay release
  // (and the dead timer would count a phantom expiration).
  PolicyConfig policy = PolicyConfig::on_demand();
  policy.delay = kHour;
  TopicConfig config;
  config.mode = DeliveryMode::kOnDemand;
  config.options.max = 8;
  config.options.threshold = 0.0;
  config.policy = policy;
  config.refinements.interrupt_threshold = 5.0;
  TopicState state(sim, channel, "t", config);
  link.set_state(net::LinkState::kDown);  // keep outgoing queued

  state.handle_notification(make(1, 1.0, 2 * kHour));  // delay stage
  ASSERT_EQ(state.delay_stage_size(), 1u);
  state.handle_notification(make(1, 6.0, 2 * kHour));  // interrupt
  ASSERT_EQ(state.outgoing_size(), 1u);
  ASSERT_EQ(state.delay_stage_size(), 1u);  // the stale copy stays behind

  EXPECT_TRUE(state.shed_one());
  EXPECT_EQ(state.queued_total(), 0u);
  EXPECT_EQ(state.delay_stage_size(), 0u);
  EXPECT_EQ(state.stats().shed, 1u);

  // The expiration timer was cancelled with the event: running past its
  // lifetime counts no phantom purge.
  sim.run_until(3 * kHour);
  EXPECT_EQ(state.stats().expired_at_proxy, 0u);
  EXPECT_FALSE(state.shed_one());  // nothing left
}

// ------------------------------------------------------- proxy-wide budget

class OverloadProxyTest : public ::testing::Test {
 protected:
  NotificationPtr make(const std::string& topic, std::uint64_t id,
                       double rank) {
    auto n = std::make_shared<Notification>();
    n->id = NotificationId{id};
    n->topic = topic;
    n->rank = rank;
    n->published_at = sim.now();
    n->expires_at = kNever;
    return n;
  }

  TopicConfig on_demand_config() {
    TopicConfig config;
    config.mode = DeliveryMode::kOnDemand;
    config.options.max = 8;
    config.options.threshold = 0.0;
    config.policy = PolicyConfig::on_demand();
    return config;
  }

  sim::Simulator sim;
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
  SimDeviceChannel channel{link, device};
  Proxy proxy{sim, channel, "overload-proxy"};
};

TEST_F(OverloadProxyTest, ProxyBudgetShedsGloballyWorstAcrossTopics) {
  proxy.add_topic("a", on_demand_config());
  proxy.add_topic("b", on_demand_config());
  OverloadConfig overload;
  overload.proxy_queue_budget = 4;
  proxy.set_overload(overload);

  for (std::uint64_t id = 1; id <= 3; ++id) {
    proxy.on_notification(make("a", id, 10.0 + static_cast<double>(id)));
  }
  for (std::uint64_t id = 11; id <= 13; ++id) {
    proxy.on_notification(make("b", id, static_cast<double>(id - 10)));
  }

  // The two cheapest events both live on topic b: the global budget reached
  // through a's overflow hook must still shed them, not a's.
  EXPECT_EQ(proxy.total_queued(), 4u);
  EXPECT_EQ(proxy.topic("a")->stats().shed, 0u);
  EXPECT_EQ(proxy.topic("b")->stats().shed, 2u);
  EXPECT_EQ(proxy.topic("b")->queued_total(), 1u);
}

TEST_F(OverloadProxyTest, OverloadConfigAppliesToTopicsAddedLater) {
  OverloadConfig overload;
  overload.topic_queue_budget = 2;
  proxy.set_overload(overload);
  proxy.add_topic("late", on_demand_config());
  for (std::uint64_t id = 1; id <= 5; ++id) {
    proxy.on_notification(make("late", id, static_cast<double>(id)));
  }
  EXPECT_EQ(proxy.topic("late")->queued_total(), 2u);
  EXPECT_EQ(proxy.topic("late")->stats().shed, 3u);
}

TEST_F(OverloadProxyTest, AdmissionGateClosesHighReopensLow) {
  proxy.add_topic("t", on_demand_config());
  OverloadConfig overload;
  overload.admission_high = 4;
  overload.admission_low = 2;
  proxy.set_overload(overload);

  for (std::uint64_t id = 1; id <= 4; ++id) {
    proxy.on_notification(make("t", id, static_cast<double>(id)));
  }
  ASSERT_EQ(proxy.total_queued(), 4u);

  // At the high-watermark the gate closes: arrivals are turned away before
  // any queue or journal sees them.
  proxy.on_notification(make("t", 5, 5.0));
  proxy.on_notification(make("t", 6, 6.0));
  EXPECT_EQ(proxy.stats().admission_rejects, 2u);
  EXPECT_EQ(proxy.total_queued(), 4u);

  // Draining to 3 is not enough — hysteresis holds the gate shut above the
  // low-watermark.
  ReadRequest request;
  request.n = 1;
  ASSERT_EQ(proxy.try_read("t", request), ReadStatus::kOk);
  ASSERT_EQ(proxy.total_queued(), 3u);
  proxy.on_notification(make("t", 7, 7.0));
  EXPECT_EQ(proxy.stats().admission_rejects, 3u);

  // One more read reaches the low-watermark: the gate reopens.
  request.n = 2;
  request.queue_size = device.queue_size("t");
  request.client_events = device.top_ids("t", 2, 0.0);
  ASSERT_EQ(proxy.try_read("t", request), ReadStatus::kOk);
  ASSERT_EQ(proxy.total_queued(), 2u);
  proxy.on_notification(make("t", 8, 8.0));
  EXPECT_EQ(proxy.stats().admission_rejects, 3u);
  EXPECT_EQ(proxy.total_queued(), 3u);
}

TEST_F(OverloadProxyTest, AllZeroConfigIsByteForByteNoop) {
  proxy.add_topic("t", on_demand_config());
  proxy.set_overload(OverloadConfig{});
  for (std::uint64_t id = 1; id <= 100; ++id) {
    proxy.on_notification(make("t", id, 1.0));
  }
  EXPECT_TRUE(proxy.accepting());
  EXPECT_EQ(proxy.stats().admission_rejects, 0u);
  EXPECT_EQ(proxy.topic("t")->stats().shed, 0u);
  EXPECT_EQ(proxy.total_queued(), 100u);
}

}  // namespace
}  // namespace waif::core
