// Proxy replication (Section 4): warm standby, asynchronous state transfer,
// manual failover, duplicate-transfer window.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/time.h"
#include "core/replication.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"

namespace waif::core {
namespace {

class ReplicationTest : public ::testing::Test {
 protected:
  static TopicConfig config_with(PolicyConfig policy, int max = 4) {
    TopicConfig config;
    config.options.max = max;
    config.policy = policy;
    return config;
  }

  void wire(TopicConfig config, ReplicationConfig replication = {}) {
    replicated = std::make_unique<ReplicatedProxy>(sim, link, device,
                                                   replication);
    replicated->add_topic("news", config);
    broker.subscribe("news", *replicated, config.options);
  }

  sim::Simulator sim;
  pubsub::Broker broker{sim};
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
  std::unique_ptr<ReplicatedProxy> replicated;
  pubsub::Publisher publisher{broker, "p"};
};

TEST_F(ReplicationTest, OnlyTheActiveReplicaForwards) {
  wire(config_with(PolicyConfig::buffer(8)));
  publisher.publish("news", 3.0);
  sim.run_until(kMinute);
  // Exactly one transfer despite two replicas holding the event.
  EXPECT_EQ(device.stats().received, 1u);
  EXPECT_EQ(device.stats().duplicate_receives, 0u);
  EXPECT_TRUE(replicated->primary_is_active());
  EXPECT_EQ(replicated->live_replicas(), 2u);
}

TEST_F(ReplicationTest, ForwardRecordsReachTheStandby) {
  wire(config_with(PolicyConfig::buffer(8)));
  auto n = publisher.publish("news", 3.0);
  EXPECT_FALSE(
      replicated->standby_proxy().topic("news")->was_forwarded(n->id));
  sim.run_until(kMinute);  // replication latency elapses
  EXPECT_TRUE(
      replicated->standby_proxy().topic("news")->was_forwarded(n->id));
  EXPECT_EQ(replicated->stats().replicated_forwards, 1u);
}

TEST_F(ReplicationTest, FailoverPromotesTheStandbySeamlessly) {
  wire(config_with(PolicyConfig::buffer(8)));
  publisher.publish("news", 3.0);
  sim.run_until(kMinute);  // replication settles

  replicated->fail_active();
  EXPECT_FALSE(replicated->primary_is_active());
  EXPECT_EQ(replicated->live_replicas(), 1u);
  EXPECT_EQ(replicated->stats().failovers, 1u);

  // The promoted replica keeps serving: new events flow, no duplicates.
  publisher.publish("news", 4.0);
  sim.run_until(2 * kMinute);
  EXPECT_EQ(device.stats().received, 2u);
  EXPECT_EQ(device.stats().duplicate_receives, 0u);
}

TEST_F(ReplicationTest, UnreplicatedForwardsDuplicateAfterFailover) {
  // Failover inside the asynchrony window: the standby never learned of the
  // forward and re-sends it.
  ReplicationConfig slow;
  slow.replication_latency = kHour;
  wire(config_with(PolicyConfig::buffer(8)), slow);
  publisher.publish("news", 3.0);
  EXPECT_EQ(device.stats().received, 1u);

  replicated->fail_active();  // before the record arrives
  sim.run_until(2 * kHour);
  EXPECT_EQ(device.stats().duplicate_receives, 1u);
  EXPECT_GE(replicated->stats().late_records, 1u);
}

TEST_F(ReplicationTest, ReadsAreServedAndReplicated) {
  wire(config_with(PolicyConfig::buffer(8), /*max=*/2));
  publisher.publish("news", 3.0);
  publisher.publish("news", 4.0);
  auto read = replicated->user_read("news");
  EXPECT_EQ(read.size(), 2u);
  EXPECT_GE(replicated->stats().replicated_reads, 1u);
  sim.run_until(kMinute);
  // The standby's view followed the read.
  EXPECT_EQ(replicated->standby_proxy().topic("news")->stats().sync_requests,
            1u);
}

TEST_F(ReplicationTest, ReadsKeepWorkingAfterFailover) {
  wire(config_with(PolicyConfig::buffer(8), /*max=*/4));
  publisher.publish("news", 3.0);
  sim.run_until(kMinute);
  replicated->fail_active();
  publisher.publish("news", 4.0);
  auto read = replicated->user_read("news");
  EXPECT_EQ(read.size(), 2u);  // both messages, exactly once
}

TEST_F(ReplicationTest, OfflineReadsSurviveFailover) {
  // The offline read log is device-side state; a proxy failover must not
  // lose it.
  wire(config_with(PolicyConfig::adaptive(), /*max=*/4));
  link.set_state(net::LinkState::kDown);
  replicated->user_read("news");  // logged on the device
  replicated->fail_active();
  link.set_state(net::LinkState::kUp);
  // The promoted replica received the deferred sync and trained on it.
  EXPECT_EQ(
      replicated->active_proxy().topic("news")->effective_prefetch_limit(),
      8u);  // 2 * 4
}

TEST_F(ReplicationTest, DoubleFailureThrows) {
  wire(config_with(PolicyConfig::buffer(8)));
  replicated->fail_active();
  EXPECT_THROW(replicated->fail_active(), std::logic_error);
}

TEST_F(ReplicationTest, CrashedReplicaStopsReceiving) {
  wire(config_with(PolicyConfig::buffer(8)));
  replicated->fail_active();
  Proxy& dead = replicated->standby_proxy();  // index 0 after failover...
  // After failover the non-active slot is the crashed primary.
  const auto arrivals_before = dead.topic("news")->stats().arrivals;
  publisher.publish("news", 3.0);
  EXPECT_EQ(dead.topic("news")->stats().arrivals, arrivals_before);
}

TEST_F(ReplicationTest, UnmanagedTopicThrows) {
  wire(config_with(PolicyConfig::buffer(8)));
  EXPECT_THROW(replicated->user_read("nowhere"), std::invalid_argument);
}

// --- heartbeat failure detector --------------------------------------------

class FailureDetectorTest : public ReplicationTest {
 protected:
  static ReplicationConfig detector_config() {
    ReplicationConfig config;
    config.heartbeat_interval = 30 * kSecond;
    config.suspicion_timeout = 5 * kMinute;
    return config;
  }
};

TEST_F(FailureDetectorTest, HeartbeatsFlowWhileHealthy) {
  wire(config_with(PolicyConfig::buffer(8)), detector_config());
  sim.run_until(5 * kMinute + kSecond);
  EXPECT_EQ(replicated->stats().heartbeats, 10u);  // one per 30s
  EXPECT_EQ(replicated->stats().auto_promotions, 0u);
  EXPECT_TRUE(replicated->primary_is_active());
}

TEST_F(FailureDetectorTest, CrashIsDetectedAndStandbyPromoted) {
  wire(config_with(PolicyConfig::buffer(8)), detector_config());
  publisher.publish("news", 3.0);
  // Crash just after the heartbeat at t=120s: the last heartbeat arrives at
  // 120s + 50ms, so the first detector tick past 420.05s — the one at
  // 450s — promotes. That is within suspicion_timeout + heartbeat_interval
  // + replication_latency of the crash.
  sim.schedule_at(121 * kSecond, [&] { replicated->crash_active(); });

  sim.run_until(440 * kSecond);  // silence not yet long enough
  EXPECT_EQ(replicated->stats().auto_promotions, 0u);
  EXPECT_FALSE(replicated->active_is_alive());  // headless window

  sim.run_until(460 * kSecond);
  EXPECT_EQ(replicated->stats().auto_promotions, 1u);
  EXPECT_EQ(replicated->stats().failovers, 1u);
  EXPECT_EQ(replicated->stats().crashes, 1u);
  EXPECT_FALSE(replicated->primary_is_active());
  EXPECT_TRUE(replicated->active_is_alive());

  // The promoted replica serves: a new event still reaches the device.
  publisher.publish("news", 4.0);
  sim.run_until(470 * kSecond);
  EXPECT_EQ(device.stats().received, 2u);
}

TEST_F(FailureDetectorTest, HeadlessReadsAreServedLocallyUntilPromotion) {
  wire(config_with(PolicyConfig::buffer(8)), detector_config());
  publisher.publish("news", 3.0);
  sim.run_until(kMinute);
  ASSERT_EQ(device.stats().received, 1u);
  replicated->crash_active();
  // Before the detector fires the hop is headless: the read drains the
  // device's local queue, like an outage, and logs a deferred sync.
  auto read = replicated->user_read("news");
  EXPECT_EQ(read.size(), 1u);
  EXPECT_EQ(replicated->stats().auto_promotions, 0u);
}

TEST_F(FailureDetectorTest, RestartedReplicaRejoinsAsStandby) {
  wire(config_with(PolicyConfig::buffer(8)), detector_config());
  sim.schedule_at(kMinute, [&] { replicated->crash_active(); });
  sim.run_until(10 * kMinute);
  ASSERT_EQ(replicated->stats().auto_promotions, 1u);
  ASSERT_EQ(replicated->live_replicas(), 1u);

  replicated->restart_replica(0);
  EXPECT_EQ(replicated->stats().restarts, 1u);
  EXPECT_EQ(replicated->live_replicas(), 2u);
  EXPECT_FALSE(replicated->primary_is_active());  // replica 1 keeps the role

  // The rejoined standby warms from the live feed; no spurious promotion
  // while the active replica keeps heartbeating.
  publisher.publish("news", 3.0);
  sim.run_until(kHour);
  EXPECT_EQ(replicated->stats().auto_promotions, 1u);
  EXPECT_EQ(device.stats().received, 1u);
  EXPECT_EQ(replicated->standby_proxy().topic("news")->stats().arrivals, 1u);
}

TEST_F(FailureDetectorTest, DetectorOffMeansNoAutoPromotion) {
  wire(config_with(PolicyConfig::buffer(8)));  // heartbeat_interval = 0
  replicated->crash_active();
  sim.run_until(kDay);  // terminates: no recurring events were scheduled
  EXPECT_EQ(replicated->stats().auto_promotions, 0u);
  EXPECT_EQ(replicated->stats().heartbeats, 0u);
  EXPECT_TRUE(replicated->primary_is_active());
}

using FailureDetectorDeathTest = FailureDetectorTest;

TEST_F(FailureDetectorDeathTest, SuspicionMustExceedHeartbeatPeriod) {
  ReplicationConfig bad;
  bad.heartbeat_interval = 30 * kSecond;
  bad.suspicion_timeout = 10 * kSecond;
  EXPECT_DEATH(wire(config_with(PolicyConfig::buffer(8)), bad),
               "WAIF_CHECK failed");
}

TEST_F(FailureDetectorTest, ExternalChannelConstructorForwardsThroughIt) {
  SimDeviceChannel external(link, device);
  ReplicatedProxy proxy(sim, link, device, external);
  TopicConfig config = config_with(PolicyConfig::buffer(8));
  proxy.add_topic("news", config);
  const auto subscription = broker.subscribe("news", proxy, config.options);
  publisher.publish("news", 3.0);
  sim.run_until(kMinute);
  EXPECT_EQ(device.stats().received, 1u);
  EXPECT_EQ(link.stats().downlink_messages, 1u);
  // The proxy dies before the fixture's broker/publisher: detach it.
  broker.unsubscribe(subscription);
}

}  // namespace
}  // namespace waif::core
