// The slow-device circuit breaker in ReliableDeviceChannel (trip on
// consecutive exhausted transfers, cooldown, half-open probes, reclose on
// ACK), the bounded-backlog backpressure, the capped exponential backoff at
// extreme attempt counts, and the DeviceGroup degraded-peer skip.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.h"
#include "core/channel.h"
#include "core/device_group.h"
#include "core/proxy.h"
#include "core/reliable_channel.h"
#include "device/device.h"
#include "net/fault.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/notification.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"

namespace waif::core {
namespace {

using pubsub::Notification;
using pubsub::NotificationPtr;

NotificationPtr make(std::uint64_t id, double rank = 3.0,
                     SimTime expires = kNever) {
  auto n = std::make_shared<Notification>();
  n->id = NotificationId{id};
  n->topic = "t";
  n->rank = rank;
  n->published_at = 0;
  n->expires_at = expires;
  return n;
}

/// No jitter: every timer instant is exact and the test arithmetic holds.
ReliableChannelConfig exact_config() {
  ReliableChannelConfig config;
  config.jitter = 0.0;
  return config;
}

/// Starves the channel of ACKs: the device receives and re-ACKs every copy,
/// but no ACK ever crosses the uplink — the signature of a stalled device.
void starve_acks(net::Link& link, std::uint64_t seed = 7) {
  net::FaultConfig fault;
  fault.uplink_drop_probability = 1.0;
  link.set_fault_model(fault, seed);
}

class BreakerTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
};

// ------------------------------------------------------- backoff regression

TEST_F(BreakerTest, BackoffStaysCappedThroughHighAttemptCounts) {
  // With 80 attempts the uncapped exponent (2^79 * 30 s) overflows SimTime;
  // the clamp must keep every retry at max_backoff instead.
  starve_acks(link);
  ReliableChannelConfig config = exact_config();
  config.ack_timeout = 30 * kSecond;
  config.backoff_factor = 2.0;
  config.max_backoff = 10 * kMinute;
  config.max_attempts = 80;
  ReliableDeviceChannel channel(sim, link, device, config);
  std::vector<std::uint64_t> abandoned;
  channel.set_failure_handler([&abandoned](const NotificationPtr& event) {
    abandoned.push_back(event->id.value);
  });
  channel.deliver(make(1));
  sim.run();

  const ReliableChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.transmissions, 80u);
  EXPECT_EQ(stats.attempts_exhausted, 1u);
  EXPECT_EQ(stats.requeued, 1u);
  EXPECT_EQ(abandoned, (std::vector<std::uint64_t>{1}));
  // Every interval was at most the cap (and the run terminated at all).
  EXPECT_LE(sim.now(), 80 * config.max_backoff);
  EXPECT_GT(sim.now(), 0);
}

TEST_F(BreakerTest, BackoffSurvivesAstronomicalFactor) {
  // backoff_factor so large the very first multiply leaves any integer
  // range: the old float-to-int conversion was undefined behaviour, the
  // clamp-in-double fix must pin every stage to max_backoff.
  starve_acks(link);
  ReliableChannelConfig config = exact_config();
  config.ack_timeout = 30 * kSecond;
  config.backoff_factor = 1e30;
  config.max_backoff = 10 * kMinute;
  config.max_attempts = 70;
  ReliableDeviceChannel channel(sim, link, device, config);
  channel.deliver(make(1));
  sim.run();

  EXPECT_EQ(channel.stats().transmissions, 70u);
  EXPECT_EQ(channel.stats().attempts_exhausted, 1u);
  // First timeout 30 s, every later one capped: the exhaustion instant is
  // exactly ack_timeout + 69 * max_backoff.
  EXPECT_EQ(sim.now(), config.ack_timeout + 69 * config.max_backoff);
}

// ----------------------------------------------------- breaker state machine

ReliableChannelConfig breaker_config() {
  ReliableChannelConfig config = exact_config();
  config.ack_timeout = 30 * kSecond;
  config.max_attempts = 2;
  config.breaker_failure_threshold = 2;
  config.breaker_cooldown = 5 * kMinute;
  config.breaker_half_open_probes = 1;
  return config;
}

TEST_F(BreakerTest, TripsAfterConsecutiveExhaustionsIntoHoldOnly) {
  starve_acks(link);
  ReliableDeviceChannel channel(sim, link, device, breaker_config());
  ASSERT_TRUE(channel.accepting());
  channel.deliver(make(1));
  channel.deliver(make(2));
  // Both transfers exhaust (30 s + 60 s); the second exhaustion reaches the
  // threshold and trips the breaker before the cooldown can elapse.
  sim.run_until(4 * kMinute);

  EXPECT_EQ(channel.stats().attempts_exhausted, 2u);
  EXPECT_EQ(channel.stats().breaker_trips, 1u);
  EXPECT_EQ(channel.breaker_state(), BreakerState::kOpen);
  EXPECT_FALSE(channel.accepting());
}

TEST_F(BreakerTest, CooldownProbesHalfOpenAndAckRecloses) {
  starve_acks(link);
  ReliableDeviceChannel channel(sim, link, device, breaker_config());
  std::vector<BreakerState> transitions;
  channel.set_breaker_observer(
      [&transitions](BreakerState state) { transitions.push_back(state); });
  channel.deliver(make(1));
  channel.deliver(make(2));
  sim.run_until(20 * kMinute);  // cooldown elapsed
  ASSERT_EQ(channel.breaker_state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(channel.accepting());  // exactly the configured probe budget

  // The device recovered: the probe's ACK comes through and recloses.
  link.set_fault_model(net::FaultConfig{}, /*seed=*/1);
  channel.deliver(make(3));
  sim.run();
  EXPECT_EQ(channel.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(channel.stats().breaker_probes, 1u);
  EXPECT_EQ(channel.stats().breaker_closes, 1u);
  EXPECT_EQ(channel.consecutive_failures(), 0u);
  EXPECT_TRUE(channel.accepting());
  EXPECT_EQ(transitions,
            (std::vector<BreakerState>{BreakerState::kOpen,
                                       BreakerState::kHalfOpen,
                                       BreakerState::kClosed}));
}

TEST_F(BreakerTest, FailedProbeRetripsForAnotherCooldown) {
  starve_acks(link);
  ReliableDeviceChannel channel(sim, link, device, breaker_config());
  channel.deliver(make(1));
  channel.deliver(make(2));
  sim.run_until(20 * kMinute);
  ASSERT_EQ(channel.breaker_state(), BreakerState::kHalfOpen);

  // Still starved: the probe exhausts (~90 s in) and re-opens the breaker
  // for another full cooldown. Observe before that second cooldown elapses.
  channel.deliver(make(3));
  sim.run_until(25 * kMinute);
  EXPECT_EQ(channel.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(channel.stats().breaker_trips, 2u);
  EXPECT_EQ(channel.stats().breaker_probes, 1u);
  EXPECT_FALSE(channel.accepting());
}

TEST_F(BreakerTest, DeliverNeverRefusesAcceptingIsTheOnlyGate) {
  // The contract: callers consult accepting(); deliver() always takes the
  // event (do_forward's bookkeeping must match what the channel took on).
  starve_acks(link);
  ReliableDeviceChannel channel(sim, link, device, breaker_config());
  channel.deliver(make(1));
  channel.deliver(make(2));
  sim.run_until(4 * kMinute);
  ASSERT_EQ(channel.breaker_state(), BreakerState::kOpen);
  EXPECT_TRUE(channel.deliver(make(3)));
  EXPECT_EQ(channel.stats().accepted, 3u);
}

TEST_F(BreakerTest, BoundedBacklogBackpressuresThroughAccepting) {
  ReliableChannelConfig config = exact_config();
  config.window = 1;
  config.max_backlog = 2;
  ReliableDeviceChannel channel(sim, link, device, config);
  link.set_state(net::LinkState::kDown);  // nothing drains

  channel.deliver(make(1));  // in flight
  EXPECT_TRUE(channel.accepting());
  channel.deliver(make(2));  // backlog 1
  EXPECT_TRUE(channel.accepting());
  channel.deliver(make(3));  // backlog 2 = max_backlog
  EXPECT_FALSE(channel.accepting());

  link.set_state(net::LinkState::kUp);
  sim.run();
  EXPECT_EQ(channel.stats().acked, 3u);
  EXPECT_EQ(channel.backlog(), 0u);
  EXPECT_TRUE(channel.accepting());
}

TEST_F(BreakerTest, CrashProxySideResetsTheBreaker) {
  // The breaker is transient connection state: a recovered proxy re-learns
  // a slow device from fresh evidence instead of inheriting a stale trip.
  starve_acks(link);
  ReliableDeviceChannel channel(sim, link, device, breaker_config());
  channel.deliver(make(1));
  channel.deliver(make(2));
  sim.run_until(4 * kMinute);
  ASSERT_EQ(channel.breaker_state(), BreakerState::kOpen);

  channel.crash_proxy_side();
  EXPECT_EQ(channel.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(channel.consecutive_failures(), 0u);
  EXPECT_TRUE(channel.accepting());
}

TEST_F(BreakerTest, DisabledBreakerNeverTrips) {
  starve_acks(link);
  ReliableChannelConfig config = exact_config();
  config.ack_timeout = 30 * kSecond;
  config.max_attempts = 2;  // breaker_failure_threshold stays 0 = off
  ReliableDeviceChannel channel(sim, link, device, config);
  for (std::uint64_t id = 1; id <= 8; ++id) channel.deliver(make(id));
  sim.run();
  EXPECT_EQ(channel.stats().attempts_exhausted, 8u);
  EXPECT_EQ(channel.stats().breaker_trips, 0u);
  EXPECT_EQ(channel.breaker_state(), BreakerState::kClosed);
  EXPECT_TRUE(channel.accepting());
}

// ------------------------------------------------- degraded peers in groups

class DegradedPeerTest : public ::testing::Test {
 protected:
  void wire() {
    TopicConfig config;
    config.options.max = 4;
    config.options.threshold = 0.0;
    config.policy = PolicyConfig::buffer(8);
    phone_proxy.add_topic("news", config);
    laptop_proxy.add_topic("news", config);
    broker.subscribe("news", phone_proxy, config.options);
    broker.subscribe("news", laptop_proxy, config.options);
    phone_proxy.attach_to_link(phone_link);
    laptop_proxy.attach_to_link(laptop_link);
    group.add_member(phone_proxy, phone_channel);    // member 0
    group.add_member(laptop_proxy, laptop_channel);  // member 1
  }

  sim::Simulator sim;
  pubsub::Broker broker{sim};
  net::Link phone_link{sim};
  net::Link laptop_link{sim};
  device::Device phone{sim, DeviceId{1}};
  device::Device laptop{sim, DeviceId{2}};
  SimDeviceChannel phone_channel{phone_link, phone};
  SimDeviceChannel laptop_channel{laptop_link, laptop};
  Proxy phone_proxy{sim, phone_channel, "phone-proxy"};
  Proxy laptop_proxy{sim, laptop_channel, "laptop-proxy"};
  DeviceGroup group{sim};
  pubsub::Publisher publisher{broker, "p"};
};

TEST_F(DegradedPeerTest, GroupReadSkipsDegradedPeerUntilItRecovers) {
  wire();
  phone_link.set_state(net::LinkState::kDown);
  publisher.publish("news", 3.0);
  publisher.publish("news", 4.0);
  ASSERT_EQ(laptop.queue_size(), 2u);

  // The laptop's breaker tripped: its cache may be stale and its proxy is in
  // hold-only mode, so the group read must not lean on it.
  group.set_member_degraded(1, true);
  EXPECT_TRUE(group.member_degraded(1));
  auto read = group.user_read(0, "news");
  EXPECT_TRUE(read.empty());
  EXPECT_EQ(group.stats().peer_reads, 0u);
  EXPECT_GE(group.stats().degraded_peer_skips, 1u);
  EXPECT_EQ(laptop.queue_size(), 2u);  // untouched

  // Recovery (the breaker reclosed): cooperation resumes.
  group.set_member_degraded(1, false);
  read = group.user_read(0, "news");
  EXPECT_EQ(read.size(), 2u);
  EXPECT_EQ(group.stats().peer_reads, 2u);
}

}  // namespace
}  // namespace waif::core
