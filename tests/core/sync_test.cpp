// The deferred queue-state sync: offline reads are logged on the device and
// reported to the proxy at reconnection, correcting the drifting queue-size
// view and training the proxy's moving averages.
#include <gtest/gtest.h>

#include <memory>

#include "common/time.h"
#include "core/channel.h"
#include "core/proxy.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"

namespace waif::core {
namespace {

class SyncTest : public ::testing::Test {
 protected:
  static TopicConfig config_with(PolicyConfig policy, int max = 4) {
    TopicConfig config;
    config.options.max = max;
    config.policy = policy;
    return config;
  }

  void publish_n(int count, double rank = 3.0) {
    for (int i = 0; i < count; ++i) publisher.publish("t", rank);
  }

  sim::Simulator sim;
  pubsub::Broker broker{sim};
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
  SimDeviceChannel channel{link, device};
  Proxy proxy{sim, channel};
  pubsub::Publisher publisher{broker, "p"};

  void wire(const std::string& topic, TopicConfig config) {
    proxy.add_topic(topic, config);
    broker.subscribe(topic, proxy, config.options);
    proxy.attach_to_link(link);
  }
};

TEST_F(SyncTest, OfflineReadsAreLoggedAndFlushedAtReconnect) {
  wire("t", config_with(PolicyConfig::buffer(4), /*max=*/4));
  LastHopSession session(proxy, channel);
  publish_n(8);
  ASSERT_EQ(device.queue_size(), 4u);  // buffer full

  link.set_state(net::LinkState::kDown);
  auto read = session.user_read("t");
  EXPECT_EQ(read.size(), 4u);  // served locally
  EXPECT_EQ(session.pending_syncs(), 1u);
  EXPECT_EQ(device.queue_size(), 0u);  // drained, proxy cannot know yet
  EXPECT_EQ(proxy.topic("t")->queue_size_view(), 4u);  // stale view

  link.set_state(net::LinkState::kUp);
  EXPECT_EQ(session.pending_syncs(), 0u);
  EXPECT_EQ(proxy.topic("t")->stats().sync_requests, 1u);
  // The sync corrected the view and the buffer refilled from the backlog.
  EXPECT_EQ(device.queue_size(), 4u);
}

TEST_F(SyncTest, PureOnDemandDoesNotDefer) {
  wire("t", config_with(PolicyConfig::on_demand()));
  LastHopSession session(proxy, channel);
  publish_n(8);
  link.set_state(net::LinkState::kDown);
  session.user_read("t");
  EXPECT_EQ(session.pending_syncs(), 0u);
  link.set_state(net::LinkState::kUp);
  EXPECT_EQ(proxy.topic("t")->stats().sync_requests, 0u);
  EXPECT_EQ(device.queue_size(), 0u);  // nothing was pushed
}

TEST_F(SyncTest, SyncTrainsAdaptiveAverages) {
  wire("t", config_with(PolicyConfig::adaptive(), /*max=*/4));
  LastHopSession session(proxy, channel);
  TopicState* state = proxy.topic("t");
  EXPECT_EQ(state->effective_prefetch_limit(), 0u);  // untrained

  link.set_state(net::LinkState::kDown);
  sim.schedule_at(hours(1.0), [&] { session.user_read("t"); });
  sim.schedule_at(hours(9.0), [&] { session.user_read("t"); });
  sim.schedule_at(hours(10.0), [&] { link.set_state(net::LinkState::kUp); });
  sim.run_until(kDay);

  // Both offline reads trained the averages at reconnection.
  EXPECT_EQ(state->effective_prefetch_limit(), 8u);  // 2 * mean(4, 4)
  ASSERT_TRUE(state->average_read_interval().has_value());
  EXPECT_EQ(*state->average_read_interval(), hours(8.0));
}

TEST_F(SyncTest, MultipleOfflineReadsOneSync) {
  wire("t", config_with(PolicyConfig::buffer(8), /*max=*/2));
  LastHopSession session(proxy, channel);
  publish_n(8);
  link.set_state(net::LinkState::kDown);
  session.user_read("t");
  session.user_read("t");
  session.user_read("t");
  EXPECT_EQ(session.pending_syncs(), 1u);  // one topic, one pending sync
  link.set_state(net::LinkState::kUp);
  EXPECT_EQ(proxy.topic("t")->stats().sync_requests, 1u);
  // One uplink message carried the whole read log.
  EXPECT_EQ(link.stats().uplink_messages, 1u);
}

TEST_F(SyncTest, SyncForRemovedTopicIsDropped) {
  wire("t", config_with(PolicyConfig::buffer(8)));
  LastHopSession session(proxy, channel);
  publish_n(4);
  link.set_state(net::LinkState::kDown);
  session.user_read("t");
  proxy.remove_topic("t");
  link.set_state(net::LinkState::kUp);  // must not throw
  EXPECT_EQ(link.stats().uplink_messages, 0u);
}

TEST_F(SyncTest, HandleSyncDirectlyUpdatesViewAndForwards) {
  wire("t", config_with(PolicyConfig::buffer(2)));
  publish_n(6);
  TopicState* state = proxy.topic("t");
  EXPECT_EQ(device.queue_size(), 2u);
  device.read(2, 0.0);
  EXPECT_EQ(state->queue_size_view(), 2u);  // stale
  proxy.handle_sync("t", device.queue_size());
  EXPECT_EQ(state->stats().sync_requests, 1u);
  EXPECT_EQ(device.queue_size(), 2u);  // refilled
}

TEST_F(SyncTest, HandleSyncUnknownTopicThrows) {
  EXPECT_THROW(proxy.handle_sync("nowhere", 0), std::invalid_argument);
}

TEST_F(SyncTest, RetriedSyncTrainsAveragesExactlyOnce) {
  // On an unreliable hop the reconnect sync can be retransmitted; the
  // sync_id makes the replay idempotent: the queue-size view is refreshed
  // but the offline-read log must not train the averages twice.
  wire("t", config_with(PolicyConfig::adaptive(), /*max=*/6));
  TopicState* state = proxy.topic("t");
  std::vector<ReadRecord> log{{hours(2.0), 6}, {hours(10.0), 6}};
  sim.schedule_at(hours(12.0), [&] {
    proxy.handle_sync("t", 0, log, /*sync_id=*/77);
    proxy.handle_sync("t", 0, log, /*sync_id=*/77);  // retransmission
  });
  sim.run();

  EXPECT_EQ(state->stats().sync_requests, 2u);
  EXPECT_EQ(state->stats().duplicate_syncs, 1u);
  // Trained once: same averages as a single sync.
  EXPECT_EQ(state->effective_prefetch_limit(), 12u);
  ASSERT_TRUE(state->average_read_interval().has_value());
  EXPECT_EQ(*state->average_read_interval(), hours(8.0));
}

TEST_F(SyncTest, RetriedReadTrainsAveragesExactlyOnce) {
  wire("t", config_with(PolicyConfig::adaptive(), /*max=*/4));
  TopicState* state = proxy.topic("t");
  ReadRequest first;
  first.request_id = 1;
  first.n = 4;
  ReadRequest second;
  second.request_id = 2;
  second.n = 4;
  sim.schedule_at(hours(1.0), [&] { proxy.handle_read("t", first); });
  sim.schedule_at(hours(5.0), [&] {
    proxy.handle_read("t", second);
    proxy.handle_read("t", second);  // retransmitted READ, same id
  });
  sim.run();

  EXPECT_EQ(state->stats().read_requests, 3u);
  EXPECT_EQ(state->stats().duplicate_reads, 1u);
  // One interval (1h -> 5h), not polluted by the replay.
  ASSERT_TRUE(state->average_read_interval().has_value());
  EXPECT_EQ(*state->average_read_interval(), hours(4.0));
  EXPECT_EQ(state->effective_prefetch_limit(), 8u);  // 2 * 4
}

TEST_F(SyncTest, UnstampedRequestsAreNeverDeduplicated) {
  // request_id 0 marks a legacy caller that does not participate in the
  // idempotence protocol; each such read trains normally.
  wire("t", config_with(PolicyConfig::adaptive(), /*max=*/4));
  TopicState* state = proxy.topic("t");
  ReadRequest request;  // request_id stays 0
  request.n = 4;
  proxy.handle_read("t", request);
  proxy.handle_read("t", request);
  EXPECT_EQ(state->stats().read_requests, 2u);
  EXPECT_EQ(state->stats().duplicate_reads, 0u);
}

TEST_F(SyncTest, SessionStampsDistinctRequestIds) {
  // A LastHopSession run: consecutive reads and reconnect syncs all carry
  // fresh ids, so none of them are mistaken for retransmissions.
  wire("t", config_with(PolicyConfig::buffer(4), /*max=*/4));
  LastHopSession session(proxy, channel);
  publish_n(8);
  session.user_read("t");
  session.user_read("t");
  link.set_state(net::LinkState::kDown);
  session.user_read("t");
  link.set_state(net::LinkState::kUp);  // flushes the deferred sync
  TopicState* state = proxy.topic("t");
  EXPECT_EQ(state->stats().read_requests, 2u);
  EXPECT_EQ(state->stats().sync_requests, 1u);
  EXPECT_EQ(state->stats().duplicate_reads, 0u);
  EXPECT_EQ(state->stats().duplicate_syncs, 0u);
}

TEST_F(SyncTest, SyncWithReadLogFeedsRecordsInOrder) {
  wire("t", config_with(PolicyConfig::adaptive(), /*max=*/6));
  TopicState* state = proxy.topic("t");
  std::vector<ReadRecord> log{{hours(2.0), 6}, {hours(10.0), 6}};
  sim.schedule_at(hours(12.0), [&] { proxy.handle_sync("t", 0, log); });
  sim.run();
  EXPECT_EQ(state->effective_prefetch_limit(), 12u);  // 2 * 6
  ASSERT_TRUE(state->average_read_interval().has_value());
  EXPECT_EQ(*state->average_read_interval(), hours(8.0));
}

}  // namespace
}  // namespace waif::core
