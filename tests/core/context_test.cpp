#include "core/context.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/channel.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"

namespace waif::core {
namespace {

class ContextRouterTest : public ::testing::Test {
 protected:
  static TopicConfig online_config() {
    TopicConfig config;
    config.mode = DeliveryMode::kOnLine;
    config.policy = PolicyConfig::online();
    return config;
  }

  sim::Simulator sim;
  pubsub::Broker broker{sim};
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
  SimDeviceChannel channel{link, device};
  Proxy proxy{sim, channel};
  ContextRouter router{broker, proxy};
};

TEST_F(ContextRouterTest, RuleRequiresPlaceholder) {
  EXPECT_THROW(router.add_rule("city", "traffic/static", online_config()),
               std::invalid_argument);
}

TEST_F(ContextRouterTest, FirstUpdateSubscribes) {
  router.add_rule("city", "traffic/{city}", online_config());
  auto active = router.update_context("city", "tromso");
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], "traffic/tromso");
  EXPECT_EQ(broker.subscriber_count("traffic/tromso"), 1u);
  EXPECT_NE(proxy.topic("traffic/tromso"), nullptr);
  EXPECT_EQ(router.stats().resubscriptions, 1u);
}

TEST_F(ContextRouterTest, MovingCityResubscribes) {
  router.add_rule("city", "traffic/{city}", online_config());
  router.update_context("city", "tromso");
  router.update_context("city", "oslo");

  EXPECT_EQ(broker.subscriber_count("traffic/tromso"), 0u);
  EXPECT_EQ(broker.subscriber_count("traffic/oslo"), 1u);
  EXPECT_EQ(proxy.topic("traffic/tromso"), nullptr);
  EXPECT_NE(proxy.topic("traffic/oslo"), nullptr);
  EXPECT_EQ(router.stats().resubscriptions, 2u);
  EXPECT_EQ(*router.current_topic("traffic/{city}"), "traffic/oslo");
}

TEST_F(ContextRouterTest, SameValueIsNoOp) {
  router.add_rule("city", "traffic/{city}", online_config());
  router.update_context("city", "tromso");
  router.update_context("city", "tromso");
  EXPECT_EQ(router.stats().resubscriptions, 1u);
  EXPECT_EQ(router.stats().context_updates, 2u);
}

TEST_F(ContextRouterTest, UnrelatedKeyDoesNotTouchRule) {
  router.add_rule("city", "traffic/{city}", online_config());
  router.update_context("city", "tromso");
  auto active = router.update_context("country", "norway");
  EXPECT_TRUE(active.empty());
  EXPECT_EQ(broker.subscriber_count("traffic/tromso"), 1u);
}

TEST_F(ContextRouterTest, NotificationsFollowTheUser) {
  router.add_rule("city", "traffic/{city}", online_config());
  pubsub::Publisher tromso(broker, "tromso-roads");
  pubsub::Publisher oslo(broker, "oslo-roads");

  router.update_context("city", "tromso");
  tromso.publish("traffic/tromso", 3.0);
  EXPECT_EQ(device.queue_size(), 1u);

  router.update_context("city", "oslo");
  tromso.publish("traffic/tromso", 3.0);  // stale city: not delivered
  EXPECT_EQ(device.queue_size(), 1u);
  oslo.publish("traffic/oslo", 3.0);
  EXPECT_EQ(device.queue_size(), 2u);
}

TEST_F(ContextRouterTest, MultipleRulesOnOneKey) {
  router.add_rule("city", "traffic/{city}", online_config());
  router.add_rule("city", "weather/{city}", online_config());
  auto active = router.update_context("city", "bergen");
  EXPECT_EQ(active.size(), 2u);
  EXPECT_NE(proxy.topic("traffic/bergen"), nullptr);
  EXPECT_NE(proxy.topic("weather/bergen"), nullptr);
}

TEST_F(ContextRouterTest, CurrentTopicBeforeAnyUpdateIsEmpty) {
  router.add_rule("city", "traffic/{city}", online_config());
  EXPECT_FALSE(router.current_topic("traffic/{city}").has_value());
  EXPECT_FALSE(router.current_topic("unknown/{x}").has_value());
}

}  // namespace
}  // namespace waif::core
