// Multi-device cooperation (Section 4): one device using the cache of
// another over an ad-hoc network.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/time.h"
#include "core/channel.h"
#include "core/device_group.h"
#include "core/proxy.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"

namespace waif::core {
namespace {

class DeviceGroupTest : public ::testing::Test {
 protected:
  static TopicConfig config_with(PolicyConfig policy, int max = 4,
                                 double threshold = 0.0) {
    TopicConfig config;
    config.options.max = max;
    config.options.threshold = threshold;
    config.policy = policy;
    return config;
  }

  void wire(TopicConfig config) {
    phone_proxy.add_topic("news", config);
    laptop_proxy.add_topic("news", config);
    broker.subscribe("news", phone_proxy, config.options);
    broker.subscribe("news", laptop_proxy, config.options);
    phone_proxy.attach_to_link(phone_link);
    laptop_proxy.attach_to_link(laptop_link);
    group.add_member(phone_proxy, phone_channel);    // member 0
    group.add_member(laptop_proxy, laptop_channel);  // member 1
  }

  sim::Simulator sim;
  pubsub::Broker broker{sim};
  net::Link phone_link{sim};
  net::Link laptop_link{sim};
  device::Device phone{sim, DeviceId{1}};
  device::Device laptop{sim, DeviceId{2}};
  SimDeviceChannel phone_channel{phone_link, phone};
  SimDeviceChannel laptop_channel{laptop_link, laptop};
  Proxy phone_proxy{sim, phone_channel, "phone-proxy"};
  Proxy laptop_proxy{sim, laptop_channel, "laptop-proxy"};
  DeviceGroup group{sim};
  pubsub::Publisher publisher{broker, "p"};
};

TEST_F(DeviceGroupTest, ReadsLocallyWhenOwnCacheSuffices) {
  wire(config_with(PolicyConfig::buffer(8), /*max=*/2));
  publisher.publish("news", 3.0);
  publisher.publish("news", 2.0);
  auto read = group.user_read(0, "news");
  EXPECT_EQ(read.size(), 2u);
  EXPECT_EQ(group.stats().local_reads, 2u);
  EXPECT_EQ(group.stats().peer_reads, 0u);
}

TEST_F(DeviceGroupTest, PeerCacheServesReadDuringOwnOutage) {
  // The phone's link is down and its cache empty; the laptop prefetched the
  // messages, so the user still gets them.
  wire(config_with(PolicyConfig::buffer(8), /*max=*/4));
  phone_link.set_state(net::LinkState::kDown);
  publisher.publish("news", 3.0);
  publisher.publish("news", 4.0);
  ASSERT_EQ(laptop.queue_size(), 2u);
  ASSERT_EQ(phone.queue_size(), 0u);

  auto read = group.user_read(0, "news");
  EXPECT_EQ(read.size(), 2u);
  EXPECT_EQ(group.stats().peer_reads, 2u);
  EXPECT_EQ(group.stats().adhoc_transfers, 2u);
  EXPECT_EQ(laptop.queue_size(), 0u);
}

TEST_F(DeviceGroupTest, NoCooperationWithoutAdhocNetwork) {
  wire(config_with(PolicyConfig::buffer(8), /*max=*/4));
  group.set_adhoc_available(false);
  phone_link.set_state(net::LinkState::kDown);
  publisher.publish("news", 3.0);

  auto read = group.user_read(0, "news");
  EXPECT_TRUE(read.empty());
  EXPECT_EQ(group.stats().peer_reads, 0u);
  EXPECT_EQ(laptop.queue_size(), 1u);  // the laptop keeps its copy
}

TEST_F(DeviceGroupTest, DuplicatesAcrossCachesAreDiscarded) {
  // Both devices prefetched the same notification; the user sees it once.
  wire(config_with(PolicyConfig::buffer(8), /*max=*/4));
  publisher.publish("news", 3.0);
  ASSERT_EQ(phone.queue_size(), 1u);
  ASSERT_EQ(laptop.queue_size(), 1u);
  phone_link.set_state(net::LinkState::kDown);

  auto read = group.user_read(0, "news");
  EXPECT_EQ(read.size(), 1u);
  EXPECT_EQ(group.stats().duplicates_discarded, 1u);
  EXPECT_EQ(laptop.queue_size(), 0u);  // the stale copy was consumed
}

TEST_F(DeviceGroupTest, EarlierReadsDeduplicateLaterPeerPulls) {
  wire(config_with(PolicyConfig::buffer(8), /*max=*/4));
  publisher.publish("news", 3.0);
  // Read on the phone first (its link is up): message consumed there.
  auto first = group.user_read(0, "news");
  ASSERT_EQ(first.size(), 1u);
  // The laptop still holds its copy; a later group read on the laptop must
  // not re-serve it.
  auto second = group.user_read(1, "news");
  EXPECT_TRUE(second.empty());
  EXPECT_GE(group.stats().duplicates_discarded, 1u);
}

TEST_F(DeviceGroupTest, PeerProxyLearnsOfTheShrunkenCache) {
  // With identical prefetch policies both caches hold the SAME top messages:
  // the peer pull yields only duplicates (cooperation pays off when the
  // devices' links or policies differ), but the peer's proxy still learns
  // that its cache was drained and refills it from its backlog.
  wire(config_with(PolicyConfig::buffer(2), /*max=*/4));
  for (int i = 0; i < 6; ++i) publisher.publish("news", 1.0 + i * 0.1);
  ASSERT_EQ(laptop.queue_size(), 2u);  // buffer limit
  phone_link.set_state(net::LinkState::kDown);

  auto read = group.user_read(0, "news");
  EXPECT_EQ(read.size(), 2u);  // the duplicates added nothing
  EXPECT_EQ(group.stats().duplicates_discarded, 2u);
  EXPECT_EQ(group.stats().adhoc_transfers, 2u);
  // The laptop's proxy was synced and refilled its buffer from its backlog.
  EXPECT_EQ(laptop.queue_size(), 2u);
}

TEST_F(DeviceGroupTest, UnknownMemberThrows) {
  wire(config_with(PolicyConfig::buffer(8)));
  EXPECT_THROW(group.user_read(7, "news"), std::invalid_argument);
}

TEST_F(DeviceGroupTest, UnmanagedTopicThrows) {
  wire(config_with(PolicyConfig::buffer(8)));
  EXPECT_THROW(group.user_read(0, "nowhere"), std::invalid_argument);
}

TEST_F(DeviceGroupTest, GroupReadCountsAreConsistent) {
  wire(config_with(PolicyConfig::buffer(8), /*max=*/2));
  for (int i = 0; i < 4; ++i) publisher.publish("news", 1.0 + i);
  group.user_read(0, "news");
  group.user_read(1, "news");
  EXPECT_EQ(group.stats().group_reads, 2u);
  EXPECT_EQ(group.stats().local_reads + group.stats().peer_reads +
                group.stats().duplicates_discarded,
            group.stats().adhoc_transfers + 4u - 0u);
}

}  // namespace
}  // namespace waif::core
