#include "core/proxy.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "common/time.h"
#include "core/channel.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"

namespace waif::core {
namespace {

using pubsub::Notification;
using pubsub::NotificationPtr;

class ProxyTest : public ::testing::Test {
 protected:
  NotificationPtr make(std::uint64_t id, const std::string& topic, double rank) {
    auto n = std::make_shared<Notification>();
    n->id = NotificationId{id};
    n->topic = topic;
    n->rank = rank;
    n->published_at = sim.now();
    return n;
  }

  static TopicConfig online_config() {
    TopicConfig config;
    config.policy = PolicyConfig::online();
    return config;
  }

  sim::Simulator sim;
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
  SimDeviceChannel channel{link, device};
  Proxy proxy{sim, channel, "test-proxy"};
};

TEST_F(ProxyTest, DispatchesByTopic) {
  proxy.add_topic("a", online_config());
  proxy.add_topic("b", online_config());
  proxy.on_notification(make(1, "a", 1.0));
  proxy.on_notification(make(2, "b", 1.0));
  proxy.on_notification(make(3, "a", 1.0));
  EXPECT_EQ(proxy.topic("a")->stats().arrivals, 2u);
  EXPECT_EQ(proxy.topic("b")->stats().arrivals, 1u);
  EXPECT_EQ(proxy.stats().notifications, 3u);
}

TEST_F(ProxyTest, UnknownTopicIsCountedAndDropped) {
  proxy.on_notification(make(1, "nowhere", 1.0));
  EXPECT_EQ(proxy.stats().unknown_topic_drops, 1u);
  EXPECT_EQ(device.queue_size(), 0u);
}

TEST_F(ProxyTest, AddTopicTwiceThrows) {
  proxy.add_topic("a", online_config());
  EXPECT_THROW(proxy.add_topic("a", online_config()), std::invalid_argument);
}

TEST_F(ProxyTest, RemoveTopicDropsState) {
  proxy.add_topic("a", online_config());
  EXPECT_TRUE(proxy.remove_topic("a"));
  EXPECT_FALSE(proxy.remove_topic("a"));
  EXPECT_EQ(proxy.topic("a"), nullptr);
  proxy.on_notification(make(1, "a", 1.0));
  EXPECT_EQ(proxy.stats().unknown_topic_drops, 1u);
}

TEST_F(ProxyTest, HandleReadUnknownTopicThrows) {
  EXPECT_THROW(proxy.handle_read("nowhere", ReadRequest{}),
               std::invalid_argument);
}

TEST_F(ProxyTest, AttachToLinkForwardsOnRecovery) {
  proxy.add_topic("a", online_config());
  proxy.attach_to_link(link);
  link.set_state(net::LinkState::kDown);
  proxy.on_notification(make(1, "a", 1.0));
  EXPECT_EQ(device.queue_size(), 0u);
  link.set_state(net::LinkState::kUp);  // listener triggers try_forwarding
  EXPECT_EQ(device.queue_size(), 1u);
  EXPECT_EQ(proxy.stats().network_changes, 2u);
}

TEST_F(ProxyTest, TopicWithdrawnIsRecorded) {
  proxy.on_topic_withdrawn("gone");
  EXPECT_EQ(proxy.stats().topics_withdrawn, 1u);
}

// --- integration with a Broker and the LastHopSession ----------------------

class SessionTest : public ::testing::Test {
 protected:
  static TopicConfig config_with(PolicyConfig policy, int max = 8,
                                 double threshold = 0.0) {
    TopicConfig config;
    config.options.max = max;
    config.options.threshold = threshold;
    config.policy = policy;
    return config;
  }

  sim::Simulator sim;
  pubsub::Broker broker{sim};
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
  SimDeviceChannel channel{link, device};
  Proxy proxy{sim, channel};
  LastHopSession session{proxy, channel};
};

TEST_F(SessionTest, EndToEndOnDemandRead) {
  proxy.add_topic("news", config_with(PolicyConfig::on_demand(), /*max=*/2));
  broker.subscribe("news", proxy);
  pubsub::Publisher publisher(broker, "p");
  publisher.publish("news", 1.0);
  publisher.publish("news", 4.0);
  publisher.publish("news", 3.0);

  auto read = session.user_read("news");
  ASSERT_EQ(read.size(), 2u);
  EXPECT_DOUBLE_EQ(read[0]->rank, 4.0);
  EXPECT_DOUBLE_EQ(read[1]->rank, 3.0);
  EXPECT_EQ(session.total_read(), 2u);
  // Pure on-demand: exactly the read messages crossed the link.
  EXPECT_EQ(link.stats().downlink_messages, 2u);
  EXPECT_EQ(link.stats().uplink_messages, 1u);
}

TEST_F(SessionTest, ReadDuringOutageServesDeviceQueueOnly) {
  proxy.add_topic("news", config_with(PolicyConfig::buffer(1), /*max=*/2));
  broker.subscribe("news", proxy);
  proxy.attach_to_link(link);
  pubsub::Publisher publisher(broker, "p");
  publisher.publish("news", 4.0);  // prefetched (limit 1)
  publisher.publish("news", 5.0);  // stays at proxy

  link.set_state(net::LinkState::kDown);
  auto read = session.user_read("news");
  ASSERT_EQ(read.size(), 1u);
  EXPECT_DOUBLE_EQ(read[0]->rank, 4.0);  // only the prefetched one
  EXPECT_EQ(link.stats().uplink_messages, 0u);  // no READ was sent
}

TEST_F(SessionTest, ThresholdAppliesOnRead) {
  proxy.add_topic("news",
                  config_with(PolicyConfig::on_demand(), /*max=*/10,
                              /*threshold=*/4.5));
  broker.subscribe("news", proxy);
  pubsub::Publisher publisher(broker, "p");
  publisher.publish("news", 4.0);
  publisher.publish("news", 4.6);
  publisher.publish("news", 4.9);

  auto read = session.user_read("news");
  ASSERT_EQ(read.size(), 2u);
  EXPECT_DOUBLE_EQ(read[0]->rank, 4.9);
  EXPECT_DOUBLE_EQ(read[1]->rank, 4.6);
}

TEST_F(SessionTest, UnmanagedTopicThrows) {
  EXPECT_THROW(session.user_read("nowhere"), std::invalid_argument);
}

TEST_F(SessionTest, SlashdotScenario) {
  // Section 2.2: "request the highest-ranked stories above threshold 4.5, but
  // not more than 30 at a time" — and catch up after a month away.
  proxy.add_topic("slashdot",
                  config_with(PolicyConfig::on_demand(), /*max=*/30,
                              /*threshold=*/4.5));
  broker.subscribe("slashdot", proxy);
  pubsub::Publisher publisher(broker, "slashdot");
  // A month of stories: 200, of which 50 clear the threshold.
  int above = 0;
  for (int i = 0; i < 200; ++i) {
    const double rank = (i % 4 == 0) ? 4.6 : 3.0;
    above += rank >= 4.5 ? 1 : 0;
    publisher.publish("slashdot", rank);
  }
  ASSERT_EQ(above, 50);

  auto read = session.user_read("slashdot");
  EXPECT_EQ(read.size(), 30u);  // Max caps the catch-up read
  for (const auto& story : read) EXPECT_GE(story->rank, 4.5);
}

TEST_F(SessionTest, RepeatedReadsDrainBacklog) {
  proxy.add_topic("news", config_with(PolicyConfig::on_demand(), /*max=*/5));
  broker.subscribe("news", proxy);
  pubsub::Publisher publisher(broker, "p");
  for (int i = 0; i < 12; ++i) publisher.publish("news", 1.0 + 0.01 * i);

  EXPECT_EQ(session.user_read("news").size(), 5u);
  EXPECT_EQ(session.user_read("news").size(), 5u);
  EXPECT_EQ(session.user_read("news").size(), 2u);
  EXPECT_EQ(session.user_read("news").size(), 0u);
  EXPECT_EQ(session.total_read(), 12u);
}

}  // namespace
}  // namespace waif::core
