#include "core/ranked_queue.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/time.h"

namespace waif::core {
namespace {

pubsub::NotificationPtr make(std::uint64_t id, double rank,
                             SimTime published = 0) {
  auto n = std::make_shared<pubsub::Notification>();
  n->id = NotificationId{id};
  n->topic = "t";
  n->rank = rank;
  n->published_at = published;
  return n;
}

TEST(RankedQueueTest, StartsEmpty) {
  RankedQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.top(), nullptr);
  EXPECT_EQ(queue.pop_top(), nullptr);
}

TEST(RankedQueueTest, TopIsHighestRank) {
  RankedQueue queue;
  queue.insert(make(1, 2.0));
  queue.insert(make(2, 5.0));
  queue.insert(make(3, 3.5));
  ASSERT_NE(queue.top(), nullptr);
  EXPECT_EQ(queue.top()->id.value, 2u);
  EXPECT_EQ(queue.size(), 3u);
}

TEST(RankedQueueTest, PopTopDrainsInRankOrder) {
  RankedQueue queue;
  queue.insert(make(1, 2.0));
  queue.insert(make(2, 5.0));
  queue.insert(make(3, 3.5));
  EXPECT_EQ(queue.pop_top()->id.value, 2u);
  EXPECT_EQ(queue.pop_top()->id.value, 3u);
  EXPECT_EQ(queue.pop_top()->id.value, 1u);
  EXPECT_TRUE(queue.empty());
}

TEST(RankedQueueTest, InsertReturnsWhetherNew) {
  RankedQueue queue;
  EXPECT_TRUE(queue.insert(make(1, 2.0)));
  EXPECT_FALSE(queue.insert(make(1, 4.0)));  // replacement
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_DOUBLE_EQ(queue.top()->rank, 4.0);  // reordered by new rank
}

TEST(RankedQueueTest, EraseById) {
  RankedQueue queue;
  queue.insert(make(1, 2.0));
  queue.insert(make(2, 5.0));
  auto removed = queue.erase(NotificationId{2});
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->id.value, 2u);
  EXPECT_FALSE(queue.contains(NotificationId{2}));
  EXPECT_EQ(queue.erase(NotificationId{2}), nullptr);
}

TEST(RankedQueueTest, TopNRespectsThresholdAndCount) {
  RankedQueue queue;
  queue.insert(make(1, 1.0));
  queue.insert(make(2, 3.0));
  queue.insert(make(3, 4.5));
  queue.insert(make(4, 2.0));
  auto top = queue.top_n(2, 2.0);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0]->id.value, 3u);
  EXPECT_EQ(top[1]->id.value, 2u);

  auto all_above = queue.top_n(100, 2.0);
  EXPECT_EQ(all_above.size(), 3u);  // rank 1.0 excluded

  EXPECT_TRUE(queue.top_n(0, 0.0).empty());
}

TEST(RankedQueueTest, EqualRanksPreferNewer) {
  RankedQueue queue;
  queue.insert(make(1, 3.0, 100));
  queue.insert(make(2, 3.0, 200));
  EXPECT_EQ(queue.top()->id.value, 2u);
}

TEST(RankedQueueTest, ClearEmpties) {
  RankedQueue queue;
  queue.insert(make(1, 1.0));
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.contains(NotificationId{1}));
}

TEST(RankedQueueTest, IterationIsRankOrdered) {
  RankedQueue queue;
  queue.insert(make(1, 1.0));
  queue.insert(make(2, 2.0));
  queue.insert(make(3, 3.0));
  double last = 99.0;
  for (const auto& n : queue) {
    EXPECT_LE(n->rank, last);
    last = n->rank;
  }
}

TEST(TopNAcrossTest, MergesAndDeduplicates) {
  RankedQueue a;
  RankedQueue b;
  a.insert(make(1, 5.0));
  a.insert(make(2, 1.0));
  b.insert(make(3, 4.0));
  b.insert(make(1, 5.0));  // same id in both queues

  auto top = top_n_across({&a, &b}, 3, 0.0);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0]->id.value, 1u);
  EXPECT_EQ(top[1]->id.value, 3u);
  EXPECT_EQ(top[2]->id.value, 2u);
}

TEST(TopNAcrossTest, ThresholdApplies) {
  RankedQueue a;
  RankedQueue b;
  a.insert(make(1, 1.0));
  b.insert(make(2, 4.0));
  auto top = top_n_across({&a, &b}, 10, 3.0);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0]->id.value, 2u);
}

}  // namespace
}  // namespace waif::core
