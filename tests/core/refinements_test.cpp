// Section 2.2 hybrid-model refinements: interrupting on-demand events, quiet
// windows, digest schedules and daily delivery budgets for on-line topics.
#include <gtest/gtest.h>

#include <memory>

#include "common/time.h"
#include "core/channel.h"
#include "core/topic_state.h"
#include "device/device.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace waif::core {
namespace {

using pubsub::Notification;
using pubsub::NotificationPtr;

class RefinementsTest : public ::testing::Test {
 protected:
  NotificationPtr make(std::uint64_t id, double rank,
                       SimDuration lifetime = kNever) {
    auto n = std::make_shared<Notification>();
    n->id = NotificationId{id};
    n->topic = "t";
    n->rank = rank;
    n->published_at = sim.now();
    n->expires_at = lifetime == kNever ? kNever : sim.now() + lifetime;
    return n;
  }

  std::unique_ptr<TopicState> make_state(TopicConfig config) {
    return std::make_unique<TopicState>(sim, channel, "t", config);
  }

  sim::Simulator sim;
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
  SimDeviceChannel channel{link, device};
};

// ------------------------------------------------------ interrupt threshold

TEST_F(RefinementsTest, TornadoWarningInterruptsOnDemandTopic) {
  TopicConfig config;
  config.mode = DeliveryMode::kOnDemand;
  config.policy = PolicyConfig::on_demand();  // normally nothing is pushed
  config.refinements.interrupt_threshold = 4.5;
  auto state = make_state(config);

  state->handle_notification(make(1, 3.0));  // routine weather update
  EXPECT_EQ(device.queue_size(), 0u);
  state->handle_notification(make(2, 5.0));  // tornado warning
  EXPECT_TRUE(device.contains(NotificationId{2}));
  EXPECT_EQ(state->stats().interrupts, 1u);
}

TEST_F(RefinementsTest, InterruptWaitsForTheLink) {
  TopicConfig config;
  config.policy = PolicyConfig::on_demand();
  config.refinements.interrupt_threshold = 4.5;
  auto state = make_state(config);
  link.set_state(net::LinkState::kDown);
  state->handle_notification(make(1, 5.0));
  EXPECT_EQ(device.queue_size(), 0u);
  EXPECT_EQ(state->outgoing_size(), 1u);
  link.set_state(net::LinkState::kUp);
  state->handle_network(net::LinkState::kUp);
  EXPECT_TRUE(device.contains(NotificationId{1}));
}

TEST_F(RefinementsTest, InterruptingEventStillExpires) {
  TopicConfig config;
  config.policy = PolicyConfig::on_demand();
  config.refinements.interrupt_threshold = 4.5;
  auto state = make_state(config);
  link.set_state(net::LinkState::kDown);
  state->handle_notification(make(1, 5.0, minutes(10.0)));
  sim.run_until(minutes(20.0));
  link.set_state(net::LinkState::kUp);
  state->handle_network(net::LinkState::kUp);
  EXPECT_EQ(device.queue_size(), 0u);  // expired before the link returned
  EXPECT_EQ(state->stats().expired_at_proxy, 1u);
}

// ------------------------------------------------------------ quiet windows

TEST_F(RefinementsTest, QuietWindowHoldsOnLineDeliveries) {
  TopicConfig config;
  config.mode = DeliveryMode::kOnLine;
  config.policy = PolicyConfig::online();
  config.refinements.quiet_windows = {{9 * kHour, 10 * kHour}};  // a meeting
  auto state = make_state(config);

  // Before the meeting: immediate delivery.
  sim.schedule_at(8 * kHour, [&] { state->handle_notification(make(1, 3.0)); });
  // During the meeting: held.
  sim.schedule_at(9 * kHour + 30 * kMinute,
                  [&] { state->handle_notification(make(2, 3.0)); });
  sim.run_until(9 * kHour + 45 * kMinute);
  EXPECT_TRUE(device.contains(NotificationId{1}));
  EXPECT_FALSE(device.contains(NotificationId{2}));
  EXPECT_TRUE(state->online_delivery_gated());

  // When the window closes, the held event is delivered automatically.
  sim.run_until(10 * kHour + 1);
  EXPECT_TRUE(device.contains(NotificationId{2}));
}

TEST_F(RefinementsTest, QuietWindowRepeatsDaily) {
  TopicConfig config;
  config.mode = DeliveryMode::kOnLine;
  config.policy = PolicyConfig::online();
  config.refinements.quiet_windows = {{9 * kHour, 10 * kHour}};
  auto state = make_state(config);
  sim.schedule_at(kDay + 9 * kHour + 10 * kMinute,
                  [&] { state->handle_notification(make(1, 3.0)); });
  sim.run_until(kDay + 9 * kHour + 30 * kMinute);
  EXPECT_EQ(device.queue_size(), 0u);  // held on day 2 as well
  sim.run_until(kDay + 10 * kHour + 1);
  EXPECT_TRUE(device.contains(NotificationId{1}));
}

// ------------------------------------------------------------- digest mode

TEST_F(RefinementsTest, DigestDeliversOnlyAtConfiguredInstants) {
  TopicConfig config;
  config.mode = DeliveryMode::kOnLine;
  config.policy = PolicyConfig::online();
  config.refinements.digest_times = {8 * kHour, 18 * kHour};
  auto state = make_state(config);

  sim.schedule_at(6 * kHour, [&] {
    state->handle_notification(make(1, 3.0));
    state->handle_notification(make(2, 2.0));
  });
  sim.run_until(7 * kHour);
  EXPECT_EQ(device.queue_size(), 0u);  // waiting for the morning digest

  sim.run_until(8 * kHour);
  EXPECT_EQ(device.queue_size(), 2u);
  EXPECT_EQ(state->stats().digest_deliveries, 2u);

  sim.schedule_at(12 * kHour, [&] { state->handle_notification(make(3, 3.0)); });
  sim.run_until(17 * kHour);
  EXPECT_FALSE(device.contains(NotificationId{3}));
  sim.run_until(18 * kHour);
  EXPECT_TRUE(device.contains(NotificationId{3}));
}

TEST_F(RefinementsTest, DigestSkipsOutagesGracefully) {
  TopicConfig config;
  config.mode = DeliveryMode::kOnLine;
  config.policy = PolicyConfig::online();
  config.refinements.digest_times = {8 * kHour};
  auto state = make_state(config);
  link.apply_schedule(
      net::OutageSchedule({net::Outage{7 * kHour, 9 * kHour}}, 2 * kDay));
  sim.schedule_at(6 * kHour, [&] { state->handle_notification(make(1, 3.0)); });
  // The 8am digest fires during the outage: nothing can be sent; the event
  // waits for the next digest (next day) rather than leaking out at 9am.
  sim.run_until(kDay);
  EXPECT_EQ(device.queue_size(), 0u);
  sim.run_until(kDay + 8 * kHour);
  EXPECT_TRUE(device.contains(NotificationId{1}));
}

// ----------------------------------------------------------- daily budgets

TEST_F(RefinementsTest, MaxPerDayCapsOnLineDeliveries) {
  TopicConfig config;
  config.mode = DeliveryMode::kOnLine;
  config.policy = PolicyConfig::online();
  config.refinements.max_per_day = 3;
  auto state = make_state(config);

  for (std::uint64_t i = 1; i <= 5; ++i) {
    state->handle_notification(make(i, static_cast<double>(i)));
  }
  EXPECT_EQ(device.queue_size(), 3u);
  EXPECT_EQ(state->forwarded_today(), 3u);
  EXPECT_EQ(state->outgoing_size(), 2u);

  // The budget resets at midnight and the leftovers flow.
  sim.run_until(kDay + 1);
  EXPECT_EQ(device.queue_size(), 5u);
  EXPECT_EQ(state->forwarded_today(), 2u);
}

TEST_F(RefinementsTest, BudgetDoesNotAffectOnDemandTopics) {
  TopicConfig config;
  config.mode = DeliveryMode::kOnDemand;
  config.policy = PolicyConfig::buffer(100);
  config.refinements.max_per_day = 1;
  auto state = make_state(config);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    state->handle_notification(make(i, 1.0));
  }
  EXPECT_EQ(device.queue_size(), 5u);  // the budget is an on-line refinement
}

TEST_F(RefinementsTest, GatedStatePersistsAcrossChecks) {
  TopicConfig config;
  config.mode = DeliveryMode::kOnLine;
  config.policy = PolicyConfig::online();
  config.refinements.max_per_day = 1;
  auto state = make_state(config);
  state->handle_notification(make(1, 1.0));
  state->handle_notification(make(2, 1.0));
  EXPECT_TRUE(state->online_delivery_gated());
  // try_forwarding while gated must not deliver.
  state->try_forwarding();
  state->try_forwarding();
  EXPECT_EQ(device.queue_size(), 1u);
}

// ------------------------------------------------------------ combinations

TEST_F(RefinementsTest, QuietWindowAndBudgetCompose) {
  TopicConfig config;
  config.mode = DeliveryMode::kOnLine;
  config.policy = PolicyConfig::online();
  config.refinements.quiet_windows = {{0, 6 * kHour}};
  config.refinements.max_per_day = 2;
  auto state = make_state(config);
  // Three events at 5am: quiet until 6am, then only two may flow today.
  sim.schedule_at(5 * kHour, [&] {
    state->handle_notification(make(1, 3.0));
    state->handle_notification(make(2, 2.0));
    state->handle_notification(make(3, 1.0));
  });
  sim.run_until(12 * kHour);
  EXPECT_EQ(device.queue_size(), 2u);
  sim.run_until(kDay + 6 * kHour + 1);
  EXPECT_EQ(device.queue_size(), 3u);
}

TEST_F(RefinementsTest, RemoveTopicCancelsDigestTimers) {
  // A proxy dropping a digest topic mid-run must not leave timers firing
  // into freed state. (Exercised via destruction + continued simulation.)
  TopicConfig config;
  config.mode = DeliveryMode::kOnLine;
  config.policy = PolicyConfig::online();
  config.refinements.digest_times = {8 * kHour};
  auto state = make_state(config);
  state->handle_notification(make(1, 3.0));
  state.reset();              // destroys the topic state
  sim.run_until(2 * kDay);    // digest instants pass without crashing
  EXPECT_EQ(device.queue_size(), 0u);
}

}  // namespace
}  // namespace waif::core
