#include "common/moving_stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace waif {
namespace {

TEST(MovingAverageTest, EmptyIsZero) {
  MovingAverage avg(4);
  EXPECT_TRUE(avg.empty());
  EXPECT_DOUBLE_EQ(avg.value(), 0.0);
  EXPECT_EQ(avg.count(), 0u);
}

TEST(MovingAverageTest, AveragesWithinWindow) {
  MovingAverage avg(4);
  avg.add(1.0);
  avg.add(2.0);
  avg.add(3.0);
  EXPECT_DOUBLE_EQ(avg.value(), 2.0);
  EXPECT_EQ(avg.count(), 3u);
}

TEST(MovingAverageTest, OldSamplesFallOut) {
  MovingAverage avg(2);
  avg.add(10.0);
  avg.add(20.0);
  avg.add(30.0);  // 10 falls out
  EXPECT_DOUBLE_EQ(avg.value(), 25.0);
  EXPECT_EQ(avg.count(), 2u);
}

TEST(MovingAverageTest, WindowOfOneTracksLastSample) {
  MovingAverage avg(1);
  avg.add(5.0);
  EXPECT_DOUBLE_EQ(avg.value(), 5.0);
  avg.add(-3.0);
  EXPECT_DOUBLE_EQ(avg.value(), -3.0);
}

TEST(MovingAverageTest, ResetClears) {
  MovingAverage avg(3);
  avg.add(1.0);
  avg.reset();
  EXPECT_TRUE(avg.empty());
  EXPECT_DOUBLE_EQ(avg.value(), 0.0);
}

TEST(IntervalAverageTest, NeedsTwoTimestamps) {
  IntervalAverage intervals(4);
  EXPECT_FALSE(intervals.value().has_value());
  intervals.add(100.0);
  EXPECT_FALSE(intervals.value().has_value());
  intervals.add(130.0);
  ASSERT_TRUE(intervals.value().has_value());
  EXPECT_DOUBLE_EQ(*intervals.value(), 30.0);
}

TEST(IntervalAverageTest, AveragesConsecutiveDifferences) {
  IntervalAverage intervals(8);
  intervals.add(0.0);
  intervals.add(10.0);
  intervals.add(30.0);
  intervals.add(60.0);
  // diffs: 10, 20, 30
  EXPECT_DOUBLE_EQ(*intervals.value(), 20.0);
}

TEST(IntervalAverageTest, WindowBoundsDifferences) {
  IntervalAverage intervals(2);
  intervals.add(0.0);
  intervals.add(1.0);   // diff 1
  intervals.add(3.0);   // diff 2
  intervals.add(103.0); // diff 100; diff 1 falls out
  EXPECT_DOUBLE_EQ(*intervals.value(), 51.0);
}

TEST(IntervalAverageTest, ResetForgetsLastTimestamp) {
  IntervalAverage intervals(4);
  intervals.add(5.0);
  intervals.reset();
  intervals.add(100.0);
  EXPECT_FALSE(intervals.value().has_value());
}

TEST(EwmaTest, FirstSampleSeeds) {
  Ewma ewma(0.5);
  EXPECT_TRUE(ewma.empty());
  ewma.add(10.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
}

TEST(EwmaTest, ConvergesTowardConstantInput) {
  Ewma ewma(0.3);
  ewma.add(0.0);
  for (int i = 0; i < 100; ++i) ewma.add(50.0);
  EXPECT_NEAR(ewma.value(), 50.0, 1e-6);
}

TEST(EwmaTest, AlphaOneTracksExactly) {
  Ewma ewma(1.0);
  ewma.add(1.0);
  ewma.add(42.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 42.0);
}

TEST(OnlineStatsTest, SingleSample) {
  OnlineStats stats;
  stats.add(3.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStatsTest, StddevIsSqrtVariance) {
  OnlineStats stats;
  stats.add(1.0);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 2.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), std::sqrt(2.0));
}

}  // namespace
}  // namespace waif
