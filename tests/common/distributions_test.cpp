#include "common/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace waif {
namespace {

constexpr int kSamples = 200000;

template <typename Sampler>
std::pair<double, double> mean_and_variance(const Sampler& sampler, Rng& rng,
                                            int samples = kSamples) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double value = static_cast<double>(sampler(rng));
    sum += value;
    sum_sq += value * value;
  }
  const double mean = sum / samples;
  return {mean, sum_sq / samples - mean * mean};
}

TEST(UniformRealTest, StaysInRange) {
  Rng rng(1);
  const UniformReal uniform(2.0, 5.0);
  for (int i = 0; i < 10000; ++i) {
    const double value = uniform(rng);
    EXPECT_GE(value, 2.0);
    EXPECT_LT(value, 5.0);
  }
}

TEST(UniformRealTest, MeanAndVariance) {
  Rng rng(2);
  auto [mean, variance] = mean_and_variance(UniformReal(0.0, 10.0), rng);
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(variance, 100.0 / 12.0, 0.2);
}

TEST(UniformRealTest, DegenerateRange) {
  Rng rng(3);
  const UniformReal uniform(4.0, 4.0);
  EXPECT_DOUBLE_EQ(uniform(rng), 4.0);
}

TEST(UniformIntTest, InclusiveBounds) {
  Rng rng(4);
  const UniformInt uniform(-3, 3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t value = uniform(rng);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    saw_lo |= value == -3;
    saw_hi |= value == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(BernoulliTest, ExtremesAreDeterministic) {
  Rng rng(5);
  const Bernoulli never(0.0);
  const Bernoulli always(1.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(never(rng));
    EXPECT_TRUE(always(rng));
  }
}

TEST(BernoulliTest, FrequencyMatchesP) {
  Rng rng(6);
  const Bernoulli coin(0.3);
  int heads = 0;
  for (int i = 0; i < kSamples; ++i) heads += coin(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / kSamples, 0.3, 0.01);
}

TEST(ExponentialTest, MeanAndVariance) {
  Rng rng(7);
  auto [mean, variance] = mean_and_variance(Exponential(4.0), rng);
  EXPECT_NEAR(mean, 4.0, 0.1);
  EXPECT_NEAR(variance, 16.0, 0.8);  // var = mean^2
}

TEST(ExponentialTest, NonNegative) {
  Rng rng(8);
  const Exponential exponential(1.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(exponential(rng), 0.0);
}

TEST(ExponentialTest, ZeroMeanYieldsZero) {
  Rng rng(9);
  const Exponential exponential(0.0);
  EXPECT_DOUBLE_EQ(exponential(rng), 0.0);
}

TEST(NormalTest, MeanAndStddev) {
  Rng rng(10);
  auto [mean, variance] = mean_and_variance(Normal(12.0, 3.0), rng);
  EXPECT_NEAR(mean, 12.0, 0.05);
  EXPECT_NEAR(std::sqrt(variance), 3.0, 0.05);
}

TEST(NormalTest, ZeroStddevIsConstant) {
  Rng rng(11);
  const Normal normal(7.0, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(normal(rng), 7.0);
}

TEST(LogNormalTest, TargetsTheMean) {
  Rng rng(12);
  auto [mean, variance] = mean_and_variance(LogNormal(100.0, 1.0), rng);
  EXPECT_NEAR(mean, 100.0, 3.0);
  EXPECT_GT(variance, 100.0 * 100.0);  // heavy-tailed: CV > 1
}

TEST(LogNormalTest, AlwaysPositive) {
  Rng rng(13);
  const LogNormal lognormal(5.0, 2.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(lognormal(rng), 0.0);
}

TEST(PoissonTest, SmallMean) {
  Rng rng(14);
  auto [mean, variance] = mean_and_variance(Poisson(3.5), rng);
  EXPECT_NEAR(mean, 3.5, 0.05);
  EXPECT_NEAR(variance, 3.5, 0.15);
}

TEST(PoissonTest, LargeMeanUsesNormalApproximation) {
  Rng rng(15);
  auto [mean, variance] = mean_and_variance(Poisson(200.0), rng, 50000);
  EXPECT_NEAR(mean, 200.0, 1.0);
  EXPECT_NEAR(variance, 200.0, 10.0);
}

TEST(PoissonTest, ZeroMean) {
  Rng rng(16);
  const Poisson poisson(0.0);
  EXPECT_EQ(poisson(rng), 0);
}

TEST(DurationShapeTest, ParseRoundTrips) {
  for (auto shape :
       {DurationShape::kConstant, DurationShape::kExponential,
        DurationShape::kUniform, DurationShape::kNormal}) {
    EXPECT_EQ(parse_duration_shape(to_string(shape)), shape);
  }
}

TEST(DurationShapeTest, ParseRejectsUnknown) {
  EXPECT_THROW(parse_duration_shape("weibull"), std::invalid_argument);
}

struct DurationCase {
  DurationShape shape;
  double mean_tolerance;  // relative
};

class DurationDistributionTest : public ::testing::TestWithParam<DurationCase> {};

TEST_P(DurationDistributionTest, MeanMatchesAndNonNegative) {
  Rng rng(17);
  const SimDuration target = hours(4.0);
  const DurationDistribution dist(GetParam().shape, target);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const SimDuration value = dist(rng);
    ASSERT_GE(value, 0);
    sum += static_cast<double>(value);
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean / static_cast<double>(target), 1.0,
              GetParam().mean_tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, DurationDistributionTest,
    ::testing::Values(DurationCase{DurationShape::kConstant, 1e-9},
                      DurationCase{DurationShape::kExponential, 0.02},
                      DurationCase{DurationShape::kUniform, 0.02},
                      DurationCase{DurationShape::kNormal, 0.02}));

TEST(DurationDistributionTest, ZeroMean) {
  Rng rng(18);
  const DurationDistribution dist(DurationShape::kExponential, 0);
  EXPECT_EQ(dist(rng), 0);
}

}  // namespace
}  // namespace waif
