#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace waif {
namespace {

TEST(ThreadPoolTest, ReportsRequestedThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPoolTest, ZeroSelectsHardwareThreads) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), ThreadPool::hardware_threads());
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, RunsEveryTaskUnderContention) {
  // Many more tasks than threads, all touching one counter: every task must
  // run exactly once regardless of which worker steals it.
  ThreadPool pool(4);
  constexpr int kTasks = 2000;
  std::atomic<int> executed{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&executed] { executed.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolTest, TasksRunOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  // Slow tasks so one worker cannot drain the queue alone.
  for (int i = 0; i < 32; ++i) {
    pool.submit([&mutex, &seen] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  // On a single-core host the scheduler may still serialize onto one
  // thread; require only that nothing crashed and all tasks ran.
  EXPECT_GE(seen.size(), 1u);
  EXPECT_LE(seen.size(), 4u);
}

TEST(ThreadPoolTest, AsyncReturnsResults) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.async([i] { return i * i; }));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.async(
      []() -> int { throw std::runtime_error("job failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitExceptionRethrownByWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("plain task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  // The error is consumed: the pool is reusable afterwards.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 16,
                            [](std::size_t i) {
                              if (i % 5 == 0) {
                                throw std::runtime_error("bad index");
                              }
                            }),
               std::runtime_error);
  // Pool survives: the non-throwing iterations completed.
  std::atomic<int> count{0};
  parallel_for(pool, 8, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  // Destroy the pool while work is still queued behind slow tasks; shutdown
  // must complete every task, not discard the backlog.
  std::atomic<int> executed{0};
  constexpr int kTasks = 64;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        executed.fetch_add(1);
      });
    }
    // No wait_idle(): the destructor must drain.
  }
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolTest, DrainedTaskMaySubmitFollowUpWork) {
  // A task that is drained by the destructor may itself submit follow-up
  // work; the drain must run that too instead of aborting or dropping it.
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.submit([&pool, &executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        pool.submit([&executed] { executed.fetch_add(1); });
      });
    }
    // No wait_idle(): some parents run only during destructor drain.
  }
  EXPECT_EQ(executed.load(), 8);
}

TEST(ThreadPoolTest, SingleTaskAfterQuiescenceAlwaysRuns) {
  // Regression for a lost wakeup: a lone task submitted to an otherwise idle
  // pool must always wake a worker, even when every worker is already parked
  // in its condition-variable wait.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran.store(true); });
    pool.wait_idle();
    ASSERT_TRUE(ran.load());
  }
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPoolTest, SubmitFromWorkerThread) {
  // A task submitting follow-up work must not deadlock.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.submit([&pool, &total] {
    total.fetch_add(1);
    for (int i = 0; i < 4; ++i) {
      pool.submit([&total] { total.fetch_add(1); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(total.load(), 5);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

}  // namespace
}  // namespace waif
