#include "common/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace waif {
namespace {

/// parse() over a brace list of tokens.
bool parse(FlagSet& flags, std::vector<const char*> args) {
  return flags.parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagSetTest, ParsesEqualsForm) {
  double rate = 1.0;
  FlagSet flags;
  flags.add_double("rate", &rate, "event rate");
  EXPECT_TRUE(parse(flags, {"--rate=32.5"}));
  EXPECT_DOUBLE_EQ(rate, 32.5);
}

TEST(FlagSetTest, ParsesSpaceForm) {
  std::int64_t count = 0;
  FlagSet flags;
  flags.add_int("count", &count, "how many");
  EXPECT_TRUE(parse(flags, {"--count", "42"}));
  EXPECT_EQ(count, 42);
}

TEST(FlagSetTest, BareBoolFlag) {
  bool verbose = false;
  FlagSet flags;
  flags.add_bool("verbose", &verbose, "chatty");
  EXPECT_TRUE(parse(flags, {"--verbose"}));
  EXPECT_TRUE(verbose);
}

TEST(FlagSetTest, ExplicitBoolValues) {
  bool on = false;
  FlagSet flags;
  flags.add_bool("on", &on, "switch");
  EXPECT_TRUE(parse(flags, {"--on=true"}));
  EXPECT_TRUE(on);
  EXPECT_TRUE(parse(flags, {"--on=false"}));
  EXPECT_FALSE(on);
  EXPECT_FALSE(parse(flags, {"--on=maybe"}));
}

TEST(FlagSetTest, StringFlag) {
  std::string name = "default";
  FlagSet flags;
  flags.add_string("name", &name, "a name");
  EXPECT_TRUE(parse(flags, {"--name=alice"}));
  EXPECT_EQ(name, "alice");
}

TEST(FlagSetTest, DurationSuffixes) {
  SimDuration d = 0;
  FlagSet flags;
  flags.add_duration("t", &d, "a duration");
  EXPECT_TRUE(parse(flags, {"--t=250ms"}));
  EXPECT_EQ(d, 250 * kMillisecond);
  EXPECT_TRUE(parse(flags, {"--t=90s"}));
  EXPECT_EQ(d, 90 * kSecond);
  EXPECT_TRUE(parse(flags, {"--t=1.5h"}));
  EXPECT_EQ(d, 90 * kMinute);
  EXPECT_TRUE(parse(flags, {"--t=5d"}));
  EXPECT_EQ(d, 5 * kDay);
  EXPECT_TRUE(parse(flags, {"--t=30min"}));
  EXPECT_EQ(d, 30 * kMinute);
  EXPECT_TRUE(parse(flags, {"--t=17"}));  // bare number = seconds
  EXPECT_EQ(d, 17 * kSecond);
}

TEST(FlagSetTest, BadDurationRejected) {
  SimDuration d = 0;
  FlagSet flags;
  flags.add_duration("t", &d, "a duration");
  EXPECT_FALSE(parse(flags, {"--t=fast"}));
  EXPECT_FALSE(parse(flags, {"--t=10parsecs"}));
}

TEST(FlagSetTest, UnknownFlagRejected) {
  FlagSet flags;
  EXPECT_FALSE(parse(flags, {"--nope=1"}));
}

TEST(FlagSetTest, MissingValueRejected) {
  std::int64_t count = 0;
  FlagSet flags;
  flags.add_int("count", &count, "how many");
  EXPECT_FALSE(parse(flags, {"--count"}));
}

TEST(FlagSetTest, NonFlagArgumentRejected) {
  FlagSet flags;
  EXPECT_FALSE(parse(flags, {"positional"}));
}

TEST(FlagSetTest, HelpStopsParsing) {
  bool verbose = false;
  FlagSet flags("my tool");
  flags.add_bool("verbose", &verbose, "chatty");
  EXPECT_FALSE(parse(flags, {"--help"}));
}

TEST(FlagSetTest, HelpListsFlagsAndDefaults) {
  double rate = 32.0;
  FlagSet flags("tool description");
  flags.add_double("rate", &rate, "event rate per day");
  const std::string help = flags.help();
  EXPECT_NE(help.find("tool description"), std::string::npos);
  EXPECT_NE(help.find("--rate"), std::string::npos);
  EXPECT_NE(help.find("32"), std::string::npos);
  EXPECT_NE(help.find("event rate per day"), std::string::npos);
}

TEST(FlagSetTest, MultipleFlagsInOneLine) {
  double uf = 0;
  std::int64_t max = 0;
  SimDuration horizon = 0;
  FlagSet flags;
  flags.add_double("uf", &uf, "");
  flags.add_int("max", &max, "");
  flags.add_duration("horizon", &horizon, "");
  EXPECT_TRUE(parse(flags, {"--uf=2", "--max", "8", "--horizon=365d"}));
  EXPECT_DOUBLE_EQ(uf, 2.0);
  EXPECT_EQ(max, 8);
  EXPECT_EQ(horizon, kYear);
}

TEST(FlagSetTest, ParseDurationDirect) {
  EXPECT_EQ(FlagSet::parse_duration("4.2h"), hours(4.2));
  EXPECT_EQ(FlagSet::parse_duration("0s"), 0);
  EXPECT_FALSE(FlagSet::parse_duration("").has_value());
  EXPECT_FALSE(FlagSet::parse_duration("h").has_value());
}

TEST(FlagSetTest, BadNumericValueRejected) {
  std::int64_t count = 7;
  FlagSet flags;
  flags.add_int("count", &count, "");
  EXPECT_FALSE(parse(flags, {"--count=seven"}));
  EXPECT_EQ(count, 7);  // untouched
}

}  // namespace
}  // namespace waif
