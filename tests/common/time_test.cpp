#include "common/time.h"

#include <gtest/gtest.h>

namespace waif {
namespace {

TEST(TimeTest, UnitConstantsCompose) {
  EXPECT_EQ(kMillisecond, 1000);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_EQ(kYear, 365 * kDay);
}

TEST(TimeTest, ConstructorsMatchConstants) {
  EXPECT_EQ(seconds(1.0), kSecond);
  EXPECT_EQ(minutes(2.0), 2 * kMinute);
  EXPECT_EQ(hours(0.5), 30 * kMinute);
  EXPECT_EQ(days(1.0), kDay);
  EXPECT_EQ(milliseconds(5), 5 * kMillisecond);
  EXPECT_EQ(microseconds(7), 7);
}

TEST(TimeTest, FractionalConstruction) {
  EXPECT_EQ(seconds(0.25), 250 * kMillisecond);
  EXPECT_EQ(hours(1.5), 90 * kMinute);
}

TEST(TimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_hours(kDay), 24.0);
  EXPECT_DOUBLE_EQ(to_days(kYear), 365.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(42.0)), 42.0);
}

TEST(TimeTest, OneVirtualYearFitsComfortably) {
  // The paper's runs last one virtual year; the representation must have
  // plenty of headroom.
  EXPECT_LT(kYear, kNever / 1000);
}

TEST(TimeTest, FormatDurationPicksNaturalUnit) {
  EXPECT_EQ(format_duration(500), "500us");
  EXPECT_EQ(format_duration(5 * kMillisecond), "5ms");
  EXPECT_EQ(format_duration(3 * kSecond), "3s");
  EXPECT_EQ(format_duration(90 * kSecond), "1.5min");
  EXPECT_EQ(format_duration(kHour * 4 + kMinute * 12), "4.2h");
  EXPECT_EQ(format_duration(54 * kDay), "54d");
}

TEST(TimeTest, FormatDurationNegative) {
  EXPECT_EQ(format_duration(-3 * kSecond), "-3s");
}

}  // namespace
}  // namespace waif
