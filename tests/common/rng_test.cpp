#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace waif {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, KnownFirstOutputsStayStable) {
  // Regression pin: if these change, every experiment's trace changes.
  Rng rng(12345);
  const std::uint64_t first = rng();
  Rng again(12345);
  EXPECT_EQ(first, again());
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) values.insert(rng());
  EXPECT_GT(values.size(), 95u);  // not stuck
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.next_double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowCoversSmallRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, NextBelowZeroBound) {
  Rng rng(13);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng root(99);
  Rng a = root.split();
  Rng b = root.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng root1(99);
  Rng root2(99);
  Rng a = root1.split();
  Rng b = root2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, JumpChangesState) {
  Rng a(5);
  Rng b(5);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == UINT64_MAX);
  Rng rng(3);
  EXPECT_NE(rng(), rng());
}

TEST(RngTest, SplitMix64KnownSequenceAdvances) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace waif
