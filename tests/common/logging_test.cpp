#include "common/logging.h"

#include <gtest/gtest.h>

namespace waif {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kOff); }
};

TEST_F(LoggingTest, OffByDefault) {
  EXPECT_EQ(log_level(), LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
}

TEST_F(LoggingTest, LevelGatesLowerSeverities) {
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
}

TEST_F(LoggingTest, DebugEnablesEverything) {
  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));
}

TEST_F(LoggingTest, OffIsNeverEnabled) {
  set_log_level(LogLevel::kDebug);
  EXPECT_FALSE(log_enabled(LogLevel::kOff));
}

TEST_F(LoggingTest, MessageWhileDisabledIsANoOp) {
  // Must not crash or print; nothing observable to assert beyond survival.
  log_message(LogLevel::kInfo, 0, "test", "suppressed");
  log_message(LogLevel::kError, -1, "test", "suppressed");
}

}  // namespace
}  // namespace waif
