#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace waif::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.next_time(), kNever);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(30, [&] { order.push_back(3); });
  queue.schedule(10, [&] { order.push_back(1); });
  queue.schedule(20, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakInSchedulingOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, PopReportsTime) {
  EventQueue queue;
  queue.schedule(123, [] {});
  EXPECT_EQ(queue.next_time(), 123);
  auto fired = queue.pop();
  EXPECT_EQ(fired.time, 123);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  EventHandle handle = queue.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(handle.active());
  handle.cancel();
  EXPECT_FALSE(handle.active());
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.next_time(), kNever);
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue queue;
  EventHandle handle = queue.schedule(10, [] {});
  handle.cancel();
  handle.cancel();
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, CancelledEntryBuriedInHeapIsSkipped) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(10, [&] { order.push_back(1); });
  EventHandle mid = queue.schedule(20, [&] { order.push_back(2); });
  queue.schedule(30, [&] { order.push_back(3); });
  mid.cancel();
  EXPECT_EQ(queue.size(), 2u);
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, HandleInactiveAfterFiring) {
  EventQueue queue;
  EventHandle handle = queue.schedule(10, [] {});
  queue.pop().fn();
  EXPECT_FALSE(handle.active());
  handle.cancel();  // no-op after firing
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.active());
  handle.cancel();  // must not crash
}

TEST(EventQueueTest, ClearDropsEverythingAndInertsHandles) {
  EventQueue queue;
  EventHandle handle = queue.schedule(10, [] {});
  queue.schedule(20, [] {});
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(handle.active());
}

TEST(EventQueueTest, HandleOutlivesQueueSafely) {
  EventHandle handle;
  {
    EventQueue queue;
    handle = queue.schedule(10, [] {});
  }
  handle.cancel();  // queue gone; must not crash
}

TEST(EventQueueTest, SizeTracksLiveEventsExactly) {
  EventQueue queue;
  EventHandle a = queue.schedule(1, [] {});
  EventHandle b = queue.schedule(2, [] {});
  queue.schedule(3, [] {});
  EXPECT_EQ(queue.size(), 3u);
  a.cancel();
  EXPECT_EQ(queue.size(), 2u);
  b.cancel();
  EXPECT_EQ(queue.size(), 1u);
  queue.pop();
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, ExtremeTimesOrderCorrectly) {
  EventQueue queue;
  queue.schedule(kNever - 1, [] {});
  queue.schedule(0, [] {});
  EXPECT_EQ(queue.next_time(), 0);
}

}  // namespace
}  // namespace waif::sim
