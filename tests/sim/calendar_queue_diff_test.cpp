// Differential property test: the calendar queue vs the retired binary heap.
//
// Randomized seeded schedules — interleavings of schedule/cancel/pop with
// duplicate timestamps, near-kNever outliers, cancel-at-top and bulk drains —
// run through both sim::EventQueue (the calendar queue) and
// sim::ReferenceEventQueue (the old std::priority_queue implementation),
// asserting identical pop order, identical next_time() at every step, and
// identical cancel/size semantics. Any divergence in the calendar's bucket
// logic (cursor maintenance, year scan, resize/width re-estimation) shows up
// here within a few hundred operations.
#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/reference_event_queue.h"

namespace waif::sim {
namespace {

/// Drives both queues through the same operation stream and checks lockstep
/// equivalence at every step.
class LockstepDriver {
 public:
  void schedule(SimTime when) {
    const std::size_t tag = next_tag_++;
    handles_.push_back(queue_.schedule(when, [this, tag] { fired_.push_back(tag); }));
    ref_handles_.push_back(
        ref_.schedule(when, [this, tag] { ref_fired_.push_back(tag); }));
    check_invariants();
  }

  void cancel(std::size_t index) {
    ASSERT_EQ(handles_[index].active(), ref_handles_[index].active());
    handles_[index].cancel();
    ref_handles_[index].cancel();
    check_invariants();
  }

  void pop() {
    ASSERT_FALSE(queue_.empty());
    ASSERT_FALSE(ref_.empty());
    const SimTime t = queue_.next_time();
    const SimTime rt = ref_.next_time();
    ASSERT_EQ(t, rt);
    auto fired = queue_.pop();
    auto ref_fired = ref_.pop();
    ASSERT_EQ(fired.time, ref_fired.time);
    fired.fn();
    ref_fired.fn();
    ASSERT_EQ(fired_.size(), ref_fired_.size());
    ASSERT_EQ(fired_.back(), ref_fired_.back())
        << "pop order diverged at pop #" << fired_.size();
    check_invariants();
  }

  void drain() {
    while (!queue_.empty()) pop();
    ASSERT_TRUE(ref_.empty());
  }

  void check_invariants() {
    ASSERT_EQ(queue_.empty(), ref_.empty());
    ASSERT_EQ(queue_.size(), ref_.size());
    ASSERT_EQ(queue_.next_time(), ref_.next_time());
  }

  std::size_t live_handles() const { return handles_.size(); }
  EventQueue& queue() { return queue_; }

  const std::vector<std::size_t>& fired() const { return fired_; }

 private:
  EventQueue queue_;
  ReferenceEventQueue ref_;
  std::vector<EventHandle> handles_;
  std::vector<ReferenceEventHandle> ref_handles_;
  std::vector<std::size_t> fired_;
  std::vector<std::size_t> ref_fired_;
  std::size_t next_tag_ = 0;
};

/// One randomized interleaving: mixes schedules (several time regimes),
/// cancels (including just-scheduled and about-to-pop entries) and pops.
void run_random_interleaving(std::uint64_t seed, int operations) {
  Rng rng(seed);
  LockstepDriver driver;
  SimTime clock = 0;  // pops only move forward, like the simulator's clock

  for (int op = 0; op < operations; ++op) {
    const std::uint64_t dice = rng.next_below(100);
    if (dice < 55 || driver.queue().empty()) {
      // Schedule in one of several regimes to stress bucket-width adaptation:
      // dense duplicates, near-future, uniform-far, and kNever outliers.
      SimTime when = clock;
      const std::uint64_t regime = rng.next_below(10);
      if (regime < 3) {
        when = clock + static_cast<SimTime>(rng.next_below(4));  // duplicates
      } else if (regime < 7) {
        when = clock + static_cast<SimTime>(rng.next_below(1000));
      } else if (regime < 9) {
        when = clock + static_cast<SimTime>(rng.next_below(1'000'000'000));
      } else {
        when = kNever - static_cast<SimTime>(rng.next_below(3)) - 1;
      }
      driver.schedule(when);
    } else if (dice < 75 && driver.live_handles() > 0) {
      driver.cancel(rng.next_below(driver.live_handles()));
    } else {
      const SimTime next = driver.queue().next_time();
      if (next != kNever) clock = next;
      driver.pop();
    }
  }
  driver.drain();
}

TEST(CalendarQueueDiffTest, RandomInterleavingsMatchReferenceHeap) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_random_interleaving(seed, 600);
  }
}

TEST(CalendarQueueDiffTest, LongRunExercisesResizeAndShrink) {
  // Enough operations to grow past several resize thresholds and then
  // drain through the shrink path repeatedly.
  run_random_interleaving(0xCA1E7DA5, 6000);
}

TEST(CalendarQueueDiffTest, DuplicateTimestampsPreserveSchedulingOrder) {
  LockstepDriver driver;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) driver.schedule(7);  // all identical
    for (int i = 0; i < 20; ++i) driver.pop();
  }
  // Tags must fire in exact scheduling order.
  for (std::size_t i = 0; i < driver.fired().size(); ++i) {
    ASSERT_EQ(driver.fired()[i], i);
  }
}

TEST(CalendarQueueDiffTest, CancelAtTopThenPopMatches) {
  Rng rng(42);
  LockstepDriver driver;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 5; ++i) {
      driver.schedule(static_cast<SimTime>(rng.next_below(50)));
    }
    // Cancel the most recent two (often including the pending top), then pop
    // the rest.
    driver.cancel(driver.live_handles() - 1);
    driver.cancel(driver.live_handles() - 2);
    while (!driver.queue().empty()) driver.pop();
  }
}

TEST(CalendarQueueDiffTest, NeverSentinelsCoexistWithDenseTraffic) {
  LockstepDriver driver;
  driver.schedule(kNever - 1);  // far-future outlier parked behind everything
  Rng rng(7);
  for (int round = 0; round < 300; ++round) {
    driver.schedule(static_cast<SimTime>(round * 10 + rng.next_below(10)));
    if (round % 3 == 0 && !driver.queue().empty()) driver.pop();
  }
  driver.drain();
}

TEST(CalendarQueueDiffTest, MassCancellationLeavesEquivalentQueues) {
  Rng rng(99);
  LockstepDriver driver;
  for (int i = 0; i < 500; ++i) {
    driver.schedule(static_cast<SimTime>(rng.next_below(100000)));
  }
  // Cancel ~90% of everything, scattered.
  for (std::size_t i = 0; i < driver.live_handles(); ++i) {
    if (rng.next_below(10) != 0) driver.cancel(i);
  }
  driver.drain();
}

}  // namespace
}  // namespace waif::sim
