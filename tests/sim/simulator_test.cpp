#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/time.h"

namespace waif::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<SimTime> observed;
  sim.schedule_at(100, [&] { observed.push_back(sim.now()); });
  sim.schedule_at(200, [&] { observed.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(observed, (std::vector<SimTime>{100, 200}));
  EXPECT_EQ(sim.fired_events(), 2u);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(50, [&] {
    sim.schedule_after(25, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 75);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);  // events at exactly the deadline fire
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockPastLastEvent) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run_until(100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, EventsScheduledDuringRunFire) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] {
    order.push_back(1);
    sim.schedule_at(15, [&] { order.push_back(2); });
  });
  sim.schedule_at(20, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(20, [&] { ++fired; });
  sim.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10);  // clock not advanced to the deadline after stop
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  EventHandle handle = sim.schedule_at(10, [&] { fired = true; });
  handle.cancel();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, SameInstantFiresInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(42, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, RunOnEmptyQueueLeavesClock) {
  Simulator sim;
  sim.run();
  EXPECT_EQ(sim.now(), 0);
}

TEST(SimulatorTest, SequentialRunUntilSegments) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(kDay, [&] { ++fired; });
  sim.schedule_at(2 * kDay, [&] { ++fired; });
  sim.run_until(kDay);
  EXPECT_EQ(fired, 1);
  sim.run_until(3 * kDay);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 3 * kDay);
}

TEST(SimulatorTest, ClearCancelsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.clear();
  sim.run();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace waif::sim
