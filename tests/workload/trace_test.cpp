#include "workload/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/time.h"

namespace waif::workload {
namespace {

ScenarioConfig short_config() {
  ScenarioConfig config;
  config.horizon = 30 * kDay;  // keep unit tests fast
  return config;
}

TEST(ArrivalsTest, RateMatchesEventFrequency) {
  ScenarioConfig config = short_config();
  config.event_frequency = 32.0;
  Rng rng(1);
  auto arrivals = generate_arrivals(config, rng);
  const double expected = 32.0 * 30.0;
  EXPECT_NEAR(static_cast<double>(arrivals.size()), expected,
              4.0 * std::sqrt(expected));  // 4 sigma of Poisson noise
}

TEST(ArrivalsTest, SortedAndWithinHorizon) {
  ScenarioConfig config = short_config();
  Rng rng(2);
  auto arrivals = generate_arrivals(config, rng);
  ASSERT_FALSE(arrivals.empty());
  EXPECT_TRUE(std::is_sorted(
      arrivals.begin(), arrivals.end(),
      [](const Arrival& a, const Arrival& b) { return a.time < b.time; }));
  EXPECT_GE(arrivals.front().time, 0);
  EXPECT_LT(arrivals.back().time, config.horizon);
}

TEST(ArrivalsTest, RanksInRange) {
  ScenarioConfig config = short_config();
  config.rank_lo = 1.0;
  config.rank_hi = 4.0;
  Rng rng(3);
  for (const Arrival& arrival : generate_arrivals(config, rng)) {
    EXPECT_GE(arrival.rank, 1.0);
    EXPECT_LT(arrival.rank, 4.0);
  }
}

TEST(ArrivalsTest, NoExpirationsByDefault) {
  ScenarioConfig config = short_config();
  Rng rng(4);
  for (const Arrival& arrival : generate_arrivals(config, rng)) {
    EXPECT_EQ(arrival.lifetime, kNever);
  }
}

TEST(ArrivalsTest, ExpirationMeanMatches) {
  ScenarioConfig config = short_config();
  config.horizon = 365 * kDay;
  config.mean_expiration = hours(4.0);
  Rng rng(5);
  auto arrivals = generate_arrivals(config, rng);
  double sum = 0.0;
  std::size_t expiring = 0;
  for (const Arrival& arrival : arrivals) {
    ASSERT_NE(arrival.lifetime, kNever);
    sum += static_cast<double>(arrival.lifetime);
    ++expiring;
  }
  ASSERT_GT(expiring, 0u);
  EXPECT_NEAR(sum / static_cast<double>(expiring) /
                  static_cast<double>(hours(4.0)),
              1.0, 0.05);
}

TEST(ArrivalsTest, ExpiringFractionRespected) {
  ScenarioConfig config = short_config();
  config.horizon = 365 * kDay;
  config.mean_expiration = hours(1.0);
  config.expiring_fraction = 0.5;
  Rng rng(6);
  auto arrivals = generate_arrivals(config, rng);
  const auto expiring = static_cast<double>(std::count_if(
      arrivals.begin(), arrivals.end(),
      [](const Arrival& a) { return a.lifetime != kNever; }));
  EXPECT_NEAR(expiring / static_cast<double>(arrivals.size()), 0.5, 0.05);
}

TEST(ArrivalsTest, ZeroFrequencyYieldsNothing) {
  ScenarioConfig config = short_config();
  config.event_frequency = 0.0;
  Rng rng(7);
  EXPECT_TRUE(generate_arrivals(config, rng).empty());
}

TEST(ReadsTest, DailyFrequencyRespected) {
  ScenarioConfig config;
  config.horizon = 365 * kDay;
  config.user_frequency = 2.0;
  Rng rng(8);
  auto reads = generate_reads(config, rng);
  EXPECT_NEAR(static_cast<double>(reads.size()), 2.0 * 365.0, 80.0);
}

TEST(ReadsTest, FractionalFrequencyAccumulates) {
  ScenarioConfig config;
  config.horizon = 365 * kDay;
  config.user_frequency = 0.25;  // about every 4 days
  Rng rng(9);
  auto reads = generate_reads(config, rng);
  EXPECT_NEAR(static_cast<double>(reads.size()), 0.25 * 365.0, 30.0);
}

TEST(ReadsTest, SortedWithinHorizon) {
  ScenarioConfig config;
  config.horizon = 60 * kDay;
  Rng rng(10);
  auto reads = generate_reads(config, rng);
  ASSERT_FALSE(reads.empty());
  EXPECT_TRUE(std::is_sorted(reads.begin(), reads.end()));
  EXPECT_GE(reads.front(), 0);
  EXPECT_LT(reads.back(), config.horizon);
}

TEST(ReadsTest, ReadsFallInAwakeHours) {
  ScenarioConfig config;
  config.horizon = 365 * kDay;
  config.user_frequency = 4.0;
  config.awake_start_jitter = 10 * kMinute;  // keep the window tight
  Rng rng(11);
  auto reads = generate_reads(config, rng);
  // Awake window starts around 7am +- jitter and lasts 16-17h; nothing
  // should land in the small hours (2am-5am) of the same day.
  for (SimTime read : reads) {
    const SimTime of_day = read % kDay;
    const bool small_hours = of_day > 2 * kHour && of_day < 5 * kHour;
    EXPECT_FALSE(small_hours) << "read at " << format_duration(of_day);
  }
}

TEST(ReadsTest, ZeroFrequencyYieldsNothing) {
  ScenarioConfig config;
  config.user_frequency = 0.0;
  Rng rng(12);
  EXPECT_TRUE(generate_reads(config, rng).empty());
}

TEST(OutagesTest, FractionCalibrated) {
  ScenarioConfig config;
  config.horizon = 365 * kDay;
  for (double target : {0.1, 0.5, 0.9}) {
    config.outage_fraction = target;
    Rng rng(13);
    auto schedule = generate_outages(config, rng);
    EXPECT_NEAR(schedule.downtime_fraction(), target, 0.08)
        << "target " << target;
  }
}

TEST(OutagesTest, ExtremesAreExact) {
  ScenarioConfig config;
  config.horizon = 30 * kDay;
  Rng rng(14);
  config.outage_fraction = 0.0;
  EXPECT_DOUBLE_EQ(generate_outages(config, rng).downtime_fraction(), 0.0);
  config.outage_fraction = 1.0;
  EXPECT_DOUBLE_EQ(generate_outages(config, rng).downtime_fraction(), 1.0);
}

TEST(RankChangesTest, NoneByDefault) {
  ScenarioConfig config = short_config();
  Rng arrivals_rng(15);
  Rng changes_rng(16);
  auto arrivals = generate_arrivals(config, arrivals_rng);
  EXPECT_TRUE(generate_rank_changes(config, arrivals, changes_rng).empty());
}

TEST(RankChangesTest, DropsTargetFractionAndComeAfterPublish) {
  ScenarioConfig config;
  config.horizon = 365 * kDay;
  config.rank_drop_fraction = 0.2;
  config.dropped_rank = 0.0;
  Rng arrivals_rng(17);
  Rng changes_rng(18);
  auto arrivals = generate_arrivals(config, arrivals_rng);
  auto changes = generate_rank_changes(config, arrivals, changes_rng);
  EXPECT_NEAR(static_cast<double>(changes.size()) /
                  static_cast<double>(arrivals.size()),
              0.2, 0.03);
  for (const RankChange& change : changes) {
    EXPECT_GE(change.time, arrivals[change.arrival_index].time);
    EXPECT_DOUBLE_EQ(change.new_rank, 0.0);
  }
  EXPECT_TRUE(std::is_sorted(changes.begin(), changes.end(),
                             [](const RankChange& a, const RankChange& b) {
                               return a.time < b.time;
                             }));
}

TEST(RankChangesTest, RaisesBoostRank) {
  ScenarioConfig config;
  config.horizon = 90 * kDay;
  config.rank_raise_fraction = 0.5;
  Rng arrivals_rng(19);
  Rng changes_rng(20);
  auto arrivals = generate_arrivals(config, arrivals_rng);
  auto changes = generate_rank_changes(config, arrivals, changes_rng);
  ASSERT_FALSE(changes.empty());
  for (const RankChange& change : changes) {
    EXPECT_GT(change.new_rank, arrivals[change.arrival_index].rank);
  }
}

TEST(TraceTest, DeterministicForSeed) {
  ScenarioConfig config = short_config();
  config.outage_fraction = 0.3;
  config.mean_expiration = hours(2.0);
  const Trace a = generate_trace(config, 42);
  const Trace b = generate_trace(config, 42);
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
    EXPECT_EQ(a.arrivals[i].time, b.arrivals[i].time);
    EXPECT_DOUBLE_EQ(a.arrivals[i].rank, b.arrivals[i].rank);
    EXPECT_EQ(a.arrivals[i].lifetime, b.arrivals[i].lifetime);
  }
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.outages.count(), b.outages.count());
}

TEST(TraceTest, DifferentSeedsDiffer) {
  ScenarioConfig config = short_config();
  const Trace a = generate_trace(config, 1);
  const Trace b = generate_trace(config, 2);
  ASSERT_FALSE(a.arrivals.empty());
  ASSERT_FALSE(b.arrivals.empty());
  EXPECT_NE(a.arrivals.front().time, b.arrivals.front().time);
}

TEST(TraceTest, OutageParametersDoNotPerturbArrivals) {
  // Independent streams: sweeping the outage fraction must keep the arrival
  // sequence identical, which is what makes paper-style sweeps comparable.
  ScenarioConfig with = short_config();
  with.outage_fraction = 0.5;
  ScenarioConfig without = short_config();
  const Trace a = generate_trace(with, 7);
  const Trace b = generate_trace(without, 7);
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
    EXPECT_EQ(a.arrivals[i].time, b.arrivals[i].time);
  }
  EXPECT_EQ(a.reads, b.reads);
}

}  // namespace
}  // namespace waif::workload
