#include "workload/serialization.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/time.h"
#include "workload/trace.h"

namespace waif::workload {
namespace {

Trace sample_trace() {
  ScenarioConfig config;
  config.horizon = 30 * kDay;
  config.outage_fraction = 0.4;
  config.mean_expiration = hours(6.0);
  config.rank_drop_fraction = 0.1;
  return generate_trace(config, 7);
}

TEST(TraceSerializationTest, RoundTripsExactly) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  write_trace(buffer, original);
  const Trace loaded = read_trace(buffer);

  EXPECT_EQ(loaded.horizon, original.horizon);
  ASSERT_EQ(loaded.arrivals.size(), original.arrivals.size());
  for (std::size_t i = 0; i < original.arrivals.size(); ++i) {
    EXPECT_EQ(loaded.arrivals[i].time, original.arrivals[i].time);
    EXPECT_DOUBLE_EQ(loaded.arrivals[i].rank, original.arrivals[i].rank);
    EXPECT_EQ(loaded.arrivals[i].lifetime, original.arrivals[i].lifetime);
  }
  EXPECT_EQ(loaded.reads, original.reads);
  ASSERT_EQ(loaded.rank_changes.size(), original.rank_changes.size());
  for (std::size_t i = 0; i < original.rank_changes.size(); ++i) {
    EXPECT_EQ(loaded.rank_changes[i].time, original.rank_changes[i].time);
    EXPECT_EQ(loaded.rank_changes[i].arrival_index,
              original.rank_changes[i].arrival_index);
  }
  ASSERT_EQ(loaded.outages.count(), original.outages.count());
  EXPECT_DOUBLE_EQ(loaded.outages.downtime_fraction(),
                   original.outages.downtime_fraction());
}

TEST(TraceSerializationTest, NeverLifetimeSurvives) {
  Trace trace;
  trace.horizon = kDay;
  trace.arrivals.push_back(Arrival{100, 2.5, kNever});
  trace.arrivals.push_back(Arrival{200, 1.0, seconds(30.0)});
  std::stringstream buffer;
  write_trace(buffer, trace);
  const Trace loaded = read_trace(buffer);
  EXPECT_EQ(loaded.arrivals[0].lifetime, kNever);
  EXPECT_EQ(loaded.arrivals[1].lifetime, seconds(30.0));
}

TEST(TraceSerializationTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "waif-trace v1\n"
      "\n"
      "horizon 1000\n"
      "# another\n"
      "arrival 5 3.5 never\n");
  const Trace trace = read_trace(in);
  EXPECT_EQ(trace.horizon, 1000);
  ASSERT_EQ(trace.arrivals.size(), 1u);
}

TEST(TraceSerializationTest, UnsortedInputIsNormalized) {
  std::stringstream in(
      "waif-trace v1\n"
      "horizon 1000\n"
      "arrival 500 1.0 never\n"
      "arrival 100 2.0 never\n"
      "read 900\n"
      "read 300\n");
  const Trace trace = read_trace(in);
  EXPECT_EQ(trace.arrivals[0].time, 100);
  EXPECT_EQ(trace.arrivals[1].time, 500);
  EXPECT_EQ(trace.reads.front(), 300);
}

TEST(TraceSerializationTest, MissingHeaderRejected) {
  std::stringstream in("horizon 1000\n");
  EXPECT_THROW(read_trace(in), std::invalid_argument);
}

TEST(TraceSerializationTest, MissingHorizonRejected) {
  std::stringstream in("waif-trace v1\narrival 1 1.0 never\n");
  EXPECT_THROW(read_trace(in), std::invalid_argument);
}

TEST(TraceSerializationTest, UnknownKeywordRejected) {
  std::stringstream in("waif-trace v1\nhorizon 10\nbogus 1 2 3\n");
  EXPECT_THROW(read_trace(in), std::invalid_argument);
}

TEST(TraceSerializationTest, MalformedArrivalRejected) {
  std::stringstream in("waif-trace v1\nhorizon 10\narrival 5\n");
  EXPECT_THROW(read_trace(in), std::invalid_argument);
}

TEST(TraceSerializationTest, RankChangeIndexValidated) {
  std::stringstream in(
      "waif-trace v1\nhorizon 10\narrival 1 1.0 never\n"
      "rankchange 5 99 0.0\n");
  EXPECT_THROW(read_trace(in), std::invalid_argument);
}

TEST(ScenarioSerializationTest, RoundTrips) {
  ScenarioConfig original;
  original.event_frequency = 48.0;
  original.user_frequency = 0.5;
  original.max = 30;
  original.threshold = 4.5;
  original.outage_fraction = 0.75;
  original.mean_outage = 2 * kDay;
  original.mean_expiration = hours(4.2);
  original.expiration_shape = DurationShape::kUniform;
  original.rank_drop_fraction = 0.25;
  original.horizon = 90 * kDay;

  std::stringstream buffer;
  write_scenario(buffer, original);
  const ScenarioConfig loaded = read_scenario(buffer);

  EXPECT_DOUBLE_EQ(loaded.event_frequency, 48.0);
  EXPECT_DOUBLE_EQ(loaded.user_frequency, 0.5);
  EXPECT_EQ(loaded.max, 30);
  EXPECT_DOUBLE_EQ(loaded.threshold, 4.5);
  EXPECT_DOUBLE_EQ(loaded.outage_fraction, 0.75);
  EXPECT_EQ(loaded.mean_outage, 2 * kDay);
  EXPECT_EQ(loaded.mean_expiration, hours(4.2));
  EXPECT_EQ(loaded.expiration_shape, DurationShape::kUniform);
  EXPECT_DOUBLE_EQ(loaded.rank_drop_fraction, 0.25);
  EXPECT_EQ(loaded.horizon, 90 * kDay);
}

TEST(ScenarioSerializationTest, MissingKeysKeepDefaults) {
  std::stringstream in("event_frequency 10\n");
  const ScenarioConfig loaded = read_scenario(in);
  EXPECT_DOUBLE_EQ(loaded.event_frequency, 10.0);
  const ScenarioConfig defaults;
  EXPECT_DOUBLE_EQ(loaded.user_frequency, defaults.user_frequency);
  EXPECT_EQ(loaded.horizon, defaults.horizon);
}

/// Runs `fn` and returns the std::invalid_argument message it threw ("" if
/// it did not throw) — bad user files must fail with a clean error, never a
/// WAIF_CHECK abort.
template <typename Fn>
std::string error_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  return "";
}

TEST(TraceSerializationTest, TrailingGarbageRejectedWithLineNumber) {
  std::stringstream in(
      "waif-trace v1\n"
      "horizon 1000\n"
      "arrival 5 3.5 never oops\n");
  const std::string message = error_message([&in] { read_trace(in); });
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("oops"), std::string::npos) << message;
}

TEST(TraceSerializationTest, DuplicateHorizonRejected) {
  std::stringstream in("waif-trace v1\nhorizon 1000\nhorizon 2000\n");
  EXPECT_THROW(read_trace(in), std::invalid_argument);
}

TEST(TraceSerializationTest, NegativeTimesRejected) {
  {
    std::stringstream in("waif-trace v1\nhorizon 10\narrival -5 1.0 never\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {
    std::stringstream in("waif-trace v1\nhorizon 10\nread -1\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {
    std::stringstream in("waif-trace v1\nhorizon 10\narrival 1 1.0 -30\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
}

TEST(TraceSerializationTest, OutOfRangeRankRejected) {
  {
    std::stringstream in("waif-trace v1\nhorizon 10\narrival 1 9.0 never\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {
    std::stringstream in("waif-trace v1\nhorizon 10\narrival 1 nan never\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {
    std::stringstream in(
        "waif-trace v1\nhorizon 10\narrival 1 1.0 never\n"
        "rankchange 2 0 -3.0\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
}

TEST(TraceSerializationTest, CorruptOutagesFailCleanly) {
  // A negative start used to reach OutageSchedule's WAIF_CHECK and abort
  // the process; an inverted interval was silently discarded. Both are now
  // parse errors.
  {
    std::stringstream in("waif-trace v1\nhorizon 100\noutage -10 20\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
  {
    std::stringstream in("waif-trace v1\nhorizon 100\noutage 50 10\n");
    EXPECT_THROW(read_trace(in), std::invalid_argument);
  }
}

TEST(ScenarioSerializationTest, UnknownKeyRejected) {
  std::stringstream in("warp_factor 9\n");
  EXPECT_THROW(read_scenario(in), std::invalid_argument);
}

TEST(ScenarioSerializationTest, BadValueRejected) {
  std::stringstream in("event_frequency fast\n");
  EXPECT_THROW(read_scenario(in), std::invalid_argument);
}

TEST(ScenarioSerializationTest, DuplicateKeyRejected) {
  std::stringstream in("event_frequency 10\nevent_frequency 20\n");
  const std::string message = error_message([&in] { read_scenario(in); });
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("duplicate"), std::string::npos) << message;
}

TEST(ScenarioSerializationTest, TrailingGarbageRejected) {
  std::stringstream in("max 8 extra\n");
  EXPECT_THROW(read_scenario(in), std::invalid_argument);
}

TEST(ScenarioSerializationTest, BadDurationShapeCarriesLineNumber) {
  std::stringstream in("horizon 100\nexpiration_shape wibble\n");
  const std::string message = error_message([&in] { read_scenario(in); });
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("wibble"), std::string::npos) << message;
}

TEST(ScenarioSerializationTest, OutOfRangeValuesRejected) {
  const char* bad[] = {
      "outage_fraction 1.5\n",  "event_frequency -2\n",
      "expiring_fraction nan\n", "max 0\n",
      "horizon 0\n",            "fault_drop_probability 2\n",
      "rank_lo 4\nrank_hi 1\n", "mean_outage -5\n",
  };
  for (const char* text : bad) {
    std::stringstream in(text);
    EXPECT_THROW(read_scenario(in), std::invalid_argument) << text;
  }
}

TEST(ScenarioSerializationTest, ValidateScenarioChecksBuiltConfigsToo) {
  ScenarioConfig config;
  validate_scenario(config);  // the defaults are valid
  config.threshold = 99.0;
  EXPECT_THROW(validate_scenario(config), std::invalid_argument);
}

TEST(CanonicalDigestTest, FieldOrderAndTypeMatter) {
  CanonicalDigest a;
  a.u64(1);
  a.u64(2);
  CanonicalDigest b;
  b.u64(2);
  b.u64(1);
  EXPECT_NE(a.value(), b.value());

  // Doubles digest their IEEE-754 bit pattern: +0.0 and -0.0 differ.
  CanonicalDigest positive_zero;
  positive_zero.f64(0.0);
  CanonicalDigest negative_zero;
  negative_zero.f64(-0.0);
  EXPECT_NE(positive_zero.value(), negative_zero.value());
}

TEST(CanonicalDigestTest, StringsAreLengthPrefixed) {
  // ("ab", "c") and ("a", "bc") must not collide.
  CanonicalDigest a;
  a.str("ab");
  a.str("c");
  CanonicalDigest b;
  b.str("a");
  b.str("bc");
  EXPECT_NE(a.value(), b.value());
}

TEST(CanonicalDigestTest, RejectsNearlyEqualDoubles) {
  CanonicalDigest a;
  a.f64(0.1 + 0.2);
  CanonicalDigest b;
  b.f64(0.3);
  EXPECT_NE(a.value(), b.value());  // bit patterns differ; "close" is not equal
}

TEST(TraceDigestTest, StableAcrossRegenerationAndRoundTrip) {
  ScenarioConfig config;
  config.horizon = 20 * kDay;
  config.outage_fraction = 0.4;
  config.rank_drop_fraction = 0.2;
  const Trace trace = generate_trace(config, 5);
  EXPECT_EQ(digest_trace(trace), digest_trace(generate_trace(config, 5)));
  EXPECT_NE(digest_trace(trace), digest_trace(generate_trace(config, 6)));

  // Serialization round-trip preserves the digest (events re-sorted on load).
  std::stringstream buffer;
  write_trace(buffer, trace);
  EXPECT_EQ(digest_trace(read_trace(buffer)), digest_trace(trace));
}

TEST(ScenarioSerializationTest, LoadedScenarioDrivesIdenticalTrace) {
  ScenarioConfig original;
  original.horizon = 20 * kDay;
  original.outage_fraction = 0.5;
  std::stringstream buffer;
  write_scenario(buffer, original);
  const ScenarioConfig loaded = read_scenario(buffer);

  const Trace a = generate_trace(original, 3);
  const Trace b = generate_trace(loaded, 3);
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  EXPECT_EQ(a.reads, b.reads);
}

}  // namespace
}  // namespace waif::workload
