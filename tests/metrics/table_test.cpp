#include "metrics/table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace waif::metrics {
namespace {

TEST(TableTest, StoresValues) {
  Table table("caption", "x", {"a", "b"});
  table.add_row("1", {1.5, 2.5});
  table.add_row("2", {3.0, 4.0});
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.series(), 2u);
  EXPECT_DOUBLE_EQ(table.value(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(table.value(1, 0), 3.0);
}

TEST(TableTest, RejectsWrongArity) {
  Table table("caption", "x", {"a", "b"});
  EXPECT_THROW(table.add_row("1", {1.0}), std::invalid_argument);
  EXPECT_THROW(table.add_row("1", {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(TableTest, PrintContainsHeadersAndValues) {
  Table table("Waste due to overflow", "Max", {"uf=1", "uf=2"});
  table.add_row("4", {88.0, 75.0});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Waste due to overflow"), std::string::npos);
  EXPECT_NE(text.find("Max"), std::string::npos);
  EXPECT_NE(text.find("uf=1"), std::string::npos);
  EXPECT_NE(text.find("88.0"), std::string::npos);
  EXPECT_NE(text.find("75.0"), std::string::npos);
}

TEST(TableTest, NanRendersAsDash) {
  Table table("c", "x", {"a"});
  table.add_row("1", {std::nan("")});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find('-'), std::string::npos);
}

TEST(TableTest, CsvFormat) {
  Table table("c", "x", {"a", "b"});
  table.set_precision(2);
  table.add_row("1", {1.0, 2.0});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "x,a,b\n1,1.00,2.00\n");
}

TEST(TableTest, PrecisionControlsRendering) {
  Table table("c", "x", {"a"});
  table.set_precision(3);
  table.add_row("1", {1.23456});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("1.235"), std::string::npos);
}

}  // namespace
}  // namespace waif::metrics
