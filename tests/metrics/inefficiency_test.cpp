#include "metrics/inefficiency.h"

#include <gtest/gtest.h>

namespace waif::metrics {
namespace {

TEST(WastePercentTest, NoForwardingNoWaste) {
  EXPECT_DOUBLE_EQ(waste_percent(0, 0), 0.0);
}

TEST(WastePercentTest, AllReadNoWaste) {
  EXPECT_DOUBLE_EQ(waste_percent(10, 10), 0.0);
}

TEST(WastePercentTest, NothingReadFullWaste) {
  EXPECT_DOUBLE_EQ(waste_percent(10, 0), 100.0);
}

TEST(WastePercentTest, PartialWaste) {
  EXPECT_DOUBLE_EQ(waste_percent(8, 2), 75.0);
  EXPECT_DOUBLE_EQ(waste_percent(32, 28), 12.5);
}

TEST(LossPercentTest, EmptyBaselineIsZero) {
  // "on-line and on-demand policies are equally powerless" at 100% outage.
  EXPECT_DOUBLE_EQ(loss_percent({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(loss_percent({}, {1, 2, 3}), 0.0);
}

TEST(LossPercentTest, IdenticalSetsNoLoss) {
  const ReadSet set{1, 2, 3};
  EXPECT_DOUBLE_EQ(loss_percent(set, set), 0.0);
}

TEST(LossPercentTest, DisjointSetsFullLoss) {
  EXPECT_DOUBLE_EQ(loss_percent({1, 2}, {3, 4}), 100.0);
}

TEST(LossPercentTest, PartialOverlap) {
  EXPECT_DOUBLE_EQ(loss_percent({1, 2, 3, 4}, {1, 2}), 50.0);
}

TEST(LossPercentTest, ExtraPolicyReadsDoNotReduceLoss) {
  // Reading different (e.g. fresher) messages does not offset missing the
  // baseline's messages.
  EXPECT_DOUBLE_EQ(loss_percent({1, 2}, {2, 7, 8, 9}), 50.0);
}

TEST(LostCountTest, CountsMissingIds) {
  EXPECT_EQ(lost_count({1, 2, 3}, {2}), 2u);
  EXPECT_EQ(lost_count({}, {1}), 0u);
}

}  // namespace
}  // namespace waif::metrics
