#include "device/device.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/time.h"
#include "sim/simulator.h"

namespace waif::device {
namespace {

pubsub::NotificationPtr make(std::uint64_t id, double rank,
                             SimTime published = 0, SimTime expires = kNever) {
  auto n = std::make_shared<pubsub::Notification>();
  n->id = NotificationId{id};
  n->topic = "t";
  n->rank = rank;
  n->published_at = published;
  n->expires_at = expires;
  return n;
}

class DeviceTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  Device device{sim, DeviceId{1}};
};

TEST_F(DeviceTest, StartsEmpty) {
  EXPECT_EQ(device.queue_size(), 0u);
  EXPECT_TRUE(device.read(10, 0.0).empty());
}

TEST_F(DeviceTest, ReceiveAndContains) {
  EXPECT_TRUE(device.receive(make(1, 3.0)));
  EXPECT_TRUE(device.contains(NotificationId{1}));
  EXPECT_EQ(device.queue_size(), 1u);
  EXPECT_EQ(device.stats().received, 1u);
}

TEST_F(DeviceTest, ReadReturnsHighestRankedAndRemoves) {
  device.receive(make(1, 1.0));
  device.receive(make(2, 5.0));
  device.receive(make(3, 3.0));
  auto read = device.read(2, 0.0);
  ASSERT_EQ(read.size(), 2u);
  EXPECT_EQ(read[0]->id.value, 2u);
  EXPECT_EQ(read[1]->id.value, 3u);
  EXPECT_EQ(device.queue_size(), 1u);
  EXPECT_EQ(device.stats().read, 2u);
}

TEST_F(DeviceTest, ReadHonorsThreshold) {
  device.receive(make(1, 1.0));
  device.receive(make(2, 4.9));
  auto read = device.read(10, 4.5);
  ASSERT_EQ(read.size(), 1u);
  EXPECT_EQ(read[0]->id.value, 2u);
  // The sub-threshold message stays queued.
  EXPECT_EQ(device.queue_size(), 1u);
}

TEST_F(DeviceTest, TopIdsDoesNotRemove) {
  device.receive(make(1, 1.0));
  device.receive(make(2, 2.0));
  auto ids = device.top_ids("t", 1, 0.0);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0].value, 2u);
  EXPECT_EQ(device.queue_size(), 2u);
}

TEST_F(DeviceTest, DuplicateReceiveReplacesRank) {
  device.receive(make(7, 4.0));
  device.receive(make(7, 0.5));  // rank update
  EXPECT_EQ(device.queue_size(), 1u);
  EXPECT_EQ(device.stats().rank_updates, 1u);
  EXPECT_DOUBLE_EQ(*device.rank_of(NotificationId{7}), 0.5);
}

TEST_F(DeviceTest, ExpiredMessagesPurgeLazily) {
  device.receive(make(1, 3.0, 0, seconds(10.0)));
  device.receive(make(2, 3.0));
  sim.schedule_at(seconds(20.0), [] {});
  sim.run();
  EXPECT_EQ(device.queue_size(), 1u);
  EXPECT_EQ(device.stats().expired_unread, 1u);
  auto read = device.read(10, 0.0);
  ASSERT_EQ(read.size(), 1u);
  EXPECT_EQ(read[0]->id.value, 2u);
}

TEST_F(DeviceTest, StorageLimitEvictsLowestRank) {
  DeviceConfig config;
  config.storage_limit = 2;
  Device small(sim, DeviceId{2}, config);
  small.receive(make(1, 3.0));
  small.receive(make(2, 1.0));
  small.receive(make(3, 5.0));  // evicts id 2 (rank 1.0)
  EXPECT_EQ(small.queue_size(), 2u);
  EXPECT_FALSE(small.contains(NotificationId{2}));
  EXPECT_EQ(small.stats().evicted, 1u);
}

TEST_F(DeviceTest, BatteryDrainsAndDies) {
  DeviceConfig config;
  config.battery_capacity = 2.5;
  config.receive_cost = 1.0;
  Device mobile(sim, DeviceId{3}, config);
  EXPECT_TRUE(mobile.receive(make(1, 1.0)));
  EXPECT_TRUE(mobile.receive(make(2, 1.0)));
  EXPECT_TRUE(mobile.receive(make(3, 1.0)));  // uses the last 0.5.. capacity
  EXPECT_TRUE(mobile.battery_dead());
  EXPECT_FALSE(mobile.receive(make(4, 1.0)));
  EXPECT_EQ(mobile.stats().rejected_dead_battery, 1u);
  EXPECT_DOUBLE_EQ(mobile.battery_remaining(), 0.0);
}

TEST_F(DeviceTest, DeadBatteryBlocksUplinkReads) {
  DeviceConfig config;
  config.battery_capacity = 0.5;
  config.send_cost = 1.0;
  Device mobile(sim, DeviceId{4}, config);
  // First read drains the budget; second is rejected.
  mobile.read(1, 0.0, /*charge_uplink=*/true);
  EXPECT_TRUE(mobile.battery_dead());
  mobile.receive(make(1, 1.0));  // also rejected
  EXPECT_FALSE(mobile.contains(NotificationId{1}));
}

TEST_F(DeviceTest, UnlimitedBatteryNeverDies) {
  for (int i = 0; i < 1000; ++i) {
    device.receive(make(static_cast<std::uint64_t>(i + 1), 1.0));
  }
  EXPECT_FALSE(device.battery_dead());
  EXPECT_EQ(device.battery_remaining(), kUnlimitedBattery);
}

TEST_F(DeviceTest, ReadZeroReturnsNothing) {
  device.receive(make(1, 1.0));
  EXPECT_TRUE(device.read(0, 0.0).empty());
  EXPECT_EQ(device.queue_size(), 1u);
}

TEST_F(DeviceTest, RankOfMissingIsNullopt) {
  EXPECT_FALSE(device.rank_of(NotificationId{42}).has_value());
}

TEST_F(DeviceTest, RankDropBelowThresholdRetractsHeldCopy) {
  device.set_topic_threshold("t", 2.5);
  device.receive(make(1, 4.0));
  ASSERT_TRUE(device.contains(NotificationId{1}));
  device.receive(make(1, 0.5));  // retraction notice
  EXPECT_FALSE(device.contains(NotificationId{1}));
  EXPECT_EQ(device.stats().retracted, 1u);
  EXPECT_EQ(device.queue_size(), 0u);
}

TEST_F(DeviceTest, FreshSubThresholdNoticeIsNotStored) {
  // A rank-drop notice can arrive for a message the user already read; it
  // must not clog the buffer as an unread rank-0 message.
  device.set_topic_threshold("t", 2.5);
  device.receive(make(1, 0.0));
  EXPECT_FALSE(device.contains(NotificationId{1}));
  EXPECT_EQ(device.stats().retracted, 1u);
}

TEST_F(DeviceTest, RankDropAboveThresholdMerelyReorders) {
  device.set_topic_threshold("t", 2.0);
  device.receive(make(1, 4.0));
  device.receive(make(1, 2.5));  // still acceptable
  EXPECT_TRUE(device.contains(NotificationId{1}));
  EXPECT_DOUBLE_EQ(*device.rank_of(NotificationId{1}), 2.5);
  EXPECT_EQ(device.stats().retracted, 0u);
}

TEST_F(DeviceTest, WithoutThresholdNothingIsRetracted) {
  device.receive(make(1, 4.0));
  device.receive(make(1, 0.0));
  EXPECT_TRUE(device.contains(NotificationId{1}));
  EXPECT_EQ(device.stats().retracted, 0u);
}

TEST_F(DeviceTest, ThresholdsArePerTopic) {
  device.set_topic_threshold("strict", 4.0);
  auto on_strict = std::make_shared<pubsub::Notification>();
  on_strict->id = NotificationId{1};
  on_strict->topic = "strict";
  on_strict->rank = 3.0;
  device.receive(on_strict);
  EXPECT_FALSE(device.contains(NotificationId{1}));  // below strict threshold
  device.receive(make(2, 3.0));  // topic "t": no threshold registered
  EXPECT_TRUE(device.contains(NotificationId{2}));
}

}  // namespace
}  // namespace waif::device
