// Allocation-regression gate for the engine hot paths.
//
// Links waif::alloc_hooks (the counting operator new/delete) and asserts the
// slab arenas actually deliver their contract: after warm-up, a steady-state
// schedule/pop cycle on the event queue and an insert/erase cycle on the
// ranked queues touch the global heap ZERO times per event. A future change
// that quietly reintroduces per-event allocations (a fatter callback that
// spills out of std::function's inline buffer, a container swap that drops
// the pool allocator) fails here, not in a profiler six months later.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/alloc_stats.h"
#include "common/rng.h"
#include "pubsub/notification.h"
#include "pubsub/ranked_queue.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace waif {
namespace {

TEST(AllocRegressionTest, CountingHooksAreLinked) {
  ASSERT_TRUE(alloc_stats::hooks_installed())
      << "test_alloc_regression must link waif::alloc_hooks";
  alloc_stats::AllocProbe probe;
  auto* p = new int(7);
  EXPECT_GE(probe.allocations(), 1u);
  delete p;
}

// A timer-wheel-like steady state: a fixed population of pending events, each
// pop rescheduling one event further in the future. This is exactly the shape
// of the proxy's delay/expiration/retry timers.
TEST(AllocRegressionTest, EventQueueSteadyStateAllocatesNothing) {
  sim::EventQueue queue;
  Rng rng(2024);
  std::uint64_t fired = 0;
  SimTime clock = 0;

  const auto cycle = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      clock = queue.next_time();
      auto event = queue.pop();
      event.fn();
      queue.schedule(clock + 1 + static_cast<SimTime>(rng.next_below(5000)),
                     [&fired] { ++fired; });
    }
  };

  for (int i = 0; i < 16; ++i) {
    queue.schedule(static_cast<SimTime>(rng.next_below(5000)),
                   [&fired] { ++fired; });
  }
  // Warm-up must cover one full calendar wrap (bucket_count * bucket_width of
  // simulated time) so every bucket's entry vector has reached its standing
  // capacity; with ~2.5ms mean advance per cycle that is ~7k cycles per
  // 2^20us bucket — 150k cycles sweeps the 16-bucket wheel twice over.
  cycle(150000);

  alloc_stats::AllocProbe probe;
  cycle(30000);
  EXPECT_EQ(probe.allocations(), 0u)
      << "schedule/pop steady state hit the heap " << probe.allocations()
      << " times in 30000 cycles";
  EXPECT_EQ(fired, 180000u);  // every pop fired exactly once
}

// Cancellation is the other half of the timer workload: handles flip a flag
// and the queue skims lazily — none of which may allocate.
TEST(AllocRegressionTest, EventQueueCancelPathAllocatesNothing) {
  sim::EventQueue queue;
  Rng rng(7);
  SimTime clock = 0;
  std::vector<sim::EventHandle> handles;
  handles.reserve(64);

  const auto cycle = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      handles.clear();
      for (int j = 0; j < 8; ++j) {
        handles.push_back(queue.schedule(
            clock + 1 + static_cast<SimTime>(rng.next_below(100)), [] {}));
      }
      handles[rng.next_below(4)].cancel();  // sometimes the pending top
      while (!queue.empty()) {
        clock = queue.next_time();
        queue.pop();
      }
    }
  };

  cycle(4000);
  alloc_stats::AllocProbe probe;
  cycle(2000);
  EXPECT_EQ(probe.allocations(), 0u);
}

// Self-rescheduling timers — the standing workload every proxy sustains. The
// rescheduling lambda captures only `this` so it stays inside std::function's
// inline buffer; a fatter capture that spilled to the heap is precisely the
// regression this test exists to catch.
struct Ticker {
  sim::Simulator& sim;
  Rng& rng;
  std::uint64_t fired = 0;

  void tick() {
    ++fired;
    sim.schedule_after(1 + static_cast<SimDuration>(rng.next_below(1000)),
                       [this] { tick(); });
  }
};

TEST(AllocRegressionTest, SimulatorTimerChurnAllocatesNothing) {
  sim::Simulator sim;
  Rng rng(99);
  Ticker ticker{sim, rng};
  for (int i = 0; i < 8; ++i) {
    sim.schedule_after(static_cast<SimDuration>(rng.next_below(1000)),
                       [&ticker] { ticker.tick(); });
  }
  // One full calendar wrap of warm-up (16 buckets x 2^20us) so every bucket
  // vector holds its standing capacity before the measured window opens.
  sim.run_until(20'000'000);

  alloc_stats::AllocProbe probe;
  sim.run_until(24'000'000);
  EXPECT_EQ(probe.allocations(), 0u)
      << probe.allocations() << " heap allocations in the measured window";
  EXPECT_GT(ticker.fired, 2000u);
  sim.clear();
}

// Ranked-queue steady state: a bounded queue under arrival/departure churn —
// the outgoing/prefetch/holding queues between volume-limit forwarding
// decisions. Notifications themselves are recycled; the queue's set and
// index nodes must come from the arenas.
TEST(AllocRegressionTest, RankedQueueSteadyStateAllocatesNothing) {
  pubsub::RankedQueue queue;
  Rng rng(4242);

  // A recycled pool of notifications (the proxy holds events by shared_ptr;
  // creating them is the workload generator's business, not the queue's).
  std::vector<pubsub::NotificationPtr> pool;
  for (std::uint64_t i = 0; i < 64; ++i) {
    pubsub::Notification n;
    n.id = NotificationId{i + 1};
    n.rank = rng.next_double();
    pool.push_back(std::make_shared<const pubsub::Notification>(n));
  }

  const auto cycle = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      const auto& event = pool[rng.next_below(pool.size())];
      if (queue.contains(event->id)) {
        queue.erase(event->id);
      } else {
        queue.insert(event);
      }
      if (queue.size() > 32) queue.pop_bottom();
      if (i % 7 == 0) queue.top();
    }
  };

  cycle(20000);
  alloc_stats::AllocProbe probe;
  cycle(10000);
  EXPECT_EQ(probe.allocations(), 0u)
      << "ranked-queue insert/erase steady state hit the heap "
      << probe.allocations() << " times in 10000 cycles";
}

// The arenas themselves must be the reason the above holds: this pins that
// the pool actually serves the nodes (pooled counters move) rather than the
// test accidentally measuring an idle path.
TEST(AllocRegressionTest, PoolArenaServesFixedSizeNodes) {
  auto arena = std::make_shared<PoolArena>(4);
  PoolAllocator<std::uint64_t> alloc(arena);
  std::uint64_t* a = alloc.allocate(1);
  std::uint64_t* b = alloc.allocate(1);
  EXPECT_EQ(arena->pooled_allocs(), 2u);
  alloc.deallocate(a, 1);
  // Freed node is recycled, not returned to the heap.
  std::uint64_t* c = alloc.allocate(1);
  EXPECT_EQ(c, a);
  EXPECT_EQ(arena->pooled_allocs(), 3u);
  alloc.deallocate(b, 1);
  alloc.deallocate(c, 1);

  // A different size class falls through to the heap and is counted foreign.
  alloc_stats::AllocProbe probe;
  void* big = arena->allocate(1024);
  EXPECT_EQ(arena->foreign_allocs(), 1u);
  EXPECT_GE(probe.allocations(), 1u);
  arena->deallocate(big, 1024);
}

}  // namespace
}  // namespace waif
