// ParallelRunner contract tests: identical digests at every thread count,
// submission-order results, degenerate sweeps, and more jobs than threads.
#include "experiments/parallel_runner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/time.h"

namespace waif::experiments {
namespace {

using core::PolicyConfig;
using workload::ScenarioConfig;

ScenarioConfig quick_config() {
  ScenarioConfig config;
  config.horizon = 30 * kDay;  // scaled down for test speed
  config.event_frequency = 32.0;
  config.user_frequency = 2.0;
  config.max = 8;
  return config;
}

std::vector<SweepPoint> sample_sweep() {
  std::vector<SweepPoint> points;
  for (double outage : {0.0, 0.3, 0.9}) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      SweepPoint point;
      point.scenario = quick_config();
      point.scenario.outage_fraction = outage;
      point.policy = PolicyConfig::buffer(16);
      point.seed = seed;
      points.push_back(point);
    }
  }
  return points;
}

TEST(ParallelRunnerTest, SameSeedSameDigestAtOneTwoAndEightThreads) {
  const std::vector<SweepPoint> points = sample_sweep();
  ParallelRunner one(1);
  ParallelRunner two(2);
  ParallelRunner eight(8);
  const std::uint64_t digest_one = digest(one.compare(points));
  const std::uint64_t digest_two = digest(two.compare(points));
  const std::uint64_t digest_eight = digest(eight.compare(points));
  EXPECT_EQ(digest_one, digest_two);
  EXPECT_EQ(digest_one, digest_eight);
}

TEST(ParallelRunnerTest, ResultsArriveInSubmissionOrder) {
  // Jobs with very different costs (long vs short horizon) so completion
  // order differs from submission order; each outcome must still sit at its
  // submission index. Arrival counts scale with the horizon, which lets us
  // identify which job produced which outcome.
  std::vector<SweepPoint> points;
  for (int days : {40, 2, 30, 1, 20, 3}) {
    SweepPoint point;
    point.scenario = quick_config();
    point.scenario.horizon = days * kDay;
    point.policy = PolicyConfig::online();
    point.seed = 7;
    points.push_back(point);
  }
  ParallelRunner runner(4);
  const std::vector<RunOutcome> outcomes = runner.run(points);
  ASSERT_EQ(outcomes.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const workload::Trace trace =
        workload::generate_trace(points[i].scenario, points[i].seed);
    EXPECT_EQ(outcomes[i].published.size(), trace.arrivals.size())
        << "outcome at index " << i << " does not match its submission";
  }
}

TEST(ParallelRunnerTest, EmptySweep) {
  ParallelRunner runner(4);
  EXPECT_TRUE(runner.compare({}).empty());
  EXPECT_TRUE(runner.run({}).empty());
  EXPECT_TRUE(runner.evaluate_many({}).empty());
  EXPECT_EQ(runner.last_stats().jobs, 0u);
}

TEST(ParallelRunnerTest, ManyMoreJobsThanThreads) {
  // 24 jobs on 2 threads: the queue must drain fully and keep order.
  std::vector<SweepPoint> points;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SweepPoint point;
    point.scenario = quick_config();
    point.scenario.horizon = 5 * kDay;
    point.policy = PolicyConfig::on_demand();
    point.seed = seed;
    points.push_back(point);
  }
  ParallelRunner runner(2);
  const std::vector<Comparison> parallel = runner.compare(points);
  ASSERT_EQ(parallel.size(), points.size());
  EXPECT_EQ(runner.last_stats().jobs, points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Comparison sequential = compare_policies(
        points[i].scenario, points[i].policy, points[i].seed, points[i].device);
    EXPECT_EQ(digest(parallel[i]), digest(sequential)) << "job " << i;
  }
}

TEST(ParallelRunnerTest, EvaluateMatchesSequentialEvaluateBitwise) {
  ScenarioConfig config = quick_config();
  config.outage_fraction = 0.5;
  const PolicyConfig policy = PolicyConfig::buffer(16);
  const Aggregate sequential = evaluate(config, policy, /*seeds=*/3);
  ParallelRunner runner(4);
  const Aggregate parallel = runner.evaluate(config, policy, /*seeds=*/3);
  EXPECT_EQ(digest({parallel}), digest({sequential}));
  EXPECT_EQ(parallel.waste_percent, sequential.waste_percent);
  EXPECT_EQ(parallel.loss_percent, sequential.loss_percent);
  EXPECT_EQ(parallel.waste_stddev, sequential.waste_stddev);
  EXPECT_EQ(parallel.loss_stddev, sequential.loss_stddev);
}

TEST(ParallelRunnerTest, MapReturnsIndexedResults) {
  ParallelRunner runner(4);
  const std::vector<std::uint64_t> values =
      runner.map(100, [](std::size_t i) { return std::uint64_t{i} * 3; });
  ASSERT_EQ(values.size(), 100u);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], i * 3);
  }
  EXPECT_EQ(runner.last_stats().jobs, 100u);
  EXPECT_EQ(runner.last_stats().threads, 4u);
}

TEST(ParallelRunnerTest, StatsAccountWallAndTaskTime) {
  ParallelRunner runner(2);
  runner.compare(sample_sweep());
  const SweepStats& stats = runner.last_stats();
  EXPECT_EQ(stats.jobs, 6u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.task_seconds, 0.0);
  EXPECT_GT(stats.speedup(), 0.0);
}

TEST(ParallelRunnerTest, JobRngSubstreamsDiffer) {
  Rng a = job_rng(1, 0);
  Rng b = job_rng(1, 1);
  Rng c = job_rng(2, 0);
  Rng a_again = job_rng(1, 0);
  EXPECT_NE(a(), b());
  EXPECT_NE(job_rng(1, 0)(), c());
  EXPECT_EQ(job_rng(1, 0)(), a_again());
}

TEST(ParallelRunnerTest, DigestDistinguishesDifferentSeeds) {
  SweepPoint point;
  point.scenario = quick_config();
  point.scenario.horizon = 10 * kDay;
  point.policy = PolicyConfig::buffer(16);
  point.seed = 1;
  SweepPoint other = point;
  other.seed = 2;
  ParallelRunner runner(2);
  const std::vector<Comparison> results = runner.compare({point, other});
  EXPECT_NE(digest(results[0]), digest(results[1]));
}

}  // namespace
}  // namespace waif::experiments
