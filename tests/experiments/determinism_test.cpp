// Differential determinism: a representative fig3/fig6-style sweep run
// sequentially and through ParallelRunner must agree BIT FOR BIT — the
// paper's waste/loss methodology compares a policy against its on-line
// baseline over identical traces, so "approximately equal" parallel results
// would silently change every figure.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "experiments/parallel_runner.h"
#include "experiments/runner.h"
#include "workload/serialization.h"
#include "workload/trace.h"

namespace waif::experiments {
namespace {

using core::PolicyConfig;
using workload::ScenarioConfig;

ScenarioConfig fig_config() {
  // Figure 3's fixed parameters (event frequency 32/day, Max 8, user
  // frequency 2/day), scaled to 30 virtual days for test speed.
  ScenarioConfig config;
  config.event_frequency = 32.0;
  config.user_frequency = 2.0;
  config.max = 8;
  config.horizon = 30 * kDay;
  return config;
}

/// A miniature Figure 3 grid: prefetch limit x outage level, buffer policy.
std::vector<EvalPoint> fig3_grid() {
  std::vector<EvalPoint> points;
  for (std::size_t limit : {1u, 16u, 256u}) {
    for (double outage : {0.1, 0.5, 0.9}) {
      EvalPoint point;
      point.scenario = fig_config();
      point.scenario.outage_fraction = outage;
      point.policy = PolicyConfig::buffer(limit);
      point.seeds = 2;
      points.push_back(point);
    }
  }
  return points;
}

TEST(DifferentialDeterminismTest, Fig3SweepBitIdenticalToSequential) {
  const std::vector<EvalPoint> points = fig3_grid();

  // Sequential reference: the plain evaluate() loop the fig binaries used
  // before the parallel executor existed.
  std::vector<Aggregate> sequential;
  for (const EvalPoint& point : points) {
    sequential.push_back(evaluate(point.scenario, point.policy, point.seeds,
                                  point.first_seed, point.device));
  }

  for (std::size_t threads : {1u, 2u, 8u}) {
    ParallelRunner runner(threads);
    const std::vector<Aggregate> parallel = runner.evaluate_many(points);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      // EXPECT_EQ on doubles: bit-identical, not approximately equal.
      EXPECT_EQ(parallel[i].waste_percent, sequential[i].waste_percent)
          << "threads=" << threads << " point=" << i;
      EXPECT_EQ(parallel[i].loss_percent, sequential[i].loss_percent)
          << "threads=" << threads << " point=" << i;
      EXPECT_EQ(parallel[i].waste_stddev, sequential[i].waste_stddev);
      EXPECT_EQ(parallel[i].loss_stddev, sequential[i].loss_stddev);
    }
    EXPECT_EQ(digest(parallel), digest(sequential));
  }
}

TEST(DifferentialDeterminismTest, Fig6StyleExpirationSweepBitIdentical) {
  // Figure 6's regime: expirations + 90% outage + expiration-threshold
  // buffer policy, the most state-heavy code path (expiry timers, holding
  // queue, rank comparisons). Full per-run digests, not just the headline
  // percentages: every counter in RunOutcome must match.
  std::vector<SweepPoint> points;
  for (double expiration : {15360.0, 491520.0}) {
    for (double threshold : {1024.0, 65536.0}) {
      SweepPoint point;
      point.scenario = fig_config();
      point.scenario.mean_expiration = seconds(expiration);
      point.scenario.outage_fraction = 0.9;
      point.policy = PolicyConfig::buffer(64, seconds(threshold));
      point.seed = 3;
      points.push_back(point);
    }
  }

  std::vector<Comparison> sequential;
  for (const SweepPoint& point : points) {
    sequential.push_back(
        compare_policies(point.scenario, point.policy, point.seed,
                         point.device));
  }

  for (std::size_t threads : {2u, 8u}) {
    ParallelRunner runner(threads);
    const std::vector<Comparison> parallel = runner.compare(points);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(digest(parallel[i]), digest(sequential[i]))
          << "threads=" << threads << " point=" << i;
      EXPECT_EQ(parallel[i].waste_percent, sequential[i].waste_percent);
      EXPECT_EQ(parallel[i].loss_percent, sequential[i].loss_percent);
      EXPECT_EQ(parallel[i].raw_loss_percent, sequential[i].raw_loss_percent);
      EXPECT_EQ(parallel[i].policy.read_ids, sequential[i].policy.read_ids);
    }
  }
}

TEST(DifferentialDeterminismTest, TraceGenerationUnaffectedByThreading) {
  // The trace is the randomness; digest it directly on top of the outcome
  // checks so a regression pinpoints whether generation or replay diverged.
  ScenarioConfig config = fig_config();
  config.outage_fraction = 0.5;
  config.mean_expiration = hours(6.0);
  const std::uint64_t reference =
      workload::digest_trace(workload::generate_trace(config, 11));

  ParallelRunner runner(8);
  const std::vector<std::uint64_t> digests =
      runner.map(16, [&config](std::size_t) {
        return workload::digest_trace(workload::generate_trace(config, 11));
      });
  for (std::uint64_t value : digests) EXPECT_EQ(value, reference);
}

TEST(DifferentialDeterminismTest, RepeatedParallelSweepsAgree) {
  // Same sweep, same runner thread count, run twice: digests must match —
  // catches any hidden shared state between jobs (id counters, caches).
  const std::vector<EvalPoint> points = fig3_grid();
  ParallelRunner runner(4);
  const std::uint64_t first = digest(runner.evaluate_many(points));
  const std::uint64_t second = digest(runner.evaluate_many(points));
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace waif::experiments
