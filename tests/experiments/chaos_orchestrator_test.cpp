// End-to-end tests of the unified chaos orchestrator: deterministic
// replays, the composed-fault mini-sweep, the intentionally-injected
// journal bug that the shrinker must minimize to a replayable repro, and
// the breaker x failover interaction the harness depends on.
#include "experiments/chaos_orchestrator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/time.h"
#include "core/proxy.h"
#include "core/reliable_channel.h"
#include "core/replication.h"
#include "device/device.h"
#include "experiments/chaos_schedule.h"
#include "net/fault.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"
#include "storage/backend.h"
#include "storage/persistence.h"

namespace waif::experiments {
namespace {

TEST(ChaosOrchestrator, SameScheduleReplaysByteIdentically) {
  const ChaosSchedule schedule = draw_chaos(ChaosDrawConfig{}, 2);
  const ChaosOutcome first = run_chaos(schedule);
  const ChaosOutcome second = run_chaos(schedule);
  EXPECT_EQ(first.digest(), second.digest());
  EXPECT_EQ(first.read_digest, second.read_digest);
  EXPECT_EQ(first.violations.size(), second.violations.size());
}

TEST(ChaosOrchestrator, ComposedSchedulesKeepAllInvariants) {
  std::uint64_t applied = 0;
  std::uint64_t crashes = 0;
  std::uint64_t image_checks = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ChaosSchedule schedule = draw_chaos(ChaosDrawConfig{}, seed);
    const ChaosOutcome outcome = run_chaos(schedule);
    EXPECT_TRUE(outcome.ok())
        << "seed " << seed << " violated: "
        << (outcome.violations.empty() ? ""
                                       : outcome.violations[0].invariant +
                                             " — " +
                                             outcome.violations[0].detail);
    applied += outcome.faults_applied;
    crashes += outcome.crashes;
    image_checks += outcome.image_checks;
    EXPECT_GT(outcome.arrivals, 0u) << "seed " << seed;
    EXPECT_GT(outcome.checks, 0u) << "seed " << seed;
  }
  // The sweep actually composed faults: things fired, crashed and were
  // compared against the durable image along the way.
  EXPECT_GT(applied, 50u);
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(image_checks, 100u);
}

TEST(ChaosOrchestrator, RejectsInvalidSchedules) {
  ChaosSchedule schedule = draw_chaos(ChaosDrawConfig{}, 1);
  schedule.faults[0].magnitude = 2.0;
  EXPECT_THROW(run_chaos(schedule), std::invalid_argument);
}

TEST(ChaosOrchestrator, ShrinkRequiresAViolation) {
  const ChaosSchedule clean = draw_chaos(ChaosDrawConfig{}, 3);
  ASSERT_TRUE(run_chaos(clean).ok());
  EXPECT_THROW(shrink_chaos(clean), std::invalid_argument);
}

// The acceptance path: a test-only journal bug (shed records swallowed
// before the WAL) must be caught by the live-vs-recovered image check,
// shrink to a strictly smaller schedule that still reproduces, and replay
// byte-identically from its serialized `.chaos` form.
TEST(ChaosOrchestrator, InjectedJournalBugShrinksToAReplayableRepro) {
  // Seed 1's draw sheds under its storm; with the bug armed the WAL misses
  // the shed records and the durable image diverges.
  ChaosSchedule schedule = draw_chaos(ChaosDrawConfig{}, 1);
  schedule.bug = ChaosBug::kSwallowShedJournal;

  const ChaosOutcome broken = run_chaos(schedule);
  ASSERT_FALSE(broken.ok());
  EXPECT_GT(broken.shed, 0u);
  const bool image_violation = std::any_of(
      broken.violations.begin(), broken.violations.end(),
      [](const ChaosViolation& v) { return v.invariant == "image-equality"; });
  EXPECT_TRUE(image_violation);

  // Control: the same schedule without the bug is clean — the violation is
  // the bug's, not the harness's.
  ChaosSchedule control = schedule;
  control.bug = ChaosBug::kNone;
  EXPECT_TRUE(run_chaos(control).ok());

  const ChaosShrinkResult shrunk = shrink_chaos(schedule);
  // (a) strictly smaller than the original.
  EXPECT_LT(shrunk.minimized.faults.size(), schedule.faults.size());
  EXPECT_GT(shrunk.replays, 0u);
  // (b) the minimized schedule still reproduces.
  EXPECT_FALSE(shrunk.outcome.ok());

  // (c) serialized, re-read, and replayed twice: byte-identical.
  std::ostringstream text;
  write_chaos(text, shrunk.minimized);
  std::istringstream in(text.str());
  const ChaosSchedule reread = read_chaos(in);
  EXPECT_EQ(digest_chaos(reread), digest_chaos(shrunk.minimized));
  const ChaosOutcome replay_one = run_chaos(reread);
  const ChaosOutcome replay_two = run_chaos(reread);
  EXPECT_FALSE(replay_one.ok());
  EXPECT_EQ(replay_one.digest(), replay_two.digest());
  EXPECT_EQ(replay_one.digest(), shrunk.outcome.digest());
}

// ------------------------------------------------- breaker x failover

using core::BreakerState;

/// Starves the channel of ACKs (the slow-device signature): downlink
/// deliveries still land, but nothing comes back.
void starve_acks(net::Link& link) {
  net::FaultConfig fault;
  fault.uplink_drop_probability = 1.0;
  link.set_fault_model(fault, 7);
}

class BreakerFailoverTest : public ::testing::Test {
 protected:
  BreakerFailoverTest()
      : reliable(sim, link, device, channel_config(), /*seed=*/11),
        replicated(sim, link, device, reliable, replication_config()),
        persistence(sim, backend, storage::PersistenceConfig{}),
        publisher(broker, "pub") {
    core::TopicConfig config;
    config.mode = core::DeliveryMode::kOnLine;
    config.policy = core::PolicyConfig::online();
    replicated.add_topic("t", config);

    persistence.set_channel(&reliable);
    persistence.attach(replicated.active_proxy());
    replicated.set_recovery(&persistence);

    // Same wiring as the chaos harness: the observer both watches the state
    // machine and wakes the held queues on reclose.
    reliable.set_breaker_observer([this](BreakerState state) {
      transitions.push_back(state);
      if (state != BreakerState::kOpen) {
        core::Proxy& active = replicated.active_proxy();
        for (const std::string& name : active.topic_names()) {
          active.topic(name)->try_forwarding();
        }
      }
    });
    reliable.set_failure_handler([this](const pubsub::NotificationPtr& event) {
      core::Proxy& active = replicated.active_proxy();
      if (core::TopicState* topic = active.topic(event->topic)) {
        topic->requeue_undelivered(event);
      }
    });

    broker.subscribe("t", replicated, config.options);
    publisher.advertise("t");
  }

  static core::ReliableChannelConfig channel_config() {
    core::ReliableChannelConfig config;
    config.jitter = 0.0;
    config.ack_timeout = 30 * kSecond;
    config.max_attempts = 2;
    config.breaker_failure_threshold = 1;
    config.breaker_cooldown = 5 * kMinute;
    return config;
  }

  static core::ReplicationConfig replication_config() {
    core::ReplicationConfig config;
    config.heartbeat_interval = 30 * kSecond;
    config.suspicion_timeout = 2 * kMinute;
    return config;
  }

  sim::Simulator sim;
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
  pubsub::Broker broker{sim, 64};
  storage::MemBackend backend;
  core::ReliableDeviceChannel reliable;
  core::ReplicatedProxy replicated;
  storage::ProxyPersistence persistence;
  pubsub::Publisher publisher;
  std::vector<BreakerState> transitions;
};

TEST_F(BreakerFailoverTest, OpenBreakerHoldsThroughPromotionThenRecloses) {
  starve_acks(link);
  sim.schedule_at(kSecond, [this] { publisher.publish("t", 5.0, kNever); });

  // Two starved attempts (30 s + 60 s backoff) exhaust the transfer and
  // trip the breaker (threshold 1).
  sim.run_until(3 * kMinute);
  ASSERT_EQ(reliable.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(reliable.stats().breaker_trips, 1u);
  const std::uint64_t transmissions_while_open = reliable.stats().transmissions;

  // With the breaker open, a new event is queued but never transmitted:
  // the replica channel forwards the real channel's accepting(), so the
  // hold-only degraded mode survives the replication wrapper.
  sim.schedule_at(sim.now(), [this] { publisher.publish("t", 5.0, kNever); });
  sim.run_until(4 * kMinute);  // still inside the 5 min cooldown
  EXPECT_EQ(reliable.stats().transmissions, transmissions_while_open);
  EXPECT_GE(replicated.active_proxy().topic("t")->queued_total(), 1u);

  // The primary dies with the breaker open. The standby must promote (its
  // own channel wrapper never blocks on the shared breaker) and inherit a
  // consistent channel: the device is still starved, so the breaker is
  // still somewhere in its open/half-open probe cycle, never closed.
  replicated.crash_active();
  sim.run_until(8 * kMinute);
  EXPECT_FALSE(replicated.primary_is_active());
  EXPECT_EQ(replicated.stats().failovers, 1u);
  EXPECT_NE(reliable.breaker_state(), BreakerState::kClosed);

  sim.schedule_at(sim.now(), [this] { publisher.publish("t", 5.0, kNever); });

  // The device recovers: the next half-open probe gets its ACK, the breaker
  // recloses, and the held events drain — no stuck-open channel after the
  // failover. All three events reached the device at least once (probe
  // transmissions deliver too; only their ACKs were starved).
  sim.schedule_at(12 * kMinute, [this] { link.set_fault_model({}, 7); });
  sim.run_until(40 * kMinute);
  EXPECT_EQ(reliable.breaker_state(), BreakerState::kClosed);
  EXPECT_GE(reliable.stats().breaker_closes, 1u);
  EXPECT_GE(reliable.stats().delivered, 3u);

  // Every observed transition was legal for the breaker state machine.
  BreakerState previous = BreakerState::kClosed;
  for (BreakerState state : transitions) {
    const bool legal =
        (previous == BreakerState::kClosed && state == BreakerState::kOpen) ||
        (previous == BreakerState::kOpen &&
         (state == BreakerState::kHalfOpen ||
          state == BreakerState::kClosed)) ||
        (previous == BreakerState::kHalfOpen &&
         (state == BreakerState::kOpen || state == BreakerState::kClosed));
    EXPECT_TRUE(legal) << "illegal transition into state "
                       << static_cast<int>(state);
    previous = state;
  }
}

TEST_F(BreakerFailoverTest, WarmStartFromDurableImageResetsTheBreaker) {
  starve_acks(link);
  sim.schedule_at(kSecond, [this] { publisher.publish("t", 5.0, kNever); });
  sim.run_until(3 * kMinute);
  ASSERT_EQ(reliable.breaker_state(), BreakerState::kOpen);

  // The machine dies and warm-starts from the durable image: the breaker's
  // transient state belongs to the dead process, so the restored channel
  // comes back closed — but the sequence counter survives (the device's
  // dedup window must stay coherent).
  const core::ChannelSnapshot durable = reliable.snapshot();
  reliable.crash_proxy_side();
  EXPECT_EQ(reliable.breaker_state(), BreakerState::kClosed);
  reliable.restore(durable);
  EXPECT_EQ(reliable.snapshot().next_seq, durable.next_seq);
  EXPECT_TRUE(reliable.accepting());

  // And the revived channel actually works once the device is healthy.
  link.set_fault_model({}, 7);
  const std::uint64_t delivered_before = reliable.stats().delivered;
  sim.schedule_at(sim.now(), [this] { publisher.publish("t", 5.0, kNever); });
  sim.run_until(sim.now() + 10 * kMinute);
  EXPECT_EQ(reliable.breaker_state(), BreakerState::kClosed);
  EXPECT_GT(reliable.stats().delivered, delivered_before);
}

}  // namespace
}  // namespace waif::experiments
