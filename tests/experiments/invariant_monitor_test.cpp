#include "experiments/invariant_monitor.h"

#include <gtest/gtest.h>

namespace waif::experiments {
namespace {

using core::BreakerState;

InvariantMonitor::Expectations armed() {
  InvariantMonitor::Expectations expectations;
  expectations.topic_budget = 8;
  expectations.proxy_budget = 20;
  expectations.admission_armed = true;
  return expectations;
}

TEST(InvariantMonitor, AcceptsTheLegalBreakerCycle) {
  InvariantMonitor monitor(armed());
  monitor.note_breaker(BreakerState::kOpen, 1);       // trip
  monitor.note_breaker(BreakerState::kHalfOpen, 2);   // probe window
  monitor.note_breaker(BreakerState::kOpen, 3);       // probe failed
  monitor.note_breaker(BreakerState::kHalfOpen, 4);
  monitor.note_breaker(BreakerState::kClosed, 5);     // probe succeeded
  monitor.note_breaker(BreakerState::kOpen, 6);       // trips again
  monitor.note_breaker(BreakerState::kClosed, 7);     // direct reclose
  EXPECT_TRUE(monitor.ok());
}

TEST(InvariantMonitor, RejectsIllegalBreakerTransitions) {
  InvariantMonitor monitor(armed());
  monitor.note_breaker(BreakerState::kHalfOpen, 1);  // closed -> half-open
  ASSERT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.violations()[0].invariant, "breaker-legality");

  InvariantMonitor second(armed());
  second.note_breaker(BreakerState::kClosed, 1);  // closed -> closed
  EXPECT_FALSE(second.ok());
}

TEST(InvariantMonitor, ResetBreakerSkipsTheLegalityCheck) {
  InvariantMonitor monitor(armed());
  monitor.note_breaker(BreakerState::kOpen, 1);
  // crash_proxy_side recloses silently; the harness re-syncs the monitor.
  monitor.reset_breaker(BreakerState::kClosed);
  monitor.note_breaker(BreakerState::kOpen, 2);
  EXPECT_TRUE(monitor.ok());
}

TEST(InvariantMonitor, FlagsBackwardChannelCounters) {
  InvariantMonitor monitor(armed());
  core::ReliableChannelStats stats;
  stats.accepted = 10;
  stats.acked = 4;
  monitor.note_channel(11, stats, 1);
  EXPECT_TRUE(monitor.ok());

  stats.accepted = 9;  // went backwards
  monitor.note_channel(11, stats, 2);
  ASSERT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.violations()[0].invariant, "channel-monotone");
}

TEST(InvariantMonitor, FlagsSequenceRegression) {
  InvariantMonitor monitor(armed());
  core::ReliableChannelStats stats;
  monitor.note_channel(7, stats, 1);
  monitor.note_channel(6, stats, 2);
  EXPECT_FALSE(monitor.ok());
}

TEST(InvariantMonitor, FlagsAckedBeyondAccepted) {
  InvariantMonitor monitor(armed());
  core::ReliableChannelStats stats;
  stats.accepted = 3;
  stats.acked = 5;
  monitor.note_channel(1, stats, 1);
  EXPECT_FALSE(monitor.ok());
}

TEST(InvariantMonitor, EnforcesQueueBudgets) {
  InvariantMonitor monitor(armed());
  monitor.note_queue("news", 8, 1);   // exactly at budget: fine
  monitor.note_proxy_total(20, 1);
  EXPECT_TRUE(monitor.ok());

  monitor.note_queue("news", 9, 2);
  ASSERT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.violations()[0].invariant, "queue-bound");

  monitor.note_proxy_total(21, 3);
  EXPECT_EQ(monitor.violations().size(), 2u);
}

TEST(InvariantMonitor, ZeroBudgetsDisableBoundChecks) {
  InvariantMonitor monitor;  // default expectations: nothing armed
  monitor.note_queue("news", 10000, 1);
  monitor.note_proxy_total(10000, 1);
  EXPECT_TRUE(monitor.ok());
}

TEST(InvariantMonitor, UnarmedAdmissionMustNeverReject) {
  InvariantMonitor unarmed;
  unarmed.note_admission_rejects(0, 1);
  EXPECT_TRUE(unarmed.ok());
  unarmed.note_admission_rejects(3, 2);
  ASSERT_FALSE(unarmed.ok());
  EXPECT_EQ(unarmed.violations()[0].invariant, "admission-legality");

  InvariantMonitor with_admission(armed());
  with_admission.note_admission_rejects(3, 1);
  EXPECT_TRUE(with_admission.ok());
}

TEST(InvariantMonitor, StorageIsBoundedButTheCountIsNot) {
  InvariantMonitor monitor(armed());
  for (int i = 0; i < 1000; ++i) {
    monitor.record("test-invariant", "violation " + std::to_string(i), i);
  }
  EXPECT_EQ(monitor.total_violations(), 1000u);
  EXPECT_LT(monitor.violations().size(), 1000u);
  EXPECT_FALSE(monitor.ok());
}

}  // namespace
}  // namespace waif::experiments
