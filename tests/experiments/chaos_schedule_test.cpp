#include "experiments/chaos_schedule.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace waif::experiments {
namespace {

ChaosSchedule sample_schedule() {
  ChaosSchedule schedule;
  schedule.seed = 42;
  schedule.horizon = 2 * kDay;
  schedule.topic_budget = 12;
  schedule.proxy_budget = 30;
  schedule.admission_high = 24;
  schedule.admission_low = 10;
  schedule.breaker_threshold = 2;
  schedule.bug = ChaosBug::kSwallowShedJournal;
  ChaosFault fault;
  fault.kind = ChaosFaultKind::kStorm;
  fault.at = 6 * kHour;
  fault.duration = kHour;
  fault.magnitude = 0.5;
  fault.param = 64;
  fault.seed = 7;
  schedule.faults.push_back(fault);
  fault.kind = ChaosFaultKind::kCrashAtRecord;
  fault.param = 128;
  schedule.faults.push_back(fault);
  return schedule;
}

TEST(ChaosSchedule, RoundTripsThroughText) {
  const ChaosSchedule original = sample_schedule();
  std::ostringstream out;
  write_chaos(out, original);

  std::istringstream in(out.str());
  const ChaosSchedule reread = read_chaos(in);

  EXPECT_EQ(digest_chaos(reread), digest_chaos(original));
  EXPECT_EQ(reread.seed, original.seed);
  EXPECT_EQ(reread.bug, ChaosBug::kSwallowShedJournal);
  ASSERT_EQ(reread.faults.size(), 2u);
  EXPECT_EQ(reread.faults[0].kind, ChaosFaultKind::kStorm);
  EXPECT_EQ(reread.faults[1].kind, ChaosFaultKind::kCrashAtRecord);
  EXPECT_DOUBLE_EQ(reread.faults[0].magnitude, 0.5);
}

TEST(ChaosSchedule, EveryFaultKindHasAStableName) {
  for (ChaosFaultKind kind :
       {ChaosFaultKind::kLinkFault, ChaosFaultKind::kOutage,
        ChaosFaultKind::kStorageFault, ChaosFaultKind::kCrashActive,
        ChaosFaultKind::kCrashAtRecord, ChaosFaultKind::kStorm,
        ChaosFaultKind::kDeviceStall}) {
    ChaosFaultKind parsed;
    ASSERT_TRUE(parse_chaos_fault_kind(chaos_fault_kind_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  ChaosFaultKind parsed;
  EXPECT_FALSE(parse_chaos_fault_kind("meteor-strike", &parsed));
}

TEST(ChaosSchedule, ReadRejectsDamagedInput) {
  const auto reject = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW(read_chaos(in), std::invalid_argument) << text;
  };
  reject("");                                   // no header
  reject("waif-chaos v2\n");                    // wrong version
  reject("waif-chaos v1\nseed nope\n");         // malformed value
  reject("waif-chaos v1\nwarp-factor 9\n");     // unknown keyword
  reject("waif-chaos v1\nseed 1 extra\n");      // trailing garbage
  reject("waif-chaos v1\nbug heisenbug\n");     // unknown bug
  reject("waif-chaos v1\nfault meteor 0 0 0 0 0\n");  // unknown kind
  reject("waif-chaos v1\nfault storm 0 0 1.5 0 0\n");  // magnitude > 1
  reject("waif-chaos v1\nhorizon -5\n");        // fails validation
}

TEST(ChaosSchedule, ValidateRejectsBadFields) {
  ChaosSchedule schedule = sample_schedule();
  schedule.faults[0].magnitude = -0.25;
  EXPECT_THROW(validate_chaos(schedule), std::invalid_argument);

  schedule = sample_schedule();
  schedule.faults[0].magnitude = std::nan("");
  EXPECT_THROW(validate_chaos(schedule), std::invalid_argument);

  schedule = sample_schedule();
  schedule.faults[1].duration = -kMinute;
  EXPECT_THROW(validate_chaos(schedule), std::invalid_argument);

  schedule = sample_schedule();
  schedule.admission_low = schedule.admission_high + 1;
  EXPECT_THROW(validate_chaos(schedule), std::invalid_argument);

  EXPECT_NO_THROW(validate_chaos(sample_schedule()));
}

TEST(ChaosSchedule, DrawIsDeterministicAndValid) {
  ChaosDrawConfig config;
  config.faults = 12;
  const ChaosSchedule a = draw_chaos(config, 99);
  const ChaosSchedule b = draw_chaos(config, 99);
  const ChaosSchedule c = draw_chaos(config, 100);

  EXPECT_EQ(digest_chaos(a), digest_chaos(b));
  EXPECT_NE(digest_chaos(a), digest_chaos(c));
  EXPECT_EQ(a.faults.size(), 12u);
  EXPECT_NO_THROW(validate_chaos(a));
  for (const ChaosFault& fault : a.faults) {
    EXPECT_GE(fault.at, a.horizon / 16);
    EXPECT_LT(fault.at, a.horizon);
    EXPECT_GT(fault.duration, 0);
  }
}

TEST(ChaosSchedule, DrawWithoutCrashesDrawsNoCrashes) {
  ChaosDrawConfig config;
  config.faults = 32;
  config.allow_crashes = false;
  const ChaosSchedule schedule = draw_chaos(config, 5);
  for (const ChaosFault& fault : schedule.faults) {
    EXPECT_NE(fault.kind, ChaosFaultKind::kCrashActive);
    EXPECT_NE(fault.kind, ChaosFaultKind::kCrashAtRecord);
  }
}

}  // namespace
}  // namespace waif::experiments
