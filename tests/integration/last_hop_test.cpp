// End-to-end integration: publisher -> broker -> proxy -> link -> device,
// driven through simulated time with outages, expirations and rank changes.
#include <gtest/gtest.h>

#include <string>

#include "common/time.h"
#include "core/channel.h"
#include "core/context.h"
#include "core/proxy.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/overlay.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"

namespace waif {
namespace {

using core::DeliveryMode;
using core::PolicyConfig;
using core::TopicConfig;

class LastHopIntegrationTest : public ::testing::Test {
 protected:
  TopicConfig config_with(PolicyConfig policy, int max = 8,
                          double threshold = 0.0) {
    TopicConfig config;
    config.options.max = max;
    config.options.threshold = threshold;
    config.policy = policy;
    return config;
  }

  sim::Simulator sim;
  pubsub::Broker broker{sim};
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
  core::SimDeviceChannel channel{link, device};
  core::Proxy proxy{sim, channel};
  core::LastHopSession session{proxy, channel};
};

TEST_F(LastHopIntegrationTest, PrefetchSurvivesOutageRead) {
  // The headline behaviour: prefetching lets a read during an outage succeed.
  proxy.add_topic("news", config_with(PolicyConfig::buffer(8), /*max=*/4));
  broker.subscribe("news", proxy);
  proxy.attach_to_link(link);
  pubsub::Publisher publisher(broker, "p");

  // Events arrive while the network is still up.
  for (int i = 0; i < 6; ++i) {
    sim.schedule_at(i * kHour, [&publisher, i] {
      publisher.publish("news", 1.0 + 0.5 * i);
    });
  }
  // Outage from hour 7 to hour 20; user reads at hour 10.
  link.apply_schedule(net::OutageSchedule(
      {net::Outage{7 * kHour, 20 * kHour}}, kDay));
  std::size_t read_during_outage = 0;
  sim.schedule_at(10 * kHour, [&] {
    read_during_outage = session.user_read("news").size();
  });
  sim.run_until(kDay);

  EXPECT_EQ(read_during_outage, 4u);  // served from the prefetched buffer
}

TEST_F(LastHopIntegrationTest, PureOnDemandLosesTheOutageRead) {
  proxy.add_topic("news", config_with(PolicyConfig::on_demand(), /*max=*/4));
  broker.subscribe("news", proxy);
  proxy.attach_to_link(link);
  pubsub::Publisher publisher(broker, "p");

  for (int i = 0; i < 6; ++i) {
    sim.schedule_at(i * kHour, [&publisher, i] {
      publisher.publish("news", 1.0 + 0.5 * i);
    });
  }
  link.apply_schedule(net::OutageSchedule(
      {net::Outage{7 * kHour, 20 * kHour}}, kDay));
  std::size_t read_during_outage = 99;
  sim.schedule_at(10 * kHour, [&] {
    read_during_outage = session.user_read("news").size();
  });
  sim.run_until(kDay);

  EXPECT_EQ(read_during_outage, 0u);  // nothing was on the device
}

TEST_F(LastHopIntegrationTest, ExpirationDuringOutageIsUnrecoverable) {
  proxy.add_topic("news", config_with(PolicyConfig::on_demand(), /*max=*/8));
  broker.subscribe("news", proxy);
  proxy.attach_to_link(link);
  pubsub::Publisher publisher(broker, "p");

  // Event expires at hour 5, in the middle of an outage ending at hour 8.
  sim.schedule_at(1 * kHour, [&publisher] {
    publisher.publish("news", 3.0, hours(4.0));
  });
  link.apply_schedule(
      net::OutageSchedule({net::Outage{2 * kHour, 8 * kHour}}, kDay));
  std::size_t read_after_outage = 99;
  sim.schedule_at(9 * kHour, [&] {
    read_after_outage = session.user_read("news").size();
  });
  sim.run_until(kDay);

  EXPECT_EQ(read_after_outage, 0u);
  EXPECT_EQ(proxy.topic("news")->stats().expired_at_proxy, 1u);
}

TEST_F(LastHopIntegrationTest, OnlineDeliveryBeatsExpirationAcrossOutage) {
  // Same timeline, but the event is forwarded before the outage: the user
  // can still read it (from the device) before it expires.
  proxy.add_topic("news", config_with(PolicyConfig::online(), /*max=*/8));
  broker.subscribe("news", proxy);
  proxy.attach_to_link(link);
  pubsub::Publisher publisher(broker, "p");

  sim.schedule_at(1 * kHour, [&publisher] {
    publisher.publish("news", 3.0, hours(4.0));  // expires at hour 5
  });
  link.apply_schedule(
      net::OutageSchedule({net::Outage{2 * kHour, 8 * kHour}}, kDay));
  std::size_t read_during_outage = 0;
  sim.schedule_at(4 * kHour, [&] {
    read_during_outage = session.user_read("news").size();
  });
  sim.run_until(kDay);

  EXPECT_EQ(read_during_outage, 1u);
}

TEST_F(LastHopIntegrationTest, RankRetractionBeatsDelayedPrefetch) {
  // Section 3.4: with a delay stage, a quick retraction means the event is
  // never transferred at all.
  PolicyConfig policy = PolicyConfig::buffer(8);
  policy.delay = hours(1.0);
  proxy.add_topic("mod", config_with(policy, /*max=*/8, /*threshold=*/2.0));
  broker.subscribe("mod", proxy);
  proxy.attach_to_link(link);
  pubsub::Publisher publisher(broker, "p");

  pubsub::NotificationPtr spam;
  sim.schedule_at(minutes(5.0), [&] {
    spam = publisher.publish("mod", 4.0);  // looks great at first
  });
  sim.schedule_at(minutes(20.0), [&] {
    publisher.update_rank(spam->id, 0.0);  // moderators catch it
  });
  sim.run_until(kDay);

  EXPECT_EQ(link.stats().downlink_messages, 0u);
  EXPECT_EQ(device.queue_size(), 0u);
}

TEST_F(LastHopIntegrationTest, WithoutDelayRetractionCostsTwoTransfers) {
  proxy.add_topic("mod",
                  config_with(PolicyConfig::buffer(8), /*max=*/8,
                              /*threshold=*/2.0));
  broker.subscribe("mod", proxy);
  proxy.attach_to_link(link);
  pubsub::Publisher publisher(broker, "p");

  pubsub::NotificationPtr spam;
  sim.schedule_at(minutes(5.0), [&] { spam = publisher.publish("mod", 4.0); });
  sim.schedule_at(minutes(20.0), [&] {
    publisher.update_rank(spam->id, 0.0);
  });
  sim.run_until(kDay);

  // Forwarded once, then a rank-drop notice: both crossed the last hop.
  EXPECT_EQ(link.stats().downlink_messages, 2u);
  // And nothing useful: a thresholded read shows no messages.
  EXPECT_TRUE(device.read(8, 2.0).empty());
}

TEST_F(LastHopIntegrationTest, ProxyBehindOverlayReceivesMultiHop) {
  pubsub::Overlay overlay(sim);
  auto& source = overlay.add_node("source");
  auto& edge = overlay.add_node("edge");
  overlay.connect(source.id(), edge.id(), milliseconds(20));

  proxy.add_topic("wide", config_with(PolicyConfig::online()));
  edge.subscribe("wide", proxy);

  const PublisherId publisher = source.register_publisher();
  source.advertise(publisher, "wide");
  source.publish(publisher, "wide", 3.0);
  sim.run();

  EXPECT_EQ(device.queue_size(), 1u);
}

TEST_F(LastHopIntegrationTest, ContextRouterEndToEnd) {
  core::ContextRouter router(broker, proxy);
  TopicConfig config = config_with(PolicyConfig::online());
  config.mode = DeliveryMode::kOnLine;
  router.add_rule("city", "traffic/{city}", config);
  pubsub::Publisher roads(broker, "roads");

  router.update_context("city", "tromso");
  roads.publish("traffic/tromso", 4.0);
  EXPECT_EQ(device.queue_size(), 1u);

  // The user flies south; old-city traffic stops reaching the device.
  router.update_context("city", "oslo");
  roads.publish("traffic/tromso", 4.0);
  roads.publish("traffic/oslo", 4.0);
  EXPECT_EQ(device.queue_size(), 2u);
}

TEST_F(LastHopIntegrationTest, ConstrainedDeviceEvictsLowRanked) {
  device::DeviceConfig small_config;
  small_config.storage_limit = 2;
  device::Device small(sim, DeviceId{2}, small_config);
  core::SimDeviceChannel small_channel(link, small);
  core::Proxy small_proxy(sim, small_channel);
  small_proxy.add_topic("news", config_with(PolicyConfig::online()));
  broker.subscribe("news", small_proxy);
  pubsub::Publisher publisher(broker, "p");

  publisher.publish("news", 1.0);
  publisher.publish("news", 2.0);
  publisher.publish("news", 3.0);

  EXPECT_EQ(small.queue_size(), 2u);
  EXPECT_EQ(small.stats().evicted, 1u);  // needless transfer: pure waste
}

}  // namespace
}  // namespace waif
