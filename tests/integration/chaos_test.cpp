// End-to-end chaos coverage: the experiment runner over a faulty last hop
// with the reliable delivery layer. Checks that the fault machinery stays
// fully inert when disabled (so legacy runs replay byte-identically), that
// faulty runs are deterministic, and that the transport invariants hold in
// the face of silent drops, bursts, half-open links, and outages.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/time.h"
#include "experiments/parallel_runner.h"
#include "experiments/runner.h"
#include "metrics/inefficiency.h"
#include "workload/serialization.h"

namespace waif::experiments {
namespace {

using core::PolicyConfig;
using workload::ScenarioConfig;

ScenarioConfig quick_config() {
  ScenarioConfig config;
  config.horizon = 60 * kDay;
  config.event_frequency = 32.0;
  config.user_frequency = 2.0;
  config.max = 8;
  return config;
}

ScenarioConfig chaos_config() {
  ScenarioConfig config = quick_config();
  config.outage_fraction = 0.3;
  config.fault.drop_probability = 0.2;
  config.fault.uplink_drop_probability = 0.2;
  config.fault.burst_start_probability = 0.02;
  config.fault.half_open_probability = 0.1;
  config.fault.base_latency = 200 * kMillisecond;
  config.fault.mean_latency_jitter = 100 * kMillisecond;
  return config;
}

TEST(ChaosRunnerTest, DisabledFaultModelIsCompletelyInert) {
  ScenarioConfig config = quick_config();
  config.outage_fraction = 0.4;
  ASSERT_FALSE(config.fault.enabled());
  const workload::Trace trace = workload::generate_trace(config, 21);
  const RunOutcome outcome = run_trace(trace, config, PolicyConfig::buffer(16));
  // The reliable channel was never constructed and the fault model never
  // consulted: their stats stay all-zero, so pre-existing digests replay.
  EXPECT_EQ(outcome.reliable.accepted, 0u);
  EXPECT_EQ(outcome.reliable.transmissions, 0u);
  EXPECT_EQ(outcome.faults.downlink_drops(), 0u);
  EXPECT_EQ(outcome.faults.uplink_drops, 0u);
}

TEST(ChaosRunnerTest, FaultyRunsReplayDeterministically) {
  const ScenarioConfig config = chaos_config();
  const workload::Trace trace = workload::generate_trace(config, 22);
  const RunOutcome a = run_trace(trace, config, PolicyConfig::buffer(16));
  const RunOutcome b = run_trace(trace, config, PolicyConfig::buffer(16));
  EXPECT_EQ(digest(a), digest(b));
  EXPECT_GT(a.reliable.accepted, 0u);
  EXPECT_GT(a.faults.downlink_drops(), 0u);
}

TEST(ChaosRunnerTest, TransportInvariantsHoldUnderChaos) {
  const ScenarioConfig config = chaos_config();
  const workload::Trace trace = workload::generate_trace(config, 23);
  const RunOutcome outcome = run_trace(trace, config, PolicyConfig::buffer(16));
  const core::ReliableChannelStats& rc = outcome.reliable;

  // The fault model actually bit.
  EXPECT_GT(rc.link_drops, 0u);
  EXPECT_GT(rc.retries, 0u);
  // Arrivals cannot outnumber transmissions that survived the link.
  EXPECT_LE(rc.delivered + rc.duplicates_suppressed,
            rc.transmissions - rc.link_drops);
  // Every accepted transfer resolved (or is still pending at the horizon).
  EXPECT_LE(rc.acked + rc.expired_abandoned + rc.attempts_exhausted,
            rc.accepted);
  // The runner wires the failure handler to the holding queue: every
  // requeued transfer shows up in the topic's books.
  EXPECT_EQ(outcome.topic.requeued_undelivered, rc.requeued);
  // The device never saw more than the transport delivered.
  EXPECT_LE(outcome.device.received, rc.delivered);
}

TEST(ChaosRunnerTest, ExhaustedTransfersDegradeIntoTheHoldingQueue) {
  // Drop hard enough that some transfer loses all its attempts: graceful
  // degradation must route it back into the proxy's holding queue rather
  // than lose the event.
  ScenarioConfig config = chaos_config();
  config.fault.drop_probability = 0.7;
  config.fault.uplink_drop_probability = 0.7;
  const workload::Trace trace = workload::generate_trace(config, 24);
  const RunOutcome outcome = run_trace(trace, config, PolicyConfig::buffer(16));
  EXPECT_GT(outcome.reliable.attempts_exhausted, 0u);
  EXPECT_GT(outcome.topic.requeued_undelivered, 0u);
  EXPECT_EQ(outcome.topic.requeued_undelivered, outcome.reliable.requeued);
}

TEST(ChaosRunnerTest, ReliabilityRecoversMostOfTheLoss) {
  // With retransmission the read stream under a lossy link stays close to
  // the fault-free one: the transport, not luck, carries the last hop.
  ScenarioConfig faulty = chaos_config();
  faulty.outage_fraction = 0.0;  // isolate the silent-loss effect
  ScenarioConfig clean = faulty;
  clean.fault = {};
  const workload::Trace trace = workload::generate_trace(clean, 25);
  const RunOutcome baseline = run_trace(trace, clean, PolicyConfig::buffer(16));
  const RunOutcome lossy = run_trace(trace, faulty, PolicyConfig::buffer(16));
  ASSERT_FALSE(baseline.read_ids.empty());
  const double loss =
      metrics::loss_percent(baseline.read_ids, lossy.read_ids);
  EXPECT_LT(loss, 5.0);
}

TEST(ChaosRunnerTest, FaultConfigRoundTripsThroughSerialization) {
  ScenarioConfig config = chaos_config();
  config.fault_seed = 0xDEADBEEFull;
  std::stringstream text;
  workload::write_scenario(text, config);
  const ScenarioConfig parsed = workload::read_scenario(text);
  EXPECT_DOUBLE_EQ(parsed.fault.drop_probability,
                   config.fault.drop_probability);
  EXPECT_DOUBLE_EQ(parsed.fault.burst_start_probability,
                   config.fault.burst_start_probability);
  EXPECT_DOUBLE_EQ(parsed.fault.half_open_probability,
                   config.fault.half_open_probability);
  EXPECT_EQ(parsed.fault.base_latency, config.fault.base_latency);
  EXPECT_EQ(parsed.fault.mean_latency_jitter,
            config.fault.mean_latency_jitter);
  EXPECT_EQ(parsed.fault_seed, config.fault_seed);
  EXPECT_TRUE(parsed.fault.enabled());
}

TEST(ChaosSweepTest, ChaosCellsAreJobCountInvariant) {
  // The same chaos sweep must digest identically no matter how many worker
  // threads replay it — the whole point of seeding every fault source.
  std::vector<SweepPoint> points;
  for (double drop : {0.0, 0.1, 0.3}) {
    SweepPoint point;
    point.scenario = chaos_config();
    point.scenario.horizon = 20 * kDay;
    point.scenario.fault.drop_probability = drop;
    point.scenario.fault.uplink_drop_probability = drop;
    point.policy = PolicyConfig::buffer(16);
    point.seed = 31;
    points.push_back(point);
  }
  ParallelRunner serial(1);
  ParallelRunner parallel(4);
  const std::uint64_t serial_digest = digest(serial.compare(points));
  const std::uint64_t parallel_digest = digest(parallel.compare(points));
  EXPECT_EQ(serial_digest, parallel_digest);
}

}  // namespace
}  // namespace waif::experiments
