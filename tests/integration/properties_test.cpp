// Property-style parameterized suites over the experiment harness: the
// paper's closed-form waste formula, policy invariants that must hold at any
// point of the parameter space, and monotonicity properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "common/time.h"
#include "experiments/runner.h"

namespace waif::experiments {
namespace {

using core::PolicyConfig;
using core::PolicyKind;
using workload::ScenarioConfig;

ScenarioConfig base_config() {
  ScenarioConfig config;
  config.horizon = 60 * kDay;
  config.event_frequency = 32.0;
  config.user_frequency = 2.0;
  config.max = 8;
  return config;
}

// ---------------------------------------------------------------------------
// Figure 1's closed form: waste% = 100 * (1 - uf*Max/ef), clamped at 0.
// ---------------------------------------------------------------------------

class OverflowFormulaTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(OverflowFormulaTest, OnlineWasteMatchesFormula) {
  const auto [user_frequency, max] = GetParam();
  ScenarioConfig config = base_config();
  config.user_frequency = user_frequency;
  config.max = max;

  const Comparison comparison =
      compare_policies(config, PolicyConfig::online(), /*seed=*/21);
  const double predicted =
      std::max(0.0, 100.0 * (1.0 - user_frequency * max / 32.0));
  // Generous tolerance: short horizon + discreteness of daily reads.
  EXPECT_NEAR(comparison.waste_percent, predicted, 8.0)
      << "uf=" << user_frequency << " max=" << max;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OverflowFormulaTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0),
                       ::testing::Values(1, 4, 8, 32)),
    [](const ::testing::TestParamInfo<std::tuple<double, int>>& param_info) {
      const double uf = std::get<0>(param_info.param);
      const int max = std::get<1>(param_info.param);
      return "uf" + std::to_string(static_cast<int>(uf * 100)) + "_max" +
             std::to_string(max);
    });

// ---------------------------------------------------------------------------
// Invariants that hold for every policy across mixed conditions.
// ---------------------------------------------------------------------------

struct PolicyCase {
  const char* name;
  PolicyKind kind;
};

class PolicyInvariantsTest
    : public ::testing::TestWithParam<std::tuple<PolicyCase, double>> {
 protected:
  static PolicyConfig policy_for(PolicyKind kind) {
    switch (kind) {
      case PolicyKind::kOnline: return PolicyConfig::online();
      case PolicyKind::kOnDemand: return PolicyConfig::on_demand();
      case PolicyKind::kBufferPrefetch: return PolicyConfig::buffer(16);
      case PolicyKind::kRatePrefetch: return PolicyConfig::rate(0.0);
      case PolicyKind::kAdaptive: return PolicyConfig::adaptive();
    }
    return PolicyConfig::online();
  }
};

TEST_P(PolicyInvariantsTest, MetricsAreSaneAndConsistent) {
  const auto [policy_case, outage] = GetParam();
  ScenarioConfig config = base_config();
  config.horizon = 30 * kDay;
  config.outage_fraction = outage;
  config.mean_expiration = hours(12.0);

  const Comparison comparison =
      compare_policies(config, policy_for(policy_case.kind), /*seed=*/22);

  // Percentages are percentages.
  EXPECT_GE(comparison.waste_percent, 0.0);
  EXPECT_LE(comparison.waste_percent, 100.0);
  EXPECT_GE(comparison.loss_percent, 0.0);
  EXPECT_LE(comparison.loss_percent, 100.0);

  // Every read message crossed the link first.
  EXPECT_LE(comparison.policy.read_ids.size(),
            comparison.policy.forwarded_unique);
  // The user cannot read more than the trace offered.
  EXPECT_LE(comparison.policy.read_ids.size(),
            comparison.policy.topic.arrivals);
  // Downlink messages at least the distinct forwards.
  EXPECT_GE(comparison.policy.link.downlink_messages,
            comparison.policy.forwarded_unique);
  // The baseline never loses: its read set is the reference.
  EXPECT_EQ(metrics::loss_percent(comparison.baseline.read_ids,
                                  comparison.baseline.read_ids),
            0.0);
}

TEST_P(PolicyInvariantsTest, NoTrafficWhileLinkDownEver) {
  const auto [policy_case, outage] = GetParam();
  if (outage < 1.0) GTEST_SKIP() << "only meaningful at full outage";
  ScenarioConfig config = base_config();
  config.horizon = 30 * kDay;
  config.outage_fraction = 1.0;
  const Comparison comparison =
      compare_policies(config, policy_for(policy_case.kind), /*seed=*/23);
  EXPECT_EQ(comparison.policy.link.downlink_messages, 0u);
  EXPECT_EQ(comparison.policy.link.uplink_messages, 0u);
  EXPECT_TRUE(comparison.policy.read_ids.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PolicyInvariantsTest,
    ::testing::Combine(
        ::testing::Values(PolicyCase{"online", PolicyKind::kOnline},
                          PolicyCase{"ondemand", PolicyKind::kOnDemand},
                          PolicyCase{"buffer", PolicyKind::kBufferPrefetch},
                          PolicyCase{"rate", PolicyKind::kRatePrefetch},
                          PolicyCase{"adaptive", PolicyKind::kAdaptive}),
        ::testing::Values(0.0, 0.5, 1.0)),
    [](const ::testing::TestParamInfo<std::tuple<PolicyCase, double>>&
           param_info) {
      const PolicyCase& policy_case = std::get<0>(param_info.param);
      const double outage = std::get<1>(param_info.param);
      return std::string(policy_case.name) + "_outage" +
             std::to_string(static_cast<int>(outage * 100));
    });

// ---------------------------------------------------------------------------
// Monotonicity of buffer-based prefetching in the prefetch limit (Figure 3).
// ---------------------------------------------------------------------------

class PrefetchLimitTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefetchLimitTest, WasteAndLossStayBounded) {
  ScenarioConfig config = base_config();
  config.outage_fraction = 0.5;
  const Comparison comparison = compare_policies(
      config, PolicyConfig::buffer(GetParam()), /*seed=*/24);
  EXPECT_GE(comparison.waste_percent, 0.0);
  EXPECT_LE(comparison.waste_percent, 100.0);
  EXPECT_GE(comparison.loss_percent, 0.0);
  EXPECT_LE(comparison.loss_percent, 100.0);
}

INSTANTIATE_TEST_SUITE_P(Limits, PrefetchLimitTest,
                         ::testing::Values(1, 4, 16, 64, 256, 4096));

TEST(PrefetchLimitOrderTest, LossDecreasesWithLimit) {
  ScenarioConfig config = base_config();
  config.outage_fraction = 0.7;
  double previous = 101.0;
  for (std::size_t limit : {1u, 16u, 256u}) {
    const Comparison comparison =
        compare_policies(config, PolicyConfig::buffer(limit), /*seed=*/25);
    EXPECT_LE(comparison.loss_percent, previous + 2.0)
        << "limit " << limit;  // small tolerance for noise
    previous = comparison.loss_percent;
  }
}

TEST(PrefetchLimitOrderTest, WasteGrowsWithLimit) {
  ScenarioConfig config = base_config();
  config.outage_fraction = 0.3;
  const Comparison small =
      compare_policies(config, PolicyConfig::buffer(16), /*seed=*/26);
  const Comparison large =
      compare_policies(config, PolicyConfig::buffer(1 << 16), /*seed=*/26);
  EXPECT_LE(small.waste_percent, large.waste_percent + 1.0);
  EXPECT_GT(large.waste_percent, 30.0);  // overflow regime: ~50% expected
}

// ---------------------------------------------------------------------------
// Expiration-threshold behaviour (Figure 6's two regimes).
// ---------------------------------------------------------------------------

class ExpirationThresholdTest : public ::testing::TestWithParam<SimDuration> {};

TEST_P(ExpirationThresholdTest, PercentagesWellFormed) {
  ScenarioConfig config = base_config();
  config.horizon = 60 * kDay;
  config.outage_fraction = 0.9;
  config.mean_expiration = 5 * kDay;
  const Comparison comparison = compare_policies(
      config, PolicyConfig::buffer(64, GetParam()), /*seed=*/27);
  EXPECT_GE(comparison.waste_percent, 0.0);
  EXPECT_LE(comparison.waste_percent, 100.0);
  EXPECT_GE(comparison.loss_percent, 0.0);
  EXPECT_LE(comparison.loss_percent, 100.0);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ExpirationThresholdTest,
                         ::testing::Values(seconds(16.0), seconds(1024.0),
                                           hours(8.0), days(4.0), days(32.0)));

TEST(ExpirationThresholdRegimeTest, HugeThresholdForfeitsPrefetching) {
  // "too high of a threshold is as bad as no prefetching at all": with every
  // event held back, losses climb to a plateau far above the sweet spot.
  ScenarioConfig config = base_config();
  config.outage_fraction = 0.9;
  config.mean_expiration = 5 * kDay;
  const Comparison huge = compare_policies(
      config, PolicyConfig::buffer(64, 365 * kDay), /*seed=*/28);
  const Comparison sweet = compare_policies(
      config, PolicyConfig::buffer(64, hours(8.0)), /*seed=*/28);
  EXPECT_GT(huge.loss_percent, 15.0);
  EXPECT_GT(huge.loss_percent, 3.0 * sweet.loss_percent);
  // No event clears a year-long threshold: nothing is ever prefetched.
  EXPECT_EQ(huge.policy.topic.prefetch_forwards, 0u);
}

TEST(ExpirationThresholdRegimeTest, ReadIntervalThresholdIsInTheSweetSpot) {
  // With lifetimes an order of magnitude above the read interval, setting
  // the threshold to the read interval (8h at uf=2) keeps both metrics low.
  ScenarioConfig config = base_config();
  config.horizon = 120 * kDay;
  config.outage_fraction = 0.9;
  config.mean_expiration = 5 * kDay;  // ~15x the 8h read interval
  const Comparison comparison = compare_policies(
      config, PolicyConfig::buffer(16, hours(8.0)), /*seed=*/29);
  EXPECT_LT(comparison.waste_percent, 15.0);
  EXPECT_LT(comparison.loss_percent, 15.0);
}

// ---------------------------------------------------------------------------
// Determinism across the whole grid.
// ---------------------------------------------------------------------------

class DeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismTest, RepeatRunsIdentical) {
  ScenarioConfig config = base_config();
  config.horizon = 20 * kDay;
  config.outage_fraction = 0.4;
  config.mean_expiration = hours(8.0);
  config.rank_drop_fraction = 0.1;
  const Comparison a =
      compare_policies(config, PolicyConfig::adaptive(), GetParam());
  const Comparison b =
      compare_policies(config, PolicyConfig::adaptive(), GetParam());
  EXPECT_EQ(a.policy.read_ids, b.policy.read_ids);
  EXPECT_EQ(a.policy.link.downlink_messages, b.policy.link.downlink_messages);
  EXPECT_DOUBLE_EQ(a.waste_percent, b.waste_percent);
  EXPECT_DOUBLE_EQ(a.loss_percent, b.loss_percent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         ::testing::Values(1, 2, 3, 99, 12345));

}  // namespace
}  // namespace waif::experiments
