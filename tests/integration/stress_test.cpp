// Failure injection and stress: flapping links, constrained devices, many
// topics at once — invariants must hold under abuse.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "core/channel.h"
#include "core/proxy.h"
#include "device/device.h"
#include "experiments/runner.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"

namespace waif {
namespace {

using core::PolicyConfig;
using core::TopicConfig;

TEST(StressTest, FlappingLinkNeverDeliversWhileDown) {
  // The link toggles every few minutes for a month; every delivery must
  // happen inside an up-interval.
  sim::Simulator sim;
  pubsub::Broker broker(sim);
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  core::SimDeviceChannel channel(link, device);
  core::Proxy proxy(sim, channel);
  proxy.attach_to_link(link);

  TopicConfig config;
  config.options.max = 4;
  config.policy = PolicyConfig::adaptive();
  proxy.add_topic("t", config);
  broker.subscribe("t", proxy);
  core::LastHopSession session(proxy, channel);

  // Flap: down for 7 minutes out of every 10.
  std::vector<net::Outage> outages;
  for (SimTime t = 3 * kMinute; t < 30 * kDay; t += 10 * kMinute) {
    outages.push_back(net::Outage{t, t + 7 * kMinute});
  }
  net::OutageSchedule schedule(std::move(outages), 30 * kDay);
  link.apply_schedule(schedule);

  // Deliveries are already guarded by WAIF_CHECK(is_up()) in the channel;
  // this test makes sure heavy flapping never trips it and traffic flows.
  pubsub::Publisher publisher(broker, "p");
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const SimTime at = static_cast<SimTime>(rng.next_below(30ull * kDay));
    sim.schedule_at(at, [&publisher, &rng] {
      publisher.publish("t", rng.next_double() * 5.0);
    });
  }
  std::uint64_t read_total = 0;
  for (int day = 0; day < 30; ++day) {
    sim.schedule_at(day * kDay + 12 * kHour, [&session, &read_total] {
      read_total += session.user_read("t").size();
    });
  }
  sim.run_until(30 * kDay);

  EXPECT_GT(read_total, 0u);
  EXPECT_GT(link.stats().transitions, 4000u);
  EXPECT_LE(device.stats().received, link.stats().downlink_messages);
}

TEST(StressTest, TinyStorageDeviceKeepsOnlyTheBest) {
  sim::Simulator sim;
  pubsub::Broker broker(sim);
  net::Link link(sim);
  device::DeviceConfig device_config;
  device_config.storage_limit = 4;
  device::Device device(sim, DeviceId{1}, device_config);
  core::SimDeviceChannel channel(link, device);
  core::Proxy proxy(sim, channel);

  TopicConfig config;
  config.options.max = 4;
  config.policy = PolicyConfig::online();  // maximal pressure
  proxy.add_topic("t", config);
  broker.subscribe("t", proxy);

  pubsub::Publisher publisher(broker, "p");
  Rng rng(9);
  std::vector<double> ranks;
  for (int i = 0; i < 200; ++i) {
    const double rank = rng.next_double() * 5.0;
    ranks.push_back(rank);
    publisher.publish("t", rank);
  }
  EXPECT_EQ(device.queue_size(), 4u);
  EXPECT_EQ(device.stats().evicted, 196u);
  // What remains is at least as good as the 4th best seen suffix-wise; in
  // particular every held message must beat the global median by far.
  auto held = device.read(4, 0.0);
  std::sort(ranks.begin(), ranks.end());
  for (const auto& notification : held) {
    EXPECT_GE(notification->rank, ranks[ranks.size() / 2]);
  }
}

TEST(StressTest, BatteryDeathMidRunStopsAllTrafficForever) {
  workload::ScenarioConfig config;
  config.horizon = 60 * kDay;
  config.event_frequency = 32.0;
  config.user_frequency = 2.0;
  config.max = 8;
  experiments::DeviceOverrides overrides;
  overrides.battery_capacity = 100.0;

  const workload::Trace trace = workload::generate_trace(config, 4);
  const experiments::RunOutcome outcome = experiments::run_trace(
      trace, config, PolicyConfig::buffer(16), overrides);

  // Energy spent never exceeds capacity (receive+send both cost 1).
  EXPECT_LE(outcome.device.energy_used, 100.0 + 1e-9);
  EXPECT_GT(outcome.device.rejected_dead_battery, 0u);
  // The user read at most as many as the budget could ever carry.
  EXPECT_LE(outcome.read_ids.size(), 100u);
}

TEST(StressTest, ManyTopicsOneProxyIsolationHolds) {
  sim::Simulator sim;
  pubsub::Broker broker(sim);
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  core::SimDeviceChannel channel(link, device);
  core::Proxy proxy(sim, channel);
  core::LastHopSession session(proxy, channel);
  pubsub::Publisher publisher(broker, "p");

  constexpr int kTopics = 50;
  for (int t = 0; t < kTopics; ++t) {
    TopicConfig config;
    config.options.max = 2;
    config.options.threshold = 1.0;
    config.policy = PolicyConfig::on_demand();
    const std::string topic = "topic-" + std::to_string(t);
    proxy.add_topic(topic, config);
    broker.subscribe(topic, proxy, config.options);
    // Tag payloads with the topic so cross-talk would be visible.
    publisher.publish(topic, 3.0, kNever, topic);
    publisher.publish(topic, 2.0, kNever, topic);
    publisher.publish(topic, 0.5, kNever, topic);  // below threshold
  }

  for (int t = 0; t < kTopics; ++t) {
    const std::string topic = "topic-" + std::to_string(t);
    auto read = session.user_read(topic);
    ASSERT_EQ(read.size(), 2u) << topic;
    for (const auto& notification : read) {
      EXPECT_EQ(notification->topic, topic);
      EXPECT_EQ(notification->payload, topic);
      EXPECT_GE(notification->rank, 1.0);
    }
  }
  // Nothing left anywhere: every topic was drained exactly.
  EXPECT_EQ(device.queue_size(), 0u);
}

TEST(StressTest, RemoveTopicMidTrafficIsSafe) {
  sim::Simulator sim;
  pubsub::Broker broker(sim);
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  core::SimDeviceChannel channel(link, device);
  core::Proxy proxy(sim, channel);

  TopicConfig config;
  config.policy = PolicyConfig::buffer(4);
  config.policy.delay = kHour;  // pending delay timers at removal time
  proxy.add_topic("t", config);
  const SubscriptionId sub = broker.subscribe("t", proxy);
  pubsub::Publisher publisher(broker, "p");
  publisher.publish("t", 3.0, hours(2.0));
  publisher.publish("t", 4.0, hours(2.0));

  proxy.remove_topic("t");
  broker.unsubscribe(sub);
  // Timers the topic scheduled must be inert now.
  sim.run_until(kDay);
  EXPECT_EQ(device.queue_size(), 0u);
}

TEST(StressTest, YearLongAdaptiveRunStaysConsistent) {
  workload::ScenarioConfig config;
  config.horizon = kYear;
  config.event_frequency = 64.0;  // heavier than the paper's default
  config.user_frequency = 3.0;
  config.max = 8;
  config.outage_fraction = 0.6;
  config.mean_expiration = hours(18.0);
  config.rank_drop_fraction = 0.05;
  config.threshold = 1.0;

  const experiments::Comparison comparison = experiments::compare_policies(
      config, PolicyConfig::adaptive(), /*seed=*/11);
  EXPECT_GE(comparison.waste_percent, 0.0);
  EXPECT_LE(comparison.waste_percent, 100.0);
  EXPECT_GE(comparison.loss_percent, 0.0);
  EXPECT_LE(comparison.loss_percent, 100.0);
  EXPECT_LE(comparison.policy.read_ids.size(),
            comparison.policy.forwarded_unique);
  // The adaptive policy must stay far from both pathological corners.
  EXPECT_LT(comparison.waste_percent, 30.0);
  EXPECT_LT(comparison.loss_percent, 30.0);
}

}  // namespace
}  // namespace waif
