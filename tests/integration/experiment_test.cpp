// Tests of the experiment harness itself: baseline semantics, policy
// invariants and determinism, on scaled-down scenarios.
#include <gtest/gtest.h>

#include "common/time.h"
#include "experiments/runner.h"

namespace waif::experiments {
namespace {

using core::PolicyConfig;
using workload::ScenarioConfig;

ScenarioConfig quick_config() {
  ScenarioConfig config;
  config.horizon = 60 * kDay;  // scaled down for test speed
  config.event_frequency = 32.0;
  config.user_frequency = 2.0;
  config.max = 8;
  return config;
}

TEST(RunnerTest, OnlinePolicyHasZeroLossByDefinition) {
  ScenarioConfig config = quick_config();
  config.outage_fraction = 0.5;
  const Comparison comparison =
      compare_policies(config, PolicyConfig::online(), /*seed=*/1);
  EXPECT_DOUBLE_EQ(comparison.loss_percent, 0.0);
  // Identical policy, identical trace: identical read set.
  EXPECT_EQ(comparison.baseline.read_ids, comparison.policy.read_ids);
}

TEST(RunnerTest, OnDemandPolicyHasZeroWaste) {
  ScenarioConfig config = quick_config();
  config.outage_fraction = 0.3;
  const Comparison comparison =
      compare_policies(config, PolicyConfig::on_demand(), /*seed=*/2);
  EXPECT_DOUBLE_EQ(comparison.waste_percent, 0.0);
}

TEST(RunnerTest, OverflowWasteMatchesClosedForm) {
  // Figure 1's formula: waste = 1 - uf*Max/ef (event freq 32, uf 2, Max 8
  // -> 50%).
  ScenarioConfig config = quick_config();
  const Comparison comparison =
      compare_policies(config, PolicyConfig::online(), /*seed=*/3);
  EXPECT_NEAR(comparison.waste_percent, 50.0, 5.0);
}

TEST(RunnerTest, NoOverflowNoWaste) {
  ScenarioConfig config = quick_config();
  config.user_frequency = 4.0;
  config.max = 8;  // 4*8 = 32 = event frequency: the user keeps up
  const Comparison comparison =
      compare_policies(config, PolicyConfig::online(), /*seed=*/4);
  EXPECT_LT(comparison.waste_percent, 6.0);
}

TEST(RunnerTest, DeterministicAcrossCalls) {
  ScenarioConfig config = quick_config();
  config.outage_fraction = 0.5;
  config.mean_expiration = hours(6.0);
  const Comparison a =
      compare_policies(config, PolicyConfig::buffer(16), /*seed=*/5);
  const Comparison b =
      compare_policies(config, PolicyConfig::buffer(16), /*seed=*/5);
  EXPECT_DOUBLE_EQ(a.waste_percent, b.waste_percent);
  EXPECT_DOUBLE_EQ(a.loss_percent, b.loss_percent);
  EXPECT_EQ(a.policy.read_ids, b.policy.read_ids);
}

TEST(RunnerTest, FullOutageMeansNoLossAndNoTraffic) {
  // "before dropping back to 0 at the point of no connectivity".
  ScenarioConfig config = quick_config();
  config.outage_fraction = 1.0;
  const Comparison comparison =
      compare_policies(config, PolicyConfig::on_demand(), /*seed=*/6);
  EXPECT_DOUBLE_EQ(comparison.loss_percent, 0.0);
  EXPECT_TRUE(comparison.baseline.read_ids.empty());
  EXPECT_EQ(comparison.policy.link.downlink_messages, 0u);
}

TEST(RunnerTest, OnDemandLossGrowsWithOutage) {
  ScenarioConfig config = quick_config();
  config.outage_fraction = 0.1;
  const Comparison low =
      compare_policies(config, PolicyConfig::on_demand(), /*seed=*/7);
  config.outage_fraction = 0.9;
  const Comparison high =
      compare_policies(config, PolicyConfig::on_demand(), /*seed=*/7);
  EXPECT_GT(high.loss_percent, low.loss_percent);
  EXPECT_GT(high.loss_percent, 50.0);
}

TEST(RunnerTest, BufferPrefetchingBeatsOnDemandUnderOutage) {
  // The paper's core claim (Figure 3): a modest prefetch buffer pushes both
  // waste and loss down to a few percent.
  ScenarioConfig config = quick_config();
  config.outage_fraction = 0.5;
  const Comparison prefetch =
      compare_policies(config, PolicyConfig::buffer(16), /*seed=*/8);
  const Comparison on_demand =
      compare_policies(config, PolicyConfig::on_demand(), /*seed=*/8);
  EXPECT_LT(prefetch.loss_percent, on_demand.loss_percent);
  EXPECT_LT(prefetch.loss_percent, 10.0);
  EXPECT_LT(prefetch.waste_percent, 10.0);
}

TEST(RunnerTest, HugePrefetchLimitApproachesOnlineWaste) {
  ScenarioConfig config = quick_config();
  const Comparison huge =
      compare_policies(config, PolicyConfig::buffer(1 << 20), /*seed=*/9);
  const Comparison online =
      compare_policies(config, PolicyConfig::online(), /*seed=*/9);
  EXPECT_NEAR(huge.waste_percent, online.waste_percent, 3.0);
}

TEST(RunnerTest, ReadOperationsMatchTrace) {
  ScenarioConfig config = quick_config();
  const workload::Trace trace = workload::generate_trace(config, 10);
  const RunOutcome outcome =
      run_trace(trace, config, PolicyConfig::online());
  EXPECT_EQ(outcome.read_operations, trace.reads.size());
}

TEST(RunnerTest, EvaluateAggregatesSeeds) {
  ScenarioConfig config = quick_config();
  config.horizon = 30 * kDay;
  const Aggregate aggregate =
      evaluate(config, PolicyConfig::online(), /*seeds=*/3);
  EXPECT_EQ(aggregate.seeds, 3u);
  EXPECT_NEAR(aggregate.waste_percent, 50.0, 8.0);
  EXPECT_DOUBLE_EQ(aggregate.loss_percent, 0.0);
}

TEST(RunnerTest, DeviceConstraintsPropagate) {
  ScenarioConfig config = quick_config();
  config.horizon = 10 * kDay;
  DeviceOverrides overrides;
  overrides.storage_limit = 4;
  const workload::Trace trace = workload::generate_trace(config, 11);
  const RunOutcome outcome =
      run_trace(trace, config, PolicyConfig::online(), overrides);
  EXPECT_GT(outcome.device.evicted, 0u);
}

TEST(RunnerTest, BatteryDeathStopsTraffic) {
  ScenarioConfig config = quick_config();
  config.horizon = 30 * kDay;
  DeviceOverrides overrides;
  overrides.battery_capacity = 50.0;  // dies early in the run
  const workload::Trace trace = workload::generate_trace(config, 12);
  const RunOutcome outcome =
      run_trace(trace, config, PolicyConfig::online(), overrides);
  EXPECT_GT(outcome.device.rejected_dead_battery, 0u);
  // Received transfers bounded by the battery budget.
  EXPECT_LE(outcome.device.received, 51u);
}

TEST(RunnerTest, RankDropsCauseWasteUnderPrefetchButNotOnDemand) {
  ScenarioConfig config = quick_config();
  config.horizon = 60 * kDay;
  config.threshold = 2.5;
  config.rank_drop_fraction = 0.3;
  config.mean_rank_drop_delay = hours(2.0);
  const Comparison prefetch =
      compare_policies(config, PolicyConfig::buffer(1 << 20), /*seed=*/13);
  EXPECT_GT(prefetch.policy.topic.rank_change_notices, 0u);
}

}  // namespace
}  // namespace waif::experiments
