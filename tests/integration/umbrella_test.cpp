// The umbrella header must compile standalone and expose the public API.
#include "waif.h"

#include <gtest/gtest.h>

namespace waif {
namespace {

TEST(UmbrellaHeaderTest, PublicApiIsReachable) {
  sim::Simulator sim;
  pubsub::Broker broker(sim);
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  core::SimDeviceChannel channel(link, device);
  core::Proxy proxy(sim, channel);
  core::TopicConfig config;
  config.policy = core::PolicyConfig::adaptive();
  proxy.add_topic("t", config);
  broker.subscribe("t", proxy);
  pubsub::Publisher publisher(broker, "p");
  publisher.publish("t", 3.0);
  core::LastHopSession session(proxy, channel);
  EXPECT_EQ(session.user_read("t").size(), 1u);  // the READ pulls it
  EXPECT_EQ(device.queue_size(), 0u);
}

}  // namespace
}  // namespace waif
