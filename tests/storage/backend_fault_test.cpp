// FileBackend write-failure paths: the ENOSPC-style write limit (short
// write mid-record, sticky sync failure), the torn WAL tail it leaves being
// fsck-recoverable by truncation, and the write-ahead discipline holding up
// over a real filesystem — a forward whose record cannot be made durable is
// refused and the event parked instead of delivered.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/channel.h"
#include "core/proxy.h"
#include "core/topic_state.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/notification.h"
#include "sim/simulator.h"
#include "storage/backend.h"
#include "storage/fault.h"
#include "storage/persistence.h"
#include "storage/wal.h"

namespace waif::storage {
namespace {

using pubsub::Notification;
using pubsub::NotificationPtr;

std::vector<std::uint8_t> bytes(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

class BackendFaultTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir() + "waif_backend_fault_" +
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name();
  void TearDown() override { std::filesystem::remove_all(dir_); }
};

TEST_F(BackendFaultTest, WriteLimitTruncatesAndLatchesTheFailure) {
  FileBackend backend(dir_);
  backend.set_write_limit(6);

  // Within budget: lands whole, durability intact.
  backend.append("wal", bytes("head"));
  EXPECT_FALSE(backend.write_failed());
  EXPECT_TRUE(backend.sync("wal"));

  // Past budget: the write is cut short — the truncated prefix still lands
  // (the torn tail a full filesystem leaves) and the failure latches.
  backend.append("wal", bytes("+tail"));
  EXPECT_TRUE(backend.write_failed());
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(backend.read("wal", &out));
  EXPECT_EQ(out, bytes("head+t"));  // 6-byte budget: 4 + first 2 of "+tail"

  // The failure is sticky: every sync reports false until cleared, so the
  // durability boundary cannot silently move past torn data.
  EXPECT_FALSE(backend.sync("wal"));
  EXPECT_FALSE(backend.sync("wal"));
  backend.clear_write_failure();
  EXPECT_TRUE(backend.sync("wal"));
}

TEST_F(BackendFaultTest, TornWalTailIsFsckRecoverable) {
  FileBackend backend(dir_);

  // Three clean records, fully durable.
  WalWriter writer(backend, kWalBlobName);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    WalRecord record;
    record.type = WalRecordType::kEnqueue;
    record.topic = "t";
    record.event.id = NotificationId{id};
    record.event.topic = "t";
    record.stage = core::JournalStage::kOutgoing;
    writer.append(record);
  }
  ASSERT_TRUE(writer.sync());
  std::vector<std::uint8_t> before;
  ASSERT_TRUE(backend.read(kWalBlobName, &before));
  const std::size_t clean_size = before.size();

  // The disk fills: the fourth record is cut short eight bytes in — a torn
  // frame whose header promises more payload than exists.
  backend.set_write_limit(8);
  WalRecord torn;
  torn.type = WalRecordType::kEnqueue;
  torn.topic = "t";
  torn.event.id = NotificationId{4};
  torn.event.topic = "t";
  writer.append(torn);
  ASSERT_TRUE(backend.write_failed());
  EXPECT_FALSE(writer.sync());

  // fsck view: the damage is confined to the tail and the truncation point
  // is exactly the last valid frame boundary.
  WalReadResult scan = read_wal(backend);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_FALSE(scan.clean());
  EXPECT_EQ(scan.valid_bytes, clean_size);
  EXPECT_LT(scan.valid_bytes, scan.total_bytes);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[2].event.id.value, 3u);

  // Repair = truncate; the repaired log is clean with the same prefix.
  backend.truncate(kWalBlobName, scan.valid_bytes);
  WalReadResult repaired = read_wal(backend);
  EXPECT_TRUE(repaired.clean());
  EXPECT_FALSE(repaired.torn_tail);
  ASSERT_EQ(repaired.records.size(), 3u);
  EXPECT_EQ(repaired.records[0].event.id.value, 1u);
  EXPECT_EQ(repaired.records[2].event.id.value, 3u);
}

TEST_F(BackendFaultTest, ForwardIsRefusedWhenItsRecordCannotBeMadeDurable) {
  // The write-ahead discipline over a real filesystem: when the forward
  // record's fsync fails (disk full mid-record), on_forward returns false
  // and the proxy parks the event in holding instead of delivering it —
  // recovery can never observe a delivery the log missed.
  sim::Simulator sim;
  net::Link link{sim};
  device::Device device{sim, DeviceId{1}};
  core::SimDeviceChannel channel{link, device};
  core::Proxy proxy{sim, channel, "proxy"};
  core::TopicConfig config;
  config.mode = core::DeliveryMode::kOnLine;
  config.options.max = 8;
  config.options.threshold = 0.0;
  config.policy = core::PolicyConfig::online();
  proxy.add_topic("t", config);

  FileBackend backend(dir_);
  PersistenceConfig persist_config;
  persist_config.snapshot_interval = 0;  // keep the blob set to just the WAL
  ProxyPersistence persistence(sim, backend, persist_config);
  persistence.attach(proxy);

  auto arrival = [&](std::uint64_t id) {
    auto n = std::make_shared<Notification>();
    n->id = NotificationId{id};
    n->topic = "t";
    n->rank = 5.0;
    n->published_at = sim.now();
    n->expires_at = kNever;
    proxy.on_notification(n);
    sim.run();
  };

  // Healthy disk: the first event journals and reaches the device.
  arrival(1);
  ASSERT_EQ(device.queue_size(), 1u);
  ASSERT_EQ(persistence.stats().forward_refusals, 0u);
  std::vector<std::uint8_t> wal_bytes;
  ASSERT_TRUE(backend.read(kWalBlobName, &wal_bytes));

  // Disk full: the second event's record lands torn, the pre-delivery sync
  // fails, and the forward must be refused.
  backend.set_write_limit(4);
  arrival(2);
  EXPECT_EQ(device.queue_size(), 1u);  // the delivery did NOT happen
  EXPECT_GE(persistence.stats().forward_refusals, 1u);
  EXPECT_GE(persistence.stats().failed_syncs, 1u);
  const core::TopicState* state = proxy.topic("t");
  EXPECT_EQ(state->stats().forward_aborts, 1u);
  EXPECT_EQ(state->holding_size(), 1u);  // parked, not dropped
  EXPECT_EQ(state->stats().forwarded, 1u);

  // The on-disk log still fscks: damage confined to a recoverable tail.
  WalReadResult scan = read_wal(backend);
  EXPECT_FALSE(scan.clean());
  EXPECT_EQ(scan.valid_bytes, wal_bytes.size());  // the pre-fault prefix
  backend.truncate(kWalBlobName, scan.valid_bytes);
  EXPECT_TRUE(read_wal(backend).clean());

  persistence.detach();
}

// ---------------------------------------------- construction validation

TEST(StorageFaultValidationTest, RejectsEveryMalformedField) {
  const auto rejected = [](StorageFaultConfig config) {
    EXPECT_THROW(StorageFaultModel(config, 1), std::invalid_argument);
  };
  StorageFaultConfig config;

  config.fsync_failure_probability = -0.2;
  rejected(config);
  config.fsync_failure_probability = 1.01;
  rejected(config);
  config.fsync_failure_probability = std::nan("");
  rejected(config);

  config = StorageFaultConfig{};
  config.torn_write_probability = -1.0;
  rejected(config);
  config.torn_write_probability = std::nan("");
  rejected(config);

  config = StorageFaultConfig{};
  config.bit_flip_probability = 2.0;
  rejected(config);
  config.bit_flip_probability = std::nan("");
  rejected(config);
}

TEST(StorageFaultValidationTest, ErrorNamesTheOffendingField) {
  StorageFaultConfig config;
  config.torn_write_probability = -0.5;
  try {
    StorageFaultModel model(config, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("torn_write_probability"),
              std::string::npos)
        << error.what();
  }
}

TEST(StorageFaultValidationTest, BoundaryValuesAreAccepted) {
  StorageFaultConfig config;
  config.fsync_failure_probability = 1.0;
  config.torn_write_probability = 0.0;
  config.bit_flip_probability = 1.0;
  EXPECT_NO_THROW(StorageFaultModel(config, 1));
}

}  // namespace
}  // namespace waif::storage
