// The CRC32-framed write-ahead log: every record type round-trips, a torn
// or corrupted tail stops the scan at the last valid frame, and the writer's
// unsynced-window accounting matches what a crash can lose.
#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/journal.h"
#include "storage/backend.h"

namespace waif::storage {
namespace {

pubsub::Notification make_event(std::uint64_t id) {
  pubsub::Notification event;
  event.id = NotificationId{id};
  event.topic = "wal/topic";
  event.publisher = PublisherId{3};
  event.rank = 4.25;
  event.published_at = 1000;
  event.expires_at = 9000;
  event.payload = "payload";
  return event;
}

TEST(Wal, EveryRecordTypeRoundTrips) {
  MemBackend backend;
  WalWriter writer(backend, kWalBlobName);

  WalRecord enqueue;
  enqueue.type = WalRecordType::kEnqueue;
  enqueue.topic = "t";
  enqueue.at = 10;
  enqueue.event = make_event(1);
  enqueue.stage = core::JournalStage::kDelay;
  enqueue.release_at = 500;
  enqueue.fresh = true;
  enqueue.exp_tracked = true;
  enqueue.rate_credit = 0.75;
  writer.append(enqueue);

  WalRecord forward;
  forward.type = WalRecordType::kForward;
  forward.topic = "t";
  forward.at = 20;
  forward.event = make_event(2);
  forward.replicated = true;
  forward.rate_credit = 1.5;
  writer.append(forward);

  WalRecord read;
  read.type = WalRecordType::kRead;
  read.topic = "t";
  read.at = 30;
  read.request_id = 77;
  read.n = 8;
  read.queue_size = 3;
  writer.append(read);

  WalRecord sync;
  sync.type = WalRecordType::kSync;
  sync.topic = "t";
  sync.at = 40;
  sync.sync_id = 78;
  sync.queue_size = 2;
  sync.offline_reads = {{35, 8}, {38, 4}};
  writer.append(sync);

  WalRecord expire;
  expire.type = WalRecordType::kExpire;
  expire.topic = "t";
  expire.at = 50;
  expire.id = 2;
  expire.timer_fired = true;
  writer.append(expire);

  WalRecord requeue;
  requeue.type = WalRecordType::kRequeue;
  requeue.topic = "t";
  requeue.at = 60;
  requeue.event = make_event(3);
  writer.append(requeue);

  WalRecord ack;
  ack.type = WalRecordType::kAck;
  ack.topic = "t";
  ack.at = 70;
  ack.id = 3;
  writer.append(ack);

  EXPECT_EQ(writer.record_count(), 7u);

  const WalReadResult result = read_wal(backend, kWalBlobName);
  ASSERT_TRUE(result.clean());
  ASSERT_EQ(result.records.size(), 7u);

  const WalRecord& e = result.records[0];
  EXPECT_EQ(e.type, WalRecordType::kEnqueue);
  EXPECT_EQ(e.topic, "t");
  EXPECT_EQ(e.at, 10);
  EXPECT_EQ(e.event.id.value, 1u);
  EXPECT_EQ(e.event.topic, "wal/topic");
  EXPECT_EQ(e.event.rank, 4.25);
  EXPECT_EQ(e.event.payload, "payload");
  EXPECT_EQ(e.stage, core::JournalStage::kDelay);
  EXPECT_EQ(e.release_at, 500);
  EXPECT_TRUE(e.fresh);
  EXPECT_TRUE(e.exp_tracked);
  EXPECT_EQ(e.rate_credit, 0.75);

  const WalRecord& f = result.records[1];
  EXPECT_EQ(f.type, WalRecordType::kForward);
  EXPECT_EQ(f.event.id.value, 2u);
  EXPECT_TRUE(f.replicated);
  EXPECT_EQ(f.rate_credit, 1.5);

  const WalRecord& r = result.records[2];
  EXPECT_EQ(r.request_id, 77u);
  EXPECT_EQ(r.n, 8);
  EXPECT_EQ(r.queue_size, 3u);

  const WalRecord& s = result.records[3];
  EXPECT_EQ(s.sync_id, 78u);
  ASSERT_EQ(s.offline_reads.size(), 2u);
  EXPECT_EQ(s.offline_reads[1].time, 38);
  EXPECT_EQ(s.offline_reads[1].n, 4);

  EXPECT_EQ(result.records[4].id, 2u);
  EXPECT_TRUE(result.records[4].timer_fired);
  EXPECT_EQ(result.records[5].event.id.value, 3u);
  EXPECT_EQ(result.records[6].type, WalRecordType::kAck);
  EXPECT_EQ(result.records[6].id, 3u);
}

TEST(Wal, TornTailStopsTheScanAtTheLastFullFrame) {
  MemBackend backend;
  WalWriter writer(backend, kWalBlobName);
  WalRecord record;
  record.type = WalRecordType::kExpire;
  record.topic = "t";
  record.id = 1;
  writer.append(record);
  record.id = 2;
  writer.append(record);

  // Tear the log mid-frame: keep the first record plus 5 bytes of the next.
  std::vector<std::uint8_t> raw;
  ASSERT_TRUE(backend.read(kWalBlobName, &raw));
  const WalReadResult full = read_wal(backend, kWalBlobName);
  ASSERT_EQ(full.records.size(), 2u);
  const std::size_t first_frame = full.valid_bytes / 2;
  backend.truncate(kWalBlobName, first_frame + 5);

  const WalReadResult torn = read_wal(backend, kWalBlobName);
  EXPECT_FALSE(torn.clean());
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_EQ(torn.crc_failures, 0u);
  ASSERT_EQ(torn.records.size(), 1u);
  EXPECT_EQ(torn.records[0].id, 1u);
  EXPECT_EQ(torn.valid_bytes, first_frame);
}

TEST(Wal, CorruptedPayloadFailsTheCrc) {
  MemBackend backend;
  WalWriter writer(backend, kWalBlobName);
  WalRecord record;
  record.type = WalRecordType::kExpire;
  record.topic = "t";
  record.id = 1;
  writer.append(record);
  record.id = 2;
  writer.append(record);

  std::vector<std::uint8_t> raw;
  ASSERT_TRUE(backend.read(kWalBlobName, &raw));
  raw[raw.size() - 2] ^= 0xFF;  // inside the second record's payload
  backend.write(kWalBlobName, raw);

  const WalReadResult result = read_wal(backend, kWalBlobName);
  EXPECT_EQ(result.crc_failures, 1u);
  EXPECT_FALSE(result.clean());
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].id, 1u);
}

TEST(Wal, MissingBlobReadsAsEmpty) {
  MemBackend backend;
  const WalReadResult result = read_wal(backend, kWalBlobName);
  EXPECT_TRUE(result.clean());
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.total_bytes, 0u);
}

TEST(Wal, WriterTracksTheUnsyncedWindow) {
  MemBackend backend;
  WalWriter writer(backend, kWalBlobName, /*initial_count=*/10);
  WalRecord record;
  record.type = WalRecordType::kExpire;
  record.topic = "t";
  writer.append(record);
  writer.append(record);
  EXPECT_EQ(writer.record_count(), 12u);
  EXPECT_EQ(writer.unsynced_records(), 2u);
  ASSERT_TRUE(writer.sync());
  EXPECT_EQ(writer.unsynced_records(), 0u);

  writer.reset_count(5);
  EXPECT_EQ(writer.record_count(), 5u);
  EXPECT_EQ(writer.unsynced_records(), 0u);
}

}  // namespace
}  // namespace waif::storage
