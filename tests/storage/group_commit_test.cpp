// WAL group commit: batched record framing with one fsync per producing
// simulator event.
//
// Two layers of proof. The unit half pins that the staged path writes a log
// byte-identical to the per-record path (same frames, same order — only the
// backend call pattern differs) and that the writer's staging accounting is
// sound. The crash half reuses the crash-point recovery harness: with group
// commit ON, killing the proxy at EVERY WAL record index still recovers to
// the exact uninterrupted digest — the post-event flush makes the batch
// durable before any same-instant event (including the crash) can run — while
// the run fsyncs measurably fewer times than sync-every-record persistence.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/time.h"
#include "experiments/recovery_runner.h"
#include "storage/backend.h"
#include "storage/wal.h"

namespace waif::storage {
namespace {

WalRecord sample_record(std::uint64_t i) {
  WalRecord record;
  switch (i % 4) {
    case 0:
      record.type = WalRecordType::kEnqueue;
      record.stage = core::JournalStage::kOutgoing;
      break;
    case 1:
      record.type = WalRecordType::kForward;
      break;
    case 2:
      record.type = WalRecordType::kRead;
      record.request_id = i;
      record.n = static_cast<int>(i % 7);
      break;
    default:
      record.type = WalRecordType::kExpire;
      record.id = i;
      break;
  }
  record.topic = "topic/" + std::to_string(i % 3);
  record.at = static_cast<SimTime>(i * 1000);
  record.event.id = NotificationId{i + 1};
  record.event.topic = record.topic;
  record.event.rank = static_cast<double>(i % 5);
  record.event.published_at = record.at;
  record.event.payload = std::string(i % 32, 'x');
  return record;
}

TEST(WalGroupCommit, StagedLogIsByteIdenticalToPerRecordLog) {
  MemBackend per_record_backend;
  MemBackend grouped_backend;
  WalWriter per_record(per_record_backend, kWalBlobName);
  WalWriter grouped(grouped_backend, kWalBlobName);
  grouped.set_group_commit(true);

  for (std::uint64_t i = 0; i < 64; ++i) {
    const WalRecord record = sample_record(i);
    per_record.append(record);
    ASSERT_TRUE(per_record.sync());
    grouped.append(record);
    // Flush in batches of varying size: after 1, 3, 6, 10... records.
    if ((i * (i + 1) / 2) % 8 == 0) ASSERT_TRUE(grouped.sync());
  }
  ASSERT_TRUE(grouped.sync());

  std::vector<std::uint8_t> per_record_bytes;
  std::vector<std::uint8_t> grouped_bytes;
  ASSERT_TRUE(per_record_backend.read(kWalBlobName, &per_record_bytes));
  ASSERT_TRUE(grouped_backend.read(kWalBlobName, &grouped_bytes));
  EXPECT_EQ(per_record_bytes, grouped_bytes);

  // Both logs decode to the same 64 records.
  const WalReadResult decoded = read_wal(grouped_backend);
  EXPECT_TRUE(decoded.clean());
  ASSERT_EQ(decoded.records.size(), 64u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(decoded.records[i].topic, sample_record(i).topic);
  }
}

TEST(WalGroupCommit, StagingAccountingAndCrashSemantics) {
  MemBackend backend;
  WalWriter writer(backend, kWalBlobName);
  writer.set_group_commit(true);

  for (std::uint64_t i = 0; i < 5; ++i) writer.append(sample_record(i));
  EXPECT_EQ(writer.staged_records(), 5u);
  EXPECT_EQ(writer.unsynced_records(), 5u);
  // Staged frames have not even reached the backend's volatile cache.
  EXPECT_EQ(backend.size(kWalBlobName), 0u);

  writer.flush();
  EXPECT_EQ(writer.staged_records(), 0u);
  EXPECT_EQ(writer.unsynced_records(), 5u);  // flushed but not yet fsynced
  EXPECT_GT(backend.size(kWalBlobName), 0u);
  EXPECT_EQ(backend.durable_size(kWalBlobName), 0u);

  // A crash before sync loses the whole batch — the documented window.
  backend.crash();
  EXPECT_FALSE(backend.exists(kWalBlobName));

  writer.append(sample_record(7));
  ASSERT_TRUE(writer.sync());
  EXPECT_EQ(writer.unsynced_records(), 0u);
  EXPECT_EQ(backend.durable_size(kWalBlobName), backend.size(kWalBlobName));

  // Turning the mode off flushes anything staged.
  writer.append(sample_record(8));
  EXPECT_EQ(writer.staged_records(), 1u);
  writer.set_group_commit(false);
  EXPECT_EQ(writer.staged_records(), 0u);
  const WalReadResult decoded = read_wal(backend);
  EXPECT_EQ(decoded.records.size(), 2u);
}

// --- crash sweep over the recovery harness ----------------------------------

experiments::RecoveryPlan group_commit_plan() {
  experiments::RecoveryPlan plan;
  plan.scenario = experiments::recovery_scenario();
  plan.scenario.horizon = 1 * kDay;  // keep the every-record sweep cheap
  plan.seed = 11;
  plan.persistence.group_commit = true;
  plan.persistence.sync_on_forward = true;
  plan.persistence.snapshot_interval = 64;
  return plan;
}

TEST(WalGroupCommit, CrashInsideBatchedFlushRecoversExactlyAtEveryRecord) {
  const experiments::RecoveryPlan plan = group_commit_plan();
  const experiments::RecoveryOutcome baseline =
      experiments::run_recovery_plan(plan);
  ASSERT_GT(baseline.records_logged, 50u);
  ASSERT_EQ(baseline.crashes, 0u);

  for (std::uint64_t n = 1; n <= baseline.records_logged; ++n) {
    experiments::RecoveryPlan crashed = plan;
    crashed.crash_at_record = static_cast<std::int64_t>(n);
    const experiments::RecoveryOutcome outcome =
        experiments::run_recovery_plan(crashed);
    ASSERT_EQ(outcome.crashes, 1u) << "crash at record " << n;
    // The post-event flush ran before the crash event could: nothing staged,
    // nothing unsynced, nothing lost.
    ASSERT_EQ(outcome.lost_window, 0u) << "crash at record " << n;
    ASSERT_EQ(outcome.read_digest, baseline.read_digest)
        << "crash at record " << n;
    ASSERT_EQ(outcome.total_read, baseline.total_read)
        << "crash at record " << n;
    ASSERT_EQ(outcome.records_logged, baseline.records_logged)
        << "crash at record " << n;
    ASSERT_EQ(outcome.duplicate_user_reads, 0u) << "crash at record " << n;
    ASSERT_TRUE(outcome.fsck_recoverable) << "crash at record " << n;
  }
}

TEST(WalGroupCommit, GroupCommitMatchesPerRecordDigestWithFewerFsyncs) {
  experiments::RecoveryPlan grouped = group_commit_plan();

  experiments::RecoveryPlan per_record = grouped;
  per_record.persistence.group_commit = false;
  per_record.persistence.sync_interval = 1;

  const experiments::RecoveryOutcome grouped_outcome =
      experiments::run_recovery_plan(grouped);
  const experiments::RecoveryOutcome per_record_outcome =
      experiments::run_recovery_plan(per_record);

  // Same run, same log, same reads — group commit is behavior-neutral.
  EXPECT_EQ(grouped_outcome.read_digest, per_record_outcome.read_digest);
  EXPECT_EQ(grouped_outcome.records_logged, per_record_outcome.records_logged);
  EXPECT_EQ(grouped_outcome.total_read, per_record_outcome.total_read);
  // ... but fsyncs once per producing event instead of once per record.
  EXPECT_LT(grouped_outcome.wal_syncs, per_record_outcome.wal_syncs);
  EXPECT_GT(grouped_outcome.wal_syncs, 0u);
}

}  // namespace
}  // namespace waif::storage
