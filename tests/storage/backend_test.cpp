// Storage backends: the deterministic in-sim MemBackend with its crash
// semantics (only the synced prefix of a blob survives, modulo the injected
// torn-write/bit-flip faults) and the real FileBackend.
#include "storage/backend.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "storage/fault.h"

namespace waif::storage {
namespace {

std::vector<std::uint8_t> bytes(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

TEST(MemBackend, ListsSortedAndReadsBack) {
  MemBackend backend;
  backend.write("b", bytes("two"));
  backend.write("a", bytes("one"));
  backend.append("a", bytes("+more"));

  EXPECT_EQ(backend.list(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(backend.exists("a"));
  EXPECT_FALSE(backend.exists("c"));

  std::vector<std::uint8_t> out;
  ASSERT_TRUE(backend.read("a", &out));
  EXPECT_EQ(out, bytes("one+more"));
  EXPECT_FALSE(backend.read("c", &out));

  backend.remove("a");
  EXPECT_FALSE(backend.exists("a"));
}

TEST(MemBackend, CrashDiscardsEverythingNeverSynced) {
  MemBackend backend;
  backend.append("wal", bytes("never-synced"));
  backend.crash();
  // The file never reached the directory: gone entirely.
  EXPECT_FALSE(backend.exists("wal"));
}

TEST(MemBackend, CrashKeepsOnlyTheDurablePrefix) {
  MemBackend backend;
  backend.append("wal", bytes("durable"));
  ASSERT_TRUE(backend.sync("wal"));
  backend.append("wal", bytes("+lost"));
  EXPECT_EQ(backend.durable_size("wal"), 7u);
  EXPECT_EQ(backend.size("wal"), 12u);

  backend.crash();
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(backend.read("wal", &out));
  EXPECT_EQ(out, bytes("durable"));
}

TEST(MemBackend, RewriteInvalidatesTheOldDurablePrefix) {
  MemBackend backend;
  backend.write("snap", bytes("old"));
  ASSERT_TRUE(backend.sync("snap"));
  backend.write("snap", bytes("replacement"));  // durable resets to zero
  backend.crash();
  // The blob was synced once, so the name survives — but none of the
  // unsynced replacement does.
  ASSERT_TRUE(backend.exists("snap"));
  EXPECT_EQ(backend.size("snap"), 0u);
}

TEST(MemBackend, TruncateShrinksDataAndDurable) {
  MemBackend backend;
  backend.append("wal", bytes("0123456789"));
  ASSERT_TRUE(backend.sync("wal"));
  backend.truncate("wal", 4);
  EXPECT_EQ(backend.size("wal"), 4u);
  EXPECT_EQ(backend.durable_size("wal"), 4u);
  backend.truncate("wal", 100);  // growing is a no-op
  EXPECT_EQ(backend.size("wal"), 4u);
}

TEST(MemBackend, FaultModelFailsSyncs) {
  StorageFaultConfig config;
  config.fsync_failure_probability = 1.0;
  StorageFaultModel fault(config, /*seed=*/1);
  MemBackend backend;
  backend.set_fault_model(&fault);

  backend.append("wal", bytes("data"));
  EXPECT_FALSE(backend.sync("wal"));
  EXPECT_EQ(backend.durable_size("wal"), 0u);
  EXPECT_GT(fault.stats().fsync_failures, 0u);
}

TEST(MemBackend, TornWriteKeepsAStrictPrefixOfTheTail) {
  StorageFaultConfig config;
  config.torn_write_probability = 1.0;
  StorageFaultModel fault(config, /*seed=*/3);
  MemBackend backend;
  backend.set_fault_model(&fault);

  backend.append("wal", bytes("durable!"));
  ASSERT_TRUE(backend.sync("wal"));
  backend.append("wal", bytes("unsynced-tail"));
  backend.crash();

  // Something in [durable, durable + tail) survived — never the whole tail.
  EXPECT_GE(backend.size("wal"), 8u);
  EXPECT_LT(backend.size("wal"), 8u + 13u);
  EXPECT_EQ(backend.durable_size("wal"), backend.size("wal"));
}

TEST(MemBackend, BitFlipCorruptsOnlyTheSurvivingTail) {
  StorageFaultConfig config;
  config.torn_write_probability = 1.0;
  config.bit_flip_probability = 1.0;
  MemBackend backend;

  // Seed-hunt for a crash whose torn tail is non-empty, then verify the
  // durable prefix came through untouched.
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    StorageFaultModel fault(config, seed);
    backend.set_fault_model(&fault);
    backend.remove("wal");
    backend.append("wal", bytes("durable!"));
    ASSERT_TRUE(backend.sync("wal"));
    backend.append("wal", bytes("tail"));
    backend.crash();
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(backend.read("wal", &out));
    ASSERT_GE(out.size(), 8u);
    EXPECT_EQ(std::vector<std::uint8_t>(out.begin(), out.begin() + 8),
              bytes("durable!"));
    if (out.size() > 8 && fault.stats().bit_flips > 0) return;  // covered
  }
  FAIL() << "no seed produced a surviving, bit-flipped tail";
}

class FileBackendTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir() + "waif_backend_" +
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name();
  void TearDown() override { std::filesystem::remove_all(dir_); }
};

TEST_F(FileBackendTest, RoundTripsWriteAppendTruncateRemove) {
  FileBackend backend(dir_);
  backend.write("wal", bytes("head"));
  backend.append("wal", bytes("+tail"));
  backend.write("snap-000001", bytes("snapshot"));

  EXPECT_EQ(backend.list(),
            (std::vector<std::string>{"snap-000001", "wal"}));
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(backend.read("wal", &out));
  EXPECT_EQ(out, bytes("head+tail"));
  EXPECT_TRUE(backend.sync("wal"));

  backend.truncate("wal", 4);
  ASSERT_TRUE(backend.read("wal", &out));
  EXPECT_EQ(out, bytes("head"));

  backend.remove("snap-000001");
  EXPECT_FALSE(backend.exists("snap-000001"));
  EXPECT_FALSE(backend.read("snap-000001", &out));
}

TEST_F(FileBackendTest, ReopeningSeesPersistedBlobs) {
  {
    FileBackend backend(dir_);
    backend.write("wal", bytes("persisted"));
  }
  FileBackend reopened(dir_);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(reopened.read("wal", &out));
  EXPECT_EQ(out, bytes("persisted"));
}

TEST_F(FileBackendTest, FaultModelFailsSyncsOnRealFilesToo) {
  StorageFaultConfig config;
  config.fsync_failure_probability = 1.0;
  StorageFaultModel fault(config, /*seed=*/9);
  FileBackend backend(dir_);
  backend.set_fault_model(&fault);
  backend.write("wal", bytes("data"));
  EXPECT_FALSE(backend.sync("wal"));
}

}  // namespace
}  // namespace waif::storage
