// Differential crash/recovery tests over the crash-point harness
// (experiments/recovery_runner.h): the digest of (run, crash at record N,
// recover, continue) is compared against the uninterrupted run.
//
// The headline theorem: with sync-every-record persistence and no storage
// faults, recovery is EXACT at every single record index — same reads, same
// instants, same ids, same final record count. The remaining tests relax
// the sync policy and inject storage faults, checking the documented
// bounded-loss and no-duplicate guarantees instead of exact identity.
#include "experiments/recovery_runner.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/time.h"

namespace waif::experiments {
namespace {

RecoveryPlan base_plan() {
  RecoveryPlan plan;
  plan.scenario = recovery_scenario();
  plan.seed = 7;
  return plan;
}

TEST(RecoveryRunner, PersistenceIsBehaviorNeutralWithoutFaults) {
  // Journaling every mutation and snapshotting must not perturb the run:
  // the persistence-off control and the persistence-on run read the exact
  // same notifications at the exact same instants.
  RecoveryPlan off = base_plan();
  off.persist = false;
  RecoveryPlan on = base_plan();
  on.persistence.snapshot_interval = 64;

  const RecoveryOutcome control = run_recovery_plan(off);
  const RecoveryOutcome journaled = run_recovery_plan(on);

  EXPECT_EQ(control.read_digest, journaled.read_digest);
  EXPECT_EQ(control.total_read, journaled.total_read);
  EXPECT_EQ(control.read_operations, journaled.read_operations);
  EXPECT_EQ(control.records_logged, 0u);
  EXPECT_GT(journaled.records_logged, 100u);
  EXPECT_GT(journaled.snapshots, 0u);
  EXPECT_TRUE(journaled.fsck_recoverable);
}

TEST(RecoveryRunner, CrashAtEveryRecordRecoversExactly) {
  // The acceptance sweep: kill the proxy at EVERY record index of the
  // three-topic scenario. With the smallest loss window (sync every record,
  // write-ahead forwards) and instant restart, the recovered run must be
  // byte-identical to the uninterrupted one.
  RecoveryPlan plan = base_plan();
  plan.persistence.sync_interval = 1;
  plan.persistence.sync_on_forward = true;
  plan.persistence.snapshot_interval = 64;

  const RecoveryOutcome baseline = run_recovery_plan(plan);
  ASSERT_GT(baseline.records_logged, 100u);
  ASSERT_EQ(baseline.crashes, 0u);

  for (std::uint64_t n = 1; n <= baseline.records_logged; ++n) {
    RecoveryPlan crashed = plan;
    crashed.crash_at_record = static_cast<std::int64_t>(n);
    const RecoveryOutcome outcome = run_recovery_plan(crashed);
    ASSERT_EQ(outcome.crashes, 1u) << "crash at record " << n;
    ASSERT_EQ(outcome.lost_window, 0u) << "crash at record " << n;
    ASSERT_EQ(outcome.read_digest, baseline.read_digest)
        << "crash at record " << n;
    ASSERT_EQ(outcome.total_read, baseline.total_read)
        << "crash at record " << n;
    ASSERT_EQ(outcome.records_logged, baseline.records_logged)
        << "crash at record " << n;
    ASSERT_EQ(outcome.duplicate_user_reads, 0u) << "crash at record " << n;
    ASSERT_TRUE(outcome.fsck_recoverable) << "crash at record " << n;
  }
}

TEST(RecoveryRunner, SnapshotIntervalDoesNotChangeRecovery) {
  // Whether recovery starts from a snapshot plus a short tail or replays
  // the whole log from scratch, the rebuilt proxy is the same proxy.
  RecoveryPlan never = base_plan();
  never.persistence.snapshot_interval = 0;  // recovery = full-log replay
  never.crash_at_record = 150;
  RecoveryPlan frequent = base_plan();
  frequent.persistence.snapshot_interval = 16;
  frequent.crash_at_record = 150;

  const RecoveryOutcome from_log = run_recovery_plan(never);
  const RecoveryOutcome from_snapshot = run_recovery_plan(frequent);

  EXPECT_FALSE(from_log.recovered_from_snapshot);
  EXPECT_TRUE(from_snapshot.recovered_from_snapshot);
  EXPECT_LT(from_snapshot.replayed, from_log.replayed);
  EXPECT_EQ(from_log.read_digest, from_snapshot.read_digest);
  EXPECT_EQ(from_log.total_read, from_snapshot.total_read);
}

TEST(RecoveryRunner, BatchedSyncLossIsBoundedByTheUnsyncedWindow) {
  // sync_interval 32 without write-ahead forwards: a crash discards at most
  // the unsynced tail. The run may lose (or re-deliver) a bounded handful
  // of reads, never an expired notification.
  RecoveryPlan plan = base_plan();
  plan.persistence.sync_interval = 32;
  plan.persistence.sync_on_forward = false;
  plan.persistence.snapshot_interval = 64;

  const RecoveryOutcome baseline = run_recovery_plan(plan);
  ASSERT_GT(baseline.records_logged, 100u);

  for (std::uint64_t n = 10; n <= baseline.records_logged; n += 37) {
    RecoveryPlan crashed = plan;
    crashed.crash_at_record = static_cast<std::int64_t>(n);
    const RecoveryOutcome outcome = run_recovery_plan(crashed);
    ASSERT_EQ(outcome.crashes, 1u) << "crash at record " << n;
    ASSERT_LE(outcome.lost_window, 32u) << "crash at record " << n;
    // Every lost record forfeits at most one read; behavioural divergence
    // after the loss can shift a read boundary, hence the small slack.
    const std::int64_t loss = static_cast<std::int64_t>(baseline.total_read) -
                              static_cast<std::int64_t>(outcome.total_read);
    ASSERT_LE(loss, static_cast<std::int64_t>(outcome.lost_window) +
                        2 * plan.scenario.max)
        << "crash at record " << n;
    ASSERT_TRUE(outcome.fsck_recoverable) << "crash at record " << n;
  }
}

TEST(RecoveryRunner, FailedFsyncsRefuseForwardsButStaySafe)  {
  // fsync failures with the write-ahead discipline on: the delivery whose
  // record could not be made durable is refused (parked), never performed
  // unlogged. Duplicates stay impossible; the run itself aborts otherwise.
  RecoveryPlan plan = base_plan();
  plan.storage_fault.fsync_failure_probability = 0.2;
  plan.crash_at_record = 120;

  const RecoveryOutcome outcome = run_recovery_plan(plan);
  EXPECT_EQ(outcome.crashes, 1u);
  EXPECT_GT(outcome.storage_faults.fsync_failures, 0u);
  EXPECT_GT(outcome.forward_refusals, 0u);
  EXPECT_EQ(outcome.duplicate_user_reads, 0u);
  EXPECT_TRUE(outcome.fsck_recoverable);
}

TEST(RecoveryRunner, TornWritesAndBitFlipsAreTruncatedAway) {
  // A crash that leaves a torn, bit-flipped tail: recovery must reject the
  // damage (CRC), repair the log by truncation and continue from the last
  // durable record — still no duplicates, nothing expired delivered.
  RecoveryPlan plan = base_plan();
  plan.persistence.sync_interval = 16;  // leave an unsynced tail to tear
  plan.storage_fault.torn_write_probability = 1.0;
  plan.storage_fault.bit_flip_probability = 0.5;

  bool saw_repair = false;
  for (std::uint64_t n = 40; n <= 160; n += 40) {
    RecoveryPlan crashed = plan;
    crashed.crash_at_record = static_cast<std::int64_t>(n);
    crashed.storage_fault_seed = 0xBADF00D + n;
    const RecoveryOutcome outcome = run_recovery_plan(crashed);
    ASSERT_EQ(outcome.crashes, 1u) << "crash at record " << n;
    ASSERT_EQ(outcome.duplicate_user_reads, 0u) << "crash at record " << n;
    ASSERT_TRUE(outcome.fsck_recoverable) << "crash at record " << n;
    saw_repair = saw_repair || outcome.wal_repairs > 0 ||
                 outcome.storage_faults.torn_writes > 0;
  }
  EXPECT_TRUE(saw_repair);
}

TEST(RecoveryRunner, RestartDelayLosesOnlyTheDowntime) {
  // A two-hour repair window: events published meanwhile are lost upstream,
  // reads are served from the device buffer, and the recovered proxy picks
  // the run back up. Safety still holds; the read volume can only shrink.
  RecoveryPlan plan = base_plan();
  plan.crash_at_record = 100;
  plan.restart_delay = 2 * kHour;

  const RecoveryOutcome baseline = run_recovery_plan(base_plan());
  const RecoveryOutcome outcome = run_recovery_plan(plan);
  EXPECT_EQ(outcome.crashes, 1u);
  EXPECT_LE(outcome.total_read, baseline.total_read);
  EXPECT_GT(outcome.total_read, 0u);
  EXPECT_EQ(outcome.duplicate_user_reads, 0u);
}

TEST(RecoveryRunner, ReliableChannelRecoveryTrustsOrRequeues) {
  // Over the reliable transport the ACK stream is journaled. Trusting the
  // log keeps the no-duplicate guarantee; requeuing the in-doubt events
  // re-sends them on purpose (the documented tradeoff) but must still never
  // deliver anything expired.
  RecoveryPlan trust = base_plan();
  trust.reliable_channel = true;
  trust.crash_at_record = 120;

  const RecoveryOutcome trusted = run_recovery_plan(trust);
  EXPECT_EQ(trusted.crashes, 1u);
  EXPECT_EQ(trusted.duplicate_user_reads, 0u);
  EXPECT_TRUE(trusted.fsck_recoverable);

  RecoveryPlan requeue = trust;
  requeue.unacked = storage::RecoverUnacked::kRequeueHolding;
  const RecoveryOutcome requeued = run_recovery_plan(requeue);
  EXPECT_EQ(requeued.crashes, 1u);
  EXPECT_GT(requeued.total_read, 0u);
}

}  // namespace
}  // namespace waif::experiments
