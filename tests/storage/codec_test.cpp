#include "storage/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace waif::storage {
namespace {

TEST(Crc32, MatchesTheIeeeCheckValue) {
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check, sizeof(check)), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, DetectsASingleFlippedBit) {
  std::vector<std::uint8_t> data(64, 0xAB);
  const std::uint32_t clean = crc32(data);
  data[17] ^= 0x04;
  EXPECT_NE(crc32(data), clean);
}

TEST(ByteCodec, RoundTripsEveryFieldType) {
  ByteWriter writer;
  writer.u8(0x7F);
  writer.u32(0xDEADBEEFu);
  writer.u64(0x0123456789ABCDEFull);
  writer.i64(-42);
  writer.f64(3.14159);
  writer.f64(-0.0);
  writer.f64(std::numeric_limits<double>::infinity());
  writer.str("hello");
  writer.str("");

  const std::vector<std::uint8_t> bytes = writer.take();
  ByteReader reader(bytes);
  EXPECT_EQ(reader.u8(), 0x7F);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.i64(), -42);
  EXPECT_EQ(reader.f64(), 3.14159);
  // Bit-exact doubles: -0.0 must come back as -0.0, not +0.0.
  EXPECT_TRUE(std::signbit(reader.f64()));
  EXPECT_EQ(reader.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(reader.str(), "hello");
  EXPECT_EQ(reader.str(), "");
  EXPECT_TRUE(reader.exhausted());
  EXPECT_FALSE(reader.failed());
}

TEST(ByteCodec, OverrunFailsAndStaysFailed) {
  ByteWriter writer;
  writer.u32(7);
  const std::vector<std::uint8_t> bytes = writer.take();

  ByteReader reader(bytes);
  EXPECT_EQ(reader.u32(), 7u);
  EXPECT_EQ(reader.u64(), 0u);  // overrun: zero, not garbage
  EXPECT_TRUE(reader.failed());
  EXPECT_EQ(reader.u8(), 0u);  // failure is sticky
  EXPECT_FALSE(reader.exhausted());
}

TEST(ByteCodec, TruncatedStringLengthFails) {
  ByteWriter writer;
  writer.u32(1000);  // a length prefix with no such payload behind it
  const std::vector<std::uint8_t> bytes = writer.take();

  ByteReader reader(bytes);
  EXPECT_EQ(reader.str(), "");
  EXPECT_TRUE(reader.failed());
}

}  // namespace
}  // namespace waif::storage
