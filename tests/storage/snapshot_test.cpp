// Snapshot codec and round-trip fidelity: a TopicState rebuilt from its
// snapshot is indistinguishable (it re-snapshots to the same bytes), damaged
// blobs are rejected wholesale, and load_latest_snapshot falls back to the
// newest valid checkpoint.
#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "core/channel.h"
#include "core/read_protocol.h"
#include "core/reliable_channel.h"
#include "core/topic_state.h"
#include "device/device.h"
#include "net/link.h"
#include "sim/simulator.h"
#include "storage/backend.h"

namespace waif::storage {
namespace {

TEST(SnapshotNames, FixedWidthAndParseable) {
  EXPECT_EQ(snapshot_blob_name(7), "snap-000007");
  EXPECT_EQ(snapshot_blob_name(123456), "snap-123456");
  std::uint64_t seq = 0;
  ASSERT_TRUE(parse_snapshot_name("snap-000042", &seq));
  EXPECT_EQ(seq, 42u);
  EXPECT_FALSE(parse_snapshot_name("snap-", &seq));
  EXPECT_FALSE(parse_snapshot_name("snap-12x", &seq));
  EXPECT_FALSE(parse_snapshot_name("wal", &seq));
}

pubsub::Notification make_event(std::uint64_t id, double rank) {
  pubsub::Notification event;
  event.id = NotificationId{id};
  event.topic = "snap/topic";
  event.publisher = PublisherId{9};
  event.rank = rank;
  event.published_at = 100;
  event.expires_at = id % 2 == 0 ? 5000 : kNever;
  event.payload = "p" + std::to_string(id);
  return event;
}

ProxySnapshot sample_snapshot() {
  ProxySnapshot snapshot;
  snapshot.watermark = 321;
  snapshot.taken_at = 42 * kHour;
  snapshot.has_channel = true;
  snapshot.channel.next_seq = 17;
  snapshot.channel.seen = {3, 1, 9};

  core::TopicSnapshot topic;
  topic.outgoing = {make_event(1, 4.0)};
  topic.prefetch = {make_event(2, 3.0), make_event(3, 2.5)};
  topic.holding = {make_event(4, 1.0)};
  topic.delayed.push_back({make_event(5, 2.0), 7 * kHour});
  topic.history = {make_event(1, 4.0), make_event(2, 3.0)};
  topic.forwarded = {1, 2};
  topic.expiration_armed.push_back({4, 5000});
  topic.seen_read_ids = {70, 71};
  topic.seen_sync_ids = {80};
  topic.old_reads.samples = {4.0, 2.0};
  topic.old_reads.sum = 6.0;
  topic.read_times.diffs.samples = {3600.0};
  topic.read_times.diffs.sum = 3600.0;
  topic.read_times.last = 7200.0;
  topic.exp_times.samples = {100.0};
  topic.exp_times.sum = 100.0;
  topic.arrival_times.diffs.samples = {10.0, 20.0};
  topic.arrival_times.diffs.sum = 30.0;
  topic.arrival_times.last = 500.0;
  topic.queue_size_view = 3;
  topic.rate_credit = 0.5;
  topic.current_day = 2;
  topic.forwarded_today = 7;
  snapshot.topics.emplace_back("a", std::move(topic));
  snapshot.topics.emplace_back("b", core::TopicSnapshot{});
  return snapshot;
}

TEST(SnapshotCodec, RoundTripsTheFullImage) {
  const ProxySnapshot original = sample_snapshot();
  const std::vector<std::uint8_t> bytes = encode_snapshot(original);

  ProxySnapshot decoded;
  ASSERT_TRUE(decode_snapshot(bytes, &decoded));
  // Re-encoding the decoded image must be byte-identical: every field made
  // the trip, including bit-exact doubles.
  EXPECT_EQ(encode_snapshot(decoded), bytes);
  EXPECT_EQ(decoded.watermark, 321u);
  EXPECT_EQ(decoded.channel.seen, (std::vector<std::uint64_t>{3, 1, 9}));
  ASSERT_EQ(decoded.topics.size(), 2u);
  EXPECT_EQ(decoded.topics[0].first, "a");
  EXPECT_EQ(decoded.topics[0].second.delayed.size(), 1u);
  EXPECT_EQ(decoded.topics[0].second.delayed[0].release_at, 7 * kHour);
}

TEST(SnapshotCodec, RejectsDamage) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(sample_snapshot());
  ProxySnapshot decoded;

  std::vector<std::uint8_t> flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x10;
  EXPECT_FALSE(decode_snapshot(flipped, &decoded));

  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 7);
  EXPECT_FALSE(decode_snapshot(truncated, &decoded));

  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(decode_snapshot(bad_magic, &decoded));

  EXPECT_FALSE(decode_snapshot({}, &decoded));
}

TEST(SnapshotCodec, LoadLatestSkipsDamagedSnapshots) {
  MemBackend backend;
  ProxySnapshot older = sample_snapshot();
  older.watermark = 100;
  backend.write(snapshot_blob_name(1), encode_snapshot(older));

  ProxySnapshot newer = sample_snapshot();
  newer.watermark = 200;
  std::vector<std::uint8_t> damaged = encode_snapshot(newer);
  damaged[damaged.size() / 2] ^= 0x01;
  backend.write(snapshot_blob_name(2), damaged);
  backend.write("wal", {1, 2, 3});  // non-snapshot blobs are ignored

  ProxySnapshot loaded;
  std::uint64_t seq = 0;
  std::uint64_t damaged_count = 0;
  ASSERT_TRUE(load_latest_snapshot(backend, &loaded, &seq, &damaged_count));
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(loaded.watermark, 100u);
  EXPECT_EQ(damaged_count, 1u);
}

/// Serializes one topic image so two TopicStates can be compared for exact
/// equality, moving averages and all.
std::vector<std::uint8_t> canonical_bytes(const core::TopicSnapshot& topic) {
  ProxySnapshot wrapper;
  wrapper.topics.emplace_back("t", topic);
  return encode_snapshot(wrapper);
}

TEST(SnapshotRoundTrip, RestoredTopicStateIsIndistinguishable) {
  sim::Simulator sim;
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  core::SimDeviceChannel channel(link, device);

  core::TopicConfig config;
  config.options.max = 4;
  config.policy = core::PolicyConfig::adaptive();
  config.policy.delay = 20 * kMinute;
  core::TopicState state(sim, channel, "t", config);

  auto publish = [&state](std::uint64_t id, double rank, SimTime expires) {
    auto event = std::make_shared<pubsub::Notification>();
    event->id = NotificationId{id};
    event->topic = "t";
    event->publisher = PublisherId{1};
    event->rank = rank;
    event->published_at = 0;
    event->expires_at = expires;
    state.handle_notification(event);
  };

  // A mixed mid-run state: delayed arrivals, a training read, an outage
  // with traffic piling into outgoing, an armed expiration.
  sim.schedule_at(0, [&] {
    publish(1, 4.0, kNever);
    publish(2, 3.0, 3 * kHour);
    publish(3, 1.5, kNever);
  });
  sim.schedule_at(45 * kMinute, [&] {
    core::ReadRequest request;
    request.request_id = 1;
    request.n = 4;
    request.queue_size = device.queue_size("t");
    request.client_events = device.top_ids("t", 4, 0.0);
    state.handle_read(request);  // the difference arrives via the channel
  });
  sim.schedule_at(50 * kMinute, [&] { publish(4, 2.0, 6 * kHour); });
  sim.schedule_at(55 * kMinute, [&] {
    state.handle_network(net::LinkState::kDown);
    publish(5, 4.5, kNever);
  });
  sim.run_until(kHour);

  const core::TopicSnapshot snapshot = state.snapshot();

  net::Link link2(sim);
  device::Device device2(sim, DeviceId{2});
  core::SimDeviceChannel channel2(link2, device2);
  core::TopicState rebuilt(sim, channel2, "t", config);
  rebuilt.restore(snapshot);

  EXPECT_EQ(canonical_bytes(rebuilt.snapshot()), canonical_bytes(snapshot));
}

TEST(SnapshotRoundTrip, ReliableChannelKeepsSeqAndDedupWindow) {
  sim::Simulator sim;
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  core::ReliableDeviceChannel channel(sim, link, device, {}, /*seed=*/42);

  for (std::uint64_t id = 1; id <= 3; ++id) {
    auto event = std::make_shared<pubsub::Notification>();
    event->id = NotificationId{id};
    event->topic = "t";
    event->rank = 3.0;
    channel.deliver(event);
  }
  sim.run_until(kMinute);  // let the transfers complete
  const core::ChannelSnapshot snapshot = channel.snapshot();
  EXPECT_EQ(snapshot.next_seq, 4u);  // three transfers: seqs 1..3 spent
  EXPECT_EQ(snapshot.seen.size(), 3u);

  core::ReliableDeviceChannel rebuilt(sim, link, device, {}, /*seed=*/43);
  rebuilt.restore(snapshot);
  const core::ChannelSnapshot again = rebuilt.snapshot();
  EXPECT_EQ(again.next_seq, snapshot.next_seq);
  EXPECT_EQ(again.seen, snapshot.seen);
}

}  // namespace
}  // namespace waif::storage
