// ProxyPersistence wired into the replication layer: the journal follows
// the active replica across a failover (on_promoted re-bases the log with a
// checkpoint of the promoted proxy), and restart_replica warm-starts the
// rebuilt replica from the durable state instead of cold.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/time.h"
#include "core/replication.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"
#include "storage/backend.h"
#include "storage/persistence.h"
#include "storage/snapshot.h"

namespace waif::storage {
namespace {

constexpr char kTopic[] = "replicated/topic";

core::TopicConfig topic_config() {
  core::TopicConfig config;
  config.options.max = 8;
  config.policy = core::PolicyConfig::buffer(16);
  return config;
}

std::vector<std::uint8_t> canonical_bytes(const core::TopicSnapshot& topic) {
  ProxySnapshot wrapper;
  wrapper.topics.emplace_back(kTopic, topic);
  return encode_snapshot(wrapper);
}

TEST(ReplicatedRecovery, JournalFollowsFailoverAndWarmStartsReplicas) {
  sim::Simulator sim;
  pubsub::Broker broker(sim, 4096);
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});

  core::ReplicationConfig replication;
  replication.replication_latency = 50 * kMillisecond;
  replication.heartbeat_interval = 30 * kSecond;
  replication.suspicion_timeout = 5 * kMinute;
  core::ReplicatedProxy proxy(sim, link, device, replication);
  proxy.add_topic(kTopic, topic_config());
  broker.subscribe(kTopic, proxy, topic_config().options);

  MemBackend backend;
  ProxyPersistence persistence(sim, backend, {});
  proxy.set_recovery(&persistence);
  persistence.attach(proxy.active_proxy());

  pubsub::Publisher publisher(broker, "workload");
  publisher.advertise(kTopic);
  for (int i = 0; i < 48; ++i) {
    sim.schedule_at(i * kHour + 7 * kMinute, [&publisher, i] {
      publisher.publish(kTopic, 1.0 + (i % 4), kNever);
    });
  }
  for (int i = 0; i < 4; ++i) {
    sim.schedule_at((10 + 10 * i) * kHour, [&proxy] { proxy.user_read(kTopic); });
  }
  // Kill the active replica mid-run; the failure detector must promote the
  // standby, and on_promoted must re-attach the journal to it.
  sim.schedule_at(20 * kHour, [&proxy] { proxy.crash_active(); });

  sim.run_until(30 * kHour);
  ASSERT_EQ(proxy.stats().auto_promotions, 1u);
  const std::uint64_t records_at_30h = persistence.record_count();
  EXPECT_GT(records_at_30h, 0u);
  // The promotion checkpointed the new active's state.
  EXPECT_GT(persistence.stats().snapshots, 0u);

  sim.run_until(36 * kHour);
  // Journaling continued against the promoted proxy.
  EXPECT_GT(persistence.record_count(), records_at_30h);

  // At a quiescent instant the durable image equals the live active state:
  // the WAL-replay mirror reproduces TopicState transition for transition.
  std::map<std::string, core::TopicConfig> configs;
  configs.emplace(kTopic, topic_config());
  {
    // Make the unsynced tail durable first (sync_interval is 1, but the
    // sync-on-forward path is what usually did it; snapshot_now syncs too).
    ASSERT_TRUE(persistence.snapshot_now());
    const RecoveryResult recovery =
        ProxyPersistence::recover(backend, configs);
    ASSERT_EQ(recovery.state.topics.size(), 1u);
    const core::TopicSnapshot live =
        proxy.active_proxy().topic(kTopic)->snapshot();
    EXPECT_EQ(canonical_bytes(recovery.state.topics[0].second),
              canonical_bytes(live));
  }

  // Bring the crashed replica back: with set_recovery wired it warm-starts
  // from the durable image and matches the active replica immediately,
  // instead of rejoining empty.
  std::size_t dead = 2;
  for (std::size_t index = 0; index < 2; ++index) {
    if (!proxy.replica_alive(index)) dead = index;
  }
  ASSERT_LT(dead, 2u);
  proxy.restart_replica(dead);
  ASSERT_TRUE(proxy.replica_alive(dead));
  EXPECT_EQ(proxy.stats().restarts, 1u);

  const core::TopicSnapshot restarted =
      proxy.standby_proxy().topic(kTopic)->snapshot();
  const core::TopicSnapshot active =
      proxy.active_proxy().topic(kTopic)->snapshot();
  EXPECT_EQ(canonical_bytes(restarted), canonical_bytes(active));

  // And the run keeps going on the rebuilt pair.
  sim.schedule_at(37 * kHour, [&proxy] { proxy.user_read(kTopic); });
  sim.run_until(40 * kHour);
  EXPECT_TRUE(proxy.active_is_alive());
}

}  // namespace
}  // namespace waif::storage
