#include "pubsub/publisher.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pubsub/broker.h"
#include "pubsub/subscriber.h"
#include "sim/simulator.h"

namespace waif::pubsub {
namespace {

class Probe : public Subscriber {
 public:
  void on_notification(const NotificationPtr& notification) override {
    received.push_back(notification);
  }
  void on_topic_withdrawn(const std::string& topic) override {
    withdrawn.push_back(topic);
  }
  std::vector<NotificationPtr> received;
  std::vector<std::string> withdrawn;
};

class PublisherTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  Broker broker{sim};
  Probe probe;
};

TEST_F(PublisherTest, PublishAutoAdvertises) {
  Publisher publisher(broker, "weather-service");
  broker.subscribe("weather", probe);
  auto n = publisher.publish("weather", 3.0);
  ASSERT_NE(n, nullptr);
  EXPECT_TRUE(broker.is_advertised("weather"));
  EXPECT_EQ(probe.received.size(), 1u);
}

TEST_F(PublisherTest, NameAndIdExposed) {
  Publisher publisher(broker, "slashdot");
  EXPECT_EQ(publisher.name(), "slashdot");
  EXPECT_GT(publisher.id().value, 0u);
}

TEST_F(PublisherTest, UpdateRankGoesThroughBroker) {
  Publisher publisher(broker, "p");
  broker.subscribe("t", probe);
  auto n = publisher.publish("t", 4.0);
  EXPECT_TRUE(publisher.update_rank(n->id, 0.5));
  ASSERT_EQ(probe.received.size(), 2u);
  EXPECT_DOUBLE_EQ(probe.received[1]->rank, 0.5);
}

TEST_F(PublisherTest, WithdrawExplicitly) {
  Publisher publisher(broker, "p");
  broker.subscribe("t", probe);
  publisher.publish("t", 1.0);
  EXPECT_TRUE(publisher.withdraw("t"));
  EXPECT_FALSE(publisher.withdraw("t"));  // already gone
  EXPECT_EQ(probe.withdrawn.size(), 1u);
}

TEST_F(PublisherTest, DestructorWithdrawsAllTopics) {
  broker.subscribe("a", probe);
  broker.subscribe("b", probe);
  {
    Publisher publisher(broker, "p");
    publisher.publish("a", 1.0);
    publisher.publish("b", 1.0);
  }
  EXPECT_EQ(probe.withdrawn.size(), 2u);
  EXPECT_FALSE(broker.is_advertised("a"));
  EXPECT_FALSE(broker.is_advertised("b"));
}

TEST_F(PublisherTest, AdvertiseIsIdempotent) {
  Publisher publisher(broker, "p");
  publisher.advertise("t");
  publisher.advertise("t");
  EXPECT_TRUE(broker.is_advertised("t"));
  EXPECT_TRUE(publisher.withdraw("t"));
  EXPECT_FALSE(broker.is_advertised("t"));
}

}  // namespace
}  // namespace waif::pubsub
