#include "pubsub/notification.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/time.h"

namespace waif::pubsub {
namespace {

NotificationPtr make(std::uint64_t id, double rank, SimTime published = 0,
                     SimTime expires = kNever) {
  auto n = std::make_shared<Notification>();
  n->id = NotificationId{id};
  n->topic = "t";
  n->rank = rank;
  n->published_at = published;
  n->expires_at = expires;
  return n;
}

TEST(NotificationTest, NeverExpiresByDefault) {
  auto n = make(1, 3.0);
  EXPECT_FALSE(n->expires());
  EXPECT_FALSE(n->expired_at(kYear));
  EXPECT_EQ(n->remaining_lifetime(kYear), kNever);
}

TEST(NotificationTest, ExpiresAtInstant) {
  auto n = make(1, 3.0, 0, seconds(10.0));
  EXPECT_TRUE(n->expires());
  EXPECT_FALSE(n->expired_at(seconds(9.0)));
  EXPECT_TRUE(n->expired_at(seconds(10.0)));  // boundary: expired at expiry
  EXPECT_TRUE(n->expired_at(seconds(11.0)));
}

TEST(NotificationTest, RemainingLifetime) {
  auto n = make(1, 3.0, 0, seconds(10.0));
  EXPECT_EQ(n->remaining_lifetime(seconds(4.0)), seconds(6.0));
  EXPECT_EQ(n->remaining_lifetime(seconds(10.0)), 0);
  EXPECT_EQ(n->remaining_lifetime(seconds(20.0)), 0);
}

TEST(RankHigherTest, OrdersByRankDescending) {
  auto low = make(1, 1.0);
  auto high = make(2, 4.0);
  RankHigher cmp;
  EXPECT_TRUE(cmp(high, low));
  EXPECT_FALSE(cmp(low, high));
}

TEST(RankHigherTest, TiesPreferRecency) {
  auto older = make(1, 3.0, 100);
  auto newer = make(2, 3.0, 200);
  RankHigher cmp;
  EXPECT_TRUE(cmp(newer, older));
  EXPECT_FALSE(cmp(older, newer));
}

TEST(RankHigherTest, FullTieBreaksById) {
  auto a = make(1, 3.0, 100);
  auto b = make(2, 3.0, 100);
  RankHigher cmp;
  EXPECT_TRUE(cmp(b, a));
  EXPECT_FALSE(cmp(a, b));
  // Strict weak ordering: not both ways.
  EXPECT_FALSE(cmp(a, a));
}

TEST(RankHigherTest, SortsAMixedVector) {
  std::vector<NotificationPtr> v{make(1, 2.0), make(2, 5.0), make(3, 0.5),
                                 make(4, 5.0, 10)};
  std::sort(v.begin(), v.end(), RankHigher{});
  EXPECT_EQ(v[0]->id.value, 4u);  // rank 5, newer
  EXPECT_EQ(v[1]->id.value, 2u);  // rank 5
  EXPECT_EQ(v[2]->id.value, 1u);  // rank 2
  EXPECT_EQ(v[3]->id.value, 3u);  // rank 0.5
}

}  // namespace
}  // namespace waif::pubsub
