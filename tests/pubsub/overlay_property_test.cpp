// Property tests over random overlay trees: every subscriber of a topic
// receives each publication exactly once, non-subscribers receive nothing,
// and interest teardown leaves no forwarding state behind.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "pubsub/overlay.h"
#include "pubsub/subscriber.h"
#include "sim/simulator.h"

namespace waif::pubsub {
namespace {

class Counter : public Subscriber {
 public:
  void on_notification(const NotificationPtr& notification) override {
    ++per_id[notification->id.value];
  }
  std::map<std::uint64_t, int> per_id;
};

struct RandomTree {
  sim::Simulator sim;
  Overlay overlay{sim};
  std::vector<OverlayNode*> nodes;

  /// Builds a random tree: node i links to a uniformly chosen earlier node.
  RandomTree(std::size_t count, Rng& rng) {
    for (std::size_t i = 0; i < count; ++i) {
      nodes.push_back(&overlay.add_node("n" + std::to_string(i)));
      if (i > 0) {
        const std::size_t parent = rng.next_below(i);
        overlay.connect(nodes[parent]->id(), nodes[i]->id(),
                        static_cast<SimDuration>(rng.next_below(1000)));
      }
    }
  }
};

class OverlayPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OverlayPropertyTest, ExactlyOnceDeliveryToEverySubscriber) {
  Rng rng(GetParam() * 31 + 7);
  RandomTree tree(GetParam(), rng);

  // Subscribe roughly half the nodes.
  std::vector<std::unique_ptr<Counter>> counters;
  std::vector<bool> subscribed(tree.nodes.size(), false);
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    counters.push_back(std::make_unique<Counter>());
    if (rng.next_below(2) == 0 || i == 0) {
      tree.nodes[i]->subscribe("topic", *counters[i]);
      subscribed[i] = true;
    } else {
      // Also attach to an unrelated topic: must never hear "topic".
      tree.nodes[i]->subscribe("other", *counters[i]);
    }
  }

  // Publish from several random nodes.
  std::vector<std::uint64_t> published;
  for (int p = 0; p < 10; ++p) {
    OverlayNode* origin = tree.nodes[rng.next_below(tree.nodes.size())];
    const PublisherId publisher = origin->register_publisher();
    origin->advertise(publisher, "topic");
    auto n = origin->publish(publisher, "topic",
                             static_cast<double>(rng.next_below(5)));
    ASSERT_NE(n, nullptr);
    published.push_back(n->id.value);
  }
  tree.sim.run();

  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    for (std::uint64_t id : published) {
      const int count = counters[i]->per_id.contains(id)
                            ? counters[i]->per_id[id]
                            : 0;
      if (subscribed[i]) {
        EXPECT_EQ(count, 1) << "node " << i << " id " << id;
      } else {
        EXPECT_EQ(count, 0) << "node " << i << " id " << id;
      }
    }
  }
}

TEST_P(OverlayPropertyTest, UnsubscribeEverywhereStopsAllForwarding) {
  Rng rng(GetParam() * 97 + 3);
  RandomTree tree(GetParam(), rng);

  std::vector<std::unique_ptr<Counter>> counters;
  std::vector<SubscriptionId> subscriptions;
  for (OverlayNode* node : tree.nodes) {
    counters.push_back(std::make_unique<Counter>());
    subscriptions.push_back(node->subscribe("topic", *counters.back()));
  }
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    EXPECT_TRUE(tree.nodes[i]->unsubscribe(subscriptions[i]));
  }

  // No node may report interest toward any neighbor anymore.
  for (OverlayNode* node : tree.nodes) {
    EXPECT_FALSE(node->has_interest("topic"));
    for (OverlayNode* other : tree.nodes) {
      EXPECT_FALSE(node->interested_neighbor(other->id(), "topic"));
    }
  }

  OverlayNode* origin = tree.nodes[0];
  const PublisherId publisher = origin->register_publisher();
  origin->advertise(publisher, "topic");
  const auto forwarded_before = tree.overlay.stats().forwarded;
  origin->publish(publisher, "topic", 3.0);
  tree.sim.run();
  EXPECT_EQ(tree.overlay.stats().forwarded, forwarded_before);
  for (const auto& counter : counters) EXPECT_TRUE(counter->per_id.empty());
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, OverlayPropertyTest,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64));

}  // namespace
}  // namespace waif::pubsub
