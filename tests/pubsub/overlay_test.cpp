#include "pubsub/overlay.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/time.h"
#include "pubsub/subscriber.h"
#include "sim/simulator.h"

namespace waif::pubsub {
namespace {

class Probe : public Subscriber {
 public:
  explicit Probe(sim::Simulator& sim) : sim_(sim) {}
  void on_notification(const NotificationPtr& notification) override {
    received.push_back(notification);
    receive_times.push_back(sim_.now());
  }
  std::vector<NotificationPtr> received;
  std::vector<SimTime> receive_times;

 private:
  sim::Simulator& sim_;
};

class OverlayTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  Overlay overlay{sim};
};

TEST_F(OverlayTest, LocalDelivery) {
  OverlayNode& node = overlay.add_node("solo");
  Probe probe(sim);
  node.subscribe("t", probe);
  const PublisherId publisher = node.register_publisher();
  node.advertise(publisher, "t");
  node.publish(publisher, "t", 3.0);
  sim.run();
  EXPECT_EQ(probe.received.size(), 1u);
}

TEST_F(OverlayTest, PublishRequiresLocalAdvertisement) {
  OverlayNode& node = overlay.add_node("solo");
  const PublisherId publisher = node.register_publisher();
  EXPECT_EQ(node.publish(publisher, "t", 3.0), nullptr);
}

TEST_F(OverlayTest, ForwardsAcrossOneLinkWithLatency) {
  OverlayNode& a = overlay.add_node("a");
  OverlayNode& b = overlay.add_node("b");
  overlay.connect(a.id(), b.id(), milliseconds(50));

  Probe probe(sim);
  b.subscribe("t", probe);

  const PublisherId publisher = a.register_publisher();
  a.advertise(publisher, "t");
  a.publish(publisher, "t", 1.0);
  sim.run();

  ASSERT_EQ(probe.received.size(), 1u);
  EXPECT_EQ(probe.receive_times[0], milliseconds(50));
  EXPECT_EQ(overlay.stats().forwarded, 1u);
}

TEST_F(OverlayTest, MultiHopChainAccumulatesLatency) {
  OverlayNode& a = overlay.add_node("a");
  OverlayNode& b = overlay.add_node("b");
  OverlayNode& c = overlay.add_node("c");
  overlay.connect(a.id(), b.id(), milliseconds(10));
  overlay.connect(b.id(), c.id(), milliseconds(25));

  Probe probe(sim);
  c.subscribe("t", probe);

  const PublisherId publisher = a.register_publisher();
  a.advertise(publisher, "t");
  a.publish(publisher, "t", 1.0);
  sim.run();

  ASSERT_EQ(probe.received.size(), 1u);
  EXPECT_EQ(probe.receive_times[0], milliseconds(35));
}

TEST_F(OverlayTest, NoInterestNoTraffic) {
  OverlayNode& a = overlay.add_node("a");
  OverlayNode& b = overlay.add_node("b");
  overlay.connect(a.id(), b.id(), milliseconds(1));

  const PublisherId publisher = a.register_publisher();
  a.advertise(publisher, "t");
  a.publish(publisher, "t", 1.0);
  sim.run();

  EXPECT_EQ(overlay.stats().forwarded, 0u);
}

TEST_F(OverlayTest, InterestPropagatesThroughIntermediateNodes) {
  OverlayNode& a = overlay.add_node("a");
  OverlayNode& b = overlay.add_node("b");
  OverlayNode& c = overlay.add_node("c");
  overlay.connect(a.id(), b.id(), 0);
  overlay.connect(b.id(), c.id(), 0);

  Probe probe(sim);
  c.subscribe("t", probe);

  // b carries interest for c even with no local subscriber.
  EXPECT_TRUE(b.interested_neighbor(c.id(), "t"));
  EXPECT_TRUE(a.interested_neighbor(b.id(), "t"));
  EXPECT_FALSE(b.has_interest("t"));
}

TEST_F(OverlayTest, UnsubscribeRetractsInterest) {
  OverlayNode& a = overlay.add_node("a");
  OverlayNode& b = overlay.add_node("b");
  overlay.connect(a.id(), b.id(), 0);

  Probe probe(sim);
  const SubscriptionId sub = b.subscribe("t", probe);
  EXPECT_TRUE(a.interested_neighbor(b.id(), "t"));
  EXPECT_TRUE(b.unsubscribe(sub));
  EXPECT_FALSE(a.interested_neighbor(b.id(), "t"));

  const PublisherId publisher = a.register_publisher();
  a.advertise(publisher, "t");
  a.publish(publisher, "t", 1.0);
  sim.run();
  EXPECT_TRUE(probe.received.empty());
}

TEST_F(OverlayTest, StarFanOut) {
  OverlayNode& hub = overlay.add_node("hub");
  std::vector<Probe*> probes;
  std::vector<std::unique_ptr<Probe>> owned;
  for (int i = 0; i < 4; ++i) {
    OverlayNode& leaf = overlay.add_node("leaf" + std::to_string(i));
    overlay.connect(hub.id(), leaf.id(), milliseconds(i + 1));
    owned.push_back(std::make_unique<Probe>(sim));
    leaf.subscribe("t", *owned.back());
    probes.push_back(owned.back().get());
  }
  const PublisherId publisher = hub.register_publisher();
  hub.advertise(publisher, "t");
  hub.publish(publisher, "t", 1.0);
  sim.run();
  for (Probe* probe : probes) EXPECT_EQ(probe->received.size(), 1u);
}

TEST_F(OverlayTest, DoesNotEchoBackToOrigin) {
  OverlayNode& a = overlay.add_node("a");
  OverlayNode& b = overlay.add_node("b");
  overlay.connect(a.id(), b.id(), 0);

  Probe probe_a(sim);
  Probe probe_b(sim);
  a.subscribe("t", probe_a);
  b.subscribe("t", probe_b);

  const PublisherId publisher = a.register_publisher();
  a.advertise(publisher, "t");
  a.publish(publisher, "t", 1.0);
  sim.run();

  EXPECT_EQ(probe_a.received.size(), 1u);  // exactly once, not echoed
  EXPECT_EQ(probe_b.received.size(), 1u);
}

TEST_F(OverlayTest, CycleRejected) {
  OverlayNode& a = overlay.add_node("a");
  OverlayNode& b = overlay.add_node("b");
  OverlayNode& c = overlay.add_node("c");
  overlay.connect(a.id(), b.id(), 0);
  overlay.connect(b.id(), c.id(), 0);
  EXPECT_THROW(overlay.connect(a.id(), c.id(), 0), std::invalid_argument);
}

TEST_F(OverlayTest, SelfLinkRejected) {
  OverlayNode& a = overlay.add_node("a");
  EXPECT_THROW(overlay.connect(a.id(), a.id(), 0), std::invalid_argument);
}

TEST_F(OverlayTest, ExpiredNotificationsDropInTransit) {
  OverlayNode& a = overlay.add_node("a");
  OverlayNode& b = overlay.add_node("b");
  overlay.connect(a.id(), b.id(), seconds(10.0));  // slow link

  Probe probe(sim);
  b.subscribe("t", probe);

  const PublisherId publisher = a.register_publisher();
  a.advertise(publisher, "t");
  a.publish(publisher, "t", 1.0, seconds(5.0));  // expires mid-flight
  sim.run();

  EXPECT_TRUE(probe.received.empty());
  EXPECT_EQ(overlay.stats().dropped_expired, 1u);
}

TEST_F(OverlayTest, RankUpdatePropagates) {
  OverlayNode& a = overlay.add_node("a");
  OverlayNode& b = overlay.add_node("b");
  overlay.connect(a.id(), b.id(), 0);

  Probe probe(sim);
  b.subscribe("t", probe);

  const PublisherId publisher = a.register_publisher();
  a.advertise(publisher, "t");
  auto n = a.publish(publisher, "t", 4.0);
  sim.run();
  EXPECT_TRUE(a.update_rank(publisher, n->id, 1.0));
  sim.run();

  ASSERT_EQ(probe.received.size(), 2u);
  EXPECT_EQ(probe.received[1]->id, n->id);
  EXPECT_DOUBLE_EQ(probe.received[1]->rank, 1.0);
}

TEST_F(OverlayTest, SubscribeAfterConnectOnExistingTree) {
  OverlayNode& a = overlay.add_node("a");
  OverlayNode& b = overlay.add_node("b");
  Probe probe(sim);
  b.subscribe("t", probe);  // interest exists before the link
  overlay.connect(a.id(), b.id(), 0);
  EXPECT_TRUE(a.interested_neighbor(b.id(), "t"));

  const PublisherId publisher = a.register_publisher();
  a.advertise(publisher, "t");
  a.publish(publisher, "t", 1.0);
  sim.run();
  EXPECT_EQ(probe.received.size(), 1u);
}

TEST_F(OverlayTest, UnknownNodeLookupThrows) {
  EXPECT_THROW(overlay.node(BrokerId{404}), std::invalid_argument);
}

}  // namespace
}  // namespace waif::pubsub
