#include "pubsub/broker.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/time.h"
#include "pubsub/subscriber.h"
#include "sim/simulator.h"

namespace waif::pubsub {
namespace {

/// Collects everything it receives.
class Probe : public Subscriber {
 public:
  void on_notification(const NotificationPtr& notification) override {
    received.push_back(notification);
  }
  void on_topic_withdrawn(const std::string& topic) override {
    withdrawn.push_back(topic);
  }

  std::vector<NotificationPtr> received;
  std::vector<std::string> withdrawn;
};

class BrokerTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  Broker broker{sim};
  Probe probe;
};

TEST_F(BrokerTest, PublishRequiresAdvertisement) {
  const PublisherId publisher = broker.register_publisher("p");
  EXPECT_EQ(broker.publish(publisher, "news", 3.0), nullptr);
  EXPECT_EQ(broker.stats().rejected_publishes, 1u);

  broker.advertise(publisher, "news");
  EXPECT_NE(broker.publish(publisher, "news", 3.0), nullptr);
  EXPECT_EQ(broker.stats().published, 1u);
}

TEST_F(BrokerTest, AdvertiseRequiresRegistration) {
  EXPECT_THROW(broker.advertise(PublisherId{999}, "news"),
               std::invalid_argument);
}

TEST_F(BrokerTest, DeliversToSubscriber) {
  const PublisherId publisher = broker.register_publisher("p");
  broker.advertise(publisher, "news");
  broker.subscribe("news", probe);
  auto n = broker.publish(publisher, "news", 2.5, kNever, "hello");
  ASSERT_EQ(probe.received.size(), 1u);
  EXPECT_EQ(probe.received[0]->id, n->id);
  EXPECT_EQ(probe.received[0]->payload, "hello");
  EXPECT_DOUBLE_EQ(probe.received[0]->rank, 2.5);
}

TEST_F(BrokerTest, TopicsAreIsolated) {
  const PublisherId publisher = broker.register_publisher("p");
  broker.advertise(publisher, "news");
  broker.advertise(publisher, "sports");
  broker.subscribe("news", probe);
  broker.publish(publisher, "sports", 1.0);
  EXPECT_TRUE(probe.received.empty());
}

TEST_F(BrokerTest, FanOutToMultipleSubscribers) {
  const PublisherId publisher = broker.register_publisher("p");
  broker.advertise(publisher, "news");
  Probe second;
  broker.subscribe("news", probe);
  broker.subscribe("news", second);
  broker.publish(publisher, "news", 1.0);
  EXPECT_EQ(probe.received.size(), 1u);
  EXPECT_EQ(second.received.size(), 1u);
  EXPECT_EQ(broker.stats().deliveries, 2u);
}

TEST_F(BrokerTest, UnsubscribeStopsDelivery) {
  const PublisherId publisher = broker.register_publisher("p");
  broker.advertise(publisher, "news");
  const SubscriptionId sub = broker.subscribe("news", probe);
  EXPECT_TRUE(broker.unsubscribe(sub));
  broker.publish(publisher, "news", 1.0);
  EXPECT_TRUE(probe.received.empty());
  EXPECT_FALSE(broker.unsubscribe(sub));  // second time: unknown
}

TEST_F(BrokerTest, SubscribeBeforeAdvertiseWorks) {
  broker.subscribe("future", probe);
  const PublisherId publisher = broker.register_publisher("p");
  broker.advertise(publisher, "future");
  broker.publish(publisher, "future", 1.0);
  EXPECT_EQ(probe.received.size(), 1u);
}

TEST_F(BrokerTest, PublishStampsTimeAndExpiry) {
  const PublisherId publisher = broker.register_publisher("p");
  broker.advertise(publisher, "news");
  sim.schedule_at(seconds(100.0), [&] {
    auto n = broker.publish(publisher, "news", 1.0, seconds(30.0));
    EXPECT_EQ(n->published_at, seconds(100.0));
    EXPECT_EQ(n->expires_at, seconds(130.0));
  });
  sim.run();
}

TEST_F(BrokerTest, RankIsClampedToScale) {
  const PublisherId publisher = broker.register_publisher("p");
  broker.advertise(publisher, "news");
  auto high = broker.publish(publisher, "news", 99.0);
  auto low = broker.publish(publisher, "news", -5.0);
  EXPECT_DOUBLE_EQ(high->rank, kMaxRank);
  EXPECT_DOUBLE_EQ(low->rank, kMinRank);
}

TEST_F(BrokerTest, UpdateRankRoutesSameIdWithNewRank) {
  const PublisherId publisher = broker.register_publisher("p");
  broker.advertise(publisher, "news");
  broker.subscribe("news", probe);
  auto original = broker.publish(publisher, "news", 4.0);
  EXPECT_TRUE(broker.update_rank(publisher, original->id, 1.0));
  ASSERT_EQ(probe.received.size(), 2u);
  EXPECT_EQ(probe.received[1]->id, original->id);
  EXPECT_DOUBLE_EQ(probe.received[1]->rank, 1.0);
  EXPECT_EQ(broker.stats().rank_updates, 1u);
  // Retained history reflects the latest rank.
  EXPECT_DOUBLE_EQ(broker.find(original->id)->rank, 1.0);
}

TEST_F(BrokerTest, UpdateRankRejectsForeignPublisher) {
  const PublisherId owner = broker.register_publisher("owner");
  const PublisherId other = broker.register_publisher("other");
  broker.advertise(owner, "news");
  auto n = broker.publish(owner, "news", 4.0);
  EXPECT_FALSE(broker.update_rank(other, n->id, 1.0));
}

TEST_F(BrokerTest, UpdateRankUnknownIdFails) {
  const PublisherId publisher = broker.register_publisher("p");
  EXPECT_FALSE(broker.update_rank(publisher, NotificationId{777}, 1.0));
}

TEST_F(BrokerTest, HistoryIsBoundedForRankUpdates) {
  sim::Simulator local_sim;
  Broker small(local_sim, /*history_limit=*/2);
  const PublisherId publisher = small.register_publisher("p");
  small.advertise(publisher, "news");
  auto first = small.publish(publisher, "news", 1.0);
  small.publish(publisher, "news", 2.0);
  small.publish(publisher, "news", 3.0);  // evicts `first`
  EXPECT_FALSE(small.update_rank(publisher, first->id, 0.5));
  EXPECT_EQ(small.find(first->id), nullptr);
}

TEST_F(BrokerTest, WithdrawNotifiesOnLastAdvertiser) {
  const PublisherId a = broker.register_publisher("a");
  const PublisherId b = broker.register_publisher("b");
  broker.advertise(a, "news");
  broker.advertise(b, "news");
  broker.subscribe("news", probe);

  EXPECT_TRUE(broker.withdraw(a, "news"));
  EXPECT_TRUE(probe.withdrawn.empty());  // b still advertises
  EXPECT_TRUE(broker.withdraw(b, "news"));
  ASSERT_EQ(probe.withdrawn.size(), 1u);
  EXPECT_EQ(probe.withdrawn[0], "news");
  EXPECT_FALSE(broker.is_advertised("news"));
}

TEST_F(BrokerTest, WithdrawWithoutAdvertiseFails) {
  const PublisherId publisher = broker.register_publisher("p");
  EXPECT_FALSE(broker.withdraw(publisher, "news"));
}

TEST_F(BrokerTest, SubscriberCountAndOptions) {
  const SubscriptionId sub =
      broker.subscribe("news", probe, SubscriptionOptions{30, 4.5});
  EXPECT_EQ(broker.subscriber_count("news"), 1u);
  EXPECT_EQ(broker.options(sub).max, 30);
  EXPECT_DOUBLE_EQ(broker.options(sub).threshold, 4.5);
  EXPECT_THROW(broker.options(SubscriptionId{404}), std::invalid_argument);
}

TEST_F(BrokerTest, FindReturnsNullForUnknown) {
  EXPECT_EQ(broker.find(NotificationId{1}), nullptr);
}

TEST_F(BrokerTest, SubscriptionOptionsAccepts) {
  SubscriptionOptions options{10, 3.0};
  Notification above;
  above.rank = 3.0;
  Notification below;
  below.rank = 2.9;
  EXPECT_TRUE(options.accepts(above));
  EXPECT_FALSE(options.accepts(below));
}

}  // namespace
}  // namespace waif::pubsub
