#include "net/outage.h"

#include <gtest/gtest.h>

#include "common/time.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace waif::net {
namespace {

TEST(OutageScheduleTest, EmptyScheduleIsAlwaysUp) {
  const auto schedule = OutageSchedule::always_up(kDay);
  EXPECT_FALSE(schedule.is_down(0));
  EXPECT_FALSE(schedule.is_down(kDay - 1));
  EXPECT_DOUBLE_EQ(schedule.downtime_fraction(), 0.0);
  EXPECT_EQ(schedule.count(), 0u);
}

TEST(OutageScheduleTest, AlwaysDown) {
  const auto schedule = OutageSchedule::always_down(kDay);
  EXPECT_TRUE(schedule.is_down(0));
  EXPECT_TRUE(schedule.is_down(kDay - 1));
  EXPECT_DOUBLE_EQ(schedule.downtime_fraction(), 1.0);
}

TEST(OutageScheduleTest, HalfOpenIntervals) {
  const OutageSchedule schedule({Outage{10, 20}}, 100);
  EXPECT_FALSE(schedule.is_down(9));
  EXPECT_TRUE(schedule.is_down(10));
  EXPECT_TRUE(schedule.is_down(19));
  EXPECT_FALSE(schedule.is_down(20));
}

TEST(OutageScheduleTest, NormalizesUnsortedOverlappingInput) {
  const OutageSchedule schedule({Outage{50, 70}, Outage{10, 30}, Outage{25, 40}},
                                100);
  EXPECT_EQ(schedule.count(), 2u);  // [10,40) merged, [50,70)
  EXPECT_TRUE(schedule.is_down(35));
  EXPECT_FALSE(schedule.is_down(45));
  EXPECT_DOUBLE_EQ(schedule.downtime_fraction(), 0.5);
}

TEST(OutageScheduleTest, DropsEmptyAndClampsToHorizon) {
  const OutageSchedule schedule({Outage{5, 5}, Outage{90, 200}}, 100);
  EXPECT_EQ(schedule.count(), 1u);
  EXPECT_DOUBLE_EQ(schedule.downtime_fraction(), 0.1);
  EXPECT_FALSE(schedule.is_down(5));
}

TEST(OutageScheduleTest, OutageStartingBeyondHorizonIgnored) {
  const OutageSchedule schedule({Outage{150, 200}}, 100);
  EXPECT_EQ(schedule.count(), 0u);
}

TEST(OutageScheduleTest, NextDown) {
  const OutageSchedule schedule({Outage{10, 20}, Outage{50, 60}}, 100);
  EXPECT_EQ(schedule.next_down(0), 10);
  EXPECT_EQ(schedule.next_down(10), 10);
  EXPECT_EQ(schedule.next_down(11), 50);
  EXPECT_EQ(schedule.next_down(61), kNever);
}

TEST(OutageScheduleTest, NextUp) {
  const OutageSchedule schedule({Outage{10, 20}, Outage{50, 60}}, 100);
  EXPECT_EQ(schedule.next_up(5), 5);    // already up
  EXPECT_EQ(schedule.next_up(10), 20);  // inside first outage
  EXPECT_EQ(schedule.next_up(19), 20);
  EXPECT_EQ(schedule.next_up(55), 60);
}

TEST(OutageScheduleTest, AdjacentOutagesMerge) {
  const OutageSchedule schedule({Outage{10, 20}, Outage{20, 30}}, 100);
  EXPECT_EQ(schedule.count(), 1u);
  EXPECT_TRUE(schedule.is_down(25));
}

TEST(OutageScheduleTest, DowntimeFractionSums) {
  const OutageSchedule schedule({Outage{0, 10}, Outage{20, 40}}, 100);
  EXPECT_DOUBLE_EQ(schedule.downtime_fraction(), 0.3);
}

TEST(OutageScheduleTest, ZeroDurationBetweenAdjacentOutagesStillMerges) {
  const OutageSchedule schedule(
      {Outage{10, 20}, Outage{20, 20}, Outage{20, 30}}, 100);
  EXPECT_EQ(schedule.count(), 1u);
  EXPECT_TRUE(schedule.is_down(25));
  EXPECT_DOUBLE_EQ(schedule.downtime_fraction(), 0.2);
}

// --- applying schedules to a Link ------------------------------------------

TEST(LinkOutageTest, ZeroDurationOutageCausesNoTransitions) {
  sim::Simulator sim;
  Link link(sim);
  link.apply_schedule(OutageSchedule({Outage{50, 50}}, 100));
  sim.run();
  EXPECT_TRUE(link.is_up());
  EXPECT_EQ(link.stats().transitions, 0u);
  EXPECT_EQ(link.downtime(), 0);
}

TEST(LinkOutageTest, BackToBackOutagesTransitionExactlyTwice) {
  // [10,20) followed by [20,30) is one contiguous outage: the link must not
  // flap up-and-down at the 20 boundary (that would double-count
  // transitions and could wake forwarding into a one-instant window).
  sim::Simulator sim;
  Link link(sim);
  int changes = 0;
  link.on_state_change([&changes](LinkState) { ++changes; });
  link.apply_schedule(OutageSchedule({Outage{10, 20}, Outage{20, 30}}, 100));

  sim.run_until(15);
  EXPECT_FALSE(link.is_up());
  sim.run_until(25);
  EXPECT_FALSE(link.is_up());  // no flap at the seam
  sim.run();
  EXPECT_TRUE(link.is_up());
  EXPECT_EQ(link.stats().transitions, 2u);  // down@10, up@30
  EXPECT_EQ(changes, 2);
  EXPECT_EQ(link.downtime(), 20);
}

TEST(LinkOutageTest, OutageAtTimeZeroAppliesImmediately) {
  sim::Simulator sim;
  Link link(sim);
  link.apply_schedule(OutageSchedule({Outage{0, 30}}, 100));
  EXPECT_FALSE(link.is_up());
  sim.run();
  EXPECT_TRUE(link.is_up());
  EXPECT_EQ(link.stats().transitions, 2u);
  EXPECT_EQ(link.downtime(), 30);
}

}  // namespace
}  // namespace waif::net
