#include "net/outage.h"

#include <gtest/gtest.h>

#include "common/time.h"

namespace waif::net {
namespace {

TEST(OutageScheduleTest, EmptyScheduleIsAlwaysUp) {
  const auto schedule = OutageSchedule::always_up(kDay);
  EXPECT_FALSE(schedule.is_down(0));
  EXPECT_FALSE(schedule.is_down(kDay - 1));
  EXPECT_DOUBLE_EQ(schedule.downtime_fraction(), 0.0);
  EXPECT_EQ(schedule.count(), 0u);
}

TEST(OutageScheduleTest, AlwaysDown) {
  const auto schedule = OutageSchedule::always_down(kDay);
  EXPECT_TRUE(schedule.is_down(0));
  EXPECT_TRUE(schedule.is_down(kDay - 1));
  EXPECT_DOUBLE_EQ(schedule.downtime_fraction(), 1.0);
}

TEST(OutageScheduleTest, HalfOpenIntervals) {
  const OutageSchedule schedule({Outage{10, 20}}, 100);
  EXPECT_FALSE(schedule.is_down(9));
  EXPECT_TRUE(schedule.is_down(10));
  EXPECT_TRUE(schedule.is_down(19));
  EXPECT_FALSE(schedule.is_down(20));
}

TEST(OutageScheduleTest, NormalizesUnsortedOverlappingInput) {
  const OutageSchedule schedule({Outage{50, 70}, Outage{10, 30}, Outage{25, 40}},
                                100);
  EXPECT_EQ(schedule.count(), 2u);  // [10,40) merged, [50,70)
  EXPECT_TRUE(schedule.is_down(35));
  EXPECT_FALSE(schedule.is_down(45));
  EXPECT_DOUBLE_EQ(schedule.downtime_fraction(), 0.5);
}

TEST(OutageScheduleTest, DropsEmptyAndClampsToHorizon) {
  const OutageSchedule schedule({Outage{5, 5}, Outage{90, 200}}, 100);
  EXPECT_EQ(schedule.count(), 1u);
  EXPECT_DOUBLE_EQ(schedule.downtime_fraction(), 0.1);
  EXPECT_FALSE(schedule.is_down(5));
}

TEST(OutageScheduleTest, OutageStartingBeyondHorizonIgnored) {
  const OutageSchedule schedule({Outage{150, 200}}, 100);
  EXPECT_EQ(schedule.count(), 0u);
}

TEST(OutageScheduleTest, NextDown) {
  const OutageSchedule schedule({Outage{10, 20}, Outage{50, 60}}, 100);
  EXPECT_EQ(schedule.next_down(0), 10);
  EXPECT_EQ(schedule.next_down(10), 10);
  EXPECT_EQ(schedule.next_down(11), 50);
  EXPECT_EQ(schedule.next_down(61), kNever);
}

TEST(OutageScheduleTest, NextUp) {
  const OutageSchedule schedule({Outage{10, 20}, Outage{50, 60}}, 100);
  EXPECT_EQ(schedule.next_up(5), 5);    // already up
  EXPECT_EQ(schedule.next_up(10), 20);  // inside first outage
  EXPECT_EQ(schedule.next_up(19), 20);
  EXPECT_EQ(schedule.next_up(55), 60);
}

TEST(OutageScheduleTest, AdjacentOutagesMerge) {
  const OutageSchedule schedule({Outage{10, 20}, Outage{20, 30}}, 100);
  EXPECT_EQ(schedule.count(), 1u);
  EXPECT_TRUE(schedule.is_down(25));
}

TEST(OutageScheduleTest, DowntimeFractionSums) {
  const OutageSchedule schedule({Outage{0, 10}, Outage{20, 40}}, 100);
  EXPECT_DOUBLE_EQ(schedule.downtime_fraction(), 0.3);
}

}  // namespace
}  // namespace waif::net
