#include "net/link.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace waif::net {
namespace {

class LinkTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  Link link{sim};
};

TEST_F(LinkTest, StartsUp) {
  EXPECT_TRUE(link.is_up());
  EXPECT_EQ(link.state(), LinkState::kUp);
}

TEST_F(LinkTest, SetStateFiresListenersOnChangeOnly) {
  std::vector<LinkState> observed;
  link.on_state_change([&](LinkState s) { observed.push_back(s); });
  link.set_state(LinkState::kUp);  // no change
  EXPECT_TRUE(observed.empty());
  link.set_state(LinkState::kDown);
  link.set_state(LinkState::kDown);  // no change
  link.set_state(LinkState::kUp);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], LinkState::kDown);
  EXPECT_EQ(observed[1], LinkState::kUp);
  EXPECT_EQ(link.stats().transitions, 2u);
}

TEST_F(LinkTest, TransferAccounting) {
  link.record_downlink(100);
  link.record_downlink(50);
  link.record_uplink(10);
  EXPECT_EQ(link.stats().downlink_messages, 2u);
  EXPECT_EQ(link.stats().downlink_bytes, 150u);
  EXPECT_EQ(link.stats().uplink_messages, 1u);
  EXPECT_EQ(link.stats().uplink_bytes, 10u);
}

TEST_F(LinkTest, ApplyScheduleTogglesOverTime) {
  std::vector<std::pair<SimTime, LinkState>> transitions;
  link.on_state_change([&](LinkState s) {
    transitions.emplace_back(sim.now(), s);
  });
  link.apply_schedule(OutageSchedule({Outage{10, 20}, Outage{40, 45}}, 100));
  sim.run();
  ASSERT_EQ(transitions.size(), 4u);
  EXPECT_EQ(transitions[0], std::make_pair(SimTime{10}, LinkState::kDown));
  EXPECT_EQ(transitions[1], std::make_pair(SimTime{20}, LinkState::kUp));
  EXPECT_EQ(transitions[2], std::make_pair(SimTime{40}, LinkState::kDown));
  EXPECT_EQ(transitions[3], std::make_pair(SimTime{45}, LinkState::kUp));
}

TEST_F(LinkTest, ApplyScheduleStartingDown) {
  link.apply_schedule(OutageSchedule({Outage{0, 30}}, 100));
  EXPECT_FALSE(link.is_up());
  sim.run();
  EXPECT_TRUE(link.is_up());
}

TEST_F(LinkTest, DowntimeAccumulates) {
  link.apply_schedule(OutageSchedule({Outage{10, 30}, Outage{50, 60}}, 100));
  sim.run_until(100);
  EXPECT_EQ(link.downtime(), 30);
}

TEST_F(LinkTest, DowntimeWhileStillDown) {
  link.set_state(LinkState::kDown);
  sim.schedule_at(40, [] {});
  sim.run();
  EXPECT_EQ(link.downtime(), 40);
}

}  // namespace
}  // namespace waif::net
