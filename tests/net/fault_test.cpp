#include "net/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/time.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace waif::net {
namespace {

TEST(FaultConfigTest, AllZeroIsDisabled) {
  FaultConfig config;
  EXPECT_FALSE(config.enabled());
  config.drop_probability = 0.01;
  EXPECT_TRUE(config.enabled());
}

TEST(FaultModelTest, DisabledModelPassesEverything) {
  FaultModel model(FaultConfig{}, 42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(model.downlink_passes(i));
    EXPECT_TRUE(model.uplink_passes());
    EXPECT_EQ(model.draw_downlink_latency(), 0);
  }
  EXPECT_EQ(model.stats().downlink_drops(), 0u);
  EXPECT_EQ(model.stats().uplink_drops, 0u);
}

TEST(FaultModelTest, SameSeedReplaysIdentically) {
  FaultConfig config;
  config.drop_probability = 0.3;
  config.burst_start_probability = 0.05;
  config.half_open_probability = 0.5;
  config.mean_latency_jitter = kSecond;
  FaultModel a(config, 7);
  FaultModel b(config, 7);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(a.downlink_passes(i), b.downlink_passes(i));
    ASSERT_EQ(a.uplink_passes(), b.uplink_passes());
    ASSERT_EQ(a.draw_downlink_latency(), b.draw_downlink_latency());
  }
}

TEST(FaultModelTest, DropProbabilityIsRoughlyHonored) {
  FaultConfig config;
  config.drop_probability = 0.3;
  FaultModel model(config, 99);
  int drops = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (!model.downlink_passes(0)) ++drops;
  }
  const double rate = static_cast<double>(drops) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
  EXPECT_EQ(model.stats().independent_drops, static_cast<std::uint64_t>(drops));
}

TEST(FaultModelTest, BurstsSwallowRunsOfMessages) {
  FaultConfig config;
  config.burst_start_probability = 0.02;
  config.mean_burst_length = 8.0;
  FaultModel model(config, 123);
  for (int i = 0; i < 50000; ++i) model.downlink_passes(0);
  const FaultStats& stats = model.stats();
  ASSERT_GT(stats.bursts, 0u);
  EXPECT_EQ(stats.independent_drops, 0u);
  // Mean burst length should be near the configured geometric mean.
  const double mean_length =
      static_cast<double>(stats.burst_drops) / static_cast<double>(stats.bursts);
  EXPECT_GT(mean_length, 4.0);
  EXPECT_LT(mean_length, 16.0);
}

TEST(FaultModelTest, HalfOpenWindowSilentlyEatsDownlinkOnly) {
  FaultConfig config;
  config.half_open_probability = 1.0;  // every recovery is half-open
  config.mean_half_open = kMinute;
  FaultModel model(config, 5);
  model.on_link_up(0);
  ASSERT_EQ(model.stats().half_open_windows, 1u);
  ASSERT_TRUE(model.half_open(0));
  EXPECT_FALSE(model.downlink_passes(0));
  EXPECT_EQ(model.stats().half_open_drops, 1u);
  // The uplink still flows — that is what makes the failure invisible.
  EXPECT_TRUE(model.uplink_passes());
  // Long after the window the channel heals (P(exp(1min) > 1day) ~ 0).
  EXPECT_FALSE(model.half_open(kDay));
  EXPECT_TRUE(model.downlink_passes(kDay));
}

TEST(FaultModelTest, LatencyIsBasePlusExponentialJitter) {
  FaultConfig fixed;
  fixed.base_latency = 100 * kMillisecond;
  FaultModel fixed_model(fixed, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fixed_model.draw_downlink_latency(), 100 * kMillisecond);
  }

  FaultConfig jittered = fixed;
  jittered.mean_latency_jitter = kSecond;
  FaultModel jitter_model(jittered, 1);
  bool varied = false;
  SimDuration first = jitter_model.draw_downlink_latency();
  for (int i = 0; i < 100; ++i) {
    const SimDuration latency = jitter_model.draw_downlink_latency();
    EXPECT_GE(latency, jittered.base_latency);
    if (latency != first) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(FaultModelTest, CertainUplinkDropCounts) {
  FaultConfig config;
  config.uplink_drop_probability = 1.0;
  FaultModel model(config, 3);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(model.uplink_passes());
  EXPECT_EQ(model.stats().uplink_drops, 10u);
}

// --- Link integration ------------------------------------------------------

TEST(LinkFaultTest, LinkWithoutFaultModelPassesEverything) {
  sim::Simulator sim;
  Link link(sim);
  EXPECT_EQ(link.fault_model(), nullptr);
  EXPECT_TRUE(link.downlink_passes());
  EXPECT_TRUE(link.uplink_passes());
  EXPECT_EQ(link.draw_downlink_latency(), 0);
}

TEST(LinkFaultTest, HalfOpenWindowOpensOnRecovery) {
  sim::Simulator sim;
  Link link(sim);
  FaultConfig config;
  config.half_open_probability = 1.0;
  link.set_fault_model(config, 11);
  link.set_state(LinkState::kDown);
  link.set_state(LinkState::kUp);
  ASSERT_NE(link.fault_model(), nullptr);
  EXPECT_EQ(link.fault_model()->stats().half_open_windows, 1u);
  EXPECT_TRUE(link.is_up());             // the device sees a healthy link...
  EXPECT_FALSE(link.downlink_passes());  // ...but downlink traffic vanishes
  EXPECT_TRUE(link.uplink_passes());
}

TEST(LinkFaultDeathTest, RecordDownlinkRequiresLinkUp) {
  sim::Simulator sim;
  Link link(sim);
  link.set_state(LinkState::kDown);
  EXPECT_DEATH(link.record_downlink(10), "WAIF_CHECK failed");
}

TEST(LinkFaultDeathTest, RecordUplinkRequiresLinkUp) {
  sim::Simulator sim;
  Link link(sim);
  link.set_state(LinkState::kDown);
  EXPECT_DEATH(link.record_uplink(10), "WAIF_CHECK failed");
}

TEST(LinkFaultDeathTest, SecondApplyScheduleIsRejected) {
  sim::Simulator sim;
  Link link(sim);
  link.apply_schedule(OutageSchedule({Outage{10, 20}}, 100));
  EXPECT_DEATH(link.apply_schedule(OutageSchedule::always_up(100)),
               "WAIF_CHECK failed");
}

// ---------------------------------------------- construction validation

TEST(FaultModelValidationTest, RejectsEveryMalformedField) {
  const auto rejected = [](FaultConfig config) {
    EXPECT_THROW(FaultModel(config, 1), std::invalid_argument);
  };
  FaultConfig config;

  config.drop_probability = -0.1;
  rejected(config);
  config.drop_probability = 1.5;
  rejected(config);
  config.drop_probability = std::nan("");
  rejected(config);

  config = FaultConfig{};
  config.burst_start_probability = -0.01;
  rejected(config);
  config.burst_start_probability = std::nan("");
  rejected(config);

  config = FaultConfig{};
  config.mean_burst_length = 0.5;  // must be >= 1
  rejected(config);
  config.mean_burst_length = std::nan("");
  rejected(config);

  config = FaultConfig{};
  config.half_open_probability = 2.0;
  rejected(config);

  config = FaultConfig{};
  config.mean_half_open = 0;
  rejected(config);
  config.mean_half_open = -kMinute;
  rejected(config);

  config = FaultConfig{};
  config.base_latency = -1;
  rejected(config);

  config = FaultConfig{};
  config.mean_latency_jitter = -kSecond;
  rejected(config);

  config = FaultConfig{};
  config.uplink_drop_probability = -1.0;
  rejected(config);
  config.uplink_drop_probability = std::nan("");
  rejected(config);
}

TEST(FaultModelValidationTest, ErrorNamesTheOffendingField) {
  FaultConfig config;
  config.uplink_drop_probability = 3.0;
  try {
    FaultModel model(config, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("uplink_drop_probability"),
              std::string::npos)
        << error.what();
  }
}

TEST(FaultModelValidationTest, BoundaryValuesAreAccepted) {
  FaultConfig config;
  config.drop_probability = 1.0;
  config.burst_start_probability = 0.0;
  config.mean_burst_length = 1.0;
  config.half_open_probability = 1.0;
  config.uplink_drop_probability = 1.0;
  EXPECT_NO_THROW(FaultModel(config, 1));
}

}  // namespace
}  // namespace waif::net
