// Context-aware subscriptions (Section 2.3): a GPS-enabled device travels
// between cities; the proxy re-subscribes the parameterized "traffic/{city}"
// topic on every context update, so only local alerts reach the device.
// Traffic alerts are an on-line topic: they interrupt as soon as the
// connection allows.
//
// Build & run:  ./build/examples/traffic_alerts
#include <cstdio>
#include <string>
#include <vector>

#include "core/channel.h"
#include "core/context.h"
#include "core/proxy.h"
#include "device/device.h"
#include "net/link.h"
#include "pubsub/broker.h"
#include "pubsub/publisher.h"
#include "sim/simulator.h"

using namespace waif;

int main() {
  sim::Simulator sim;
  pubsub::Broker broker(sim);
  net::Link link(sim);
  device::Device device(sim, DeviceId{1});
  core::SimDeviceChannel channel(link, device);
  core::Proxy proxy(sim, channel);
  proxy.attach_to_link(link);

  // Traffic is urgent: on-line delivery, only serious alerts (rank >= 3).
  core::TopicConfig config;
  config.mode = core::DeliveryMode::kOnLine;
  config.options.threshold = 3.0;
  config.policy = core::PolicyConfig::online();

  core::ContextRouter router(broker, proxy);
  router.add_rule("city", "traffic/{city}", config);

  // Road authorities of three cities publish continuously.
  pubsub::Publisher tromso(broker, "tromso-roads");
  pubsub::Publisher oslo(broker, "oslo-roads");
  pubsub::Publisher bergen(broker, "bergen-roads");
  auto publish_all = [&](double rank, const std::string& what) {
    tromso.publish("traffic/tromso", rank, hours(2.0), "tromso: " + what);
    oslo.publish("traffic/oslo", rank, hours(2.0), "oslo: " + what);
    bergen.publish("traffic/bergen", rank, hours(2.0), "bergen: " + what);
  };

  // Itinerary: Tromsø (morning) -> Oslo (midday) -> Bergen (evening).
  sim.schedule_at(hours(0.0), [&] { router.update_context("city", "tromso"); });
  sim.schedule_at(hours(8.0), [&] { router.update_context("city", "oslo"); });
  sim.schedule_at(hours(16.0), [&] { router.update_context("city", "bergen"); });

  for (int hour = 1; hour < 24; hour += 3) {
    sim.schedule_at(hours(static_cast<double>(hour)), [&publish_all, hour] {
      publish_all(hour % 2 == 0 ? 4.5 : 3.5,
                  "accident on ring road (h" + std::to_string(hour) + ")");
    });
  }
  // A low-priority roadwork note that the threshold filters out everywhere.
  sim.schedule_at(hours(12.0), [&] { publish_all(1.0, "roadworks"); });

  // The user glances at the phone at the end of each leg of the trip
  // (alerts expire after two hours, so reading late shows nothing).
  std::vector<std::string> seen;
  for (double at : {7.5, 14.5, 23.0}) {
    sim.schedule_at(hours(at), [&seen, &device, at] {
      for (const auto& alert : device.read(100, 0.0)) {
        char line[160];
        std::snprintf(line, sizeof line, "  t=%04.1fh [rank %.1f] %s", at,
                      alert->rank, alert->payload.c_str());
        seen.emplace_back(line);
      }
    });
  }

  sim.run_until(kDay);

  std::printf("Context updates: %llu, re-subscriptions: %llu\n",
              static_cast<unsigned long long>(router.stats().context_updates),
              static_cast<unsigned long long>(router.stats().resubscriptions));
  std::printf("Alerts read during the day (on-line delivery, threshold 3.0):\n");
  for (const std::string& line : seen) std::printf("%s\n", line.c_str());
  std::printf("%zu alerts total; traffic from other cities never crossed the "
              "last hop (downlink messages: %llu)\n",
              seen.size(),
              static_cast<unsigned long long>(link.stats().downlink_messages));
  return 0;
}
