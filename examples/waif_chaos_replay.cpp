// waif_chaos_replay: replay, draw, shrink and fuzz composed chaos
// schedules against the full last-hop stack.
//
// A `.chaos` file (experiments/chaos_schedule.h) is a complete, replayable
// description of one chaos run: the workload seed, the armed budgets and
// breaker threshold, and every fault — link degradation, outages, storage
// faults, crashes, storms, device stalls — with its own substream seed.
// Replaying the same file always reproduces the same outcome byte for
// byte, which is what makes a minimized repro from the fuzzer (or CI)
// worth committing to a bug report.
//
// Modes (pick one):
//   --replay=FILE   run FILE and print the outcome; with --shrink, a
//                   violating schedule is minimized and written next to
//                   the input as FILE.min
//   --draw=SEED     draw a schedule from SEED and print it (or --out=FILE)
//   --fuzz=N        long-running mode: run N drawn schedules, shrink every
//                   violation and save the minimized repro into
//                   --repro-dir (default $WAIF_CHAOS_REPRO_DIR, else ".")
//
// Exit status: 0 = all runs clean, 1 = an invariant violation was found,
// 2 = usage or I/O error.
//
// Examples:
//   ./build/examples/waif_chaos_replay --draw=7 --out=seed7.chaos
//   ./build/examples/waif_chaos_replay --replay=seed7.chaos
//   ./build/examples/waif_chaos_replay --fuzz=500 --seed=1
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/flags.h"
#include "experiments/chaos_orchestrator.h"
#include "experiments/chaos_schedule.h"

using namespace waif;
using namespace waif::experiments;

namespace {

void print_outcome(const ChaosOutcome& outcome) {
  std::printf(
      "run: %llu arrivals, %llu reads over %llu operations, digest "
      "%016llx\n"
      "faults: %llu applied, %llu skipped — %llu crashes (%llu machine), "
      "%llu restarts, %llu failovers, %llu WAL repairs\n"
      "protection: %llu shed (%llu journaled), %llu admission rejects, "
      "%llu breaker trips / %llu closes, %llu WAL records\n"
      "monitor: %llu checkpoints, %llu image comparisons (%llu skipped)\n",
      static_cast<unsigned long long>(outcome.arrivals),
      static_cast<unsigned long long>(outcome.total_read),
      static_cast<unsigned long long>(outcome.read_operations),
      static_cast<unsigned long long>(outcome.read_digest),
      static_cast<unsigned long long>(outcome.faults_applied),
      static_cast<unsigned long long>(outcome.faults_skipped),
      static_cast<unsigned long long>(outcome.crashes),
      static_cast<unsigned long long>(outcome.machine_crashes),
      static_cast<unsigned long long>(outcome.restarts),
      static_cast<unsigned long long>(outcome.failovers),
      static_cast<unsigned long long>(outcome.wal_repairs),
      static_cast<unsigned long long>(outcome.shed),
      static_cast<unsigned long long>(outcome.journaled_sheds),
      static_cast<unsigned long long>(outcome.admission_rejects),
      static_cast<unsigned long long>(outcome.breaker_trips),
      static_cast<unsigned long long>(outcome.breaker_closes),
      static_cast<unsigned long long>(outcome.records_logged),
      static_cast<unsigned long long>(outcome.checks),
      static_cast<unsigned long long>(outcome.image_checks),
      static_cast<unsigned long long>(outcome.image_skips));
  for (const ChaosViolation& violation : outcome.violations) {
    std::printf("VIOLATION [%s] at t=%lld: %s\n", violation.invariant.c_str(),
                static_cast<long long>(violation.at),
                violation.detail.c_str());
  }
  if (outcome.ok()) std::printf("all invariants held\n");
}

bool write_file(const std::string& path, const ChaosSchedule& schedule) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "waif_chaos_replay: cannot write %s\n", path.c_str());
    return false;
  }
  write_chaos(out, schedule);
  return bool(out);
}

/// Shrinks a violating schedule, reports the reduction, writes the repro.
bool shrink_and_save(const ChaosSchedule& schedule, const std::string& path) {
  const ChaosShrinkResult result = shrink_chaos(schedule);
  std::printf(
      "shrink: %zu -> %zu faults in %zu replays; minimized repro still "
      "violates (%zu violation(s), first: %s)\n",
      result.original_faults, result.minimized.faults.size(), result.replays,
      result.outcome.violations.size(),
      result.outcome.violations.empty()
          ? "-"
          : result.outcome.violations[0].invariant.c_str());
  if (!write_file(path, result.minimized)) return false;
  std::printf("shrink: wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string replay_path;
  std::string out_path;
  std::string repro_dir;
  std::string bug_name = "none";
  std::int64_t draw_seed = -1;
  std::int64_t fuzz_runs = 0;
  std::int64_t base_seed = 1;
  std::int64_t fault_count = 8;
  double intensity = 0.35;
  bool shrink = false;

  FlagSet flags(
      "waif_chaos_replay — replay, draw, shrink and fuzz composed chaos "
      "schedules (.chaos files) against the replicated, persistent, "
      "overload-protected last hop.\nExit status: 0 clean, 1 violation "
      "found, 2 usage/IO error.");
  flags.add_string("replay", &replay_path, "run this .chaos file");
  flags.add_bool("shrink", &shrink,
                 "with --replay: minimize a violating schedule to FILE.min");
  flags.add_int("draw", &draw_seed, "draw a schedule from this seed", -1,
                std::numeric_limits<std::int64_t>::max());
  flags.add_string("out", &out_path, "with --draw: write here, not stdout");
  flags.add_int("fuzz", &fuzz_runs, "run this many drawn schedules", 0,
                std::numeric_limits<std::int64_t>::max());
  flags.add_int("seed", &base_seed, "first fuzz seed", 0,
                std::numeric_limits<std::int64_t>::max());
  flags.add_int("faults", &fault_count, "faults per drawn schedule", 1, 64);
  flags.add_double("intensity", &intensity, "drawn fault intensity in [0,1]");
  flags.add_string("bug", &bug_name,
                   "arm a test-only bug (none | swallow-shed)");
  flags.add_string("repro-dir", &repro_dir,
                   "where fuzz repros land (default $WAIF_CHAOS_REPRO_DIR)");
  if (!flags.parse(argc - 1, argv + 1)) return 2;
  if (!(intensity >= 0.0 && intensity <= 1.0)) {
    std::fprintf(stderr, "waif_chaos_replay: --intensity must be in [0,1]\n");
    return 2;
  }

  ChaosBug bug = ChaosBug::kNone;
  if (bug_name == "swallow-shed") {
    bug = ChaosBug::kSwallowShedJournal;
  } else if (bug_name != "none") {
    std::fprintf(stderr, "waif_chaos_replay: unknown --bug '%s'\n",
                 bug_name.c_str());
    return 2;
  }
  if (repro_dir.empty()) {
    const char* env = std::getenv("WAIF_CHAOS_REPRO_DIR");
    repro_dir = env != nullptr ? env : ".";
  }

  ChaosDrawConfig draw;
  draw.faults = static_cast<std::size_t>(fault_count);
  draw.intensity = intensity;

  try {
    if (!replay_path.empty()) {
      std::ifstream in(replay_path);
      if (!in) {
        std::fprintf(stderr, "waif_chaos_replay: cannot read %s\n",
                     replay_path.c_str());
        return 2;
      }
      ChaosSchedule schedule = read_chaos(in);
      if (bug != ChaosBug::kNone) schedule.bug = bug;
      const ChaosOutcome outcome = run_chaos(schedule);
      print_outcome(outcome);
      if (outcome.ok()) return 0;
      if (shrink && !shrink_and_save(schedule, replay_path + ".min")) {
        return 2;
      }
      return 1;
    }

    if (draw_seed >= 0) {
      ChaosSchedule schedule =
          draw_chaos(draw, static_cast<std::uint64_t>(draw_seed));
      schedule.bug = bug;
      if (out_path.empty()) {
        std::ostringstream text;
        write_chaos(text, schedule);
        std::fputs(text.str().c_str(), stdout);
      } else if (!write_file(out_path, schedule)) {
        return 2;
      }
      return 0;
    }

    if (fuzz_runs > 0) {
      int violations = 0;
      for (std::int64_t i = 0; i < fuzz_runs; ++i) {
        const std::uint64_t seed = static_cast<std::uint64_t>(base_seed + i);
        ChaosSchedule schedule = draw_chaos(draw, seed);
        schedule.bug = bug;
        const ChaosOutcome outcome = run_chaos(schedule);
        if (outcome.ok()) continue;
        ++violations;
        std::printf("fuzz: seed %llu violated (%zu violation(s), first: "
                    "%s)\n",
                    static_cast<unsigned long long>(seed),
                    outcome.violations.size(),
                    outcome.violations[0].invariant.c_str());
        const std::string path = repro_dir + "/chaos_repro_seed" +
                                 std::to_string(seed) + ".chaos";
        if (!shrink_and_save(schedule, path)) return 2;
      }
      std::printf("fuzz: %lld schedules, %d violated\n",
                  static_cast<long long>(fuzz_runs), violations);
      return violations == 0 ? 0 : 1;
    }
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "waif_chaos_replay: %s\n", error.what());
    return 2;
  }

  std::fprintf(stderr,
               "waif_chaos_replay: pick a mode — --replay, --draw or --fuzz "
               "(see --help)\n");
  return 2;
}
